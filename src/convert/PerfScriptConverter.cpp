//===- convert/PerfScriptConverter.cpp - `perf script` converter ----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts Linux `perf script` textual output into the generic
/// representation. Input shape (default perf script fields):
///
/// \code
///   comm 1234 4000.123456:     250000 cycles:
///   \t ffffffff8104f45a native_write_msr+0x1a (/lib/modules/vmlinux)
///   \t            4005d0 main+0x10 (/home/u/a.out)
///   <blank line>
/// \endcode
///
/// Frames are leaf-first. The event name ("cycles", "cache-misses", ...)
/// becomes the metric; the sampled period (the number before the event)
/// is the metric value, defaulting to 1 when perf omits it.
///
//===----------------------------------------------------------------------===//

#include "convert/Converters.h"

#include "profile/ProfileBuilder.h"
#include "support/Strings.h"

#include <algorithm>

namespace ev {
namespace convert {

namespace {

/// Parses a sample header line; \returns false when \p Line is not one.
/// Extracts the event name (without trailing ':') and the period.
bool parseHeader(std::string_view Line, std::string &Event,
                 double &Period) {
  // The event is the last ':'-terminated word; the period is the numeric
  // word right before it (if numeric).
  std::string_view Trimmed = trim(Line);
  if (Trimmed.empty())
    return false;
  if (!endsWith(Trimmed, ":")) {
    // Tolerate trailing event modifiers like "cycles:u".
    size_t LastColon = Trimmed.rfind(':');
    if (LastColon == std::string_view::npos)
      return false;
  }
  std::vector<std::string_view> Words;
  for (std::string_view W : splitString(Trimmed, ' '))
    if (!trim(W).empty())
      Words.push_back(trim(W));
  if (Words.size() < 2)
    return false;
  std::string_view EventWord = Words.back();
  while (endsWith(EventWord, ":"))
    EventWord.remove_suffix(1);
  // Strip modifiers ("cycles:u" -> "cycles").
  if (size_t Colon = EventWord.find(':'); Colon != std::string_view::npos)
    EventWord = EventWord.substr(0, Colon);
  if (EventWord.empty())
    return false;
  Event = std::string(EventWord);
  Period = 1.0;
  if (Words.size() >= 2) {
    uint64_t P;
    if (parseUnsigned(Words[Words.size() - 2], P))
      Period = static_cast<double>(P);
  }
  return true;
}

/// Parses one stack frame line "addr symbol+0x10 (module)".
bool parseFrame(std::string_view Line, std::string &Name,
                std::string &Module, uint64_t &Address) {
  std::string_view Trimmed = trim(Line);
  if (Trimmed.empty())
    return false;
  std::vector<std::string_view> Words;
  for (std::string_view W : splitString(Trimmed, ' '))
    if (!trim(W).empty())
      Words.push_back(trim(W));
  if (Words.empty())
    return false;

  size_t Idx = 0;
  Address = 0;
  // Leading hex address (no 0x prefix in perf script).
  {
    std::string_view A = Words[0];
    bool AllHex = !A.empty();
    for (char C : A)
      if (!std::isxdigit(static_cast<unsigned char>(C)))
        AllHex = false;
    if (AllHex) {
      Address = std::strtoull(std::string(A).c_str(), nullptr, 16);
      Idx = 1;
    }
  }
  if (Idx >= Words.size())
    return false;

  // Module in trailing parentheses.
  Module.clear();
  size_t End = Words.size();
  if (Words.back().front() == '(' && Words.back().back() == ')') {
    Module = std::string(Words.back().substr(1, Words.back().size() - 2));
    --End;
  }

  std::string Sym;
  for (size_t I = Idx; I < End; ++I) {
    if (!Sym.empty())
      Sym.push_back(' ');
    Sym.append(Words[I]);
  }
  // Drop the "+0x1a" offset suffix.
  if (size_t Plus = Sym.rfind('+'); Plus != std::string::npos &&
                                    Plus + 1 < Sym.size() &&
                                    Sym.compare(Plus + 1, 2, "0x") == 0)
    Sym.resize(Plus);
  if (Sym.empty())
    Sym = "[unknown]";
  Name = std::move(Sym);
  return true;
}

} // namespace

Result<Profile> fromPerfScript(std::string_view Text) {
  ProfileBuilder B("perf script");

  std::string Event;
  double Period = 1.0;
  bool InSample = false;
  std::vector<FrameId> LeafFirst;
  size_t Samples = 0;

  auto Flush = [&]() {
    if (!InSample)
      return;
    InSample = false;
    if (LeafFirst.empty())
      return;
    MetricId Metric = B.addMetric(Event.empty() ? "samples" : Event,
                                  Event == "cpu-clock" || Event == "task-clock"
                                      ? "nanoseconds"
                                      : "count");
    std::vector<FrameId> Path(LeafFirst.rbegin(), LeafFirst.rend());
    B.addSample(Path, Metric, Period);
    ++Samples;
    LeafFirst.clear();
  };

  for (std::string_view Line : splitLines(Text)) {
    if (trim(Line).empty()) {
      Flush();
      continue;
    }
    bool Indented = Line[0] == '\t' || Line[0] == ' ';
    if (!Indented) {
      Flush();
      std::string NewEvent;
      double NewPeriod;
      if (parseHeader(Line, NewEvent, NewPeriod)) {
        Event = std::move(NewEvent);
        Period = NewPeriod;
        InSample = true;
        LeafFirst.clear();
      }
      continue;
    }
    if (!InSample)
      continue;
    std::string Name, Module;
    uint64_t Address;
    if (parseFrame(Line, Name, Module, Address))
      LeafFirst.push_back(B.functionFrame(Name, "", 0, Module, Address));
  }
  Flush();

  if (Samples == 0)
    return makeError("no samples found in perf script input");
  return B.take();
}

} // namespace convert
} // namespace ev
