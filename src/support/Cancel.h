//===- support/Cancel.h - Cooperative request cancellation ----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation for long-running requests, in the spirit of
/// LSP's `$/cancelRequest`. A CancelToken is a cheap, copyable handle to a
/// shared atomic flag: the dispatcher hands one token to the executing
/// request, keeps a second copy, and flips it from any thread when the
/// client cancels. Analysis loops call checkpoint() at iteration
/// boundaries; a tripped token raises CancelledException, which unwinds
/// through ev::ThreadPool (it propagates the first body exception to the
/// calling thread) back to the dispatcher, which maps it to the JSON-RPC
/// RequestCancelled error.
///
/// A default-constructed token is inert — never cancelled, zero cost to
/// check — so every cancellable API takes `const CancelToken & = {}` and
/// existing call sites stay unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_CANCEL_H
#define EASYVIEW_SUPPORT_CANCEL_H

#include <atomic>
#include <exception>
#include <memory>

namespace ev {

/// Raised by CancelToken::checkpoint() once the token is cancelled. The
/// request dispatcher catches it at the top of the handler invocation; it
/// never escapes to the transport.
class CancelledException : public std::exception {
public:
  const char *what() const noexcept override { return "request cancelled"; }
};

/// Copyable handle to a shared cancellation flag. All copies observe the
/// same flag; requestCancel() on any copy trips every checkpoint().
class CancelToken {
public:
  /// Inert token: valid() is false, cancelled() is always false.
  CancelToken() = default;

  /// \returns a live token backed by a fresh shared flag.
  static CancelToken create() {
    CancelToken T;
    T.Flag = std::make_shared<std::atomic<bool>>(false);
    return T;
  }

  /// True when this token is backed by a real flag (can be cancelled).
  bool valid() const { return Flag != nullptr; }

  /// Trips the flag. Safe from any thread; idempotent. No-op on an inert
  /// token.
  void requestCancel() const {
    if (Flag)
      Flag->store(true, std::memory_order_relaxed);
  }

  /// \returns true once requestCancel() was called on any copy.
  bool cancelled() const {
    return Flag && Flag->load(std::memory_order_relaxed);
  }

  /// Throws CancelledException when cancelled; otherwise returns. Call at
  /// loop boundaries — the check is one relaxed atomic load.
  void checkpoint() const {
    if (cancelled())
      throw CancelledException();
  }

private:
  std::shared_ptr<std::atomic<bool>> Flag;
};

} // namespace ev

#endif // EASYVIEW_SUPPORT_CANCEL_H
