//===- analysis/MetricEngine.h - Inclusive/exclusive metric math ----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computation of inclusive and exclusive metric columns over a CCT (paper
/// §V-A(a): "computing inclusive/exclusive metrics" during tree traversal),
/// plus totals and hot-node ranking used by the views.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_METRICENGINE_H
#define EASYVIEW_ANALYSIS_METRICENGINE_H

#include "profile/Profile.h"

#include <vector>

namespace ev {

/// Per-node exclusive values of \p Metric, indexed by NodeId.
std::vector<double> exclusiveColumn(const Profile &P, MetricId Metric);

/// Per-node inclusive values of \p Metric: own exclusive plus the inclusive
/// of all children, computed in one bottom-up pass.
std::vector<double> inclusiveColumn(const Profile &P, MetricId Metric);

/// All metrics at once, in one scatter pass plus one post-order sweep:
/// Columns[m][id] is the inclusive value of metric m at node id. Visits
/// each node's sparse metric list exactly once, unlike calling
/// inclusiveColumn() per metric which rescans every node M times.
std::vector<std::vector<double>> inclusiveColumns(const Profile &P);

/// Sum of all exclusive values (equals the root's inclusive value).
double metricTotal(const Profile &P, MetricId Metric);

/// Per-node depth column (root = 0) in one parents-first prefix pass,
/// guarded against malformed parent slots (profile/Columnar.h
/// depthsFromParents has the exact semantics). The EVQL engines precompute
/// this once per profile topology for the depth() intrinsic.
std::vector<uint32_t> depthColumn(const Profile &P);

/// Per-node fan-out column: node id -> child count. Precomputed alongside
/// depthColumn() for the nchildren()/isleaf() intrinsics.
std::vector<uint32_t> childCountColumn(const Profile &P);

/// A ranked hot spot.
struct HotNode {
  NodeId Node = InvalidNode;
  double Value = 0.0;
};

/// The \p Limit nodes with the largest exclusive value, descending. Ties
/// break on NodeId so the ranking is deterministic.
std::vector<HotNode> hottestExclusive(const Profile &P, MetricId Metric,
                                      size_t Limit);

/// A precomputed (exclusive, inclusive) pair of columns for one metric.
/// Views hold one of these per displayed metric.
class MetricView {
public:
  MetricView(const Profile &P, MetricId Metric);

  MetricId metric() const { return Metric; }
  double exclusive(NodeId Id) const { return Exclusive[Id]; }
  double inclusive(NodeId Id) const { return Inclusive[Id]; }
  double total() const { return Inclusive.empty() ? 0.0 : Inclusive[0]; }

  const std::vector<double> &exclusiveColumn() const { return Exclusive; }
  const std::vector<double> &inclusiveColumn() const { return Inclusive; }

private:
  MetricId Metric;
  std::vector<double> Exclusive;
  std::vector<double> Inclusive;
};

} // namespace ev

#endif // EASYVIEW_ANALYSIS_METRICENGINE_H
