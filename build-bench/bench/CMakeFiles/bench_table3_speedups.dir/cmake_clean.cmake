file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_speedups.dir/bench_table3_speedups.cpp.o"
  "CMakeFiles/bench_table3_speedups.dir/bench_table3_speedups.cpp.o.d"
  "bench_table3_speedups"
  "bench_table3_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
