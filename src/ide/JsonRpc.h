//===- ide/JsonRpc.h - LSP-style JSON-RPC 2.0 transport -------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON-RPC 2.0 with Language-Server-Protocol framing (Content-Length
/// headers over a byte stream). The paper positions EasyView's IDE actions
/// "like LSP"; this transport is what lets any editor drive the Profile
/// Viewer Protocol server (ide/PvpServer.h) the way editors drive language
/// servers.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_IDE_JSONRPC_H
#define EASYVIEW_IDE_JSONRPC_H

#include "support/Json.h"
#include "support/Result.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ev {
namespace rpc {

/// Standard JSON-RPC error codes (the LSP subset this server uses), plus
/// the server-defined range (-32000..-32099) for transport guardrails.
enum ErrorCode : int {
  ParseError = -32700,
  InvalidRequest = -32600,
  MethodNotFound = -32601,
  InvalidParams = -32602,
  InternalError = -32603,
  RequestTooLarge = -32000,  ///< Frame exceeded the configured size cap.
  RequestTimeout = -32001,   ///< Request exceeded its soft deadline.
  SessionBusy = -32002,      ///< Session queue is at its pending-request cap.
  ServerOverloaded = -32003, ///< Listener at its connection cap; shed load.
  SubscriptionLimit = -32004, ///< Session at its live-subscription cap.
  /// LSP's reserved code for `$/cancelRequest`: the request was cancelled
  /// cooperatively before producing a result.
  RequestCancelled = -32800,
};

/// Builds a request payload.
json::Value makeRequest(int64_t Id, std::string_view Method,
                        json::Value Params);

/// Builds a notification payload (no id, no response expected).
json::Value makeNotification(std::string_view Method, json::Value Params);

/// Builds a success response.
json::Value makeResponse(int64_t Id, json::Value ResultValue);

/// Builds an error response.
json::Value makeErrorResponse(int64_t Id, int Code, std::string_view Message);

/// Wraps \p Payload with the Content-Length header framing.
std::string frame(const json::Value &Payload);

/// Tuning knobs for FrameReader's guardrails.
struct FrameReaderOptions {
  /// Largest Content-Length the reader buffers. Announced bodies above
  /// this are skipped byte-for-byte as they arrive (never accumulated), so
  /// a hostile header cannot make the reader hold gigabytes.
  size_t MaxFrameBytes = 16u << 20;
  /// Largest unterminated header block tolerated before the reader
  /// declares the prefix garbage and resynchronizes.
  size_t MaxHeaderBytes = 8u << 10;
  /// Buffer capacity above which the reader reallocates the buffer down
  /// once it is mostly slack. `erase(0, n)` keeps std::string capacity, so
  /// without compaction one large frame would pin its high-water
  /// allocation for the rest of a long-lived (subscriber) connection.
  size_t CompactThresholdBytes = 64u << 10;
};

/// A recoverable framing error, reported alongside (not instead of) the
/// messages that follow it on the wire.
struct FrameError {
  int Code = ParseError;
  std::string Message;
};

/// Incremental deframer: feed bytes as they arrive, poll complete
/// messages.
///
/// The reader is session-survivable: a corrupt frame — bad or missing
/// Content-Length, oversized announcement, malformed JSON body — is
/// reported through takeErrors() and the reader *resynchronizes* to the
/// next plausible "Content-Length:" header instead of failing permanently.
/// One poisoned frame therefore costs one error response, never the
/// session.
class FrameReader {
public:
  FrameReader() = default;
  explicit FrameReader(FrameReaderOptions Opts) : Opts(Opts) {}

  /// Appends raw bytes from the wire.
  void feed(std::string_view Bytes) { Buffer.append(Bytes); }

  /// \returns the next complete JSON payload, if one is buffered. Framing
  /// and parse failures are queued as FrameErrors and the reader keeps
  /// scanning for the next valid frame.
  std::optional<json::Value> poll();

  /// Drains the errors recorded since the last call.
  std::vector<FrameError> takeErrors();

  /// \returns true while recorded errors are pending (not yet drained).
  bool failed() const { return !Errors.empty(); }
  /// The most recent pending error message ("" when none).
  const std::string &errorMessage() const;

  /// Number of resynchronization events since construction.
  size_t resyncCount() const { return Resyncs; }
  /// Bytes discarded while resynchronizing or skipping oversized bodies.
  size_t droppedBytes() const { return Dropped; }
  /// Bytes currently buffered (bounded by the options).
  size_t bufferedBytes() const { return Buffer.size(); }
  /// Bytes currently *allocated* for the buffer. Stays within a small
  /// multiple of bufferedBytes() plus the compaction threshold — the
  /// regression guard for the erase-keeps-capacity leak.
  size_t bufferCapacityBytes() const { return Buffer.capacity(); }

  const FrameReaderOptions &options() const { return Opts; }

private:
  void recordError(int Code, std::string Message);
  /// Drops the corrupt prefix and realigns the buffer on the next
  /// "Content-Length:" occurrence at or past \p From.
  void resync(size_t From);
  /// Releases slack capacity left behind by erase(0, n) once the buffer
  /// is mostly empty relative to its allocation.
  void compact();

  FrameReaderOptions Opts;
  std::string Buffer;
  std::vector<FrameError> Errors;
  size_t SkipRemaining = 0; ///< Oversized-body bytes still to discard.
  size_t Resyncs = 0;
  size_t Dropped = 0;
};

/// Historical name for FrameReader, kept for in-tree users.
using MessageReader = FrameReader;

} // namespace rpc
} // namespace ev

#endif // EASYVIEW_IDE_JSONRPC_H
