//===- ide/ViewDelta.h - Compact node/metric deltas between views ---------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The delta codec behind pvp/subscribe: instead of re-serializing a whole
/// pvp/flame / pvp/treeTable reply on every profile generation, the server
/// sends the subscriber a varint-encoded diff against the last view the
/// client acknowledged — added/changed/removed rows only, and within a
/// changed row only the fields that moved.
///
/// Both view replies are uniform tables: an array of flat row objects
/// (keyed by a unique integer "node") plus a handful of top-level scalars.
/// The codec exploits that shape:
///
///  - the row key schema (names, in order) is sent once per delta;
///  - a changed row encodes only its changed fields, numbers as raw
///    varint/fixed64 (an appended section changes every flame rect's
///    normalized x/width — 18 bytes of doubles instead of ~100 bytes of
///    JSON text);
///  - a double-backed field most rows change at once (those same x/width
///    renormalizations) ships as one packed fixed64 column over the final
///    row order — 8 bytes per row, no per-row envelope at all;
///  - unchanged rows cost only their node id in the packed `order` list;
///  - replies that do not fit the shape (no rows array, duplicate node
///    ids, nested row fields, reshaped scalars) fall back to carrying the
///    full reply — correctness never depends on the fast path.
///
/// The contract the subscribe suite pins: applying the delta to the acked
/// base reproduces the new full reply *byte-identically* (same dump()),
/// so a client that applies deltas and a client that re-queries can never
/// diverge.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_IDE_VIEWDELTA_H
#define EASYVIEW_IDE_VIEWDELTA_H

#include "support/Json.h"
#include "support/Result.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace ev {

/// How a delta was encoded — reported by bench_subscribe and the sub.*
/// telemetry so the compactness claim is measurable.
struct ViewDeltaStats {
  size_t RowsPatched = 0; ///< Rows present in both views with changes.
  size_t RowsAdded = 0;   ///< Rows only in the new view.
  size_t RowsRemoved = 0; ///< Rows only in the base view.
  size_t ScalarsPatched = 0;
  size_t ColumnsPatched = 0; ///< Fields shipped as packed fixed64 columns.
  bool FullFallback = false; ///< Delta carries the entire reply.
};

/// Encodes the change from \p Base to \p Next (two full view replies for
/// the same subscription). \p RowsKey names the row array ("rects" for
/// flame, "rows" for treeTable). \p FromGen / \p ToGen are the profile
/// generations the two views were computed at; they travel in the delta
/// so the client can detect replays. Never fails: un-diffable shapes
/// degrade to a full-reply fallback.
std::string encodeViewDelta(const json::Value &Base, const json::Value &Next,
                            std::string_view RowsKey, uint64_t FromGen,
                            uint64_t ToGen, ViewDeltaStats *Stats = nullptr);

/// Applies \p Delta to \p Base. \returns the reconstructed new view,
/// dump()-byte-identical to the `Next` it was encoded from; fails when the
/// delta is malformed or \p Base is not the view it was encoded against.
Result<json::Value> applyViewDelta(const json::Value &Base,
                                   std::string_view Delta);

/// Reads the (fromGeneration, toGeneration) pair without applying.
Result<std::pair<uint64_t, uint64_t>>
peekViewDeltaGenerations(std::string_view Delta);

} // namespace ev

#endif // EASYVIEW_IDE_VIEWDELTA_H
