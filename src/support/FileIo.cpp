//===- support/FileIo.cpp - Whole-file read/write helpers -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/FileIo.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include <dirent.h>
#include <sys/stat.h>

namespace ev {

bool isDirectory(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}

Result<std::vector<std::string>> listDirectory(const std::string &Path) {
  DIR *Dir = ::opendir(Path.c_str());
  if (!Dir)
    return makeError("cannot open directory '" + Path + "'");
  std::vector<std::string> Out;
  while (struct dirent *Entry = ::readdir(Dir)) {
    std::string_view Name = Entry->d_name;
    if (Name == "." || Name == "..")
      continue;
    std::string Full = Path;
    if (!Full.empty() && Full.back() != '/')
      Full += '/';
    Full += Name;
    struct stat St;
    if (::stat(Full.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
      continue;
    Out.push_back(std::move(Full));
  }
  ::closedir(Dir);
  // readdir order is filesystem-dependent; sort so cohort ingestion (and
  // therefore every downstream finding) is deterministic.
  std::sort(Out.begin(), Out.end());
  return Out;
}

namespace {
ReadFaultHook &faultHook() {
  static ReadFaultHook Hook;
  return Hook;
}
std::function<void(uint64_t)> &sleepHook() {
  static std::function<void(uint64_t)> Hook;
  return Hook;
}
} // namespace

void setReadFaultHook(ReadFaultHook Hook) { faultHook() = std::move(Hook); }

void setRetrySleepHook(std::function<void(uint64_t)> Hook) {
  sleepHook() = std::move(Hook);
}

namespace {

Result<std::string> readFileAttempt(const std::string &Path,
                                    unsigned Attempt) {
  if (const ReadFaultHook &Hook = faultHook()) {
    std::string Message;
    if (Hook(Path, Attempt, Message))
      return makeError(Message.empty() ? "injected I/O fault" : Message);
  }
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return makeError("cannot open '" + Path + "' for reading");
  std::string Out;
  char Buffer[1 << 16];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Out.append(Buffer, N);
  bool Bad = std::ferror(F);
  std::fclose(F);
  if (Bad)
    return makeError("I/O error while reading '" + Path + "'");
  return Out;
}

void backoffSleep(uint64_t Ms) {
  if (const std::function<void(uint64_t)> &Hook = sleepHook()) {
    Hook(Ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

} // namespace

Result<std::string> readFile(const std::string &Path) {
  return readFileAttempt(Path, 0);
}

Result<std::string> readFileWithRetry(const std::string &Path,
                                      const RetryPolicy &Policy) {
  unsigned Attempts = std::max(1u, Policy.MaxAttempts);
  uint64_t Backoff = Policy.InitialBackoffMs;
  Result<std::string> Last = makeError("no read attempted");
  for (unsigned I = 0; I < Attempts; ++I) {
    if (I > 0) {
      backoffSleep(Backoff);
      Backoff = std::min(Backoff * 2, Policy.MaxBackoffMs);
    }
    Last = readFileAttempt(Path, I);
    if (Last)
      return Last;
  }
  return makeError(Last.error() + " (after " + std::to_string(Attempts) +
                   " attempts)");
}

Result<bool> writeFile(const std::string &Path, std::string_view Contents) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return makeError("cannot open '" + Path + "' for writing");
  size_t Written = std::fwrite(Contents.data(), 1, Contents.size(), F);
  bool Bad = Written != Contents.size() || std::fclose(F) != 0;
  if (Bad)
    return makeError("I/O error while writing '" + Path + "'");
  return true;
}

} // namespace ev
