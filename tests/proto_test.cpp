//===- tests/proto_test.cpp - .evprof and pprof codec tests ---------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "proto/EvProf.h"
#include "proto/PprofFormat.h"
#include "support/Limits.h"
#include "support/ProtoWire.h"

#include "TestHelpers.h"
#include "analysis/MetricEngine.h"

#include <gtest/gtest.h>

using namespace ev;

namespace {

/// Structural equality useful for round-trip checks.
void expectSameShape(const Profile &A, const Profile &B) {
  ASSERT_EQ(A.nodeCount(), B.nodeCount());
  ASSERT_EQ(A.metrics().size(), B.metrics().size());
  for (MetricId M = 0; M < A.metrics().size(); ++M) {
    EXPECT_EQ(A.metrics()[M], B.metrics()[M]);
    EXPECT_DOUBLE_EQ(metricTotal(A, M), metricTotal(B, M));
  }
  for (NodeId Id = 0; Id < A.nodeCount(); ++Id) {
    EXPECT_EQ(A.node(Id).Parent, B.node(Id).Parent);
    EXPECT_EQ(A.nameOf(Id), B.nameOf(Id));
    EXPECT_EQ(A.frameOf(Id).Loc.Line, B.frameOf(Id).Loc.Line);
    EXPECT_EQ(A.text(A.frameOf(Id).Loc.File), B.text(B.frameOf(Id).Loc.File));
    EXPECT_EQ(A.node(Id).Metrics.size(), B.node(Id).Metrics.size());
  }
  ASSERT_EQ(A.groups().size(), B.groups().size());
  for (size_t G = 0; G < A.groups().size(); ++G) {
    EXPECT_EQ(A.text(A.groups()[G].Kind), B.text(B.groups()[G].Kind));
    EXPECT_EQ(A.groups()[G].Contexts, B.groups()[G].Contexts);
    EXPECT_DOUBLE_EQ(A.groups()[G].Value, B.groups()[G].Value);
  }
}

} // namespace

//===----------------------------------------------------------------------===
// .evprof
//===----------------------------------------------------------------------===

TEST(EvProf, MagicDetection) {
  Profile P;
  std::string Bytes = writeEvProf(P);
  EXPECT_TRUE(isEvProf(Bytes));
  EXPECT_FALSE(isEvProf("not a profile"));
  EXPECT_FALSE(isEvProf(""));
}

TEST(EvProf, RoundTripEmptyProfile) {
  Profile P;
  P.setName("empty");
  Result<Profile> Back = readEvProf(writeEvProf(P));
  ASSERT_TRUE(Back.ok()) << Back.error();
  EXPECT_EQ(Back->name(), "empty");
  EXPECT_EQ(Back->nodeCount(), 1u);
}

TEST(EvProf, RoundTripFixedProfile) {
  Profile P = test::makeFixedProfile();
  Result<Profile> Back = readEvProf(writeEvProf(P));
  ASSERT_TRUE(Back.ok()) << Back.error();
  expectSameShape(P, *Back);
  EXPECT_TRUE(Back->verify().ok());
}

TEST(EvProf, RoundTripMetricAggregationKinds) {
  Profile P;
  P.addMetric("a", "count", MetricAggregation::Sum);
  P.addMetric("b", "bytes", MetricAggregation::Min);
  P.addMetric("c", "bytes", MetricAggregation::Max);
  P.addMetric("d", "bytes", MetricAggregation::Last);
  Result<Profile> Back = readEvProf(writeEvProf(P));
  ASSERT_TRUE(Back.ok()) << Back.error();
  EXPECT_EQ(Back->metrics()[1].Aggregation, MetricAggregation::Min);
  EXPECT_EQ(Back->metrics()[3].Aggregation, MetricAggregation::Last);
}

TEST(EvProf, RoundTripContextGroups) {
  ProfileBuilder B("g");
  MetricId M = B.addMetric("accesses", "count");
  FrameId A = B.functionFrame("alloc", "a.cc", 1);
  FrameId U = B.functionFrame("use", "a.cc", 2);
  std::vector<FrameId> P1 = {A};
  std::vector<FrameId> P2 = {U};
  NodeId N1 = B.addSample(P1, M, 1);
  NodeId N2 = B.addSample(P2, M, 2);
  const NodeId Ctx[] = {N1, N2};
  B.addGroup("reuse", Ctx, M, 123.0);
  Profile P = B.take();

  Result<Profile> Back = readEvProf(writeEvProf(P));
  ASSERT_TRUE(Back.ok()) << Back.error();
  expectSameShape(P, *Back);
}

TEST(EvProf, RejectsBadMagic) {
  Result<Profile> R = readEvProf("XXPROF1\n\x01\x02");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("magic"), std::string::npos);
}

TEST(EvProf, RejectsTruncatedBody) {
  Profile P = test::makeFixedProfile();
  std::string Bytes = writeEvProf(P);
  Bytes.resize(Bytes.size() / 2);
  EXPECT_FALSE(readEvProf(Bytes).ok());
}

TEST(EvProf, RejectsGarbageBody) {
  std::string Bytes(EvProfMagic);
  Bytes += std::string(64, '\xff');
  EXPECT_FALSE(readEvProf(Bytes).ok());
}

TEST(EvProf, RejectsDanglingReferences) {
  // Hand-craft a stream whose node references a frame out of range.
  ProtoWriter W;
  W.writeBytes(1, "bad");
  W.writeBytes(2, ""); // string table: [""].
  {
    ProtoWriter NodeW; // Node 0 (root) referencing frame 5: out of range.
    NodeW.writeVarint(2, 5);
    W.writeBytes(5, NodeW.buffer());
  }
  std::string Bytes(EvProfMagic);
  Bytes += W.buffer();
  Result<Profile> R = readEvProf(Bytes);
  ASSERT_FALSE(R.ok());
}

TEST(EvProf, RejectsDuplicateMetricDescriptors) {
  // Hand-craft a stream declaring the same metric name twice. The decoder
  // must reject it at decode time (metric ids are positional; a silent
  // dedup would shift every later column).
  ProtoWriter W;
  W.writeBytes(1, "dup");
  W.writeBytes(2, ""); // string table: [""].
  for (int I = 0; I < 2; ++I) {
    ProtoWriter MW;
    MW.writeBytes(1, "time");
    MW.writeBytes(2, "nanoseconds");
    W.writeBytes(3, MW.buffer());
  }
  std::string Bytes(EvProfMagic);
  Bytes += W.buffer();
  Result<Profile> R = readEvProf(Bytes);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("duplicate metric"), std::string::npos)
      << R.error();
}

TEST(EvProf, RoundTripRandomProfiles) {
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    Profile P = test::makeRandomProfile(Seed);
    Result<Profile> Back = readEvProf(writeEvProf(P));
    ASSERT_TRUE(Back.ok()) << Back.error();
    expectSameShape(P, *Back);
  }
}

//===----------------------------------------------------------------------===
// pprof profile.proto
//===----------------------------------------------------------------------===

namespace {

pprof::PprofProfile makeSmallPprof() {
  pprof::PprofProfile P;
  P.StringTable = {"", "cpu", "nanoseconds", "main", "main.go", "leafFn",
                   "leaf.go", "/bin/app"};
  P.SampleTypes.push_back({1, 2});
  P.Period = 10000000;
  P.PeriodType = {1, 2};
  P.Mappings.push_back({1, 0x400000, 0x500000, 0, 7, 0});
  P.Functions.push_back({1, 3, 3, 4, 1});
  P.Functions.push_back({2, 5, 5, 6, 10});
  pprof::Location L1;
  L1.Id = 1;
  L1.MappingId = 1;
  L1.Address = 0x401000;
  L1.Lines.push_back({1, 5});
  pprof::Location L2;
  L2.Id = 2;
  L2.MappingId = 1;
  L2.Address = 0x402000;
  L2.Lines.push_back({2, 20});
  P.Locations.push_back(L1);
  P.Locations.push_back(L2);
  pprof::Sample S;
  S.LocationIds = {2, 1}; // leaf-first: leafFn <- main.
  S.Values = {250000};
  P.Samples.push_back(S);
  return P;
}

} // namespace

TEST(Pprof, WriteReadRoundTrip) {
  pprof::PprofProfile P = makeSmallPprof();
  Result<pprof::PprofProfile> Back = pprof::read(pprof::write(P));
  ASSERT_TRUE(Back.ok()) << Back.error();
  EXPECT_EQ(Back->StringTable, P.StringTable);
  ASSERT_EQ(Back->SampleTypes.size(), 1u);
  EXPECT_EQ(Back->SampleTypes[0].Type, 1);
  ASSERT_EQ(Back->Samples.size(), 1u);
  EXPECT_EQ(Back->Samples[0].LocationIds, P.Samples[0].LocationIds);
  EXPECT_EQ(Back->Samples[0].Values, P.Samples[0].Values);
  ASSERT_EQ(Back->Locations.size(), 2u);
  EXPECT_EQ(Back->Locations[0].Lines[0].FunctionId, 1u);
  EXPECT_EQ(Back->Mappings[0].MemoryStart, 0x400000u);
  EXPECT_EQ(Back->Period, 10000000);
}

TEST(Pprof, LabelsRoundTrip) {
  pprof::PprofProfile P = makeSmallPprof();
  pprof::Label L;
  L.Key = 1;
  L.Num = -5;
  P.Samples[0].Labels.push_back(L);
  Result<pprof::PprofProfile> Back = pprof::read(pprof::write(P));
  ASSERT_TRUE(Back.ok()) << Back.error();
  ASSERT_EQ(Back->Samples[0].Labels.size(), 1u);
  EXPECT_EQ(Back->Samples[0].Labels[0].Num, -5);
}

TEST(Pprof, InternBuildsStringTable) {
  pprof::PprofProfile P;
  int64_t A = P.intern("x");
  int64_t B = P.intern("x");
  EXPECT_EQ(A, B);
  EXPECT_EQ(P.StringTable.size(), 2u);
  EXPECT_EQ(P.text(A), "x");
  EXPECT_EQ(P.text(999), "");
}

TEST(Pprof, UnpackedRepeatedVarintsAccepted) {
  // Hand-encode a sample with unpacked location ids (wire type 0 repeated).
  ProtoWriter SampleW;
  SampleW.writeVarint(1, 2);
  SampleW.writeVarint(1, 1);
  SampleW.writeVarint(2, 7);
  ProtoWriter W;
  W.writeBytes(2, SampleW.buffer());
  W.writeBytes(6, ""); // string_table[0] = "".
  Result<pprof::PprofProfile> Back = pprof::read(W.buffer());
  ASSERT_TRUE(Back.ok()) << Back.error();
  ASSERT_EQ(Back->Samples.size(), 1u);
  EXPECT_EQ(Back->Samples[0].LocationIds, (std::vector<uint64_t>{2, 1}));
  EXPECT_EQ(Back->Samples[0].Values, (std::vector<int64_t>{7}));
}

TEST(Pprof, RejectsNonEmptyFirstString) {
  ProtoWriter W;
  W.writeBytes(6, "oops"); // string_table[0] must be "".
  EXPECT_FALSE(pprof::read(W.buffer()).ok());
}

TEST(Pprof, RejectsMalformedStream) {
  EXPECT_FALSE(pprof::read(std::string(32, '\xff')).ok());
}

TEST(Pprof, EmptyStreamYieldsEmptyProfile) {
  Result<pprof::PprofProfile> Back = pprof::read("");
  ASSERT_TRUE(Back.ok());
  EXPECT_TRUE(Back->Samples.empty());
  EXPECT_EQ(Back->StringTable.size(), 1u);
}

TEST(Pprof, UnknownFieldsSkipped) {
  pprof::PprofProfile P = makeSmallPprof();
  std::string Bytes = pprof::write(P);
  ProtoWriter Extra;
  Extra.writeBytes(15, "future extension");
  Extra.writeVarint(20, 7);
  Bytes += Extra.buffer();
  Result<pprof::PprofProfile> Back = pprof::read(Bytes);
  ASSERT_TRUE(Back.ok()) << Back.error();
  EXPECT_EQ(Back->Samples.size(), 1u);
}

//===----------------------------------------------------------------------===
// Decode limits
//===----------------------------------------------------------------------===

TEST(EvProfLimits, DefaultsAcceptOrdinaryProfiles) {
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  Result<Profile> P = readEvProf(Bytes, DecodeLimits::defaults());
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_EQ(P->nodeCount(), 6u);
}

TEST(EvProfLimits, MaxInputBytesRejectsOversizedBlob) {
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  DecodeLimits L;
  L.MaxInputBytes = Bytes.size() - 1;
  Result<Profile> P = readEvProf(Bytes, L);
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.error().find("exceed"), std::string::npos);
}

TEST(EvProfLimits, MaxNodesTripsDuringDecode) {
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  DecodeLimits L;
  L.MaxNodes = 3; // Profile has 6.
  Result<Profile> P = readEvProf(Bytes, L);
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.error().find("limit"), std::string::npos);
}

TEST(EvProfLimits, MaxStringsTripsDuringDecode) {
  std::string Bytes = writeEvProf(test::makeRandomProfile(3));
  DecodeLimits L;
  L.MaxStrings = 4;
  Result<Profile> P = readEvProf(Bytes, L);
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.error().find("limit"), std::string::npos);
}

TEST(EvProfLimits, MaxTreeDepthRejectsDeepChains) {
  // A single 64-deep call path.
  ProfileBuilder B("deep");
  MetricId Time = B.addMetric("time", "nanoseconds");
  std::vector<FrameId> Path;
  for (int I = 0; I < 64; ++I)
    Path.push_back(B.functionFrame("f" + std::to_string(I), "f.cc",
                                   static_cast<uint32_t>(I), "app"));
  B.addSample(Path, Time, 1);
  std::string Bytes = writeEvProf(B.take());

  DecodeLimits Tight;
  Tight.MaxTreeDepth = 16;
  Result<Profile> P = readEvProf(Bytes, Tight);
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.error().find("limit"), std::string::npos);

  DecodeLimits Loose;
  Loose.MaxTreeDepth = 128;
  Result<Profile> Q = readEvProf(Bytes, Loose);
  ASSERT_TRUE(Q.ok()) << Q.error();
}

TEST(EvProfLimits, MaxAllocBytesBoundsDecodeMemory) {
  std::string Bytes = writeEvProf(test::makeRandomProfile(5));
  DecodeLimits L;
  L.MaxAllocBytes = 64; // Far below what the profile needs.
  Result<Profile> P = readEvProf(Bytes, L);
  ASSERT_FALSE(P.ok());
  EXPECT_NE(P.error().find("limit"), std::string::npos);
}

TEST(EvProfLimits, GuardReportsWhatTripped) {
  DecodeLimits L;
  L.MaxNodes = 2;
  ResourceGuard G(L);
  EXPECT_TRUE(G.chargeNode());
  EXPECT_TRUE(G.chargeNode());
  EXPECT_FALSE(G.chargeNode());
  EXPECT_TRUE(G.exceeded());
  EXPECT_NE(G.error().find("node"), std::string::npos);
  // Once tripped, the guard stays tripped.
  EXPECT_FALSE(G.chargeString(1));
}
