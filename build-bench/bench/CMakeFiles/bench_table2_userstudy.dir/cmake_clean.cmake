file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_userstudy.dir/bench_table2_userstudy.cpp.o"
  "CMakeFiles/bench_table2_userstudy.dir/bench_table2_userstudy.cpp.o.d"
  "bench_table2_userstudy"
  "bench_table2_userstudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_userstudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
