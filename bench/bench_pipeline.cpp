//===- bench/bench_pipeline.cpp - Fast-path pipeline benchmark ------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Times the analysis fast path end to end — decode (pvp/open), aggregation
/// of 8 runs, differencing, and flame-view serving — across thread counts,
/// and measures the memoized view cache (cold vs. warm pvp/flame). Results
/// go to BENCH_pipeline.json (override with --out=PATH); --smoke shrinks
/// the workload and repetition count for the CI smoke test.
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "analysis/Aggregate.h"
#include "analysis/Diff.h"
#include "analysis/Transform.h"
#include "ide/PvpServer.h"
#include "profile/Columnar.h"
#include "proto/EvProf.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "workload/LuleshWorkload.h"
#include "workload/SparkWorkload.h"
#include "workload/SyntheticProfile.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

using namespace ev;

namespace {

/// Best-of-N wall time of \p Fn, in milliseconds.
template <typename Fn> double timeMs(int Reps, Fn &&F) {
  double Best = 0.0;
  for (int R = 0; R < Reps; ++R) {
    auto T0 = std::chrono::steady_clock::now();
    F();
    auto T1 = std::chrono::steady_clock::now();
    double Ms = std::chrono::duration<double, std::milli>(T1 - T0).count();
    if (R == 0 || Ms < Best)
      Best = Ms;
  }
  return Best;
}

json::Value flameRequest(int64_t ProfileId) {
  json::Object Params;
  Params.set("profile", ProfileId);
  Params.set("shape", "bottom-up");
  Params.set("maxRects", 4096);
  json::Object Req;
  Req.set("jsonrpc", "2.0");
  Req.set("id", 1);
  Req.set("method", "pvp/flame");
  Req.set("params", std::move(Params));
  return json::Value(std::move(Req));
}

} // namespace

int main(int argc, char **argv) {
#ifdef EV_BENCH_DEFAULT_OUT
  std::string OutPath = EV_BENCH_DEFAULT_OUT;
#else
  std::string OutPath = "BENCH_pipeline.json";
#endif
  bool Smoke = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strncmp(argv[I], "--out=", 6) == 0)
      OutPath = argv[I] + 6;
  }

  const int Reps = Smoke ? 1 : 5;
  const size_t AggInputs = Smoke ? 4 : 8;
  std::vector<unsigned> ThreadCounts = Smoke ? std::vector<unsigned>{1, 2}
                                             : std::vector<unsigned>{1, 2, 4};

  // Workloads. The paper's case studies (LULESH/HPCToolkit, Spark) are
  // small by construction, so the phase timings run on size-scaled
  // synthetic service profiles; the case-study inputs get their own rows.
  std::vector<Profile> Runs;
  for (size_t I = 0; I < AggInputs; ++I) {
    workload::SyntheticOptions Opt;
    Opt.Seed = 11 + I;
    Opt.TargetBytes = Smoke ? (64u << 10) : (2u << 20);
    Runs.push_back(workload::generateSyntheticProfile(Opt));
  }
  std::vector<Profile> Lulesh;
  for (size_t I = 0; I < AggInputs; ++I) {
    workload::LuleshOptions Opt;
    Opt.Seed = 11 + I;
    Lulesh.push_back(workload::generateLuleshProfile(Opt));
  }
  workload::SparkWorkload Spark = workload::generateSparkWorkload();
  std::string Wire = writeEvProf(Runs[0]);

  bench::JsonReporter Report("pipeline");
  Report.setMeta("smoke", Smoke);
  Report.setMeta("aggregateInputs", static_cast<int64_t>(AggInputs));
  Report.setMeta("syntheticNodes", static_cast<int64_t>(Runs[0].nodeCount()));
  Report.setMeta("luleshNodes", static_cast<int64_t>(Lulesh[0].nodeCount()));
  Report.setMeta("sparkNodes",
                 static_cast<int64_t>(Spark.Rdd.nodeCount()));
  Report.setMeta("wireBytes", static_cast<int64_t>(Wire.size()));
  Report.setMeta("hardwareThreads",
                 static_cast<int64_t>(std::thread::hardware_concurrency()));
  // The thread count EV_THREADS actually resolved to (or the capped
  // hardware default), so a reader can tell a 1-core host's "no parallel
  // speedup" apart from a misconfigured run.
  Report.setMeta("evThreads",
                 static_cast<int64_t>(ThreadPool::configuredThreads()));

  std::vector<const Profile *> AggPtrs;
  for (const Profile &P : Runs)
    AggPtrs.push_back(&P);
  // Columnar twins of the aggregate inputs over one shared string table —
  // the representation a budgeted ProfileStore serves to pvp/aggregate.
  SharedStringTable Shared;
  std::vector<ColumnarProfile> Columns;
  Columns.reserve(Runs.size());
  for (const Profile &P : Runs)
    Columns.push_back(ColumnarProfile::build(P, Shared));
  std::vector<const ColumnarProfile *> ColPtrs;
  for (const ColumnarProfile &C : Columns)
    ColPtrs.push_back(&C);
  AggregateOptions AggOpt;
  AggOpt.WithMin = AggOpt.WithMax = AggOpt.WithMean = AggOpt.WithStddev =
      true;

  // Every timed phase also reports how far it pushed the process's peak
  // RSS (monotonic high-water, so later phases that fit under an earlier
  // mark report zero).
  auto RssRow = [&](std::string_view Phase, unsigned Threads, double Ms,
                    uint64_t RssBefore) {
    json::Object Extra;
    Extra.set("peakRssDeltaBytes",
              static_cast<int64_t>(bench::peakRssBytes() - RssBefore));
    Report.addRow(Phase, Threads, Ms, std::move(Extra));
  };

  double Aggregate1T = 0.0, AggregateNT = 0.0;
  double Columnar1T = 0.0, ColumnarNT = 0.0;
  for (unsigned Threads : ThreadCounts) {
    // "1 thread" is the sequential fallback (no workers at all), the
    // baseline the speedups and the byte-identity property tests compare
    // against.
    ThreadPool::setSharedThreadCount(Threads == 1 ? 0 : Threads);

    uint64_t Rss = bench::peakRssBytes();
    double OpenMs = timeMs(Reps, [&] {
      Result<Profile> P = readEvProf(Wire);
      if (!P)
        std::abort();
    });
    RssRow("open", Threads, OpenMs, Rss);
    bench::row("open threads=%u ms=%.3f", Threads, OpenMs);

    Rss = bench::peakRssBytes();
    double AggregateMs = timeMs(Reps, [&] {
      AggregatedProfile Agg =
          aggregate(std::span<const Profile *const>(AggPtrs), AggOpt);
      (void)Agg;
    });
    RssRow("aggregate", Threads, AggregateMs, Rss);
    bench::row("aggregate threads=%u ms=%.3f", Threads, AggregateMs);
    if (Threads == 1)
      Aggregate1T = AggregateMs;
    AggregateNT = AggregateMs;

    // The same merge fed from columnar segments (byte-identical output;
    // tests/store_test.cpp holds the proof, this row holds the price).
    Rss = bench::peakRssBytes();
    double ColumnarMs = timeMs(Reps, [&] {
      AggregatedProfile Agg = aggregate(
          std::span<const ColumnarProfile *const>(ColPtrs), AggOpt);
      (void)Agg;
    });
    RssRow("aggregate-columnar", Threads, ColumnarMs, Rss);
    bench::row("aggregate-columnar threads=%u ms=%.3f", Threads, ColumnarMs);
    if (Threads == 1)
      Columnar1T = ColumnarMs;
    ColumnarNT = ColumnarMs;

    Rss = bench::peakRssBytes();
    double DiffMs = timeMs(Reps, [&] {
      DiffResult D = diffProfiles(Runs[0], Runs[1], 0);
      (void)D;
    });
    RssRow("diff", Threads, DiffMs, Rss);
    bench::row("diff threads=%u ms=%.3f", Threads, DiffMs);

    // Case-study rows: the paper's workloads at the same thread count.
    std::vector<const Profile *> LuleshPtrs;
    for (const Profile &P : Lulesh)
      LuleshPtrs.push_back(&P);
    double LuleshAggMs = timeMs(Reps, [&] {
      AggregatedProfile Agg = aggregate(
          std::span<const Profile *const>(LuleshPtrs), AggOpt);
      (void)Agg;
    });
    Report.addRow("aggregate-lulesh", Threads, LuleshAggMs);
    double SparkDiffMs = timeMs(Reps, [&] {
      DiffResult D = diffProfiles(Spark.Rdd, Spark.Sql, 0);
      (void)D;
    });
    Report.addRow("diff-spark", Threads, SparkDiffMs);

    Rss = bench::peakRssBytes();
    double FlameMs = timeMs(Reps, [&] {
      Profile Up = bottomUpTree(Runs[0]);
      (void)Up;
    });
    RssRow("flame-shape", Threads, FlameMs, Rss);
    bench::row("flame-shape threads=%u ms=%.3f", Threads, FlameMs);
  }

  // Memoized view cache: first pvp/flame computes (miss), the repeat is
  // served from the LRU. The cold/warm ratio is the cache speedup.
  ThreadPool::setSharedThreadCount(0);
  PvpServer Server;
  int64_t Id = Server.addProfile(Runs[0]);
  json::Value Req = flameRequest(Id);
  uint64_t FlameRss = bench::peakRssBytes();
  double ColdMs = timeMs(1, [&] { Server.handleMessage(Req); });
  RssRow("pvp-flame-cold", 1, ColdMs, FlameRss);
  FlameRss = bench::peakRssBytes();
  double WarmMs = timeMs(Smoke ? 3 : 20, [&] { Server.handleMessage(Req); });
  double CacheSpeedup = WarmMs > 0.0 ? ColdMs / WarmMs : 0.0;
  RssRow("pvp-flame-warm", 1, WarmMs, FlameRss);
  Report.setSummary("flameCacheSpeedup", CacheSpeedup);
  bench::row("pvp/flame cold ms=%.3f warm ms=%.3f speedup=%.1fx", ColdMs,
             WarmMs, CacheSpeedup);

  // Instrumentation-overhead ablation: the same single-threaded pipeline
  // (decode + aggregate + diff + flame shaping) with span retention on vs
  // off. The delta is what self-profiling costs every request; the
  // acceptance bar is <= 5%.
  auto Pipeline = [&] {
    Result<Profile> P = readEvProf(Wire);
    if (!P)
      std::abort();
    AggregatedProfile Agg =
        aggregate(std::span<const Profile *const>(AggPtrs), AggOpt);
    (void)Agg;
    DiffResult D = diffProfiles(Runs[0], Runs[1], 0);
    (void)D;
    Profile Up = bottomUpTree(Runs[0]);
    (void)Up;
  };
  const int AblateReps = Smoke ? 2 : 7;
  trace::setEnabled(true);
  uint64_t AblateRss = bench::peakRssBytes();
  double TracedMs = timeMs(AblateReps, Pipeline);
  RssRow("pipeline-traced", 1, TracedMs, AblateRss);
  trace::setEnabled(false);
  AblateRss = bench::peakRssBytes();
  double UntracedMs = timeMs(AblateReps, Pipeline);
  trace::setEnabled(true);
  trace::clear();
  double OverheadPct =
      UntracedMs > 0.0 ? (TracedMs / UntracedMs - 1.0) * 100.0 : 0.0;
  RssRow("pipeline-untraced", 1, UntracedMs, AblateRss);
  Report.setSummary("instrumentationOverheadPct", OverheadPct);
  bench::row("pipeline traced ms=%.3f untraced ms=%.3f overhead=%.2f%%",
             TracedMs, UntracedMs, OverheadPct);

  if (Aggregate1T > 0.0 && AggregateNT > 0.0) {
    double AggSpeedup = Aggregate1T / AggregateNT;
    Report.setSummary("aggregateSpeedupMaxThreads", AggSpeedup);
    Report.setSummary("aggregateMaxThreads",
                      static_cast<int64_t>(ThreadCounts.back()));
    bench::row("aggregate %u-thread speedup=%.2fx", ThreadCounts.back(),
               AggSpeedup);
  }
  if (Columnar1T > 0.0 && ColumnarNT > 0.0) {
    // Columnar vs AoS at matching thread counts: the algorithm is shared,
    // so this isolates the cost/win of reading flat columns (no AoS
    // pointer chasing, no per-node vectors) against decoded profiles.
    Report.setSummary("columnarVsAosAggregate1T",
                      Columnar1T > 0.0 ? Aggregate1T / Columnar1T : 0.0);
    Report.setSummary("columnarVsAosAggregateMaxThreads",
                      ColumnarNT > 0.0 ? AggregateNT / ColumnarNT : 0.0);
    bench::row("aggregate-columnar vs aos: 1T %.2fx, %uT %.2fx",
               Aggregate1T / Columnar1T, ThreadCounts.back(),
               AggregateNT / ColumnarNT);
  }
  Report.setMeta("peakRssBytes", static_cast<int64_t>(bench::peakRssBytes()));

  if (!Report.write(OutPath)) {
    std::fprintf(stderr, "failed to write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
