//===- bench/bench_concurrent.cpp - Multi-session service throughput ------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the concurrent service layer: aggregate view-request throughput
/// of a SessionManager serving N independent IDE sessions, against the
/// single-threaded sequential PvpServer as the baseline. Each session
/// replays a mixed flame/treeTable/summary script over its own profile.
/// Expected SHAPE: throughput scales with sessions until the dispatcher's
/// worker count (or the analysis pool) saturates the machine; the cross-
/// session fairness repost keeps per-session latency flat rather than
/// letting one chatty session starve the rest.
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "convert/Converters.h"
#include "ide/PvpServer.h"
#include "ide/SessionManager.h"
#include "proto/EvProf.h"
#include "support/Strings.h"
#include "workload/SyntheticProfile.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

using namespace ev;

namespace {

constexpr int RequestsPerSession = 48;

/// One synthetic profile per session, distinct seeds so the shared view
/// cache cannot collapse the work across sessions.
std::string profileBytes(unsigned Session) {
  workload::SyntheticOptions Opt;
  Opt.Seed = 7000 + Session;
  Opt.TargetBytes = 1 << 20;
  Result<Profile> P = convert::load(workload::generatePprofBytes(Opt),
                                    "bench.pprof");
  return writeEvProf(*P);
}

json::Value viewRequest(int64_t ReqId, int64_t Prof) {
  json::Object P;
  P.set("profile", Prof);
  switch (ReqId % 3) {
  case 0:
    P.set("maxRects", 256);
    return rpc::makeRequest(ReqId, "pvp/flame", std::move(P));
  case 1:
    return rpc::makeRequest(ReqId, "pvp/treeTable", std::move(P));
  default:
    return rpc::makeRequest(ReqId, "pvp/summary", std::move(P));
  }
}

int64_t openOn(SessionManager &M, unsigned S, const std::string &Bytes) {
  json::Object P;
  P.set("name", "bench.evprof");
  P.set("dataBase64", base64Encode(Bytes));
  json::Value R = M.handle(S, rpc::makeRequest(1, "pvp/open", std::move(P)));
  return R.asObject().find("result")->asObject().find("profile")->asInt();
}

/// N sessions submitting their scripts concurrently through the manager.
void concurrentSessions(benchmark::State &State) {
  const unsigned Sessions = static_cast<unsigned>(State.range(0));
  SessionManager::Options Opts;
  Opts.Sessions = Sessions;
  // Disable the view cache: the benchmark measures computation throughput,
  // not memoization (every request repeats the same params).
  Opts.Limits.MaxCachedViews = 0;
  SessionManager M(Opts);

  std::vector<int64_t> Profs(Sessions);
  for (unsigned S = 0; S < Sessions; ++S)
    Profs[S] = openOn(M, S, profileBytes(S));

  for (auto _ : State) {
    std::vector<std::future<json::Value>> Fs;
    Fs.reserve(Sessions * RequestsPerSession);
    for (int R = 0; R < RequestsPerSession; ++R)
      for (unsigned S = 0; S < Sessions; ++S)
        Fs.push_back(M.submit(S, viewRequest(100 + R, Profs[S])));
    for (auto &F : Fs) {
      json::Value V = F.get();
      benchmark::DoNotOptimize(V);
    }
  }
  State.counters["requests"] =
      benchmark::Counter(static_cast<double>(Sessions * RequestsPerSession),
                         benchmark::Counter::kIsIterationInvariantRate);
}

/// The same total request volume through one sequential server.
void sequentialBaseline(benchmark::State &State) {
  const unsigned Sessions = static_cast<unsigned>(State.range(0));
  ServerLimits Limits;
  Limits.MaxCachedViews = 0;
  PvpServer Server(Limits);
  std::vector<int64_t> Profs(Sessions);
  for (unsigned S = 0; S < Sessions; ++S) {
    json::Object P;
    P.set("name", "bench.evprof");
    P.set("dataBase64", base64Encode(profileBytes(S)));
    json::Value R =
        Server.handleMessage(rpc::makeRequest(1, "pvp/open", std::move(P)));
    Profs[S] = R.asObject().find("result")->asObject().find("profile")->asInt();
  }

  for (auto _ : State) {
    for (int R = 0; R < RequestsPerSession; ++R)
      for (unsigned S = 0; S < Sessions; ++S) {
        json::Value V = Server.handleMessage(viewRequest(100 + R, Profs[S]));
        benchmark::DoNotOptimize(V);
      }
  }
  State.counters["requests"] =
      benchmark::Counter(static_cast<double>(Sessions * RequestsPerSession),
                         benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(sequentialBaseline)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(concurrentSessions)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

/// Prints one timed run per session count alongside the sequential
/// reference at the same total volume.
void printFigure() {
  bench::row("Concurrent sessions: aggregate view throughput (requests/s); "
             "higher is better");
  bench::row("%-10s %14s %14s", "sessions", "sequential", "concurrent");
  for (unsigned Sessions : {1u, 2u, 4u, 8u}) {
    auto Run = [&](auto Fn) {
      auto T0 = std::chrono::steady_clock::now();
      Fn();
      auto T1 = std::chrono::steady_clock::now();
      double Sec = std::chrono::duration<double>(T1 - T0).count();
      return static_cast<double>(Sessions * RequestsPerSession) / Sec;
    };
    double Seq = Run([&] {
      ServerLimits Limits;
      Limits.MaxCachedViews = 0;
      PvpServer Server(Limits);
      std::vector<int64_t> Profs(Sessions);
      for (unsigned S = 0; S < Sessions; ++S) {
        json::Object P;
        P.set("name", "bench.evprof");
        P.set("dataBase64", base64Encode(profileBytes(S)));
        json::Value R = Server.handleMessage(
            rpc::makeRequest(1, "pvp/open", std::move(P)));
        Profs[S] =
            R.asObject().find("result")->asObject().find("profile")->asInt();
      }
      for (int R = 0; R < RequestsPerSession; ++R)
        for (unsigned S = 0; S < Sessions; ++S) {
          json::Value V =
              Server.handleMessage(viewRequest(100 + R, Profs[S]));
          benchmark::DoNotOptimize(V);
        }
    });
    double Con = Run([&] {
      SessionManager::Options Opts;
      Opts.Sessions = Sessions;
      Opts.Limits.MaxCachedViews = 0;
      SessionManager M(Opts);
      std::vector<int64_t> Profs(Sessions);
      for (unsigned S = 0; S < Sessions; ++S)
        Profs[S] = openOn(M, S, profileBytes(S));
      std::vector<std::future<json::Value>> Fs;
      for (int R = 0; R < RequestsPerSession; ++R)
        for (unsigned S = 0; S < Sessions; ++S)
          Fs.push_back(M.submit(S, viewRequest(100 + R, Profs[S])));
      for (auto &F : Fs) {
        json::Value V = F.get();
        benchmark::DoNotOptimize(V);
      }
    });
    bench::row("%-10u %14.0f %14.0f", Sessions, Seq, Con);
  }
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printFigure();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
