//===- render/CorrelatedView.cpp - Correlated multi-pane flame graphs -----===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "render/CorrelatedView.h"

#include "support/Strings.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace ev {

CorrelatedView::CorrelatedView(const Profile &P, std::string_view Kind)
    : P(&P) {
  // Find the kind's interned id without mutating the profile: scan groups.
  for (size_t I = 0; I < P.groups().size(); ++I) {
    const ContextGroup &G = P.groups()[I];
    if (P.text(G.Kind) != Kind)
      continue;
    if (Roles == 0)
      Roles = G.Contexts.size();
    assert(Roles == G.Contexts.size() &&
           "groups of one kind must have a uniform role count");
    KindId = G.Kind;
    AllGroups.push_back(I);
  }
  refilter();
}

void CorrelatedView::refilter() {
  ActiveGroups.clear();
  for (size_t Idx : AllGroups) {
    const ContextGroup &G = P->groups()[Idx];
    bool Matches = true;
    for (size_t R = 0; R < Selection.size() && R < G.Contexts.size(); ++R)
      if (G.Contexts[R] != Selection[R])
        Matches = false;
    if (Matches)
      ActiveGroups.push_back(Idx);
  }
}

bool CorrelatedView::select(size_t Role, NodeId Context) {
  if (Role > Selection.size() || Role >= Roles)
    return false; // Panes must be selected left to right.
  // Validate the context appears in that pane's population.
  bool Present = false;
  for (auto &[Node, Value] : paneContexts(Role))
    if (Node == Context)
      Present = true;
  if (!Present)
    return false;
  Selection.resize(Role);
  Selection.push_back(Context);
  refilter();
  return true;
}

void CorrelatedView::clearFrom(size_t Role) {
  if (Role < Selection.size()) {
    Selection.resize(Role);
    refilter();
  }
}

std::vector<std::pair<NodeId, double>>
CorrelatedView::paneContexts(size_t Role) const {
  std::vector<std::pair<NodeId, double>> Out;
  if (Role >= Roles || Role > Selection.size())
    return Out;
  std::map<NodeId, double> Sum;
  for (size_t Idx : ActiveGroups) {
    const ContextGroup &G = P->groups()[Idx];
    Sum[G.Contexts[Role]] += G.Value;
  }
  Out.assign(Sum.begin(), Sum.end());
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });
  return Out;
}

Profile CorrelatedView::paneProfile(size_t Role) const {
  Profile Out;
  Out.setName("pane " + std::to_string(Role));
  if (Role >= Roles || Role > Selection.size())
    return Out;
  const MetricDescriptor &M =
      P->metrics()[ActiveGroups.empty()
                       ? 0
                       : P->groups()[ActiveGroups.front()].Metric];
  MetricId Value = Out.addMetric(M.Name, M.Unit, M.Aggregation);

  std::unordered_map<uint64_t, NodeId> ChildIndex;
  auto ChildFor = [&](NodeId Parent, FrameId F) {
    uint64_t Key = (static_cast<uint64_t>(Parent) << 32) | F;
    auto It = ChildIndex.find(Key);
    if (It != ChildIndex.end())
      return It->second;
    NodeId Id = Out.createNode(Parent, F);
    ChildIndex.emplace(Key, Id);
    return Id;
  };
  auto MapFrame = [&](const Frame &F) {
    Frame Copy;
    Copy.Kind = F.Kind;
    Copy.Name = Out.strings().intern(P->text(F.Name));
    Copy.Loc.File = Out.strings().intern(P->text(F.Loc.File));
    Copy.Loc.Line = F.Loc.Line;
    Copy.Loc.Module = Out.strings().intern(P->text(F.Loc.Module));
    Copy.Loc.Address = F.Loc.Address;
    return Out.internFrame(Copy);
  };

  for (size_t Idx : ActiveGroups) {
    const ContextGroup &G = P->groups()[Idx];
    NodeId Context = G.Contexts[Role];
    // Materialize the context's full call path in the pane tree.
    std::vector<NodeId> Path = P->pathTo(Context);
    NodeId Cur = Out.root();
    for (size_t Step = 1; Step < Path.size(); ++Step)
      Cur = ChildFor(Cur, MapFrame(P->frameOf(Path[Step])));
    Out.node(Cur).addMetric(Value, G.Value);
  }
  return Out;
}

std::string CorrelatedView::renderText() const {
  std::string Out;
  Out += "correlated view: " + std::string(P->text(KindId)) + ", " +
         std::to_string(ActiveGroups.size()) + " group(s) active\n";
  for (size_t Role = 0; Role < Roles; ++Role) {
    Out += "pane " + std::to_string(Role);
    if (Role < Selection.size()) {
      Out += " [selected: " + std::string(P->nameOf(Selection[Role])) + "]";
    }
    Out += ":\n";
    if (Role > Selection.size()) {
      Out += "  (select pane " + std::to_string(Role - 1) +
             " to populate)\n";
      continue;
    }
    for (auto &[Node, Value] : paneContexts(Role)) {
      const Frame &F = P->frameOf(Node);
      Out += "  " + std::string(P->nameOf(Node));
      if (F.Loc.hasSourceMapping())
        Out += " @" + std::string(P->text(F.Loc.File)) + ":" +
               std::to_string(F.Loc.Line);
      Out += "  value=" + formatDouble(Value, 0) + "\n";
    }
  }
  return Out;
}

} // namespace ev
