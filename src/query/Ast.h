//===- query/Ast.h - EVQL abstract syntax tree -----------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for EVQL. A program is a statement list; expressions form a small
/// arithmetic/boolean language with calls into the profile-inspection
/// builtins.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_QUERY_AST_H
#define EASYVIEW_QUERY_AST_H

#include "query/Lexer.h"

#include <memory>
#include <string>
#include <vector>

namespace ev {
namespace evql {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node. One struct with a kind discriminator keeps the
/// interpreter a single switch (there is no need for visitors at this
/// scale).
struct Expr {
  enum class Kind : uint8_t {
    NumberLit,
    StringLit,
    BoolLit,
    Ident,
    Unary,   ///< Op applied to Operands[0].
    Binary,  ///< Op applied to Operands[0], Operands[1].
    Ternary, ///< Operands[0] ? Operands[1] : Operands[2].
    Call,    ///< Name(Operands...).
  };

  Kind TheKind = Kind::NumberLit;
  double Number = 0.0;
  bool BoolValue = false;
  std::string Text; ///< Identifier, call target, or string payload.
  TokenKind Op = TokenKind::Plus;
  std::vector<ExprPtr> Operands;
  size_t Line = 1;
  size_t Column = 1; ///< 1-based column of the expression's first token.
};

/// Statement node.
struct Stmt {
  enum class Kind : uint8_t {
    Let,    ///< let Name = Value;
    Derive, ///< derive Name = Value;   (new metric column)
    Prune,  ///< prune when Cond;       (elide matching nodes)
    Keep,   ///< keep when Cond;        (elide non-matching nodes)
    Print,  ///< print Value;
    Return, ///< return Value;          (report and stop the program)
  };

  Kind TheKind = Kind::Print;
  std::string Name;
  ExprPtr Value;
  size_t Line = 1;
  size_t Column = 1; ///< 1-based column of the statement keyword.
};

/// A parsed program.
struct Program {
  std::vector<Stmt> Statements;
};

} // namespace evql
} // namespace ev

#endif // EASYVIEW_QUERY_AST_H
