# Empty dependencies file for pvp_session.
# This may be replaced when dependencies are built.
