//===- tests/parallel_test.cpp - ThreadPool, determinism, view cache ------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the fast-path overhaul: the ThreadPool itself, the byte-identity
/// guarantee of the parallel analysis pipeline (EV_THREADS=0 and
/// EV_THREADS=N must produce identical output), and the memoized PVP view
/// cache with its invalidation matrix. The `easyview_parallel` ctest entry
/// (and the tsan preset) runs exactly these suites.
///
//===----------------------------------------------------------------------===//

#include "analysis/Aggregate.h"
#include "analysis/Diff.h"
#include "analysis/Transform.h"
#include "ide/JsonRpc.h"
#include "ide/PvpServer.h"
#include "proto/EvProf.h"
#include "support/ThreadPool.h"
#include "workload/LuleshWorkload.h"

#include "TestHelpers.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>

#include <gtest/gtest.h>

using namespace ev;

//===----------------------------------------------------------------------===
// ThreadPool
//===----------------------------------------------------------------------===

TEST(ParallelThreadPool, SequentialModeRunsInlineInOrder) {
  ThreadPool Pool(0);
  EXPECT_TRUE(Pool.sequential());
  EXPECT_EQ(Pool.threadCount(), 1u);
  std::vector<size_t> Visited;
  Pool.parallelFor(100, [&](size_t I) { Visited.push_back(I); });
  ASSERT_EQ(Visited.size(), 100u);
  for (size_t I = 0; I < Visited.size(); ++I)
    EXPECT_EQ(Visited[I], I); // Ascending order: no workers at all.
}

TEST(ParallelThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.threadCount(), 4u);
  std::vector<std::atomic<int>> Hits(5000);
  Pool.parallelFor(Hits.size(), [&](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ParallelThreadPool, ParallelMapPreservesIndexOrder) {
  ThreadPool Pool(4);
  std::vector<uint64_t> Out =
      Pool.parallelMap<uint64_t>(10000, [](size_t I) { return I * I; });
  ASSERT_EQ(Out.size(), 10000u);
  for (size_t I = 0; I < Out.size(); ++I)
    ASSERT_EQ(Out[I], I * I);
}

TEST(ParallelThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(1000,
                                [](size_t I) {
                                  if (I == 537)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives a failed loop and runs the next one normally.
  std::atomic<size_t> Count{0};
  Pool.parallelFor(100, [&](size_t) { ++Count; });
  EXPECT_EQ(Count.load(), 100u);
}

TEST(ParallelThreadPool, ExceptionsPropagateInSequentialMode) {
  ThreadPool Pool(0);
  EXPECT_THROW(Pool.parallelFor(10,
                                [](size_t I) {
                                  if (I == 3)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ParallelThreadPool, NestedLoopsRunInline) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(64 * 64);
  Pool.parallelFor(64, [&](size_t Outer) {
    // A nested loop must not deadlock; it runs inline on this thread.
    Pool.parallelFor(64, [&](size_t Inner) { ++Hits[Outer * 64 + Inner]; });
  });
  for (size_t I = 0; I < Hits.size(); ++I)
    ASSERT_EQ(Hits[I].load(), 1);
}

//===----------------------------------------------------------------------===
// Byte-identity across thread counts
//===----------------------------------------------------------------------===

namespace {

/// Restores the shared pool to its environment-configured size so the rest
/// of the test binary is unaffected by thread-count sweeps.
class ParallelIdentity : public ::testing::TestWithParam<uint64_t> {
protected:
  void TearDown() override {
    ThreadPool::setSharedThreadCount(ThreadPool::configuredThreads());
  }
};

} // namespace

TEST_P(ParallelIdentity, TransformsMatchSequential) {
  Profile P = test::makeRandomProfile(GetParam());
  ThreadPool::setSharedThreadCount(0);
  std::string Up0 = writeEvProf(bottomUpTree(P));
  std::string Flat0 = writeEvProf(flatTree(P));
  ThreadPool::setSharedThreadCount(4);
  EXPECT_EQ(Up0, writeEvProf(bottomUpTree(P)));
  EXPECT_EQ(Flat0, writeEvProf(flatTree(P)));
}

TEST_P(ParallelIdentity, AggregateMatchesSequential) {
  Profile A = test::makeRandomProfile(GetParam());
  Profile B = test::makeRandomProfile(GetParam() + 1000);
  Profile C = test::makeRandomProfile(GetParam() + 2000);
  const Profile *Inputs[] = {&A, &B, &C};
  AggregateOptions Opt;
  Opt.WithMin = Opt.WithMax = Opt.WithMean = Opt.WithStddev = true;

  ThreadPool::setSharedThreadCount(0);
  AggregatedProfile Seq = aggregate(Inputs, Opt);
  std::string Seq0 = writeEvProf(Seq.merged());
  ThreadPool::setSharedThreadCount(4);
  AggregatedProfile Par = aggregate(Inputs, Opt);
  EXPECT_EQ(Seq0, writeEvProf(Par.merged()));

  // Histograms (per-profile exclusive and inclusive) match slot for slot.
  for (NodeId Id = 0; Id < Seq.merged().nodeCount(); Id += 7) {
    EXPECT_EQ(Seq.perProfileExclusive(Id, 0), Par.perProfileExclusive(Id, 0));
    EXPECT_EQ(Seq.perProfileInclusive(Id, 0), Par.perProfileInclusive(Id, 0));
  }
}

TEST_P(ParallelIdentity, DiffMatchesSequential) {
  Profile Base = test::makeRandomProfile(GetParam());
  Profile Test = test::makeRandomProfile(GetParam() + 5000);

  ThreadPool::setSharedThreadCount(0);
  DiffResult Seq = diffProfiles(Base, Test, 0);
  std::string Seq0 = writeEvProf(Seq.Merged);
  ThreadPool::setSharedThreadCount(4);
  DiffResult Par = diffProfiles(Base, Test, 0);
  EXPECT_EQ(Seq0, writeEvProf(Par.Merged));
  EXPECT_EQ(Seq.Tags, Par.Tags);
  EXPECT_EQ(Seq.BaseInclusive, Par.BaseInclusive);
  EXPECT_EQ(Seq.TestInclusive, Par.TestInclusive);
}

INSTANTIATE_TEST_SUITE_P(ParallelSeeds, ParallelIdentity,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

//===----------------------------------------------------------------------===
// Memoized view cache
//===----------------------------------------------------------------------===

namespace {

json::Object statsOf(PvpServer &Server) {
  json::Value Resp =
      Server.handleMessage(rpc::makeRequest(99, "pvp/stats", json::Object()));
  const json::Value *R = Resp.asObject().find("result");
  EXPECT_NE(R, nullptr);
  return R->asObject();
}

int64_t statInt(PvpServer &Server, std::string_view Key) {
  json::Object S = statsOf(Server);
  const json::Value *V = S.find(Key);
  EXPECT_NE(V, nullptr) << Key;
  return V ? V->asInt() : -1;
}

json::Object flameParams(int64_t Id) {
  json::Object P;
  P.set("profile", Id);
  P.set("maxRects", 256);
  return P;
}

} // namespace

TEST(ParallelViewCache, HitServesByteIdenticalReply) {
  PvpServer Server;
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  json::Value First =
      Server.handleMessage(rpc::makeRequest(1, "pvp/flame", flameParams(Id)));
  json::Value Second =
      Server.handleMessage(rpc::makeRequest(1, "pvp/flame", flameParams(Id)));
  EXPECT_EQ(First.dump(), Second.dump());
  EXPECT_EQ(statInt(Server, "cacheHits"), 1);
  EXPECT_EQ(statInt(Server, "cacheMisses"), 1);
}

TEST(ParallelViewCache, AllThreeViewMethodsAreCached) {
  PvpServer Server;
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  json::Object P;
  P.set("profile", Id);
  for (const char *Method : {"pvp/flame", "pvp/treeTable", "pvp/summary"}) {
    Server.handleMessage(rpc::makeRequest(1, Method, P));
    Server.handleMessage(rpc::makeRequest(2, Method, P));
  }
  EXPECT_EQ(statInt(Server, "cacheHits"), 3);
  EXPECT_EQ(statInt(Server, "cacheMisses"), 3);
  EXPECT_EQ(statInt(Server, "cachedViews"), 3);
}

TEST(ParallelViewCache, DifferentParamsMissSeparately) {
  PvpServer Server;
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  json::Object A = flameParams(Id);
  json::Object B = flameParams(Id);
  B.set("shape", "bottom-up");
  Server.handleMessage(rpc::makeRequest(1, "pvp/flame", A));
  Server.handleMessage(rpc::makeRequest(2, "pvp/flame", B));
  EXPECT_EQ(statInt(Server, "cacheHits"), 0);
  EXPECT_EQ(statInt(Server, "cacheMisses"), 2);
}

TEST(ParallelViewCache, InvalidationMatrix) {
  // Every state-retiring method must force the next view request to
  // recompute: the cached reply for the old generation can never be served.
  struct Case {
    const char *Method;
    void (*FillParams)(json::Object &, int64_t);
  };
  const Case Cases[] = {
      {"pvp/query",
       [](json::Object &P, int64_t Id) {
         P.set("profile", Id);
         P.set("program", "print total(\"time\");");
       }},
      {"pvp/transform",
       [](json::Object &P, int64_t Id) {
         P.set("profile", Id);
         P.set("shape", "bottom-up");
       }},
      {"pvp/prune",
       [](json::Object &P, int64_t Id) {
         P.set("profile", Id);
         P.set("minFraction", 0.5);
       }},
  };
  for (const Case &C : Cases) {
    PvpServer Server;
    int64_t Id = Server.addProfile(test::makeFixedProfile());
    Server.handleMessage(rpc::makeRequest(1, "pvp/flame", flameParams(Id)));
    json::Object MP;
    C.FillParams(MP, Id);
    json::Value MResp = Server.handleMessage(rpc::makeRequest(2, C.Method, MP));
    ASSERT_NE(MResp.asObject().find("result"), nullptr)
        << C.Method << ": " << MResp.dump();
    Server.handleMessage(rpc::makeRequest(3, "pvp/flame", flameParams(Id)));
    EXPECT_EQ(statInt(Server, "cacheHits"), 0) << C.Method;
    EXPECT_EQ(statInt(Server, "cacheMisses"), 2) << C.Method;
  }
}

TEST(ParallelViewCache, CloseInvalidatesAndNeverServesStaleViews) {
  PvpServer Server;
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  Server.handleMessage(rpc::makeRequest(1, "pvp/flame", flameParams(Id)));
  json::Object CP;
  CP.set("profile", Id);
  Server.handleMessage(rpc::makeRequest(2, "pvp/close", CP));
  json::Value After =
      Server.handleMessage(rpc::makeRequest(3, "pvp/flame", flameParams(Id)));
  // The profile is gone: the reply must be an error, not a cached view.
  EXPECT_NE(After.asObject().find("error"), nullptr);
  EXPECT_EQ(statInt(Server, "cacheHits"), 0);
}

TEST(ParallelViewCache, EvictionKeepsCapacityAndCounts) {
  ServerLimits Limits;
  Limits.MaxCachedViews = 2;
  PvpServer Server(Limits);
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  for (int MaxRects = 10; MaxRects < 15; ++MaxRects) {
    json::Object P;
    P.set("profile", Id);
    P.set("maxRects", MaxRects);
    Server.handleMessage(rpc::makeRequest(1, "pvp/flame", P));
  }
  EXPECT_EQ(statInt(Server, "cachedViews"), 2);
  EXPECT_EQ(statInt(Server, "cacheEvictions"), 3);
}

TEST(ParallelViewCache, LruKeepsRecentlyUsedEntries) {
  ServerLimits Limits;
  Limits.MaxCachedViews = 2;
  PvpServer Server(Limits);
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  json::Object A = flameParams(Id);
  json::Object B = flameParams(Id);
  B.set("shape", "bottom-up");
  json::Object C = flameParams(Id);
  C.set("shape", "flat");
  Server.handleMessage(rpc::makeRequest(1, "pvp/flame", A)); // miss, cache A
  Server.handleMessage(rpc::makeRequest(2, "pvp/flame", B)); // miss, cache B
  Server.handleMessage(rpc::makeRequest(3, "pvp/flame", A)); // hit, A fresh
  Server.handleMessage(rpc::makeRequest(4, "pvp/flame", C)); // evicts B
  Server.handleMessage(rpc::makeRequest(5, "pvp/flame", A)); // still a hit
  EXPECT_EQ(statInt(Server, "cacheHits"), 2);
  EXPECT_EQ(statInt(Server, "cacheEvictions"), 1);
}

TEST(ParallelViewCache, DisabledCacheNeverCounts) {
  ServerLimits Limits;
  Limits.MaxCachedViews = 0;
  PvpServer Server(Limits);
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  json::Value First =
      Server.handleMessage(rpc::makeRequest(1, "pvp/flame", flameParams(Id)));
  json::Value Second =
      Server.handleMessage(rpc::makeRequest(1, "pvp/flame", flameParams(Id)));
  EXPECT_EQ(First.dump(), Second.dump());
  EXPECT_EQ(statInt(Server, "cacheHits"), 0);
  EXPECT_EQ(statInt(Server, "cacheMisses"), 0);
  EXPECT_EQ(statInt(Server, "cachedViews"), 0);
}

TEST(ParallelViewCache, WarmRequestBeatsCold) {
  // The acceptance target is >=5x on repeated pvp/flame; asserted loosely
  // (>1x) so a noisy CI host cannot flake the suite. BENCH_pipeline.json
  // records the measured ratio.
  PvpServer Server;
  int64_t Id = Server.addProfile(workload::generateLuleshProfile());
  json::Object P;
  P.set("profile", Id);
  P.set("shape", "bottom-up");
  auto Once = [&] {
    auto T0 = std::chrono::steady_clock::now();
    Server.handleMessage(rpc::makeRequest(1, "pvp/flame", P));
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - T0)
        .count();
  };
  double Cold = Once();
  double Warm = Once();
  for (int I = 0; I < 4; ++I)
    Warm = std::min(Warm, Once());
  EXPECT_EQ(statInt(Server, "cacheHits"), 5);
  EXPECT_LT(Warm, Cold);
}
