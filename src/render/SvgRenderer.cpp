//===- render/SvgRenderer.cpp - SVG flame graph back end ------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "render/SvgRenderer.h"

#include "support/Strings.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace ev {

namespace {

void appendf(std::string &Out, const char *Format, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Format, ...) {
  char Buffer[512];
  va_list Args;
  va_start(Args, Format);
  int N = std::vsnprintf(Buffer, sizeof(Buffer), Format, Args);
  va_end(Args);
  if (N > 0)
    Out.append(Buffer, std::min<size_t>(static_cast<size_t>(N),
                                        sizeof(Buffer) - 1));
}

} // namespace

std::string renderSvg(const FlameGraph &Graph, const SvgOptions &Options) {
  const Profile &P = Graph.profile();
  unsigned HeaderPx = Options.Title.empty() ? 0 : 24;
  unsigned HeightPx = HeaderPx + Graph.depth() * Options.RowHeightPx + 4;

  std::string Out;
  Out.reserve(Graph.rects().size() * 160 + 512);
  appendf(Out,
          "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%u\" "
          "height=\"%u\" font-family=\"monospace\" font-size=\"11\">\n",
          Options.WidthPx, HeightPx);
  Out += "<rect width=\"100%\" height=\"100%\" fill=\"#f8f8f8\"/>\n";
  if (!Options.Title.empty()) {
    appendf(Out, "<text x=\"4\" y=\"15\" font-size=\"13\">%s</text>\n",
            escapeXml(Options.Title).c_str());
  }

  const std::string &Unit =
      Graph.metric() < P.metrics().size() ? P.metrics()[Graph.metric()].Unit
                                          : std::string("count");

  for (const FlameRect &R : Graph.rects()) {
    double X = R.X * Options.WidthPx;
    double W = R.Width * Options.WidthPx;
    unsigned Row = Options.Inverted ? R.Depth
                                    : (Graph.depth() - 1 - R.Depth);
    double Y = HeaderPx + static_cast<double>(Row) * Options.RowHeightPx;

    Rgb Color = R.Highlighted ? searchHighlightColor() : R.Color;
    std::string Name(P.nameOf(R.Node));
    const Frame &F = P.frameOf(R.Node);
    std::string Tooltip = Name;
    if (F.Loc.hasSourceMapping()) {
      Tooltip += " (";
      Tooltip += P.text(F.Loc.File);
      Tooltip += ":" + std::to_string(F.Loc.Line) + ")";
    }
    Tooltip += " — " + formatMetric(R.Value, Unit) + " (" +
               formatDouble(100.0 * R.Width, 2) + "%)";

    appendf(Out,
            "<g><rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%u\" "
            "fill=\"%s\" stroke=\"#f8f8f8\" stroke-width=\"0.5\">",
            X, Y, W, Options.RowHeightPx - 1, toHexColor(Color).c_str());
    appendf(Out, "<title>%s</title></rect>", escapeXml(Tooltip).c_str());

    // Fit the label: ~6.6 px per character at font-size 11.
    size_t FitChars = static_cast<size_t>(W / 6.6);
    if (FitChars >= 3) {
      std::string Label = Name.size() > FitChars
                              ? Name.substr(0, FitChars - 2) + ".."
                              : Name;
      appendf(Out,
              "<text x=\"%.2f\" y=\"%.2f\" fill=\"#1a1a1a\">%s</text>",
              X + 2.0, Y + Options.RowHeightPx - 4.0,
              escapeXml(Label).c_str());
    }
    Out += "</g>\n";
  }
  Out += "</svg>\n";
  return Out;
}

} // namespace ev
