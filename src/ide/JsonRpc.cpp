//===- ide/JsonRpc.cpp - LSP-style JSON-RPC 2.0 transport -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ide/JsonRpc.h"

#include "support/Strings.h"

#include <algorithm>
#include <limits>

namespace ev {
namespace rpc {

json::Value makeRequest(int64_t Id, std::string_view Method,
                        json::Value Params) {
  json::Object Msg;
  Msg.set("jsonrpc", "2.0");
  Msg.set("id", Id);
  Msg.set("method", std::string(Method));
  Msg.set("params", std::move(Params));
  return Msg;
}

json::Value makeNotification(std::string_view Method, json::Value Params) {
  json::Object Msg;
  Msg.set("jsonrpc", "2.0");
  Msg.set("method", std::string(Method));
  Msg.set("params", std::move(Params));
  return Msg;
}

json::Value makeResponse(int64_t Id, json::Value ResultValue) {
  json::Object Msg;
  Msg.set("jsonrpc", "2.0");
  Msg.set("id", Id);
  Msg.set("result", std::move(ResultValue));
  return Msg;
}

json::Value makeErrorResponse(int64_t Id, int Code,
                              std::string_view Message) {
  json::Object Err;
  Err.set("code", Code);
  Err.set("message", std::string(Message));
  json::Object Msg;
  Msg.set("jsonrpc", "2.0");
  Msg.set("id", Id);
  Msg.set("error", std::move(Err));
  return Msg;
}

std::string frame(const json::Value &Payload) {
  std::string Body = Payload.dump();
  return "Content-Length: " + std::to_string(Body.size()) + "\r\n\r\n" +
         Body;
}

static constexpr std::string_view HeaderMarker = "Content-Length:";

void FrameReader::recordError(int Code, std::string Message) {
  Errors.push_back({Code, std::move(Message)});
}

const std::string &FrameReader::errorMessage() const {
  static const std::string Empty;
  return Errors.empty() ? Empty : Errors.back().Message;
}

std::vector<FrameError> FrameReader::takeErrors() {
  std::vector<FrameError> Out;
  Out.swap(Errors);
  return Out;
}

void FrameReader::resync(size_t From) {
  ++Resyncs;
  size_t Next = Buffer.find(HeaderMarker, std::min(From, Buffer.size()));
  if (Next == std::string::npos) {
    // No candidate header yet. Keep only a marker-sized tail so a header
    // split across feeds still matches, and drop the rest.
    size_t Keep = std::min(Buffer.size(), HeaderMarker.size() - 1);
    Dropped += Buffer.size() - Keep;
    Buffer.erase(0, Buffer.size() - Keep);
    return;
  }
  Dropped += Next;
  Buffer.erase(0, Next);
}

void FrameReader::compact() {
  // erase(0, n) shifts contents but never releases std::string capacity,
  // so a single large frame would otherwise pin its high-water allocation
  // for the connection's lifetime. Reallocate down once the live bytes are
  // a small fraction of the allocation; the threshold keeps steady-state
  // traffic (small frames, warm buffer) free of churn.
  if (Buffer.capacity() <= Opts.CompactThresholdBytes ||
      Buffer.size() >= Buffer.capacity() / 4)
    return;
  std::string Shrunk(Buffer);
  Shrunk.shrink_to_fit();
  Buffer.swap(Shrunk);
}

std::optional<json::Value> FrameReader::poll() {
  for (;;) {
    // First discard any oversized body still in flight; its bytes are
    // consumed as they arrive and never accumulate.
    if (SkipRemaining > 0) {
      size_t Chunk = std::min(SkipRemaining, Buffer.size());
      Buffer.erase(0, Chunk);
      Dropped += Chunk;
      SkipRemaining -= Chunk;
      if (SkipRemaining > 0) {
        compact();
        return std::nullopt;
      }
    }

    // Look for the end of the header block.
    size_t HeaderEnd = Buffer.find("\r\n\r\n");
    if (HeaderEnd == std::string::npos) {
      if (Buffer.size() > Opts.MaxHeaderBytes) {
        recordError(ParseError, "unterminated header block");
        resync(1);
        continue;
      }
      compact();
      return std::nullopt;
    }

    size_t ContentLength = std::string::npos;
    bool BadHeader = false;
    std::string HeaderDiag;
    std::string_view Headers(Buffer.data(), HeaderEnd);
    for (std::string_view Line : splitLines(Headers)) {
      std::string_view Trimmed = trim(Line);
      if (startsWith(Trimmed, HeaderMarker)) {
        std::string_view Num = trim(Trimmed.substr(HeaderMarker.size()));
        uint64_t Length;
        if (startsWith(Num, "-")) {
          BadHeader = true;
          HeaderDiag = "negative Content-Length";
        } else if (!parseUnsigned(Num, Length) ||
                   Length > std::numeric_limits<size_t>::max() / 2) {
          // parseUnsigned rejects overflowing values; the explicit half-
          // range check also refuses lengths no buffer could ever hold.
          BadHeader = true;
          HeaderDiag = "invalid Content-Length header";
        } else {
          ContentLength = static_cast<size_t>(Length);
        }
      }
      // Content-Type headers are tolerated and ignored.
    }
    if (BadHeader || ContentLength == std::string::npos) {
      recordError(ParseError, BadHeader ? HeaderDiag
                                        : "missing Content-Length header");
      // The body length is unknowable. A valid header may be glued onto
      // junk inside this very block (stray bytes ahead of the next frame
      // make its first line unrecognizable) — realign on an embedded
      // marker if one exists, otherwise discard the block wholesale.
      size_t Embedded = Buffer.find(HeaderMarker, 1);
      if (Embedded != std::string::npos && Embedded < HeaderEnd) {
        ++Resyncs;
        Dropped += Embedded;
        Buffer.erase(0, Embedded);
      } else {
        Dropped += HeaderEnd + 4;
        Buffer.erase(0, HeaderEnd + 4);
        resync(0);
      }
      continue;
    }
    if (ContentLength > Opts.MaxFrameBytes) {
      recordError(RequestTooLarge,
                  "frame of " + std::to_string(ContentLength) +
                      " bytes exceeds the " +
                      std::to_string(Opts.MaxFrameBytes) + " byte cap");
      Dropped += HeaderEnd + 4;
      Buffer.erase(0, HeaderEnd + 4);
      SkipRemaining = ContentLength;
      continue;
    }
    size_t BodyStart = HeaderEnd + 4;
    if (Buffer.size() - BodyStart < ContentLength)
      return std::nullopt; // Body not fully buffered yet.

    std::string_view Body(Buffer.data() + BodyStart, ContentLength);
    Result<json::Value> Doc = json::parse(Body);
    Buffer.erase(0, BodyStart + ContentLength);
    if (!Doc) {
      // One bad body costs one error; the stream stays usable.
      recordError(ParseError, Doc.error());
      continue;
    }
    compact();
    return Doc.take();
  }
}

} // namespace rpc
} // namespace ev
