//===- support/Limits.cpp - Decode limits and resource guards -------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Limits.h"

#include <limits>

namespace ev {

const DecodeLimits &DecodeLimits::defaults() {
  static const DecodeLimits Defaults;
  return Defaults;
}

DecodeLimits DecodeLimits::unlimited() {
  DecodeLimits L;
  constexpr size_t Max = std::numeric_limits<size_t>::max();
  L.MaxInputBytes = Max;
  L.MaxNodes = Max;
  L.MaxFrames = Max;
  L.MaxStrings = Max;
  L.MaxStringBytes = Max;
  L.MaxMetrics = Max;
  L.MaxTreeDepth = Max;
  L.MaxAllocBytes = Max;
  return L;
}

const AnalysisLimits &AnalysisLimits::defaults() {
  static const AnalysisLimits Defaults;
  return Defaults;
}

bool ResourceGuard::trip(const char *What) {
  if (!Tripped) {
    Tripped = true;
    Diagnostic = std::string("decode limit exceeded: ") + What;
  }
  return false;
}

bool ResourceGuard::chargeNode() {
  if (Tripped || ++Nodes > Limits.MaxNodes)
    return trip("too many nodes");
  return true;
}

bool ResourceGuard::chargeFrame() {
  if (Tripped || ++Frames > Limits.MaxFrames)
    return trip("too many frames");
  return true;
}

bool ResourceGuard::chargeString(size_t Bytes) {
  if (Tripped || ++Strings > Limits.MaxStrings)
    return trip("too many strings");
  StringBytes += Bytes;
  if (StringBytes > Limits.MaxStringBytes)
    return trip("string table too large");
  return true;
}

bool ResourceGuard::chargeMetric() {
  if (Tripped || ++Metrics > Limits.MaxMetrics)
    return trip("too many metrics");
  return true;
}

bool ResourceGuard::chargeAlloc(size_t Bytes) {
  if (Tripped)
    return false;
  AllocBytes += Bytes;
  if (AllocBytes > Limits.MaxAllocBytes)
    return trip("allocation budget exhausted");
  return true;
}

bool ResourceGuard::checkDepth(size_t Depth) {
  if (Tripped || Depth > Limits.MaxTreeDepth)
    return trip("tree too deep");
  return true;
}

} // namespace ev
