//===- workload/ReuseWorkload.h - Fig. 7 use-reuse case study -------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes the DrCCTProf memory-reuse profile of LULESH (paper Fig. 7):
/// a data-centric profile where array allocations are DataObject contexts
/// and each reuse tuple binds three contexts — the allocation, a use, and
/// the following reuse — to an occurrence count via a ContextGroup of kind
/// "reuse". The hottest tuple sits in CalcHourglassControlForElems /
/// CalcFBHourglassForceForElems, the pair the paper's locality optimization
/// (hoisting to the least common ancestor + loop fusion) targets for its
/// additional 28% speedup.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_WORKLOAD_REUSEWORKLOAD_H
#define EASYVIEW_WORKLOAD_REUSEWORKLOAD_H

#include "profile/Profile.h"

#include <cstdint>
#include <string>

namespace ev {
namespace workload {

struct ReuseOptions {
  uint64_t Seed = 13;
};

struct ReuseWorkload {
  Profile P;
  /// Name of the array whose use/reuse pair is the optimization target.
  std::string HotArray;
  /// Function containing the hot use and reuse.
  std::string HotFunction;
};

ReuseWorkload generateReuseWorkload(const ReuseOptions &Options = {});

} // namespace workload
} // namespace ev

#endif // EASYVIEW_WORKLOAD_REUSEWORKLOAD_H
