# Empty compiler generated dependencies file for memory_scaling.
# This may be replaced when dependencies are built.
