//===- tests/pvp_actions_test.cpp - Extended PVP method tests -------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ide/MockIde.h"

#include "TestHelpers.h"
#include "convert/Converters.h"
#include "proto/EvProf.h"
#include "support/Strings.h"
#include "workload/ReuseWorkload.h"

#include <gtest/gtest.h>

using namespace ev;

namespace {

class PvpActionsTest : public ::testing::Test {
protected:
  void SetUp() override {
    Result<int64_t> Id = Ide.openProfile(
        "fixed.evprof", writeEvProf(test::makeFixedProfile()));
    ASSERT_TRUE(Id.ok()) << Id.error();
    ProfileId = *Id;
  }

  Result<json::Value> call(const char *Method, json::Object Params) {
    return Ide.call(Method, std::move(Params));
  }

  MockIde Ide;
  int64_t ProfileId = 0;
};

} // namespace

TEST_F(PvpActionsTest, TransformMaterializesShapes) {
  for (const char *Shape :
       {"top-down", "bottom-up", "flat", "collapse-recursion"}) {
    json::Object P;
    P.set("profile", ProfileId);
    P.set("shape", Shape);
    Result<json::Value> R = call("pvp/transform", std::move(P));
    ASSERT_TRUE(R.ok()) << Shape << ": " << R.error();
    int64_t NewId = R->asObject().find("profile")->asInt();
    EXPECT_NE(Ide.server().profile(NewId), nullptr) << Shape;
    EXPECT_GT(R->asObject().find("nodes")->asInt(), 1) << Shape;
  }
  json::Object Bad;
  Bad.set("profile", ProfileId);
  Bad.set("shape", "helix");
  EXPECT_FALSE(call("pvp/transform", std::move(Bad)).ok());
}

TEST_F(PvpActionsTest, PruneRemovesColdContexts) {
  json::Object P;
  P.set("profile", ProfileId);
  P.set("minFraction", 0.25);
  Result<json::Value> R = call("pvp/prune", std::move(P));
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_GT(R->asObject().find("removed")->asInt(), 0);
  int64_t NewId = R->asObject().find("profile")->asInt();
  const Profile *Pruned = Ide.server().profile(NewId);
  ASSERT_NE(Pruned, nullptr);
  for (NodeId Id = 0; Id < Pruned->nodeCount(); ++Id)
    EXPECT_NE(Pruned->nameOf(Id), "parse");

  json::Object Bad;
  Bad.set("profile", ProfileId);
  Bad.set("minFraction", 2.0);
  EXPECT_FALSE(call("pvp/prune", std::move(Bad)).ok());
}

TEST_F(PvpActionsTest, ExportRoundTripsThroughOpen) {
  for (const char *Fmt :
       {"evprof", "pprof", "collapsed", "speedscope", "chrome"}) {
    json::Object P;
    P.set("profile", ProfileId);
    P.set("format", Fmt);
    Result<json::Value> R = call("pvp/export", std::move(P));
    ASSERT_TRUE(R.ok()) << Fmt << ": " << R.error();
    std::string Bytes;
    ASSERT_TRUE(base64Decode(
        std::string(R->asObject().find("dataBase64")->stringOr("")),
        Bytes))
        << Fmt;
    EXPECT_EQ(Bytes.size(),
              static_cast<size_t>(R->asObject().find("bytes")->asInt()));
    // Exported bytes re-open through the data plane.
    Result<int64_t> Again =
        Ide.openProfile(std::string("again.") + Fmt, Bytes);
    ASSERT_TRUE(Again.ok()) << Fmt << ": " << Again.error();
  }
  json::Object Bad;
  Bad.set("profile", ProfileId);
  Bad.set("format", "dot");
  EXPECT_FALSE(call("pvp/export", std::move(Bad)).ok());
}

TEST_F(PvpActionsTest, ButterflyOverRpc) {
  json::Object P;
  P.set("profile", ProfileId);
  P.set("function", "compute");
  Result<json::Value> R = call("pvp/butterfly", std::move(P));
  ASSERT_TRUE(R.ok()) << R.error();
  const json::Object &Obj = R->asObject();
  EXPECT_DOUBLE_EQ(Obj.find("totalInclusive")->asNumber(), 75.0);
  EXPECT_EQ(Obj.find("callers")
                ->asArray()[0]
                .asObject()
                .find("name")
                ->asString(),
            "main");
  EXPECT_EQ(Obj.find("callees")
                ->asArray()[0]
                .asObject()
                .find("name")
                ->asString(),
            "kernel");

  json::Object Bad;
  Bad.set("profile", ProfileId);
  Bad.set("function", "nothing");
  EXPECT_FALSE(call("pvp/butterfly", std::move(Bad)).ok());
}

TEST_F(PvpActionsTest, CorrelatedPanesOverRpc) {
  workload::ReuseWorkload W = workload::generateReuseWorkload();
  int64_t ReuseId = Ide.server().addProfile(std::move(W.P));

  json::Object P;
  P.set("profile", ReuseId);
  P.set("kind", "reuse");
  Result<json::Value> R = call("pvp/correlated", std::move(P));
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R->asObject().find("roles")->asInt(), 3);
  const json::Array &Panes = R->asObject().find("panes")->asArray();
  ASSERT_EQ(Panes.size(), 3u);
  ASSERT_FALSE(Panes[0].asArray().empty());

  // Select the hottest allocation via the RPC, narrowing the groups.
  int64_t HotNode =
      Panes[0].asArray()[0].asObject().find("node")->asInt();
  json::Object P2;
  P2.set("profile", ReuseId);
  P2.set("kind", "reuse");
  json::Array Select;
  Select.push_back(HotNode);
  P2.set("select", std::move(Select));
  Result<json::Value> R2 = call("pvp/correlated", std::move(P2));
  ASSERT_TRUE(R2.ok()) << R2.error();
  EXPECT_EQ(R2->asObject().find("activeGroups")->asInt(), 1);
  EXPECT_FALSE(
      R2->asObject().find("panes")->asArray()[1].asArray().empty());

  json::Object Bad;
  Bad.set("profile", ReuseId);
  Bad.set("kind", "race");
  EXPECT_FALSE(call("pvp/correlated", std::move(Bad)).ok());
}

TEST_F(PvpActionsTest, TransformedProfileServesViews) {
  // Chain: transform to bottom-up, then fetch its flame over RPC.
  json::Object P;
  P.set("profile", ProfileId);
  P.set("shape", "bottom-up");
  Result<json::Value> R = call("pvp/transform", std::move(P));
  ASSERT_TRUE(R.ok());
  int64_t UpId = R->asObject().find("profile")->asInt();

  json::Object F;
  F.set("profile", UpId);
  Result<json::Value> Flame = call("pvp/flame", std::move(F));
  ASSERT_TRUE(Flame.ok()) << Flame.error();
  EXPECT_DOUBLE_EQ(Flame->asObject().find("total")->asNumber(), 100.0);
}
