//===- tool/CliDriver.h - The evtool command-line driver ------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the `evtool` command line, separated from main() so
/// the test suite can drive it in-process with captured output.
///
/// \code
///   evtool info <profile>
///   evtool summary <profile>
///   evtool flame <profile> [--shape top-down|bottom-up|flat]
///                [--metric NAME] [--svg <out.svg>] [--columns N]
///   evtool table <profile> [--rows N]
///   evtool convert <in> <out> [--to evprof|pprof|collapsed|speedscope|
///                                   chrome]
///   evtool diff <base> <test> [--metric NAME]
///   evtool aggregate <out.evprof> <in...>
///   evtool query <profile> (-e <program> | --file <program.evql>)
///   evtool butterfly <profile> <function> [--metric NAME]
///   evtool report <profile> <out.html>
/// \endcode
///
/// Profiles load through format auto-detection, so any supported input
/// format works everywhere a <profile> is expected.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_TOOL_CLIDRIVER_H
#define EASYVIEW_TOOL_CLIDRIVER_H

#include <string>
#include <vector>

namespace ev {
namespace tool {

/// Runs one evtool invocation. \p Args excludes the program name.
/// \returns the process exit code; normal output accumulates in \p Out,
/// diagnostics in \p Err.
int runEvTool(const std::vector<std::string> &Args, std::string &Out,
              std::string &Err);

/// The usage text printed for `evtool help` and argument errors.
std::string usageText();

} // namespace tool
} // namespace ev

#endif // EASYVIEW_TOOL_CLIDRIVER_H
