//===- analysis/MetricEngine.cpp - Inclusive/exclusive metric math --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/MetricEngine.h"

#include <algorithm>

namespace ev {

std::vector<double> exclusiveColumn(const Profile &P, MetricId Metric) {
  std::vector<double> Column(P.nodeCount(), 0.0);
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    Column[Id] = P.node(Id).metricOr(Metric);
  return Column;
}

std::vector<double> inclusiveColumn(const Profile &P, MetricId Metric) {
  std::vector<double> Column = exclusiveColumn(P, Metric);
  // Nodes are created parents-first (Profile::createNode guarantees
  // Parent < Id), so one reverse sweep accumulates children into parents.
  for (NodeId Id = static_cast<NodeId>(P.nodeCount()); Id > 1;) {
    --Id;
    Column[P.node(Id).Parent] += Column[Id];
  }
  return Column;
}

double metricTotal(const Profile &P, MetricId Metric) {
  double Total = 0.0;
  for (const CCTNode &Node : P.nodes())
    Total += Node.metricOr(Metric);
  return Total;
}

std::vector<HotNode> hottestExclusive(const Profile &P, MetricId Metric,
                                      size_t Limit) {
  std::vector<HotNode> All;
  All.reserve(P.nodeCount());
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
    double Value = P.node(Id).metricOr(Metric);
    if (Value != 0.0)
      All.push_back({Id, Value});
  }
  auto ByValueDesc = [](const HotNode &A, const HotNode &B) {
    if (A.Value != B.Value)
      return A.Value > B.Value;
    return A.Node < B.Node;
  };
  if (All.size() > Limit) {
    std::partial_sort(All.begin(), All.begin() + static_cast<long>(Limit),
                      All.end(), ByValueDesc);
    All.resize(Limit);
  } else {
    std::sort(All.begin(), All.end(), ByValueDesc);
  }
  return All;
}

MetricView::MetricView(const Profile &P, MetricId Metric)
    : Metric(Metric), Exclusive(ev::exclusiveColumn(P, Metric)),
      Inclusive(Exclusive) {
  for (NodeId Id = static_cast<NodeId>(P.nodeCount()); Id > 1;) {
    --Id;
    Inclusive[P.node(Id).Parent] += Inclusive[Id];
  }
}

} // namespace ev
