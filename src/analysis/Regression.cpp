//===- analysis/Regression.cpp - Differential regression analysis ---------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Regression.h"

#include "support/Strings.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

namespace ev {

const std::vector<RegressionRuleInfo> &regressionRules() {
  static const std::vector<RegressionRuleInfo> Rules = {
      {"EVL300", "exclusive-time-regression", Severity::Warning,
       "a context's mean exclusive metric value grew past the absolute, "
       "relative, and sigma thresholds"},
      {"EVL301", "exclusive-time-improvement", Severity::Info,
       "a context's mean exclusive metric value shrank past the thresholds"},
      {"EVL302", "new-hot-path", Severity::Warning,
       "a context absent from the base cohort holds a significant share of "
       "the test cohort's total"},
      {"EVL303", "disappeared-frame", Severity::Info,
       "a context holding a significant share of the base cohort's total is "
       "absent from the test cohort"},
      {"EVL304", "inclusive-share-shift", Severity::Warning,
       "a subtree's share of the cohort total grew by more than the share "
       "threshold"},
      {"EVL305", "fan-out-explosion", Severity::Warning,
       "a context's child count multiplied between cohorts"},
      {"EVL306", "allocation-drift", Severity::Warning,
       "a bytes-unit metric drifted past the allocation thresholds"},
      {"EVL307", "cohort-schema-mismatch", Severity::Error,
       "the two cohorts disagree on the metric schema"},
      {"EVL308", "total-regression", Severity::Warning,
       "the whole-cohort mean total of a metric grew past the relative "
       "threshold"},
  };
  return Rules;
}

const RegressionRuleInfo *findRegressionRule(std::string_view IdOrName) {
  for (const RegressionRuleInfo &Rule : regressionRules())
    if (Rule.Id == IdOrName || Rule.Name == IdOrName)
      return &Rule;
  return nullptr;
}

namespace {

/// Textual identity of one frame, the pairing key between the two cohort
/// shapes (each has its own string table, so ids do not transfer).
struct FrameKey {
  FrameKind Kind;
  std::string_view Name;
  std::string_view File;
  std::string_view Module;
  uint32_t Line;

  bool operator==(const FrameKey &O) const = default;
};

struct FrameKeyHash {
  size_t operator()(const FrameKey &K) const {
    uint64_t H = static_cast<uint64_t>(K.Kind);
    auto Mix = [&H](uint64_t V) {
      H ^= V + 0x9E3779B97F4A7C15ULL + (H << 6) + (H >> 2);
    };
    Mix(std::hash<std::string_view>{}(K.Name));
    Mix(std::hash<std::string_view>{}(K.File));
    Mix(std::hash<std::string_view>{}(K.Module));
    Mix(K.Line);
    return static_cast<size_t>(H);
  }
};

FrameKey keyOf(const Profile &P, NodeId Id) {
  const Frame &F = P.frameOf(Id);
  return {F.Kind, P.text(F.Name), P.text(F.Loc.File), P.text(F.Loc.Module),
          F.Loc.Line};
}

/// One finding plus its sort key; emitted into the DiagnosticSet only
/// after the full walk so output order is independent of traversal and
/// thread count.
struct PendingFinding {
  std::string_view RuleId;
  std::string Path;
  std::string Metric;
  Diagnostic D;
};

std::string renderPath(const Profile &P, NodeId Id, size_t MaxSegments) {
  std::vector<NodeId> Nodes = P.pathTo(Id);
  std::string Out;
  size_t First = 1; // Skip the root.
  bool Truncated = false;
  if (Nodes.size() > MaxSegments + 1) {
    First = Nodes.size() - MaxSegments;
    Truncated = true;
  }
  if (Truncated)
    Out += "... > ";
  for (size_t I = First; I < Nodes.size(); ++I) {
    if (I != First)
      Out += " > ";
    std::string_view Name = P.nameOf(Nodes[I]);
    Out += Name.empty() ? std::string_view("(unnamed)") : Name;
  }
  if (Out.empty())
    Out = "(root)";
  return Out;
}

std::string percent(double Fraction) {
  return formatDouble(Fraction * 100.0, 1) + "%";
}

std::string signedDelta(double Delta, std::string_view Unit) {
  std::string Out = Delta >= 0 ? "+" : "-";
  Out += formatMetric(std::fabs(Delta), Unit);
  return Out;
}

} // namespace

void RegressionAnalyzer::analyze(const CohortAccumulator &Base,
                                 const CohortAccumulator &Test,
                                 DiagnosticSet &Out,
                                 const CancelToken &Cancel) const {
  trace::Span Span("analysis/regress", "analysis");
  const Profile &BP = Base.shape();
  const Profile &TP = Test.shape();
  if (Base.profileCount() == 0 || Test.profileCount() == 0)
    return;

  auto Enabled = [&](const RegressionRuleInfo &Rule) {
    if (Rule.DefaultSev < Opts.MinSeverity)
      return false;
    for (const std::string &D : Opts.Disabled)
      if (Rule.Id == D || Rule.Name == D)
        return false;
    return true;
  };

  std::vector<PendingFinding> Pending;
  auto Emit = [&](std::string_view RuleId, std::string Path,
                  std::string Metric, std::string Message, std::string Hint,
                  NodeId Node) {
    const RegressionRuleInfo *Rule = findRegressionRule(RuleId);
    assert(Rule && "unknown regression rule id");
    if (!Enabled(*Rule))
      return;
    Diagnostic D;
    D.Id = std::string(Rule->Id);
    D.Sev = Rule->DefaultSev;
    D.Message = std::move(Message);
    D.Rule = std::string(Rule->Name);
    D.Hint = std::move(Hint);
    D.Node = Node;
    Pending.push_back(
        {Rule->Id, std::move(Path), std::move(Metric), std::move(D)});
  };

  // Pair the metric schemas by name; disagreement is itself a finding
  // (EVL307) and analysis proceeds over the intersection.
  struct MetricPair {
    MetricId BaseId;
    MetricId TestId;
    std::string Name;
    std::string Unit;
    bool IsBytes;
  };
  std::vector<MetricPair> Metrics;
  for (MetricId T = 0; T < TP.metrics().size(); ++T) {
    const MetricDescriptor &M = TP.metrics()[T];
    MetricId B = BP.findMetric(M.Name);
    if (B == Profile::InvalidMetric) {
      Emit("EVL307", "(root)", M.Name,
           "metric schemas disagree between cohorts: '" + M.Name +
               "' is present only in the test cohort",
           "aggregate cohorts captured with the same profiler configuration",
           TP.root());
      continue;
    }
    Metrics.push_back({B, T, M.Name, M.Unit, M.Unit == "bytes"});
  }
  for (MetricId B = 0; B < BP.metrics().size(); ++B) {
    const MetricDescriptor &M = BP.metrics()[B];
    if (TP.findMetric(M.Name) == Profile::InvalidMetric)
      Emit("EVL307", "(root)", M.Name,
           "metric schemas disagree between cohorts: '" + M.Name +
               "' is present only in the base cohort",
           "aggregate cohorts captured with the same profiler configuration",
           TP.root());
  }

  // Cohort-sum inclusive columns per paired metric, the denominator of
  // every share-based rule (EVL302/303/304/308).
  std::vector<std::vector<double>> BaseIncl(Metrics.size());
  std::vector<std::vector<double>> TestIncl(Metrics.size());
  for (size_t M = 0; M < Metrics.size(); ++M) {
    BaseIncl[M] = Base.inclusiveSumColumn(Metrics[M].BaseId);
    TestIncl[M] = Test.inclusiveSumColumn(Metrics[M].TestId);
  }

  double NB = static_cast<double>(Base.profileCount());
  double NT = static_cast<double>(Test.profileCount());

  // EVL308: whole-cohort mean totals (per-profile total distributions are
  // not retained, so this gate is relative + absolute only).
  for (size_t M = 0; M < Metrics.size(); ++M) {
    double MeanB = BaseIncl[M][BP.root()] / NB;
    double MeanT = TestIncl[M][TP.root()] / NT;
    double Delta = MeanT - MeanB;
    double Rel = Delta / std::max(std::fabs(MeanB), 1e-12);
    if (Delta >= Opts.AbsoluteMin && Rel >= Opts.RelativeMin)
      Emit("EVL308", "(root)", Metrics[M].Name,
           "cohort total for " + Metrics[M].Name + " regressed: base mean " +
               formatMetric(MeanB, Metrics[M].Unit) + ", test mean " +
               formatMetric(MeanT, Metrics[M].Unit) + " (" +
               signedDelta(Delta, Metrics[M].Unit) + ", +" +
               formatDouble(Rel * 100.0, 1) + "%)",
           "per-context findings below attribute the growth",
           TP.root());
  }

  // Lockstep walk over the two shapes, contexts paired by textual frame
  // identity under a paired parent.
  std::vector<std::pair<NodeId, NodeId>> Stack;
  Stack.emplace_back(BP.root(), TP.root());
  size_t Visited = 0;
  while (!Stack.empty()) {
    auto [B, T] = Stack.back();
    Stack.pop_back();
    if ((++Visited & 255) == 0)
      Cancel.checkpoint();
    if (Base.isFolded(B) || Test.isFolded(T))
      continue; // Catch-all nodes carry sums without attribution.

    bool IsRoot = B == BP.root();
    for (size_t M = 0; M < Metrics.size(); ++M) {
      const MetricPair &MP = Metrics[M];
      CohortNodeStats SB = Base.stats(B, MP.BaseId);
      CohortNodeStats ST = Test.stats(T, MP.TestId);
      if (SB.Present == 0 && ST.Present == 0)
        continue;
      double Delta = ST.Mean - SB.Mean;
      double Rel = std::fabs(Delta) / std::max(std::fabs(SB.Mean), 1e-12);
      // Welch standard error of the difference of cohort means.
      double SE = std::sqrt(SB.Stddev * SB.Stddev / NB +
                            ST.Stddev * ST.Stddev / NT);
      bool Significant = std::fabs(Delta) >= Opts.SigmaGate * SE;
      if (MP.IsBytes) {
        if (std::fabs(Delta) >= Opts.AllocAbsoluteMin &&
            Rel >= Opts.AllocRelativeMin && Significant &&
            std::fabs(Delta) > 0.0) {
          std::string Path = renderPath(TP, T, Opts.MaxPathSegments);
          Emit("EVL306", Path, MP.Name,
               "allocation metric " + MP.Name + " drifted on " + Path +
                   ": base mean " + formatMetric(SB.Mean, MP.Unit) +
                   ", test mean " + formatMetric(ST.Mean, MP.Unit) + " (" +
                   signedDelta(Delta, MP.Unit) + ", " +
                   (Delta >= 0 ? "+" : "-") + formatDouble(Rel * 100.0, 1) +
                   "%)",
               "check allocation sites in this subtree for size changes",
               T);
        }
      } else if (std::fabs(Delta) >= Opts.AbsoluteMin &&
                 Rel >= Opts.RelativeMin && Significant &&
                 std::fabs(Delta) > 0.0) {
        std::string Path = renderPath(TP, T, Opts.MaxPathSegments);
        if (Delta > 0)
          Emit("EVL300", Path, MP.Name,
               "exclusive " + MP.Name + " regressed on " + Path +
                   ": base mean " + formatMetric(SB.Mean, MP.Unit) +
                   ", test mean " + formatMetric(ST.Mean, MP.Unit) + " (" +
                   signedDelta(Delta, MP.Unit) + ", +" +
                   formatDouble(Rel * 100.0, 1) + "%)",
               "inspect this context with 'evtool diff' or pvp/flame", T);
        else
          Emit("EVL301", Path, MP.Name,
               "exclusive " + MP.Name + " improved on " + Path +
                   ": base mean " + formatMetric(SB.Mean, MP.Unit) +
                   ", test mean " + formatMetric(ST.Mean, MP.Unit) + " (" +
                   signedDelta(Delta, MP.Unit) + ", -" +
                   formatDouble(Rel * 100.0, 1) + "%)",
               "", T);
      }

      // EVL304: inclusive share of the cohort total.
      if (!IsRoot) {
        double TotalB = BaseIncl[M][BP.root()];
        double TotalT = TestIncl[M][TP.root()];
        if (TotalB > 0.0 && TotalT > 0.0) {
          double ShareB = BaseIncl[M][B] / TotalB;
          double ShareT = TestIncl[M][T] / TotalT;
          if (ShareT - ShareB >= Opts.ShareShiftMin) {
            std::string Path = renderPath(TP, T, Opts.MaxPathSegments);
            Emit("EVL304", Path, MP.Name,
                 "inclusive share of " + MP.Name + " shifted on " + Path +
                     ": " + percent(ShareB) + " -> " + percent(ShareT) +
                     " (+" + formatDouble((ShareT - ShareB) * 100.0, 1) +
                     " points)",
                 "the subtree grew relative to everything else; compare its "
                 "children across cohorts",
                 T);
          }
        }
      }
    }

    // EVL305: structural fan-out explosion.
    size_t FanB = BP.node(B).Children.size();
    size_t FanT = TP.node(T).Children.size();
    if (FanT >= Opts.FanOutMinChildren &&
        static_cast<double>(FanT) >=
            Opts.FanOutFactor * static_cast<double>(std::max<size_t>(FanB, 1))) {
      std::string Path = renderPath(TP, T, Opts.MaxPathSegments);
      Emit("EVL305", Path, "",
           "fan-out exploded on " + Path + ": " + std::to_string(FanB) +
               " -> " + std::to_string(FanT) + " children",
           "a call site multiplied its distinct callees; check for "
           "degenerate context splitting",
           T);
    }

    // Pair the children by frame identity; unmatched children are the
    // new-hot-path / disappeared-frame candidates.
    std::unordered_map<FrameKey, NodeId, FrameKeyHash> BaseKids;
    BaseKids.reserve(FanB);
    for (NodeId Kid : BP.node(B).Children)
      if (!Base.isFolded(Kid))
        BaseKids.emplace(keyOf(BP, Kid), Kid);
    for (NodeId Kid : TP.node(T).Children) {
      if (Test.isFolded(Kid))
        continue;
      auto It = BaseKids.find(keyOf(TP, Kid));
      if (It != BaseKids.end()) {
        Stack.emplace_back(It->second, Kid);
        BaseKids.erase(It);
        continue;
      }
      // EVL302: present only in test. Report the subtree root; its own
      // children are by construction also new and stay unreported.
      for (size_t M = 0; M < Metrics.size(); ++M) {
        double TotalT = TestIncl[M][TP.root()];
        if (TotalT <= 0.0)
          continue;
        double Share = TestIncl[M][Kid] / TotalT;
        if (Share >= Opts.NewPathShareMin) {
          std::string Path = renderPath(TP, Kid, Opts.MaxPathSegments);
          Emit("EVL302", Path, Metrics[M].Name,
               "new hot path " + Path + ": " + percent(Share) +
                   " of the test cohort's " + Metrics[M].Name +
                   " total, absent from base",
               "new code or a new call edge; confirm it is intentional",
               Kid);
        }
      }
    }
    // EVL303: present only in base.
    for (const auto &[Key, Kid] : BaseKids) {
      for (size_t M = 0; M < Metrics.size(); ++M) {
        double TotalB = BaseIncl[M][BP.root()];
        if (TotalB <= 0.0)
          continue;
        double Share = BaseIncl[M][Kid] / TotalB;
        if (Share >= Opts.DisappearedShareMin) {
          std::string Path = renderPath(BP, Kid, Opts.MaxPathSegments);
          Emit("EVL303", Path, Metrics[M].Name,
               "frame disappeared: " + Path + " held " + percent(Share) +
                   " of the base cohort's " + Metrics[M].Name + " total",
               "removed code, a renamed symbol, or inlining changes", Kid);
        }
      }
    }
  }

  // Deterministic presentation order: (rule, path, metric). The walk order
  // (stack, hash maps) must never leak into the output.
  std::sort(Pending.begin(), Pending.end(),
            [](const PendingFinding &A, const PendingFinding &B) {
              if (A.RuleId != B.RuleId)
                return A.RuleId < B.RuleId;
              if (A.Path != B.Path)
                return A.Path < B.Path;
              return A.Metric < B.Metric;
            });
  for (PendingFinding &P : Pending)
    Out.add(std::move(P.D));
}

} // namespace ev
