# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-bench/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(easyview_tests "/root/repo/build-bench/tests/easyview_tests")
set_tests_properties(easyview_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(easyview_fuzz_chaos "/root/repo/build-bench/tests/easyview_tests" "--gtest_filter=Fuzz.*:Seeds/*:*Chaos*:FaultInjector.*")
set_tests_properties(easyview_fuzz_chaos PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(easyview_parallel "/root/repo/build-bench/tests/easyview_tests" "--gtest_filter=Parallel*:ParallelSeeds/*")
set_tests_properties(easyview_parallel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;40;add_test;/root/repo/tests/CMakeLists.txt;0;")
