//===- support/FileIo.h - Whole-file read/write helpers -------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary-safe whole-file helpers used by the CLI tool and examples.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_FILEIO_H
#define EASYVIEW_SUPPORT_FILEIO_H

#include "support/Result.h"

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ev {

/// Reads the whole file at \p Path.
Result<std::string> readFile(const std::string &Path);

/// True when \p Path names an existing directory.
bool isDirectory(const std::string &Path);

/// Lists the regular files directly inside \p Path (no recursion, no "."
/// entries), sorted by name so every traversal is deterministic. Entries
/// are returned as full paths.
Result<std::vector<std::string>> listDirectory(const std::string &Path);

/// Writes \p Contents to \p Path, replacing any existing file.
Result<bool> writeFile(const std::string &Path, std::string_view Contents);

/// Bounded exponential backoff for transient I/O failures (network file
/// systems, editors saving over the profile mid-read, fault injection).
struct RetryPolicy {
  unsigned MaxAttempts = 3;       ///< Total attempts, including the first.
  uint64_t InitialBackoffMs = 10; ///< Delay before the second attempt.
  uint64_t MaxBackoffMs = 250;    ///< Ceiling for the doubling backoff.
};

/// Reads \p Path, retrying per \p Policy when the read fails. Each retry
/// waits InitialBackoffMs * 2^(attempt-1), capped at MaxBackoffMs. The
/// final error message reports how many attempts were made.
Result<std::string> readFileWithRetry(const std::string &Path,
                                      const RetryPolicy &Policy = {});

/// A read-only memory mapping of a whole file (the out-of-core profile
/// store maps spilled column segments back without a decode pass). The
/// mapping is released on destruction; moves transfer ownership. A
/// zero-length file yields a valid mapping with empty bytes() and no
/// kernel mapping at all.
class MappedFile {
public:
  MappedFile() = default;
  MappedFile(MappedFile &&Other) noexcept;
  MappedFile &operator=(MappedFile &&Other) noexcept;
  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;
  ~MappedFile();

  /// Maps \p Path read-only. The open is EINTR-safe and the size comes
  /// from fstat on the open descriptor, so the mapping can never be
  /// silently shorter than bytes() claims. When \p ExpectedBytes is
  /// nonzero, a file of any other size is rejected as truncated/corrupt
  /// instead of being mapped.
  static Result<MappedFile> map(const std::string &Path,
                                size_t ExpectedBytes = 0);

  /// The mapped contents; empty for a zero-length file.
  std::string_view bytes() const {
    return {static_cast<const char *>(Base), Size};
  }
  size_t size() const { return Size; }
  /// True once map() succeeded (including the zero-length case).
  bool valid() const { return Valid; }

private:
  void *Base = nullptr;
  size_t Size = 0;
  bool Valid = false;
};

/// Grows (never shrinks) \p Path to at least \p Bytes, creating it when
/// absent. Used to reserve spill-file extents up front so later segment
/// dumps cannot fail halfway through on a full disk. EINTR-safe.
Result<bool> preallocateFile(const std::string &Path, size_t Bytes);

/// Test/chaos hook: decides whether the read of \p Path on \p Attempt
/// (0-based) should be failed artificially; on injection it fills
/// \p Message with the simulated diagnostic and returns true.
using ReadFaultHook =
    std::function<bool(const std::string &Path, unsigned Attempt,
                       std::string &Message)>;

/// Installs (or, with nullptr, clears) the read fault hook. Faults apply
/// to readFile and therefore to readFileWithRetry's attempts.
void setReadFaultHook(ReadFaultHook Hook);

/// Replaces the backoff sleep (milliseconds) used between retries; pass
/// nullptr to restore the real clock. Tests install a recorder so chaos
/// schedules stay deterministic and fast.
void setRetrySleepHook(std::function<void(uint64_t)> Hook);

} // namespace ev

#endif // EASYVIEW_SUPPORT_FILEIO_H
