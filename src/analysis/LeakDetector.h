//===- analysis/LeakDetector.h - Memory-leak pattern detection ------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automates the paper's Fig. 4 case study: given a time-ordered sequence
/// of memory snapshots aggregated into one tree, an allocation context is a
/// leak suspect when its active-byte series stays "continuously high with
/// no clear sign of reclamation". The detector fits a least-squares trend
/// to each context's per-snapshot inclusive series and ranks contexts by a
/// suspicion score combining the normalized slope with the terminal
/// retention ratio (final value / peak value).
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_LEAKDETECTOR_H
#define EASYVIEW_ANALYSIS_LEAKDETECTOR_H

#include "analysis/Aggregate.h"
#include "profile/Profile.h"

#include <vector>

namespace ev {

/// One ranked allocation context.
struct LeakSuspect {
  NodeId Node = InvalidNode; ///< Context in the aggregated tree.
  double Score = 0.0;        ///< Higher = more suspicious (0..1).
  double Slope = 0.0;        ///< Bytes per snapshot (least squares).
  double FinalOverPeak = 0.0; ///< 1.0 = no reclamation at program end.
  double PeakBytes = 0.0;
};

/// Detection thresholds.
struct LeakOptions {
  double MinPeakBytes = 1.0;     ///< Ignore tiny contexts.
  double MinFinalOverPeak = 0.8; ///< "No clear sign of reclamation".
  double MinScore = 0.5;         ///< Suspicion cutoff.
  size_t MaxSuspects = 32;
};

/// Least-squares slope of \p Series against its index.
double trendSlope(const std::vector<double> &Series);

/// Scans every leaf-ward context of \p Snapshots (an aggregation of
/// time-ordered memory snapshots) and \returns ranked leak suspects for
/// \p Metric (e.g. "active-bytes"), most suspicious first.
std::vector<LeakSuspect> findLeakSuspects(const AggregatedProfile &Snapshots,
                                          MetricId Metric,
                                          const LeakOptions &Options = {});

} // namespace ev

#endif // EASYVIEW_ANALYSIS_LEAKDETECTOR_H
