//===- support/Strings.cpp - Small string utilities -----------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace ev {

std::vector<std::string_view> splitString(std::string_view Text,
                                          char Separator) {
  std::vector<std::string_view> Pieces;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Separator, Start);
    if (Pos == std::string_view::npos) {
      Pieces.push_back(Text.substr(Start));
      return Pieces;
    }
    Pieces.push_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::vector<std::string_view> splitLines(std::string_view Text) {
  std::vector<std::string_view> Lines;
  size_t Start = 0;
  while (Start < Text.size()) {
    size_t Pos = Text.find('\n', Start);
    if (Pos == std::string_view::npos) {
      Lines.push_back(Text.substr(Start));
      break;
    }
    size_t End = Pos;
    if (End > Start && Text[End - 1] == '\r')
      --End;
    Lines.push_back(Text.substr(Start, End - Start));
    Start = Pos + 1;
  }
  return Lines;
}

std::string_view trim(std::string_view Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

bool endsWith(std::string_view Text, std::string_view Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.compare(Text.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

bool parseUnsigned(std::string_view Text, uint64_t &Value) {
  if (Text.empty())
    return false;
  auto [Ptr, Ec] =
      std::from_chars(Text.data(), Text.data() + Text.size(), Value);
  return Ec == std::errc() && Ptr == Text.data() + Text.size();
}

bool parseDouble(std::string_view Text, double &Value) {
  if (Text.empty())
    return false;
  // std::from_chars for double is available in libstdc++ 11+.
  auto [Ptr, Ec] =
      std::from_chars(Text.data(), Text.data() + Text.size(), Value);
  return Ec == std::errc() && Ptr == Text.data() + Text.size();
}

std::string formatDouble(double Value, int Digits) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Digits, Value);
  return Buffer;
}

std::string formatBytes(double Bytes) {
  static const char *Units[] = {"B", "KB", "MB", "GB", "TB"};
  int Unit = 0;
  while (Bytes >= 1024.0 && Unit < 4) {
    Bytes /= 1024.0;
    ++Unit;
  }
  return formatDouble(Bytes, Unit == 0 ? 0 : 1) + " " + Units[Unit];
}

std::string formatMetric(double Value, std::string_view Unit) {
  if (Unit == "bytes")
    return formatBytes(Value);
  if (Unit == "nanoseconds") {
    if (Value >= 1e9)
      return formatDouble(Value / 1e9, 2) + " s";
    if (Value >= 1e6)
      return formatDouble(Value / 1e6, 2) + " ms";
    if (Value >= 1e3)
      return formatDouble(Value / 1e3, 2) + " us";
    return formatDouble(Value, 0) + " ns";
  }
  std::string Out = formatDouble(Value, Value == static_cast<int64_t>(Value)
                                            ? 0
                                            : 2);
  if (!Unit.empty()) {
    Out.push_back(' ');
    Out.append(Unit);
  }
  return Out;
}

std::string escapeXml(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '&':
      Out += "&amp;";
      break;
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '"':
      Out += "&quot;";
      break;
    default:
      Out.push_back(C);
    }
  }
  return Out;
}

std::string escapeJson(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size() + 2);
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      // RFC 8259: every control byte below 0x20 (including NUL, which must
      // survive round-trips of interned frame names) escapes as \u00XX.
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        unsigned char U = static_cast<unsigned char>(C);
        Out += "\\u00";
        Out.push_back(Hex[U >> 4]);
        Out.push_back(Hex[U & 0xF]);
      } else {
        Out.push_back(C);
      }
    }
  }
  return Out;
}

std::string base64Encode(std::string_view Bytes) {
  static const char Alphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  std::string Out;
  Out.reserve((Bytes.size() + 2) / 3 * 4);
  size_t I = 0;
  while (I + 3 <= Bytes.size()) {
    uint32_t Triple = (static_cast<unsigned char>(Bytes[I]) << 16) |
                      (static_cast<unsigned char>(Bytes[I + 1]) << 8) |
                      static_cast<unsigned char>(Bytes[I + 2]);
    Out.push_back(Alphabet[(Triple >> 18) & 0x3F]);
    Out.push_back(Alphabet[(Triple >> 12) & 0x3F]);
    Out.push_back(Alphabet[(Triple >> 6) & 0x3F]);
    Out.push_back(Alphabet[Triple & 0x3F]);
    I += 3;
  }
  size_t Rest = Bytes.size() - I;
  if (Rest == 1) {
    uint32_t Triple = static_cast<unsigned char>(Bytes[I]) << 16;
    Out.push_back(Alphabet[(Triple >> 18) & 0x3F]);
    Out.push_back(Alphabet[(Triple >> 12) & 0x3F]);
    Out += "==";
  } else if (Rest == 2) {
    uint32_t Triple = (static_cast<unsigned char>(Bytes[I]) << 16) |
                      (static_cast<unsigned char>(Bytes[I + 1]) << 8);
    Out.push_back(Alphabet[(Triple >> 18) & 0x3F]);
    Out.push_back(Alphabet[(Triple >> 12) & 0x3F]);
    Out.push_back(Alphabet[(Triple >> 6) & 0x3F]);
    Out.push_back('=');
  }
  return Out;
}

bool base64Decode(std::string_view Text, std::string &Out) {
  auto Value = [](char C) -> int {
    if (C >= 'A' && C <= 'Z')
      return C - 'A';
    if (C >= 'a' && C <= 'z')
      return C - 'a' + 26;
    if (C >= '0' && C <= '9')
      return C - '0' + 52;
    if (C == '+')
      return 62;
    if (C == '/')
      return 63;
    return -1;
  };
  Out.clear();
  if (Text.size() % 4 != 0)
    return false;
  Out.reserve(Text.size() / 4 * 3);
  for (size_t I = 0; I < Text.size(); I += 4) {
    int Pad = 0;
    int V[4];
    for (int J = 0; J < 4; ++J) {
      char C = Text[I + J];
      if (C == '=') {
        // Padding may only appear in the last two slots of the last group.
        if (I + 4 != Text.size() || J < 2)
          return false;
        V[J] = 0;
        ++Pad;
        continue;
      }
      if (Pad)
        return false; // Data after padding.
      V[J] = Value(C);
      if (V[J] < 0)
        return false;
    }
    uint32_t Triple = (static_cast<uint32_t>(V[0]) << 18) |
                      (static_cast<uint32_t>(V[1]) << 12) |
                      (static_cast<uint32_t>(V[2]) << 6) |
                      static_cast<uint32_t>(V[3]);
    Out.push_back(static_cast<char>((Triple >> 16) & 0xFF));
    if (Pad < 2)
      Out.push_back(static_cast<char>((Triple >> 8) & 0xFF));
    if (Pad < 1)
      Out.push_back(static_cast<char>(Triple & 0xFF));
  }
  return true;
}

} // namespace ev
