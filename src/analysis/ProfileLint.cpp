//===- analysis/ProfileLint.cpp - Profile lint engine ---------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/ProfileLint.h"

#include "analysis/MetricEngine.h"
#include "proto/EvProf.h"
#include "support/ProtoWire.h"

#include <algorithm>
#include <cmath>

namespace ev {

const std::vector<LintRuleInfo> &lintRules() {
  static const std::vector<LintRuleInfo> Rules = {
      {"EVL100", "malformed-wire", Severity::Error,
       "the byte stream is not valid .evprof wire data"},
      {"EVL101", "dangling-string-ref", Severity::Error,
       "a frame or group references a string-table entry that does not "
       "exist"},
      {"EVL102", "dangling-frame-ref", Severity::Error,
       "a node references a frame-table entry that does not exist"},
      {"EVL103", "dangling-node-ref", Severity::Error,
       "a context group references a CCT node that does not exist"},
      {"EVL104", "dangling-metric-ref", Severity::Error,
       "a metric value references a metric descriptor that does not exist"},
      {"EVL105", "invalid-parent-order", Severity::Error,
       "a node's parent reference breaks the parents-first ordering"},
      {"EVL201", "exclusive-exceeds-inclusive", Severity::Warning,
       "a node's exclusive metric value exceeds its inclusive sum"},
      {"EVL202", "tree-depth-pathology", Severity::Warning,
       "the CCT is implausibly deep"},
      {"EVL203", "fan-out-pathology", Severity::Warning,
       "one node has implausibly many children"},
      {"EVL204", "duplicate-context-id", Severity::Warning,
       "a context group lists the same node more than once"},
      {"EVL205", "zero-metric-subtree", Severity::Info,
       "a multi-node subtree carries no metric values at all"},
      {"EVL206", "non-monotonic-source-offsets", Severity::Info,
       "siblings in the same source file appear out of line order"},
      {"EVL207", "duplicate-metric-value", Severity::Warning,
       "a node carries two values for the same metric"},
      {"EVL208", "unreferenced-frame", Severity::Info,
       "the frame table has entries no node references"},
  };
  return Rules;
}

const LintRuleInfo *findLintRule(std::string_view IdOrName) {
  for (const LintRuleInfo &Rule : lintRules())
    if (Rule.Id == IdOrName || Rule.Name == IdOrName)
      return &Rule;
  return nullptr;
}

bool ProfileLinter::enabled(const LintRuleInfo &Rule) const {
  if (Rule.DefaultSev < Opts.MinSeverity)
    return false;
  for (const std::string &D : Opts.Disabled)
    if (Rule.Id == D || Rule.Name == D)
      return false;
  return true;
}

bool ProfileLinter::emit(DiagnosticSet &Out, std::string_view RuleId,
                         std::string Message, std::string Hint,
                         NodeId Node) const {
  const LintRuleInfo *Rule = findLintRule(RuleId);
  if (!Rule || !enabled(*Rule))
    return false;
  Diagnostic D;
  D.Id = std::string(Rule->Id);
  D.Sev = Rule->DefaultSev;
  D.Message = std::move(Message);
  D.Rule = std::string(Rule->Name);
  D.Hint = std::move(Hint);
  D.Node = Node;
  return Out.add(std::move(D));
}

namespace {

// Field numbers of the .evprof schema; must stay in sync with the encoder
// tables in proto/EvProf.cpp.
enum : uint32_t {
  FProfileString = 2,
  FProfileMetric = 3,
  FProfileFrame = 4,
  FProfileNode = 5,
  FProfileGroup = 6,
};
enum : uint32_t { FFrameName = 2, FFrameFile = 3, FFrameModule = 5 };
enum : uint32_t { FNodeParentPlus1 = 1, FNodeFrame = 2, FNodeValue = 3 };
enum : uint32_t { FValueMetric = 1 };
enum : uint32_t { FGroupKind = 1, FGroupContext = 2, FGroupMetric = 3 };

/// Table sizes discovered by the counting pass.
struct WireIndex {
  size_t Strings = 0;
  size_t Metrics = 0;
  size_t Frames = 0;
  size_t Nodes = 0;
  bool Malformed = false;
};

WireIndex countTables(std::string_view Bytes) {
  WireIndex Index;
  ProtoReader R(Bytes);
  while (R.next()) {
    switch (R.fieldNumber()) {
    case FProfileString:
      ++Index.Strings;
      break;
    case FProfileMetric:
      ++Index.Metrics;
      break;
    case FProfileFrame:
      ++Index.Frames;
      break;
    case FProfileNode:
      ++Index.Nodes;
      break;
    default:
      break;
    }
    R.skip();
  }
  Index.Malformed = R.failed();
  return Index;
}

std::string ofTable(uint64_t Ref, size_t Size, const char *Table) {
  return "references " + std::string(Table) + " " + std::to_string(Ref) +
         " of a " + std::to_string(Size) + "-entry table";
}

} // namespace

void ProfileLinter::lintWire(std::string_view Bytes,
                             DiagnosticSet &Out) const {
  if (!isEvProf(Bytes)) {
    emit(Out, "EVL100", "not an .evprof stream: bad magic",
         "expected the 8-byte 'EVPROF1\\n' header");
    return;
  }
  Bytes.remove_prefix(EvProfMagic.size());

  WireIndex Index = countTables(Bytes);
  if (Index.Malformed) {
    emit(Out, "EVL100", "malformed EvProfile message",
         "the stream truncates or corrupts a field tag or length");
    return; // Reference checks are meaningless past the corruption point.
  }

  size_t FrameIdx = 0, NodeIdx = 0, GroupIdx = 0;
  ProtoReader R(Bytes);
  while (R.next()) {
    switch (R.fieldNumber()) {
    case FProfileFrame: {
      ProtoReader FR(R.bytes());
      while (FR.next()) {
        const char *Field = nullptr;
        switch (FR.fieldNumber()) {
        case FFrameName:
          Field = "name";
          break;
        case FFrameFile:
          Field = "file";
          break;
        case FFrameModule:
          Field = "module";
          break;
        default:
          break;
        }
        if (!Field) {
          FR.skip();
          continue;
        }
        uint64_t Ref = FR.varint();
        if (Ref >= Index.Strings)
          emit(Out, "EVL101",
               "frame " + std::to_string(FrameIdx) + " " + Field + " " +
                   ofTable(Ref, Index.Strings, "string"),
               "re-export the profile; the string table is incomplete");
      }
      if (FR.failed())
        emit(Out, "EVL100",
             "malformed Frame message at index " + std::to_string(FrameIdx));
      ++FrameIdx;
      break;
    }
    case FProfileNode: {
      if (NodeIdx >= Opts.Limits.MaxLintNodes) {
        Out.markTruncated();
        R.skip();
        ++NodeIdx;
        break;
      }
      uint64_t ParentPlus1 = 0, FrameRef = 0;
      bool SawParent = false, SawFrame = false;
      ProtoReader NR(R.bytes());
      while (NR.next()) {
        switch (NR.fieldNumber()) {
        case FNodeParentPlus1:
          ParentPlus1 = NR.varint();
          SawParent = true;
          break;
        case FNodeFrame:
          FrameRef = NR.varint();
          SawFrame = true;
          break;
        case FNodeValue: {
          ProtoReader VR(NR.bytes());
          while (VR.next()) {
            if (VR.fieldNumber() == FValueMetric) {
              uint64_t Ref = VR.varint();
              if (Ref >= Index.Metrics)
                emit(Out, "EVL104",
                     "node " + std::to_string(NodeIdx) + " metric value " +
                         ofTable(Ref, Index.Metrics, "metric"),
                     "drop the value or declare the metric",
                     static_cast<NodeId>(NodeIdx));
            } else {
              VR.skip();
            }
          }
          if (VR.failed())
            emit(Out, "EVL100",
                 "malformed MetricValue message in node " +
                     std::to_string(NodeIdx));
          break;
        }
        default:
          NR.skip();
        }
      }
      if (NR.failed())
        emit(Out, "EVL100",
             "malformed Node message at index " + std::to_string(NodeIdx));
      if (NodeIdx == 0 && SawParent && ParentPlus1 != 0)
        emit(Out, "EVL105", "first node is not a root",
             "node 0 must omit its parent reference", 0);
      if (NodeIdx > 0 && (ParentPlus1 == 0 || ParentPlus1 > NodeIdx))
        emit(Out, "EVL105",
             "node " + std::to_string(NodeIdx) +
                 " has parent reference " + std::to_string(ParentPlus1) +
                 "; parents must precede children",
             "serialize nodes in id order with parents first",
             static_cast<NodeId>(NodeIdx));
      if (SawFrame && FrameRef >= Index.Frames)
        emit(Out, "EVL102",
             "node " + std::to_string(NodeIdx) + " " +
                 ofTable(FrameRef, Index.Frames, "frame"),
             "re-export the profile; the frame table is incomplete",
             static_cast<NodeId>(NodeIdx));
      ++NodeIdx;
      break;
    }
    case FProfileGroup: {
      ProtoReader GR(R.bytes());
      while (GR.next()) {
        switch (GR.fieldNumber()) {
        case FGroupKind: {
          uint64_t Ref = GR.varint();
          if (Ref >= Index.Strings)
            emit(Out, "EVL101",
                 "group " + std::to_string(GroupIdx) + " kind " +
                     ofTable(Ref, Index.Strings, "string"));
          break;
        }
        case FGroupMetric: {
          uint64_t Ref = GR.varint();
          if (Ref >= Index.Metrics)
            emit(Out, "EVL104",
                 "group " + std::to_string(GroupIdx) + " " +
                     ofTable(Ref, Index.Metrics, "metric"));
          break;
        }
        case FGroupContext: {
          std::string_view Packed = GR.bytes();
          VarintReader VR(Packed.data(), Packed.size());
          while (!VR.atEnd() && !VR.failed()) {
            uint64_t Ref = VR.readVarint();
            if (Ref >= Index.Nodes)
              emit(Out, "EVL103",
                   "group " + std::to_string(GroupIdx) + " context " +
                       ofTable(Ref, Index.Nodes, "node"),
                   "context groups may only reference decoded CCT nodes");
          }
          if (VR.failed())
            emit(Out, "EVL100",
                 "malformed packed context list in group " +
                     std::to_string(GroupIdx));
          break;
        }
        default:
          GR.skip();
        }
      }
      if (GR.failed())
        emit(Out, "EVL100",
             "malformed Group message at index " + std::to_string(GroupIdx));
      ++GroupIdx;
      break;
    }
    default:
      R.skip();
    }
  }
  if (R.failed())
    emit(Out, "EVL100", "malformed EvProfile message",
         "the stream truncates or corrupts a field tag or length");
}

void ProfileLinter::lintProfile(const Profile &P, DiagnosticSet &Out) const {
  size_t Total = P.nodeCount();
  NodeId Visit = static_cast<NodeId>(
      std::min<size_t>(Total, Opts.Limits.MaxLintNodes));
  if (Visit < Total)
    Out.markTruncated();
  if (Visit == 0)
    return;

  // Depths in one pass: Profile::createNode guarantees parents-first ids.
  std::vector<uint32_t> Depth(Visit, 0);
  size_t MaxDepth = 0;
  NodeId Deepest = 0;
  for (NodeId Id = 1; Id < Visit; ++Id) {
    NodeId Parent = P.node(Id).Parent;
    if (Parent != InvalidNode && Parent < Id)
      Depth[Id] = Depth[Parent] + 1;
    if (Depth[Id] > MaxDepth) {
      MaxDepth = Depth[Id];
      Deepest = Id;
    }
  }
  if (MaxDepth > Opts.MaxReasonableDepth)
    emit(Out, "EVL202",
         "CCT depth " + std::to_string(MaxDepth) +
             " exceeds the plausibility threshold of " +
             std::to_string(Opts.MaxReasonableDepth),
         "deep chains usually mean broken recursion folding in the "
         "producer",
         Deepest);

  for (NodeId Id = 0; Id < Visit; ++Id)
    if (P.node(Id).Children.size() > Opts.MaxReasonableFanOut)
      emit(Out, "EVL203",
           "node '" + std::string(P.nameOf(Id)) + "' has " +
               std::to_string(P.node(Id).Children.size()) +
               " children, above the plausibility threshold of " +
               std::to_string(Opts.MaxReasonableFanOut),
           "consider grouping call sites in the producer", Id);

  // Exclusive-exceeds-inclusive, per Sum-aggregated metric. Inclusive is
  // computed from exclusives bottom-up, so the only way exclusive can top
  // it is a negative descendant sum; report the first offender per metric.
  for (MetricId M = 0; M < P.metrics().size(); ++M) {
    if (P.metrics()[M].Aggregation != MetricAggregation::Sum)
      continue;
    MetricView View(P, M);
    for (NodeId Id = 0; Id < Visit; ++Id) {
      double Ex = View.exclusive(Id);
      double In = View.inclusive(Id);
      if (Ex > In + 1e-9 * std::max(1.0, std::abs(In))) {
        emit(Out, "EVL201",
             "node '" + std::string(P.nameOf(Id)) + "' has exclusive " +
                 P.metrics()[M].Name + " " + std::to_string(Ex) +
                 " exceeding its inclusive sum " + std::to_string(In),
             "a descendant carries a negative value for this metric", Id);
        break;
      }
    }
  }

  // Duplicate metric values on one node.
  for (NodeId Id = 0; Id < Visit; ++Id) {
    const std::vector<MetricValue> &Values = P.node(Id).Metrics;
    for (size_t I = 0; I < Values.size(); ++I) {
      bool Dup = false;
      for (size_t J = 0; J < I && !Dup; ++J)
        Dup = Values[J].Metric == Values[I].Metric;
      if (Dup) {
        emit(Out, "EVL207",
             "node '" + std::string(P.nameOf(Id)) +
                 "' carries two values for metric " +
                 std::to_string(Values[I].Metric),
             "only the first value is read; merge them in the producer",
             Id);
        break;
      }
    }
  }

  // Duplicate context ids within one group.
  for (size_t G = 0; G < P.groups().size(); ++G) {
    std::vector<NodeId> Contexts = P.groups()[G].Contexts;
    std::sort(Contexts.begin(), Contexts.end());
    auto Dup = std::adjacent_find(Contexts.begin(), Contexts.end());
    if (Dup != Contexts.end())
      emit(Out, "EVL204",
           "group " + std::to_string(G) + " lists node " +
               std::to_string(*Dup) + " more than once",
           "each role in a context group should be a distinct context",
           *Dup);
  }

  // Zero-metric subtrees: maximal subtrees of >= 2 nodes in which no node
  // carries a nonzero metric value.
  {
    std::vector<char> SubHas(Visit, 0);
    std::vector<uint32_t> SubSize(Visit, 1);
    for (NodeId Id = 0; Id < Visit; ++Id)
      for (const MetricValue &MV : P.node(Id).Metrics)
        if (MV.Value != 0.0) {
          SubHas[Id] = 1;
          break;
        }
    for (NodeId Id = Visit; Id-- > 1;) {
      NodeId Parent = P.node(Id).Parent;
      if (Parent != InvalidNode && Parent < Id) {
        SubHas[Parent] = static_cast<char>(SubHas[Parent] | SubHas[Id]);
        SubSize[Parent] += SubSize[Id];
      }
    }
    if (!SubHas[0] && Total > 1) {
      emit(Out, "EVL205",
           "the whole profile carries no metric values",
           "the producer recorded structure but no measurements", 0);
    } else {
      for (NodeId Id = 1; Id < Visit; ++Id) {
        NodeId Parent = P.node(Id).Parent;
        if (!SubHas[Id] && SubSize[Id] >= 2 && Parent != InvalidNode &&
            Parent < Visit && SubHas[Parent])
          emit(Out, "EVL205",
               "subtree of " + std::to_string(SubSize[Id]) +
                   " nodes rooted at '" + std::string(P.nameOf(Id)) +
                   "' carries no metric values",
               "prune it in the producer or ignore it in analysis", Id);
      }
    }
  }

  // Non-monotonic source offsets: siblings attributed to the same file
  // should appear in non-decreasing line order.
  for (NodeId Id = 0; Id < Visit; ++Id) {
    StringId PrevFile = 0;
    uint32_t PrevLine = 0;
    for (NodeId Child : P.node(Id).Children) {
      if (Child >= Visit)
        continue;
      const SourceLocation &Loc = P.frameOf(Child).Loc;
      if (Loc.File == 0 || Loc.Line == 0)
        continue;
      if (Loc.File == PrevFile && Loc.Line < PrevLine) {
        emit(Out, "EVL206",
             "children of '" + std::string(P.nameOf(Id)) +
                 "' are out of source order (" + std::string(P.text(Loc.File)) +
                 ":" + std::to_string(Loc.Line) + " after line " +
                 std::to_string(PrevLine) + ")",
             "producers usually emit call sites in source order", Child);
        break;
      }
      PrevFile = Loc.File;
      PrevLine = Loc.Line;
    }
  }

  // Unreferenced frames (only meaningful when every node was visited).
  if (Visit == Total && !P.frames().empty()) {
    std::vector<char> Referenced(P.frames().size(), 0);
    for (NodeId Id = 0; Id < Visit; ++Id)
      Referenced[P.node(Id).FrameRef] = 1;
    size_t Unreferenced = 0;
    FrameId First = 0;
    for (FrameId F = 0; F < Referenced.size(); ++F)
      if (!Referenced[F]) {
        if (Unreferenced == 0)
          First = F;
        ++Unreferenced;
      }
    if (Unreferenced > 0)
      emit(Out, "EVL208",
           std::to_string(Unreferenced) +
               " frame(s) referenced by no node (first: '" +
               std::string(P.text(P.frames()[First].Name)) + "')",
           "dead frame-table entries waste space in the container");
  }
}

bool ProfileLinter::lint(std::string_view Bytes, const DecodeLimits &Decode,
                         DiagnosticSet &Out) const {
  size_t Before = Out.size() + Out.dropped();
  lintWire(Bytes, Out);
  size_t WireFindings = Out.size() + Out.dropped() - Before;

  Result<Profile> P = readEvProf(Bytes, Decode);
  if (!P) {
    // The wire scan usually already explained the refusal; surface the
    // decoder's reason only when it did not (e.g. a decode-limit trip).
    if (WireFindings == 0)
      emit(Out, "EVL100", "profile does not decode: " + P.error());
    Out.markTruncated(); // Decoded rules never ran.
    return false;
  }
  lintProfile(*P, Out);
  return true;
}

} // namespace ev
