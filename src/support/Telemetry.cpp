//===- support/Telemetry.cpp - Counters, gauges, latency histograms -------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <algorithm>
#include <bit>
#include <functional>

namespace ev {
namespace telemetry {

size_t Histogram::bucketIndex(uint64_t Value) {
  if (Value == 0)
    return 0;
  // bit_width(1) == 1 -> bucket 1 covers [1, 2); values past the last
  // finite bucket land in the overflow bucket.
  return std::min<size_t>(std::bit_width(Value), BucketCount - 1);
}

uint64_t Histogram::bucketFloor(size_t Index) {
  if (Index == 0)
    return 0;
  return uint64_t(1) << (Index - 1);
}

void Histogram::record(uint64_t Value) {
  Buckets[bucketIndex(Value)].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Value, std::memory_order_relaxed);
  uint64_t Seen = Min.load(std::memory_order_relaxed);
  while (Value < Seen &&
         !Min.compare_exchange_weak(Seen, Value, std::memory_order_relaxed))
    ;
  Seen = Max.load(std::memory_order_relaxed);
  while (Value > Seen &&
         !Max.compare_exchange_weak(Seen, Value, std::memory_order_relaxed))
    ;
}

uint64_t Histogram::min() const {
  uint64_t V = Min.load(std::memory_order_relaxed);
  return V == UINT64_MAX ? 0 : V;
}

double Histogram::percentileEstimate(double P) const {
  uint64_t Total = count();
  if (Total == 0)
    return 0.0;
  P = std::clamp(P, 0.0, 100.0);
  double Rank = (P / 100.0) * static_cast<double>(Total);
  if (Rank < 1.0)
    Rank = 1.0;
  uint64_t Below = 0;
  for (size_t I = 0; I < BucketCount; ++I) {
    uint64_t InBucket = bucketCount(I);
    if (InBucket == 0)
      continue;
    if (static_cast<double>(Below + InBucket) >= Rank) {
      double Frac = (Rank - static_cast<double>(Below)) /
                    static_cast<double>(InBucket);
      double Lo = static_cast<double>(bucketFloor(I));
      double Hi = I + 1 < BucketCount
                      ? static_cast<double>(bucketFloor(I + 1))
                      : static_cast<double>(max());
      double V = Lo + Frac * std::max(0.0, Hi - Lo);
      return std::clamp(V, static_cast<double>(min()),
                        static_cast<double>(max()));
    }
    Below += InBucket;
  }
  return static_cast<double>(max());
}

void Histogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  N.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Min.store(UINT64_MAX, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
}

Registry::Registry(size_t ShardCount) {
  if (ShardCount == 0)
    ShardCount = 1;
  Shards.reserve(ShardCount);
  for (size_t I = 0; I < ShardCount; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

Registry::Shard &Registry::shardFor(std::string_view Name) {
  if (Shards.size() == 1)
    return *Shards.front();
  return *Shards[std::hash<std::string_view>{}(Name) % Shards.size()];
}

const Registry::Shard &Registry::shardFor(std::string_view Name) const {
  return const_cast<Registry *>(this)->shardFor(Name);
}

Counter &Registry::counter(std::string_view Name) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Counters.find(std::string(Name));
  if (It == S.Counters.end())
    It = S.Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
  return *It->second;
}

Gauge &Registry::gauge(std::string_view Name) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Gauges.find(std::string(Name));
  if (It == S.Gauges.end())
    It = S.Gauges.emplace(std::string(Name), std::make_unique<Gauge>()).first;
  return *It->second;
}

Histogram &Registry::histogram(std::string_view Name) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Histograms.find(std::string(Name));
  if (It == S.Histograms.end())
    It = S.Histograms
             .emplace(std::string(Name), std::make_unique<Histogram>())
             .first;
  return *It->second;
}

json::Value Registry::snapshot(const SnapshotOptions &Opts) const {
  // Collect (name, metric) pairs under the shard locks, then emit sorted
  // by name so the document is deterministic regardless of registration
  // order or shard layout. The pointers stay valid after unlock: handles
  // are never deleted while the registry lives.
  std::vector<std::pair<std::string, const Counter *>> Counters;
  std::vector<std::pair<std::string, const Gauge *>> Gauges;
  std::vector<std::pair<std::string, const Histogram *>> Histograms;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    for (const auto &[Name, C] : S->Counters)
      Counters.emplace_back(Name, C.get());
    for (const auto &[Name, G] : S->Gauges)
      Gauges.emplace_back(Name, G.get());
    for (const auto &[Name, H] : S->Histograms)
      Histograms.emplace_back(Name, H.get());
  }
  auto ByName = [](const auto &A, const auto &B) { return A.first < B.first; };
  std::sort(Counters.begin(), Counters.end(), ByName);
  std::sort(Gauges.begin(), Gauges.end(), ByName);
  std::sort(Histograms.begin(), Histograms.end(), ByName);

  json::Object CountersOut;
  for (const auto &[Name, C] : Counters)
    CountersOut.set(Name, C->value());
  json::Object GaugesOut;
  for (const auto &[Name, G] : Gauges)
    GaugesOut.set(Name, G->value());
  json::Object HistogramsOut;
  for (const auto &[Name, H] : Histograms) {
    json::Object HO;
    HO.set("count", H->count());
    if (Opts.IncludeTimings) {
      HO.set("sum", H->sum());
      HO.set("min", H->min());
      HO.set("max", H->max());
      // Buckets emit as [floor, count] pairs, empty buckets skipped, so
      // the document stays compact for sparse latency distributions.
      json::Array Buckets;
      for (size_t I = 0; I < Histogram::BucketCount; ++I) {
        uint64_t N = H->bucketCount(I);
        if (N == 0)
          continue;
        json::Array Pair;
        Pair.push_back(Histogram::bucketFloor(I));
        Pair.push_back(N);
        Buckets.push_back(std::move(Pair));
      }
      HO.set("buckets", std::move(Buckets));
    }
    HistogramsOut.set(Name, std::move(HO));
  }

  json::Object Out;
  Out.set("counters", std::move(CountersOut));
  Out.set("gauges", std::move(GaugesOut));
  Out.set("histograms", std::move(HistogramsOut));
  return json::Value(std::move(Out));
}

void Registry::reset() {
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    for (auto &[Name, C] : S->Counters)
      C->reset();
    for (auto &[Name, G] : S->Gauges)
      G->reset();
    for (auto &[Name, H] : S->Histograms)
      H->reset();
  }
}

Registry &Registry::global() {
  static Registry *R = new Registry(); // Leaked: outlives every user.
  return *R;
}

} // namespace telemetry
} // namespace ev
