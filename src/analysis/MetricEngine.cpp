//===- analysis/MetricEngine.cpp - Inclusive/exclusive metric math --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/MetricEngine.h"

#include "profile/Columnar.h"
#include "support/ThreadPool.h"

#include <algorithm>

namespace ev {

std::vector<double> exclusiveColumn(const Profile &P, MetricId Metric) {
  std::vector<double> Column(P.nodeCount(), 0.0);
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    Column[Id] = P.node(Id).metricOr(Metric);
  return Column;
}

std::vector<double> inclusiveColumn(const Profile &P, MetricId Metric) {
  std::vector<double> Column = exclusiveColumn(P, Metric);
  // Nodes are created parents-first (Profile::createNode guarantees
  // Parent < Id), so one reverse sweep accumulates children into parents.
  for (NodeId Id = static_cast<NodeId>(P.nodeCount()); Id > 1;) {
    --Id;
    Column[P.node(Id).Parent] += Column[Id];
  }
  return Column;
}

std::vector<std::vector<double>> inclusiveColumns(const Profile &P) {
  std::vector<std::vector<double>> Columns(
      P.metrics().size(), std::vector<double>(P.nodeCount(), 0.0));
  // Scatter the sparse per-node metric lists into dense columns: one walk
  // over the node table total, not one per metric. Chunks own disjoint node
  // ranges, so every column slot has exactly one writer.
  ThreadPool::shared().parallelForChunks(
      P.nodeCount(), [&](size_t Begin, size_t End) {
        for (NodeId Id = static_cast<NodeId>(Begin); Id < End; ++Id)
          for (const MetricValue &MV : P.node(Id).Metrics)
            if (MV.Metric < Columns.size())
              Columns[MV.Metric][Id] += MV.Value;
      });
  // Fused post-order accumulation (ids are parents-first). Each column's
  // sweep is independent and internally ordered, so distributing columns
  // across workers keeps results bit-identical to the sequential sweep.
  ThreadPool::shared().parallelFor(Columns.size(), [&](size_t C) {
    std::vector<double> &Column = Columns[C];
    for (NodeId Id = static_cast<NodeId>(P.nodeCount()); Id > 1;) {
      --Id;
      Column[P.node(Id).Parent] += Column[Id];
    }
  });
  return Columns;
}

double metricTotal(const Profile &P, MetricId Metric) {
  double Total = 0.0;
  for (const CCTNode &Node : P.nodes())
    Total += Node.metricOr(Metric);
  return Total;
}

std::vector<HotNode> hottestExclusive(const Profile &P, MetricId Metric,
                                      size_t Limit) {
  std::vector<HotNode> All;
  All.reserve(P.nodeCount());
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
    double Value = P.node(Id).metricOr(Metric);
    if (Value != 0.0)
      All.push_back({Id, Value});
  }
  auto ByValueDesc = [](const HotNode &A, const HotNode &B) {
    if (A.Value != B.Value)
      return A.Value > B.Value;
    return A.Node < B.Node;
  };
  if (All.size() > Limit) {
    std::partial_sort(All.begin(), All.begin() + static_cast<long>(Limit),
                      All.end(), ByValueDesc);
    All.resize(Limit);
  } else {
    std::sort(All.begin(), All.end(), ByValueDesc);
  }
  return All;
}

std::vector<uint32_t> depthColumn(const Profile &P) {
  std::vector<uint32_t> Parents(P.nodeCount(), InvalidNode);
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    Parents[Id] = P.node(Id).Parent;
  return depthsFromParents(Parents);
}

std::vector<uint32_t> childCountColumn(const Profile &P) {
  std::vector<uint32_t> Counts(P.nodeCount(), 0);
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    Counts[Id] = static_cast<uint32_t>(P.node(Id).Children.size());
  return Counts;
}

MetricView::MetricView(const Profile &P, MetricId Metric)
    : Metric(Metric), Exclusive(ev::exclusiveColumn(P, Metric)),
      Inclusive(Exclusive) {
  for (NodeId Id = static_cast<NodeId>(P.nodeCount()); Id > 1;) {
    --Id;
    Inclusive[P.node(Id).Parent] += Inclusive[Id];
  }
}

} // namespace ev
