//===- analysis/Transform.h - Top-down/bottom-up/flat tree shapes ---------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tree transformations (paper §V-A(b)): EasyView reshapes the CCT into
/// top-down, bottom-up, and flat trees, each of which feeds the matching
/// flame-graph and tree-table views.
///
///  - The top-down tree is the CCT itself (root = program entry, callees as
///    children).
///  - The bottom-up tree reverses every call path: callees become parents,
///    so the first level ranks hot functions and each subtree shows where
///    a function is called from (Fig. 6).
///  - The flat tree elides call paths entirely and groups by load module,
///    then file, then function.
///
/// All transforms conserve the total exclusive value of every metric — a
/// property the test suite checks on randomized profiles.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_TRANSFORM_H
#define EASYVIEW_ANALYSIS_TRANSFORM_H

#include "profile/Profile.h"
#include "support/Cancel.h"

namespace ev {

/// All transforms are cooperatively cancellable: the optional token is
/// checked at loop boundaries and a tripped token raises
/// CancelledException (support/Cancel.h). The default token is inert.

/// Deep-copies the profile in top-down shape. (The CCT already is the
/// top-down tree; the copy exists so transforms compose uniformly.)
Profile topDownTree(const Profile &P, const CancelToken &Cancel = {});

/// Builds the bottom-up tree: for every context with a nonzero exclusive
/// value, its reversed call path (leaf frame outermost) is inserted and the
/// exclusive value attributed along it. The first tree level therefore
/// aggregates each function's total exclusive cost across all call paths.
Profile bottomUpTree(const Profile &P, const CancelToken &Cancel = {});

/// Builds the flat tree with hierarchy: root -> load module -> file ->
/// function. Exclusive values sum per function. For each input metric an
/// additional "<name> (inclusive)" column records the call-path-aware
/// inclusive sum per function (recursion counted once).
Profile flatTree(const Profile &P, const CancelToken &Cancel = {});

/// Merges chains of the same frame along call paths, collapsing direct
/// self-recursion into a single context (paper §V-A(a): "collapsing deep
/// and recursive call paths").
Profile collapseRecursion(const Profile &P, const CancelToken &Cancel = {});

/// Truncates the tree at \p MaxDepth; the exclusive values of elided
/// descendants fold into their depth-MaxDepth ancestor so totals are
/// conserved.
Profile limitDepth(const Profile &P, unsigned MaxDepth);

} // namespace ev

#endif // EASYVIEW_ANALYSIS_TRANSFORM_H
