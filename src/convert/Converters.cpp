//===- convert/Converters.cpp - Format detection and dispatch -------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "convert/Converters.h"

#include "proto/EvProf.h"
#include "support/Strings.h"

namespace ev {
namespace convert {

std::string_view formatName(Format F) {
  switch (F) {
  case Format::EvProf:
    return "evprof";
  case Format::Pprof:
    return "pprof";
  case Format::PerfScript:
    return "perf-script";
  case Format::Collapsed:
    return "collapsed";
  case Format::ChromeTrace:
    return "chrome-trace";
  case Format::Speedscope:
    return "speedscope";
  case Format::Hpctoolkit:
    return "hpctoolkit";
  case Format::Scalene:
    return "scalene";
  case Format::Pyinstrument:
    return "pyinstrument";
  case Format::Tau:
    return "tau";
  case Format::Unknown:
    return "unknown";
  }
  return "unknown";
}

namespace {

/// A quick look at JSON content without a full parse: which top-level keys
/// appear early in the document.
bool mentions(std::string_view Bytes, std::string_view Key) {
  return Bytes.substr(0, 4096).find(Key) != std::string_view::npos;
}

bool looksBinary(std::string_view Bytes) {
  size_t Limit = std::min<size_t>(Bytes.size(), 512);
  for (size_t I = 0; I < Limit; ++I) {
    unsigned char C = static_cast<unsigned char>(Bytes[I]);
    if (C == 0 || (C < 9 && C != 0))
      return true;
  }
  return false;
}

/// Collapsed stacks: every non-empty line is "frame;frame;... <number>",
/// and at least one checked line has a multi-frame stack.
bool looksCollapsed(std::string_view Bytes) {
  size_t Checked = 0;
  bool AnySemicolon = false;
  for (std::string_view Line : splitLines(Bytes.substr(0, 8192))) {
    Line = trim(Line);
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Space = Line.rfind(' ');
    if (Space == std::string_view::npos)
      return false;
    uint64_t Count;
    if (!parseUnsigned(trim(Line.substr(Space + 1)), Count))
      return false;
    if (Line.substr(0, Space).find(';') != std::string_view::npos)
      AnySemicolon = true;
    if (++Checked >= 5)
      break;
  }
  return Checked > 0 && AnySemicolon;
}

/// perf script samples start with a header line containing "cycles:" style
/// event markers and are followed by tab-indented frames.
bool looksPerfScript(std::string_view Bytes) {
  auto Lines = splitLines(Bytes.substr(0, 8192));
  for (size_t I = 0; I + 1 < Lines.size(); ++I) {
    std::string_view Line = Lines[I];
    if (Line.empty() || Line[0] == '\t' || Line[0] == ' ')
      continue;
    if (Line.find(':') == std::string_view::npos)
      return false;
    std::string_view Next = Lines[I + 1];
    return !Next.empty() && (Next[0] == '\t' || Next[0] == ' ');
  }
  return false;
}

} // namespace

Format detectFormat(std::string_view Bytes, std::string_view NameHint) {
  if (isEvProf(Bytes))
    return Format::EvProf;
  if (endsWith(NameHint, ".evprof"))
    return Format::EvProf;

  std::string_view Head = trim(Bytes.substr(0, 64));
  if (startsWith(Head, "<"))
    return Format::Hpctoolkit;
  if (startsWith(Head, "{") || startsWith(Head, "[")) {
    if (mentions(Bytes, "\"$schema\"") &&
        mentions(Bytes, "speedscope"))
      return Format::Speedscope;
    if (mentions(Bytes, "\"traceEvents\"") ||
        (startsWith(Head, "[") && mentions(Bytes, "\"ph\"")))
      return Format::ChromeTrace;
    if (mentions(Bytes, "\"root_frame\""))
      return Format::Pyinstrument;
    if (mentions(Bytes, "\"files\"") &&
        (mentions(Bytes, "n_cpu_percent_python") ||
         mentions(Bytes, "\"lines\"")))
      return Format::Scalene;
    return Format::Unknown;
  }
  if (looksBinary(Bytes))
    return Format::Pprof;
  if (mentions(Bytes, "templated_functions"))
    return Format::Tau;
  if (looksCollapsed(Bytes))
    return Format::Collapsed;
  if (looksPerfScript(Bytes))
    return Format::PerfScript;
  return Format::Unknown;
}

Result<Profile> load(std::string_view Bytes, std::string_view NameHint) {
  return load(Bytes, NameHint, DecodeLimits::defaults());
}

Result<Profile> load(std::string_view Bytes, std::string_view NameHint,
                     const DecodeLimits &Limits) {
  if (Bytes.size() > Limits.MaxInputBytes)
    return makeError("input of " + std::to_string(Bytes.size()) +
                     " bytes exceeds the decode limit");
  Format F = detectFormat(Bytes, NameHint);
  Result<Profile> P = makeError("unrecognized profile format");
  switch (F) {
  case Format::EvProf:
    P = readEvProf(Bytes, Limits);
    break;
  case Format::Pprof:
    P = fromPprof(Bytes);
    break;
  case Format::PerfScript:
    P = fromPerfScript(Bytes);
    break;
  case Format::Collapsed:
    P = fromCollapsed(Bytes);
    break;
  case Format::ChromeTrace:
    P = fromChromeTrace(Bytes);
    break;
  case Format::Speedscope:
    P = fromSpeedscope(Bytes);
    break;
  case Format::Hpctoolkit:
    P = fromHpctoolkit(Bytes);
    break;
  case Format::Scalene:
    P = fromScalene(Bytes);
    break;
  case Format::Pyinstrument:
    P = fromPyinstrument(Bytes);
    break;
  case Format::Tau:
    P = fromTau(Bytes);
    break;
  case Format::Unknown:
    return makeError("unrecognized profile format");
  }
  // Text converters bound their output by their input, but the check is
  // cheap and makes the guarantee uniform across every format.
  if (P && P->nodeCount() > Limits.MaxNodes)
    return makeError("converted profile has " +
                     std::to_string(P->nodeCount()) +
                     " contexts, exceeding the decode limit");
  if (P && !NameHint.empty())
    P->setName(std::string(NameHint));
  return P;
}

} // namespace convert
} // namespace ev
