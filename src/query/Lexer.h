//===- query/Lexer.h - EVQL token stream ----------------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for EVQL, the small embedded language that reproduces the
/// paper's customizable-analysis pane (§V-B). Where the paper embeds
/// Python-in-WASM, this reproduction embeds a purpose-built language with
/// the same two hook points: per-node callbacks (prune/keep statements) and
/// metric-formula callbacks (derive statements).
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_QUERY_LEXER_H
#define EASYVIEW_QUERY_LEXER_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ev {
namespace evql {

enum class TokenKind : uint8_t {
  // Literals and identifiers.
  Number,
  String,
  Identifier,
  // Keywords.
  KwLet,
  KwDerive,
  KwPrune,
  KwKeep,
  KwWhen,
  KwPrint,
  KwReturn,
  KwTrue,
  KwFalse,
  // Punctuation and operators.
  LParen,
  RParen,
  Comma,
  Semicolon,
  Assign,       // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  EqualEqual,
  BangEqual,
  Bang,
  AmpAmp,
  PipePipe,
  Question,
  Colon,
  EndOfInput,
};

/// \returns a printable name for diagnostics ("'&&'", "number", ...).
std::string_view tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::EndOfInput;
  std::string Text;     ///< Identifier name or decoded string literal.
  double Number = 0.0;  ///< Value for number literals.
  size_t Line = 1;      ///< 1-based source line, for diagnostics.
  size_t Column = 1;    ///< 1-based source column of the first byte.
};

/// Tokenizes \p Source. Comments run from '#' to end of line.
Result<std::vector<Token>> lex(std::string_view Source);

} // namespace evql
} // namespace ev

#endif // EASYVIEW_QUERY_LEXER_H
