//===- render/HtmlRenderer.h - Self-contained HTML report -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bundles the views into one self-contained HTML document: profile
/// summary (the paper's floating-window action), the three flame-graph
/// shapes, and a tree table. Everything renders locally with no uploads —
/// one of EasyView's explicit design points against server-hosted
/// visualizers.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_RENDER_HTMLRENDERER_H
#define EASYVIEW_RENDER_HTMLRENDERER_H

#include "profile/Profile.h"

#include <string>

namespace ev {

struct HtmlOptions {
  MetricId Metric = 0;
  bool IncludeBottomUp = true;
  bool IncludeFlat = true;
  bool IncludeTreeTable = true;
  unsigned WidthPx = 1200;
};

/// Renders a full report for \p P.
std::string renderHtmlReport(const Profile &P, const HtmlOptions &Options = {});

/// The floating-window global summary: node/frame counts, metric totals,
/// hottest contexts.
std::string renderSummaryText(const Profile &P);

} // namespace ev

#endif // EASYVIEW_RENDER_HTMLRENDERER_H
