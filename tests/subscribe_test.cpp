//===- tests/subscribe_test.cpp - Delta-synced live view subscriptions ----===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the live-view subscription stack end to end: the ViewDelta codec
/// (encode/apply byte-identity, fallback, generation peeking), the
/// pvp/subscribe / pvp/ack / pvp/unsubscribe server methods with their
/// acked-generation bookkeeping, streaming pvp/append driving pushes over
/// the real wire framing, thread-count byte-identity, the SessionManager
/// notify plumbing under a budgeted (spilling) store, and the two
/// transport-level regressions that long-lived subscriber connections
/// exposed (FrameReader capacity pinning, ViewCache re-insert accounting).
/// The `easyview_subscribe` ctest entry (and both sanitizer presets) run
/// exactly these suites, so every name starts with "Subscribe".
///
//===----------------------------------------------------------------------===//

#include "ide/MockIde.h"
#include "ide/PvpServer.h"
#include "ide/SessionManager.h"
#include "ide/ViewCache.h"
#include "ide/ViewDelta.h"
#include "proto/EvProf.h"
#include "support/Strings.h"
#include "support/ThreadPool.h"

#include "TestHelpers.h"

#include <cstdlib>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

using namespace ev;

namespace {

/// Fresh per-test scratch directory under /tmp.
std::string testDir() {
  const ::testing::TestInfo *Info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string Dir = std::string("/tmp/evsub_test_") + Info->test_suite_name() +
                    "_" + Info->name();
  std::string Cmd = "rm -rf " + Dir + " && mkdir -p " + Dir;
  EXPECT_EQ(std::system(Cmd.c_str()), 0);
  return Dir;
}

/// The shared growth-stage construction (see TestHelpers.h), with the
/// prefix property pinned here so a codec or builder change that breaks it
/// fails loudly, not as a cryptic decode error later.
std::vector<std::string> growthStageBytes(size_t Stages) {
  std::vector<std::string> Out = test::growthStageBytes(Stages);
  for (size_t S = 0; S + 1 < Out.size(); ++S)
    EXPECT_EQ(Out[S + 1].compare(0, Out[S].size(), Out[S]), 0)
        << "stage " << S + 1 << " does not extend stage " << S;
  return Out;
}

/// The appended section taking stage \p From to stage \p From + 1.
std::string sectionBytes(const std::vector<std::string> &Stages, size_t From) {
  return test::sectionBytes(Stages, From);
}

int64_t intField(const json::Value &V, const char *Key) {
  const json::Value *F = V.asObject().find(Key);
  EXPECT_NE(F, nullptr) << "missing field " << Key;
  int64_t Out = -1;
  if (F) {
    EXPECT_TRUE(F->getInteger(Out)) << "field " << Key << " not an integer";
  }
  return Out;
}

std::string stringField(const json::Value &V, const char *Key) {
  const json::Value *F = V.asObject().find(Key);
  EXPECT_NE(F, nullptr) << "missing field " << Key;
  return F && F->isString() ? F->asString() : std::string();
}

/// Extracts the pvp/viewDelta notifications from a drained wire batch.
std::vector<json::Value> viewDeltasIn(const std::vector<json::Value> &Notes) {
  std::vector<json::Value> Out;
  for (const json::Value &N : Notes)
    if (N.isObject())
      if (const json::Value *M = N.asObject().find("method");
          M && M->isString() && M->asString() == "pvp/viewDelta")
        Out.push_back(*N.asObject().find("params"));
  return Out;
}

/// Decodes params.deltaBase64 and applies it to \p Held.
json::Value applyDeltaParams(const json::Value &Held,
                             const json::Value &Params) {
  std::string Delta;
  EXPECT_TRUE(base64Decode(stringField(Params, "deltaBase64"), Delta));
  Result<json::Value> Applied = applyViewDelta(Held, Delta);
  EXPECT_TRUE(bool(Applied)) << (Applied ? "" : Applied.error());
  return Applied ? *Applied : json::Value();
}

} // namespace

//===----------------------------------------------------------------------===
// SubscribeDelta: the ViewDelta codec in isolation.
//===----------------------------------------------------------------------===

namespace {

json::Value makeRow(int64_t Node, double Self, const std::string &Name) {
  json::Object Row;
  Row.set("node", Node);
  Row.set("self", Self);
  Row.set("name", Name);
  return json::Value(std::move(Row));
}

json::Value makeView(std::vector<json::Value> Rows, int64_t Total) {
  json::Object Obj;
  json::Array Arr;
  for (json::Value &R : Rows)
    Arr.push_back(std::move(R));
  Obj.set("rows", json::Value(std::move(Arr)));
  Obj.set("total", Total);
  return json::Value(std::move(Obj));
}

} // namespace

TEST(SubscribeDelta, RowPatchRoundTripIsByteIdentical) {
  // Row 1 changes a string (forcing a per-row patch — strings are never
  // columnized) and a double; the double is backed by every next row and
  // changed in 2 of 3, so it ships as a packed column instead.
  json::Value Base =
      makeView({makeRow(0, 1.5, "root"), makeRow(1, 2.0, "a")}, 10);
  json::Value Next = makeView({makeRow(0, 1.5, "root"), makeRow(1, 3.5, "aa"),
                               makeRow(2, 0.25, "b")},
                              14);
  ViewDeltaStats Stats;
  std::string Delta = encodeViewDelta(Base, Next, "rows", 3, 4, &Stats);
  EXPECT_FALSE(Stats.FullFallback);
  EXPECT_EQ(Stats.RowsAdded, 1u);
  EXPECT_EQ(Stats.RowsPatched, 1u);
  EXPECT_EQ(Stats.ColumnsPatched, 1u);
  EXPECT_EQ(Stats.ScalarsPatched, 1u);

  Result<json::Value> Applied = applyViewDelta(Base, Delta);
  ASSERT_TRUE(bool(Applied)) << Applied.error();
  EXPECT_EQ(Applied->dump(), Next.dump());

  Result<std::pair<uint64_t, uint64_t>> Gens = peekViewDeltaGenerations(Delta);
  ASSERT_TRUE(bool(Gens)) << Gens.error();
  EXPECT_EQ(Gens->first, 3u);
  EXPECT_EQ(Gens->second, 4u);
}

TEST(SubscribeDelta, DenseDoubleChangePacksAsColumnNotRowPatches) {
  // Every row moves its double (a flame renormalization): the codec must
  // ship one packed fixed64 column and zero per-row patches, and applying
  // it must still reproduce the next view byte-for-byte.
  json::Value Base =
      makeView({makeRow(0, 0.5, "root"), makeRow(1, 0.25, "a"),
                makeRow(2, 0.125, "b")},
               8);
  json::Value Next =
      makeView({makeRow(0, 0.4, "root"), makeRow(1, 0.2, "a"),
                makeRow(2, 0.1, "b")},
               10);
  ViewDeltaStats Stats;
  std::string Delta = encodeViewDelta(Base, Next, "rows", 7, 8, &Stats);
  EXPECT_FALSE(Stats.FullFallback);
  EXPECT_EQ(Stats.ColumnsPatched, 1u);
  EXPECT_EQ(Stats.RowsPatched, 0u);
  EXPECT_EQ(Stats.RowsAdded, 0u);
  Result<json::Value> Applied = applyViewDelta(Base, Delta);
  ASSERT_TRUE(bool(Applied)) << Applied.error();
  EXPECT_EQ(Applied->dump(), Next.dump());
  // The packed column is the whole point: the delta must undercut the
  // dumped next view by a wide margin even at three rows.
  EXPECT_LT(Delta.size(), Next.dump().size());
}

TEST(SubscribeDelta, RemovalAndReorderRoundTrip) {
  json::Value Base = makeView(
      {makeRow(0, 1, "r"), makeRow(1, 2, "a"), makeRow(2, 3, "b")}, 6);
  json::Value Next = makeView({makeRow(2, 3, "b"), makeRow(0, 1, "r")}, 4);
  ViewDeltaStats Stats;
  std::string Delta = encodeViewDelta(Base, Next, "rows", 0, 1, &Stats);
  EXPECT_FALSE(Stats.FullFallback);
  EXPECT_EQ(Stats.RowsRemoved, 1u);
  Result<json::Value> Applied = applyViewDelta(Base, Delta);
  ASSERT_TRUE(bool(Applied)) << Applied.error();
  EXPECT_EQ(Applied->dump(), Next.dump());
}

TEST(SubscribeDelta, SchemaChangeFallsBackToFullView) {
  json::Value Base = makeView({makeRow(0, 1, "r")}, 1);
  // Next's rows carry an extra key, so the uniform-schema requirement
  // fails and the codec must ship the full view instead of a wrong delta.
  json::Object Row;
  Row.set("node", static_cast<int64_t>(0));
  Row.set("self", 2.0);
  Row.set("name", std::string("r"));
  Row.set("extra", true);
  json::Value Next = makeView({json::Value(std::move(Row))}, 2);

  ViewDeltaStats Stats;
  std::string Delta = encodeViewDelta(Base, Next, "rows", 7, 8, &Stats);
  EXPECT_TRUE(Stats.FullFallback);
  Result<json::Value> Applied = applyViewDelta(Base, Delta);
  ASSERT_TRUE(bool(Applied)) << Applied.error();
  EXPECT_EQ(Applied->dump(), Next.dump());
}

TEST(SubscribeDelta, IdenticalViewsProduceEmptyPatchSet) {
  json::Value Base = makeView({makeRow(0, 1, "r"), makeRow(1, 2, "a")}, 3);
  ViewDeltaStats Stats;
  std::string Delta = encodeViewDelta(Base, Base, "rows", 2, 3, &Stats);
  EXPECT_FALSE(Stats.FullFallback);
  EXPECT_EQ(Stats.RowsPatched, 0u);
  EXPECT_EQ(Stats.RowsAdded, 0u);
  EXPECT_EQ(Stats.RowsRemoved, 0u);
  Result<json::Value> Applied = applyViewDelta(Base, Delta);
  ASSERT_TRUE(bool(Applied)) << Applied.error();
  EXPECT_EQ(Applied->dump(), Base.dump());
}

TEST(SubscribeDelta, MalformedDeltaFailsCleanly) {
  json::Value Base = makeView({makeRow(0, 1, "r")}, 1);
  EXPECT_FALSE(applyViewDelta(Base, "not a delta").ok());
  EXPECT_FALSE(peekViewDeltaGenerations("garbage").ok());
}

//===----------------------------------------------------------------------===
// SubscribeServer: the PVP methods over the real wire framing (MockIde).
//===----------------------------------------------------------------------===

namespace {

/// Drives one subscription through every growth stage and asserts the
/// applied delta stream is byte-identical to an explicit full re-query at
/// every generation. \returns the concatenated delta payloads (for the
/// thread-count identity test).
std::string runDeltaStream(const std::string &View, json::Object ViewParams,
                           const char *RequeryMethod, size_t Stages = 5) {
  std::vector<std::string> Bytes = growthStageBytes(Stages);
  MockIde Ide;
  Result<int64_t> Id = Ide.openProfile("live", Bytes[0]);
  EXPECT_TRUE(bool(Id)) << (Id ? "" : Id.error());
  Ide.takeNotifications(); // No subscription yet; nothing expected.

  json::Object SubParams;
  SubParams.set("profile", *Id);
  SubParams.set("view", View);
  SubParams.set("params", json::Value(ViewParams));
  Result<json::Value> Sub = Ide.call("pvp/subscribe", std::move(SubParams));
  EXPECT_TRUE(bool(Sub)) << (Sub ? "" : Sub.error());
  if (!Sub)
    return std::string();
  int64_t SubId = intField(*Sub, "subscription");
  json::Value Held = *Sub->asObject().find("view");

  // The initial view must itself be byte-identical to an explicit query.
  json::Object Requery(ViewParams);
  Requery.set("profile", *Id);
  Result<json::Value> Initial = Ide.call(RequeryMethod, Requery);
  EXPECT_TRUE(bool(Initial)) << (Initial ? "" : Initial.error());
  EXPECT_EQ(Held.dump(), Initial->dump());

  std::string DeltaBytes;
  for (size_t S = 0; S + 1 < Stages; ++S) {
    json::Object AppendParams;
    AppendParams.set("profile", *Id);
    AppendParams.set("dataBase64", base64Encode(sectionBytes(Bytes, S)));
    Result<json::Value> Appended =
        Ide.call("pvp/append", std::move(AppendParams));
    EXPECT_TRUE(bool(Appended)) << (Appended ? "" : Appended.error());
    if (!Appended)
      return std::string();
    EXPECT_GT(intField(*Appended, "nodesAdded"), 0);
    int64_t Gen = intField(*Appended, "generation");

    std::vector<json::Value> Deltas = viewDeltasIn(Ide.takeNotifications());
    EXPECT_EQ(Deltas.size(), 1u) << "expected exactly one push per append";
    if (Deltas.size() != 1)
      return std::string();
    EXPECT_EQ(intField(Deltas[0], "subscription"), SubId);
    EXPECT_EQ(intField(Deltas[0], "toGeneration"), Gen);

    std::string Raw;
    EXPECT_TRUE(base64Decode(stringField(Deltas[0], "deltaBase64"), Raw));
    DeltaBytes += Raw;

    json::Value Applied = applyDeltaParams(Held, Deltas[0]);
    Result<json::Value> Full = Ide.call(RequeryMethod, Requery);
    EXPECT_TRUE(bool(Full)) << (Full ? "" : Full.error());
    if (!Full)
      return std::string();
    EXPECT_EQ(Applied.dump(), Full->dump())
        << "applied delta diverged from re-query at stage " << S + 1;
    // The push is compact: strictly smaller than re-serializing the view.
    EXPECT_LT(Raw.size(), Full->dump().size());

    json::Object AckParams;
    AckParams.set("subscription", SubId);
    AckParams.set("generation", Gen);
    Result<json::Value> Ack = Ide.call("pvp/ack", std::move(AckParams));
    EXPECT_TRUE(bool(Ack)) << (Ack ? "" : Ack.error());
    if (!Ack)
      return std::string();
    EXPECT_TRUE(Ack->asObject().find("acked")->asBool());
    Held = std::move(Applied);
  }

  json::Object Unsub;
  Unsub.set("subscription", SubId);
  Result<json::Value> Removed = Ide.call("pvp/unsubscribe", std::move(Unsub));
  EXPECT_TRUE(bool(Removed)) << (Removed ? "" : Removed.error());
  EXPECT_TRUE(Removed->asObject().find("removed")->asBool());
  EXPECT_EQ(Ide.server().subscriptionCount(), 0u);
  return DeltaBytes;
}

} // namespace

TEST(SubscribeServer, FlameDeltaStreamMatchesRequery) {
  json::Object P;
  P.set("maxRects", static_cast<int64_t>(4096));
  runDeltaStream("flame", std::move(P), "pvp/flame");
}

TEST(SubscribeServer, TreeTableDeltaStreamMatchesRequery) {
  json::Object P;
  P.set("includeText", false);
  runDeltaStream("treeTable", std::move(P), "pvp/treeTable");
}

TEST(SubscribeServer, UnackedPushesAlwaysDiffFromAckedBase) {
  std::vector<std::string> Bytes = growthStageBytes(4);
  MockIde Ide;
  Result<int64_t> Id = Ide.openProfile("live", Bytes[0]);
  ASSERT_TRUE(bool(Id)) << Id.error();

  json::Object SubParams;
  SubParams.set("profile", *Id);
  SubParams.set("view", "treeTable");
  json::Object VP;
  VP.set("includeText", false);
  SubParams.set("params", json::Value(std::move(VP)));
  Result<json::Value> Sub = Ide.call("pvp/subscribe", std::move(SubParams));
  ASSERT_TRUE(bool(Sub)) << Sub.error();
  int64_t SubId = intField(*Sub, "subscription");
  int64_t Gen0 = intField(*Sub, "generation");
  json::Value Acked = *Sub->asObject().find("view");

  // Two appends, no ack in between: each push must diff from the ACKED
  // view (replay-safe), not chain on the unacked predecessor.
  json::Value LastDelta;
  for (size_t S = 0; S < 2; ++S) {
    json::Object AP;
    AP.set("profile", *Id);
    AP.set("dataBase64", base64Encode(sectionBytes(Bytes, S)));
    ASSERT_TRUE(Ide.call("pvp/append", std::move(AP)).ok());
    std::vector<json::Value> Deltas = viewDeltasIn(Ide.takeNotifications());
    ASSERT_EQ(Deltas.size(), 1u);
    EXPECT_EQ(intField(Deltas[0], "fromGeneration"), Gen0)
        << "push must be based on the acked generation";
    LastDelta = Deltas[0];
  }

  // Applying ONLY the last delta to the original acked view yields the
  // current view — the dropped intermediate push costs nothing.
  json::Value Applied = applyDeltaParams(Acked, LastDelta);
  json::Object Requery;
  Requery.set("includeText", false);
  Requery.set("profile", *Id);
  Result<json::Value> Full = Ide.call("pvp/treeTable", Requery);
  ASSERT_TRUE(bool(Full)) << Full.error();
  EXPECT_EQ(Applied.dump(), Full->dump());

  // Ack the latest push; the next delta advances from it.
  int64_t Gen2 = intField(LastDelta, "toGeneration");
  json::Object AckP;
  AckP.set("subscription", SubId);
  AckP.set("generation", Gen2);
  Result<json::Value> Ack = Ide.call("pvp/ack", std::move(AckP));
  ASSERT_TRUE(bool(Ack)) << Ack.error();
  EXPECT_TRUE(Ack->asObject().find("acked")->asBool());

  json::Object AP;
  AP.set("profile", *Id);
  AP.set("dataBase64", base64Encode(sectionBytes(Bytes, 2)));
  ASSERT_TRUE(Ide.call("pvp/append", std::move(AP)).ok());
  std::vector<json::Value> Deltas = viewDeltasIn(Ide.takeNotifications());
  ASSERT_EQ(Deltas.size(), 1u);
  EXPECT_EQ(intField(Deltas[0], "fromGeneration"), Gen2);
}

TEST(SubscribeServer, AckIsIdempotentAndRejectsStaleGenerations) {
  std::vector<std::string> Bytes = growthStageBytes(2);
  MockIde Ide;
  Result<int64_t> Id = Ide.openProfile("live", Bytes[0]);
  ASSERT_TRUE(bool(Id)) << Id.error();
  json::Object SubParams;
  SubParams.set("profile", *Id);
  SubParams.set("view", "flame");
  Result<json::Value> Sub = Ide.call("pvp/subscribe", std::move(SubParams));
  ASSERT_TRUE(bool(Sub)) << Sub.error();
  int64_t SubId = intField(*Sub, "subscription");
  int64_t Gen0 = intField(*Sub, "generation");

  // Re-acking the current base (a reconnect replay) succeeds and is a
  // no-op; acking a generation never pushed is refused.
  json::Object AckSame;
  AckSame.set("subscription", SubId);
  AckSame.set("generation", Gen0);
  Result<json::Value> A1 = Ide.call("pvp/ack", std::move(AckSame));
  ASSERT_TRUE(bool(A1)) << A1.error();
  EXPECT_TRUE(A1->asObject().find("acked")->asBool());

  json::Object AckBogus;
  AckBogus.set("subscription", SubId);
  AckBogus.set("generation", Gen0 + 1234);
  Result<json::Value> A2 = Ide.call("pvp/ack", std::move(AckBogus));
  ASSERT_TRUE(bool(A2)) << A2.error();
  EXPECT_FALSE(A2->asObject().find("acked")->asBool());
  EXPECT_EQ(intField(*A2, "generation"), Gen0);
}

TEST(SubscribeServer, CloseEndsSubscriptionWithReason) {
  std::vector<std::string> Bytes = growthStageBytes(1);
  MockIde Ide;
  Result<int64_t> Id = Ide.openProfile("live", Bytes[0]);
  ASSERT_TRUE(bool(Id)) << Id.error();
  json::Object SubParams;
  SubParams.set("profile", *Id);
  SubParams.set("view", "flame");
  ASSERT_TRUE(Ide.call("pvp/subscribe", std::move(SubParams)).ok());
  Ide.takeNotifications();

  json::Object CloseParams;
  CloseParams.set("profile", *Id);
  ASSERT_TRUE(Ide.call("pvp/close", std::move(CloseParams)).ok());

  bool SawEnd = false;
  for (const json::Value &N : Ide.takeNotifications())
    if (const json::Value *M = N.asObject().find("method");
        M && M->asString() == "pvp/subscriptionEnd")
      SawEnd = true;
  EXPECT_TRUE(SawEnd);
  EXPECT_EQ(Ide.server().subscriptionCount(), 0u);
}

TEST(SubscribeServer, SubscriptionCapYieldsTypedError) {
  ServerLimits Limits;
  Limits.MaxSubscriptionsPerSession = 1;
  PvpServer Server(Limits);
  std::vector<std::string> Bytes = growthStageBytes(1);
  Result<Profile> P = readEvProf(Bytes[0]);
  ASSERT_TRUE(bool(P)) << P.error();
  int64_t Id = Server.addProfile(P.take());

  json::Object SubParams;
  SubParams.set("profile", Id);
  SubParams.set("view", "flame");
  json::Value First = Server.handleMessage(
      rpc::makeRequest(1, "pvp/subscribe", json::Value(SubParams)));
  ASSERT_TRUE(First.asObject().contains("result"));

  json::Value Second = Server.handleMessage(
      rpc::makeRequest(2, "pvp/subscribe", json::Value(std::move(SubParams))));
  const json::Value *Err = Second.asObject().find("error");
  ASSERT_NE(Err, nullptr);
  EXPECT_EQ(Err->asObject().find("code")->asInt(),
            static_cast<int64_t>(rpc::SubscriptionLimit));
}

//===----------------------------------------------------------------------===
// SubscribeThreads: EV_THREADS=0 vs 4 byte-identity of the delta stream.
//===----------------------------------------------------------------------===

TEST(SubscribeThreads, DeltaStreamIsByteIdenticalAcrossThreadCounts) {
  json::Object P;
  P.set("maxRects", static_cast<int64_t>(4096));
  ThreadPool::setSharedThreadCount(0);
  std::string Sequential = runDeltaStream("flame", P, "pvp/flame");
  ThreadPool::setSharedThreadCount(4);
  std::string Parallel = runDeltaStream("flame", P, "pvp/flame");
  ThreadPool::setSharedThreadCount(ThreadPool::configuredThreads());
  ASSERT_FALSE(Sequential.empty());
  EXPECT_EQ(Sequential, Parallel);
}

//===----------------------------------------------------------------------===
// SubscribeManager: the strand notify plumbing, cross-session publishes,
// and a budgeted store spilling the subscribed profile mid-stream.
//===----------------------------------------------------------------------===

TEST(SubscribeManager, NotifyPlumbingSurvivesSpillingStore) {
  std::vector<std::string> Bytes = growthStageBytes(5);

  SessionManager::Options MOpts;
  MOpts.Sessions = 2;
  SessionManager Manager(MOpts);
  // A budget far below the profile's resident size forces spill/fault
  // churn on every recompute — the delta stream must not notice.
  ASSERT_TRUE(Manager.store().setBudget(1, testDir()).ok());

  std::mutex NotesMutex;
  std::vector<json::Value> Notes;
  auto Notify = [&NotesMutex, &Notes](json::Value N) {
    std::lock_guard<std::mutex> Lock(NotesMutex);
    Notes.push_back(std::move(N));
  };

  json::Object OpenParams;
  OpenParams.set("name", "live");
  OpenParams.set("dataBase64", base64Encode(Bytes[0]));
  json::Value Opened = Manager.handle(
      0, rpc::makeRequest(1, "pvp/open", json::Value(std::move(OpenParams))));
  const json::Object *OpenResult = Opened.asObject().find("result")
                                       ? &Opened.asObject()
                                              .find("result")
                                              ->asObject()
                                       : nullptr;
  ASSERT_NE(OpenResult, nullptr) << Opened.dump();
  int64_t Prof = 0;
  ASSERT_TRUE(OpenResult->find("profile")->getInteger(Prof));

  // A second, larger profile on the same store: alternating queries
  // against it force the budget to evict the SUBSCRIBED profile between
  // appends, so the publish sweep has to fault it back mid-stream.
  json::Object OtherParams;
  OtherParams.set("name", "churn");
  OtherParams.set("dataBase64",
                  base64Encode(writeEvProf(test::makeRandomProfile(77))));
  json::Value OtherOpened = Manager.handle(
      0, rpc::makeRequest(3, "pvp/open", json::Value(std::move(OtherParams))));
  const json::Value *OtherResult = OtherOpened.asObject().find("result");
  ASSERT_NE(OtherResult, nullptr) << OtherOpened.dump();
  int64_t Other = 0;
  ASSERT_TRUE(OtherResult->asObject().find("profile")->getInteger(Other));

  // Subscribe through submitAsync so the notify channel rides the same
  // plumbing the socket transport uses.
  std::promise<json::Value> SubPromise;
  Manager.submitAsync(
      0,
      [&] {
        json::Object SubParams;
        SubParams.set("profile", Prof);
        SubParams.set("view", "treeTable");
        json::Object VP;
        VP.set("includeText", false);
        SubParams.set("params", json::Value(std::move(VP)));
        return rpc::makeRequest(2, "pvp/subscribe",
                                json::Value(std::move(SubParams)));
      }(),
      [&SubPromise](json::Value R) { SubPromise.set_value(std::move(R)); },
      Notify);
  json::Value SubResponse = SubPromise.get_future().get();
  const json::Value *SubResult = SubResponse.asObject().find("result");
  ASSERT_NE(SubResult, nullptr) << SubResponse.dump();
  int64_t SubId = intField(*SubResult, "subscription");
  json::Value Held = *SubResult->asObject().find("view");

  for (size_t S = 0; S + 1 < Bytes.size(); ++S) {
    json::Object AP;
    AP.set("profile", Prof);
    AP.set("dataBase64", base64Encode(sectionBytes(Bytes, S)));
    json::Value Appended = Manager.handle(
        0, rpc::makeRequest(10 + static_cast<int64_t>(S), "pvp/append",
                            json::Value(std::move(AP))));
    ASSERT_TRUE(Appended.asObject().contains("result")) << Appended.dump();

    std::vector<json::Value> Deltas;
    {
      std::lock_guard<std::mutex> Lock(NotesMutex);
      Deltas = viewDeltasIn(Notes);
      Notes.clear();
    }
    ASSERT_EQ(Deltas.size(), 1u);
    EXPECT_EQ(intField(Deltas[0], "subscription"), SubId);
    json::Value Applied = applyDeltaParams(Held, Deltas[0]);

    json::Object Requery;
    Requery.set("includeText", false);
    Requery.set("profile", Prof);
    json::Value Full = Manager.handle(
        0, rpc::makeRequest(100 + static_cast<int64_t>(S), "pvp/treeTable",
                            json::Value(std::move(Requery))));
    const json::Value *FullResult = Full.asObject().find("result");
    ASSERT_NE(FullResult, nullptr) << Full.dump();
    EXPECT_EQ(Applied.dump(), FullResult->dump());

    json::Object AckP;
    AckP.set("subscription", SubId);
    AckP.set("generation", intField(Deltas[0], "toGeneration"));
    Manager.handle(0, rpc::makeRequest(200 + static_cast<int64_t>(S),
                                       "pvp/ack",
                                       json::Value(std::move(AckP))));
    Held = std::move(Applied);

    // Touch the churn profile so the subscribed one goes cold and the
    // budget sheds it before the next append.
    json::Object ChurnP;
    ChurnP.set("profile", Other);
    Manager.handle(0, rpc::makeRequest(300 + static_cast<int64_t>(S),
                                       "pvp/summary",
                                       json::Value(std::move(ChurnP))));
  }

  // The budget did its job (the profile spilled at least once) — this is
  // what makes the test exercise the fault path, not just the happy path.
  EXPECT_GT(Manager.store().stats().Evictions, 0u);
}

//===----------------------------------------------------------------------===
// SubscribeWire: FrameReader capacity regression (long-lived connections).
//===----------------------------------------------------------------------===

TEST(SubscribeWire, BufferCapacityReleasedAfterLargeFrame) {
  rpc::FrameReaderOptions Opts;
  Opts.CompactThresholdBytes = 64u << 10;
  rpc::FrameReader Reader(Opts);

  // One large frame: a subscriber's initial full view.
  json::Object Big;
  Big.set("payload", std::string(2u << 20, 'x'));
  Reader.feed(rpc::frame(json::Value(std::move(Big))));
  ASSERT_TRUE(Reader.poll().has_value());

  // Steady state afterwards: small acks. Without compaction the buffer
  // keeps its 2 MiB high-water capacity for the connection's lifetime.
  for (int I = 0; I < 4; ++I) {
    json::Object Small;
    Small.set("ack", static_cast<int64_t>(I));
    Reader.feed(rpc::frame(json::Value(std::move(Small))));
    ASSERT_TRUE(Reader.poll().has_value());
    EXPECT_FALSE(Reader.poll().has_value());
  }
  EXPECT_LE(Reader.bufferCapacityBytes(), Opts.CompactThresholdBytes)
      << "reader pinned its high-water allocation";
}

TEST(SubscribeWire, PartialOversizedBodyDoesNotPinCapacity) {
  rpc::FrameReaderOptions Opts;
  Opts.MaxFrameBytes = 256u << 10;
  Opts.CompactThresholdBytes = 64u << 10;
  rpc::FrameReader Reader(Opts);

  // Announce a body over the cap, stream it in chunks: the reader skips
  // the bytes as they arrive and must not accumulate them either.
  std::string Body(1u << 20, 'y');
  Reader.feed("Content-Length: " + std::to_string(Body.size()) + "\r\n\r\n");
  for (size_t Off = 0; Off < Body.size(); Off += 128u << 10) {
    Reader.feed(std::string_view(Body).substr(Off, 128u << 10));
    EXPECT_FALSE(Reader.poll().has_value());
    EXPECT_LE(Reader.bufferCapacityBytes(), Opts.CompactThresholdBytes);
  }
  EXPECT_FALSE(Reader.takeErrors().empty());
}

//===----------------------------------------------------------------------===
// SubscribeCache: ViewCache byte accounting under generation churn.
//===----------------------------------------------------------------------===

TEST(SubscribeCache, ReinsertChurnKeepsByteAccountingExact) {
  ViewCache Cache(8, 1);
  json::Object BigObj;
  BigObj.set("rows", std::string(64u << 10, 'r'));
  json::Value Big(std::move(BigObj));
  json::Object SmallObj;
  SmallObj.set("rows", std::string(16, 's'));
  json::Value Small(std::move(SmallObj));

  // A subscribed profile's view is recomputed and re-inserted under the
  // SAME key shape at every generation. The accounting must track the
  // live payload, not accumulate every generation ever inserted.
  Cache.insert("view|1|g", 1, 1, Big);
  uint64_t AfterBig = Cache.approxBytes();
  for (uint64_t Gen = 2; Gen < 50; ++Gen)
    Cache.insert("view|1|g", 1, Gen, Small);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_LT(Cache.approxBytes(), AfterBig)
      << "re-insert accounting leaked the displaced payload";

  // Generation revalidation drops the stale entry and refunds its bytes.
  EXPECT_EQ(Cache.lookup("view|1|g", 999), nullptr);
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.approxBytes(), 0u);
}
