//===- render/DiffRenderer.cpp - Differential flame graph back end --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "render/DiffRenderer.h"

#include "render/Color.h"
#include "support/Strings.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ev {

namespace {

double magnitudeOf(const DiffResult &Diff, NodeId Id) {
  double B = Diff.BaseInclusive[Id];
  double T = Diff.TestInclusive[Id];
  double Scale = std::max(std::abs(B), std::abs(T));
  return Scale == 0.0 ? 0.0 : std::abs(T - B) / Scale;
}

} // namespace

std::string renderDiffText(const DiffResult &Diff,
                           const DiffRenderOptions &Options) {
  const Profile &P = Diff.Merged;
  double Denominator = std::max(std::abs(Diff.BaseInclusive[0]),
                                std::abs(Diff.TestInclusive[0]));
  if (Denominator == 0.0)
    Denominator = 1.0;
  const std::string &Unit = P.metrics()[Diff.BaseMetric].Unit;

  std::string Out;
  struct Item {
    NodeId Node;
    unsigned Depth;
  };
  std::vector<Item> Stack{{P.root(), 0}};
  while (!Stack.empty()) {
    Item It = Stack.back();
    Stack.pop_back();
    double Share =
        std::max(std::abs(Diff.BaseInclusive[It.Node]),
                 std::abs(Diff.TestInclusive[It.Node])) /
        Denominator;
    if (Share < Options.MinFraction && It.Node != P.root())
      continue;

    std::string Line(It.Depth * 2, ' ');
    Line += diffTagLabel(Diff.Tags[It.Node]);
    Line += " ";
    Line += std::string(P.nameOf(It.Node));
    double B = Diff.BaseInclusive[It.Node];
    double T = Diff.TestInclusive[It.Node];
    Line += "  base=" + formatMetric(B, Unit) + " test=" +
            formatMetric(T, Unit);
    double Delta = T - B;
    Line += " delta=" + std::string(Delta >= 0 ? "+" : "") +
            formatMetric(Delta, Unit);
    if (B != 0.0)
      Line += " (" + std::string(Delta >= 0 ? "+" : "") +
              formatDouble(100.0 * Delta / std::abs(B), 1) + "%)";
    Out += Line + "\n";

    if (It.Depth + 1 >= Options.MaxDepth)
      continue;
    std::vector<NodeId> Ordered(P.node(It.Node).Children.begin(),
                                P.node(It.Node).Children.end());
    std::sort(Ordered.begin(), Ordered.end(), [&Diff](NodeId A, NodeId B2) {
      double DA = std::abs(Diff.TestInclusive[A] - Diff.BaseInclusive[A]);
      double DB = std::abs(Diff.TestInclusive[B2] - Diff.BaseInclusive[B2]);
      if (DA != DB)
        return DA > DB;
      return A < B2;
    });
    for (size_t I = Ordered.size(); I > 0; --I)
      Stack.push_back({Ordered[I - 1], It.Depth + 1});
  }
  return Out;
}

std::string renderDiffSvg(const DiffResult &Diff,
                          const DiffRenderOptions &Options) {
  const Profile &P = Diff.Merged;
  // Width geometry from max(base, test) so deleted subtrees stay visible.
  double Total = std::max(std::abs(Diff.BaseInclusive[0]),
                          std::abs(Diff.TestInclusive[0]));
  if (Total <= 0.0)
    Total = 1.0;

  struct RectItem {
    NodeId Node;
    unsigned Depth;
    double X;
    double Width;
  };
  std::vector<RectItem> Rects;
  unsigned MaxDepthSeen = 0;
  struct Work {
    NodeId Node;
    unsigned Depth;
    double X;
  };
  auto WidthOf = [&](NodeId Id) {
    return std::max(std::abs(Diff.BaseInclusive[Id]),
                    std::abs(Diff.TestInclusive[Id])) /
           Total;
  };
  std::vector<Work> Stack{{P.root(), 0, 0.0}};
  while (!Stack.empty()) {
    Work W = Stack.back();
    Stack.pop_back();
    double Width = WidthOf(W.Node);
    if (Width < Options.MinFraction)
      continue;
    Rects.push_back({W.Node, W.Depth, W.X, Width});
    MaxDepthSeen = std::max(MaxDepthSeen, W.Depth + 1);
    if (W.Depth + 1 >= Options.MaxDepth)
      continue;
    double ChildX = W.X;
    std::vector<Work> Pending;
    for (NodeId Child : P.node(W.Node).Children) {
      double CW = WidthOf(Child);
      Pending.push_back({Child, W.Depth + 1, ChildX});
      ChildX += CW;
    }
    for (size_t I = Pending.size(); I > 0; --I)
      Stack.push_back(Pending[I - 1]);
  }

  const std::string &Unit = P.metrics()[Diff.BaseMetric].Unit;
  unsigned HeightPx = MaxDepthSeen * Options.RowHeightPx + 4;
  std::string Out;
  char Buffer[512];
  std::snprintf(Buffer, sizeof(Buffer),
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%u\" "
                "height=\"%u\" font-family=\"monospace\" "
                "font-size=\"11\">\n",
                Options.WidthPx, HeightPx);
  Out += Buffer;
  for (const RectItem &R : Rects) {
    Rgb Color = diffColor(Diff.Tags[R.Node], magnitudeOf(Diff, R.Node));
    double X = R.X * Options.WidthPx;
    double W = R.Width * Options.WidthPx;
    double Y = static_cast<double>(R.Depth) * Options.RowHeightPx;
    std::string Title = std::string(diffTagLabel(Diff.Tags[R.Node])) + " " +
                        std::string(P.nameOf(R.Node)) + " base=" +
                        formatMetric(Diff.BaseInclusive[R.Node], Unit) +
                        " test=" +
                        formatMetric(Diff.TestInclusive[R.Node], Unit);
    std::snprintf(Buffer, sizeof(Buffer),
                  "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" "
                  "height=\"%u\" fill=\"%s\" stroke=\"#ffffff\" "
                  "stroke-width=\"0.5\"><title>%s</title></rect>\n",
                  X, Y, W, Options.RowHeightPx - 1,
                  toHexColor(Color).c_str(), escapeXml(Title).c_str());
    Out += Buffer;
    size_t FitChars = static_cast<size_t>(W / 6.6);
    if (FitChars >= 5) {
      std::string Label = std::string(diffTagLabel(Diff.Tags[R.Node])) +
                          std::string(P.nameOf(R.Node));
      if (Label.size() > FitChars)
        Label = Label.substr(0, FitChars - 2) + "..";
      std::snprintf(Buffer, sizeof(Buffer),
                    "<text x=\"%.2f\" y=\"%.2f\" fill=\"#ffffff\">%s"
                    "</text>\n",
                    X + 2.0, Y + Options.RowHeightPx - 4.0,
                    escapeXml(Label).c_str());
      Out += Buffer;
    }
  }
  Out += "</svg>\n";
  return Out;
}

} // namespace ev
