//===- tests/regress_test.cpp - Fleet aggregation + EVL3xx regression -----===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential-regression stack end to end: streaming cohort
/// aggregation (Welford/Chan moments, heavy-hitter pruning, memory bound),
/// the EVL3xx analyzer over the planted fleet workload (100% recall on
/// plants, zero findings on the noise-only version pair), deterministic
/// output across thread counts and ingestion orders, the unified rule
/// registry, `evtool regress`, and `pvp/regressions`.
///
//===----------------------------------------------------------------------===//

#include "analysis/FleetAggregate.h"
#include "analysis/ProfileLint.h"
#include "analysis/Regression.h"
#include "analysis/RuleRegistry.h"
#include "analysis/Sema.h"

#include "TestHelpers.h"
#include "ide/MockIde.h"
#include "proto/EvProf.h"
#include "support/FileIo.h"
#include "support/ThreadPool.h"
#include "tool/CliDriver.h"
#include "workload/FleetWorkload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>

using namespace ev;

namespace {

CohortAccumulator cohortOf(const std::vector<Profile> &Profiles,
                           FleetAggregateOptions Opts = {}) {
  CohortAccumulator Acc(Opts);
  for (const Profile &P : Profiles)
    Acc.add(P);
  return Acc;
}

/// Flattens an accumulator into path-keyed stats, so two accumulators can
/// be compared independent of node-id assignment order.
void flattenInto(const CohortAccumulator &Acc, NodeId Id, std::string Prefix,
                 std::map<std::string, CohortNodeStats> &Out) {
  const Profile &P = Acc.shape();
  std::string Path = Prefix + "/" + std::string(P.nameOf(Id));
  for (MetricId M = 0; M < P.metrics().size(); ++M) {
    CohortNodeStats S = Acc.stats(Id, M);
    if (S.Present > 0)
      Out[Path + "#" + P.metrics()[M].Name] = S;
  }
  for (NodeId Kid : P.node(Id).Children)
    flattenInto(Acc, Kid, Path, Out);
}

std::map<std::string, CohortNodeStats> flatten(const CohortAccumulator &A) {
  std::map<std::string, CohortNodeStats> Out;
  flattenInto(A, A.shape().root(), "", Out);
  return Out;
}

std::string renderAll(const DiagnosticSet &Diags) {
  std::string Out;
  for (const Diagnostic &D : Diags.all())
    Out += renderDiagnostic(D, "fleet");
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===
// Streaming cohort aggregation
//===----------------------------------------------------------------------===

TEST(RegressAggregate, StreamingStatsMatchDirectComputation) {
  auto Build = [](double WorkValue, bool WithWork) {
    ProfileBuilder B("svc");
    MetricId Time = B.addMetric("time", "nanoseconds");
    FrameId Main = B.functionFrame("main", "m.cc", 1, "app");
    if (WithWork) {
      std::vector<FrameId> P = {Main,
                                B.functionFrame("work", "w.cc", 5, "app")};
      B.addSample(P, Time, WorkValue);
    }
    std::vector<FrameId> P = {Main, B.functionFrame("idle", "i.cc", 9, "app")};
    B.addSample(P, Time, 5.0);
    return B.take();
  };
  CohortAccumulator Acc;
  Acc.add(Build(10.0, true));
  Acc.add(Build(20.0, true));
  Acc.add(Build(0.0, false)); // "work" absent: contributes zero.
  ASSERT_EQ(Acc.profileCount(), 3u);

  // Find main/work in the canonical shape.
  const Profile &S = Acc.shape();
  NodeId Work = InvalidNode;
  for (NodeId Id = 0; Id < S.nodeCount(); ++Id)
    if (S.nameOf(Id) == "work")
      Work = Id;
  ASSERT_NE(Work, InvalidNode);

  // Cohort of 3 with values {10, 20, absent->0}: the zero-reconstruction
  // must report full-cohort statistics, not present-only ones.
  CohortNodeStats St = Acc.stats(Work, 0);
  EXPECT_EQ(St.Profiles, 3u);
  EXPECT_EQ(St.Present, 2u);
  EXPECT_NEAR(St.Sum, 30.0, 1e-9);
  EXPECT_NEAR(St.Mean, 10.0, 1e-9);
  EXPECT_NEAR(St.Stddev, std::sqrt(200.0 / 3.0), 1e-9);
  EXPECT_NEAR(St.Min, 0.0, 1e-12); // Clamped through zero when absent.
  EXPECT_NEAR(St.Max, 20.0, 1e-9);

  // Inclusive column: root total = 10 + 20 + 3x5.
  std::vector<double> Incl = Acc.inclusiveSumColumn(0);
  EXPECT_NEAR(Incl[S.root()], 45.0, 1e-9);
}

TEST(RegressAggregate, PairwiseMergeMatchesSequentialIngestion) {
  FleetAggregateOptions Unbounded;
  Unbounded.NodeBudget = 0;

  std::vector<Profile> Inputs;
  for (uint64_t Seed = 100; Seed < 108; ++Seed)
    Inputs.push_back(test::makeRandomProfile(Seed, 120));

  CohortAccumulator Seq(Unbounded);
  for (const Profile &P : Inputs)
    Seq.add(P);

  CohortAccumulator ShardA(Unbounded), ShardB(Unbounded);
  for (size_t I = 0; I < Inputs.size(); ++I)
    (I < Inputs.size() / 2 ? ShardA : ShardB).add(Inputs[I]);
  ShardA.merge(ShardB);

  EXPECT_EQ(Seq.profileCount(), ShardA.profileCount());
  std::map<std::string, CohortNodeStats> A = flatten(Seq);
  std::map<std::string, CohortNodeStats> B = flatten(ShardA);
  ASSERT_EQ(A.size(), B.size());
  for (const auto &[Key, SA] : A) {
    ASSERT_TRUE(B.count(Key)) << Key;
    const CohortNodeStats &SB = B[Key];
    EXPECT_EQ(SA.Present, SB.Present) << Key;
    EXPECT_NEAR(SA.Sum, SB.Sum, 1e-6 * (1.0 + std::fabs(SA.Sum))) << Key;
    EXPECT_NEAR(SA.Mean, SB.Mean, 1e-6 * (1.0 + std::fabs(SA.Mean))) << Key;
    EXPECT_NEAR(SA.Stddev, SB.Stddev, 1e-6 * (1.0 + SA.Stddev)) << Key;
  }
}

TEST(RegressAggregate, PruneKeepsBudgetAndConservesTotals) {
  FleetAggregateOptions Unbounded;
  Unbounded.NodeBudget = 0;
  FleetAggregateOptions Tight;
  Tight.NodeBudget = 64;

  CohortAccumulator Full(Unbounded), Pruned(Tight);
  for (uint64_t Seed = 7; Seed < 11; ++Seed) {
    Profile P = test::makeRandomProfile(Seed, 300);
    Full.add(P);
    Pruned.add(P);
  }
  EXPECT_GT(Full.shape().nodeCount(), 64u);
  EXPECT_LE(Pruned.shape().nodeCount(), 64u);
  EXPECT_GE(Pruned.pruneCount(), 1u);

  // Attribution is given up, totals are not: every metric's root-inclusive
  // sum survives pruning exactly (the "(pruned)" catch-alls carry it).
  for (MetricId M = 0; M < Full.shape().metrics().size(); ++M) {
    double FullTotal = Full.inclusiveSumColumn(M)[Full.shape().root()];
    double PrunedTotal = Pruned.inclusiveSumColumn(M)[Pruned.shape().root()];
    EXPECT_NEAR(FullTotal, PrunedTotal, 1e-6 * (1.0 + std::fabs(FullTotal)));
  }

  // The catch-alls exist and are flagged.
  size_t FoldedCount = 0;
  for (NodeId Id = 0; Id < Pruned.shape().nodeCount(); ++Id)
    if (Pruned.isFolded(Id))
      ++FoldedCount;
  EXPECT_GE(FoldedCount, 1u);
}

TEST(RegressAggregate, StreamingStaysUnderMemoryBudgetBatchExceeds) {
  // 1000 profiles through one accumulator: the streaming footprint must
  // stay under a budget the batch path (which must hold every decoded
  // input) provably exceeds.
  constexpr size_t BudgetBytes = 4u << 20;
  FleetAggregateOptions Opts;
  Opts.NodeBudget = 4096;
  CohortAccumulator Acc(Opts);
  size_t BatchLowerBound = 0; // Sum of the decoded inputs' footprints.
  for (uint64_t I = 0; I < 1000; ++I) {
    Profile P = test::makeRandomProfile(5000 + I, 80);
    BatchLowerBound += P.approxMemoryBytes();
    Acc.add(P);
    // The input dies here: streaming never holds more than one.
  }
  EXPECT_EQ(Acc.profileCount(), 1000u);
  EXPECT_GE(Acc.pruneCount(), 1u);
  EXPECT_LT(Acc.approxMemoryBytes(), BudgetBytes)
      << "streaming accumulator outgrew the budget";
  EXPECT_GT(BatchLowerBound, BudgetBytes)
      << "workload too small to demonstrate the batch blow-up";
}

//===----------------------------------------------------------------------===
// EVL3xx analyzer over the fleet workload
//===----------------------------------------------------------------------===

namespace {

class RegressAnalyzerTest : public ::testing::Test {
protected:
  void SetUp() override { W = workload::generateFleetWorkload(); }

  DiagnosticSet analyzePair(size_t Base, size_t Test,
                            RegressionOptions Opts = {}) {
    DiagnosticSet Diags(1000);
    RegressionAnalyzer(Opts).analyze(cohortOf(W.Versions[Base]),
                                     cohortOf(W.Versions[Test]), Diags);
    return Diags;
  }

  workload::FleetWorkload W;
};

} // namespace

TEST_F(RegressAnalyzerTest, NoiseOnlyVersionPairYieldsZeroFindings) {
  DiagnosticSet Diags = analyzePair(0, 1);
  EXPECT_EQ(Diags.size(), 0u) << "false positives on noise:\n"
                              << renderAll(Diags);
}

TEST_F(RegressAnalyzerTest, EveryPlantedRegressionIsFound) {
  size_t M = W.Versions.size();
  DiagnosticSet Diags = analyzePair(M - 2, M - 1);
  ASSERT_FALSE(W.Planted.empty());
  for (const workload::PlantedRegression &Plant : W.Planted) {
    bool Found = false;
    for (const Diagnostic &D : Diags.all())
      if (D.Id == Plant.RuleId &&
          D.Message.find(Plant.Frame) != std::string::npos)
        Found = true;
    EXPECT_TRUE(Found) << Plant.RuleId << " on '" << Plant.Frame
                       << "' not found in:\n"
                       << renderAll(Diags);
  }
  // Findings arrive sorted by (rule, path, metric): rule ids must be
  // non-decreasing.
  for (size_t I = 1; I < Diags.all().size(); ++I)
    EXPECT_LE(Diags.all()[I - 1].Id, Diags.all()[I].Id);
}

TEST_F(RegressAnalyzerTest, ByteIdenticalAcrossThreadCountsAndIngestOrder) {
  size_t M = W.Versions.size();
  ThreadPool::setSharedThreadCount(0);
  DiagnosticSet Forward(1000);
  RegressionAnalyzer().analyze(cohortOf(W.Versions[M - 2]),
                               cohortOf(W.Versions[M - 1]), Forward);
  std::string Sequential = renderAll(Forward);

  // 4 worker threads AND reversed replica ingestion: the canonical shapes
  // assign different node ids, the rendered findings must not move a byte.
  ThreadPool::setSharedThreadCount(4);
  auto Reversed = [](std::vector<Profile> Ps) {
    CohortAccumulator Acc;
    for (size_t I = Ps.size(); I > 0; --I)
      Acc.add(Ps[I - 1]);
    return Acc;
  };
  DiagnosticSet Backward(1000);
  RegressionAnalyzer().analyze(Reversed(W.Versions[M - 2]),
                               Reversed(W.Versions[M - 1]), Backward);
  ThreadPool::setSharedThreadCount(ThreadPool::configuredThreads());

  EXPECT_FALSE(Sequential.empty());
  EXPECT_EQ(Sequential, renderAll(Backward));
}

TEST_F(RegressAnalyzerTest, SeverityFloorAndDisablesFilter) {
  size_t M = W.Versions.size();

  // EVL301/EVL303 default to Info; a Warning floor suppresses them.
  RegressionOptions Floor;
  Floor.MinSeverity = Severity::Warning;
  DiagnosticSet Warned = analyzePair(M - 2, M - 1, Floor);
  EXPECT_GT(Warned.size(), 0u);
  for (const Diagnostic &D : Warned.all()) {
    EXPECT_NE(D.Id, "EVL301") << D.Message;
    EXPECT_NE(D.Id, "EVL303") << D.Message;
    EXPECT_GE(D.Sev, Severity::Warning) << D.Message;
  }

  // Disable by id and by name in one list.
  RegressionOptions Disabled;
  Disabled.Disabled = {"EVL300", "allocation-drift"};
  DiagnosticSet Filtered = analyzePair(M - 2, M - 1, Disabled);
  bool SawOther = false;
  for (const Diagnostic &D : Filtered.all()) {
    EXPECT_NE(D.Id, "EVL300") << D.Message;
    EXPECT_NE(D.Id, "EVL306") << D.Message;
    if (D.Id == "EVL302")
      SawOther = true;
  }
  EXPECT_TRUE(SawOther);
}

TEST(RegressAnalyzer, SchemaMismatchIsAnError) {
  auto Build = [](const char *Metric) {
    ProfileBuilder B("svc");
    MetricId M = B.addMetric(Metric, "nanoseconds");
    std::vector<FrameId> P = {B.functionFrame("main", "m.cc", 1, "app")};
    B.addSample(P, M, 10.0);
    return B.take();
  };
  CohortAccumulator Base, Test;
  Base.add(Build("cpu-time"));
  Test.add(Build("wall-time"));
  DiagnosticSet Diags(100);
  RegressionAnalyzer().analyze(Base, Test, Diags);
  EXPECT_GE(Diags.countAtLeast(Severity::Error), 2u); // Both directions.
  for (const Diagnostic &D : Diags.all())
    EXPECT_EQ(D.Id, "EVL307") << D.Message;
}

//===----------------------------------------------------------------------===
// Unified rule registry
//===----------------------------------------------------------------------===

TEST(RegressRules, RegistryUnifiesAllThreeFamilies) {
  EXPECT_EQ(allRules().size(), semaChecks().size() + lintRules().size() +
                                   regressionRules().size());
  const RuleInfo *ById = findRule("EVL300");
  ASSERT_NE(ById, nullptr);
  EXPECT_EQ(ById->Category, RuleCategory::Regression);
  const RuleInfo *ByName = findRule("exclusive-time-regression");
  ASSERT_NE(ByName, nullptr);
  EXPECT_EQ(ByName->Id, ById->Id);
  EXPECT_EQ(findRule("EVL999"), nullptr);

  // One listing covers every family.
  std::string Listing = renderRuleList();
  EXPECT_NE(Listing.find("EVL300"), std::string::npos);
  EXPECT_NE(Listing.find("EVQL"), std::string::npos);
  for (const LintRuleInfo &Rule : lintRules())
    EXPECT_NE(Listing.find(std::string(Rule.Id)), std::string::npos)
        << Rule.Id;
}

//===----------------------------------------------------------------------===
// pvp/regressions
//===----------------------------------------------------------------------===

namespace {

json::Array idArray(const std::vector<int64_t> &Ids) {
  json::Array Out;
  for (int64_t Id : Ids)
    Out.push_back(Id);
  return Out;
}

} // namespace

TEST(RegressPvp, RegressionsEndToEndWithCacheAndFilters) {
  workload::FleetOptions WOpts;
  WOpts.Replicas = 4;
  workload::FleetWorkload W = workload::generateFleetWorkload(WOpts);
  size_t M = W.Versions.size();

  MockIde Ide;
  std::vector<int64_t> BaseIds, TestIds;
  for (Profile &P : W.Versions[M - 2])
    BaseIds.push_back(Ide.server().addProfile(std::move(P)));
  for (Profile &P : W.Versions[M - 1])
    TestIds.push_back(Ide.server().addProfile(std::move(P)));

  json::Object Params;
  Params.set("base", idArray(BaseIds));
  Params.set("test", idArray(TestIds));
  Result<json::Value> R = Ide.call("pvp/regressions", Params);
  ASSERT_TRUE(R.ok()) << R.error();
  const json::Object &Reply = R->asObject();
  EXPECT_EQ(Reply.find("baseProfiles")->asInt(), 4);
  EXPECT_EQ(Reply.find("testProfiles")->asInt(), 4);
  EXPECT_EQ(Reply.find("errors")->asInt(), 0);
  EXPECT_GT(Reply.find("warnings")->asInt(), 0);
  const json::Array &Findings = Reply.find("findings")->asArray();
  ASSERT_FALSE(Findings.empty());
  bool SawPlant = false;
  for (const json::Value &F : Findings)
    if (F.asObject().find("id")->asString() == "EVL300")
      SawPlant = true;
  EXPECT_TRUE(SawPlant);

  // The second identical request is served from the view cache.
  Result<json::Value> Stats0 = Ide.call("pvp/stats", json::Object());
  ASSERT_TRUE(Stats0.ok());
  int64_t Hits0 = Stats0->asObject().find("cacheHits")->asInt();
  Result<json::Value> Again = Ide.call("pvp/regressions", Params);
  ASSERT_TRUE(Again.ok()) << Again.error();
  EXPECT_EQ(R->dump(), Again->dump());
  Result<json::Value> Stats1 = Ide.call("pvp/stats", json::Object());
  ASSERT_TRUE(Stats1.ok());
  EXPECT_GT(Stats1->asObject().find("cacheHits")->asInt(), Hits0);

  // Severity floor filters everything (no Error-grade findings planted).
  json::Object Filtered;
  Filtered.set("base", idArray(BaseIds));
  Filtered.set("test", idArray(TestIds));
  Filtered.set("minSeverity", "error");
  Result<json::Value> None = Ide.call("pvp/regressions", Filtered);
  ASSERT_TRUE(None.ok()) << None.error();
  EXPECT_TRUE(None->asObject().find("findings")->asArray().empty());

  // Single-id (non-array) cohorts are accepted.
  json::Object Single;
  Single.set("base", BaseIds[0]);
  Single.set("test", TestIds[0]);
  EXPECT_TRUE(Ide.call("pvp/regressions", Single).ok());

  // Unknown rules and unknown profiles are InvalidParams errors.
  json::Object BadRule;
  BadRule.set("base", idArray(BaseIds));
  BadRule.set("test", idArray(TestIds));
  json::Array Disable;
  Disable.push_back(std::string("EVL999"));
  BadRule.set("disable", std::move(Disable));
  EXPECT_FALSE(Ide.call("pvp/regressions", BadRule).ok());
  json::Object BadId;
  BadId.set("base", int64_t{424242});
  BadId.set("test", idArray(TestIds));
  EXPECT_FALSE(Ide.call("pvp/regressions", BadId).ok());
}

//===----------------------------------------------------------------------===
// evtool regress
//===----------------------------------------------------------------------===

namespace {

class RegressCliTest : public ::testing::Test {
protected:
  void SetUp() override {
    const ::testing::TestInfo *Info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    Dir = std::string("/tmp/evtool_regress_") + Info->name();
    workload::FleetOptions WOpts;
    WOpts.Replicas = 3;
    W = workload::generateFleetWorkload(WOpts);
    for (size_t V = 0; V < W.Versions.size(); ++V) {
      std::string Sub = Dir + "/v" + std::to_string(V);
      ASSERT_EQ(std::system(("mkdir -p " + Sub).c_str()), 0);
      for (size_t R = 0; R < W.Versions[V].size(); ++R)
        ASSERT_TRUE(writeFile(Sub + "/replica" + std::to_string(R) +
                                  ".evprof",
                              writeEvProf(W.Versions[V][R]))
                        .ok());
    }
    Base = Dir + "/v" + std::to_string(W.Versions.size() - 2);
    Test = Dir + "/v" + std::to_string(W.Versions.size() - 1);
    Noise0 = Dir + "/v0";
    Noise1 = Dir + "/v1";
  }

  int run(std::vector<std::string> Args) {
    Out.clear();
    Err.clear();
    return tool::runEvTool(Args, Out, Err);
  }

  workload::FleetWorkload W;
  std::string Dir, Base, Test, Noise0, Noise1;
  std::string Out, Err;
};

} // namespace

TEST_F(RegressCliTest, TextReportsPlantsAndWerrorEscalates) {
  ASSERT_EQ(run({"regress", Base, Test}), 0) << Err;
  EXPECT_NE(Out.find("base:"), std::string::npos);
  for (const workload::PlantedRegression &Plant : W.Planted)
    EXPECT_NE(Out.find(Plant.Frame), std::string::npos) << Plant.Frame;
  EXPECT_NE(Out.find("EVL300"), std::string::npos);
  // Warnings escalate to a failing exit with --werror.
  EXPECT_EQ(run({"regress", Base, Test, "--werror"}), tool::ExitDataError);
}

TEST_F(RegressCliTest, NoiseOnlyCohortsAreCleanEvenUnderWerror) {
  ASSERT_EQ(run({"regress", Noise0, Noise1, "--werror"}), 0) << Out << Err;
  EXPECT_EQ(Out.find("EVL3"), std::string::npos) << Out;
}

TEST_F(RegressCliTest, JsonOutputIsWellFormed) {
  ASSERT_EQ(run({"regress", Base, Test, "--format", "json"}), 0) << Err;
  Result<json::Value> Doc = json::parse(Out);
  ASSERT_TRUE(Doc.ok()) << Doc.error();
  const json::Object &Root = Doc->asObject();
  EXPECT_EQ(Root.find("base")->asObject().find("profiles")->asInt(), 3);
  EXPECT_EQ(Root.find("test")->asObject().find("profiles")->asInt(), 3);
  EXPECT_EQ(Root.find("errors")->asInt(), 0);
  EXPECT_GT(Root.find("warnings")->asInt(), 0);
  EXPECT_FALSE(Root.find("findings")->asArray().empty());
}

TEST_F(RegressCliTest, SingleFileCohortsAndThresholdOverrides) {
  std::string One = Base + "/replica0.evprof";
  std::string Two = Test + "/replica0.evprof";
  ASSERT_EQ(run({"regress", One, Two}), 0) << Err;
  EXPECT_NE(Out.find("1 profile"), std::string::npos);
  // An absurd relative floor silences the delta rules (EVL306 keeps its
  // own allocation threshold, so it is disabled by name instead).
  ASSERT_EQ(run({"regress", Base, Test, "--rel-min", "1000",
                 "--min-severity", "warning", "--disable",
                 "EVL302,EVL304,EVL305,EVL308,allocation-drift"}),
            0)
      << Err;
  EXPECT_EQ(Out.find("EVL30"), std::string::npos) << Out;
  // A tiny node budget exercises the prune path through the CLI.
  EXPECT_EQ(run({"regress", Base, Test, "--node-budget", "32"}), 0) << Err;
}

TEST_F(RegressCliTest, ListRulesIsUnifiedAcrossSubcommands) {
  ASSERT_EQ(run({"regress", "--list-rules"}), 0) << Err;
  std::string RegressListing = Out;
  EXPECT_NE(RegressListing.find("EVL300"), std::string::npos);
  EXPECT_NE(RegressListing.find("EVQL"), std::string::npos);
  ASSERT_EQ(run({"lint", "--list-rules"}), 0) << Err;
  EXPECT_EQ(Out, RegressListing);
  ASSERT_EQ(run({"check", "--list-rules"}), 0) << Err;
  EXPECT_EQ(Out, RegressListing);
}

TEST_F(RegressCliTest, UsageErrorsAreDistinct) {
  EXPECT_EQ(run({"regress", Base}), tool::ExitUsageError);
  EXPECT_EQ(run({"regress", Base, Test, "--format", "yaml"}),
            tool::ExitUsageError);
  EXPECT_EQ(run({"regress", Base, Test, "--disable", "EVL999"}),
            tool::ExitUsageError);
  EXPECT_NE(Err.find("unknown rule"), std::string::npos);
  EXPECT_EQ(run({"regress", Dir + "/does-not-exist", Test}),
            tool::ExitDataError);
}
