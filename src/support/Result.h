//===- support/Result.h - Lightweight recoverable-error type -------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small Expected<T>-style result type used across the library so that
/// parsers and converters can report recoverable errors without exceptions.
/// Errors carry a human-readable message following the LLVM diagnostic style
/// (lowercase first word, no trailing period).
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_RESULT_H
#define EASYVIEW_SUPPORT_RESULT_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ev {

/// A recoverable error: a message describing what went wrong.
class Error {
public:
  explicit Error(std::string Message) : Message(std::move(Message)) {}

  const std::string &message() const { return Message; }

private:
  std::string Message;
};

/// Holds either a value of type \p T or an Error. Mirrors llvm::Expected
/// without the checked-flag machinery (we rely on tests instead).
template <typename T> class Result {
public:
  /*implicit*/ Result(T Value) : Storage(std::move(Value)) {}
  /*implicit*/ Result(Error Err) : Storage(std::move(Err)) {}

  /// \returns true when this result holds a value.
  bool ok() const { return std::holds_alternative<T>(Storage); }
  explicit operator bool() const { return ok(); }

  /// \returns the contained value; asserts when holding an error.
  T &value() {
    assert(ok() && "accessing value of failed Result");
    return std::get<T>(Storage);
  }
  const T &value() const {
    assert(ok() && "accessing value of failed Result");
    return std::get<T>(Storage);
  }

  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

  /// \returns the error message; asserts when holding a value.
  const std::string &error() const {
    assert(!ok() && "accessing error of successful Result");
    return std::get<Error>(Storage).message();
  }

  /// Moves the contained value out of the result.
  T take() {
    assert(ok() && "taking value of failed Result");
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

/// Convenience factory matching llvm::createStringError usage.
inline Error makeError(std::string Message) {
  return Error(std::move(Message));
}

} // namespace ev

#endif // EASYVIEW_SUPPORT_RESULT_H
