//===- convert/SpeedscopeConverter.cpp - speedscope JSON converter --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts speedscope's file format (https://www.speedscope.app) into the
/// generic representation. Both profile types are handled:
///
///  - "sampled": each sample is a root-first frame-index stack with a
///    weight;
///  - "evented": open/close frame events with timestamps.
///
/// Frames come from the shared frame table (name, file, line). Multiple
/// profiles in one file merge into one tree under per-profile thread
/// nodes.
///
//===----------------------------------------------------------------------===//

#include "convert/Converters.h"

#include "profile/ProfileBuilder.h"
#include "support/Json.h"

namespace ev {
namespace convert {

Result<Profile> fromSpeedscope(std::string_view Json) {
  Result<json::Value> Doc = json::parse(Json);
  if (!Doc)
    return makeError(Doc.error());
  if (!Doc->isObject())
    return makeError("speedscope: document must be an object");
  const json::Object &Root = Doc->asObject();

  const json::Value *Shared = Root.find("shared");
  if (!Shared || !Shared->isObject())
    return makeError("speedscope: missing shared frame table");
  const json::Value *FramesV = Shared->asObject().find("frames");
  if (!FramesV || !FramesV->isArray())
    return makeError("speedscope: shared.frames must be an array");

  ProfileBuilder B("speedscope profile");
  MetricId Weight = B.addMetric("weight", "count");

  // Translate the shared frame table.
  std::vector<FrameId> FrameTable;
  for (const json::Value &FV : FramesV->asArray()) {
    if (!FV.isObject())
      return makeError("speedscope: frame entries must be objects");
    const json::Object &F = FV.asObject();
    std::string_view Name =
        F.find("name") ? F.find("name")->stringOr("(anonymous)")
                       : "(anonymous)";
    std::string_view File =
        F.find("file") ? F.find("file")->stringOr("") : "";
    uint32_t Line = F.find("line")
                        ? static_cast<uint32_t>(
                              std::max(0.0, F.find("line")->numberOr(0.0)))
                        : 0;
    FrameTable.push_back(B.functionFrame(Name, File, Line));
  }

  const json::Value *ProfilesV = Root.find("profiles");
  if (!ProfilesV || !ProfilesV->isArray() || ProfilesV->asArray().empty())
    return makeError("speedscope: missing profiles array");

  bool Multi = ProfilesV->asArray().size() > 1;
  for (const json::Value &PV : ProfilesV->asArray()) {
    if (!PV.isObject())
      return makeError("speedscope: profile entries must be objects");
    const json::Object &Prof = PV.asObject();
    std::string_view Type =
        Prof.find("type") ? Prof.find("type")->stringOr("") : "";
    std::string_view PName =
        Prof.find("name") ? Prof.find("name")->stringOr("profile")
                          : "profile";

    std::vector<FrameId> Prefix;
    if (Multi)
      Prefix.push_back(
          B.frame(FrameKind::Thread, PName, "", 0, "", 0));

    if (Type == "sampled") {
      const json::Value *SamplesV = Prof.find("samples");
      const json::Value *WeightsV = Prof.find("weights");
      if (!SamplesV || !SamplesV->isArray())
        return makeError("speedscope: sampled profile without samples");
      const json::Array &Samples = SamplesV->asArray();
      const json::Array *Weights =
          WeightsV && WeightsV->isArray() ? &WeightsV->asArray() : nullptr;
      if (Weights && Weights->size() != Samples.size())
        return makeError("speedscope: weights/samples length mismatch");

      std::vector<FrameId> Path;
      for (size_t I = 0; I < Samples.size(); ++I) {
        if (!Samples[I].isArray())
          return makeError("speedscope: sample must be an index array");
        Path = Prefix;
        for (const json::Value &IdxV : Samples[I].asArray()) {
          int64_t Idx = IdxV.isNumber() ? IdxV.asInt() : -1;
          if (Idx < 0 || static_cast<size_t>(Idx) >= FrameTable.size())
            return makeError("speedscope: frame index out of range");
          Path.push_back(FrameTable[static_cast<size_t>(Idx)]);
        }
        double W = Weights ? (*Weights)[I].numberOr(1.0) : 1.0;
        B.addSample(Path, Weight, W);
      }
      continue;
    }

    if (Type == "evented") {
      const json::Value *EventsV = Prof.find("events");
      if (!EventsV || !EventsV->isArray())
        return makeError("speedscope: evented profile without events");
      struct OpenFrame {
        size_t Frame;
        double At;
        double ChildTime = 0.0;
      };
      std::vector<OpenFrame> Stack;
      std::vector<FrameId> Path = Prefix;
      for (const json::Value &EV : EventsV->asArray()) {
        if (!EV.isObject())
          return makeError("speedscope: events must be objects");
        const json::Object &E = EV.asObject();
        std::string_view EType =
            E.find("type") ? E.find("type")->stringOr("") : "";
        double At = E.find("at") ? E.find("at")->numberOr(0.0) : 0.0;
        int64_t Idx =
            E.find("frame") ? E.find("frame")->asInt() : -1;
        if (Idx < 0 || static_cast<size_t>(Idx) >= FrameTable.size())
          return makeError("speedscope: event frame index out of range");
        if (EType == "O") {
          Stack.push_back({static_cast<size_t>(Idx), At});
          Path.push_back(FrameTable[static_cast<size_t>(Idx)]);
          continue;
        }
        if (EType == "C") {
          if (Stack.empty() ||
              Stack.back().Frame != static_cast<size_t>(Idx))
            return makeError("speedscope: mismatched close event");
          OpenFrame Top = Stack.back();
          Stack.pop_back();
          double Total = At - Top.At;
          double Self = Total - Top.ChildTime;
          if (Self > 0.0)
            B.addSample(Path, Weight, Self);
          Path.pop_back();
          if (!Stack.empty())
            Stack.back().ChildTime += Total;
          continue;
        }
        return makeError("speedscope: unknown event type");
      }
      if (!Stack.empty())
        return makeError("speedscope: unclosed open event");
      continue;
    }

    return makeError("speedscope: unsupported profile type '" +
                     std::string(Type) + "'");
  }
  return B.take();
}

} // namespace convert
} // namespace ev
