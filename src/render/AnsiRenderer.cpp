//===- render/AnsiRenderer.cpp - Terminal flame graph back end ------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "render/AnsiRenderer.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace ev {

std::string renderAnsi(const FlameGraph &Graph, const AnsiOptions &Options) {
  const Profile &P = Graph.profile();
  unsigned Cols = std::max(10u, Options.Columns);

  // Paint rows as character cells; each cell remembers its rect index.
  std::vector<std::vector<size_t>> Owner(
      Graph.depth(), std::vector<size_t>(Cols, FlameGraph::npos));
  const std::vector<FlameRect> &Rects = Graph.rects();
  for (size_t I = 0; I < Rects.size(); ++I) {
    const FlameRect &R = Rects[I];
    unsigned Begin = static_cast<unsigned>(R.X * Cols);
    unsigned End = static_cast<unsigned>((R.X + R.Width) * Cols);
    End = std::min(End + (End == Begin ? 1 : 0), Cols);
    for (unsigned C = Begin; C < End && C < Cols; ++C)
      Owner[R.Depth][C] = I;
  }

  std::string Out;
  for (unsigned RowIdx = 0; RowIdx < Graph.depth(); ++RowIdx) {
    unsigned DepthRow = Options.RootAtTop ? RowIdx
                                          : (Graph.depth() - 1 - RowIdx);
    const std::vector<size_t> &Row = Owner[DepthRow];
    size_t Current = FlameGraph::npos;
    std::string Label;
    size_t LabelPos = 0;
    for (unsigned C = 0; C < Cols; ++C) {
      size_t Idx = Row[C];
      if (Idx != Current) {
        Current = Idx;
        if (Idx == FlameGraph::npos) {
          Label.clear();
        } else {
          Label = std::string(P.nameOf(Rects[Idx].Node));
        }
        LabelPos = 0;
        if (Options.Color) {
          if (Idx == FlameGraph::npos) {
            Out += "\x1b[0m";
          } else {
            Rgb Color = Rects[Idx].Highlighted ? searchHighlightColor()
                                               : Rects[Idx].Color;
            char Esc[48];
            std::snprintf(Esc, sizeof(Esc),
                          "\x1b[48;2;%u;%u;%um\x1b[38;2;20;20;20m", Color.R,
                          Color.G, Color.B);
            Out += Esc;
          }
        }
      }
      if (Idx == FlameGraph::npos) {
        Out.push_back(' ');
        continue;
      }
      // First cell of a rect prints '|' as a separator, then the label.
      if (LabelPos == 0) {
        Out.push_back('|');
      } else if (LabelPos - 1 < Label.size()) {
        Out.push_back(Label[LabelPos - 1]);
      } else {
        Out.push_back(Options.Color ? ' ' : '-');
      }
      ++LabelPos;
    }
    if (Options.Color)
      Out += "\x1b[0m";
    Out.push_back('\n');
  }
  return Out;
}

} // namespace ev
