//===- tests/core_test.cpp - EasyViewEngine facade tests ------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/EasyView.h"

#include "TestHelpers.h"
#include "proto/EvProf.h"
#include "workload/SyntheticProfile.h"

#include <gtest/gtest.h>

using namespace ev;

TEST(Engine, OpensEvprofBytes) {
  EasyViewEngine Engine;
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  Result<int64_t> Id = Engine.openProfileBytes(Bytes, "fixed");
  ASSERT_TRUE(Id.ok()) << Id.error();
  ASSERT_NE(Engine.profile(*Id), nullptr);
  EXPECT_EQ(Engine.profile(*Id)->name(), "fixed");
  EXPECT_GE(Engine.lastOpenStats().totalMs(), 0.0);
  EXPECT_GT(Engine.lastOpenStats().ParseMs, 0.0);
}

TEST(Engine, OpensPprofBytes) {
  EasyViewEngine Engine;
  workload::SyntheticOptions Opt;
  Opt.TargetBytes = 32 << 10;
  Result<int64_t> Id =
      Engine.openProfileBytes(workload::generatePprofBytes(Opt), "svc");
  ASSERT_TRUE(Id.ok()) << Id.error();
  EXPECT_GT(Engine.profile(*Id)->nodeCount(), 10u);
}

TEST(Engine, OpensCollapsedText) {
  EasyViewEngine Engine;
  Result<int64_t> Id = Engine.openProfileBytes("main;a;b 5\nmain;c 2\n");
  ASSERT_TRUE(Id.ok()) << Id.error();
  EXPECT_EQ(Engine.profile(*Id)->nodeCount(), 5u);
}

TEST(Engine, OpenRejectsGarbage) {
  EasyViewEngine Engine;
  EXPECT_FALSE(Engine.openProfileBytes("???").ok());
}

TEST(Engine, FlameSvgAllShapes) {
  EasyViewEngine Engine;
  int64_t Id = Engine.addProfile(test::makeFixedProfile());
  for (const char *Shape : {"top-down", "bottom-up", "flat"}) {
    FlameRenderOptions Opt;
    Opt.Shape = Shape;
    Result<std::string> Svg = Engine.flameSvg(Id, Opt);
    ASSERT_TRUE(Svg.ok()) << Shape << ": " << Svg.error();
    EXPECT_NE(Svg->find("<svg"), std::string::npos) << Shape;
  }
  FlameRenderOptions Bad;
  Bad.Shape = "spiral";
  EXPECT_FALSE(Engine.flameSvg(Id, Bad).ok());
}

TEST(Engine, TreeTableAndSummary) {
  EasyViewEngine Engine;
  int64_t Id = Engine.addProfile(test::makeFixedProfile());
  Result<std::string> Table = Engine.treeTableText(Id);
  ASSERT_TRUE(Table.ok());
  EXPECT_NE(Table->find("kernel"), std::string::npos);
  Result<std::string> Summary = Engine.summaryText(Id);
  ASSERT_TRUE(Summary.ok());
  EXPECT_NE(Summary->find("contexts: 6"), std::string::npos);
}

TEST(Engine, QueryTransformsProfile) {
  EasyViewEngine Engine;
  int64_t Id = Engine.addProfile(test::makeFixedProfile());
  Result<evql::QueryOutput> Out =
      Engine.query(Id, "prune when name() == \"parse\"; print 1 + 1;");
  ASSERT_TRUE(Out.ok()) << Out.error();
  EXPECT_EQ(Out->Printed[0], "2");
  for (NodeId N = 0; N < Out->Result.nodeCount(); ++N)
    EXPECT_NE(Out->Result.nameOf(N), "parse");
}

TEST(Engine, AggregateAcrossStoredProfiles) {
  EasyViewEngine Engine;
  int64_t A = Engine.addProfile(test::makeFixedProfile());
  int64_t B = Engine.addProfile(test::makeFixedProfile());
  const int64_t Ids[] = {A, B};
  Result<AggregatedProfile> Agg = Engine.aggregateProfiles(Ids);
  ASSERT_TRUE(Agg.ok()) << Agg.error();
  EXPECT_EQ(Agg->profileCount(), 2u);
}

TEST(Engine, DiffAcrossStoredProfiles) {
  EasyViewEngine Engine;
  int64_t A = Engine.addProfile(test::makeFixedProfile());
  int64_t B = Engine.addProfile(test::makeFixedProfile());
  Result<DiffResult> D = Engine.diff(A, B, 0);
  ASSERT_TRUE(D.ok()) << D.error();
  for (DiffTag Tag : D->Tags)
    EXPECT_EQ(Tag, DiffTag::Common);
  EXPECT_FALSE(Engine.diff(A, 999, 0).ok());
  EXPECT_FALSE(Engine.diff(A, B, 99).ok());
}

TEST(Engine, IdeActionsReachStoredProfiles) {
  EasyViewEngine Engine;
  int64_t Id = Engine.addProfile(test::makeFixedProfile());
  // Find the kernel node and click it through the embedded mock IDE.
  const Profile *P = Engine.profile(Id);
  NodeId Kernel = InvalidNode;
  for (NodeId N = 0; N < P->nodeCount(); ++N)
    if (P->nameOf(N) == "kernel")
      Kernel = N;
  Result<bool> Linked = Engine.ide().clickNode(Id, Kernel);
  ASSERT_TRUE(Linked.ok());
  EXPECT_TRUE(*Linked);
  EXPECT_EQ(Engine.ide().navigations().back().File, "comp.cc");
}
