//===- tests/baseline_test.cpp - Fig. 5 baseline viewer tests -------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "baseline/GolandTreeTable.h"
#include "baseline/PprofFlameView.h"

#include "convert/Converters.h"
#include "workload/SyntheticProfile.h"

#include <gtest/gtest.h>

using namespace ev;
using namespace ev::baseline;

namespace {

std::string smallPprofBytes() {
  workload::SyntheticOptions Opt;
  Opt.TargetBytes = 64 << 10;
  return workload::generatePprofBytes(Opt);
}

} // namespace

TEST(PprofBaseline, MaterializesFullReport) {
  Result<PprofViewResult> R = openWithPprofView(smallPprofBytes());
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_GT(R->GraphNodes, 10u);
  EXPECT_GT(R->GraphEdges, R->GraphNodes / 2);
  EXPECT_GT(R->FlameFrames, 10u);
  EXPECT_GT(R->ReportBytes, 1000u);
}

TEST(PprofBaseline, RejectsGarbage) {
  EXPECT_FALSE(openWithPprofView(std::string(64, '\xff')).ok());
}

TEST(GolandBaseline, MaterializesEveryRow) {
  std::string Bytes = smallPprofBytes();
  Result<GolandViewResult> R = openWithGolandView(Bytes);
  ASSERT_TRUE(R.ok()) << R.error();
  Result<Profile> P = convert::fromPprof(Bytes);
  ASSERT_TRUE(P.ok());
  // One eager UI row per tree node. The plugin keys children by display
  // name, so its tree is at most as large as the frame-keyed CCT (plus
  // its own root).
  EXPECT_GT(R->Rows, P->nodeCount() / 2);
  EXPECT_LE(R->Rows, P->nodeCount() + 1);
  EXPECT_GT(R->ModelBytes, R->Rows * 10);
}

TEST(GolandBaseline, RejectsGarbage) {
  EXPECT_FALSE(openWithGolandView("nonsense").ok());
}
