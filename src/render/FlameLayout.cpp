//===- render/FlameLayout.cpp - Flame graph geometry engine ---------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "render/FlameLayout.h"

#include "analysis/MetricEngine.h"
#include "support/Trace.h"

#include <algorithm>

namespace ev {

FlameGraph::FlameGraph(const Profile &P, MetricId Metric,
                       FlameLayoutOptions Options)
    : P(&P), Metric(Metric), Options(Options) {
  trace::Span Span("render/flameLayout", "render");
  std::vector<double> Inclusive = inclusiveColumn(P, Metric);
  Total = Inclusive.empty() ? 0.0 : Inclusive[0];
  if (Total <= 0.0)
    return;

  struct WorkItem {
    NodeId Node;
    unsigned Depth;
    double X;
  };
  std::vector<WorkItem> Stack{{P.root(), 0, 0.0}};
  std::vector<NodeId> Ordered;
  while (!Stack.empty()) {
    WorkItem W = Stack.back();
    Stack.pop_back();
    double Width = Inclusive[W.Node] / Total;
    if (Width < Options.MinWidth) {
      ++Culled;
      continue;
    }
    FlameRect R;
    R.Node = W.Node;
    R.Depth = W.Depth;
    R.X = W.X;
    R.Width = Width;
    R.Value = Inclusive[W.Node];
    R.Color = colorForFrame(P, P.frameOf(W.Node));
    Rects.push_back(R);
    Depth = std::max(Depth, W.Depth + 1);

    if (Options.MaxDepth && W.Depth + 1 >= Options.MaxDepth)
      continue;
    const CCTNode &Node = P.node(W.Node);
    if (Node.Children.empty())
      continue;
    Ordered.assign(Node.Children.begin(), Node.Children.end());
    if (Options.SortByValue)
      std::sort(Ordered.begin(), Ordered.end(),
                [&Inclusive](NodeId A, NodeId B) {
                  if (Inclusive[A] != Inclusive[B])
                    return Inclusive[A] > Inclusive[B];
                  return A < B;
                });
    // Children are pushed in reverse so the widest lays out leftmost, and
    // X advances left to right.
    double ChildX = W.X;
    std::vector<WorkItem> Pending;
    Pending.reserve(Ordered.size());
    for (NodeId Child : Ordered) {
      Pending.push_back({Child, W.Depth + 1, ChildX});
      ChildX += Inclusive[Child] / Total;
    }
    for (size_t I = Pending.size(); I > 0; --I)
      Stack.push_back(Pending[I - 1]);
  }
}

size_t FlameGraph::search(std::string_view Pattern) {
  size_t Matches = 0;
  for (FlameRect &R : Rects) {
    R.Highlighted = !Pattern.empty() &&
                    P->nameOf(R.Node).find(Pattern) != std::string_view::npos;
    if (R.Highlighted)
      ++Matches;
  }
  return Matches;
}

const FlameRect *FlameGraph::rectAt(double X, unsigned AtDepth) const {
  for (const FlameRect &R : Rects)
    if (R.Depth == AtDepth && X >= R.X && X < R.X + R.Width)
      return &R;
  return nullptr;
}

size_t FlameGraph::rectIndexFor(NodeId Node) const {
  for (size_t I = 0; I < Rects.size(); ++I)
    if (Rects[I].Node == Node)
      return I;
  return npos;
}

} // namespace ev
