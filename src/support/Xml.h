//===- support/Xml.h - Minimal XML document parser -------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small non-validating XML parser sufficient for HPCToolkit
/// experiment.xml databases (elements, attributes, text, comments,
/// processing instructions, DOCTYPE skipping). Namespaces and entities
/// beyond the five predefined ones are intentionally out of scope.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_XML_H
#define EASYVIEW_SUPPORT_XML_H

#include "support/Result.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ev {
namespace xml {

/// An XML element node. Text content is concatenated into Text; child
/// elements keep document order.
struct Element {
  std::string Name;
  std::vector<std::pair<std::string, std::string>> Attributes;
  std::vector<std::unique_ptr<Element>> Children;
  std::string Text;

  /// \returns the attribute value, or \p Fallback when absent.
  std::string_view attribute(std::string_view Key,
                             std::string_view Fallback = "") const;

  /// \returns the first child element named \p Name, or null.
  const Element *firstChild(std::string_view Name) const;

  /// Collects all direct children named \p Name.
  std::vector<const Element *> children(std::string_view Name) const;
};

/// Parses a document; \returns its root element.
Result<std::unique_ptr<Element>> parse(std::string_view Text);

} // namespace xml
} // namespace ev

#endif // EASYVIEW_SUPPORT_XML_H
