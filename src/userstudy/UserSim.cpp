//===- userstudy/UserSim.cpp - Simulated user studies -----------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "userstudy/UserSim.h"

#include "analysis/Aggregate.h"
#include "analysis/LeakDetector.h"
#include "analysis/MetricEngine.h"
#include "analysis/Transform.h"
#include "render/FlameLayout.h"
#include "render/TreeTable.h"
#include "support/Rng.h"
#include "workload/GrpcLeakWorkload.h"
#include "workload/LuleshWorkload.h"

#include <algorithm>
#include <cmath>

namespace ev {
namespace userstudy {

std::string_view toolName(Tool T) {
  switch (T) {
  case Tool::EasyView:
    return "EasyView";
  case Tool::Goland:
    return "GoLand";
  case Tool::Pprof:
    return "PProf";
  }
  return "?";
}

std::string_view taskName(Task T) {
  switch (T) {
  case Task::HotspotAnalysis:
    return "Task I (hotspots in contexts)";
  case Task::BottomUpAnalysis:
    return "Task II (bottom-up sources)";
  case Task::MultiProfileLeak:
    return "Task III (multi-profile leak)";
  }
  return "?";
}

namespace {

/// Per-action minute costs. The EasyView costs are small because the
/// integrated flame graph + code link collapses whole sub-workflows into
/// single gestures; the baseline costs encode the paper's explanations.
struct ActionCosts {
  double OpenProfile;      ///< Open + first render of one profile.
  double ScanFlame;        ///< Read a flame graph for the answer.
  double LinkToSource;     ///< Jump from a context to its code.
  double TreeTableExpand;  ///< Expand one tree-table row and read it.
  double LearnView;        ///< One-time cost to learn an unfamiliar view.
  double ManualCorrelate;  ///< Manually match a report line to source.
  double WriteScript;      ///< Write + debug an ad-hoc analysis script.
};

ActionCosts costsFor(Tool T) {
  switch (T) {
  case Tool::EasyView:
    // In-IDE flame graphs with code links; everything is one gesture.
    return {0.15, 1.0, 0.05, 0.3, 0.0, 0.0, 0.0};
  case Tool::Goland:
    // Same IDE family but slower opening of large profiles and a
    // tree-table-only bottom-up view.
    return {0.9, 1.2, 0.1, 0.8, 12.0, 0.0, 0.0};
  case Tool::Pprof:
    // Web UI disjoint from the editor: every source correlation is
    // manual, and anything beyond the built-in views means scripting.
    return {0.6, 1.4, 0.0, 0.0, 6.0, 2.4, 90.0};
  }
  return {};
}

/// Shared study fixtures: the real workload profiles the participants
/// analyze. Built once; the interaction counts below are derived from
/// these actual data models.
struct StudyFixtures {
  Profile Cpu;        ///< LULESH-style CPU profile (Tasks I & II).
  Profile BottomUp;   ///< Its bottom-up transform.
  size_t HotLeaves;   ///< Distinct nonzero leaf contexts (manual work).
  unsigned HotPathDepth; ///< Rows to expand to reach the hot leaf.
  workload::GrpcLeakWorkload Leak; ///< Task III snapshots.

  static const StudyFixtures &get() {
    static StudyFixtures F = [] {
      StudyFixtures S;
      S.Cpu = workload::generateLuleshProfile({});
      S.BottomUp = bottomUpTree(S.Cpu);
      S.HotLeaves = 0;
      for (NodeId Id = 0; Id < S.Cpu.nodeCount(); ++Id)
        if (!S.Cpu.node(Id).Metrics.empty() &&
            S.Cpu.node(Id).Children.empty())
          ++S.HotLeaves;
      TreeTable Table(S.Cpu);
      NodeId Leaf = Table.expandHotPath(0);
      S.HotPathDepth = S.Cpu.depth(Leaf);
      workload::GrpcLeakOptions LeakOpt;
      LeakOpt.Snapshots = 120; // Enough for the pattern, cheap to build.
      S.Leak = workload::generateGrpcLeakWorkload(LeakOpt);
      return S;
    }();
    return F;
  }
};

double taskIMinutes(Tool T, const ActionCosts &C, Rng &R) {
  const StudyFixtures &F = StudyFixtures::get();
  // Participants inspect 4 profiles (CPU + memory on two services).
  const unsigned Profiles = 4;
  const unsigned HotspotsPerProfile = 2;
  double Minutes = 0.0;
  for (unsigned P = 0; P < Profiles; ++P) {
    Minutes += C.OpenProfile;
    // All three tools show a top-down flame graph for Task I; reading it
    // takes about the same time, plus per-tool navigation drag.
    FlameGraph Flame(F.Cpu, 0); // Real layout: part of what the user sees.
    double ScanScale =
        1.0 + 0.1 * std::log2(1.0 + static_cast<double>(Flame.rects().size()));
    Minutes += C.ScanFlame * ScanScale;
    for (unsigned H = 0; H < HotspotsPerProfile; ++H) {
      if (T == Tool::Pprof)
        Minutes += C.ManualCorrelate; // Find the file/line by hand.
      else
        Minutes += C.LinkToSource; // Click: the IDE opens the source.
    }
  }
  (void)R;
  return Minutes;
}

double taskIIMinutes(Tool T, const ActionCosts &C, Rng &R) {
  const StudyFixtures &F = StudyFixtures::get();
  // Three categories: hot allocation, GC/free paths, lock waits.
  const unsigned Categories = 3;
  double Minutes = C.OpenProfile;
  switch (T) {
  case Tool::EasyView: {
    // Bottom-up flame graph: search the category, read the reversed call
    // paths, and confirm a few call sites in the source.
    FlameGraph Flame(F.BottomUp, 0);
    (void)Flame;
    for (unsigned K = 0; K < Categories; ++K) {
      Minutes += 2.9 * C.ScanFlame;      // Search + read the callers.
      Minutes += 6.0 * C.LinkToSource;   // Confirm call sites in source.
    }
    break;
  }
  case Tool::Goland: {
    // Bottom-up TREE TABLE only: learn it, then expand rows per category.
    Minutes += C.LearnView;
    for (unsigned K = 0; K < Categories; ++K) {
      // Rows to expand: the real bottom-up hot path depth, twice (the
      // user backtracks once on average).
      Minutes += C.TreeTableExpand * (2.0 * F.HotPathDepth);
      Minutes += C.ScanFlame; // Interpret the expanded table.
    }
    break;
  }
  case Tool::Pprof: {
    // No bottom-up view at all: enumerate leaf contexts by hand, then
    // write, debug, and verify a reverse-aggregation script (the paper
    // observes this takes more than three hours for every participant).
    Minutes += C.LearnView;
    Minutes += C.WriteScript * 3.0; // Write + debug + verify.
    Minutes += static_cast<double>(F.HotLeaves) * C.ManualCorrelate;
    break;
  }
  }
  (void)R;
  return Minutes;
}

double taskIIIMinutes(Tool T, const ActionCosts &C, Rng &R) {
  const StudyFixtures &F = StudyFixtures::get();
  double Minutes = 0.0;
  switch (T) {
  case Tool::EasyView: {
    // Real pipeline: aggregate the snapshots, rank leak suspects, inspect
    // the top histograms.
    std::vector<const Profile *> Inputs;
    for (const Profile &P : F.Leak.Snapshots)
      Inputs.push_back(&P);
    AggregatedProfile Agg = aggregate(Inputs);
    std::vector<LeakSuspect> Suspects = findLeakSuspects(Agg, 0);
    Minutes += C.OpenProfile;                       // Open the aggregate.
    Minutes += 2.0 * C.ScanFlame;                   // Aggregate flame.
    double Inspected =
        static_cast<double>(std::min<size_t>(Suspects.size() + 2, 6));
    Minutes += Inspected * (1.0 + C.LinkToSource);  // Histograms + links.
    break;
  }
  case Tool::Goland:
  case Tool::Pprof: {
    // No multi-profile analysis: open snapshots one by one and track
    // per-context values manually, or write a script. Users try the
    // manual route first, then fall back to scripting — both overrun the
    // three-hour budget for every participant (paper SecVII-D).
    size_t Snapshots = F.Leak.Snapshots.size();
    Minutes += static_cast<double>(Snapshots) * (C.OpenProfile + 1.0);
    Minutes += 2.0 * (T == Tool::Pprof ? 90.0 : 75.0); // Scripting tries.
    break;
  }
  }
  (void)R;
  return Minutes;
}

} // namespace

TaskOutcome simulateParticipant(Tool T, Task K, uint64_t Seed,
                                double BudgetMinutes) {
  Rng R(Seed);
  ActionCosts C = costsFor(T);
  // Mixed newbies and experienced engineers, all trained on flame-graph
  // basics (paper setup): skill multiplies every action cost.
  double Skill = std::clamp(R.normal(1.0, 0.2), 0.75, 1.6);

  double Minutes = 0.0;
  switch (K) {
  case Task::HotspotAnalysis:
    Minutes = taskIMinutes(T, C, R);
    break;
  case Task::BottomUpAnalysis:
    Minutes = taskIIMinutes(T, C, R);
    break;
  case Task::MultiProfileLeak:
    Minutes = taskIIIMinutes(T, C, R);
    break;
  }
  Minutes *= Skill;

  TaskOutcome Out;
  Out.Completed = Minutes <= BudgetMinutes;
  Out.Minutes = std::min(Minutes, BudgetMinutes);
  return Out;
}

std::vector<std::vector<GroupOutcome>>
runControlGroups(const UserStudyOptions &Options) {
  std::vector<std::vector<GroupOutcome>> Table(
      3, std::vector<GroupOutcome>(3));
  const Task Tasks[] = {Task::HotspotAnalysis, Task::BottomUpAnalysis,
                        Task::MultiProfileLeak};
  const Tool Tools[] = {Tool::EasyView, Tool::Goland, Tool::Pprof};
  for (size_t TI = 0; TI < 3; ++TI) {
    for (size_t LI = 0; LI < 3; ++LI) {
      GroupOutcome &G = Table[TI][LI];
      G.Participants = Options.ParticipantsPerGroup;
      double Sum = 0.0;
      for (size_t U = 0; U < Options.ParticipantsPerGroup; ++U) {
        TaskOutcome O = simulateParticipant(
            Tools[LI], Tasks[TI],
            Options.Seed * 1000003 + TI * 101 + LI * 17 + U,
            Options.BudgetMinutes);
        Sum += O.Minutes;
        if (O.Completed)
          ++G.Completed;
      }
      G.MeanMinutes = Sum / static_cast<double>(Options.ParticipantsPerGroup);
    }
  }
  return Table;
}

std::vector<ViewVote> simulateViewSurvey(uint64_t Seed,
                                         size_t Participants) {
  // Per-view helpfulness probabilities behind the Fig. 8 bar heights:
  // flame graphs beat tree tables; within each family top-down leads.
  struct ViewModel {
    const char *Name;
    double P;
  };
  const ViewModel Views[] = {
      {"flame top-down", 0.90},  {"flame bottom-up", 0.62},
      {"flame flat", 0.45},      {"tree-table top-down", 0.80},
      {"tree-table bottom-up", 0.50}, {"tree-table flat", 0.35},
  };
  Rng R(Seed);
  std::vector<ViewVote> Out;
  for (const ViewModel &V : Views) {
    size_t Votes = 0;
    for (size_t U = 0; U < Participants; ++U)
      if (R.chance(V.P))
        ++Votes;
    Out.push_back({V.Name, 100.0 * static_cast<double>(Votes) /
                               static_cast<double>(Participants)});
  }
  return Out;
}

} // namespace userstudy
} // namespace ev
