//===- tests/convert_test.cpp - Format converter tests --------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "convert/Converters.h"

#include "analysis/MetricEngine.h"
#include "proto/EvProf.h"
#include "proto/PprofFormat.h"
#include "workload/LuleshWorkload.h"
#include "workload/SyntheticProfile.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ev;
using namespace ev::convert;

//===----------------------------------------------------------------------===
// Collapsed stacks
//===----------------------------------------------------------------------===

TEST(Collapsed, BasicStacks) {
  Result<Profile> P = fromCollapsed("main;foo;bar 10\n"
                                    "main;foo 5\n"
                                    "main;baz 2\n");
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_EQ(P->nodeCount(), 5u); // ROOT main foo bar baz.
  MetricId M = P->findMetric("samples");
  ASSERT_NE(M, Profile::InvalidMetric);
  EXPECT_DOUBLE_EQ(metricTotal(*P, M), 17.0);
  EXPECT_TRUE(P->verify().ok());
}

TEST(Collapsed, ModuleAnnotations) {
  Result<Profile> P = fromCollapsed("libc.so!malloc;brk 3\n"
                                    "main (/bin/app);work (/bin/app) 4\n");
  ASSERT_TRUE(P.ok()) << P.error();
  bool SawBangModule = false, SawParenModule = false;
  for (NodeId Id = 0; Id < P->nodeCount(); ++Id) {
    const Frame &F = P->frameOf(Id);
    if (P->nameOf(Id) == "malloc" && P->text(F.Loc.Module) == "libc.so")
      SawBangModule = true;
    if (P->nameOf(Id) == "work" && P->text(F.Loc.Module) == "/bin/app")
      SawParenModule = true;
  }
  EXPECT_TRUE(SawBangModule);
  EXPECT_TRUE(SawParenModule);
}

TEST(Collapsed, CommentsAndBlanksIgnored) {
  Result<Profile> P = fromCollapsed("# comment\n\nmain;a 1\n");
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_EQ(P->nodeCount(), 3u);
}

TEST(Collapsed, RejectsMissingCount) {
  EXPECT_FALSE(fromCollapsed("main;foo;bar\n").ok());
}

TEST(Collapsed, RejectsNonNumericCount) {
  Result<Profile> R = fromCollapsed("main;foo xyz\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("line 1"), std::string::npos);
}

//===----------------------------------------------------------------------===
// perf script
//===----------------------------------------------------------------------===

namespace {

const char *PerfScriptSample =
    "app 1234 4000.123456:     250000 cycles:\n"
    "\tffffffff8104f45a do_syscall_64+0x1a (/boot/vmlinux)\n"
    "\t          4005d0 compute+0x40 (/home/u/app)\n"
    "\t          400400 main+0x10 (/home/u/app)\n"
    "\n"
    "app 1234 4000.133456:     250000 cycles:\n"
    "\t          4005d0 compute+0x40 (/home/u/app)\n"
    "\t          400400 main+0x10 (/home/u/app)\n"
    "\n";

} // namespace

TEST(PerfScript, ParsesSamples) {
  Result<Profile> P = fromPerfScript(PerfScriptSample);
  ASSERT_TRUE(P.ok()) << P.error();
  MetricId M = P->findMetric("cycles");
  ASSERT_NE(M, Profile::InvalidMetric);
  EXPECT_DOUBLE_EQ(metricTotal(*P, M), 500000.0);
  // Root-first: main -> compute -> do_syscall_64.
  bool FoundChain = false;
  for (NodeId Id = 0; Id < P->nodeCount(); ++Id) {
    if (P->nameOf(Id) != "do_syscall_64")
      continue;
    std::vector<NodeId> Path = P->pathTo(Id);
    ASSERT_EQ(Path.size(), 4u);
    EXPECT_EQ(P->nameOf(Path[1]), "main");
    EXPECT_EQ(P->nameOf(Path[2]), "compute");
    FoundChain = true;
  }
  EXPECT_TRUE(FoundChain);
}

TEST(PerfScript, ModuleAndAddressCaptured) {
  Result<Profile> P = fromPerfScript(PerfScriptSample);
  ASSERT_TRUE(P.ok());
  bool Found = false;
  for (NodeId Id = 0; Id < P->nodeCount(); ++Id) {
    const Frame &F = P->frameOf(Id);
    if (P->nameOf(Id) == "main") {
      EXPECT_EQ(P->text(F.Loc.Module), "/home/u/app");
      EXPECT_EQ(F.Loc.Address, 0x400400u);
      Found = true;
    }
  }
  EXPECT_TRUE(Found);
}

TEST(PerfScript, EventModifiersStripped) {
  Result<Profile> P = fromPerfScript("app 1 1.0:  100 cache-misses:u:\n"
                                     "\t400400 main (/bin/a)\n\n");
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_NE(P->findMetric("cache-misses"), Profile::InvalidMetric);
}

TEST(PerfScript, RejectsEmptyInput) {
  EXPECT_FALSE(fromPerfScript("").ok());
  EXPECT_FALSE(fromPerfScript("no samples here\n").ok());
}

//===----------------------------------------------------------------------===
// Chrome trace
//===----------------------------------------------------------------------===

TEST(ChromeTrace, CompleteEventsNest) {
  const char *Json = R"({"traceEvents":[
    {"ph":"X","name":"parent","ts":0,"dur":100,"pid":1,"tid":1},
    {"ph":"X","name":"child","ts":10,"dur":40,"pid":1,"tid":1},
    {"ph":"X","name":"sibling","ts":60,"dur":20,"pid":1,"tid":1}
  ]})";
  Result<Profile> P = fromChromeTrace(Json);
  ASSERT_TRUE(P.ok()) << P.error();
  MetricId M = P->findMetric("wall-time");
  // parent self = 100-60, child 40, sibling 20 (microseconds -> ns).
  EXPECT_DOUBLE_EQ(metricTotal(*P, M), 100e3);
  bool ChildUnderParent = false;
  for (NodeId Id = 0; Id < P->nodeCount(); ++Id)
    if (P->nameOf(Id) == "child" &&
        P->nameOf(P->node(Id).Parent) == "parent")
      ChildUnderParent = true;
  EXPECT_TRUE(ChildUnderParent);
}

TEST(ChromeTrace, BeginEndPairs) {
  const char *Json = R"([
    {"ph":"B","name":"a","ts":0,"pid":1,"tid":1},
    {"ph":"B","name":"b","ts":10,"pid":1,"tid":1},
    {"ph":"E","name":"b","ts":30,"pid":1,"tid":1},
    {"ph":"E","name":"a","ts":50,"pid":1,"tid":1}
  ])";
  Result<Profile> P = fromChromeTrace(Json);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_DOUBLE_EQ(metricTotal(*P, 0), 50e3);
}

TEST(ChromeTrace, SeparateThreadsSeparateLanes) {
  const char *Json = R"([
    {"ph":"X","name":"t1work","ts":0,"dur":10,"pid":1,"tid":1},
    {"ph":"X","name":"t2work","ts":0,"dur":10,"pid":1,"tid":2}
  ])";
  Result<Profile> P = fromChromeTrace(Json);
  ASSERT_TRUE(P.ok()) << P.error();
  // Both are roots (children of ROOT), not nested.
  EXPECT_EQ(P->node(P->root()).Children.size(), 2u);
}

TEST(ChromeTrace, RejectsUnmatchedEnd) {
  EXPECT_FALSE(
      fromChromeTrace(R"([{"ph":"E","name":"x","ts":5,"pid":1,"tid":1}])")
          .ok());
}

TEST(ChromeTrace, RejectsUnclosedBegin) {
  EXPECT_FALSE(
      fromChromeTrace(R"([{"ph":"B","name":"x","ts":5,"pid":1,"tid":1}])")
          .ok());
}

TEST(ChromeTrace, RejectsNonTraceJson) {
  EXPECT_FALSE(fromChromeTrace(R"({"foo": 1})").ok());
  EXPECT_FALSE(fromChromeTrace("...").ok());
}

//===----------------------------------------------------------------------===
// Speedscope
//===----------------------------------------------------------------------===

namespace {

const char *SpeedscopeSampled = R"({
  "$schema": "https://www.speedscope.app/file-format-schema.json",
  "shared": {"frames": [
    {"name": "main", "file": "m.c", "line": 3},
    {"name": "work", "file": "w.c", "line": 9}
  ]},
  "profiles": [{
    "type": "sampled", "name": "cpu", "unit": "milliseconds",
    "samples": [[0], [0, 1], [0, 1]],
    "weights": [2, 3, 4]
  }]
})";

} // namespace

TEST(Speedscope, SampledProfile) {
  Result<Profile> P = fromSpeedscope(SpeedscopeSampled);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_DOUBLE_EQ(metricTotal(*P, 0), 9.0);
  bool WorkUnderMain = false;
  for (NodeId Id = 0; Id < P->nodeCount(); ++Id)
    if (P->nameOf(Id) == "work" && P->nameOf(P->node(Id).Parent) == "main")
      WorkUnderMain = true;
  EXPECT_TRUE(WorkUnderMain);
}

TEST(Speedscope, EventedProfile) {
  const char *Json = R"({
    "$schema": "x", "shared": {"frames": [{"name": "f"}, {"name": "g"}]},
    "profiles": [{"type": "evented", "name": "t", "events": [
      {"type": "O", "frame": 0, "at": 0},
      {"type": "O", "frame": 1, "at": 2},
      {"type": "C", "frame": 1, "at": 5},
      {"type": "C", "frame": 0, "at": 10}
    ]}]
  })";
  Result<Profile> P = fromSpeedscope(Json);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_DOUBLE_EQ(metricTotal(*P, 0), 10.0); // f self 7 + g self 3.
}

TEST(Speedscope, MultipleProfilesGetThreadNodes) {
  const char *Json = R"({
    "shared": {"frames": [{"name": "f"}]},
    "profiles": [
      {"type": "sampled", "name": "t1", "samples": [[0]], "weights": [1]},
      {"type": "sampled", "name": "t2", "samples": [[0]], "weights": [1]}
    ]
  })";
  Result<Profile> P = fromSpeedscope(Json);
  ASSERT_TRUE(P.ok()) << P.error();
  size_t ThreadNodes = 0;
  for (NodeId Id = 0; Id < P->nodeCount(); ++Id)
    if (P->frameOf(Id).Kind == FrameKind::Thread)
      ++ThreadNodes;
  EXPECT_EQ(ThreadNodes, 2u);
}

TEST(Speedscope, RejectsFrameIndexOutOfRange) {
  const char *Json = R"({
    "shared": {"frames": [{"name": "f"}]},
    "profiles": [{"type": "sampled", "samples": [[7]], "weights": [1]}]
  })";
  EXPECT_FALSE(fromSpeedscope(Json).ok());
}

TEST(Speedscope, RejectsWeightMismatch) {
  const char *Json = R"({
    "shared": {"frames": [{"name": "f"}]},
    "profiles": [{"type": "sampled", "samples": [[0]], "weights": [1, 2]}]
  })";
  EXPECT_FALSE(fromSpeedscope(Json).ok());
}

TEST(Speedscope, RejectsMismatchedClose) {
  const char *Json = R"({
    "shared": {"frames": [{"name": "f"}, {"name": "g"}]},
    "profiles": [{"type": "evented", "events": [
      {"type": "O", "frame": 0, "at": 0},
      {"type": "C", "frame": 1, "at": 5}
    ]}]
  })";
  EXPECT_FALSE(fromSpeedscope(Json).ok());
}

//===----------------------------------------------------------------------===
// HPCToolkit
//===----------------------------------------------------------------------===

namespace {

const char *HpctkXml = R"(<?xml version="1.0"?>
<HPCToolkitExperiment version="2.2">
<Header n="test-db"/>
<SecCallPathProfile i="0" n="test">
<SecHeader>
<MetricTable><Metric i="0" n="CPUTIME (usec):Sum"/></MetricTable>
<LoadModuleTable><LoadModule i="2" n="/bin/app"/></LoadModuleTable>
<FileTable><File i="3" n="app.cc"/></FileTable>
<ProcedureTable>
  <Procedure i="4" n="main"/>
  <Procedure i="5" n="work"/>
</ProcedureTable>
</SecHeader>
<SecCallPathProfileData>
<PF i="10" n="4" f="3" lm="2" l="12">
  <M n="0" v="100"/>
  <C i="11" l="20">
    <PF i="12" n="5" f="3" lm="2" l="30">
      <M n="0" v="400"/>
      <L i="13" l="35" f="3">
        <S i="14" l="36"><M n="0" v="50"/></S>
      </L>
    </PF>
  </C>
</PF>
</SecCallPathProfileData>
</SecCallPathProfile>
</HPCToolkitExperiment>
)";

} // namespace

TEST(Hpctoolkit, ParsesCallPathProfile) {
  Result<Profile> P = fromHpctoolkit(HpctkXml);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_EQ(P->name(), "test-db");
  MetricId M = P->findMetric("CPUTIME (usec):Sum");
  ASSERT_NE(M, Profile::InvalidMetric);
  // 550 usec scaled to ns.
  EXPECT_DOUBLE_EQ(metricTotal(*P, M), 550e3);

  bool SawLoop = false, SawStatement = false, WorkUnderMain = false;
  for (NodeId Id = 0; Id < P->nodeCount(); ++Id) {
    if (P->frameOf(Id).Kind == FrameKind::Loop)
      SawLoop = true;
    if (P->frameOf(Id).Kind == FrameKind::Instruction)
      SawStatement = true;
    if (P->nameOf(Id) == "work" && P->nameOf(P->node(Id).Parent) == "main")
      WorkUnderMain = true;
  }
  EXPECT_TRUE(SawLoop);
  EXPECT_TRUE(SawStatement);
  EXPECT_TRUE(WorkUnderMain);
}

TEST(Hpctoolkit, SourceAttribution) {
  Result<Profile> P = fromHpctoolkit(HpctkXml);
  ASSERT_TRUE(P.ok());
  for (NodeId Id = 0; Id < P->nodeCount(); ++Id) {
    if (P->nameOf(Id) != "main")
      continue;
    const Frame &F = P->frameOf(Id);
    EXPECT_EQ(P->text(F.Loc.File), "app.cc");
    EXPECT_EQ(F.Loc.Line, 12u);
    EXPECT_EQ(P->text(F.Loc.Module), "/bin/app");
  }
}

TEST(Hpctoolkit, RejectsWrongRoot) {
  EXPECT_FALSE(fromHpctoolkit("<NotAnExperiment/>").ok());
}

TEST(Hpctoolkit, RejectsMissingMetricTable) {
  const char *Xml = "<HPCToolkitExperiment><SecCallPathProfile>"
                    "<SecHeader></SecHeader>"
                    "<SecCallPathProfileData/>"
                    "</SecCallPathProfile></HPCToolkitExperiment>";
  EXPECT_FALSE(fromHpctoolkit(Xml).ok());
}

TEST(Hpctoolkit, GeneratedLuleshDatabaseConverts) {
  std::string Xml = workload::generateLuleshExperimentXml({});
  Result<Profile> P = fromHpctoolkit(Xml);
  ASSERT_TRUE(P.ok()) << P.error();
  Profile Direct = workload::generateLuleshProfile({});
  MetricId M = P->findMetric("CPUTIME (usec):Sum");
  ASSERT_NE(M, Profile::InvalidMetric);
  // The XML stores usec with 3 decimals, so totals agree to ~1e-3 usec
  // per node.
  EXPECT_NEAR(metricTotal(*P, M), metricTotal(Direct, 0),
              1.0 * static_cast<double>(Direct.nodeCount()));
}

//===----------------------------------------------------------------------===
// Scalene & pyinstrument
//===----------------------------------------------------------------------===

TEST(Scalene, ParsesLines) {
  const char *Json = R"({
    "files": {"app.py": {"lines": [
      {"lineno": 3, "function": "hot", "n_cpu_percent_python": 40.0,
       "n_cpu_percent_c": 10.0, "n_malloc_mb": 2.0},
      {"lineno": 9, "function": "cold", "n_cpu_percent_python": 0.5}
    ]}}})";
  Result<Profile> P = fromScalene(Json);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_DOUBLE_EQ(metricTotal(*P, P->findMetric("cpu-python")), 40.5);
  EXPECT_DOUBLE_EQ(metricTotal(*P, P->findMetric("alloc-bytes")),
                   2.0 * 1024 * 1024);
}

TEST(Scalene, RejectsEmpty) {
  EXPECT_FALSE(fromScalene(R"({"files": {}})").ok());
  EXPECT_FALSE(fromScalene(R"({"nope": 1})").ok());
}

TEST(Pyinstrument, RecursiveFrameTree) {
  const char *Json = R"({
    "root_frame": {
      "function": "<module>", "file_path": "app.py", "line_no": 1,
      "time": 10.0,
      "children": [
        {"function": "slow", "file_path": "app.py", "line_no": 5,
         "time": 7.0, "children": []},
        {"function": "fast", "file_path": "app.py", "line_no": 9,
         "time": 1.0, "children": []}
      ]
    }, "duration": 10.0})";
  Result<Profile> P = fromPyinstrument(Json);
  ASSERT_TRUE(P.ok()) << P.error();
  // Total = inclusive root time in ns.
  EXPECT_DOUBLE_EQ(metricTotal(*P, 0), 10e9);
  for (NodeId Id = 0; Id < P->nodeCount(); ++Id)
    if (P->nameOf(Id) == "<module>") {
      EXPECT_DOUBLE_EQ(P->node(Id).metricOr(0), 2e9); // 10 - 7 - 1 self.
    }
}

TEST(Pyinstrument, RejectsMissingRootFrame) {
  EXPECT_FALSE(fromPyinstrument(R"({"duration": 1})").ok());
}

//===----------------------------------------------------------------------===
// pprof converter
//===----------------------------------------------------------------------===

TEST(PprofConvert, SyntheticWorkloadConverts) {
  workload::SyntheticOptions Opt;
  Opt.TargetBytes = 32 << 10;
  std::string Bytes = workload::generatePprofBytes(Opt);
  Result<Profile> P = fromPprof(Bytes);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_GT(P->nodeCount(), 10u);
  EXPECT_NE(P->findMetric("cpu"), Profile::InvalidMetric);
  EXPECT_TRUE(P->verify().ok());
}

TEST(PprofConvert, LeafFirstStacksReversed) {
  pprof::PprofProfile In;
  In.StringTable = {"", "cpu", "count", "leaf", "root"};
  In.SampleTypes.push_back({1, 2});
  In.Functions.push_back({1, 3, 3, 0, 0});
  In.Functions.push_back({2, 4, 4, 0, 0});
  pprof::Location L1, L2;
  L1.Id = 1;
  L1.Lines.push_back({1, 0});
  L2.Id = 2;
  L2.Lines.push_back({2, 0});
  In.Locations = {L1, L2};
  pprof::Sample S;
  S.LocationIds = {1, 2}; // leaf-first: leaf under root.
  S.Values = {5};
  In.Samples.push_back(S);

  Result<Profile> P = fromPprof(pprof::write(In));
  ASSERT_TRUE(P.ok()) << P.error();
  for (NodeId Id = 0; Id < P->nodeCount(); ++Id)
    if (P->nameOf(Id) == "leaf") {
      EXPECT_EQ(P->nameOf(P->node(Id).Parent), "root");
    }
}

TEST(PprofConvert, UnitScaling) {
  pprof::PprofProfile In;
  In.StringTable = {"", "wall", "milliseconds", "f"};
  In.SampleTypes.push_back({1, 2});
  In.Functions.push_back({1, 3, 3, 0, 0});
  pprof::Location L;
  L.Id = 1;
  L.Lines.push_back({1, 0});
  In.Locations.push_back(L);
  pprof::Sample S;
  S.LocationIds = {1};
  S.Values = {2};
  In.Samples.push_back(S);

  Result<Profile> P = fromPprof(pprof::write(In));
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_EQ(P->metrics()[0].Unit, "nanoseconds");
  EXPECT_DOUBLE_EQ(metricTotal(*P, 0), 2e6); // 2 ms in ns.
}

TEST(PprofConvert, RejectsUnknownLocation) {
  pprof::PprofProfile In;
  In.StringTable = {"", "cpu", "count"};
  In.SampleTypes.push_back({1, 2});
  pprof::Sample S;
  S.LocationIds = {42};
  S.Values = {1};
  In.Samples.push_back(S);
  EXPECT_FALSE(fromPprof(pprof::write(In)).ok());
}

//===----------------------------------------------------------------------===
// Detection & load
//===----------------------------------------------------------------------===

struct DetectCase {
  const char *Name;
  std::string Bytes;
  Format Expected;
};

class DetectFormatTest : public ::testing::TestWithParam<int> {};

namespace {

std::vector<DetectCase> detectCases() {
  std::vector<DetectCase> Cases;
  Cases.push_back({"evprof", writeEvProf(test::makeFixedProfile()),
                   Format::EvProf});
  {
    workload::SyntheticOptions Opt;
    Opt.TargetBytes = 8 << 10;
    Cases.push_back({"pprof", workload::generatePprofBytes(Opt),
                     Format::Pprof});
  }
  Cases.push_back({"collapsed", "main;a;b 10\nmain;c 2\n",
                   Format::Collapsed});
  Cases.push_back({"perf", PerfScriptSample, Format::PerfScript});
  Cases.push_back({"chrome",
                   R"({"traceEvents":[{"ph":"X","name":"a","ts":0,"dur":1}]})",
                   Format::ChromeTrace});
  Cases.push_back({"speedscope", SpeedscopeSampled, Format::Speedscope});
  Cases.push_back({"hpctoolkit", HpctkXml, Format::Hpctoolkit});
  Cases.push_back(
      {"pyinstrument",
       R"({"root_frame":{"function":"m","time":1.0,"children":[]}})",
       Format::Pyinstrument});
  Cases.push_back(
      {"scalene",
       R"({"files":{"a.py":{"lines":[{"lineno":1,"n_cpu_percent_python":5}]}}})",
       Format::Scalene});
  return Cases;
}

} // namespace

TEST_P(DetectFormatTest, SniffsCorrectly) {
  std::vector<DetectCase> Cases = detectCases();
  const DetectCase &C = Cases[static_cast<size_t>(GetParam())];
  EXPECT_EQ(detectFormat(C.Bytes), C.Expected) << C.Name;
}

INSTANTIATE_TEST_SUITE_P(AllFormats, DetectFormatTest,
                         ::testing::Range(0, 9));

TEST(Load, AutoDetectsAndConverts) {
  std::vector<DetectCase> Cases = detectCases();
  for (const DetectCase &C : Cases) {
    Result<Profile> P = load(C.Bytes, C.Name);
    ASSERT_TRUE(P.ok()) << C.Name << ": " << P.error();
    EXPECT_EQ(P->name(), C.Name);
    EXPECT_TRUE(P->verify().ok()) << C.Name;
  }
}

TEST(Load, RejectsUnknownFormat) {
  Result<Profile> R = load("complete nonsense input");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("unrecognized"), std::string::npos);
}

TEST(FormatName, Stable) {
  EXPECT_EQ(formatName(Format::Pprof), "pprof");
  EXPECT_EQ(formatName(Format::PerfScript), "perf-script");
  EXPECT_EQ(formatName(Format::Unknown), "unknown");
}
