//===- proto/EvProf.cpp - EasyView profile container format ---------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "proto/EvProf.h"

#include "proto/EvProfFields.h"
#include "support/ProtoWire.h"
#include "support/Trace.h"

namespace ev {

using namespace evprof;

namespace {

std::string encodeMetric(const MetricDescriptor &M) {
  ProtoWriter W;
  W.writeBytes(FMetricName, M.Name);
  W.writeBytes(FMetricUnit, M.Unit);
  W.writeVarint(FMetricAgg, static_cast<uint64_t>(M.Aggregation));
  return W.takeBuffer();
}

std::string encodeFrame(const Frame &F) {
  ProtoWriter W;
  if (F.Kind != FrameKind::Root)
    W.writeVarint(FFrameKind, static_cast<uint64_t>(F.Kind));
  if (F.Name)
    W.writeVarint(FFrameName, F.Name);
  if (F.Loc.File)
    W.writeVarint(FFrameFile, F.Loc.File);
  if (F.Loc.Line)
    W.writeVarint(FFrameLine, F.Loc.Line);
  if (F.Loc.Module)
    W.writeVarint(FFrameModule, F.Loc.Module);
  if (F.Loc.Address)
    W.writeVarint(FFrameAddr, F.Loc.Address);
  return W.takeBuffer();
}

std::string encodeNode(const CCTNode &Node) {
  ProtoWriter W;
  if (Node.Parent != InvalidNode)
    W.writeVarint(FNodeParentPlus1, static_cast<uint64_t>(Node.Parent) + 1);
  if (Node.FrameRef)
    W.writeVarint(FNodeFrame, Node.FrameRef);
  for (const MetricValue &MV : Node.Metrics) {
    ProtoWriter VW;
    if (MV.Metric)
      VW.writeVarint(FValueMetric, MV.Metric);
    VW.writeDouble(FValueValue, MV.Value);
    W.writeBytes(FNodeValue, VW.buffer());
  }
  return W.takeBuffer();
}

std::string encodeGroup(const ContextGroup &Group) {
  ProtoWriter W;
  if (Group.Kind)
    W.writeVarint(FGroupKind, Group.Kind);
  std::vector<uint64_t> Contexts(Group.Contexts.begin(),
                                 Group.Contexts.end());
  W.writePackedVarints(FGroupContext, Contexts.data(), Contexts.size());
  if (Group.Metric)
    W.writeVarint(FGroupMetric, Group.Metric);
  W.writeDouble(FGroupValue, Group.Value);
  return W.takeBuffer();
}

} // namespace

bool isEvProf(std::string_view Bytes) {
  return Bytes.substr(0, EvProfMagic.size()) == EvProfMagic;
}

std::string writeEvProf(const Profile &P) {
  ProtoWriter W;
  W.writeBytes(FProfileName, P.name());
  for (StringId I = 0; I < P.strings().size(); ++I)
    W.writeBytes(FProfileString, P.text(I));
  for (const MetricDescriptor &M : P.metrics())
    W.writeBytes(FProfileMetric, encodeMetric(M));
  for (const Frame &F : P.frames())
    W.writeBytes(FProfileFrame, encodeFrame(F));
  for (const CCTNode &Node : P.nodes())
    W.writeBytes(FProfileNode, encodeNode(Node));
  for (const ContextGroup &Group : P.groups())
    W.writeBytes(FProfileGroup, encodeGroup(Group));
  std::string Out(EvProfMagic);
  Out += W.buffer();
  return Out;
}

namespace {

struct RawNode {
  uint64_t ParentPlus1 = 0;
  uint64_t FrameRef = 0;
  std::vector<MetricValue> Values;
};

Result<MetricDescriptor> decodeMetric(std::string_view Bytes) {
  MetricDescriptor M;
  ProtoReader R(Bytes);
  while (R.next()) {
    switch (R.fieldNumber()) {
    case FMetricName:
      M.Name = std::string(R.bytes());
      break;
    case FMetricUnit:
      M.Unit = std::string(R.bytes());
      break;
    case FMetricAgg: {
      uint64_t Agg = R.varint();
      if (Agg > static_cast<uint64_t>(MetricAggregation::Last))
        return makeError("invalid metric aggregation");
      M.Aggregation = static_cast<MetricAggregation>(Agg);
      break;
    }
    default:
      R.skip();
    }
  }
  if (R.failed())
    return makeError("malformed Metric message");
  return M;
}

} // namespace

Result<Profile> readEvProf(std::string_view Bytes) {
  return readEvProf(Bytes, DecodeLimits::defaults());
}

namespace {

/// Counts of top-level fields gathered by a cheap pre-scan of the wire
/// stream: one varint-skimming pass that never parses submessage interiors.
/// The decoder sizes every table from these counts up front, so the hot
/// decode loop performs no vector reallocation.
struct WireCensus {
  size_t Strings = 0;
  size_t StringBytes = 0;
  size_t Metrics = 0;
  size_t Frames = 0;
  size_t Nodes = 0;
  size_t Groups = 0;
};

WireCensus prescanEvProf(std::string_view Bytes) {
  WireCensus Census;
  ProtoReader R(Bytes);
  while (R.next()) {
    switch (R.fieldNumber()) {
    case FProfileString:
      ++Census.Strings;
      Census.StringBytes += R.bytes().size();
      break;
    case FProfileMetric:
      ++Census.Metrics;
      R.skip();
      break;
    case FProfileFrame:
      ++Census.Frames;
      R.skip();
      break;
    case FProfileNode:
      ++Census.Nodes;
      R.skip();
      break;
    case FProfileGroup:
      ++Census.Groups;
      R.skip();
      break;
    default:
      R.skip();
    }
  }
  // Malformed tails surface in the real decode pass; counts so far are
  // still valid reservation hints.
  return Census;
}

} // namespace

Result<Profile> readEvProf(std::string_view Bytes,
                           const DecodeLimits &Limits) {
  trace::Span Span("decode/readEvProf", "decode");
  if (Bytes.size() > Limits.MaxInputBytes)
    return makeError("input of " + std::to_string(Bytes.size()) +
                     " bytes exceeds the decode limit");
  ResourceGuard Guard(Limits);
  if (!isEvProf(Bytes))
    return makeError("not an .evprof stream: bad magic");
  Bytes.remove_prefix(EvProfMagic.size());

  const WireCensus Census = prescanEvProf(Bytes);

  // The output profile is created up front so strings intern straight into
  // its arena during the wire pass — no intermediate std::string table.
  Profile P;
  std::vector<StringId> StringMap;
  StringMap.reserve(Census.Strings);
  P.strings().reserve(Census.Strings, Census.StringBytes);
  P.reserveTables(Census.Nodes, Census.Frames);

  // Pass 1: pull the raw tables out of the wire data.
  std::string Name;
  std::vector<MetricDescriptor> Metrics;
  Metrics.reserve(Census.Metrics);
  struct RawFrame {
    uint64_t Kind = 0, Name = 0, File = 0, Line = 0, Module = 0, Addr = 0;
  };
  std::vector<RawFrame> Frames;
  Frames.reserve(Census.Frames);
  std::vector<RawNode> Nodes;
  Nodes.reserve(Census.Nodes);
  struct RawGroup {
    uint64_t Kind = 0, Metric = 0;
    double Value = 0.0;
    std::vector<uint64_t> Contexts;
  };
  std::vector<RawGroup> Groups;
  Groups.reserve(Census.Groups);

  ProtoReader R(Bytes);
  while (R.next()) {
    switch (R.fieldNumber()) {
    case FProfileName:
      Name = std::string(R.bytes());
      break;
    case FProfileString: {
      std::string_view S = R.bytes();
      if (!Guard.chargeString(S.size()) || !Guard.chargeAlloc(S.size()))
        return makeError(Guard.error());
      StringMap.push_back(P.strings().intern(S));
      break;
    }
    case FProfileMetric: {
      if (!Guard.chargeMetric())
        return makeError(Guard.error());
      Result<MetricDescriptor> M = decodeMetric(R.bytes());
      if (!M)
        return makeError(M.error());
      // Duplicate metric descriptors are rejected the moment the second one
      // arrives: silently folding them onto one column would misattribute
      // every later per-node value.
      for (const MetricDescriptor &Seen : Metrics)
        if (Seen.Name == M->Name)
          return makeError("duplicate metric descriptor '" + M->Name +
                           "' at index " + std::to_string(Metrics.size()));
      Metrics.push_back(M.take());
      break;
    }
    case FProfileFrame: {
      if (!Guard.chargeFrame())
        return makeError(Guard.error());
      RawFrame F;
      ProtoReader FR(R.bytes());
      while (FR.next()) {
        switch (FR.fieldNumber()) {
        case FFrameKind:
          F.Kind = FR.varint();
          break;
        case FFrameName:
          F.Name = FR.varint();
          break;
        case FFrameFile:
          F.File = FR.varint();
          break;
        case FFrameLine:
          F.Line = FR.varint();
          break;
        case FFrameModule:
          F.Module = FR.varint();
          break;
        case FFrameAddr:
          F.Addr = FR.varint();
          break;
        default:
          FR.skip();
        }
      }
      if (FR.failed())
        return makeError("malformed Frame message");
      Frames.push_back(F);
      break;
    }
    case FProfileNode: {
      if (!Guard.chargeNode())
        return makeError(Guard.error());
      RawNode N;
      ProtoReader NR(R.bytes());
      while (NR.next()) {
        switch (NR.fieldNumber()) {
        case FNodeParentPlus1:
          N.ParentPlus1 = NR.varint();
          break;
        case FNodeFrame:
          N.FrameRef = NR.varint();
          break;
        case FNodeValue: {
          MetricValue MV;
          ProtoReader VR(NR.bytes());
          while (VR.next()) {
            switch (VR.fieldNumber()) {
            case FValueMetric:
              MV.Metric = static_cast<MetricId>(VR.varint());
              break;
            case FValueValue:
              MV.Value = VR.fixedDouble();
              break;
            default:
              VR.skip();
            }
          }
          if (VR.failed())
            return makeError("malformed MetricValue message");
          if (!Guard.chargeAlloc(sizeof(MetricValue)))
            return makeError(Guard.error());
          N.Values.push_back(MV);
          break;
        }
        default:
          NR.skip();
        }
      }
      if (NR.failed())
        return makeError("malformed Node message");
      Nodes.push_back(std::move(N));
      break;
    }
    case FProfileGroup: {
      RawGroup G;
      ProtoReader GR(R.bytes());
      while (GR.next()) {
        switch (GR.fieldNumber()) {
        case FGroupKind:
          G.Kind = GR.varint();
          break;
        case FGroupContext: {
          // Packed repeated varints.
          std::string_view Packed = GR.bytes();
          VarintReader VR(Packed.data(), Packed.size());
          while (!VR.atEnd() && !VR.failed()) {
            if (!Guard.chargeAlloc(sizeof(uint64_t)))
              return makeError(Guard.error());
            G.Contexts.push_back(VR.readVarint());
          }
          if (VR.failed())
            return makeError("malformed packed context list");
          break;
        }
        case FGroupMetric:
          G.Metric = GR.varint();
          break;
        case FGroupValue:
          G.Value = GR.fixedDouble();
          break;
        default:
          GR.skip();
        }
      }
      if (GR.failed())
        return makeError("malformed Group message");
      Groups.push_back(std::move(G));
      break;
    }
    default:
      R.skip();
    }
  }
  if (R.failed())
    return makeError("malformed EvProfile message");

  // Pass 2: rebuild the Profile from the raw tables. Strings were already
  // interned into P's arena during the wire pass; StringMap remaps wire ids
  // onto arena ids (the fresh Profile pre-interns "" and "ROOT").
  P.setName(std::move(Name));

  auto MapString = [&](uint64_t Old) -> Result<StringId> {
    if (Old >= StringMap.size())
      return makeError("string reference out of range");
    return StringMap[Old];
  };

  for (const MetricDescriptor &M : Metrics)
    P.addMetric(M.Name, M.Unit, M.Aggregation);

  std::vector<FrameId> FrameMap(Frames.size());
  for (size_t I = 0; I < Frames.size(); ++I) {
    const RawFrame &RF = Frames[I];
    if (RF.Kind > static_cast<uint64_t>(FrameKind::Thread))
      return makeError("invalid frame kind");
    Frame F;
    F.Kind = static_cast<FrameKind>(RF.Kind);
    Result<StringId> NameId = MapString(RF.Name);
    if (!NameId)
      return makeError(NameId.error());
    F.Name = *NameId;
    Result<StringId> FileId = MapString(RF.File);
    if (!FileId)
      return makeError(FileId.error());
    F.Loc.File = *FileId;
    if (RF.Line > 0xFFFFFFFFULL)
      return makeError("line number out of range");
    F.Loc.Line = static_cast<uint32_t>(RF.Line);
    Result<StringId> ModuleId = MapString(RF.Module);
    if (!ModuleId)
      return makeError(ModuleId.error());
    F.Loc.Module = *ModuleId;
    F.Loc.Address = RF.Addr;
    FrameMap[I] = P.internFrame(F);
  }

  if (Nodes.empty())
    return makeError("profile stream has no nodes");
  if (Nodes[0].ParentPlus1 != 0)
    return makeError("first node is not a root");

  auto MapFrame = [&](uint64_t Old) -> Result<FrameId> {
    if (Old >= FrameMap.size())
      return makeError("frame reference out of range");
    return FrameMap[Old];
  };

  // Node 0 maps onto the implicit root.
  {
    Result<FrameId> RootFrame = MapFrame(Nodes[0].FrameRef);
    if (!RootFrame)
      return makeError(RootFrame.error());
    P.node(P.root()).FrameRef = *RootFrame;
    P.node(P.root()).Metrics = Nodes[0].Values;
  }
  std::vector<uint32_t> Depths(Nodes.size(), 0);
  for (size_t I = 1; I < Nodes.size(); ++I) {
    const RawNode &N = Nodes[I];
    if (N.ParentPlus1 == 0 || N.ParentPlus1 > I)
      return makeError("node " + std::to_string(I) +
                       " has invalid parent reference");
    Depths[I] = Depths[N.ParentPlus1 - 1] + 1;
    if (!Guard.checkDepth(Depths[I]))
      return makeError(Guard.error());
    Result<FrameId> F = MapFrame(N.FrameRef);
    if (!F)
      return makeError(F.error());
    NodeId Id = P.createNode(static_cast<NodeId>(N.ParentPlus1 - 1), *F);
    P.node(Id).Metrics = N.Values;
  }
  for (const CCTNode &Node : P.nodes())
    for (const MetricValue &MV : Node.Metrics)
      if (MV.Metric >= P.metrics().size())
        return makeError("node metric reference out of range");

  for (const RawGroup &G : Groups) {
    ContextGroup Group;
    Result<StringId> Kind = MapString(G.Kind);
    if (!Kind)
      return makeError(Kind.error());
    Group.Kind = *Kind;
    if (G.Metric >= P.metrics().size())
      return makeError("group metric reference out of range");
    Group.Metric = static_cast<MetricId>(G.Metric);
    Group.Value = G.Value;
    for (uint64_t Ctx : G.Contexts) {
      if (Ctx >= P.nodeCount())
        return makeError("group context reference out of range");
      Group.Contexts.push_back(static_cast<NodeId>(Ctx));
    }
    P.addGroup(std::move(Group));
  }

  return P;
}

} // namespace ev
