//===- support/Varint.cpp - LEB128/zigzag integer coding ------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Varint.h"

namespace ev {

void appendVarint(std::string &Out, uint64_t Value) {
  while (Value >= 0x80) {
    Out.push_back(static_cast<char>((Value & 0x7F) | 0x80));
    Value >>= 7;
  }
  Out.push_back(static_cast<char>(Value));
}

void appendSignedVarint(std::string &Out, int64_t Value) {
  appendVarint(Out, zigzagEncode(Value));
}

uint64_t VarintReader::readVarint() {
  uint64_t Value = 0;
  unsigned Shift = 0;
  // A 64-bit varint occupies at most ten bytes.
  for (unsigned I = 0; I < 10; ++I) {
    if (Pos >= Size) {
      Failed = true;
      return 0;
    }
    uint8_t Byte = Data[Pos++];
    // The tenth byte holds bit 63 only: a continuation bit or any payload
    // bit above it would shift past 64. Rejecting those keeps the encoding
    // injective — otherwise two distinct ten-byte encodings would silently
    // decode to the same value.
    if (I == 9 && (Byte & 0xFE)) {
      Failed = true;
      return 0;
    }
    Value |= static_cast<uint64_t>(Byte & 0x7F) << Shift;
    if (!(Byte & 0x80))
      return Value;
    Shift += 7;
  }
  Failed = true;
  return 0;
}

void VarintReader::skip(size_t N) {
  if (Size - Pos < N) {
    Failed = true;
    Pos = Size;
    return;
  }
  Pos += N;
}

} // namespace ev
