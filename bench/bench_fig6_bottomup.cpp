//===- bench/bench_fig6_bottomup.cpp - Paper Fig. 6 -----------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 6: the bottom-up flame graph of LULESH's HPCToolkit
/// CPUTIME profile, whose hot leaf is `brk` in libc reached from multiple
/// memory-management call paths. Times the full pipeline (experiment.xml
/// parse -> bottom-up transform -> layout).
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "analysis/MetricEngine.h"
#include "analysis/Transform.h"
#include "convert/Converters.h"
#include "render/FlameLayout.h"
#include "workload/LuleshWorkload.h"

#include <benchmark/benchmark.h>

using namespace ev;

namespace {

void convertExperimentXml(benchmark::State &State) {
  std::string Xml = workload::generateLuleshExperimentXml({});
  for (auto _ : State) {
    Result<Profile> P = convert::fromHpctoolkit(Xml);
    benchmark::DoNotOptimize(P.ok());
  }
  State.counters["xml_kb"] = static_cast<double>(Xml.size()) / 1024.0;
}
BENCHMARK(convertExperimentXml)->Unit(benchmark::kMillisecond);

void bottomUpTransform(benchmark::State &State) {
  Profile P = workload::generateLuleshProfile({});
  for (auto _ : State) {
    Profile Up = bottomUpTree(P);
    benchmark::DoNotOptimize(Up.nodeCount());
  }
}
BENCHMARK(bottomUpTransform)->Unit(benchmark::kMicrosecond);

void bottomUpFlameLayout(benchmark::State &State) {
  Profile Up = bottomUpTree(workload::generateLuleshProfile({}));
  for (auto _ : State) {
    FlameGraph G(Up, 0);
    benchmark::DoNotOptimize(G.rects().data());
  }
}
BENCHMARK(bottomUpFlameLayout)->Unit(benchmark::kMicrosecond);

void printFigure() {
  std::string Xml = workload::generateLuleshExperimentXml({});
  Result<Profile> P = convert::fromHpctoolkit(Xml);
  if (!P) {
    bench::row("ERROR: %s", P.error().c_str());
    return;
  }
  Profile Up = bottomUpTree(*P);
  MetricView View(Up, 0);
  bench::row("Fig6: bottom-up view of LULESH CPUTIME (HPCToolkit)");
  bench::row("%-4s %-34s %-16s %8s", "rank", "leaf function", "module",
             "share");
  std::vector<std::pair<double, NodeId>> Level;
  for (NodeId Child : Up.node(Up.root()).Children)
    Level.push_back({View.inclusive(Child), Child});
  std::sort(Level.rbegin(), Level.rend());
  for (size_t I = 0; I < Level.size() && I < 8; ++I) {
    NodeId Id = Level[I].second;
    bench::row("%-4zu %-34s %-16s %7.1f%%", I + 1,
               std::string(Up.nameOf(Id)).c_str(),
               std::string(Up.text(Up.frameOf(Id).Loc.Module)).c_str(),
               100.0 * Level[I].first / View.total());
  }
  bench::row("expected: brk (libc) on top, rooted in memory management");
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printFigure();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
