//===- support/Xml.cpp - Minimal XML document parser ------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Xml.h"

#include <cctype>

namespace ev {
namespace xml {

std::string_view Element::attribute(std::string_view Key,
                                    std::string_view Fallback) const {
  for (const auto &Attr : Attributes)
    if (Attr.first == Key)
      return Attr.second;
  return Fallback;
}

const Element *Element::firstChild(std::string_view Name) const {
  for (const auto &Child : Children)
    if (Child->Name == Name)
      return Child.get();
  return nullptr;
}

std::vector<const Element *> Element::children(std::string_view Name) const {
  std::vector<const Element *> Out;
  for (const auto &Child : Children)
    if (Child->Name == Name)
      Out.push_back(Child.get());
  return Out;
}

namespace {

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Result<std::unique_ptr<Element>> run() {
    skipProlog();
    Result<std::unique_ptr<Element>> Root = parseElement();
    if (!Root)
      return Root;
    skipMisc();
    if (Pos != Text.size())
      return fail("trailing content after root element");
    return Root;
  }

private:
  Error fail(std::string Message) {
    return makeError(Message + " at offset " + std::to_string(Pos));
  }

  void skipWhitespace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool lookingAt(std::string_view S) const {
    return Text.substr(Pos, S.size()) == S;
  }

  /// Skips <?...?>, <!--...-->, <!DOCTYPE...>, and whitespace before the
  /// root element.
  void skipProlog() {
    while (true) {
      skipWhitespace();
      if (lookingAt("<?")) {
        size_t End = Text.find("?>", Pos);
        Pos = End == std::string_view::npos ? Text.size() : End + 2;
        continue;
      }
      if (lookingAt("<!--")) {
        size_t End = Text.find("-->", Pos);
        Pos = End == std::string_view::npos ? Text.size() : End + 3;
        continue;
      }
      if (lookingAt("<!")) {
        // DOCTYPE possibly with an internal subset in brackets.
        int BracketDepth = 0;
        while (Pos < Text.size()) {
          char C = Text[Pos++];
          if (C == '[')
            ++BracketDepth;
          else if (C == ']')
            --BracketDepth;
          else if (C == '>' && BracketDepth <= 0)
            break;
        }
        continue;
      }
      return;
    }
  }

  void skipMisc() { skipProlog(); }

  static void appendEntity(std::string &Out, std::string_view Entity) {
    if (Entity == "lt")
      Out.push_back('<');
    else if (Entity == "gt")
      Out.push_back('>');
    else if (Entity == "amp")
      Out.push_back('&');
    else if (Entity == "quot")
      Out.push_back('"');
    else if (Entity == "apos")
      Out.push_back('\'');
    else if (!Entity.empty() && Entity[0] == '#') {
      // Numeric character reference; ASCII subset only.
      unsigned Code = 0;
      if (Entity.size() > 1 && (Entity[1] == 'x' || Entity[1] == 'X')) {
        for (char C : Entity.substr(2))
          Code = Code * 16 + static_cast<unsigned>(
                                 C <= '9' ? C - '0' : (C | 0x20) - 'a' + 10);
      } else {
        for (char C : Entity.substr(1))
          Code = Code * 10 + static_cast<unsigned>(C - '0');
      }
      if (Code < 0x80)
        Out.push_back(static_cast<char>(Code));
    }
  }

  std::string decodeText(std::string_view Raw) {
    std::string Out;
    Out.reserve(Raw.size());
    size_t I = 0;
    while (I < Raw.size()) {
      char C = Raw[I];
      if (C != '&') {
        Out.push_back(C);
        ++I;
        continue;
      }
      size_t End = Raw.find(';', I);
      if (End == std::string_view::npos) {
        Out.push_back(C);
        ++I;
        continue;
      }
      appendEntity(Out, Raw.substr(I + 1, End - I - 1));
      I = End + 1;
    }
    return Out;
  }

  Result<std::unique_ptr<Element>> parseElement() {
    if (Depth >= MaxDepth)
      return fail("element nesting too deep");
    ++Depth;
    Result<std::unique_ptr<Element>> Out = parseElementBody();
    --Depth;
    return Out;
  }

  Result<std::unique_ptr<Element>> parseElementBody() {
    if (Pos >= Text.size() || Text[Pos] != '<')
      return fail("expected '<'");
    ++Pos;
    auto Node = std::make_unique<Element>();
    // Element name.
    size_t NameStart = Pos;
    while (Pos < Text.size() && !std::isspace(static_cast<unsigned char>(
                                    Text[Pos])) &&
           Text[Pos] != '>' && Text[Pos] != '/')
      ++Pos;
    Node->Name = std::string(Text.substr(NameStart, Pos - NameStart));
    if (Node->Name.empty())
      return fail("empty element name");

    // Attributes.
    while (true) {
      skipWhitespace();
      if (Pos >= Text.size())
        return fail("unterminated start tag");
      if (lookingAt("/>")) {
        Pos += 2;
        return Node;
      }
      if (Text[Pos] == '>') {
        ++Pos;
        break;
      }
      size_t KeyStart = Pos;
      while (Pos < Text.size() && Text[Pos] != '=' &&
             !std::isspace(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      std::string Key(Text.substr(KeyStart, Pos - KeyStart));
      skipWhitespace();
      if (Pos >= Text.size() || Text[Pos] != '=')
        return fail("expected '=' in attribute");
      ++Pos;
      skipWhitespace();
      if (Pos >= Text.size() || (Text[Pos] != '"' && Text[Pos] != '\''))
        return fail("expected quoted attribute value");
      char Quote = Text[Pos++];
      size_t ValueStart = Pos;
      while (Pos < Text.size() && Text[Pos] != Quote)
        ++Pos;
      if (Pos >= Text.size())
        return fail("unterminated attribute value");
      Node->Attributes.emplace_back(
          std::move(Key), decodeText(Text.substr(ValueStart, Pos - ValueStart)));
      ++Pos;
    }

    // Content until the matching end tag.
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated element '" + Node->Name + "'");
      if (lookingAt("</")) {
        Pos += 2;
        size_t EndStart = Pos;
        while (Pos < Text.size() && Text[Pos] != '>')
          ++Pos;
        std::string_view EndName = Text.substr(EndStart, Pos - EndStart);
        if (Pos >= Text.size())
          return fail("unterminated end tag");
        ++Pos;
        // Trim possible whitespace in the end tag.
        while (!EndName.empty() && std::isspace(static_cast<unsigned char>(
                                       EndName.back())))
          EndName.remove_suffix(1);
        if (EndName != Node->Name)
          return fail("mismatched end tag '" + std::string(EndName) + "'");
        return Node;
      }
      if (lookingAt("<!--")) {
        size_t End = Text.find("-->", Pos);
        if (End == std::string_view::npos)
          return fail("unterminated comment");
        Pos = End + 3;
        continue;
      }
      if (lookingAt("<![CDATA[")) {
        size_t Start = Pos + 9;
        size_t End = Text.find("]]>", Start);
        if (End == std::string_view::npos)
          return fail("unterminated CDATA");
        Node->Text.append(Text.substr(Start, End - Start));
        Pos = End + 3;
        continue;
      }
      if (Text[Pos] == '<') {
        Result<std::unique_ptr<Element>> Child = parseElement();
        if (!Child)
          return Child;
        Node->Children.push_back(Child.take());
        continue;
      }
      size_t TextStart = Pos;
      while (Pos < Text.size() && Text[Pos] != '<')
        ++Pos;
      Node->Text += decodeText(Text.substr(TextStart, Pos - TextStart));
    }
  }

  // Call-path profiles nest as deep as their call stacks; the limit only
  // guards against stack exhaustion on hostile input. Each level costs two
  // parser frames, so the cap must leave headroom even on sanitizer builds
  // whose frames carry redzones.
  static constexpr int MaxDepth = 1024;

  std::string_view Text;
  size_t Pos = 0;
  int Depth = 0;
};

} // namespace

Result<std::unique_ptr<Element>> parse(std::string_view Text) {
  return Parser(Text).run();
}

} // namespace xml
} // namespace ev
