//===- bench/bench_table3_speedups.cpp - Paper §VII-C2 outcomes -----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the §VII-C2 optimization outcomes on LULESH: the TCMalloc
/// substitution guided by the bottom-up view (~30% whole-program speedup)
/// and the locality fix guided by the correlated reuse view (additional
/// ~28%). Times the profile generation + analysis pipeline per variant.
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "workload/LuleshWorkload.h"

#include <benchmark/benchmark.h>

using namespace ev;
using namespace ev::workload;

namespace {

void generateVariant(benchmark::State &State) {
  LuleshVariant Variant = static_cast<LuleshVariant>(State.range(0));
  for (auto _ : State) {
    Profile P = generateLuleshProfile({11, Variant, 500.0});
    benchmark::DoNotOptimize(P.nodeCount());
  }
}
BENCHMARK(generateVariant)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMicrosecond);

void printTable() {
  double Original = luleshRuntimeUsec(generateLuleshProfile(
      {11, LuleshVariant::Original, 500.0}));
  double Tc = luleshRuntimeUsec(generateLuleshProfile(
      {11, LuleshVariant::WithTcmalloc, 500.0}));
  double Fixed = luleshRuntimeUsec(generateLuleshProfile(
      {11, LuleshVariant::WithLocalityFix, 500.0}));

  bench::row("Table O1 (paper SecVII-C2): LULESH optimization outcomes");
  bench::row("%-28s %14s %10s %12s", "variant", "runtime (s)", "speedup",
             "paper");
  bench::row("%-28s %14.2f %10s %12s", "original (libc malloc)",
             Original / 1e6, "1.00x", "baseline");
  bench::row("%-28s %14.2f %9.2fx %12s", "+ TCMalloc", Tc / 1e6,
             Original / Tc, "~1.30x");
  bench::row("%-28s %14.2f %9.2fx %12s", "+ locality fix", Fixed / 1e6,
             Tc / Fixed, "~1.28x");
  bench::row("total speedup: %.2fx", Original / Fixed);
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
