
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Aggregate.cpp" "src/CMakeFiles/easyview.dir/analysis/Aggregate.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/analysis/Aggregate.cpp.o.d"
  "/root/repo/src/analysis/Butterfly.cpp" "src/CMakeFiles/easyview.dir/analysis/Butterfly.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/analysis/Butterfly.cpp.o.d"
  "/root/repo/src/analysis/Diagnostic.cpp" "src/CMakeFiles/easyview.dir/analysis/Diagnostic.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/analysis/Diagnostic.cpp.o.d"
  "/root/repo/src/analysis/Diff.cpp" "src/CMakeFiles/easyview.dir/analysis/Diff.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/analysis/Diff.cpp.o.d"
  "/root/repo/src/analysis/LeakDetector.cpp" "src/CMakeFiles/easyview.dir/analysis/LeakDetector.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/analysis/LeakDetector.cpp.o.d"
  "/root/repo/src/analysis/MetricEngine.cpp" "src/CMakeFiles/easyview.dir/analysis/MetricEngine.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/analysis/MetricEngine.cpp.o.d"
  "/root/repo/src/analysis/ProfileLint.cpp" "src/CMakeFiles/easyview.dir/analysis/ProfileLint.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/analysis/ProfileLint.cpp.o.d"
  "/root/repo/src/analysis/Prune.cpp" "src/CMakeFiles/easyview.dir/analysis/Prune.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/analysis/Prune.cpp.o.d"
  "/root/repo/src/analysis/Sema.cpp" "src/CMakeFiles/easyview.dir/analysis/Sema.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/analysis/Sema.cpp.o.d"
  "/root/repo/src/analysis/ThreadSplit.cpp" "src/CMakeFiles/easyview.dir/analysis/ThreadSplit.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/analysis/ThreadSplit.cpp.o.d"
  "/root/repo/src/analysis/Transform.cpp" "src/CMakeFiles/easyview.dir/analysis/Transform.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/analysis/Transform.cpp.o.d"
  "/root/repo/src/baseline/GolandTreeTable.cpp" "src/CMakeFiles/easyview.dir/baseline/GolandTreeTable.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/baseline/GolandTreeTable.cpp.o.d"
  "/root/repo/src/baseline/PprofFlameView.cpp" "src/CMakeFiles/easyview.dir/baseline/PprofFlameView.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/baseline/PprofFlameView.cpp.o.d"
  "/root/repo/src/convert/ChromeTraceConverter.cpp" "src/CMakeFiles/easyview.dir/convert/ChromeTraceConverter.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/convert/ChromeTraceConverter.cpp.o.d"
  "/root/repo/src/convert/CollapsedConverter.cpp" "src/CMakeFiles/easyview.dir/convert/CollapsedConverter.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/convert/CollapsedConverter.cpp.o.d"
  "/root/repo/src/convert/Converters.cpp" "src/CMakeFiles/easyview.dir/convert/Converters.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/convert/Converters.cpp.o.d"
  "/root/repo/src/convert/Exporters.cpp" "src/CMakeFiles/easyview.dir/convert/Exporters.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/convert/Exporters.cpp.o.d"
  "/root/repo/src/convert/HpctoolkitConverter.cpp" "src/CMakeFiles/easyview.dir/convert/HpctoolkitConverter.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/convert/HpctoolkitConverter.cpp.o.d"
  "/root/repo/src/convert/PerfScriptConverter.cpp" "src/CMakeFiles/easyview.dir/convert/PerfScriptConverter.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/convert/PerfScriptConverter.cpp.o.d"
  "/root/repo/src/convert/PprofConverter.cpp" "src/CMakeFiles/easyview.dir/convert/PprofConverter.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/convert/PprofConverter.cpp.o.d"
  "/root/repo/src/convert/PyinstrumentConverter.cpp" "src/CMakeFiles/easyview.dir/convert/PyinstrumentConverter.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/convert/PyinstrumentConverter.cpp.o.d"
  "/root/repo/src/convert/ScaleneConverter.cpp" "src/CMakeFiles/easyview.dir/convert/ScaleneConverter.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/convert/ScaleneConverter.cpp.o.d"
  "/root/repo/src/convert/SpeedscopeConverter.cpp" "src/CMakeFiles/easyview.dir/convert/SpeedscopeConverter.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/convert/SpeedscopeConverter.cpp.o.d"
  "/root/repo/src/convert/TauConverter.cpp" "src/CMakeFiles/easyview.dir/convert/TauConverter.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/convert/TauConverter.cpp.o.d"
  "/root/repo/src/core/EasyView.cpp" "src/CMakeFiles/easyview.dir/core/EasyView.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/core/EasyView.cpp.o.d"
  "/root/repo/src/ide/JsonRpc.cpp" "src/CMakeFiles/easyview.dir/ide/JsonRpc.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/ide/JsonRpc.cpp.o.d"
  "/root/repo/src/ide/MockIde.cpp" "src/CMakeFiles/easyview.dir/ide/MockIde.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/ide/MockIde.cpp.o.d"
  "/root/repo/src/ide/PvpServer.cpp" "src/CMakeFiles/easyview.dir/ide/PvpServer.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/ide/PvpServer.cpp.o.d"
  "/root/repo/src/profile/Profile.cpp" "src/CMakeFiles/easyview.dir/profile/Profile.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/profile/Profile.cpp.o.d"
  "/root/repo/src/profile/ProfileBuilder.cpp" "src/CMakeFiles/easyview.dir/profile/ProfileBuilder.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/profile/ProfileBuilder.cpp.o.d"
  "/root/repo/src/proto/EvProf.cpp" "src/CMakeFiles/easyview.dir/proto/EvProf.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/proto/EvProf.cpp.o.d"
  "/root/repo/src/proto/PprofFormat.cpp" "src/CMakeFiles/easyview.dir/proto/PprofFormat.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/proto/PprofFormat.cpp.o.d"
  "/root/repo/src/query/Interpreter.cpp" "src/CMakeFiles/easyview.dir/query/Interpreter.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/query/Interpreter.cpp.o.d"
  "/root/repo/src/query/Lexer.cpp" "src/CMakeFiles/easyview.dir/query/Lexer.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/query/Lexer.cpp.o.d"
  "/root/repo/src/query/Parser.cpp" "src/CMakeFiles/easyview.dir/query/Parser.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/query/Parser.cpp.o.d"
  "/root/repo/src/render/AnsiRenderer.cpp" "src/CMakeFiles/easyview.dir/render/AnsiRenderer.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/render/AnsiRenderer.cpp.o.d"
  "/root/repo/src/render/CodeAnnotations.cpp" "src/CMakeFiles/easyview.dir/render/CodeAnnotations.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/render/CodeAnnotations.cpp.o.d"
  "/root/repo/src/render/Color.cpp" "src/CMakeFiles/easyview.dir/render/Color.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/render/Color.cpp.o.d"
  "/root/repo/src/render/CorrelatedView.cpp" "src/CMakeFiles/easyview.dir/render/CorrelatedView.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/render/CorrelatedView.cpp.o.d"
  "/root/repo/src/render/DiffRenderer.cpp" "src/CMakeFiles/easyview.dir/render/DiffRenderer.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/render/DiffRenderer.cpp.o.d"
  "/root/repo/src/render/FlameLayout.cpp" "src/CMakeFiles/easyview.dir/render/FlameLayout.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/render/FlameLayout.cpp.o.d"
  "/root/repo/src/render/Histogram.cpp" "src/CMakeFiles/easyview.dir/render/Histogram.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/render/Histogram.cpp.o.d"
  "/root/repo/src/render/HtmlRenderer.cpp" "src/CMakeFiles/easyview.dir/render/HtmlRenderer.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/render/HtmlRenderer.cpp.o.d"
  "/root/repo/src/render/SvgRenderer.cpp" "src/CMakeFiles/easyview.dir/render/SvgRenderer.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/render/SvgRenderer.cpp.o.d"
  "/root/repo/src/render/TreeTable.cpp" "src/CMakeFiles/easyview.dir/render/TreeTable.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/render/TreeTable.cpp.o.d"
  "/root/repo/src/support/Chaos.cpp" "src/CMakeFiles/easyview.dir/support/Chaos.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/support/Chaos.cpp.o.d"
  "/root/repo/src/support/FileIo.cpp" "src/CMakeFiles/easyview.dir/support/FileIo.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/support/FileIo.cpp.o.d"
  "/root/repo/src/support/Json.cpp" "src/CMakeFiles/easyview.dir/support/Json.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/support/Json.cpp.o.d"
  "/root/repo/src/support/Limits.cpp" "src/CMakeFiles/easyview.dir/support/Limits.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/support/Limits.cpp.o.d"
  "/root/repo/src/support/ProtoWire.cpp" "src/CMakeFiles/easyview.dir/support/ProtoWire.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/support/ProtoWire.cpp.o.d"
  "/root/repo/src/support/StringInterner.cpp" "src/CMakeFiles/easyview.dir/support/StringInterner.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/support/StringInterner.cpp.o.d"
  "/root/repo/src/support/Strings.cpp" "src/CMakeFiles/easyview.dir/support/Strings.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/support/Strings.cpp.o.d"
  "/root/repo/src/support/ThreadPool.cpp" "src/CMakeFiles/easyview.dir/support/ThreadPool.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/support/ThreadPool.cpp.o.d"
  "/root/repo/src/support/Varint.cpp" "src/CMakeFiles/easyview.dir/support/Varint.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/support/Varint.cpp.o.d"
  "/root/repo/src/support/Xml.cpp" "src/CMakeFiles/easyview.dir/support/Xml.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/support/Xml.cpp.o.d"
  "/root/repo/src/tool/CliDriver.cpp" "src/CMakeFiles/easyview.dir/tool/CliDriver.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/tool/CliDriver.cpp.o.d"
  "/root/repo/src/userstudy/UserSim.cpp" "src/CMakeFiles/easyview.dir/userstudy/UserSim.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/userstudy/UserSim.cpp.o.d"
  "/root/repo/src/workload/GrpcLeakWorkload.cpp" "src/CMakeFiles/easyview.dir/workload/GrpcLeakWorkload.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/workload/GrpcLeakWorkload.cpp.o.d"
  "/root/repo/src/workload/LuleshWorkload.cpp" "src/CMakeFiles/easyview.dir/workload/LuleshWorkload.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/workload/LuleshWorkload.cpp.o.d"
  "/root/repo/src/workload/ReuseWorkload.cpp" "src/CMakeFiles/easyview.dir/workload/ReuseWorkload.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/workload/ReuseWorkload.cpp.o.d"
  "/root/repo/src/workload/ScalingWorkload.cpp" "src/CMakeFiles/easyview.dir/workload/ScalingWorkload.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/workload/ScalingWorkload.cpp.o.d"
  "/root/repo/src/workload/SparkWorkload.cpp" "src/CMakeFiles/easyview.dir/workload/SparkWorkload.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/workload/SparkWorkload.cpp.o.d"
  "/root/repo/src/workload/SyntheticProfile.cpp" "src/CMakeFiles/easyview.dir/workload/SyntheticProfile.cpp.o" "gcc" "src/CMakeFiles/easyview.dir/workload/SyntheticProfile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
