# Empty compiler generated dependencies file for easyview_tests.
# This may be replaced when dependencies are built.
