file(REMOVE_RECURSE
  "CMakeFiles/memory_scaling.dir/memory_scaling.cpp.o"
  "CMakeFiles/memory_scaling.dir/memory_scaling.cpp.o.d"
  "memory_scaling"
  "memory_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
