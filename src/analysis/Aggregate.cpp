//===- analysis/Aggregate.cpp - Multi-profile aggregation -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Aggregate.h"

#include <cassert>
#include <cmath>

namespace ev {

std::vector<double>
AggregatedProfile::perProfileExclusive(NodeId Node, MetricId Metric) const {
  auto It = Samples.find(sampleKey(Node, Metric));
  if (It == Samples.end())
    return {};
  return It->second;
}

void AggregatedProfile::ensureInclusive() const {
  if (InclusiveReady)
    return;
  InclusiveColumns.assign(InputMetricCount * ProfileCount,
                          std::vector<double>(Merged.nodeCount(), 0.0));
  for (const auto &[Key, Values] : Samples) {
    NodeId Node = static_cast<NodeId>(Key >> 16);
    MetricId Metric = static_cast<MetricId>(Key & 0xFFFF);
    if (Metric >= InputMetricCount)
      continue; // Derived columns do not have per-profile samples.
    for (size_t Prof = 0; Prof < Values.size(); ++Prof)
      InclusiveColumns[Metric * ProfileCount + Prof][Node] += Values[Prof];
  }
  // Bottom-up accumulation; node ids are parents-first.
  for (auto &Column : InclusiveColumns)
    for (NodeId Id = static_cast<NodeId>(Merged.nodeCount()); Id > 1;) {
      --Id;
      Column[Merged.node(Id).Parent] += Column[Id];
    }
  InclusiveReady = true;
}

std::vector<double>
AggregatedProfile::perProfileInclusive(NodeId Node, MetricId Metric) const {
  assert(Metric < InputMetricCount && "derived columns have no histogram");
  ensureInclusive();
  std::vector<double> Out(ProfileCount, 0.0);
  for (size_t Prof = 0; Prof < ProfileCount; ++Prof)
    Out[Prof] = InclusiveColumns[Metric * ProfileCount + Prof][Node];
  return Out;
}

AggregatedProfile aggregate(std::span<const Profile *const> Profiles,
                            const AggregateOptions &Options) {
  assert(!Profiles.empty() && "aggregate requires at least one profile");
  AggregatedProfile Agg;
  Agg.ProfileCount = Profiles.size();
  const Profile &First = *Profiles[0];
  Agg.InputMetricCount = First.metrics().size();
  assert(Agg.InputMetricCount < 0xFFFF && "metric id space exhausted");

  Profile &Merged = Agg.Merged;
  Merged.setName("aggregate of " + std::to_string(Profiles.size()) +
                 " profiles");

  // Column layout: first the input metrics (holding the per-node SUM when
  // WithSum, otherwise zeros), then the derived statistics.
  std::vector<MetricId> SumIds(Agg.InputMetricCount);
  std::vector<MetricId> MinIds, MaxIds, MeanIds, StddevIds;
  for (MetricId I = 0; I < Agg.InputMetricCount; ++I) {
    const MetricDescriptor &M = First.metrics()[I];
    SumIds[I] = Merged.addMetric(M.Name, M.Unit, M.Aggregation);
  }
  for (MetricId I = 0; I < Agg.InputMetricCount; ++I) {
    const MetricDescriptor &M = First.metrics()[I];
    if (Options.WithMin)
      MinIds.push_back(
          Merged.addMetric(M.Name + ".min", M.Unit, MetricAggregation::Min));
    if (Options.WithMax)
      MaxIds.push_back(
          Merged.addMetric(M.Name + ".max", M.Unit, MetricAggregation::Max));
    if (Options.WithMean)
      MeanIds.push_back(
          Merged.addMetric(M.Name + ".mean", M.Unit, MetricAggregation::Sum));
    if (Options.WithStddev)
      StddevIds.push_back(Merged.addMetric(M.Name + ".stddev", M.Unit,
                                           MetricAggregation::Sum));
  }

  // Merge every input tree into the unified tree. Children are matched by
  // textual frame identity under the same merged parent.
  std::unordered_map<uint64_t, NodeId> ChildIndex;
  auto ChildFor = [&](NodeId Parent, FrameId F) {
    uint64_t Key = (static_cast<uint64_t>(Parent) << 32) | F;
    auto It = ChildIndex.find(Key);
    if (It != ChildIndex.end())
      return It->second;
    NodeId Id = Merged.createNode(Parent, F);
    ChildIndex.emplace(Key, Id);
    return Id;
  };

  for (size_t ProfIdx = 0; ProfIdx < Profiles.size(); ++ProfIdx) {
    const Profile &P = *Profiles[ProfIdx];
    // Map this profile's metric names onto the first profile's columns.
    std::vector<MetricId> MetricMap(P.metrics().size(),
                                    Profile::InvalidMetric);
    for (MetricId I = 0; I < P.metrics().size(); ++I) {
      MetricId Target = First.findMetric(P.metrics()[I].Name);
      if (Target != Profile::InvalidMetric)
        MetricMap[I] = Target;
    }

    std::vector<NodeId> OutNode(P.nodeCount(), InvalidNode);
    OutNode[P.root()] = Merged.root();
    std::vector<FrameId> FrameMap(P.frames().size(), 0);
    std::vector<bool> FrameMapped(P.frames().size(), false);
    auto MapFrame = [&](FrameId F) {
      if (FrameMapped[F])
        return FrameMap[F];
      const Frame &Old = P.frame(F);
      Frame Copy;
      Copy.Kind = Old.Kind;
      Copy.Name = Merged.strings().intern(P.text(Old.Name));
      Copy.Loc.File = Merged.strings().intern(P.text(Old.Loc.File));
      Copy.Loc.Line = Old.Loc.Line;
      Copy.Loc.Module = Merged.strings().intern(P.text(Old.Loc.Module));
      // Addresses are run-specific (ASLR): identity is textual only.
      Copy.Loc.Address = 0;
      FrameMap[F] = Merged.internFrame(Copy);
      FrameMapped[F] = true;
      return FrameMap[F];
    };

    for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
      const CCTNode &Node = P.node(Id);
      OutNode[Id] = ChildFor(OutNode[Node.Parent], MapFrame(Node.FrameRef));
    }
    for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
      for (const MetricValue &MV : P.node(Id).Metrics) {
        if (MV.Metric >= MetricMap.size() ||
            MetricMap[MV.Metric] == Profile::InvalidMetric)
          continue;
        MetricId Target = MetricMap[MV.Metric];
        std::vector<double> &Slot =
            Agg.Samples[AggregatedProfile::sampleKey(OutNode[Id], Target)];
        if (Slot.empty())
          Slot.assign(Profiles.size(), 0.0);
        Slot[ProfIdx] += MV.Value;
      }
    }
  }

  // Derive the statistic columns from the per-profile store.
  size_t N = Profiles.size();
  for (const auto &[Key, Values] : Agg.Samples) {
    NodeId Node = static_cast<NodeId>(Key >> 16);
    MetricId Metric = static_cast<MetricId>(Key & 0xFFFF);
    double Sum = 0.0, Min = Values[0], Max = Values[0];
    for (double V : Values) {
      Sum += V;
      Min = std::min(Min, V);
      Max = std::max(Max, V);
    }
    double Mean = Sum / static_cast<double>(N);
    if (Options.WithSum && Sum != 0.0)
      Merged.node(Node).addMetric(SumIds[Metric], Sum);
    if (Options.WithMin && Min != 0.0)
      Merged.node(Node).addMetric(MinIds[Metric], Min);
    if (Options.WithMax && Max != 0.0)
      Merged.node(Node).addMetric(MaxIds[Metric], Max);
    if (Options.WithMean && Mean != 0.0)
      Merged.node(Node).addMetric(MeanIds[Metric], Mean);
    if (Options.WithStddev) {
      double Var = 0.0;
      for (double V : Values)
        Var += (V - Mean) * (V - Mean);
      Var /= static_cast<double>(N);
      double Stddev = std::sqrt(Var);
      if (Stddev != 0.0)
        Merged.node(Node).addMetric(StddevIds[Metric], Stddev);
    }
  }
  return Agg;
}

} // namespace ev
