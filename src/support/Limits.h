//===- support/Limits.h - Decode limits and resource guards ---------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource guardrails for untrusted input. Every decoder that consumes
/// bytes an editor (or the network) handed us runs under a DecodeLimits
/// budget, tracked by a ResourceGuard: maximum input size, node/string
/// counts, tree depth, and an overall allocation budget. The guarantee is
/// that no input — however hostile — can make a decoder perform unbounded
/// work or allocate unbounded memory; it fails with a recoverable error
/// instead, and the session that issued the request stays alive.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_LIMITS_H
#define EASYVIEW_SUPPORT_LIMITS_H

#include <cstddef>
#include <string>

namespace ev {

/// Budgets applied while decoding untrusted profile bytes. The defaults are
/// generous enough for every profile in the test corpus and the paper's
/// million-context workloads, yet small enough that a decoder hitting them
/// returns promptly.
struct DecodeLimits {
  /// Upper bound on the raw input size a decoder accepts.
  size_t MaxInputBytes = 256u << 20;
  /// Upper bound on decoded contexts (CCT nodes).
  size_t MaxNodes = 8u << 20;
  /// Upper bound on decoded frames.
  size_t MaxFrames = 8u << 20;
  /// Upper bound on string-table entries.
  size_t MaxStrings = 4u << 20;
  /// Upper bound on the cumulative string-table payload.
  size_t MaxStringBytes = 256u << 20;
  /// Upper bound on metric descriptors.
  size_t MaxMetrics = 4096;
  /// Upper bound on CCT depth (parents-first decoding makes this cheap to
  /// track incrementally).
  size_t MaxTreeDepth = 100000;
  /// Overall allocation budget charged by decoders for payload copies.
  size_t MaxAllocBytes = 1u << 30;

  /// \returns the library-wide default limits.
  static const DecodeLimits &defaults();

  /// \returns a limits object with every budget maxed out (trusted input).
  static DecodeLimits unlimited();
};

/// Budgets applied while statically analyzing untrusted analysis inputs:
/// EVQL programs handed to the semantic checker and profiles handed to the
/// lint engine (src/analysis/Sema.h, src/analysis/ProfileLint.h). The
/// analyzers never execute user code, but they still walk user-shaped
/// data, so every walk is bounded: oversized inputs degrade to a
/// truncated diagnostic list, never unbounded work.
struct AnalysisLimits {
  /// Upper bound on diagnostics emitted per run; the excess is counted
  /// and the result is flagged truncated.
  size_t MaxDiagnostics = 1000;
  /// Upper bound on the EVQL source size the checker accepts.
  size_t MaxProgramBytes = 1u << 20;
  /// Upper bound on expression-tree nesting the checker recurses into.
  size_t MaxExprDepth = 256;
  /// Upper bound on CCT nodes a single lint rule visits.
  size_t MaxLintNodes = 8u << 20;

  /// \returns the library-wide default limits.
  static const AnalysisLimits &defaults();
};

/// Tracks consumption against a DecodeLimits budget. Decoders charge the
/// guard as they materialize data; the first charge that exceeds its budget
/// trips the guard, and every later charge keeps failing, so a decode loop
/// can check once per iteration and bail with exceeded().
class ResourceGuard {
public:
  explicit ResourceGuard(const DecodeLimits &Limits) : Limits(Limits) {}

  /// Charges one decoded node. \returns false once over budget.
  bool chargeNode();
  /// Charges one decoded frame. \returns false once over budget.
  bool chargeFrame();
  /// Charges one string of \p Bytes payload. \returns false once over
  /// either the count or cumulative-size budget.
  bool chargeString(size_t Bytes);
  /// Charges one metric descriptor. \returns false once over budget.
  bool chargeMetric();
  /// Charges \p Bytes against the allocation budget.
  bool chargeAlloc(size_t Bytes);
  /// Validates a tree depth against the budget.
  bool checkDepth(size_t Depth);

  /// \returns true once any charge exceeded its budget.
  bool exceeded() const { return Tripped; }
  /// A diagnostic naming the first budget that was exceeded.
  const std::string &error() const { return Diagnostic; }

  size_t nodes() const { return Nodes; }
  size_t allocatedBytes() const { return AllocBytes; }

  const DecodeLimits &limits() const { return Limits; }

private:
  bool trip(const char *What);

  const DecodeLimits &Limits;
  size_t Nodes = 0;
  size_t Frames = 0;
  size_t Strings = 0;
  size_t StringBytes = 0;
  size_t Metrics = 0;
  size_t AllocBytes = 0;
  bool Tripped = false;
  std::string Diagnostic;
};

} // namespace ev

#endif // EASYVIEW_SUPPORT_LIMITS_H
