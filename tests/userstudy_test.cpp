//===- tests/userstudy_test.cpp - User-study simulator tests --------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "userstudy/UserSim.h"

#include <gtest/gtest.h>

using namespace ev;
using namespace ev::userstudy;

namespace {

std::vector<std::vector<GroupOutcome>> runStudy() {
  static std::vector<std::vector<GroupOutcome>> Table =
      runControlGroups({});
  return Table;
}

constexpr size_t TaskI = 0, TaskII = 1, TaskIII = 2;
constexpr size_t EV = 0, GL = 1, PP = 2;

} // namespace

TEST(UserStudy, Deterministic) {
  auto A = runControlGroups({});
  auto B = runControlGroups({});
  for (size_t T = 0; T < 3; ++T)
    for (size_t L = 0; L < 3; ++L)
      EXPECT_DOUBLE_EQ(A[T][L].MeanMinutes, B[T][L].MeanMinutes);
}

TEST(UserStudy, TaskIMatchesPaperShape) {
  auto Table = runStudy();
  // Paper: EasyView ~10, GoLand ~15, PProf ~30 minutes.
  EXPECT_NEAR(Table[TaskI][EV].MeanMinutes, 10.0, 4.0);
  EXPECT_NEAR(Table[TaskI][GL].MeanMinutes, 15.0, 5.0);
  EXPECT_NEAR(Table[TaskI][PP].MeanMinutes, 30.0, 8.0);
  EXPECT_LT(Table[TaskI][EV].MeanMinutes, Table[TaskI][GL].MeanMinutes);
  EXPECT_LT(Table[TaskI][GL].MeanMinutes, Table[TaskI][PP].MeanMinutes);
}

TEST(UserStudy, TaskIIMatchesPaperShape) {
  auto Table = runStudy();
  // Paper: EasyView ~10 min, GoLand ~1 hour, PProf >3 hours.
  EXPECT_NEAR(Table[TaskII][EV].MeanMinutes, 10.0, 5.0);
  EXPECT_NEAR(Table[TaskII][GL].MeanMinutes, 60.0, 20.0);
  EXPECT_GE(Table[TaskII][PP].MeanMinutes, 150.0);
  EXPECT_EQ(Table[TaskII][EV].Completed, Table[TaskII][EV].Participants);
}

TEST(UserStudy, TaskIIIMatchesPaperShape) {
  auto Table = runStudy();
  // Paper: EasyView ~10 min; both control groups fail within 3 hours.
  EXPECT_NEAR(Table[TaskIII][EV].MeanMinutes, 10.0, 6.0);
  EXPECT_EQ(Table[TaskIII][EV].Completed,
            Table[TaskIII][EV].Participants);
  EXPECT_EQ(Table[TaskIII][GL].Completed, 0u);
  EXPECT_EQ(Table[TaskIII][PP].Completed, 0u);
  EXPECT_DOUBLE_EQ(Table[TaskIII][GL].MeanMinutes, 180.0);
}

TEST(UserStudy, EasyViewNeverLoses) {
  auto Table = runStudy();
  for (size_t T = 0; T < 3; ++T) {
    EXPECT_LE(Table[T][EV].MeanMinutes, Table[T][GL].MeanMinutes);
    EXPECT_LE(Table[T][EV].MeanMinutes, Table[T][PP].MeanMinutes);
  }
}

TEST(UserStudy, BudgetCapsOutcomes) {
  TaskOutcome O =
      simulateParticipant(Tool::Pprof, Task::MultiProfileLeak, 1, 180.0);
  EXPECT_FALSE(O.Completed);
  EXPECT_DOUBLE_EQ(O.Minutes, 180.0);
}

TEST(UserStudy, NamesAreStable) {
  EXPECT_EQ(toolName(Tool::EasyView), "EasyView");
  EXPECT_EQ(toolName(Tool::Pprof), "PProf");
  EXPECT_NE(taskName(Task::BottomUpAnalysis).find("bottom-up"),
            std::string_view::npos);
}

TEST(ViewSurvey, FlameBeatsTreeAndTopDownLeads) {
  std::vector<ViewVote> Votes = simulateViewSurvey();
  ASSERT_EQ(Votes.size(), 6u);
  auto Pct = [&](std::string_view Name) {
    for (const ViewVote &V : Votes)
      if (V.View == Name)
        return V.Percent;
    return -1.0;
  };
  // Fig. 8 shape: flame graphs beat the matching tree-table views, and
  // top-down is the most helpful view in each family.
  EXPECT_GT(Pct("flame top-down"), Pct("tree-table top-down"));
  EXPECT_GT(Pct("flame bottom-up"), Pct("tree-table bottom-up"));
  EXPECT_GT(Pct("flame flat"), Pct("tree-table flat"));
  EXPECT_GT(Pct("flame top-down"), Pct("flame bottom-up"));
  EXPECT_GT(Pct("flame bottom-up"), Pct("flame flat"));
  EXPECT_GT(Pct("tree-table top-down"), Pct("tree-table bottom-up"));
  // Headline: ~92% find the flame top-down view effective.
  EXPECT_NEAR(Pct("flame top-down"), 92.3, 10.0);
}

TEST(ViewSurvey, DeterministicBySeed) {
  auto A = simulateViewSurvey(5);
  auto B = simulateViewSurvey(5);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_DOUBLE_EQ(A[I].Percent, B[I].Percent);
}
