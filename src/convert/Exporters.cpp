//===- convert/Exporters.cpp - Generic representation -> foreign formats --===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "convert/Exporters.h"

#include "analysis/MetricEngine.h"
#include "support/Json.h"

#include <cmath>
#include <unordered_map>

namespace ev {
namespace convert {

namespace {

/// Renders one frame the way the folded format spells it.
std::string collapsedFrameName(const Profile &P, NodeId Id) {
  std::string Name(P.nameOf(Id));
  std::string_view Module = P.text(P.frameOf(Id).Loc.Module);
  if (!Module.empty()) {
    Name += " (";
    Name += Module;
    Name += ")";
  }
  return Name;
}

} // namespace

std::string toCollapsed(const Profile &P, MetricId Metric) {
  std::string Out;
  // Stack names per depth, maintained along a DFS.
  std::vector<std::string> Stack;
  struct Item {
    NodeId Id;
    size_t Depth;
  };
  std::vector<Item> Work{{P.root(), 0}};
  while (!Work.empty()) {
    Item It = Work.back();
    Work.pop_back();
    Stack.resize(It.Depth);
    if (It.Id != P.root())
      Stack.push_back(collapsedFrameName(P, It.Id));

    double Value = P.node(It.Id).metricOr(Metric);
    if (Value != 0.0 && !Stack.empty()) {
      for (size_t I = 0; I < Stack.size(); ++I) {
        if (I)
          Out.push_back(';');
        Out += Stack[I];
      }
      Out.push_back(' ');
      Out += std::to_string(
          static_cast<long long>(std::llround(std::max(1.0, Value))));
      Out.push_back('\n');
    }
    const CCTNode &Node = P.node(It.Id);
    for (size_t I = Node.Children.size(); I > 0; --I)
      Work.push_back({Node.Children[I - 1], Stack.size()});
  }
  return Out;
}

std::string toSpeedscope(const Profile &P, MetricId Metric) {
  // Shared frame table: one entry per distinct frame used on a valued
  // path.
  json::Array Frames;
  std::unordered_map<FrameId, size_t> FrameIndex;
  auto IndexOf = [&](FrameId F) {
    auto It = FrameIndex.find(F);
    if (It != FrameIndex.end())
      return It->second;
    const Frame &Fr = P.frame(F);
    json::Object FO;
    FO.set("name", std::string(P.text(Fr.Name)));
    if (Fr.Loc.File)
      FO.set("file", std::string(P.text(Fr.Loc.File)));
    if (Fr.Loc.Line)
      FO.set("line", Fr.Loc.Line);
    size_t Idx = Frames.size();
    Frames.push_back(std::move(FO));
    FrameIndex.emplace(F, Idx);
    return Idx;
  };

  json::Array Samples;
  json::Array Weights;
  double Total = 0.0;
  for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
    double Value = P.node(Id).metricOr(Metric);
    if (Value == 0.0)
      continue;
    json::Array Stack;
    for (NodeId Step : P.pathTo(Id))
      if (Step != P.root())
        Stack.push_back(IndexOf(P.node(Step).FrameRef));
    Samples.push_back(std::move(Stack));
    Weights.push_back(Value);
    Total += Value;
  }

  json::Object Prof;
  Prof.set("type", "sampled");
  Prof.set("name", P.name());
  Prof.set("unit",
           Metric < P.metrics().size() ? P.metrics()[Metric].Unit : "none");
  Prof.set("startValue", 0);
  Prof.set("endValue", Total);
  Prof.set("samples", std::move(Samples));
  Prof.set("weights", std::move(Weights));

  json::Object Shared;
  Shared.set("frames", std::move(Frames));

  json::Object Doc;
  Doc.set("$schema", "https://www.speedscope.app/file-format-schema.json");
  Doc.set("shared", std::move(Shared));
  json::Array Profiles;
  Profiles.push_back(std::move(Prof));
  Doc.set("profiles", std::move(Profiles));
  Doc.set("exporter", "easyview-cpp");
  return json::Value(std::move(Doc)).dump();
}

std::string toChromeTrace(const Profile &P, MetricId Metric) {
  std::vector<double> Inclusive = inclusiveColumn(P, Metric);

  json::Array Events;
  // DFS assigning start timestamps: a node starts where its previous
  // sibling ended; children start at the parent's start.
  struct Item {
    NodeId Id;
    double StartNs;
  };
  std::vector<Item> Work{{P.root(), 0.0}};
  while (!Work.empty()) {
    Item It = Work.back();
    Work.pop_back();
    if (It.Id != P.root() && Inclusive[It.Id] > 0.0) {
      json::Object E;
      E.set("ph", "X");
      E.set("name", std::string(P.nameOf(It.Id)));
      std::string_view File = P.text(P.frameOf(It.Id).Loc.File);
      if (!File.empty())
        E.set("cat", std::string(File));
      E.set("ts", It.StartNs / 1e3);
      E.set("dur", Inclusive[It.Id] / 1e3);
      E.set("pid", 1);
      E.set("tid", 1);
      Events.push_back(std::move(E));
    }
    double ChildStart = It.StartNs;
    const CCTNode &Node = P.node(It.Id);
    std::vector<Item> Pending;
    for (NodeId Child : Node.Children) {
      Pending.push_back({Child, ChildStart});
      ChildStart += Inclusive[Child];
    }
    for (size_t I = Pending.size(); I > 0; --I)
      Work.push_back(Pending[I - 1]);
  }

  json::Object Doc;
  Doc.set("traceEvents", std::move(Events));
  Doc.set("displayTimeUnit", "ms");
  return json::Value(std::move(Doc)).dump();
}

pprof::PprofProfile toPprofModel(const Profile &P) {
  pprof::PprofProfile Out;
  Out.StringTable.emplace_back("");
  std::unordered_map<std::string, int64_t> StringIndex;
  auto Intern = [&](std::string_view Text) -> int64_t {
    if (Text.empty())
      return 0;
    auto It = StringIndex.find(std::string(Text));
    if (It != StringIndex.end())
      return It->second;
    Out.StringTable.emplace_back(Text);
    int64_t Id = static_cast<int64_t>(Out.StringTable.size() - 1);
    StringIndex.emplace(std::string(Text), Id);
    return Id;
  };

  for (const MetricDescriptor &M : P.metrics())
    Out.SampleTypes.push_back({Intern(M.Name), Intern(M.Unit)});

  // One mapping per distinct module, one function+location per frame.
  std::unordered_map<StringId, uint64_t> Mappings;
  auto MappingFor = [&](StringId Module) -> uint64_t {
    if (Module == 0)
      return 0;
    auto It = Mappings.find(Module);
    if (It != Mappings.end())
      return It->second;
    pprof::Mapping M;
    M.Id = Mappings.size() + 1;
    M.Filename = Intern(P.text(Module));
    Out.Mappings.push_back(M);
    Mappings.emplace(Module, M.Id);
    return M.Id;
  };

  std::unordered_map<FrameId, uint64_t> Locations;
  auto LocationFor = [&](FrameId F) -> uint64_t {
    auto It = Locations.find(F);
    if (It != Locations.end())
      return It->second;
    const Frame &Fr = P.frame(F);
    pprof::Function Fn;
    Fn.Id = Out.Functions.size() + 1;
    Fn.Name = Intern(P.text(Fr.Name));
    Fn.SystemName = Fn.Name;
    Fn.Filename = Intern(P.text(Fr.Loc.File));
    Out.Functions.push_back(Fn);

    pprof::Location L;
    L.Id = Out.Locations.size() + 1;
    L.MappingId = MappingFor(Fr.Loc.Module);
    L.Address = Fr.Loc.Address;
    L.Lines.push_back({Fn.Id, static_cast<int64_t>(Fr.Loc.Line)});
    Out.Locations.push_back(std::move(L));
    Locations.emplace(F, Out.Locations.size());
    return Out.Locations.size();
  };

  for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
    const CCTNode &Node = P.node(Id);
    if (Node.Metrics.empty())
      continue;
    bool AllZero = true;
    for (const MetricValue &MV : Node.Metrics)
      if (MV.Value != 0.0)
        AllZero = false;
    if (AllZero)
      continue;
    pprof::Sample S;
    // Leaf-first.
    for (NodeId Step = Id; Step != P.root(); Step = P.node(Step).Parent)
      S.LocationIds.push_back(LocationFor(P.node(Step).FrameRef));
    S.Values.assign(P.metrics().size(), 0);
    for (const MetricValue &MV : Node.Metrics)
      S.Values[MV.Metric] = static_cast<int64_t>(std::llround(MV.Value));
    Out.Samples.push_back(std::move(S));
  }
  return Out;
}

std::string toPprof(const Profile &P) {
  return pprof::write(toPprofModel(P));
}

} // namespace convert
} // namespace ev
