//===- analysis/ProfileLint.h - Profile lint engine -----------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of pluggable lint rules over .evprof profiles, reporting
/// data-quality problems the way a compiler reports code problems. Two
/// complementary passes:
///
///  - a wire-level scan (lintWire) over the raw protobuf bytes that flags
///    structural corruption — dangling string/frame/node/metric references,
///    broken parent ordering, malformed messages. These are exactly the
///    inputs readEvProf rejects, so the scan is how a corrupt profile gets
///    *explained* rather than merely refused;
///  - decoded-profile rules (lintProfile) over a loaded CCT — metric sums
///    where exclusive exceeds inclusive, pathological depth or fan-out,
///    duplicate context ids in groups, zero-metric subtrees, non-monotonic
///    source offsets, unreferenced frames.
///
/// Rules are identified by stable ids (EVL1xx wire, EVL2xx decoded) and
/// kebab-case names, individually disableable, and filtered by a severity
/// threshold. Every walk is bounded by AnalysisLimits. docs/ANALYSIS.md
/// catalogues the rules.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_PROFILELINT_H
#define EASYVIEW_ANALYSIS_PROFILELINT_H

#include "analysis/Diagnostic.h"
#include "support/Limits.h"

#include <string>
#include <string_view>
#include <vector>

namespace ev {

/// Registry entry describing one lint rule.
struct LintRuleInfo {
  std::string_view Id;    ///< Stable id, e.g. "EVL101".
  std::string_view Name;  ///< Stable kebab-case name.
  Severity DefaultSev;
  std::string_view Description;
};

/// The full rule registry, wire rules first, in id order.
const std::vector<LintRuleInfo> &lintRules();

/// Looks a rule up by id ("EVL201") or name ("exclusive-exceeds-inclusive").
/// \returns nullptr when unknown.
const LintRuleInfo *findLintRule(std::string_view IdOrName);

/// Configuration for a lint run.
struct LintOptions {
  AnalysisLimits Limits = AnalysisLimits::defaults();
  /// Findings below this severity are suppressed.
  Severity MinSeverity = Severity::Note;
  /// Rules to skip, by id or name.
  std::vector<std::string> Disabled;
  /// EVL202 fires when the CCT is deeper than this.
  size_t MaxReasonableDepth = 512;
  /// EVL203 fires when one node has more children than this.
  size_t MaxReasonableFanOut = 4096;
};

/// The lint engine. Stateless across runs; one instance can lint many
/// profiles.
class ProfileLinter {
public:
  explicit ProfileLinter(LintOptions Opts = {}) : Opts(std::move(Opts)) {}

  /// Scans raw .evprof bytes without decoding, appending structural
  /// corruption findings (EVL1xx) to \p Out.
  void lintWire(std::string_view Bytes, DiagnosticSet &Out) const;

  /// Runs the decoded-profile rules (EVL2xx) over \p P.
  void lintProfile(const Profile &P, DiagnosticSet &Out) const;

  /// The combined entry point 'evtool lint' and pvp/diagnostics use: wire
  /// scan, then decode under \p Decode, then decoded rules when the decode
  /// succeeded. \returns true when the profile decoded.
  bool lint(std::string_view Bytes, const DecodeLimits &Decode,
            DiagnosticSet &Out) const;

  const LintOptions &options() const { return Opts; }

private:
  bool enabled(const LintRuleInfo &Rule) const;
  bool emit(DiagnosticSet &Out, std::string_view RuleId,
            std::string Message, std::string Hint = "",
            NodeId Node = InvalidNode) const;

  LintOptions Opts;
};

} // namespace ev

#endif // EASYVIEW_ANALYSIS_PROFILELINT_H
