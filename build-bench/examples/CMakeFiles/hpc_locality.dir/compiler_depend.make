# Empty compiler generated dependencies file for hpc_locality.
# This may be replaced when dependencies are built.
