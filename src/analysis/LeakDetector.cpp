//===- analysis/LeakDetector.cpp - Memory-leak pattern detection ----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/LeakDetector.h"

#include <algorithm>
#include <cmath>

namespace ev {

double trendSlope(const std::vector<double> &Series) {
  size_t N = Series.size();
  if (N < 2)
    return 0.0;
  double MeanX = (static_cast<double>(N) - 1.0) / 2.0;
  double MeanY = 0.0;
  for (double Y : Series)
    MeanY += Y;
  MeanY /= static_cast<double>(N);
  double Num = 0.0, Den = 0.0;
  for (size_t I = 0; I < N; ++I) {
    double DX = static_cast<double>(I) - MeanX;
    Num += DX * (Series[I] - MeanY);
    Den += DX * DX;
  }
  return Den == 0.0 ? 0.0 : Num / Den;
}

std::vector<LeakSuspect>
findLeakSuspects(const AggregatedProfile &Snapshots, MetricId Metric,
                 const LeakOptions &Options) {
  const Profile &Tree = Snapshots.merged();
  std::vector<LeakSuspect> Suspects;

  for (NodeId Id = 1; Id < Tree.nodeCount(); ++Id) {
    // Analyze allocation sites: contexts that record values directly. The
    // inclusive series of interior nodes is dominated by their children and
    // would double-report the same leak along the whole path.
    bool RecordsMetric = false;
    for (const MetricValue &MV : Tree.node(Id).Metrics)
      if (MV.Metric < Snapshots.inputMetricCount() && MV.Value != 0.0)
        RecordsMetric = true;
    if (!RecordsMetric)
      continue;

    std::vector<double> Series = Snapshots.perProfileInclusive(Id, Metric);
    if (Series.empty())
      continue;
    double Peak = *std::max_element(Series.begin(), Series.end());
    if (Peak < Options.MinPeakBytes)
      continue;
    double Final = Series.back();
    double FinalOverPeak = Peak == 0.0 ? 0.0 : Final / Peak;
    double Slope = trendSlope(Series);
    // Normalize the slope so the score is scale-free: a context that grows
    // from 0 to its peak over the whole window has normalized slope ~1.
    double NormSlope =
        Slope * (static_cast<double>(Series.size()) - 1.0) / Peak;
    NormSlope = std::clamp(NormSlope, -1.0, 1.0);

    if (FinalOverPeak < Options.MinFinalOverPeak)
      continue; // Memory is reclaimed at the end: not a leak (passthrough).

    double Score = 0.5 * std::max(NormSlope, 0.0) + 0.5 * FinalOverPeak;
    if (Score < Options.MinScore)
      continue;

    LeakSuspect S;
    S.Node = Id;
    S.Score = Score;
    S.Slope = Slope;
    S.FinalOverPeak = FinalOverPeak;
    S.PeakBytes = Peak;
    Suspects.push_back(S);
  }

  std::sort(Suspects.begin(), Suspects.end(),
            [](const LeakSuspect &A, const LeakSuspect &B) {
              if (A.Score != B.Score)
                return A.Score > B.Score;
              if (A.PeakBytes != B.PeakBytes)
                return A.PeakBytes > B.PeakBytes;
              return A.Node < B.Node;
            });
  if (Suspects.size() > Options.MaxSuspects)
    Suspects.resize(Options.MaxSuspects);
  return Suspects;
}

} // namespace ev
