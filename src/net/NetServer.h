//===- net/NetServer.h - Event-loop socket transport for PVP --------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network transport that turns the concurrent session core
/// (ide/SessionManager.h) into a deployable service: a poll()-based event
/// loop on its own thread accepts TCP or Unix-domain connections speaking
/// LSP-style Content-Length framing, feeds decoded frames into the
/// SessionManager strands (one connection = one routed session id,
/// round-robin), and writes replies back without ever blocking the loop.
///
/// Robustness is the design center; every resource a peer can consume is
/// bounded, and every disconnect the server initiates has a named,
/// counted reason (surfaced through pvp/metrics as net.drop.*):
///
///   writeBackpressure  a slow reader whose queued replies exceed
///                      MaxWriteQueueBytes is disconnected instead of
///                      growing server memory without bound;
///   idleTimeout        a silent connection (IdleTimeoutMs) or a
///                      slow-loris peer that starts a frame but does not
///                      finish it within FrameTimeoutMs;
///   maxConnections     accepts past MaxConnections are shed with a clean
///                      JSON-RPC ServerOverloaded (-32003) error before
///                      close, so a fleet spike degrades loudly, not
///                      silently;
///   parseError         a peer producing more than MaxFrameErrors corrupt
///                      frames (each still gets its error response first —
///                      FrameReader resynchronizes; the cap just bounds a
///                      pure-garbage firehose).
///
/// Writes cannot raise SIGPIPE (net/Socket.h), so a client vanishing
/// mid-reply costs one connection, never the process. Graceful drain
/// (requestDrain(), async-signal-safe) stops accepting, stops reading,
/// lets in-flight strand work finish and flush under DrainDeadlineMs,
/// then closes; stop() is the abortive variant.
///
/// See docs/PVP.md "Network transport" for the operator view.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_NET_NETSERVER_H
#define EASYVIEW_NET_NETSERVER_H

#include "ide/JsonRpc.h"
#include "ide/SessionManager.h"
#include "support/Result.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ev {
namespace net {

struct NetServerOptions {
  /// Hard cap on concurrently served connections; accepts past it are shed
  /// with a ServerOverloaded error frame and counted under
  /// net.drop.maxConnections.
  size_t MaxConnections = 1024;
  /// Per-connection ceiling on queued-but-unsent reply bytes. A reader
  /// slower than its replies crosses it and is dropped
  /// (net.drop.writeBackpressure) — bounded memory beats a dead server.
  size_t MaxWriteQueueBytes = 8u << 20;
  /// Disconnect a connection with no traffic, no queued replies, and no
  /// in-flight requests after this long. 0 disables.
  uint64_t IdleTimeoutMs = 120000;
  /// A started-but-unfinished frame (header or body) older than this marks
  /// a slow-loris peer; counted under net.drop.idleTimeout. 0 disables.
  uint64_t FrameTimeoutMs = 10000;
  /// Graceful-drain budget: in-flight requests and reply flushes get this
  /// long before remaining connections are force-closed.
  uint64_t DrainDeadlineMs = 5000;
  /// Corrupt frames tolerated per connection (each still yields an error
  /// response) before the peer is dropped as net.drop.parseError.
  size_t MaxFrameErrors = 64;
  /// Framing guardrails for every connection's FrameReader.
  rpc::FrameReaderOptions Wire;
  /// Bytes read per syscall on the loop thread.
  size_t ReadChunkBytes = 64u << 10;
  /// When nonzero, shrink each accepted socket's kernel send buffer
  /// (SO_SNDBUF) — tests use this to hit the write-backpressure path
  /// without megabytes of traffic.
  int SendBufferBytes = 0;
  /// Drop/lifecycle log sink; default writes one line per event to
  /// stderr. Set to an empty function to silence, or capture in tests.
  std::function<void(const std::string &)> Log;
};

/// Why the server closed a connection it chose to drop.
enum class DropReason : uint8_t {
  IdleTimeout,
  WriteBackpressure,
  MaxConnections,
  ParseError,
};

/// \returns the pvp/metrics suffix for \p Reason ("idleTimeout", ...).
const char *dropReasonName(DropReason Reason);

class NetServer {
public:
  /// \p Manager must outlive this server. Connections are routed onto its
  /// sessions round-robin.
  NetServer(SessionManager &Manager, NetServerOptions Opts = {});
  /// Stops abortively if still running (prefer an explicit drain()).
  ~NetServer();

  NetServer(const NetServer &) = delete;
  NetServer &operator=(const NetServer &) = delete;

  /// Binds a TCP listener on "HOST:PORT" (port 0 auto-assigns; see
  /// boundAddress()). Call exactly one listen* before start().
  Result<bool> listenTcp(const std::string &HostPort);
  /// Binds a Unix-domain listener at \p Path (stale socket files from
  /// crashed runs are replaced; the file is unlinked again on stop).
  Result<bool> listenUnix(const std::string &Path);

  /// The bound address: "host:port" for TCP (with the real port when 0 was
  /// requested), the path for Unix. Empty before a successful listen.
  const std::string &boundAddress() const { return BoundAddr; }

  /// Starts the event loop on its own thread. Requires a listener.
  Result<bool> start();

  /// Requests graceful drain: stop accepting and reading, finish in-flight
  /// strand work, flush replies, close — all bounded by DrainDeadlineMs.
  /// Async-signal-safe (an atomic store plus a pipe write), so SIGINT and
  /// SIGTERM handlers may call it directly. Returns immediately; use
  /// waitUntilStopped() (or drain()) to observe completion.
  void requestDrain();

  /// Abortive stop: close everything now, no drain deadline.
  void stop();

  /// Blocks until the loop thread exits and joins it. \returns true when
  /// the last drain completed cleanly (every connection finished and
  /// closed before the deadline; trivially true for a stop() with no
  /// connections), false when connections were force-closed.
  bool waitUntilStopped();

  /// requestDrain() + waitUntilStopped().
  bool drain() {
    requestDrain();
    return waitUntilStopped();
  }

  bool running() const { return LoopRunning.load(std::memory_order_acquire); }
  size_t activeConnections() const {
    return Active.load(std::memory_order_relaxed);
  }
  uint64_t acceptedConnections() const {
    return AcceptedTotal.load(std::memory_order_relaxed);
  }
  uint64_t droppedConnections() const {
    return DroppedTotal.load(std::memory_order_relaxed);
  }

  const NetServerOptions &options() const { return Opts; }

private:
  /// One reply or push routed from a dispatcher thread back to the loop.
  struct RoutedReply {
    uint64_t ConnId;
    std::string FramedBytes;
    /// Server-initiated notification (pvp/viewDelta, pvp/subscriptionEnd):
    /// not paired with a submitted request, so it must not decrement the
    /// connection's InFlight accounting.
    bool Notification = false;
  };

  /// Shared between the loop and SessionManager completion callbacks: the
  /// callbacks may outlive the loop (the manager drains its strands on its
  /// own schedule), so they hold this router by shared_ptr and it drops
  /// replies once the loop has shut.
  struct ReplyRouter {
    std::mutex Mutex;
    std::vector<RoutedReply> Pending;
    int WakeWriteFd = -1; ///< -1 once the loop has shut down.
    bool Closed = false;

    /// Called from dispatcher threads; queues and wakes the loop.
    void route(uint64_t ConnId, std::string FramedBytes,
               bool Notification = false);
  };

  struct Connection {
    int Fd = -1;
    uint64_t Id = 0;
    unsigned Session = 0;
    rpc::FrameReader Reader;
    std::deque<std::string> Outbox;
    size_t OutboxBytes = 0;
    size_t FrontSent = 0; ///< Bytes of Outbox.front() already written.
    size_t InFlight = 0;  ///< Requests submitted, reply not yet routed.
    size_t FrameErrors = 0;
    uint64_t AcceptUs = 0;       ///< monoMicros() at accept.
    uint64_t LastActivityMs = 0; ///< Last byte in or out (mono).
    uint64_t PartialSinceMs = 0; ///< Incomplete frame buffered since; 0 none.
    bool SawFirstByte = false;
    bool SawFirstFrame = false;
    bool ReadClosed = false; ///< Peer EOF, read error, or draining.
  };

  void loopMain();
  void acceptPending(uint64_t NowMs);
  void readFrom(Connection &C, uint64_t NowMs);
  void flushTo(Connection &C, uint64_t NowMs);
  void routeReplies(uint64_t NowMs);
  void enforceTimeouts(uint64_t NowMs);
  void submitFrame(Connection &C, json::Value Message);
  /// Appends framed bytes to the outbox, enforcing the backpressure cap.
  /// \returns false when the connection was dropped for it.
  bool enqueueReply(Connection &C, std::string FramedBytes);
  void dropConnection(Connection &C, DropReason Reason,
                      const std::string &Detail);
  void closeConnection(Connection &C, const std::string &Why);
  /// Recounts connections with an open fd into Active and the gauge.
  /// Conns.size() overcounts: closed entries linger until the loop sweep.
  void refreshActive();
  void log(const std::string &Line);

  SessionManager &Manager;
  NetServerOptions Opts;
  std::shared_ptr<ReplyRouter> Router;

  int ListenFd = -1;
  std::string BoundAddr;
  std::string UnixPath; ///< Non-empty for Unix listeners; unlinked on stop.
  int WakeReadFd = -1;
  int WakeWriteFd = -1;

  std::thread LoopThread;
  std::atomic<bool> LoopRunning{false};
  std::atomic<bool> DrainRequested{false};
  std::atomic<bool> StopRequested{false};
  std::atomic<bool> DrainedCleanly{true};

  std::map<uint64_t, Connection> Conns;
  uint64_t NextConnId = 0;
  unsigned NextSession = 0;
  uint64_t DrainDeadlineAtMs = 0; ///< Armed when drain begins; loop-local.

  std::atomic<size_t> Active{0};
  std::atomic<uint64_t> AcceptedTotal{0};
  std::atomic<uint64_t> DroppedTotal{0};
};

} // namespace net
} // namespace ev

#endif // EASYVIEW_NET_NETSERVER_H
