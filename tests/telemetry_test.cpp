//===- tests/telemetry_test.cpp - Self-profiling observability layer ------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The telemetry registry (support/Telemetry.h), the span tracer
// (support/Trace.h), and their PVP surface (pvp/metrics, pvp/selfProfile).
// Suites are named Telemetry*/Trace*/SelfProfile* to match the
// easyview_telemetry ctest entry, which the tsan preset also runs.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "analysis/ProfileLint.h"
#include "convert/Converters.h"
#include "ide/PvpServer.h"
#include "ide/SessionManager.h"
#include "proto/EvProf.h"
#include "support/Clock.h"
#include "support/Strings.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

using namespace ev;

namespace {

const json::Object *resultOf(const json::Value &Response) {
  if (!Response.isObject())
    return nullptr;
  const json::Value *R = Response.asObject().find("result");
  return R && R->isObject() ? &R->asObject() : nullptr;
}

json::Object flameParams(int64_t Id) {
  json::Object P;
  P.set("profile", Id);
  P.set("maxRects", 256);
  return P;
}

} // namespace

//===----------------------------------------------------------------------===
// Histogram bucket math
//===----------------------------------------------------------------------===

TEST(Telemetry, HistogramBucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(telemetry::Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(telemetry::Histogram::bucketIndex(1), 1u);
  EXPECT_EQ(telemetry::Histogram::bucketIndex(2), 2u);
  EXPECT_EQ(telemetry::Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(telemetry::Histogram::bucketIndex(4), 3u);
  EXPECT_EQ(telemetry::Histogram::bucketIndex(7), 3u);
  EXPECT_EQ(telemetry::Histogram::bucketIndex(8), 4u);
  // The floor of every bucket maps back into that bucket, and the value
  // just below it maps into the previous one.
  for (size_t I = 1; I + 1 < telemetry::Histogram::BucketCount; ++I) {
    uint64_t Floor = telemetry::Histogram::bucketFloor(I);
    EXPECT_EQ(telemetry::Histogram::bucketIndex(Floor), I) << I;
    EXPECT_EQ(telemetry::Histogram::bucketIndex(Floor - 1), I - 1) << I;
  }
  // Values past the last finite bucket collapse into the overflow bucket.
  constexpr size_t Overflow = telemetry::Histogram::BucketCount - 1;
  EXPECT_EQ(telemetry::Histogram::bucketIndex(UINT64_MAX), Overflow);
  EXPECT_EQ(
      telemetry::Histogram::bucketIndex(telemetry::Histogram::bucketFloor(
          Overflow)),
      Overflow);
}

TEST(Telemetry, HistogramRecordAndStats) {
  telemetry::Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u); // Empty histogram reports 0, not UINT64_MAX.
  H.record(0);
  H.record(5);
  H.record(1000);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sum(), 1005u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(telemetry::Histogram::bucketIndex(5)), 1u);
  EXPECT_EQ(H.bucketCount(telemetry::Histogram::bucketIndex(1000)), 1u);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.max(), 0u);
}

TEST(Telemetry, PercentileEstimateEmptyHistogramIsZero) {
  telemetry::Histogram H;
  for (double P : {0.0, 1.0, 50.0, 99.9, 100.0})
    EXPECT_EQ(H.percentileEstimate(P), 0.0) << P;
}

TEST(Telemetry, PercentileEstimateSingleSampleIsExact) {
  // With one sample the clamp to [min(), max()] collapses every percentile
  // to exactly that sample, interpolation notwithstanding.
  telemetry::Histogram H;
  H.record(100);
  for (double P : {0.0, 1.0, 50.0, 99.9, 100.0})
    EXPECT_EQ(H.percentileEstimate(P), 100.0) << P;
  H.reset();
  H.record(0); // The dedicated zero bucket behaves the same way.
  for (double P : {1.0, 50.0, 100.0})
    EXPECT_EQ(H.percentileEstimate(P), 0.0) << P;
}

TEST(Telemetry, PercentileEstimateAllInOverflowBucketStaysClamped) {
  // Every value lands in the open-ended overflow bucket, whose upper edge
  // is the observed max; estimates must stay inside [min, max].
  telemetry::Histogram H;
  constexpr size_t Overflow = telemetry::Histogram::BucketCount - 1;
  uint64_t Lo = telemetry::Histogram::bucketFloor(Overflow) + 1;
  H.record(Lo);
  H.record(Lo * 2);
  H.record(Lo * 3);
  ASSERT_EQ(H.bucketCount(Overflow), 3u);
  for (double P : {1.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    double E = H.percentileEstimate(P);
    EXPECT_GE(E, static_cast<double>(H.min())) << P;
    EXPECT_LE(E, static_cast<double>(H.max())) << P;
  }
  EXPECT_EQ(H.percentileEstimate(100.0), static_cast<double>(H.max()));
}

TEST(Telemetry, CountersExactUnderParallelWorkers) {
  telemetry::Registry Reg(4);
  telemetry::Counter &C = Reg.counter("test.parallel");
  telemetry::Histogram &H = Reg.histogram("test.parallelHist");
  ThreadPool Pool(4);
  constexpr size_t N = 10000;
  Pool.parallelFor(N, [&](size_t I) {
    C.add();
    H.record(I);
  });
  EXPECT_EQ(C.value(), N);
  EXPECT_EQ(H.count(), N);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), N - 1);
}

TEST(Telemetry, RegistryHandlesAreStableAndShared) {
  telemetry::Registry Reg;
  telemetry::Counter &A = Reg.counter("same.name");
  telemetry::Counter &B = Reg.counter("same.name");
  EXPECT_EQ(&A, &B);
  A.add(3);
  EXPECT_EQ(B.value(), 3u);
}

TEST(Telemetry, SnapshotSortsNamesAndHonorsTimingOption) {
  telemetry::Registry Reg;
  Reg.counter("zeta").add(1);
  Reg.counter("alpha").add(2);
  Reg.gauge("depth").set(-7);
  Reg.histogram("lat").record(42);

  json::Value Snap = Reg.snapshot();
  const json::Object &Counters =
      Snap.asObject().find("counters")->asObject();
  // Insertion-ordered json::Object + sorted emission = "alpha" first.
  EXPECT_EQ(Counters.begin()->first, "alpha");
  EXPECT_EQ(Snap.asObject().find("gauges")
                ->asObject()
                .find("depth")
                ->asInt(),
            -7);
  const json::Object &Lat = Snap.asObject()
                                .find("histograms")
                                ->asObject()
                                .find("lat")
                                ->asObject();
  EXPECT_EQ(Lat.find("count")->asInt(), 1);
  EXPECT_NE(Lat.find("sum"), nullptr);
  EXPECT_NE(Lat.find("buckets"), nullptr);

  telemetry::SnapshotOptions NoTimings;
  NoTimings.IncludeTimings = false;
  json::Value Bare = Reg.snapshot(NoTimings);
  const json::Object &BareLat = Bare.asObject()
                                    .find("histograms")
                                    ->asObject()
                                    .find("lat")
                                    ->asObject();
  EXPECT_NE(BareLat.find("count"), nullptr);
  EXPECT_EQ(BareLat.find("sum"), nullptr);
  EXPECT_EQ(BareLat.find("buckets"), nullptr);
}

TEST(Telemetry, ClockHelpersAreSane) {
  // Wall time is epoch-based: any plausible "now" is far past 2020-01-01.
  EXPECT_GT(wallMillis(), 1577836800000ull);
  uint64_t A = monoMillis();
  uint64_t B = monoMillis();
  EXPECT_LE(A, B); // Monotonic never goes backwards.
  uint64_t U1 = monoMicros();
  uint64_t U2 = monoMicros();
  EXPECT_LE(U1, U2);
}

//===----------------------------------------------------------------------===
// Span tracing
//===----------------------------------------------------------------------===

TEST(Trace, SpanNestingRecordsDepthAndPath) {
  trace::clear();
  {
    trace::Span Outer("test/outer", "test");
    {
      trace::Span Mid("test/mid", "test");
      trace::Span Inner("test/inner", "test");
      (void)Inner;
      (void)Mid;
    }
    (void)Outer;
  }
  std::vector<trace::SpanRecord> Records = trace::collectSpans();
  const trace::SpanRecord *Outer = nullptr, *Mid = nullptr, *Inner = nullptr;
  for (const trace::SpanRecord &R : Records) {
    if (std::string_view(R.Name) == "test/outer")
      Outer = &R;
    else if (std::string_view(R.Name) == "test/mid")
      Mid = &R;
    else if (std::string_view(R.Name) == "test/inner")
      Inner = &R;
  }
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Mid, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Outer->Depth, 0u);
  EXPECT_EQ(Mid->Depth, 1u);
  EXPECT_EQ(Inner->Depth, 2u);
  EXPECT_STREQ(Mid->Path[0], "test/outer");
  EXPECT_STREQ(Inner->Path[0], "test/outer");
  EXPECT_STREQ(Inner->Path[1], "test/mid");
  // Children close before parents, and a parent's inclusive time covers
  // its children; self time never exceeds inclusive time.
  EXPECT_GE(Outer->DurUs, Inner->DurUs);
  EXPECT_LE(Outer->SelfUs, Outer->DurUs);
}

TEST(Trace, SpansAcrossParallelForWorkers) {
  trace::clear();
  ThreadPool Pool(4);
  constexpr size_t N = 64;
  Pool.parallelFor(N, [&](size_t) {
    trace::Span S("test/parallelBody", "test");
    (void)S;
  });
  std::vector<trace::SpanRecord> Records = trace::collectSpans();
  size_t Bodies = 0;
  for (const trace::SpanRecord &R : Records)
    if (std::string_view(R.Name) == "test/parallelBody")
      ++Bodies;
  EXPECT_EQ(Bodies, N); // Every body span retained, none dropped.
  EXPECT_GE(trace::laneCount(), 1u);
  EXPECT_EQ(trace::droppedSpans(), 0u);
}

TEST(Trace, RingRetentionBoundsMemoryAndCountsDrops) {
  // configureRing applies to lanes created AFTER the call, so record from
  // a fresh thread.
  trace::clear();
  trace::configureRing(16);
  std::thread Writer([] {
    for (int I = 0; I < 100; ++I) {
      trace::Span S("test/ringSpam", "test");
      (void)S;
    }
  });
  Writer.join();
  trace::configureRing(4096); // Restore the default for later tests.

  size_t Spam = 0;
  for (const trace::SpanRecord &R : trace::collectSpans())
    if (std::string_view(R.Name) == "test/ringSpam")
      ++Spam;
  EXPECT_LE(Spam, 16u);
  EXPECT_GT(Spam, 0u);
  EXPECT_EQ(trace::droppedSpans(), 100u - Spam);
  trace::clear();
  EXPECT_EQ(trace::droppedSpans(), 0u);
}

TEST(Trace, DisabledSpansRecordNothing) {
  trace::clear();
  trace::setEnabled(false);
  {
    trace::Span S("test/disabled", "test");
    (void)S;
  }
  trace::setEnabled(true);
  for (const trace::SpanRecord &R : trace::collectSpans())
    EXPECT_NE(std::string_view(R.Name), "test/disabled");
}

TEST(Trace, InternLabelIsStableAndBounded) {
  const char *A = trace::internLabel("test/interned-label");
  const char *B = trace::internLabel("test/interned-label");
  EXPECT_EQ(A, B); // Same pointer: the table interns, not copies.
  EXPECT_STREQ(A, "test/interned-label");
}

TEST(Trace, ChromeTraceJsonRoundTripsThroughOwnConverter) {
  trace::clear();
  {
    trace::Span Outer("test/chromeOuter", "test");
    trace::Span Inner("test/chromeInner", "test");
    (void)Inner;
    (void)Outer;
  }
  std::string Json = trace::toChromeTraceJson();
  // The document is itself valid JSON with a traceEvents array...
  Result<json::Value> Doc = json::parse(Json);
  ASSERT_TRUE(Doc.ok()) << Doc.error();
  ASSERT_TRUE(Doc->asObject().find("traceEvents")->isArray());
  // ...and our own Chrome importer accepts it, rebuilding a CCT in which
  // the inner span nests below the outer by timestamp containment.
  Result<Profile> P = convert::fromChromeTrace(Json);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_GT(P->nodeCount(), 1u);
  bool SawInner = false;
  for (NodeId Id = 0; Id < P->nodeCount(); ++Id)
    if (P->nameOf(Id) == "test/chromeInner")
      SawInner = true;
  EXPECT_TRUE(SawInner);
}

TEST(Trace, ToProfileFoldsSpansIntoVerifiedCct) {
  trace::clear();
  for (int I = 0; I < 3; ++I) {
    trace::Span Outer("test/foldOuter", "test");
    trace::Span Inner("test/foldInner", "test");
    (void)Inner;
    (void)Outer;
  }
  Profile P = trace::toProfile("fold-test");
  ASSERT_TRUE(P.verify().ok());
  ASSERT_EQ(P.metrics().size(), 2u);
  EXPECT_EQ(P.metrics()[0].Name, "wall-time");
  EXPECT_EQ(P.metrics()[1].Name, "count");
  // Repeated identical call paths merge into one node with an accumulated
  // count, not duplicate siblings or duplicate metric values.
  NodeId InnerNode = InvalidNode;
  size_t InnerNodes = 0;
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    if (P.nameOf(Id) == "test/foldInner") {
      InnerNode = Id;
      ++InnerNodes;
    }
  ASSERT_EQ(InnerNodes, 1u);
  EXPECT_EQ(P.node(InnerNode).metricOr(1, 0.0), 3.0);
}

//===----------------------------------------------------------------------===
// PVP surface: pvp/metrics and pvp/selfProfile
//===----------------------------------------------------------------------===

TEST(SelfProfile, MetricsEndpointReportsRegistryAndStats) {
  PvpServer Server;
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  Server.handleMessage(rpc::makeRequest(1, "pvp/flame", flameParams(Id)));

  json::Value Resp =
      Server.handleMessage(rpc::makeRequest(2, "pvp/metrics", json::Object()));
  const json::Object *R = resultOf(Resp);
  ASSERT_NE(R, nullptr);
  EXPECT_GT(R->find("wallTimeMs")->asInt(), 1577836800000ll);
  ASSERT_NE(R->find("counters"), nullptr);
  ASSERT_NE(R->find("histograms"), nullptr);
  ASSERT_NE(R->find("spans"), nullptr);
  // The request counter includes at least the two requests above.
  EXPECT_GE(R->find("counters")->asObject().find("pvp.requests")->asInt(), 2);
  // Expanded stats ride along with the pinned keys plus the multi-session
  // additions.
  const json::Object &Stats = R->find("stats")->asObject();
  for (const char *Key :
       {"profiles", "cachedViews", "cacheCapacity", "cacheHits",
        "cacheMisses", "cacheEvictions", "cacheShards", "cacheRevalidations",
        "storeProfiles"})
    EXPECT_NE(Stats.find(Key), nullptr) << Key;
  EXPECT_EQ(Stats.find("cacheShards")->asInt(), 1); // Standalone server.
}

TEST(SelfProfile, EmitsWellFormedEvprofThatLintsClean) {
  trace::clear();
  PvpServer Server;
  int64_t Id = Server.addProfile(test::makeRandomProfile(3));
  // Generate real server work so the self-profile has structure.
  Server.handleMessage(rpc::makeRequest(1, "pvp/flame", flameParams(Id)));
  json::Object TableParams;
  TableParams.set("profile", Id);
  Server.handleMessage(rpc::makeRequest(2, "pvp/treeTable", TableParams));
  Server.handleMessage(rpc::makeRequest(3, "pvp/summary", TableParams));

  json::Value Resp = Server.handleMessage(
      rpc::makeRequest(4, "pvp/selfProfile", json::Object()));
  const json::Object *R = resultOf(Resp);
  ASSERT_NE(R, nullptr) << Resp.dump();
  EXPECT_GT(R->find("spans")->asInt(), 0);
  EXPECT_GT(R->find("nodes")->asInt(), 0);

  std::string Bytes;
  ASSERT_TRUE(base64Decode(R->find("dataBase64")->asString(), Bytes));
  EXPECT_EQ(static_cast<int64_t>(Bytes.size()), R->find("bytes")->asInt());

  // The flagship acceptance: readEvProf decodes it and the full lint
  // pass (EVL1xx wire + EVL2xx decoded) reports zero diagnostics.
  Result<Profile> Decoded = readEvProf(Bytes);
  ASSERT_TRUE(Decoded.ok()) << Decoded.error();
  EXPECT_GT(Decoded->nodeCount(), 0u);
  DiagnosticSet Diags(64);
  ProfileLinter Linter;
  EXPECT_TRUE(Linter.lint(Bytes, DecodeLimits(), Diags));
  EXPECT_TRUE(Diags.empty()) << Diags.all().front().Id << ": "
                             << Diags.all().front().Message;

  // The profile registered in-session: a flame view of the server's own
  // execution works immediately (the dogfooding loop closes).
  int64_t SelfId = R->find("profile")->asInt();
  json::Value Flame = Server.handleMessage(
      rpc::makeRequest(5, "pvp/flame", flameParams(SelfId)));
  EXPECT_NE(resultOf(Flame), nullptr);
}

TEST(SelfProfile, ResetParamClearsRetainedSpans) {
  PvpServer Server;
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  Server.handleMessage(rpc::makeRequest(1, "pvp/flame", flameParams(Id)));
  json::Object P;
  P.set("reset", true);
  json::Value Resp =
      Server.handleMessage(rpc::makeRequest(2, "pvp/selfProfile", P));
  ASSERT_NE(resultOf(Resp), nullptr);
  // The selfProfile request itself runs inside a span that is still open
  // when the reset happens, so it records itself AFTER the clear — the
  // only span that may remain is that one.
  ASSERT_LE(trace::retainedSpans(), 1u);
  for (const trace::SpanRecord &R : trace::collectSpans())
    EXPECT_EQ(std::string_view(R.Name), "pvp/selfProfile");
}

TEST(SelfProfile, WireCountersTrackFraming) {
  telemetry::Registry &Reg = telemetry::Registry::global();
  uint64_t FramesBefore = Reg.counter("wire.framesIn").value();
  uint64_t ErrorsBefore = Reg.counter("wire.frameErrors").value();

  PvpServer Server;
  std::string Frame =
      rpc::frame(rpc::makeRequest(1, "pvp/stats", json::Object()));
  std::string Replies = Server.handleWire(Frame);
  EXPECT_FALSE(Replies.empty());
  EXPECT_EQ(Reg.counter("wire.framesIn").value(), FramesBefore + 1);
  EXPECT_EQ(Reg.counter("wire.frameErrors").value(), ErrorsBefore);
}

TEST(SelfProfile, StatsAggregateAcrossSessionsWithoutDoubleCounting) {
  SessionManager::Options Opts;
  Opts.Sessions = 2;
  Opts.CacheShards = 4;
  SessionManager Manager(Opts);

  // Session 0 opens a profile and serves a flame twice (1 miss + 1 hit).
  std::string Wire = writeEvProf(test::makeFixedProfile());
  json::Object OpenParams;
  OpenParams.set("name", "s0");
  OpenParams.set("dataBase64", base64Encode(Wire));
  json::Value OpenResp =
      Manager.handle(0, rpc::makeRequest(1, "pvp/open", OpenParams));
  const json::Object *Opened = resultOf(OpenResp);
  ASSERT_NE(Opened, nullptr);
  int64_t Id = Opened->find("profile")->asInt();
  uint64_t HitsBefore = Manager.viewCache().hits();
  uint64_t MissesBefore = Manager.viewCache().misses();
  Manager.handle(0, rpc::makeRequest(2, "pvp/flame", flameParams(Id)));
  Manager.handle(0, rpc::makeRequest(3, "pvp/flame", flameParams(Id)));

  // The shared-cache counters are global atomics: exactly one miss and one
  // hit, regardless of shard layout (no per-shard double counting).
  EXPECT_EQ(Manager.viewCache().hits(), HitsBefore + 1);
  EXPECT_EQ(Manager.viewCache().misses(), MissesBefore + 1);

  // Both sessions see the same aggregated stats; per-session "profiles"
  // differs (ownership) while store-wide storeProfiles matches.
  json::Value S0 = Manager.handle(0, rpc::makeRequest(4, "pvp/stats",
                                                      json::Object()));
  json::Value S1 = Manager.handle(1, rpc::makeRequest(5, "pvp/stats",
                                                      json::Object()));
  const json::Object *Stats0 = resultOf(S0);
  const json::Object *Stats1 = resultOf(S1);
  ASSERT_NE(Stats0, nullptr);
  ASSERT_NE(Stats1, nullptr);
  EXPECT_EQ(Stats0->find("profiles")->asInt(), 1);
  EXPECT_EQ(Stats1->find("profiles")->asInt(), 0);
  EXPECT_EQ(Stats0->find("storeProfiles")->asInt(), 1);
  EXPECT_EQ(Stats1->find("storeProfiles")->asInt(), 1);
  EXPECT_EQ(Stats0->find("cacheHits")->asInt(),
            Stats1->find("cacheHits")->asInt());
  EXPECT_GE(Stats0->find("cacheShards")->asInt(), 1);
}

TEST(SelfProfile, CountersAreByteStableAcrossThreadCounts) {
  // The same deterministic workload, sequential vs 4 threads: the
  // counters-only snapshot (IncludeTimings=false drops sums/buckets,
  // which legitimately vary) must be byte-identical — counters sit at
  // fixed code points, not in scheduling-dependent paths.
  auto RunWorkload = [] {
    telemetry::Registry::global().reset();
    trace::clear();
    PvpServer Server;
    int64_t Id = Server.addProfile(test::makeRandomProfile(17));
    Server.handleMessage(rpc::makeRequest(1, "pvp/flame", flameParams(Id)));
    Server.handleMessage(rpc::makeRequest(2, "pvp/flame", flameParams(Id)));
    json::Object P;
    P.set("profile", Id);
    Server.handleMessage(rpc::makeRequest(3, "pvp/treeTable", P));
    Server.handleMessage(rpc::makeRequest(4, "pvp/summary", P));
    Server.handleMessage(rpc::makeRequest(5, "pvp/stats", json::Object()));
    telemetry::SnapshotOptions Opts;
    Opts.IncludeTimings = false;
    return telemetry::Registry::global().snapshot(Opts).dump();
  };
  ThreadPool::setSharedThreadCount(0);
  std::string Sequential = RunWorkload();
  ThreadPool::setSharedThreadCount(4);
  std::string Threaded = RunWorkload();
  ThreadPool::setSharedThreadCount(0);
  EXPECT_EQ(Sequential, Threaded);
}
