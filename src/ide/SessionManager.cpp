//===- ide/SessionManager.cpp - Concurrent multi-session PVP service ------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ide/SessionManager.h"

#include "support/Clock.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>
#include <string>

namespace ev {


SessionManager::SessionManager(Options Opts)
    : Opts(Opts), Store(std::make_shared<ProfileStore>()),
      Cache(std::make_shared<ViewCache>(Opts.Limits.MaxCachedViews,
                                        Opts.CacheShards)),
      Dispatcher(Opts.Threads != 0 ? Opts.Threads
                                   : std::max(1u, Opts.Sessions)) {
  unsigned Count = std::max(1u, Opts.Sessions);
  Sessions.reserve(Count);
  for (unsigned I = 0; I < Count; ++I) {
    auto S = std::make_unique<Session>();
    S->Server = std::make_unique<PvpServer>(Opts.Limits, Store, Cache);
    Sessions.push_back(std::move(S));
  }
}

SessionManager::~SessionManager() = default;

std::future<json::Value> SessionManager::submit(unsigned SessionId,
                                                json::Value Request) {
  auto P = std::make_shared<std::promise<json::Value>>();
  std::future<json::Value> F = P->get_future();
  submitAsync(SessionId, std::move(Request),
              [P](json::Value Response) { P->set_value(std::move(Response)); });
  return F;
}

void SessionManager::submitAsync(unsigned SessionId, json::Value Request,
                                 std::function<void(json::Value)> Done,
                                 std::function<void(json::Value)> Notify) {
  int64_t RequestId = 0;
  std::string_view Method;
  if (Request.isObject()) {
    const json::Object &Obj = Request.asObject();
    if (const json::Value *IdV = Obj.find("id"); IdV)
      IdV->getInteger(RequestId);
    if (const json::Value *MV = Obj.find("method"); MV && MV->isString())
      Method = MV->asString();
  }

  if (SessionId >= Sessions.size()) {
    Done(rpc::makeErrorResponse(RequestId, rpc::InvalidRequest,
                                "no session " + std::to_string(SessionId)));
    return;
  }

  // `$/cancelRequest` must bypass the strand: queued behind the very
  // request it targets it could never fire in time.
  if (Method == "$/cancelRequest") {
    int64_t Target = 0;
    bool HaveTarget = false;
    if (Request.isObject())
      if (const json::Value *PV = Request.asObject().find("params");
          PV && PV->isObject())
        if (const json::Value *TV = PV->asObject().find("id"); TV)
          HaveTarget = TV->getInteger(Target);
    if (!HaveTarget) {
      Done(rpc::makeErrorResponse(RequestId, rpc::InvalidParams,
                                  "$/cancelRequest needs a numeric params.id"));
      return;
    }
    bool Hit = cancel(SessionId, Target);
    json::Object Out;
    Out.set("cancelled", Hit);
    Done(rpc::makeResponse(RequestId, json::Value(std::move(Out))));
    return;
  }

  auto Pending = std::make_shared<PendingRequest>();
  Pending->Request = std::move(Request);
  Pending->RequestId = RequestId;
  Pending->Done = std::move(Done);
  Pending->Notify = std::move(Notify);
  Pending->EnqueuedUs = monoMicros();

  static telemetry::Counter &Submitted =
      telemetry::Registry::global().counter("session.submitted");
  static telemetry::Counter &RejectedBusy =
      telemetry::Registry::global().counter("session.rejectedBusy");

  Session &S = *Sessions[SessionId];
  bool Spawn = false;
  size_t BusyDepth = 0;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    if (S.Queue.size() >= Opts.MaxQueuedPerSession) {
      RejectedBusy.add();
      BusyDepth = S.Queue.size();
    } else {
      Submitted.add();
      S.Queue.push_back(std::move(Pending));
      if (!S.Running) {
        S.Running = true;
        Spawn = true;
      }
    }
  }
  if (BusyDepth > 0) {
    // Resolve outside the lock; the callback may run arbitrary code.
    Pending->Done(rpc::makeErrorResponse(
        RequestId, rpc::SessionBusy,
        "session " + std::to_string(SessionId) + " has " +
            std::to_string(BusyDepth) + " requests pending"));
    return;
  }
  if (Spawn)
    Dispatcher.post([this, &S] { pumpOne(S); });
}

void SessionManager::postInternal(unsigned SessionId,
                                  std::function<void(PvpServer &)> Fn) {
  if (SessionId >= Sessions.size() || !Fn)
    return;
  auto Pending = std::make_shared<PendingRequest>();
  Pending->Internal = std::move(Fn);
  Pending->EnqueuedUs = monoMicros();
  Session &S = *Sessions[SessionId];
  bool Spawn = false;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    // Deliberately no MaxQueuedPerSession check: these are the manager's
    // own maintenance tasks, bounded by the caller (one sweep per store
    // mutation), and shedding them would silently freeze live views.
    S.Queue.push_back(std::move(Pending));
    if (!S.Running) {
      S.Running = true;
      Spawn = true;
    }
  }
  if (Spawn)
    Dispatcher.post([this, &S] { pumpOne(S); });
}

void SessionManager::publishAll() {
  for (unsigned I = 0; I < Sessions.size(); ++I)
    postInternal(I, [](PvpServer &Server) { Server.publishSubscriptions(); });
}

void SessionManager::adoptProfileAll(int64_t Id) {
  for (unsigned I = 0; I < Sessions.size(); ++I)
    postInternal(I, [Id](PvpServer &Server) { Server.adoptProfile(Id); });
}

json::Value SessionManager::handle(unsigned SessionId,
                                   const json::Value &Request) {
  return submit(SessionId, Request).get();
}

bool SessionManager::cancel(unsigned SessionId, int64_t RequestId) {
  if (SessionId >= Sessions.size())
    return false;
  Session &S = *Sessions[SessionId];
  std::shared_ptr<PendingRequest> Unlinked;
  bool Hit = false;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    for (auto It = S.Queue.begin(); It != S.Queue.end(); ++It) {
      // Internal tasks (null Done) are not cancellable: they carry id 0,
      // which a hostile `$/cancelRequest {id:0}` could otherwise target.
      if (!(*It)->Internal && (*It)->RequestId == RequestId) {
        Unlinked = *It;
        S.Queue.erase(It);
        Hit = true;
        break;
      }
    }
    if (!Hit && S.Current && S.Current->RequestId == RequestId) {
      // Running: trigger the token; the handler unwinds at its next
      // checkpoint and the strand resolves the promise with -32800.
      S.Current->Cancel.requestCancel();
      Hit = true;
    }
  }
  // Resolve the unlinked request outside the lock (the completion callback
  // may run arbitrary code).
  if (Unlinked)
    Unlinked->Done(rpc::makeErrorResponse(RequestId, rpc::RequestCancelled,
                                          "request cancelled"));
  return Hit;
}

void SessionManager::pumpOne(Session &S) {
  std::shared_ptr<PendingRequest> Req;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    if (S.Queue.empty()) {
      S.Running = false;
      return;
    }
    Req = S.Queue.front();
    S.Queue.pop_front();
    S.Current = Req;
  }

  // Queue-wait vs run time: the two halves of perceived latency. A hot
  // cache with long queue waits means the dispatcher is undersized, not
  // the handlers slow — the split tells them apart.
  static telemetry::Histogram &QueueWait =
      telemetry::Registry::global().histogram("session.queueWaitUs");
  static telemetry::Histogram &RunTime =
      telemetry::Registry::global().histogram("session.runUs");
  uint64_t StartUs = monoMicros();
  QueueWait.record(StartUs > Req->EnqueuedUs ? StartUs - Req->EnqueuedUs : 0);

  // The session's server is only ever touched from its strand, so this
  // needs no lock despite running on an arbitrary dispatcher thread.
  json::Value Response;
  {
    trace::Span Span("session/pumpOne", "session");
    if (Req->Internal)
      Req->Internal(*S.Server);
    else
      Response = S.Server->handleMessage(Req->Request, Req->Cancel,
                                         Req->Notify);
  }
  uint64_t EndUs = monoMicros();
  RunTime.record(EndUs > StartUs ? EndUs - StartUs : 0);

  bool Repost;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    S.Current.reset();
    Repost = !S.Queue.empty();
    if (!Repost)
      S.Running = false;
  }
  if (Req->Done)
    Req->Done(std::move(Response));
  // Repost instead of looping: round-robin fairness across sessions
  // sharing the dispatcher.
  if (Repost)
    Dispatcher.post([this, &S] { pumpOne(S); });
}

} // namespace ev
