file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_programmability.dir/bench_table1_programmability.cpp.o"
  "CMakeFiles/bench_table1_programmability.dir/bench_table1_programmability.cpp.o.d"
  "bench_table1_programmability"
  "bench_table1_programmability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_programmability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
