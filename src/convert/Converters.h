//===- convert/Converters.h - Foreign profile format converters -----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The format-converter layer of the data builder (paper §IV-B): translates
/// the output of existing profilers into the generic representation without
/// changing the profilers themselves. The paper's converter set — PProf,
/// Perf, Cloud Profiler, Scalene, Chrome profiler, HPCToolkit, TAU,
/// pyinstrument — maps onto this reproduction's converters as follows:
///
///   - PProf / Cloud Profiler: the pprof profile.proto codec (binary).
///   - Perf: `perf script` textual stack dumps.
///   - Collapsed: Brendan Gregg's folded-stack format (FlameGraph), the
///     common denominator many profilers (including TAU exporters) emit.
///   - Chrome profiler: Chrome trace-event JSON.
///   - Speedscope: speedscope's sampled-profile JSON.
///   - HPCToolkit: experiment.xml call-path databases.
///   - Scalene: Scalene's per-line JSON.
///   - pyinstrument: pyinstrument's JSON session renderer.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_CONVERT_CONVERTERS_H
#define EASYVIEW_CONVERT_CONVERTERS_H

#include "profile/Profile.h"
#include "support/Limits.h"
#include "support/Result.h"

#include <string_view>

namespace ev {
namespace convert {

/// Supported input formats.
enum class Format : uint8_t {
  EvProf,      ///< Native .evprof container.
  Pprof,       ///< pprof profile.proto bytes.
  PerfScript,  ///< `perf script` text.
  Collapsed,   ///< Folded stacks ("a;b;c 42").
  ChromeTrace, ///< Chrome trace-event JSON.
  Speedscope,  ///< speedscope JSON.
  Hpctoolkit,  ///< HPCToolkit experiment.xml.
  Scalene,     ///< Scalene JSON.
  Pyinstrument, ///< pyinstrument JSON.
  Tau,         ///< TAU profile.N.N.N text.
  Unknown,
};

/// \returns a stable lowercase name ("pprof", "perf-script", ...).
std::string_view formatName(Format F);

/// Sniffs the format of \p Bytes. \p NameHint (e.g. a file name) breaks
/// ties between JSON dialects when content alone is ambiguous.
Format detectFormat(std::string_view Bytes, std::string_view NameHint = "");

/// Per-format converters. Each accepts raw bytes in the foreign format and
/// produces a profile in the generic representation.
Result<Profile> fromPprof(std::string_view Bytes);
Result<Profile> fromPerfScript(std::string_view Text);
Result<Profile> fromCollapsed(std::string_view Text);
Result<Profile> fromChromeTrace(std::string_view Json);
Result<Profile> fromSpeedscope(std::string_view Json);
Result<Profile> fromHpctoolkit(std::string_view Xml);
Result<Profile> fromScalene(std::string_view Json);
Result<Profile> fromPyinstrument(std::string_view Json);
Result<Profile> fromTau(std::string_view Text);

/// Detects the format of \p Bytes and converts. The returned profile's name
/// is \p NameHint when provided.
Result<Profile> load(std::string_view Bytes, std::string_view NameHint = "");

/// Like load(), but metered against \p Limits: the raw input size is
/// checked up front (every format), the .evprof decoder runs under the
/// full budget, and any converted profile whose node count exceeds the
/// budget is rejected rather than handed to the caller.
Result<Profile> load(std::string_view Bytes, std::string_view NameHint,
                     const DecodeLimits &Limits);

} // namespace convert
} // namespace ev

#endif // EASYVIEW_CONVERT_CONVERTERS_H
