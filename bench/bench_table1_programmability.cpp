//===- bench/bench_table1_programmability.cpp - Paper §VII-A --------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the §VII-A programmability evaluation: the engineering cost
/// of adopting EasyView's representation. The paper counts lines of code —
/// direct emission needs <20 LoC in the profiler, converters need <200 LoC
/// (mostly format parsing). Here:
///
///  - "direct" is measured by compiling a minimal emitter against the
///    data-builder API and counting its statements (mirrored in
///    examples/quickstart.cpp step 1);
///  - converter LoC are counted from this repository's converter sources.
///
/// Also times every converter on representative inputs, since conversion
/// cost is the adoption cost users feel.
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "convert/Converters.h"
#include "profile/ProfileBuilder.h"
#include "proto/EvProf.h"
#include "support/Strings.h"
#include "workload/LuleshWorkload.h"
#include "workload/SyntheticProfile.h"

#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>

using namespace ev;

namespace {

/// Counts non-blank, non-comment lines of a source file (the paper's LoC
/// notion). Returns 0 when the file is unavailable (e.g. installed-only
/// runs), in which case the row is skipped.
size_t countLoc(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return 0;
  size_t Loc = 0;
  std::string Line;
  bool InBlockComment = false;
  while (std::getline(In, Line)) {
    std::string_view Trimmed = trim(Line);
    if (InBlockComment) {
      if (Trimmed.find("*/") != std::string_view::npos)
        InBlockComment = false;
      continue;
    }
    if (Trimmed.empty() || startsWith(Trimmed, "//"))
      continue;
    if (startsWith(Trimmed, "/*")) {
      if (Trimmed.find("*/") == std::string_view::npos)
        InBlockComment = true;
      continue;
    }
    ++Loc;
  }
  return Loc;
}

std::string sourceRoot() {
  // The bench runs from build/bench; the sources sit two levels up. Try a
  // couple of likely locations.
  for (const char *Root : {"../../src/", "../src/", "src/"}) {
    std::ifstream Probe(std::string(Root) + "convert/Converters.h");
    if (Probe)
      return Root;
  }
  return "";
}

/// The <20-line direct-emission snippet the paper's Table quantifies.
Profile directEmission() {
  ProfileBuilder B("direct");                                    // 1
  MetricId Time = B.addMetric("cpu-time", "nanoseconds");        // 2
  std::vector<FrameId> Path = {                                  // 3
      B.functionFrame("main", "main.c", 10, "a.out"),            // 4
      B.functionFrame("work", "work.c", 42, "a.out")};           // 5
  B.addSample(Path, Time, 1500.0);                               // 6
  return B.take();                                               // 7
}

void directEmissionBench(benchmark::State &State) {
  for (auto _ : State) {
    Profile P = directEmission();
    benchmark::DoNotOptimize(P.nodeCount());
  }
}
BENCHMARK(directEmissionBench)->Unit(benchmark::kMicrosecond);

void convertHpctoolkitBench(benchmark::State &State) {
  std::string Xml = workload::generateLuleshExperimentXml({});
  for (auto _ : State) {
    auto P = convert::fromHpctoolkit(Xml);
    benchmark::DoNotOptimize(P.ok());
  }
}
BENCHMARK(convertHpctoolkitBench)->Unit(benchmark::kMillisecond);

void convertPprofBench(benchmark::State &State) {
  workload::SyntheticOptions Opt;
  Opt.TargetBytes = 1 << 20;
  std::string Bytes = workload::generatePprofBytes(Opt);
  for (auto _ : State) {
    auto P = convert::fromPprof(Bytes);
    benchmark::DoNotOptimize(P.ok());
  }
}
BENCHMARK(convertPprofBench)->Unit(benchmark::kMillisecond);

void printTable() {
  bench::row("Table P1 (paper SecVII-A): LoC to adopt EasyView");
  bench::row("direct emission via data builder: 7 LoC (paper: <20)");

  std::string Root = sourceRoot();
  if (Root.empty()) {
    bench::row("(converter sources not found; run from the build tree)");
    return;
  }
  struct Entry {
    const char *Name;
    const char *File;
  };
  const Entry Converters[] = {
      {"pprof / Cloud Profiler", "convert/PprofConverter.cpp"},
      {"perf script", "convert/PerfScriptConverter.cpp"},
      {"collapsed stacks", "convert/CollapsedConverter.cpp"},
      {"Chrome trace", "convert/ChromeTraceConverter.cpp"},
      {"speedscope", "convert/SpeedscopeConverter.cpp"},
      {"HPCToolkit", "convert/HpctoolkitConverter.cpp"},
      {"Scalene", "convert/ScaleneConverter.cpp"},
      {"pyinstrument", "convert/PyinstrumentConverter.cpp"},
      {"TAU", "convert/TauConverter.cpp"},
  };
  bench::row("%-24s %8s   (paper: <200 LoC per converter)", "converter",
             "LoC");
  for (const Entry &E : Converters) {
    size_t Loc = countLoc(Root + E.File);
    if (Loc)
      bench::row("%-24s %8zu %s", E.Name, Loc,
                 Loc < 200 ? "" : " (above paper bound: full-featured "
                                  "parser incl. error handling)");
  }
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
