//===- profile/ProfileStore.h - Shared refcounted profile store -----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, refcounted store of immutable profiles, shared by every
/// session of a concurrent PVP service (ide/SessionManager.h). Profiles
/// are held as `std::shared_ptr<const Profile>`: a request that resolved a
/// profile keeps its own reference for the duration of the request, so a
/// concurrent close in another session retires the id immediately but the
/// in-flight request keeps reading a live object — no locks are held
/// during analysis, and the memory is reclaimed when the last reference
/// drops.
///
/// Ids are allocated from a single store-wide counter, so they are unique
/// across every session sharing the store (the shared view cache keys on
/// them). Each profile also carries an invalidation generation, bumped by
/// state-retiring methods (close/query/transform/prune); cached views
/// record the generation they were computed at and are revalidated on
/// every cache hit.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_PROFILE_PROFILESTORE_H
#define EASYVIEW_PROFILE_PROFILESTORE_H

#include "profile/Profile.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

namespace ev {

class ProfileStore {
public:
  /// Registers \p P under a fresh store-unique id.
  int64_t add(Profile P) {
    return add(std::make_shared<const Profile>(std::move(P)));
  }

  /// Registers an already-shared profile under a fresh id.
  int64_t add(std::shared_ptr<const Profile> P) {
    std::lock_guard<std::mutex> Lock(Mutex);
    int64_t Id = NextId++;
    Profiles.emplace(Id, std::move(P));
    return Id;
  }

  /// \returns the profile for \p Id, or nullptr when absent. The returned
  /// reference keeps the profile alive independent of a concurrent drop().
  std::shared_ptr<const Profile> get(int64_t Id) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Profiles.find(Id);
    return It == Profiles.end() ? nullptr : It->second;
  }

  /// Retires \p Id from the store (in-flight references stay valid).
  /// \returns true when the id was present.
  bool drop(int64_t Id) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Profiles.erase(Id) > 0;
  }

  /// \returns the invalidation generation of \p Id (0 until bumped).
  uint64_t generationOf(int64_t Id) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Generations.find(Id);
    return It == Generations.end() ? 0 : It->second;
  }

  /// Invalidates every cached view of \p Id by advancing its generation.
  void bumpGeneration(int64_t Id) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Generations[Id];
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Profiles.size();
  }

private:
  mutable std::mutex Mutex;
  std::map<int64_t, std::shared_ptr<const Profile>> Profiles;
  std::map<int64_t, uint64_t> Generations;
  int64_t NextId = 1;
};

} // namespace ev

#endif // EASYVIEW_PROFILE_PROFILESTORE_H
