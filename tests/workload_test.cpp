//===- tests/workload_test.cpp - Workload generator tests -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workload/GrpcLeakWorkload.h"
#include "workload/LuleshWorkload.h"
#include "workload/ReuseWorkload.h"
#include "workload/SparkWorkload.h"
#include "workload/SyntheticProfile.h"

#include "analysis/Diff.h"
#include "analysis/LeakDetector.h"
#include "analysis/MetricEngine.h"
#include "analysis/Transform.h"
#include "convert/Converters.h"

#include <gtest/gtest.h>

using namespace ev;
using namespace ev::workload;

//===----------------------------------------------------------------------===
// Synthetic pprof profiles (Fig. 5 input)
//===----------------------------------------------------------------------===

TEST(Synthetic, SizeLandsNearTarget) {
  for (size_t TargetKb : {64u, 256u, 1024u}) {
    SyntheticOptions Opt;
    Opt.TargetBytes = TargetKb << 10;
    std::string Bytes = generatePprofBytes(Opt);
    EXPECT_GT(Bytes.size(), Opt.TargetBytes / 2) << TargetKb;
    EXPECT_LT(Bytes.size(), Opt.TargetBytes * 2) << TargetKb;
  }
}

TEST(Synthetic, DeterministicBySeed) {
  SyntheticOptions Opt;
  Opt.TargetBytes = 32 << 10;
  EXPECT_EQ(generatePprofBytes(Opt), generatePprofBytes(Opt));
  SyntheticOptions Opt2 = Opt;
  Opt2.Seed = 2;
  EXPECT_NE(generatePprofBytes(Opt), generatePprofBytes(Opt2));
}

TEST(Synthetic, ProfileHasServiceShape) {
  SyntheticOptions Opt;
  Opt.TargetBytes = 128 << 10;
  Profile P = generateSyntheticProfile(Opt);
  EXPECT_TRUE(P.verify().ok());
  EXPECT_GT(P.nodeCount(), 100u);
  // Deep stacks: at least one context deeper than the dispatch chain.
  unsigned MaxDepth = 0;
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    MaxDepth = std::max(MaxDepth, P.depth(Id));
  EXPECT_GE(MaxDepth, Opt.MinStackDepth);
}

//===----------------------------------------------------------------------===
// gRPC leak snapshots (Fig. 4 input)
//===----------------------------------------------------------------------===

TEST(GrpcLeak, SnapshotCountAndMetric) {
  GrpcLeakOptions Opt;
  Opt.Snapshots = 50;
  GrpcLeakWorkload W = generateGrpcLeakWorkload(Opt);
  ASSERT_EQ(W.Snapshots.size(), 50u);
  for (const Profile &P : W.Snapshots) {
    EXPECT_NE(P.findMetric("active-bytes"), Profile::InvalidMetric);
    EXPECT_TRUE(P.verify().ok());
  }
}

TEST(GrpcLeak, LeakySeriesRises) {
  GrpcLeakOptions Opt;
  Opt.Snapshots = 60;
  GrpcLeakWorkload W = generateGrpcLeakWorkload(Opt);
  double First = 0.0, Last = 0.0;
  auto SumFor = [&](const Profile &P, std::string_view Name) {
    for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
      if (P.nameOf(Id) == Name)
        return P.node(Id).metricOr(0);
    return 0.0;
  };
  First = SumFor(W.Snapshots.front(), "transport.newBufWriter");
  Last = SumFor(W.Snapshots.back(), "transport.newBufWriter");
  EXPECT_GT(Last, 10.0 * First);
}

TEST(GrpcLeak, PassthroughReclaimsAtEnd) {
  GrpcLeakOptions Opt;
  Opt.Snapshots = 60;
  GrpcLeakWorkload W = generateGrpcLeakWorkload(Opt);
  auto SumFor = [&](const Profile &P, std::string_view Name) {
    for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
      if (P.nameOf(Id) == Name)
        return P.node(Id).metricOr(0);
    return 0.0;
  };
  double Mid = SumFor(W.Snapshots[30], "codec.passthrough");
  double End = SumFor(W.Snapshots.back(), "codec.passthrough");
  EXPECT_LT(End, 0.25 * Mid);
}

//===----------------------------------------------------------------------===
// LULESH (Fig. 6 / Table T3 input)
//===----------------------------------------------------------------------===

TEST(Lulesh, BrkIsHotLeafInBottomUp) {
  Profile P = generateLuleshProfile({});
  Profile Up = bottomUpTree(P);
  MetricView View(Up, 0);
  // The hottest first-level bottom-up context is libc's brk.
  NodeId Hottest = InvalidNode;
  double Best = -1.0;
  for (NodeId Child : Up.node(Up.root()).Children)
    if (View.inclusive(Child) > Best) {
      Best = View.inclusive(Child);
      Hottest = Child;
    }
  ASSERT_NE(Hottest, InvalidNode);
  EXPECT_EQ(Up.nameOf(Hottest), "brk");
  EXPECT_EQ(Up.text(Up.frameOf(Hottest).Loc.Module), "libc-2.31.so");
}

TEST(Lulesh, MemoryManagementShareNearPaper) {
  Profile P = generateLuleshProfile({});
  Profile Up = bottomUpTree(P);
  MetricView View(Up, 0);
  double BrkShare = 0.0;
  for (NodeId Child : Up.node(Up.root()).Children)
    if (Up.nameOf(Child) == "brk")
      BrkShare = View.inclusive(Child) / View.total();
  EXPECT_NEAR(BrkShare, 0.231, 0.03);
}

TEST(Lulesh, TcmallocSpeedupNearThirtyPercent) {
  double Original = luleshRuntimeUsec(generateLuleshProfile({}));
  double Tc = luleshRuntimeUsec(generateLuleshProfile(
      {11, LuleshVariant::WithTcmalloc, 500.0}));
  double Speedup = Original / Tc;
  EXPECT_NEAR(Speedup, 1.30, 0.06);
}

TEST(Lulesh, LocalityFixAddsTwentyEightPercent) {
  double Tc = luleshRuntimeUsec(generateLuleshProfile(
      {11, LuleshVariant::WithTcmalloc, 500.0}));
  double Fixed = luleshRuntimeUsec(generateLuleshProfile(
      {11, LuleshVariant::WithLocalityFix, 500.0}));
  EXPECT_NEAR(Tc / Fixed, 1.28, 0.06);
}

TEST(Lulesh, HourglassHotInTopDown) {
  Profile P = generateLuleshProfile({});
  MetricView View(P, 0);
  double HourglassShare = 0.0;
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    if (P.nameOf(Id) == "CalcHourglassControlForElems")
      HourglassShare =
          std::max(HourglassShare, View.inclusive(Id) / View.total());
  EXPECT_GT(HourglassShare, 0.40); // Compute + its allocation children.
}

TEST(Lulesh, ExperimentXmlRoundTrips) {
  std::string Xml = generateLuleshExperimentXml({});
  Result<Profile> P = convert::fromHpctoolkit(Xml);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_TRUE(P->verify().ok());
  Profile Up = bottomUpTree(*P);
  MetricView View(Up, 0);
  NodeId Hottest = InvalidNode;
  double Best = -1.0;
  for (NodeId Child : Up.node(Up.root()).Children)
    if (View.inclusive(Child) > Best) {
      Best = View.inclusive(Child);
      Hottest = Child;
    }
  EXPECT_EQ(Up.nameOf(Hottest), "brk");
}

//===----------------------------------------------------------------------===
// Reuse pairs (Fig. 7 input)
//===----------------------------------------------------------------------===

TEST(Reuse, GroupsHaveThreeRoles) {
  ReuseWorkload W = generateReuseWorkload();
  EXPECT_TRUE(W.P.verify().ok());
  ASSERT_GT(W.P.groups().size(), 1u);
  for (const ContextGroup &G : W.P.groups()) {
    EXPECT_EQ(W.P.text(G.Kind), "reuse");
    EXPECT_EQ(G.Contexts.size(), 3u);
    EXPECT_GT(G.Value, 0.0);
  }
}

TEST(Reuse, AllocationContextsAreDataObjects) {
  ReuseWorkload W = generateReuseWorkload();
  for (const ContextGroup &G : W.P.groups())
    EXPECT_EQ(W.P.frameOf(G.Contexts[0]).Kind, FrameKind::DataObject);
}

TEST(Reuse, HotPairInHourglassFunction) {
  ReuseWorkload W = generateReuseWorkload();
  // The highest-value group's reuse context is in the hot function.
  const ContextGroup *Best = nullptr;
  for (const ContextGroup &G : W.P.groups())
    if (!Best || G.Value > Best->Value)
      Best = &G;
  ASSERT_NE(Best, nullptr);
  EXPECT_EQ(W.P.nameOf(Best->Contexts[2]), W.HotFunction);
}

//===----------------------------------------------------------------------===
// Spark (Fig. 3 input)
//===----------------------------------------------------------------------===

TEST(Spark, SqlRunIsFaster) {
  SparkWorkload W = generateSparkWorkload();
  double Rdd = metricTotal(W.Rdd, 0);
  double Sql = metricTotal(W.Sql, 0);
  EXPECT_GT(Rdd, 1.5 * Sql); // Clear win, as in the paper.
}

TEST(Spark, DiffShowsExpectedTags) {
  SparkWorkload W = generateSparkWorkload();
  DiffResult D = diffProfiles(W.Rdd, W.Sql, 0);

  bool SqlAdded = false, ShuffleDeleted = false, SharedDecreased = false;
  for (NodeId Id = 0; Id < D.Merged.nodeCount(); ++Id) {
    std::string_view Name = D.Merged.nameOf(Id);
    if (Name.find("WholeStageCodegen") != std::string_view::npos &&
        D.Tags[Id] == DiffTag::Added)
      SqlAdded = true;
    if (Name.find("BypassMergeSortShuffleWriter") !=
            std::string_view::npos &&
        D.Tags[Id] == DiffTag::Deleted)
      ShuffleDeleted = true;
    if (Name.find("Growable") != std::string_view::npos &&
        D.Tags[Id] == DiffTag::Decreased)
      SharedDecreased = true;
  }
  EXPECT_TRUE(SqlAdded);
  EXPECT_TRUE(ShuffleDeleted);
  EXPECT_TRUE(SharedDecreased);
}

TEST(Spark, ExecutorSpineShared) {
  SparkWorkload W = generateSparkWorkload();
  DiffResult D = diffProfiles(W.Rdd, W.Sql, 0);
  // The Fig. 3 spine contexts exist in both profiles.
  for (NodeId Id = 0; Id < D.Merged.nodeCount(); ++Id) {
    std::string_view Name = D.Merged.nameOf(Id);
    if (Name == "java.lang.Thread.run" ||
        Name == "spark.scheduler.Task.run") {
      EXPECT_NE(D.Tags[Id], DiffTag::Added) << Name;
      EXPECT_NE(D.Tags[Id], DiffTag::Deleted) << Name;
    }
  }
}
