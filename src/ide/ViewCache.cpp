//===- ide/ViewCache.cpp - Concurrency-safe memoized view cache -----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ide/ViewCache.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <functional>

namespace ev {

namespace {

/// Process-wide mirrors of the per-instance counters, so pvp/metrics sees
/// cache behavior without a handle to the cache object. Handles are pinned
/// once; updates are relaxed atomics.
struct CacheTelemetry {
  telemetry::Counter &Hits;
  telemetry::Counter &Misses;
  telemetry::Counter &Evictions;
  telemetry::Counter &Revalidations;
  static CacheTelemetry &get() {
    static CacheTelemetry T{
        telemetry::Registry::global().counter("viewcache.hits"),
        telemetry::Registry::global().counter("viewcache.misses"),
        telemetry::Registry::global().counter("viewcache.evictions"),
        telemetry::Registry::global().counter("viewcache.revalidations")};
    return T;
  }
};

/// Approximate heap footprint of a cached reply. Counts string payloads and
/// container slots, not allocator overhead — cheap enough to recompute on
/// every insert (the insert already deep-copies the reply anyway).
uint64_t approxJsonBytes(const json::Value &V) {
  uint64_t Bytes = sizeof(json::Value);
  if (V.isString()) {
    Bytes += V.asString().size();
  } else if (V.isArray()) {
    for (const json::Value &Elem : V.asArray())
      Bytes += approxJsonBytes(Elem);
  } else if (V.isObject()) {
    for (const auto &[Name, Member] : V.asObject())
      Bytes += Name.size() + approxJsonBytes(Member);
  }
  return Bytes;
}

} // namespace

ViewCache::ViewCache(size_t Capacity, size_t ShardCount)
    : TotalCapacity(Capacity) {
  if (ShardCount == 0)
    ShardCount = 1;
  // Never leave a shard with zero capacity: a key hashing there would be
  // permanently uncacheable while other shards have room.
  if (Capacity != 0)
    ShardCount = std::min(ShardCount, Capacity);
  else
    ShardCount = 1;
  Shards.reserve(ShardCount);
  size_t Base = Capacity / ShardCount;
  size_t Extra = Capacity % ShardCount;
  for (size_t I = 0; I < ShardCount; ++I) {
    auto S = std::make_unique<Shard>();
    S->Capacity = Base + (I < Extra ? 1 : 0);
    Shards.push_back(std::move(S));
  }
}

ViewCache::Shard &ViewCache::shardFor(const std::string &Key) {
  if (Shards.size() == 1)
    return *Shards.front();
  return *Shards[std::hash<std::string>{}(Key) % Shards.size()];
}

std::unique_ptr<json::Value> ViewCache::lookup(const std::string &Key,
                                               uint64_t CurrentGeneration) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Index.find(Key);
  if (It == S.Index.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    CacheTelemetry::get().Misses.add();
    return nullptr;
  }
  if (It->second->Generation != CurrentGeneration) {
    // Stale: computed against a retired generation. Drop it so it cannot
    // shadow a freshly computed view. Counts as a miss (the pinned
    // hit/miss totals must keep summing to lookup count) AND as a
    // revalidation drop, which tracks the cross-session race rate.
    Bytes.fetch_sub(It->second->Bytes, std::memory_order_relaxed);
    S.Lru.erase(It->second);
    S.Index.erase(It);
    Misses.fetch_add(1, std::memory_order_relaxed);
    Revalidations.fetch_add(1, std::memory_order_relaxed);
    CacheTelemetry::get().Misses.add();
    CacheTelemetry::get().Revalidations.add();
    return nullptr;
  }
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  Hits.fetch_add(1, std::memory_order_relaxed);
  CacheTelemetry::get().Hits.add();
  return std::make_unique<json::Value>(It->second->Reply);
}

void ViewCache::insert(std::string Key, int64_t ProfileId,
                       uint64_t Generation, json::Value Reply) {
  if (TotalCapacity == 0)
    return;
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Index.find(Key);
  uint64_t ReplyBytes = approxJsonBytes(Reply);
  if (It != S.Index.end()) {
    Bytes.fetch_add(ReplyBytes - It->second->Bytes,
                    std::memory_order_relaxed);
    // Refresh EVERY recorded field, not just the payload: a key collision
    // across profiles (ids are reused only across store instances, but the
    // attribution must not lie even then) would otherwise leave the entry
    // blaming the wrong profile.
    It->second->ProfileId = ProfileId;
    It->second->Generation = Generation;
    It->second->Reply = std::move(Reply);
    It->second->Bytes = ReplyBytes;
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return;
  }
  S.Lru.push_front(
      Entry{Key, ProfileId, Generation, std::move(Reply), ReplyBytes});
  S.Index.emplace(std::move(Key), S.Lru.begin());
  Bytes.fetch_add(ReplyBytes, std::memory_order_relaxed);
  while (S.Lru.size() > S.Capacity) {
    Bytes.fetch_sub(S.Lru.back().Bytes, std::memory_order_relaxed);
    S.Index.erase(S.Lru.back().Key);
    S.Lru.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
    CacheTelemetry::get().Evictions.add();
  }
}

size_t ViewCache::size() const {
  size_t Total = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total += S->Lru.size();
  }
  return Total;
}

} // namespace ev
