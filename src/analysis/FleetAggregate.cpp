//===- analysis/FleetAggregate.cpp - Streaming fleet-scale aggregation ----===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/FleetAggregate.h"

#include "profile/Columnar.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string_view>

namespace ev {

namespace {

/// Name of the per-parent catch-all node that absorbs pruned subtrees.
constexpr std::string_view PrunedFrameName = "(pruned)";

} // namespace

void StreamingMoments::push(double Value) {
  ++Present;
  double Delta = Value - Mean;
  Mean += Delta / static_cast<double>(Present);
  M2 += Delta * (Value - Mean);
  if (Present == 1) {
    Min = Max = Value;
  } else {
    Min = std::min(Min, Value);
    Max = std::max(Max, Value);
  }
}

void StreamingMoments::mergeFrom(const StreamingMoments &Other) {
  if (Other.Present == 0)
    return;
  if (Present == 0) {
    *this = Other;
    return;
  }
  // Chan et al. pairwise update: exact regardless of split sizes.
  uint64_t N = Present + Other.Present;
  double Delta = Other.Mean - Mean;
  M2 += Other.M2 + Delta * Delta * static_cast<double>(Present) *
                       static_cast<double>(Other.Present) /
                       static_cast<double>(N);
  Mean += Delta * static_cast<double>(Other.Present) / static_cast<double>(N);
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
  Present = N;
}

CohortAccumulator::CohortAccumulator(FleetAggregateOptions O)
    : Opts(O) {
  Shape.setName("fleet cohort");
  Folded.assign(1, 0); // Root.
}

NodeId CohortAccumulator::childFor(NodeId Parent, FrameId F) {
  uint64_t Key = (static_cast<uint64_t>(Parent) << 32) | F;
  auto It = ChildIndex.find(Key);
  if (It != ChildIndex.end())
    return It->second;
  NodeId Id = Shape.createNode(Parent, F);
  ChildIndex.emplace(Key, Id);
  Folded.push_back(0);
  return Id;
}

void CohortAccumulator::adoptSchema(const Profile &P) {
  if (!Shape.metrics().empty() || Profiles > 0)
    return;
  for (const MetricDescriptor &M : P.metrics())
    Shape.addMetric(M.Name, M.Unit, M.Aggregation);
  assert(Shape.metrics().size() < 0xFFFF && "metric id space exhausted");
}

void CohortAccumulator::adoptSchema(const ColumnarProfile &P) {
  if (!Shape.metrics().empty() || Profiles > 0)
    return;
  const SharedStringTable &S = P.strings();
  for (size_t I = 0; I < P.metricCount(); ++I)
    Shape.addMetric(S.text(P.metricNameIds()[I]), S.text(P.metricUnitIds()[I]),
                    static_cast<MetricAggregation>(P.metricAggs()[I]));
  assert(Shape.metrics().size() < 0xFFFF && "metric id space exhausted");
}

void CohortAccumulator::add(const ColumnarProfile &P,
                            const CancelToken &Cancel) {
  trace::Span Span("analysis/fleetAddColumnar", "analysis");
  adoptSchema(P);

  // Identical fold to add(const Profile &) below, reading columns instead
  // of node objects; every intern/childFor happens in the same order, so
  // the accumulator state comes out the same either way (pinned by
  // tests/store_test.cpp).
  const SharedStringTable &S = P.strings();
  std::span<const uint32_t> StrGlobal = P.stringGlobal();
  std::vector<MetricId> MetricMap(P.metricCount(), Profile::InvalidMetric);
  for (MetricId I = 0; I < P.metricCount(); ++I) {
    MetricId Target = Shape.findMetric(S.text(P.metricNameIds()[I]));
    if (Target != Profile::InvalidMetric)
      MetricMap[I] = Target;
  }

  std::span<const uint8_t> FrKinds = P.frameKinds();
  std::span<const uint32_t> FrNames = P.frameNames();
  std::span<const uint32_t> FrFiles = P.frameFiles();
  std::span<const uint32_t> FrLines = P.frameLines();
  std::span<const uint32_t> FrModules = P.frameModules();
  std::vector<FrameId> FrameMap(P.frameCount(), 0);
  std::vector<bool> FrameMapped(P.frameCount(), false);
  auto MapFrame = [&](FrameId F) {
    if (FrameMapped[F])
      return FrameMap[F];
    Frame Copy;
    Copy.Kind = static_cast<FrameKind>(FrKinds[F]);
    Copy.Name = Shape.strings().intern(S.text(StrGlobal[FrNames[F]]));
    Copy.Loc.File = Shape.strings().intern(S.text(StrGlobal[FrFiles[F]]));
    Copy.Loc.Line = FrLines[F];
    Copy.Loc.Module = Shape.strings().intern(S.text(StrGlobal[FrModules[F]]));
    Copy.Loc.Address = 0;
    FrameMap[F] = Shape.internFrame(Copy);
    FrameMapped[F] = true;
    return FrameMap[F];
  };

  std::span<const uint32_t> Parents = P.parents();
  std::span<const uint32_t> FrameRefs = P.frameRefs();
  size_t Count = P.nodeCount();
  std::vector<NodeId> OutNode(Count, InvalidNode);
  OutNode[0] = Shape.root();
  for (NodeId Id = 1; Id < Count; ++Id) {
    if ((Id & 8191) == 0)
      Cancel.checkpoint();
    OutNode[Id] = childFor(OutNode[Parents[Id]], MapFrame(FrameRefs[Id]));
  }

  std::span<const uint32_t> MetOff = P.metricOffsets();
  std::span<const uint32_t> MetIds = P.metricIds();
  std::span<const double> MetVals = P.metricValues();
  std::unordered_map<uint64_t, double> Contrib;
  for (NodeId Id = 0; Id < Count; ++Id) {
    if ((Id & 8191) == 0)
      Cancel.checkpoint();
    for (uint32_t V = MetOff[Id], End = MetOff[Id + 1]; V < End; ++V) {
      if (MetIds[V] >= MetricMap.size() ||
          MetricMap[MetIds[V]] == Profile::InvalidMetric)
        continue;
      Contrib[momentKey(OutNode[Id], MetricMap[MetIds[V]])] += MetVals[V];
    }
  }
  for (const auto &[Key, Value] : Contrib)
    Moments[Key].push(Value);

  ++Profiles;
  if (Opts.NodeBudget && Shape.nodeCount() > Opts.NodeBudget)
    pruneToBudget();
}

void CohortAccumulator::add(const Profile &P, const CancelToken &Cancel) {
  trace::Span Span("analysis/fleetAdd", "analysis");
  adoptSchema(P);

  // Map the input's metric schema onto the accumulator's (first profile
  // wins, matching by name — the batch aggregate's rule).
  std::vector<MetricId> MetricMap(P.metrics().size(), Profile::InvalidMetric);
  for (MetricId I = 0; I < P.metrics().size(); ++I) {
    MetricId Target = Shape.findMetric(P.metrics()[I].Name);
    if (Target != Profile::InvalidMetric)
      MetricMap[I] = Target;
  }

  // Map frames by textual identity (addresses are run-specific: ASLR).
  std::vector<FrameId> FrameMap(P.frames().size(), 0);
  std::vector<bool> FrameMapped(P.frames().size(), false);
  auto MapFrame = [&](FrameId F) {
    if (FrameMapped[F])
      return FrameMap[F];
    const Frame &In = P.frame(F);
    Frame Copy;
    Copy.Kind = In.Kind;
    Copy.Name = Shape.strings().intern(P.text(In.Name));
    Copy.Loc.File = Shape.strings().intern(P.text(In.Loc.File));
    Copy.Loc.Line = In.Loc.Line;
    Copy.Loc.Module = Shape.strings().intern(P.text(In.Loc.Module));
    Copy.Loc.Address = 0;
    FrameMap[F] = Shape.internFrame(Copy);
    FrameMapped[F] = true;
    return FrameMap[F];
  };

  // Merge the input tree into the accumulator CCT, node by node
  // (parents-first input order guarantees the parent is already mapped).
  std::vector<NodeId> OutNode(P.nodeCount(), InvalidNode);
  OutNode[P.root()] = Shape.root();
  for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
    if ((Id & 8191) == 0)
      Cancel.checkpoint();
    const CCTNode &Node = P.node(Id);
    OutNode[Id] = childFor(OutNode[Node.Parent], MapFrame(Node.FrameRef));
  }

  // Fold the input's exclusive samples. Two input nodes can land on the
  // same accumulator context (frames differing only by address), so the
  // per-profile contribution is summed per key first — Welford must see
  // exactly one observation per profile per (node, metric).
  std::unordered_map<uint64_t, double> Contrib;
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
    if ((Id & 8191) == 0)
      Cancel.checkpoint();
    for (const MetricValue &MV : P.node(Id).Metrics) {
      if (MV.Metric >= MetricMap.size() ||
          MetricMap[MV.Metric] == Profile::InvalidMetric)
        continue;
      Contrib[momentKey(OutNode[Id], MetricMap[MV.Metric])] += MV.Value;
    }
  }
  for (const auto &[Key, Value] : Contrib)
    Moments[Key].push(Value);

  ++Profiles;
  if (Opts.NodeBudget && Shape.nodeCount() > Opts.NodeBudget)
    pruneToBudget();
}

void CohortAccumulator::merge(const CohortAccumulator &Other,
                              const CancelToken &Cancel) {
  trace::Span Span("analysis/fleetMerge", "analysis");
  if (Other.Profiles == 0)
    return;
  if (Profiles == 0)
    adoptSchema(Other.Shape);

  const Profile &OP = Other.Shape;
  std::vector<MetricId> MetricMap(OP.metrics().size(), Profile::InvalidMetric);
  for (MetricId I = 0; I < OP.metrics().size(); ++I) {
    MetricId Target = Shape.findMetric(OP.metrics()[I].Name);
    if (Target != Profile::InvalidMetric)
      MetricMap[I] = Target;
  }

  std::vector<FrameId> FrameMap(OP.frames().size(), 0);
  std::vector<bool> FrameMapped(OP.frames().size(), false);
  auto MapFrame = [&](FrameId F) {
    if (FrameMapped[F])
      return FrameMap[F];
    const Frame &In = OP.frame(F);
    Frame Copy;
    Copy.Kind = In.Kind;
    Copy.Name = Shape.strings().intern(OP.text(In.Name));
    Copy.Loc.File = Shape.strings().intern(OP.text(In.Loc.File));
    Copy.Loc.Line = In.Loc.Line;
    Copy.Loc.Module = Shape.strings().intern(OP.text(In.Loc.Module));
    Copy.Loc.Address = 0;
    FrameMap[F] = Shape.internFrame(Copy);
    FrameMapped[F] = true;
    return FrameMap[F];
  };

  std::vector<NodeId> OutNode(OP.nodeCount(), InvalidNode);
  OutNode[OP.root()] = Shape.root();
  for (NodeId Id = 1; Id < OP.nodeCount(); ++Id) {
    if ((Id & 8191) == 0)
      Cancel.checkpoint();
    const CCTNode &Node = OP.node(Id);
    OutNode[Id] = childFor(OutNode[Node.Parent], MapFrame(Node.FrameRef));
    if (Other.isFolded(Id))
      Folded[OutNode[Id]] = 1;
  }

  // The accumulator CCT never holds two children of one parent with the
  // same frame, so OutNode is injective: each of Other's moment entries
  // lands on its own key here and the commutative Chan merge makes the
  // result independent of hash-map iteration order. Walk in (node, metric)
  // order anyway so map insertion order — and thus approxMemoryBytes and
  // any future iteration — is reproducible.
  for (NodeId Id = 0; Id < OP.nodeCount(); ++Id) {
    if ((Id & 8191) == 0)
      Cancel.checkpoint();
    for (MetricId M = 0; M < OP.metrics().size(); ++M) {
      if (MetricMap[M] == Profile::InvalidMetric)
        continue;
      auto It = Other.Moments.find(momentKey(Id, M));
      if (It == Other.Moments.end())
        continue;
      Moments[momentKey(OutNode[Id], MetricMap[M])].mergeFrom(It->second);
    }
  }

  Profiles += Other.Profiles;
  Prunes += Other.Prunes;
  if (Opts.NodeBudget && Shape.nodeCount() > Opts.NodeBudget)
    pruneToBudget();
}

CohortNodeStats CohortAccumulator::stats(NodeId Node, MetricId Metric) const {
  CohortNodeStats S;
  S.Profiles = Profiles;
  auto It = Moments.find(momentKey(Node, Metric));
  if (It == Moments.end() || Profiles == 0)
    return S;
  const StreamingMoments &M = It->second;
  S.Present = M.Present;
  S.Sum = M.sum();
  double N = static_cast<double>(Profiles);
  S.Mean = S.Sum / N;
  // Absent profiles contribute zero, exactly like the batch matrix's dense
  // columns. With k present values of mean m and squared deviations M2,
  // the full-cohort second moment about the cohort mean mu is
  //   M2 + k*(m - mu)^2 + (N - k)*mu^2.
  double K = static_cast<double>(M.Present);
  double Dev = M.Mean - S.Mean;
  double M2Total = M.M2 + K * Dev * Dev + (N - K) * S.Mean * S.Mean;
  S.Stddev = std::sqrt(std::max(0.0, M2Total) / N);
  S.Min = M.Present < Profiles ? std::min(0.0, M.Min) : M.Min;
  S.Max = M.Present < Profiles ? std::max(0.0, M.Max) : M.Max;
  return S;
}

std::vector<double>
CohortAccumulator::inclusiveSumColumn(MetricId Metric) const {
  std::vector<double> Column(Shape.nodeCount(), 0.0);
  for (NodeId Id = 0; Id < Shape.nodeCount(); ++Id) {
    auto It = Moments.find(momentKey(Id, Metric));
    if (It != Moments.end())
      Column[Id] = It->second.sum();
  }
  for (NodeId Id = static_cast<NodeId>(Shape.nodeCount()); Id > 1;) {
    --Id;
    Column[Shape.node(Id).Parent] += Column[Id];
  }
  return Column;
}

bool CohortAccumulator::isFolded(NodeId Node) const {
  return Node < Folded.size() && Folded[Node] != 0;
}

size_t CohortAccumulator::approxMemoryBytes() const {
  size_t Bytes = Shape.approxMemoryBytes();
  Bytes += ChildIndex.size() * (sizeof(uint64_t) + sizeof(NodeId) +
                                2 * sizeof(void *));
  Bytes += Moments.size() * (sizeof(uint64_t) + sizeof(StreamingMoments) +
                             2 * sizeof(void *));
  Bytes += Folded.capacity();
  return Bytes;
}

void CohortAccumulator::pruneToBudget() {
  // The rebuild adds one "(pruned)" catch-all per kept parent that lost a
  // child, so a single pass can land above the target — or even above the
  // budget. Halve the target and re-prune until the cap actually holds.
  size_t Target = static_cast<size_t>(
      static_cast<double>(Opts.NodeBudget) * Opts.PruneTargetFraction);
  Target = std::max<size_t>(Target, 1);
  while (Shape.nodeCount() > Opts.NodeBudget) {
    pruneOnce(Target);
    if (Target == 1)
      break; // Floor: root plus catch-alls; cannot shrink further.
    Target = std::max<size_t>(1, Target / 2);
  }
}

void CohortAccumulator::pruneOnce(size_t Target) {
  trace::Span Span("analysis/fleetPrune", "analysis");
  size_t Count = Shape.nodeCount();
  if (Count <= Target)
    return;
  ++Prunes;

  // Rank non-root nodes by inclusive weight, heaviest first; ties break on
  // node id so the keep set is deterministic.
  std::vector<double> Weight = inclusiveSumColumn(Opts.WeightMetric);
  std::vector<NodeId> Order(Count > 0 ? Count - 1 : 0);
  for (NodeId Id = 1; Id < Count; ++Id)
    Order[Id - 1] = Id;
  std::sort(Order.begin(), Order.end(), [&](NodeId A, NodeId B) {
    if (Weight[A] != Weight[B])
      return Weight[A] > Weight[B];
    return A < B;
  });

  // Greedy top-K with ancestor closure: a kept node needs its whole chain,
  // so the chain is charged against the target together with the node.
  std::vector<char> Keep(Count, 0);
  Keep[0] = 1;
  size_t Kept = 1;
  std::vector<NodeId> Chain;
  for (NodeId Id : Order) {
    if (Kept >= Target)
      break;
    if (Keep[Id])
      continue;
    Chain.clear();
    for (NodeId Up = Id; !Keep[Up]; Up = Shape.node(Up).Parent)
      Chain.push_back(Up);
    for (NodeId Up : Chain)
      Keep[Up] = 1;
    Kept += Chain.size();
  }

  // Rebuild the accumulator: kept nodes carry over; each dropped node maps
  // to a "(pruned)" catch-all child of its nearest kept ancestor, which
  // conserves subtree sums but gives up attribution. Catch-all moments are
  // sum-carriers only (Present pinned to 1 so sum() = Mean); isFolded()
  // tells analyses to skip them.
  Profile NewShape;
  NewShape.setName(Shape.name());
  for (const MetricDescriptor &M : Shape.metrics())
    NewShape.addMetric(M.Name, M.Unit, M.Aggregation);
  std::unordered_map<uint64_t, NodeId> NewChildIndex;
  std::vector<char> NewFolded(1, 0);
  auto NewChildFor = [&](NodeId Parent, FrameId F, bool FoldedNode) {
    uint64_t Key = (static_cast<uint64_t>(Parent) << 32) | F;
    auto It = NewChildIndex.find(Key);
    if (It != NewChildIndex.end())
      return It->second;
    NodeId Id = NewShape.createNode(Parent, F);
    NewChildIndex.emplace(Key, Id);
    NewFolded.push_back(FoldedNode ? 1 : 0);
    return Id;
  };
  FrameId PrunedFrame;
  {
    Frame F;
    F.Kind = FrameKind::Function;
    F.Name = NewShape.strings().intern(PrunedFrameName);
    PrunedFrame = NewShape.internFrame(F);
  }

  std::vector<NodeId> NewId(Count, InvalidNode);
  NewId[0] = NewShape.root();
  std::unordered_map<uint64_t, StreamingMoments> NewMoments;
  size_t MetricCount = Shape.metrics().size();
  for (NodeId Id = 1; Id < Count; ++Id) {
    NodeId Mapped;
    if (Keep[Id]) {
      const Frame &In = Shape.frame(Shape.node(Id).FrameRef);
      Frame Copy;
      Copy.Kind = In.Kind;
      Copy.Name = NewShape.strings().intern(Shape.text(In.Name));
      Copy.Loc.File = NewShape.strings().intern(Shape.text(In.Loc.File));
      Copy.Loc.Line = In.Loc.Line;
      Copy.Loc.Module = NewShape.strings().intern(Shape.text(In.Loc.Module));
      Mapped = NewChildFor(NewId[Shape.node(Id).Parent],
                           NewShape.internFrame(Copy), isFolded(Id));
    } else if (Keep[Shape.node(Id).Parent]) {
      Mapped = NewChildFor(NewId[Shape.node(Id).Parent], PrunedFrame, true);
    } else {
      // Parent already collapsed into a catch-all; ride along with it.
      Mapped = NewId[Shape.node(Id).Parent];
    }
    NewId[Id] = Mapped;
  }

  for (NodeId Id = 0; Id < Count; ++Id) {
    bool IntoCatchAll = !Keep[Id] || NewFolded[NewId[Id]];
    for (MetricId M = 0; M < MetricCount; ++M) {
      auto It = Moments.find(momentKey(Id, M));
      if (It == Moments.end())
        continue;
      StreamingMoments &Dst = NewMoments[momentKey(NewId[Id], M)];
      if (IntoCatchAll) {
        double Sum = Dst.Present ? Dst.sum() : 0.0;
        Sum += It->second.sum();
        Dst.Present = 1;
        Dst.Mean = Sum;
        Dst.M2 = 0.0;
        Dst.Min = Dst.Max = Sum;
      } else {
        Dst = It->second;
      }
    }
  }

  Shape = std::move(NewShape);
  ChildIndex = std::move(NewChildIndex);
  Moments = std::move(NewMoments);
  Folded = std::move(NewFolded);
}

} // namespace ev
