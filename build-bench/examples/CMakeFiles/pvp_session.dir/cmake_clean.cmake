file(REMOVE_RECURSE
  "CMakeFiles/pvp_session.dir/pvp_session.cpp.o"
  "CMakeFiles/pvp_session.dir/pvp_session.cpp.o.d"
  "pvp_session"
  "pvp_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvp_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
