//===- ide/MockIde.cpp - In-process editor client for PVP -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ide/MockIde.h"

#include "support/Strings.h"

namespace ev {

Result<json::Value> MockIde::call(std::string_view Method,
                                  json::Object Params) {
  json::Value Request =
      rpc::makeRequest(NextRequestId++, Method, std::move(Params));
  ++RequestsSent;

  // Round-trip through the real wire framing so transport bugs surface in
  // every test that uses the mock.
  std::string WireOut = Server.handleWire(rpc::frame(Request));
  rpc::MessageReader Reader;
  Reader.feed(WireOut);
  auto Response = Reader.poll();
  if (!Response)
    return makeError("server produced no response");
  // The response frame comes first (the server guarantees the ordering);
  // anything after it on the same wire flush is a push.
  while (auto More = Reader.poll())
    Notifications.push_back(std::move(*More));
  if (!Response->isObject())
    return makeError("server response is not an object");
  const json::Object &Obj = Response->asObject();
  if (const json::Value *Err = Obj.find("error")) {
    std::string Message = "rpc error";
    if (Err->isObject())
      if (const json::Value *MV = Err->asObject().find("message"))
        Message = std::string(MV->stringOr("rpc error"));
    return makeError(Message);
  }
  const json::Value *ResultV = Obj.find("result");
  if (!ResultV)
    return makeError("server response has neither result nor error");
  return *ResultV;
}

Result<int64_t> MockIde::openProfile(std::string_view Name,
                                     std::string_view Bytes) {
  json::Object Params;
  Params.set("name", std::string(Name));
  // Binary-safe transport: always base64.
  Params.set("dataBase64", base64Encode(Bytes));
  Result<json::Value> R = call("pvp/open", std::move(Params));
  if (!R)
    return makeError(R.error());
  const json::Value *IdV = R->asObject().find("profile");
  if (!IdV || !IdV->isNumber())
    return makeError("pvp/open reply missing profile id");
  return IdV->asInt();
}

Result<bool> MockIde::clickNode(int64_t ProfileId, NodeId Node) {
  json::Object Params;
  Params.set("profile", ProfileId);
  Params.set("node", Node);
  Result<json::Value> R = call("pvp/codeLink", std::move(Params));
  if (!R)
    return makeError(R.error());
  const json::Object &Obj = R->asObject();
  bool Available = false;
  if (const json::Value *AV = Obj.find("available"))
    Available = AV->boolOr(false);
  if (!Available)
    return false;
  Navigation Nav;
  if (const json::Value *FV = Obj.find("file"))
    Nav.File = std::string(FV->stringOr(""));
  if (const json::Value *LV = Obj.find("line"))
    Nav.Line = static_cast<uint32_t>(LV->numberOr(0.0));
  Navigations.push_back(std::move(Nav));
  return true;
}

Result<std::string> MockIde::hoverNode(int64_t ProfileId, NodeId Node) {
  json::Object Params;
  Params.set("profile", ProfileId);
  Params.set("node", Node);
  Result<json::Value> R = call("pvp/hover", std::move(Params));
  if (!R)
    return makeError(R.error());
  if (const json::Value *CV = R->asObject().find("contents"))
    return std::string(CV->stringOr(""));
  return makeError("hover reply missing contents");
}

} // namespace ev
