//===- workload/LuleshWorkload.cpp - Fig. 6 / Table T3 HPC case study -----===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workload/LuleshWorkload.h"

#include "analysis/MetricEngine.h"
#include "profile/ProfileBuilder.h"
#include "support/Rng.h"
#include "support/Strings.h"

#include <cmath>

namespace ev {
namespace workload {

namespace {

constexpr const char *MetricName = "CPUTIME (usec):Sum";
constexpr const char *LuleshSrc = "lulesh.cc";
constexpr const char *LuleshBin = "lulesh2.0";
constexpr const char *Libc = "libc-2.31.so";

/// One leaf cost entry: a root-first call path and its share of the
/// ORIGINAL program's runtime in percent points.
struct CostEntry {
  std::vector<std::pair<const char *, const char *>> Path; // (func, module)
  double OriginalShare;
  /// Share remaining under each variant (multiplier on OriginalShare).
  double TcmallocFactor = 1.0;
  double LocalityFactor = 1.0;
};

std::vector<CostEntry> costModel() {
  // Shares sum to 100. Memory management (paths ending in brk) totals
  // 23.1%, so the TCMalloc substitution yields 100/77.3 ~= 1.29x; the
  // locality fix removes 17 points from the hourglass kernels for an
  // additional 77.3/60.3 ~= 1.28x.
  const char *B = LuleshBin;
  const char *C = Libc;
  std::vector<CostEntry> Model;
  auto Add = [&Model](std::vector<std::pair<const char *, const char *>> Path,
                      double Share, double Tc = 1.0, double Loc = 1.0) {
    Model.push_back({std::move(Path), Share, Tc, Loc});
  };

  // --- Hot compute: hourglass control under volume force (top-down view).
  // Spread across three leaves so no single compute leaf outweighs the
  // aggregated brk paths in the bottom-up ranking, matching the published
  // profile. The locality fix removes 17 of these 30 points.
  Add({{"main", B},
       {"LagrangeLeapFrog", B},
       {"LagrangeNodal", B},
       {"CalcForceForNodes", B},
       {"CalcVolumeForceForElems", B},
       {"CalcHourglassControlForElems", B},
       {"CalcFBHourglassForceForElems", B}},
      13.0, 1.0, 13.0 / 30.0);
  Add({{"main", B},
       {"LagrangeLeapFrog", B},
       {"LagrangeNodal", B},
       {"CalcForceForNodes", B},
       {"CalcVolumeForceForElems", B},
       {"CalcHourglassControlForElems", B},
       {"CalcFBHourglassForceForElems", B},
       {"CalcElemFBHourglassForce", B}},
      9.0, 1.0, 13.0 / 30.0);
  Add({{"main", B},
       {"LagrangeLeapFrog", B},
       {"LagrangeNodal", B},
       {"CalcForceForNodes", B},
       {"CalcVolumeForceForElems", B},
       {"CalcHourglassControlForElems", B},
       {"CalcElemVolumeDerivative", B}},
      8.0, 1.0, 13.0 / 30.0);
  Add({{"main", B},
       {"LagrangeLeapFrog", B},
       {"LagrangeNodal", B},
       {"CalcForceForNodes", B},
       {"CalcVolumeForceForElems", B},
       {"IntegrateStressForElems", B}},
      10.0);

  // --- Other Lagrange phases.
  Add({{"main", B},
       {"LagrangeLeapFrog", B},
       {"LagrangeElements", B},
       {"CalcLagrangeElements", B},
       {"CalcKinematicsForElems", B}},
      12.0);
  Add({{"main", B},
       {"LagrangeLeapFrog", B},
       {"LagrangeElements", B},
       {"CalcQForElems", B},
       {"CalcMonotonicQGradientsForElems", B}},
      9.0);
  Add({{"main", B},
       {"LagrangeLeapFrog", B},
       {"LagrangeElements", B},
       {"ApplyMaterialPropertiesForElems", B},
       {"EvalEOSForElems", B},
       {"CalcEnergyForElems", B}},
      6.5);
  Add({{"main", B},
       {"LagrangeLeapFrog", B},
       {"CalcTimeConstraintsForElems", B},
       {"CalcCourantConstraintForElems", B}},
      2.4);

  // --- Memory management: brk reached from malloc and free on several
  // paths (this is what the bottom-up view surfaces as the hot leaf).
  Add({{"main", B},
       {"LagrangeLeapFrog", B},
       {"LagrangeNodal", B},
       {"CalcForceForNodes", B},
       {"CalcVolumeForceForElems", B},
       {"CalcHourglassControlForElems", B},
       {"Allocate<double>", B},
       {"operator new[]", C},
       {"malloc", C},
       {"sysmalloc", C},
       {"brk", C}},
      9.5, 0.02);
  Add({{"main", B},
       {"LagrangeLeapFrog", B},
       {"LagrangeNodal", B},
       {"CalcForceForNodes", B},
       {"CalcVolumeForceForElems", B},
       {"CalcHourglassControlForElems", B},
       {"Release<double>", B},
       {"operator delete[]", C},
       {"free", C},
       {"systrim", C},
       {"brk", C}},
      7.6, 0.02);
  Add({{"main", B},
       {"LagrangeLeapFrog", B},
       {"LagrangeElements", B},
       {"CalcQForElems", B},
       {"Allocate<double>", B},
       {"operator new[]", C},
       {"malloc", C},
       {"sysmalloc", C},
       {"brk", C}},
      3.8, 0.02);
  Add({{"main", B},
       {"LagrangeLeapFrog", B},
       {"LagrangeElements", B},
       {"CalcQForElems", B},
       {"Release<double>", B},
       {"operator delete[]", C},
       {"free", C},
       {"systrim", C},
       {"brk", C}},
      2.2, 0.02);

  // --- Misc: initialization, communication, I/O.
  Add({{"main", B}, {"Domain::Domain", B}, {"Domain::BuildMesh", B}}, 4.0);
  Add({{"main", B}, {"TimeIncrement", B}}, 1.5);
  Add({{"main", B}, {"VerifyAndWriteFinalOutput", B}, {"printf", C}}, 1.5);
  return Model;
}

double variantFactor(const CostEntry &E, LuleshVariant Variant) {
  switch (Variant) {
  case LuleshVariant::Original:
    return 1.0;
  case LuleshVariant::WithTcmalloc:
    return E.TcmallocFactor;
  case LuleshVariant::WithLocalityFix:
    return E.TcmallocFactor * E.LocalityFactor;
  }
  return 1.0;
}

uint32_t pseudoLine(const char *Name) {
  // Stable line attribution derived from the name so the code-link action
  // has something deterministic to jump to.
  uint32_t H = 2166136261u;
  for (const char *C = Name; *C; ++C)
    H = (H ^ static_cast<uint32_t>(*C)) * 16777619u;
  return 20 + H % 2400;
}

} // namespace

Profile generateLuleshProfile(const LuleshOptions &Options) {
  Rng R(Options.Seed);
  ProfileBuilder B(std::string("LULESH (") +
                   (Options.Variant == LuleshVariant::Original
                        ? "original"
                        : Options.Variant == LuleshVariant::WithTcmalloc
                              ? "tcmalloc"
                              : "tcmalloc+locality") +
                   ")");
  MetricId CpuTime = B.addMetric(MetricName, "nanoseconds");

  // 100 share points == 10 seconds of runtime.
  const double UsecPerShare = 100'000.0;

  for (const CostEntry &E : costModel()) {
    double Share = E.OriginalShare * variantFactor(E, Options.Variant);
    if (Share <= 0.0)
      continue;
    std::vector<FrameId> Path;
    for (auto [Func, Module] : E.Path) {
      bool InLulesh = std::string_view(Module) == LuleshBin;
      Path.push_back(B.functionFrame(Func, InLulesh ? LuleshSrc : "",
                                     InLulesh ? pseudoLine(Func) : 0,
                                     Module));
    }
    // Mild jitter mimics sampling noise; values round to the profiler's
    // quantum and are stored in nanoseconds.
    double TotalUsec = Share * UsecPerShare * (1.0 + 0.02 * R.normal());
    TotalUsec = std::max(Options.QuantumUsec,
                         std::round(TotalUsec / Options.QuantumUsec) *
                             Options.QuantumUsec);
    B.addSample(Path, CpuTime, TotalUsec * 1e3);
  }
  return B.take();
}

double luleshRuntimeUsec(const Profile &P) {
  MetricId M = P.findMetric(MetricName);
  if (M == Profile::InvalidMetric)
    return 0.0;
  return metricTotal(P, M) / 1e3;
}

namespace {

void collectStrings(const Profile &P, std::vector<std::string> &Procedures,
                    std::vector<std::string> &Files,
                    std::vector<std::string> &Modules) {
  auto Add = [](std::vector<std::string> &Table, std::string_view Text) {
    for (const std::string &S : Table)
      if (S == Text)
        return;
    Table.emplace_back(Text);
  };
  for (const Frame &F : P.frames()) {
    if (F.Kind == FrameKind::Root)
      continue;
    Add(Procedures, P.text(F.Name));
    Add(Files, P.text(F.Loc.File));
    Add(Modules, P.text(F.Loc.Module));
  }
}

size_t indexOf(const std::vector<std::string> &Table,
               std::string_view Text) {
  for (size_t I = 0; I < Table.size(); ++I)
    if (Table[I] == Text)
      return I;
  return 0;
}

void emitNode(const Profile &P, NodeId Id,
              const std::vector<std::string> &Procedures,
              const std::vector<std::string> &Files,
              const std::vector<std::string> &Modules, std::string &Out,
              unsigned Indent) {
  const CCTNode &Node = P.node(Id);
  const Frame &F = P.frameOf(Id);
  std::string Pad(Indent * 1, ' ');
  bool IsRoot = Id == P.root();
  if (!IsRoot) {
    Out += Pad + "<PF i=\"" + std::to_string(Id) + "\" n=\"" +
           std::to_string(indexOf(Procedures, P.text(F.Name))) + "\" f=\"" +
           std::to_string(indexOf(Files, P.text(F.Loc.File))) + "\" lm=\"" +
           std::to_string(indexOf(Modules, P.text(F.Loc.Module))) +
           "\" l=\"" + std::to_string(F.Loc.Line) + "\">\n";
    for (const MetricValue &MV : Node.Metrics)
      if (MV.Value != 0.0)
        Out += Pad + " <M n=\"0\" v=\"" +
               formatDouble(MV.Value / 1e3, 3) + "\"/>\n"; // ns -> usec
  }
  for (NodeId Child : Node.Children)
    emitNode(P, Child, Procedures, Files, Modules, Out,
             Indent + (IsRoot ? 0 : 1));
  if (!IsRoot)
    Out += Pad + "</PF>\n";
}

} // namespace

std::string generateLuleshExperimentXml(const LuleshOptions &Options) {
  Profile P = generateLuleshProfile(Options);
  std::vector<std::string> Procedures, Files, Modules;
  collectStrings(P, Procedures, Files, Modules);

  std::string Out = "<?xml version=\"1.0\"?>\n";
  Out += "<HPCToolkitExperiment version=\"2.2\">\n";
  Out += "<Header n=\"" + escapeXml(P.name()) + "\"/>\n";
  Out += "<SecCallPathProfile i=\"0\" n=\"lulesh\">\n<SecHeader>\n";
  Out += "<MetricTable>\n<Metric i=\"0\" n=\"" +
         escapeXml(MetricName) + "\" t=\"inclusive\"/>\n</MetricTable>\n";
  Out += "<LoadModuleTable>\n";
  for (size_t I = 0; I < Modules.size(); ++I)
    Out += "<LoadModule i=\"" + std::to_string(I) + "\" n=\"" +
           escapeXml(Modules[I]) + "\"/>\n";
  Out += "</LoadModuleTable>\n<FileTable>\n";
  for (size_t I = 0; I < Files.size(); ++I)
    Out += "<File i=\"" + std::to_string(I) + "\" n=\"" +
           escapeXml(Files[I]) + "\"/>\n";
  Out += "</FileTable>\n<ProcedureTable>\n";
  for (size_t I = 0; I < Procedures.size(); ++I)
    Out += "<Procedure i=\"" + std::to_string(I) + "\" n=\"" +
           escapeXml(Procedures[I]) + "\"/>\n";
  Out += "</ProcedureTable>\n</SecHeader>\n<SecCallPathProfileData>\n";
  emitNode(P, P.root(), Procedures, Files, Modules, Out, 0);
  Out += "</SecCallPathProfileData>\n</SecCallPathProfile>\n";
  Out += "</HPCToolkitExperiment>\n";
  return Out;
}

} // namespace workload
} // namespace ev
