//===- support/Clock.h - Wall vs. monotonic clock helpers -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two process clocks, named by what they are for. steady_clock's
/// epoch is arbitrary (commonly boot time), so its readings must never be
/// presented as wall timestamps or compared across processes; conversely
/// system_clock can step backwards under NTP, so it must never be used to
/// measure a duration or arm a deadline. Every call site in the tree picks
/// one of these helpers instead of touching <chrono> directly, which makes
/// the intent auditable:
///
///   wallMillis()  - user-facing timestamps (reply stamps, log lines,
///                   pvp/metrics snapshot times); comparable across
///                   processes and machines.
///   monoMillis()  - durations, deadlines, retry backoff.
///   monoMicros()  - span timing (support/Trace.h) and latency histograms.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_CLOCK_H
#define EASYVIEW_SUPPORT_CLOCK_H

#include <cstdint>

namespace ev {

/// Milliseconds since the Unix epoch on the system (wall) clock.
uint64_t wallMillis();

/// Milliseconds on the monotonic clock. The epoch is arbitrary: only
/// differences of two readings are meaningful, and only within this
/// process.
uint64_t monoMillis();

/// Microseconds on the monotonic clock (same epoch caveats as
/// monoMillis()).
uint64_t monoMicros();

} // namespace ev

#endif // EASYVIEW_SUPPORT_CLOCK_H
