//===- analysis/RuleRegistry.h - Unified analysis rule registry -----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One table over every analysis rule family — EVQL semantic checks
/// (analysis/Sema.h), profile lints (analysis/ProfileLint.h), and the
/// EVL3xx regression rules (analysis/Regression.h) — so `evtool check`,
/// `evtool lint`, and `evtool regress` render the same `--list-rules`
/// catalogue and validate `--disable` arguments identically, and
/// pvp/diagnostics and pvp/regressions reject unknown rule names with one
/// code path. The per-family registries stay authoritative; this module
/// is a thin deterministic concatenation.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_RULEREGISTRY_H
#define EASYVIEW_ANALYSIS_RULEREGISTRY_H

#include "analysis/Diagnostic.h"

#include <string>
#include <string_view>
#include <vector>

namespace ev {

/// Which analysis pass owns a rule.
enum class RuleCategory : uint8_t {
  Query,      ///< EVQL semantic checks (EVQLxxx).
  Lint,       ///< Profile lints (EVL1xx wire, EVL2xx decoded).
  Regression, ///< Differential cohort rules (EVL3xx).
};

/// \returns a stable lowercase name ("query", "lint", "regression").
std::string_view ruleCategoryName(RuleCategory Category);

/// One rule, any family.
struct RuleInfo {
  std::string_view Id;   ///< Stable id, e.g. "EVQL002" or "EVL304".
  std::string_view Name; ///< Stable kebab-case name.
  Severity DefaultSev;
  std::string_view Description;
  RuleCategory Category;
};

/// Every rule of every family, in (category, id) order.
const std::vector<RuleInfo> &allRules();

/// Looks a rule up by id or kebab-case name across every family.
/// \returns nullptr when unknown.
const RuleInfo *findRule(std::string_view IdOrName);

/// Renders the `--list-rules` catalogue shared by check/lint/regress —
/// every family, so EVL3xx shows up no matter which subcommand asked. The
/// per-rule shape matches the original lint listing:
///   EVL300  warning  exclusive-time-regression
///       <description>
std::string renderRuleList();

} // namespace ev

#endif // EASYVIEW_ANALYSIS_RULEREGISTRY_H
