//===- tests/chaos_test.cpp - Seeded fault-injection session tests --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays full PVP sessions (open -> flame -> diff -> query -> export)
/// through seeded fault schedules: truncated frames, bit flips, corrupt
/// Content-Length headers, inter-frame garbage, split reads, and transient
/// file-I/O failures. The invariants under every schedule:
///
///   - the server never crashes and every byte it emits is well-framed;
///   - wire-reader memory stays bounded no matter what arrives;
///   - after the chaos, the same session still answers valid requests.
///
/// Each seed is an independent, exactly-reproducible schedule.
///
//===----------------------------------------------------------------------===//

#include "analysis/ProfileLint.h"
#include "ide/JsonRpc.h"
#include "ide/PvpServer.h"
#include "proto/EvProf.h"
#include "support/Chaos.h"
#include "support/FileIo.h"
#include "support/Strings.h"

#include "TestHelpers.h"

#include <cstdio>
#include <gtest/gtest.h>

using namespace ev;

namespace {

/// The scripted session: two opens (diff needs a base and a test profile),
/// then flame, diff, query, and export against the ids the opens would be
/// assigned on a clean stream.
std::vector<std::string> sessionFrames(const std::string &BaseBytes,
                                       const std::string &TestBytes) {
  std::vector<std::string> Frames;
  auto Push = [&Frames](int64_t Id, const char *Method, json::Object P) {
    Frames.push_back(rpc::frame(rpc::makeRequest(Id, Method, std::move(P))));
  };

  json::Object OpenBase;
  OpenBase.set("name", "base.evprof");
  OpenBase.set("dataBase64", base64Encode(BaseBytes));
  Push(1, "pvp/open", std::move(OpenBase));

  json::Object OpenTest;
  OpenTest.set("name", "test.evprof");
  OpenTest.set("dataBase64", base64Encode(TestBytes));
  Push(2, "pvp/open", std::move(OpenTest));

  json::Object Flame;
  Flame.set("profile", 1);
  Flame.set("maxRects", 256);
  Push(3, "pvp/flame", std::move(Flame));

  json::Object Diff;
  Diff.set("base", 1);
  Diff.set("test", 2);
  Push(4, "pvp/diff", std::move(Diff));

  json::Object Query;
  Query.set("profile", 1);
  Query.set("program", "print total(\"time\");");
  Push(5, "pvp/query", std::move(Query));

  json::Object Export;
  Export.set("profile", 1);
  Export.set("format", "collapsed");
  Push(6, "pvp/export", std::move(Export));

  return Frames;
}

/// Deframes server output, asserting every frame parses cleanly.
size_t countWellFormedResponses(std::string_view Wire) {
  rpc::FrameReader Reader;
  Reader.feed(Wire);
  size_t N = 0;
  while (Reader.poll())
    ++N;
  EXPECT_TRUE(Reader.takeErrors().empty())
      << "server emitted a malformed frame";
  EXPECT_EQ(Reader.bufferedBytes(), 0u)
      << "server emitted a partial trailing frame";
  return N;
}

class ChaosSeed : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(ChaosSeed, FullSessionSurvivesFaultSchedule) {
  const uint64_t Seed = GetParam();
  chaos::FaultInjector Injector(Seed);

  ServerLimits Limits;
  Limits.Wire.MaxFrameBytes = 1u << 20;
  PvpServer Server(Limits);

  std::string BaseBytes = writeEvProf(test::makeFixedProfile());
  std::string TestBytes =
      writeEvProf(test::makeRandomProfile(Seed, /*Paths=*/40,
                                          /*MaxDepth=*/8, /*Functions=*/16));

  // Corrupt the scripted session per the seed's schedule and interleave
  // garbage between frames.
  std::string Wire;
  for (std::string &Frame : sessionFrames(BaseBytes, TestBytes)) {
    Wire += Injector.garbage(/*MaxLen=*/48);
    Wire += Injector.mutateFrame(std::move(Frame));
  }

  // Deliver through seeded split reads; boundaries land anywhere.
  std::string Out;
  chaos::ChaosStream Stream(std::move(Wire), Injector);
  while (std::optional<std::string> Fragment = Stream.next())
    Out += Server.handleWire(*Fragment);

  // Whatever happened on the way in, the way out is well-formed.
  countWellFormedResponses(Out);

  // Bounded memory: at most one in-flight frame plus a header block.
  EXPECT_LE(Server.wireReader().bufferedBytes(),
            Limits.Wire.MaxFrameBytes + Limits.Wire.MaxHeaderBytes);

  // The session is still alive: pristine opens round-trip again. A frame
  // truncated at the very end of the chaos stream may leave the reader
  // legitimately waiting for body bytes, which consume (and ruin) the
  // next frame fed — that is correct stream semantics, so allow the
  // client a bounded number of retries before declaring the session dead.
  int64_t NewId = -1;
  for (int Attempt = 0; Attempt < 3 && NewId < 0; ++Attempt) {
    json::Object Open;
    Open.set("name", "post-chaos.evprof");
    Open.set("dataBase64", base64Encode(BaseBytes));
    std::string PostOut = Server.handleWire(
        rpc::frame(rpc::makeRequest(100 + Attempt, "pvp/open", Open)));

    rpc::FrameReader Post;
    Post.feed(PostOut);
    while (std::optional<json::Value> Resp = Post.poll()) {
      const json::Value *ResultV = Resp->asObject().find("result");
      if (ResultV && ResultV->asObject().find("profile")) {
        NewId = ResultV->asObject().find("profile")->asInt();
        break;
      }
    }
  }
  ASSERT_GE(NewId, 0) << "session did not recover after the fault schedule";

  json::Object Summary;
  Summary.set("profile", NewId);
  std::string SumOut = Server.handleWire(
      rpc::frame(rpc::makeRequest(101, "pvp/summary", Summary)));
  EXPECT_NE(SumOut.find("result"), std::string::npos);
}

// The acceptance bar is >= 20 seeded schedules; run 24.
INSTANTIATE_TEST_SUITE_P(ChaosSchedules, ChaosSeed,
                         ::testing::Range<uint64_t>(0, 24));

//===----------------------------------------------------------------------===
// Injector mechanics
//===----------------------------------------------------------------------===

TEST(FaultInjector, SameSeedReplaysIdentically) {
  std::string BaseBytes = writeEvProf(test::makeFixedProfile());
  std::vector<std::string> Frames = sessionFrames(BaseBytes, BaseBytes);

  chaos::FaultInjector A(1234), B(1234);
  for (const std::string &Frame : Frames) {
    EXPECT_EQ(A.garbage(32), B.garbage(32));
    EXPECT_EQ(A.mutateFrame(Frame), B.mutateFrame(Frame));
  }
  EXPECT_EQ(A.faultCount(), B.faultCount());
  for (size_t K = 0; K < static_cast<size_t>(chaos::FaultKind::KindCount);
       ++K)
    EXPECT_EQ(A.faultCount(static_cast<chaos::FaultKind>(K)),
              B.faultCount(static_cast<chaos::FaultKind>(K)));
}

TEST(FaultInjector, ScheduleActuallyInjectsFaults) {
  // Across many seeds the default probabilities must produce every wire
  // fault kind somewhere; a silent no-op injector would pass the session
  // test vacuously.
  std::string BaseBytes = writeEvProf(test::makeFixedProfile());
  std::vector<std::string> Frames = sessionFrames(BaseBytes, BaseBytes);

  size_t Counts[static_cast<size_t>(chaos::FaultKind::KindCount)] = {};
  for (uint64_t Seed = 0; Seed < 64; ++Seed) {
    chaos::FaultInjector Injector(Seed);
    for (const std::string &Frame : Frames) {
      (void)Injector.garbage(32);
      (void)Injector.mutateFrame(Frame);
    }
    for (size_t K = 0; K < static_cast<size_t>(chaos::FaultKind::KindCount);
         ++K)
      Counts[K] += Injector.faultCount(static_cast<chaos::FaultKind>(K));
  }
  EXPECT_GT(Counts[static_cast<size_t>(chaos::FaultKind::Truncate)], 0u);
  EXPECT_GT(Counts[static_cast<size_t>(chaos::FaultKind::BitFlip)], 0u);
  EXPECT_GT(Counts[static_cast<size_t>(chaos::FaultKind::CorruptHeader)], 0u);
  EXPECT_GT(Counts[static_cast<size_t>(chaos::FaultKind::Garbage)], 0u);
}

TEST(ChaosStreamTest, DeliversEveryByteInOrder) {
  std::string Data;
  for (int I = 0; I < 997; ++I)
    Data.push_back(static_cast<char>(I * 31));

  chaos::FaultInjector Injector(7);
  chaos::ChaosStream Stream(Data, Injector);
  std::string Got;
  while (std::optional<std::string> Fragment = Stream.next())
    Got += *Fragment;
  EXPECT_EQ(Got, Data);
  EXPECT_TRUE(Stream.done());
  EXPECT_GT(Stream.fragmentsDelivered(), 1u);
}

TEST(ChaosTransientIo, BoundedRetryAlwaysRecovers) {
  std::string Path = "/tmp/evtool_test_chaos_io.evprof";
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  ASSERT_TRUE(writeFile(Path, Bytes).ok());

  chaos::FaultInjector Injector(99);
  size_t InjectedFailures = 0;
  setReadFaultHook([&](const std::string &, unsigned Attempt,
                       std::string &Message) {
    if (Injector.shouldFailRead(Attempt)) {
      ++InjectedFailures;
      Message = "chaos: transient read failure";
      return true;
    }
    return false;
  });
  setRetrySleepHook([](uint64_t) {});

  // The injector only fails attempts before the retry horizon, so the
  // default three-attempt policy recovers every single time.
  for (int It = 0; It < 64; ++It) {
    Result<std::string> R = readFileWithRetry(Path);
    ASSERT_TRUE(R.ok()) << R.error();
    EXPECT_EQ(*R, Bytes);
  }

  setReadFaultHook(nullptr);
  setRetrySleepHook(nullptr);
  std::remove(Path.c_str());

  EXPECT_GT(InjectedFailures, 0u)
      << "schedule never exercised the retry path";
  EXPECT_GT(Injector.faultCount(chaos::FaultKind::TransientIo), 0u);
}

//===----------------------------------------------------------------------===
// Lint engine on the chaos harness
//===----------------------------------------------------------------------===

class ChaosLintSeed : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(ChaosSchedules, ChaosLintSeed,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST_P(ChaosLintSeed, FaultedProfilesAreExplainedOrClean) {
  const uint64_t Seed = GetParam();
  chaos::FaultInjector Injector(Seed);
  Rng &R = Injector.rng();
  std::string Valid = writeEvProf(test::makeRandomProfile(Seed, /*Paths=*/60,
                                                          /*MaxDepth=*/10,
                                                          /*Functions=*/24));
  ProfileLinter Linter;
  for (int Round = 0; Round < 16; ++Round) {
    // Compose faults the way the injector schedules them on the wire:
    // truncation, byte corruption, and garbage splices.
    std::string Bytes = Valid;
    switch (R.below(3)) {
    case 0:
      Bytes.resize(R.below(Bytes.size()));
      break;
    case 1:
      for (int I = 0; I < 6 && !Bytes.empty(); ++I)
        Bytes[R.below(Bytes.size())] = static_cast<char>(R.below(256));
      break;
    default: {
      std::string Garbage = Injector.garbage(/*MaxLen=*/32);
      Bytes.insert(R.below(Bytes.size()), Garbage);
      break;
    }
    }
    // The contract under faults: lint never crashes, and any stream the
    // decoder refuses comes back explained by at least one finding.
    DiagnosticSet Diags(128);
    bool Decoded = Linter.lint(Bytes, DecodeLimits(), Diags);
    EXPECT_EQ(Decoded, readEvProf(Bytes).ok());
    if (!Decoded) {
      EXPECT_FALSE(Diags.empty()) << "seed " << Seed << " round " << Round;
    }
  }
}

//===----------------------------------------------------------------------===
// View cache transparency
//===----------------------------------------------------------------------===

namespace {

class ChaosCacheSeed : public ::testing::TestWithParam<uint64_t> {};

} // namespace

INSTANTIATE_TEST_SUITE_P(ChaosSchedules, ChaosCacheSeed,
                         ::testing::Range<uint64_t>(0, 24));

TEST_P(ChaosCacheSeed, CachedRepliesAreByteIdenticalToUncached) {
  // The memoized view cache must be invisible on the wire: the same session
  // replayed against a caching server and a cache-disabled server produces
  // byte-identical responses, including after a generation bump forces the
  // caching server to recompute.
  const uint64_t Seed = GetParam();
  Profile P = test::makeRandomProfile(Seed, /*Paths=*/60, /*MaxDepth=*/10,
                                      /*Functions=*/24);

  ServerLimits NoCache;
  NoCache.MaxCachedViews = 0;
  PvpServer Cached;
  PvpServer Uncached(NoCache);
  int64_t CachedId = Cached.addProfile(P);
  int64_t UncachedId = Uncached.addProfile(P);
  ASSERT_EQ(CachedId, UncachedId);

  auto Request = [&](int64_t Id, const char *Method,
                     json::Object Params) -> void {
    json::Value Req = rpc::makeRequest(Id, Method, std::move(Params));
    std::string A = Cached.handleMessage(Req).dump();
    std::string B = Uncached.handleMessage(Req).dump();
    EXPECT_EQ(A, B) << "seed " << Seed << " method " << Method;
  };

  json::Object Flame;
  Flame.set("profile", CachedId);
  Flame.set("maxRects", 128);
  json::Object Shaped;
  Shaped.set("profile", CachedId);
  Shaped.set("shape", Seed % 2 ? "bottom-up" : "flat");
  json::Object Bare;
  Bare.set("profile", CachedId);
  json::Object Transform;
  Transform.set("profile", CachedId);
  Transform.set("shape", "bottom-up");

  Request(1, "pvp/flame", Flame);
  Request(2, "pvp/flame", Flame); // Cache hit on the caching server.
  Request(3, "pvp/flame", Shaped);
  Request(4, "pvp/treeTable", Bare);
  Request(5, "pvp/summary", Bare);
  Request(6, "pvp/transform", Transform); // Bumps the generation.
  Request(7, "pvp/flame", Flame);         // Recompute, not a stale reply.
  Request(8, "pvp/treeTable", Bare);
  Request(9, "pvp/summary", Bare);
}
