//===- examples/hpc_locality.cpp - The Fig. 6/7 HPC case study ------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's §VII-C2 workflow on LULESH, combining two
/// profilers in one viewer:
///
///  1. HPCToolkit CPU profile -> bottom-up flame graph: `brk` in libc is
///     the hot leaf, rooted in memory management; substituting TCMalloc
///     models a ~30% whole-program speedup.
///  2. DrCCTProf reuse profile -> correlated three-pane view: select the
///     hot array allocation, then its use, to see the reuse in
///     CalcFBHourglassForceForElems; the locality fix models an
///     additional ~28% speedup.
///
//===----------------------------------------------------------------------===//

#include "analysis/MetricEngine.h"
#include "analysis/Transform.h"
#include "convert/Converters.h"
#include "render/AnsiRenderer.h"
#include "render/CorrelatedView.h"
#include "workload/LuleshWorkload.h"
#include "workload/ReuseWorkload.h"

#include <algorithm>
#include <cstdio>

using namespace ev;

int main() {
  // --- Step 1: open the HPCToolkit database (via the real converter).
  std::string Xml = workload::generateLuleshExperimentXml({});
  Result<Profile> Cpu = convert::fromHpctoolkit(Xml);
  if (!Cpu) {
    std::fprintf(stderr, "error: %s\n", Cpu.error().c_str());
    return 1;
  }

  // Bottom-up flame graph: hot leaves with their reversed call paths.
  Profile BottomUp = bottomUpTree(*Cpu);
  FlameGraph Flame(BottomUp, 0);
  AnsiOptions Ansi;
  Ansi.Columns = 100;
  Ansi.Color = false;
  Ansi.RootAtTop = false; // Leaves on top, like Fig. 6.
  std::printf("bottom-up flame graph (HPCToolkit CPUTIME):\n%s\n",
              renderAnsi(Flame, Ansi).c_str());

  // The top first-level context is the hottest leaf function.
  std::vector<HotNode> Hot;
  {
    MetricView View(BottomUp, 0);
    for (NodeId Child : BottomUp.node(BottomUp.root()).Children)
      Hot.push_back({Child, View.inclusive(Child)});
    std::sort(Hot.begin(), Hot.end(), [](const HotNode &A, const HotNode &B) {
      return A.Value > B.Value;
    });
  }
  std::printf("hot leaf functions (bottom-up first level):\n");
  for (size_t I = 0; I < Hot.size() && I < 5; ++I)
    std::printf("  %zu. %s!%s  (%.1f%% of runtime)\n", I + 1,
                std::string(
                    BottomUp.text(BottomUp.frameOf(Hot[I].Node).Loc.Module))
                    .c_str(),
                std::string(BottomUp.nameOf(Hot[I].Node)).c_str(),
                100.0 * Hot[I].Value / metricTotal(BottomUp, 0));

  // --- Step 2: model the allocator substitution (libc -> TCMalloc).
  double Original = workload::luleshRuntimeUsec(*Cpu);
  Profile Tc = workload::generateLuleshProfile(
      {11, workload::LuleshVariant::WithTcmalloc, 500.0});
  double WithTc = workload::luleshRuntimeUsec(Tc);
  std::printf("\nTCMalloc substitution: %.2fx speedup\n",
              Original / WithTc);

  // --- Step 3: the DrCCTProf reuse profile in the correlated view.
  workload::ReuseWorkload Reuse = workload::generateReuseWorkload();
  CorrelatedView View(Reuse.P, "reuse");
  std::printf("\n%s\n", View.renderText().c_str());

  // Select the hottest allocation, then the hottest use, as in Fig. 7.
  auto Pane0 = View.paneContexts(0);
  if (!Pane0.empty() && View.select(0, Pane0.front().first)) {
    auto Pane1 = View.paneContexts(1);
    if (!Pane1.empty() && View.select(1, Pane1.front().first)) {
      std::printf("after selecting allocation + use:\n%s\n",
                  View.renderText().c_str());
    }
  }

  // --- Step 4: model the locality fix (hoist + loop fusion).
  Profile Fixed = workload::generateLuleshProfile(
      {11, workload::LuleshVariant::WithLocalityFix, 500.0});
  double WithFix = workload::luleshRuntimeUsec(Fixed);
  std::printf("locality fix: additional %.2fx speedup (total %.2fx)\n",
              WithTc / WithFix, Original / WithFix);
  return 0;
}
