//===- render/DiffRenderer.h - Differential flame graph back end ----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rendering of differential profiles (paper Fig. 3): every context is
/// prefixed with its [A]/[D]/[+]/[-] tag, colored red (regression) or blue
/// (improvement) with saturation proportional to the relative change, and
/// the delta is quantified per node — beyond the color-only differential
/// flame graphs of prior work.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_RENDER_DIFFRENDERER_H
#define EASYVIEW_RENDER_DIFFRENDERER_H

#include "analysis/Diff.h"

#include <string>

namespace ev {

struct DiffRenderOptions {
  unsigned MaxDepth = 24;
  double MinFraction = 0.002; ///< Hide contexts below this share.
  unsigned WidthPx = 1200;
  unsigned RowHeightPx = 16;
};

/// Renders the diff as an indented text tree with tags and quantified
/// deltas, ordered hottest-first by |delta|.
std::string renderDiffText(const DiffResult &Diff,
                           const DiffRenderOptions &Options = {});

/// Renders a differential flame graph in SVG: geometry from the TEST
/// profile's inclusive values, colors from the tags.
std::string renderDiffSvg(const DiffResult &Diff,
                          const DiffRenderOptions &Options = {});

} // namespace ev

#endif // EASYVIEW_RENDER_DIFFRENDERER_H
