//===- render/HtmlRenderer.cpp - Self-contained HTML report ---------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "render/HtmlRenderer.h"

#include "analysis/MetricEngine.h"
#include "analysis/Transform.h"
#include "render/SvgRenderer.h"
#include "render/TreeTable.h"
#include "support/Strings.h"

namespace ev {

std::string renderSummaryText(const Profile &P) {
  std::string Out;
  Out += "profile: " + P.name() + "\n";
  Out += "contexts: " + std::to_string(P.nodeCount()) + "\n";
  Out += "frames: " + std::to_string(P.frames().size()) + "\n";
  Out += "context groups: " + std::to_string(P.groups().size()) + "\n";
  Out += "approx memory: " + formatBytes(
                                 static_cast<double>(P.approxMemoryBytes())) +
         "\n";
  for (MetricId M = 0; M < P.metrics().size(); ++M) {
    const MetricDescriptor &D = P.metrics()[M];
    Out += "metric " + D.Name + ": total " +
           formatMetric(metricTotal(P, M), D.Unit) + "\n";
    std::vector<HotNode> Hot = hottestExclusive(P, M, 3);
    for (const HotNode &H : Hot) {
      Out += "  hot: " + std::string(P.nameOf(H.Node)) + " (" +
             formatMetric(H.Value, D.Unit) + ")\n";
    }
  }
  return Out;
}

std::string renderHtmlReport(const Profile &P, const HtmlOptions &Options) {
  MetricId Metric =
      Options.Metric < P.metrics().size() ? Options.Metric : 0;
  std::string Out;
  Out += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  Out += "<title>" + escapeXml(P.name()) + " — EasyView report</title>\n";
  Out += "<style>body{font-family:monospace;margin:16px;}"
         "h2{border-bottom:1px solid #ccc;}pre{background:#f4f4f4;"
         "padding:8px;}</style></head><body>\n";
  Out += "<h1>" + escapeXml(P.name()) + "</h1>\n";

  Out += "<h2>Summary</h2>\n<pre>" + escapeXml(renderSummaryText(P)) +
         "</pre>\n";

  SvgOptions Svg;
  Svg.WidthPx = Options.WidthPx;

  Out += "<h2>Top-down flame graph</h2>\n";
  {
    FlameGraph Graph(P, Metric);
    Svg.Title = "top-down";
    Out += renderSvg(Graph, Svg);
  }
  if (Options.IncludeBottomUp) {
    Out += "<h2>Bottom-up flame graph</h2>\n";
    Profile BottomUp = bottomUpTree(P);
    MetricId M2 = Metric < BottomUp.metrics().size() ? Metric : 0;
    FlameGraph Graph(BottomUp, M2);
    Svg.Title = "bottom-up";
    Svg.Inverted = true;
    Out += renderSvg(Graph, Svg);
    Svg.Inverted = false;
  }
  if (Options.IncludeFlat) {
    Out += "<h2>Flat flame graph</h2>\n";
    Profile Flat = flatTree(P);
    MetricId M2 = Metric < Flat.metrics().size() ? Metric : 0;
    FlameGraph Graph(Flat, M2);
    Svg.Title = "flat (module / file / function)";
    Out += renderSvg(Graph, Svg);
  }
  if (Options.IncludeTreeTable) {
    Out += "<h2>Tree table (hot path expanded)</h2>\n";
    TreeTable Table(P);
    Table.expandHotPath(Metric);
    Out += "<pre>" + escapeXml(Table.renderText()) + "</pre>\n";
  }
  Out += "</body></html>\n";
  return Out;
}

} // namespace ev
