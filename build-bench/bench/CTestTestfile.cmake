# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-bench/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(easyview_bench_smoke "/root/repo/build-bench/bench/bench_pipeline" "--smoke" "--out=/root/repo/build-bench/bench/BENCH_pipeline_smoke.json")
set_tests_properties(easyview_bench_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
