# Empty dependencies file for bench_table2_userstudy.
# This may be replaced when dependencies are built.
