//===- profile/Columnar.h - SoA column segments for profiles --------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Columnar (structure-of-arrays) representation of a decoded profile: the
/// out-of-core layer under ProfileStore. Where profile/Profile.h is an
/// AoS object graph (one CCTNode per context, each owning two vectors),
/// a ColumnarProfile packs the same data into flat, cache-dense columns
/// inside ONE page-aligned arena block:
///
///   topology   Parents[n] FrameRefs[n] ChildOffsets[n+1] ChildIds[...]
///   metrics    MetricOffsets[n+1] MetricIds[...] MetricValues[...] (CSR,
///              exclusive values flattened in node order — the exact
///              iteration order the dense aggregate Matrix consumes)
///   frames     Kinds[f] Names[f] Files[f] Lines[f] Modules[f] Addrs[f]
///   strings    StringGlobal[s]   (local id -> shared interner id)
///   schema     metric name/unit ids (shared interner) + aggregation
///   groups     kind/metric/value + a contexts CSR
///
/// Strings are NOT stored per profile: every text is interned once into a
/// store-wide StringInterner (cross-profile dedup — a fleet cohort shares
/// one copy of every function/file/module name), and the columns hold ids.
/// Because the block is one contiguous allocation, spilling a cold profile
/// is a single sequential file write and faulting it back is an mmap plus
/// a validation pass — no protobuf decode, no allocation per node.
///
/// materialize() reconstructs the original AoS Profile exactly: the
/// round-trip Profile -> columnar -> spill -> mmap -> materialize yields
/// writeEvProf-byte-identical output (pinned by tests/store_test.cpp), so
/// nothing downstream can observe whether a profile was ever spilled.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_PROFILE_COLUMNAR_H
#define EASYVIEW_PROFILE_COLUMNAR_H

#include "profile/Profile.h"
#include "support/FileIo.h"
#include "support/Result.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>

namespace ev {

/// Magic bytes at the start of every spilled column-segment file.
inline constexpr std::string_view EvColMagic = "EVCOL1\n";

/// The store-wide deduplicating string table shared by every columnar
/// profile. A plain StringInterner is not safe to read while another
/// thread interns (the id->view vector reallocates), but analyses resolve
/// texts with no store lock held; this wrapper serializes writers and lets
/// readers proceed under a shared lock. Returned views stay valid after
/// the lock drops because the interner's arena addresses are stable.
class SharedStringTable {
public:
  StringId intern(std::string_view Text) {
    std::unique_lock<std::shared_mutex> Lock(Mutex);
    return Table.intern(Text);
  }
  std::string_view text(StringId Id) const {
    std::shared_lock<std::shared_mutex> Lock(Mutex);
    return Table.text(Id);
  }
  size_t size() const {
    std::shared_lock<std::shared_mutex> Lock(Mutex);
    return Table.size();
  }
  /// Bytes of deduplicated string payload (the irreducible set: budget
  /// eviction cannot reclaim it, so stats report it separately).
  size_t payloadBytes() const {
    std::shared_lock<std::shared_mutex> Lock(Mutex);
    return Table.payloadBytes();
  }

private:
  mutable std::shared_mutex Mutex;
  StringInterner Table;
};

/// Depth of every node from a parents column (root slot = InvalidNode),
/// in one prefix pass over parents-first order. The root's depth is
/// explicitly 0, and any malformed slot — the InvalidNode sentinel on a
/// non-root node, or a forward reference Parents[i] >= i — also maps to 0
/// instead of indexing out of bounds (crafted trees must never turn a
/// depth query into UB). Shared by the EVQL interpreter, the bytecode VM's
/// precomputed depth intrinsic, and columnar readers.
std::vector<uint32_t> depthsFromParents(std::span<const uint32_t> Parents);

class ColumnarProfile {
public:
  ColumnarProfile(ColumnarProfile &&) = default;
  ColumnarProfile &operator=(ColumnarProfile &&) = default;
  ColumnarProfile(const ColumnarProfile &) = delete;
  ColumnarProfile &operator=(const ColumnarProfile &) = delete;

  /// Converts \p P into columns, interning every string into \p Shared
  /// (the store-wide table). \p Shared must outlive the result and only
  /// grow — ids recorded here stay valid because the interner never
  /// reassigns them.
  static ColumnarProfile build(const Profile &P, SharedStringTable &Shared);

  /// Dumps the header page plus the column block to \p Path (one
  /// sequential write; strings stay in the shared interner and are not
  /// written). \returns the file size on success.
  Result<uint64_t> spillTo(const std::string &Path) const;

  /// Maps a spilled file back. The columns point straight into the
  /// read-only mapping (zero-copy fault); \p Shared must be the same
  /// interner the profile was built against. Every reference — global
  /// string ids, parents, frame refs, CSR offsets — is validated before
  /// the mapping is accepted, so a truncated or corrupt spill file is an
  /// error, never undefined behavior.
  static Result<ColumnarProfile> mapFrom(const std::string &Path,
                                         const SharedStringTable &Shared);

  /// Reconstructs the exact AoS Profile these columns were built from.
  Profile materialize() const;

  //===--------------------------------------------------------------------===
  // Column accessors (spans over the arena / mapping)
  //===--------------------------------------------------------------------===

  size_t nodeCount() const { return Counts.Nodes; }
  size_t frameCount() const { return Counts.Frames; }
  size_t stringCount() const { return Counts.Strings; }
  size_t metricCount() const { return Counts.Metrics; }
  size_t groupCount() const { return Counts.Groups; }

  /// Parent ids; the root's slot holds InvalidNode.
  std::span<const uint32_t> parents() const;
  std::span<const uint32_t> frameRefs() const;
  /// Children CSR: node i's children are childIds()[childOffsets()[i] ..
  /// childOffsets()[i+1]), in the original insertion order.
  std::span<const uint32_t> childOffsets() const;
  std::span<const uint32_t> childIds() const;
  /// Exclusive metric values CSR, flattened in node-then-declaration
  /// order (identical to iterating CCTNode::Metrics node by node).
  std::span<const uint32_t> metricOffsets() const;
  std::span<const uint32_t> metricIds() const;
  std::span<const double> metricValues() const;

  std::span<const uint8_t> frameKinds() const;
  /// Frame name/file/module columns hold LOCAL string ids (indices into
  /// stringGlobal()), preserving the original profile's table exactly.
  std::span<const uint32_t> frameNames() const;
  std::span<const uint32_t> frameFiles() const;
  std::span<const uint32_t> frameLines() const;
  std::span<const uint32_t> frameModules() const;
  std::span<const uint64_t> frameAddrs() const;

  /// Local string id -> shared interner id.
  std::span<const uint32_t> stringGlobal() const;

  /// Metric schema, as shared interner ids plus the aggregation byte.
  std::span<const uint32_t> metricNameIds() const;
  std::span<const uint32_t> metricUnitIds() const;
  std::span<const uint8_t> metricAggs() const;

  std::span<const uint32_t> groupKinds() const; ///< LOCAL string ids.
  std::span<const uint32_t> groupMetrics() const;
  std::span<const double> groupValues() const;
  std::span<const uint32_t> groupCtxOffsets() const;
  std::span<const uint32_t> groupCtxIds() const;

  /// Shared interner id of the profile label.
  uint32_t labelId() const { return Counts.LabelGlobal; }
  /// The store-wide string table the columns reference.
  const SharedStringTable &strings() const { return *Shared; }

  /// Resolved text of frame \p F's name (convenience for analyses).
  std::string_view frameNameText(uint32_t F) const {
    return Shared->text(stringGlobal()[frameNames()[F]]);
  }

  /// Per-node depths computed straight from the parents column (no AoS
  /// materialization); see depthsFromParents() for the guard semantics.
  std::vector<uint32_t> depthColumn() const {
    return depthsFromParents(parents());
  }

  /// Bytes of the column block resident in this process (arena bytes, or
  /// mapped bytes for a faulted profile — mapped pages occupy page cache
  /// and are accounted identically).
  size_t residentBytes() const { return Counts.BlockBytes; }
  /// True when the columns live in a read-only spill-file mapping.
  bool isMapped() const { return Mapping.valid(); }

  /// Fixed counts describing one column block; the column layout is a
  /// pure function of these (so the spill header stores only counts).
  struct Header {
    uint64_t Nodes = 0, Frames = 0, Strings = 0, Metrics = 0, Groups = 0;
    uint64_t ChildTotal = 0, ValueTotal = 0, GroupCtxTotal = 0;
    uint64_t BlockBytes = 0;
    uint32_t LabelGlobal = 0;
  };

private:
  ColumnarProfile() = default;

  const char *column(size_t Offset) const { return Block + Offset; }

  Header Counts;
  /// Owning storage for a resident block (aligned_alloc/free), empty when
  /// the block lives in Mapping.
  std::unique_ptr<char, void (*)(char *)> Arena{nullptr, nullptr};
  MappedFile Mapping;
  const char *Block = nullptr;
  const SharedStringTable *Shared = nullptr;
};

} // namespace ev

#endif // EASYVIEW_PROFILE_COLUMNAR_H
