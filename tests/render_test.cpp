//===- tests/render_test.cpp - Visualization layer tests ------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "render/AnsiRenderer.h"
#include "render/Color.h"
#include "render/CorrelatedView.h"
#include "render/DiffRenderer.h"
#include "render/FlameLayout.h"
#include "render/Histogram.h"
#include "render/HtmlRenderer.h"
#include "render/SvgRenderer.h"
#include "render/TreeTable.h"

#include "TestHelpers.h"
#include "analysis/Diff.h"
#include "analysis/Prune.h"
#include "workload/ReuseWorkload.h"

#include <gtest/gtest.h>

using namespace ev;

namespace {

NodeId findByName(const Profile &P, std::string_view Name) {
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    if (P.nameOf(Id) == Name)
      return Id;
  return InvalidNode;
}

} // namespace

//===----------------------------------------------------------------------===
// FlameLayout
//===----------------------------------------------------------------------===

TEST(FlameLayout, RootSpansFullWidth) {
  Profile P = test::makeFixedProfile();
  FlameGraph G(P, 0);
  ASSERT_FALSE(G.rects().empty());
  const FlameRect &Root = G.rects().front();
  EXPECT_EQ(Root.Node, P.root());
  EXPECT_DOUBLE_EQ(Root.X, 0.0);
  EXPECT_DOUBLE_EQ(Root.Width, 1.0);
  EXPECT_DOUBLE_EQ(G.totalValue(), 100.0);
}

TEST(FlameLayout, ChildrenNestWithinParents) {
  Profile P = test::makeRandomProfile(31);
  FlameGraph G(P, 0);
  // Index rects by node for parent lookup.
  std::vector<const FlameRect *> ByNode(P.nodeCount(), nullptr);
  for (const FlameRect &R : G.rects())
    ByNode[R.Node] = &R;
  for (const FlameRect &R : G.rects()) {
    if (R.Node == P.root())
      continue;
    const FlameRect *Parent = ByNode[P.node(R.Node).Parent];
    ASSERT_NE(Parent, nullptr);
    EXPECT_GE(R.X, Parent->X - 1e-12);
    EXPECT_LE(R.X + R.Width, Parent->X + Parent->Width + 1e-9);
    EXPECT_EQ(R.Depth, Parent->Depth + 1);
  }
}

TEST(FlameLayout, SiblingsDoNotOverlap) {
  Profile P = test::makeRandomProfile(32);
  FlameGraph G(P, 0);
  std::vector<const FlameRect *> ByNode(P.nodeCount(), nullptr);
  for (const FlameRect &R : G.rects())
    ByNode[R.Node] = &R;
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
    double LastEnd = -1.0;
    // Sorted-by-value children still lay out left to right.
    std::vector<const FlameRect *> Kids;
    for (NodeId Child : P.node(Id).Children)
      if (ByNode[Child])
        Kids.push_back(ByNode[Child]);
    std::sort(Kids.begin(), Kids.end(),
              [](const FlameRect *A, const FlameRect *B) {
                return A->X < B->X;
              });
    for (const FlameRect *Kid : Kids) {
      EXPECT_GE(Kid->X, LastEnd - 1e-9);
      LastEnd = Kid->X + Kid->Width;
    }
  }
}

TEST(FlameLayout, SortByValuePutsWidestFirst) {
  Profile P = test::makeFixedProfile();
  FlameGraph G(P, 0);
  // compute (75) should lay out left of parse (20) under main.
  size_t ComputeIdx = G.rectIndexFor(findByName(P, "compute"));
  size_t ParseIdx = G.rectIndexFor(findByName(P, "parse"));
  ASSERT_NE(ComputeIdx, FlameGraph::npos);
  ASSERT_NE(ParseIdx, FlameGraph::npos);
  EXPECT_LT(G.rects()[ComputeIdx].X, G.rects()[ParseIdx].X);
}

TEST(FlameLayout, InsertionOrderWhenSortDisabled) {
  Profile P = test::makeFixedProfile();
  FlameLayoutOptions Opt;
  Opt.SortByValue = false;
  FlameGraph G(P, 0, Opt);
  size_t ComputeIdx = G.rectIndexFor(findByName(P, "compute"));
  size_t ParseIdx = G.rectIndexFor(findByName(P, "parse"));
  // parse was inserted first.
  EXPECT_LT(G.rects()[ParseIdx].X, G.rects()[ComputeIdx].X);
}

TEST(FlameLayout, MinWidthCullsSubtrees) {
  Profile P = test::makeFixedProfile();
  FlameLayoutOptions Opt;
  Opt.MinWidth = 0.3; // parse (0.2) and memcpy (0.25) fall under this.
  FlameGraph G(P, 0, Opt);
  EXPECT_GT(G.culledCount(), 0u);
  EXPECT_EQ(G.rectIndexFor(findByName(P, "parse")), FlameGraph::npos);
  EXPECT_NE(G.rectIndexFor(findByName(P, "kernel")), FlameGraph::npos);
}

TEST(FlameLayout, MaxDepthLimitsRows) {
  Profile P = test::makeFixedProfile();
  FlameLayoutOptions Opt;
  Opt.MaxDepth = 2;
  FlameGraph G(P, 0, Opt);
  EXPECT_EQ(G.depth(), 2u);
  for (const FlameRect &R : G.rects())
    EXPECT_LT(R.Depth, 2u);
}

TEST(FlameLayout, SearchHighlights) {
  Profile P = test::makeFixedProfile();
  FlameGraph G(P, 0);
  EXPECT_EQ(G.search("kernel"), 1u);
  size_t Idx = G.rectIndexFor(findByName(P, "kernel"));
  EXPECT_TRUE(G.rects()[Idx].Highlighted);
  EXPECT_EQ(G.search(""), 0u);
  EXPECT_FALSE(G.rects()[Idx].Highlighted);
}

TEST(FlameLayout, HitTestFindsRect) {
  Profile P = test::makeFixedProfile();
  FlameGraph G(P, 0);
  const FlameRect *Hit = G.rectAt(0.0, 0);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Node, P.root());
  EXPECT_EQ(G.rectAt(0.5, 99), nullptr);
}

TEST(FlameLayout, EmptyMetricYieldsNoRects) {
  Profile P;
  P.addMetric("m", "count");
  FlameGraph G(P, 0);
  EXPECT_TRUE(G.rects().empty());
  EXPECT_DOUBLE_EQ(G.totalValue(), 0.0);
}

//===----------------------------------------------------------------------===
// Color
//===----------------------------------------------------------------------===

TEST(Color, DeterministicPerModule) {
  Profile P = test::makeFixedProfile();
  const Frame &Kernel = P.frameOf(findByName(P, "kernel"));
  EXPECT_EQ(colorForFrame(P, Kernel), colorForFrame(P, Kernel));
}

TEST(Color, MissingSourceMappingDims) {
  Profile P = test::makeFixedProfile();
  // memcpy has no file/line mapping; kernel does.
  Rgb Dimmed = colorForFrame(P, P.frameOf(findByName(P, "memcpy")));
  Rgb Bright = colorForFrame(P, P.frameOf(findByName(P, "kernel")));
  EXPECT_LT(static_cast<int>(Dimmed.R) + Dimmed.G + Dimmed.B,
            static_cast<int>(Bright.R) + Bright.G + Bright.B);
}

TEST(Color, HexFormat) {
  EXPECT_EQ(toHexColor({0xAB, 0x00, 0x10}), "#ab0010");
}

TEST(Color, DiffColorsFamilies) {
  Rgb Hot = diffColor(DiffTag::Increased, 1.0);
  Rgb Cold = diffColor(DiffTag::Decreased, 1.0);
  EXPECT_GT(Hot.R, Hot.B);
  EXPECT_GT(Cold.B, Cold.R);
  Rgb Neutral = diffColor(DiffTag::Common, 0.0);
  EXPECT_EQ(Neutral.R, Neutral.G);
}

//===----------------------------------------------------------------------===
// SVG / ANSI
//===----------------------------------------------------------------------===

TEST(SvgRenderer, ContainsNamesAndTooltips) {
  Profile P = test::makeFixedProfile();
  FlameGraph G(P, 0);
  SvgOptions Opt;
  Opt.Title = "unit <test>";
  std::string Svg = renderSvg(G, Opt);
  EXPECT_NE(Svg.find("<svg"), std::string::npos);
  EXPECT_NE(Svg.find("kernel"), std::string::npos);
  EXPECT_NE(Svg.find("comp.cc:30"), std::string::npos); // Tooltip.
  EXPECT_NE(Svg.find("unit &lt;test&gt;"), std::string::npos); // Escaped.
  EXPECT_EQ(Svg.find("<script"), std::string::npos); // Static document.
}

TEST(SvgRenderer, HighlightUsesSearchColor) {
  Profile P = test::makeFixedProfile();
  FlameGraph G(P, 0);
  G.search("kernel");
  std::string Svg = renderSvg(G);
  EXPECT_NE(Svg.find(toHexColor(searchHighlightColor())),
            std::string::npos);
}

TEST(AnsiRenderer, PlainAsciiWhenColorOff) {
  Profile P = test::makeFixedProfile();
  FlameGraph G(P, 0);
  AnsiOptions Opt;
  Opt.Color = false;
  Opt.Columns = 60;
  std::string Text = renderAnsi(G, Opt);
  EXPECT_EQ(Text.find('\x1b'), std::string::npos);
  EXPECT_NE(Text.find("main"), std::string::npos);
  // One line per depth level.
  EXPECT_EQ(static_cast<unsigned>(std::count(Text.begin(), Text.end(),
                                             '\n')),
            G.depth());
}

TEST(AnsiRenderer, ColorEmitsEscapes) {
  Profile P = test::makeFixedProfile();
  FlameGraph G(P, 0);
  AnsiOptions Opt;
  Opt.Columns = 40;
  std::string Text = renderAnsi(G, Opt);
  EXPECT_NE(Text.find("\x1b[48;2;"), std::string::npos);
}

//===----------------------------------------------------------------------===
// TreeTable
//===----------------------------------------------------------------------===

TEST(TreeTable, CollapsedByDefault) {
  Profile P = test::makeFixedProfile();
  TreeTable Table(P);
  std::vector<TreeTableRow> Rows = Table.rows();
  ASSERT_EQ(Rows.size(), 1u); // Only ROOT visible.
  EXPECT_TRUE(Rows[0].Expandable);
  EXPECT_FALSE(Rows[0].Expanded);
}

TEST(TreeTable, ExpandRevealsChildren) {
  Profile P = test::makeFixedProfile();
  TreeTable Table(P);
  Table.expand(P.root());
  std::vector<TreeTableRow> Rows = Table.rows();
  EXPECT_EQ(Rows.size(), 2u); // ROOT + main.
  Table.expand(findByName(P, "main"));
  EXPECT_EQ(Table.rows().size(), 4u); // + compute, parse.
  Table.collapse(P.root());
  EXPECT_EQ(Table.rows().size(), 1u);
}

TEST(TreeTable, ExpandAllShowsEverything) {
  Profile P = test::makeFixedProfile();
  TreeTable Table(P);
  Table.expandAll();
  EXPECT_EQ(Table.rows().size(), P.nodeCount());
}

TEST(TreeTable, ChildrenSortedByFirstMetric) {
  Profile P = test::makeFixedProfile();
  TreeTable Table(P);
  Table.expandAll();
  std::vector<TreeTableRow> Rows = Table.rows();
  // Under main, compute (75) must precede parse (20).
  size_t ComputeAt = 0, ParseAt = 0;
  for (size_t I = 0; I < Rows.size(); ++I) {
    if (P.nameOf(Rows[I].Node) == "compute")
      ComputeAt = I;
    if (P.nameOf(Rows[I].Node) == "parse")
      ParseAt = I;
  }
  EXPECT_LT(ComputeAt, ParseAt);
}

TEST(TreeTable, ExpandHotPathReachesHottestLeaf) {
  Profile P = test::makeFixedProfile();
  TreeTable Table(P);
  NodeId Leaf = Table.expandHotPath(0);
  EXPECT_EQ(P.nameOf(Leaf), "kernel");
  // The hot path rows are now visible.
  bool KernelVisible = false;
  for (const TreeTableRow &Row : Table.rows())
    if (Row.Node == Leaf)
      KernelVisible = true;
  EXPECT_TRUE(KernelVisible);
}

TEST(TreeTable, RenderTextHasColumnsAndGlyphs) {
  Profile P = test::makeFixedProfile();
  TreeTable Table(P);
  Table.expandHotPath(0);
  std::string Text = Table.renderText();
  EXPECT_NE(Text.find("time (incl/excl)"), std::string::npos);
  EXPECT_NE(Text.find("[-]"), std::string::npos); // Expanded glyph.
  EXPECT_NE(Text.find("@comp.cc:30"), std::string::npos);
}

TEST(TreeTable, MaxRowsCaps) {
  Profile P = test::makeRandomProfile(41, 500);
  TreeTableOptions Opt;
  Opt.MaxRows = 10;
  TreeTable Table(P, Opt);
  Table.expandAll();
  EXPECT_LE(Table.rows().size(), 10u);
}

//===----------------------------------------------------------------------===
// Histogram
//===----------------------------------------------------------------------===

TEST(Histogram, RebinAverages) {
  std::vector<double> Series = {1, 1, 3, 3};
  std::vector<double> Binned = rebinSeries(Series, 2);
  ASSERT_EQ(Binned.size(), 2u);
  EXPECT_DOUBLE_EQ(Binned[0], 1.0);
  EXPECT_DOUBLE_EQ(Binned[1], 3.0);
  EXPECT_EQ(rebinSeries(Series, 8).size(), 4u); // No upsampling.
}

TEST(Histogram, AsciiShowsTrend) {
  std::vector<double> Rising;
  for (int I = 0; I < 50; ++I)
    Rising.push_back(I);
  HistogramOptions Opt;
  Opt.Unit = "bytes";
  std::string Text = renderHistogramAscii(Rising, Opt);
  EXPECT_NE(Text.find("rising (possible leak)"), std::string::npos);

  std::vector<double> Falling(Rising.rbegin(), Rising.rend());
  Text = renderHistogramAscii(Falling, Opt);
  EXPECT_NE(Text.find("falling (reclaimed)"), std::string::npos);

  std::vector<double> Flat(50, 10.0);
  Text = renderHistogramAscii(Flat, Opt);
  EXPECT_NE(Text.find("trend=flat"), std::string::npos);
}

TEST(Histogram, AsciiHandlesEmpty) {
  EXPECT_NE(renderHistogramAscii({}).find("empty"), std::string::npos);
}

TEST(Histogram, SvgHasBars) {
  std::string Svg = renderHistogramSvg({1, 2, 3});
  EXPECT_NE(Svg.find("<svg"), std::string::npos);
  EXPECT_GE(static_cast<int>(std::count(Svg.begin(), Svg.end(), '<')), 4);
}

//===----------------------------------------------------------------------===
// Diff rendering
//===----------------------------------------------------------------------===

TEST(DiffRenderer, TextCarriesTagsAndDeltas) {
  Profile A = test::makeFixedProfile();
  Profile B = test::makeFixedProfile();
  NodeId KernelB = findByName(B, "kernel");
  B.node(KernelB).Metrics[0].Value = 80.0;
  DiffResult D = diffProfiles(A, B, 0);
  std::string Text = renderDiffText(D);
  EXPECT_NE(Text.find("[+] kernel"), std::string::npos);
  EXPECT_NE(Text.find("delta=+"), std::string::npos);
  EXPECT_NE(Text.find("base="), std::string::npos);
}

TEST(DiffRenderer, SvgShowsDeletedSubtrees) {
  Profile A = test::makeFixedProfile();
  Profile B = filterNodes(test::makeFixedProfile(),
                          [](const Profile &P, NodeId Id) {
                            return P.nameOf(Id) != "parse";
                          });
  DiffResult D = diffProfiles(A, B, 0);
  std::string Svg = renderDiffSvg(D);
  EXPECT_NE(Svg.find("[D]"), std::string::npos);
  EXPECT_NE(Svg.find("parse"), std::string::npos);
}

//===----------------------------------------------------------------------===
// Correlated view
//===----------------------------------------------------------------------===

TEST(CorrelatedView, PanesPopulateLeftToRight) {
  workload::ReuseWorkload W = workload::generateReuseWorkload();
  CorrelatedView View(W.P, "reuse");
  EXPECT_EQ(View.roleCount(), 3u);
  EXPECT_EQ(View.activeGroupCount(), W.P.groups().size());

  auto Pane0 = View.paneContexts(0);
  EXPECT_FALSE(Pane0.empty());
  // Pane 1 is gated on a selection in pane 0... it is reachable because
  // selection prefix length 0 allows pane 0 only.
  EXPECT_TRUE(View.paneContexts(1).empty());
}

TEST(CorrelatedView, SelectionFiltersGroups) {
  workload::ReuseWorkload W = workload::generateReuseWorkload();
  CorrelatedView View(W.P, "reuse");
  auto Pane0 = View.paneContexts(0);
  ASSERT_FALSE(Pane0.empty());
  ASSERT_TRUE(View.select(0, Pane0.front().first));
  EXPECT_LT(View.activeGroupCount(), W.P.groups().size() + 1);
  auto Pane1 = View.paneContexts(1);
  ASSERT_FALSE(Pane1.empty());
  ASSERT_TRUE(View.select(1, Pane1.front().first));
  auto Pane2 = View.paneContexts(2);
  EXPECT_FALSE(Pane2.empty());
}

TEST(CorrelatedView, InvalidSelectionRejected) {
  workload::ReuseWorkload W = workload::generateReuseWorkload();
  CorrelatedView View(W.P, "reuse");
  EXPECT_FALSE(View.select(2, 0)); // Pane 2 before pane 0.
  EXPECT_FALSE(View.select(0, 0)); // ROOT is not an allocation context.
}

TEST(CorrelatedView, ClearResetsSelection) {
  workload::ReuseWorkload W = workload::generateReuseWorkload();
  CorrelatedView View(W.P, "reuse");
  auto Pane0 = View.paneContexts(0);
  ASSERT_TRUE(View.select(0, Pane0.front().first));
  View.clearFrom(0);
  EXPECT_TRUE(View.selection().empty());
  EXPECT_EQ(View.activeGroupCount(), W.P.groups().size());
}

TEST(CorrelatedView, PaneProfileCarriesCallPaths) {
  workload::ReuseWorkload W = workload::generateReuseWorkload();
  CorrelatedView View(W.P, "reuse");
  Profile Pane = View.paneProfile(0);
  EXPECT_GT(Pane.nodeCount(), 1u);
  EXPECT_TRUE(Pane.verify().ok());
  // Allocation contexts keep their full call paths (main at the top).
  bool HasMain = false;
  for (NodeId Child : Pane.node(Pane.root()).Children)
    if (Pane.nameOf(Child) == "main")
      HasMain = true;
  EXPECT_TRUE(HasMain);
}

TEST(CorrelatedView, RenderTextListsPanes) {
  workload::ReuseWorkload W = workload::generateReuseWorkload();
  CorrelatedView View(W.P, "reuse");
  std::string Text = View.renderText();
  EXPECT_NE(Text.find("pane 0"), std::string::npos);
  EXPECT_NE(Text.find("pane 2"), std::string::npos);
}

//===----------------------------------------------------------------------===
// HTML report & summary
//===----------------------------------------------------------------------===

TEST(HtmlReport, ContainsAllSections) {
  Profile P = test::makeFixedProfile();
  std::string Html = renderHtmlReport(P);
  EXPECT_NE(Html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(Html.find("Top-down flame graph"), std::string::npos);
  EXPECT_NE(Html.find("Bottom-up flame graph"), std::string::npos);
  EXPECT_NE(Html.find("Flat flame graph"), std::string::npos);
  EXPECT_NE(Html.find("Tree table"), std::string::npos);
  EXPECT_NE(Html.find("http"), std::string::npos); // Only the xmlns.
}

TEST(SummaryText, ListsMetricsAndHotspots) {
  Profile P = test::makeFixedProfile();
  std::string Text = renderSummaryText(P);
  EXPECT_NE(Text.find("contexts: 6"), std::string::npos);
  EXPECT_NE(Text.find("metric time"), std::string::npos);
  EXPECT_NE(Text.find("kernel"), std::string::npos);
}
