//===- ide/PvpServer.cpp - Profile Viewer Protocol server -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ide/PvpServer.h"

#include "ide/ViewDelta.h"

#include "analysis/Butterfly.h"
#include "analysis/Diff.h"
#include "analysis/FleetAggregate.h"
#include "analysis/MetricEngine.h"
#include "analysis/ProfileLint.h"
#include "analysis/Prune.h"
#include "analysis/Regression.h"
#include "analysis/RuleRegistry.h"
#include "analysis/Sema.h"
#include "analysis/Transform.h"
#include "convert/Converters.h"
#include "convert/Exporters.h"
#include "proto/EvProf.h"
#include "render/CorrelatedView.h"
#include "query/Interpreter.h"
#include "query/Parser.h"
#include "query/Vm.h"
#include "render/CodeAnnotations.h"
#include "render/DiffRenderer.h"
#include "render/FlameLayout.h"
#include "render/HtmlRenderer.h"
#include "render/TreeTable.h"
#include "support/Clock.h"
#include "support/Strings.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>
#include <optional>

namespace ev {

namespace {

/// The exact diagnostic a handler returns when it bails on the deadline;
/// dispatch() maps it to the RequestTimeout error code.
constexpr const char *DeadlineDiag = "request deadline exceeded";

/// The exact diagnostic doSubscribe returns at the subscription cap;
/// dispatch() maps it to the SubscriptionLimit error code.
constexpr const char *SubLimitDiag =
    "session is at its live-subscription cap";

/// Pinned handles for the sub.* counters (docs/OBSERVABILITY.md). The
/// bytes pair is what makes the compactness claim auditable in production:
/// sub.deltaBytes / sub.fullViewBytes is the fleet-wide delta ratio.
struct SubMetrics {
  telemetry::Counter &Subscribed;
  telemetry::Counter &Unsubscribed;
  telemetry::Counter &Acks;
  telemetry::Counter &Pushes;
  telemetry::Counter &Ended;
  telemetry::Counter &FullFallbacks;
  telemetry::Counter &DeltaBytes;
  telemetry::Counter &FullViewBytes;

  static SubMetrics &get() {
    telemetry::Registry &R = telemetry::Registry::global();
    static SubMetrics M{R.counter("sub.subscribed"),
                        R.counter("sub.unsubscribed"),
                        R.counter("sub.acks"),
                        R.counter("sub.pushes"),
                        R.counter("sub.ended"),
                        R.counter("sub.fullFallbacks"),
                        R.counter("sub.deltaBytes"),
                        R.counter("sub.fullViewBytes")};
    return M;
  }
};

/// Strict integer extraction: \returns false when \p Key is absent, not a
/// number, or a number that is not exactly representable as int64 (NaN,
/// infinity, fractional, or out of range). Every id-like parameter goes
/// through this so a hostile 1e300 or NaN becomes a clean InvalidParams
/// error instead of undefined behavior in the double-to-int cast.
bool intParam(const json::Object &Params, std::string_view Key,
              int64_t &Out) {
  const json::Value *V = Params.find(Key);
  return V && V->getInteger(Out);
}

} // namespace

PvpServer::PvpServer(ServerLimits Limits)
    : PvpServer(Limits, std::make_shared<ProfileStore>(),
                std::make_shared<ViewCache>(Limits.MaxCachedViews,
                                            /*Shards=*/1)) {}

PvpServer::PvpServer(ServerLimits Limits, std::shared_ptr<ProfileStore> Store,
                     std::shared_ptr<ViewCache> Cache)
    : Limits(Limits), Store(std::move(Store)), Reader(Limits.Wire),
      NowMs(monoMillis), Cache(std::move(Cache)) {
  // Arm the out-of-core budget (profile/Columnar.h). Best-effort: an
  // unwritable spill directory leaves the store unbudgeted rather than
  // failing construction — the server still works, it just holds
  // everything resident. Re-applying the same budget to an already shared,
  // already budgeted store is harmless (setBudget is idempotent for equal
  // arguments).
  if (Limits.StoreBudgetBytes != 0 && !Limits.SpillDir.empty())
    (void)this->Store->setBudget(Limits.StoreBudgetBytes, Limits.SpillDir);
}

void PvpServer::setClock(std::function<uint64_t()> Clock) {
  // Deadlines are durations, so the default is the MONOTONIC clock
  // (support/Clock.h): the wall clock can step backwards under NTP and
  // would fire or starve deadlines spuriously.
  NowMs = Clock ? std::move(Clock) : monoMillis;
}

bool PvpServer::deadlineExpired() const {
  return RequestDeadline != 0 && NowMs() > RequestDeadline;
}

int64_t PvpServer::addProfile(Profile P) {
  int64_t Id = Store->add(std::move(P));
  Owned.insert(Id);
  return Id;
}

const Profile *PvpServer::profile(int64_t Id) const {
  // The raw pointer stays valid while the store holds the profile, i.e.
  // until this session closes it (sequential embedders never race that).
  return profileHandle(Id).get();
}

std::shared_ptr<const Profile> PvpServer::profileHandle(int64_t Id) const {
  if (!Owned.count(Id))
    return nullptr;
  return Store->get(Id);
}

Result<std::shared_ptr<const Profile>>
PvpServer::lookup(const json::Object &Params, std::string_view Key) const {
  int64_t Id;
  if (!intParam(Params, Key, Id))
    return makeError("missing numeric '" + std::string(Key) + "' parameter");
  std::shared_ptr<const Profile> P = profileHandle(Id);
  if (!P)
    return makeError("no profile with id " + std::to_string(Id));
  return P;
}

namespace {

/// Resolves the metric parameter: numeric index, name string, or default 0.
Result<MetricId> metricParam(const Profile &P, const json::Object &Params) {
  const json::Value *MV = Params.find("metric");
  if (!MV) {
    if (P.metrics().empty())
      return makeError("profile has no metrics");
    return MetricId(0);
  }
  if (MV->isNumber()) {
    int64_t Id;
    if (!MV->getInteger(Id) || Id < 0 ||
        static_cast<size_t>(Id) >= P.metrics().size())
      return makeError("metric index out of range");
    return static_cast<MetricId>(Id);
  }
  if (MV->isString()) {
    MetricId Id = P.findMetric(MV->asString());
    if (Id == Profile::InvalidMetric)
      return makeError("unknown metric '" + MV->asString() + "'");
    return Id;
  }
  return makeError("'metric' must be an index or a name");
}

Result<NodeId> nodeParam(const Profile &P, const json::Object &Params) {
  int64_t Id;
  const json::Value *NV = Params.find("node");
  if (!NV || !NV->isNumber())
    return makeError("missing numeric 'node' parameter");
  if (!NV->getInteger(Id) || Id < 0 ||
      static_cast<size_t>(Id) >= P.nodeCount())
    return makeError("node id out of range");
  return static_cast<NodeId>(Id);
}

} // namespace

Result<json::Value> PvpServer::doOpen(const json::Object &Params) {
  const json::Value *NameV = Params.find("name");
  std::string Name(NameV ? NameV->stringOr("profile") : "profile");

  std::string Bytes;
  if (const json::Value *DataV = Params.find("data");
      DataV && DataV->isString()) {
    Bytes = DataV->asString();
  } else if (const json::Value *B64 = Params.find("dataBase64");
             B64 && B64->isString()) {
    if (B64->asString().size() / 4 * 3 > Limits.MaxOpenBytes)
      return makeError("profile payload exceeds the open size limit");
    if (!base64Decode(B64->asString(), Bytes))
      return makeError("invalid base64 in 'dataBase64'");
  } else if (const json::Value *PathV = Params.find("path");
             PathV && PathV->isString()) {
    // File loads retry with bounded exponential backoff: an editor saving
    // over the profile mid-read is transient, not fatal.
    Result<std::string> Read =
        readFileWithRetry(PathV->asString(), Limits.OpenRetry);
    if (!Read)
      return makeError(Read.error());
    Bytes = Read.take();
    if (NameV == nullptr)
      Name = PathV->asString();
  } else {
    return makeError("pvp/open needs 'data', 'dataBase64', or 'path'");
  }
  if (Bytes.size() > Limits.MaxOpenBytes)
    return makeError("profile payload of " + std::to_string(Bytes.size()) +
                     " bytes exceeds the open size limit");

  Result<Profile> P = convert::load(Bytes, Name, Limits.Decode);
  if (!P)
    return makeError(P.error());
  Result<bool> Ok = P->verify();
  if (!Ok)
    return makeError("loaded profile failed verification: " + Ok.error());

  auto Stored = std::make_shared<const Profile>(P.take());
  int64_t Id = Store->add(Stored);
  Owned.insert(Id);
  json::Object Out;
  Out.set("profile", Id);
  Out.set("nodes", Stored->nodeCount());
  json::Array Metrics;
  for (const MetricDescriptor &M : Stored->metrics()) {
    json::Object MO;
    MO.set("name", M.Name);
    MO.set("unit", M.Unit);
    Metrics.push_back(std::move(MO));
  }
  Out.set("metrics", std::move(Metrics));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doAppend(const json::Object &Params) {
  int64_t Id;
  if (!intParam(Params, "profile", Id))
    return makeError("missing numeric 'profile' parameter");
  if (!Owned.count(Id))
    return makeError("no profile with id " + std::to_string(Id));

  std::string Bytes;
  if (const json::Value *DataV = Params.find("data");
      DataV && DataV->isString()) {
    Bytes = DataV->asString();
  } else if (const json::Value *B64 = Params.find("dataBase64");
             B64 && B64->isString()) {
    if (B64->asString().size() / 4 * 3 > Limits.MaxOpenBytes)
      return makeError("append payload exceeds the open size limit");
    if (!base64Decode(B64->asString(), Bytes))
      return makeError("invalid base64 in 'dataBase64'");
  } else {
    return makeError("pvp/append needs 'data' or 'dataBase64'");
  }
  if (Bytes.size() > Limits.MaxOpenBytes)
    return makeError("append payload of " + std::to_string(Bytes.size()) +
                     " bytes exceeds the open size limit");

  // The store decodes incrementally (arbitrary chunking), swaps in a new
  // immutable snapshot, and bumps the generation — which is what retires
  // cached views and makes publishSubscriptions() push deltas after this
  // request completes.
  Result<size_t> Added = Store->append(Id, Bytes, Limits.Decode);
  if (!Added)
    return makeError(Added.error());

  std::shared_ptr<const Profile> P = Store->get(Id);
  json::Object Out;
  Out.set("profile", Id);
  Out.set("nodesAdded", static_cast<uint64_t>(*Added));
  Out.set("nodes", P ? P->nodeCount() : 0);
  Out.set("generation", Store->generationOf(Id));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doClose(const json::Object &Params) {
  int64_t Id;
  if (!intParam(Params, "profile", Id))
    return makeError("missing numeric 'profile' parameter");
  bool Removed = Owned.erase(Id) > 0;
  if (Removed)
    Store->drop(Id);
  Aggregates.erase(Id);
  Store->bumpGeneration(Id);
  json::Object Out;
  Out.set("closed", Removed);
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::computeView(const std::string &Method,
                                           const json::Object &ViewParams) {
  // Going through dispatch() (not doFlame/doTreeTable directly) buys two
  // properties: the shared view cache serves repeated computations, and
  // the payload is bit-for-bit what an explicit re-query of the same
  // params would return — the identity the delta codec is tested against.
  json::Value Envelope = dispatch(Method, ViewParams, /*Id=*/0);
  const json::Object &Obj = Envelope.asObject();
  if (const json::Value *Err = Obj.find("error")) {
    std::string Message = "view computation failed";
    if (Err->isObject())
      if (const json::Value *MV = Err->asObject().find("message"))
        Message = std::string(MV->stringOr(Message));
    return makeError(Message);
  }
  const json::Value *ResultV = Obj.find("result");
  if (!ResultV)
    return makeError("view computation produced no result");
  return *ResultV;
}

Result<json::Value> PvpServer::doSubscribe(const json::Object &Params) {
  if (Subs.size() >= Limits.MaxSubscriptionsPerSession)
    return makeError(SubLimitDiag);
  int64_t Id;
  if (!intParam(Params, "profile", Id))
    return makeError("missing numeric 'profile' parameter");
  if (!Owned.count(Id))
    return makeError("no profile with id " + std::to_string(Id));

  const json::Value *ViewV = Params.find("view");
  if (!ViewV || !ViewV->isString())
    return makeError("missing 'view' parameter (flame or treeTable)");
  std::string Method, RowsKey;
  if (ViewV->asString() == "flame") {
    Method = "pvp/flame";
    RowsKey = "rects";
  } else if (ViewV->asString() == "treeTable") {
    Method = "pvp/treeTable";
    RowsKey = "rows";
  } else {
    return makeError("unknown view '" + ViewV->asString() +
                     "' (flame, treeTable)");
  }

  json::Object ViewParams;
  ViewParams.set("profile", Id);
  if (const json::Value *PV = Params.find("params")) {
    if (!PV->isObject())
      return makeError("'params' must be an object");
    for (const auto &[Key, V] : PV->asObject())
      if (Key != "profile")
        ViewParams.set(Key, V);
  }

  uint64_t Gen = Store->generationOf(Id);
  Result<json::Value> View = computeView(Method, ViewParams);
  if (!View)
    return makeError(View.error());

  int64_t SubId = NextSubId++;
  Subscription &S = Subs[SubId];
  S.ProfileId = Id;
  S.Method = std::move(Method);
  S.RowsKey = std::move(RowsKey);
  S.ViewParams = std::move(ViewParams);
  S.AckedGen = Gen;
  S.AckedView = *View;
  S.PushedGen = Gen;
  S.Sink = CurrentNotify;
  SubMetrics::get().Subscribed.add();

  json::Object Out;
  Out.set("subscription", SubId);
  Out.set("profile", Id);
  Out.set("generation", Gen);
  Out.set("view", *View);
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doAck(const json::Object &Params) {
  int64_t SubId;
  if (!intParam(Params, "subscription", SubId))
    return makeError("missing numeric 'subscription' parameter");
  auto It = Subs.find(SubId);
  if (It == Subs.end())
    return makeError("no subscription with id " + std::to_string(SubId));
  int64_t Gen;
  if (!intParam(Params, "generation", Gen) || Gen < 0)
    return makeError("missing numeric 'generation' parameter");

  Subscription &S = It->second;
  bool Acked = false;
  if (static_cast<uint64_t>(Gen) == S.AckedGen) {
    // Replay (reconnect, duplicate ack): already the delta base.
    Acked = true;
  } else if (static_cast<uint64_t>(Gen) == S.PushedGen &&
             !S.PushedView.isNull()) {
    // Promote the pushed view to the delta base: from here deltas diff
    // against state the client has confirmed applying.
    S.AckedView = std::move(S.PushedView);
    S.PushedView = json::Value();
    S.AckedGen = S.PushedGen;
    Acked = true;
  }
  // Any other generation is stale (superseded by a newer push): refuse
  // the promotion, keep diffing from the last good ack. Correct, just
  // larger deltas until the client catches up.
  if (Acked)
    SubMetrics::get().Acks.add();
  json::Object Out;
  Out.set("subscription", SubId);
  Out.set("acked", Acked);
  Out.set("generation", S.AckedGen);
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doUnsubscribe(const json::Object &Params) {
  int64_t SubId;
  if (!intParam(Params, "subscription", SubId))
    return makeError("missing numeric 'subscription' parameter");
  bool Removed = Subs.erase(SubId) > 0;
  if (Removed)
    SubMetrics::get().Unsubscribed.add();
  json::Object Out;
  Out.set("removed", Removed);
  return json::Value(std::move(Out));
}

void PvpServer::endSubscription(int64_t SubId, const Subscription &S,
                                const std::string &Reason) {
  SubMetrics::get().Ended.add();
  json::Object P;
  P.set("subscription", SubId);
  P.set("profile", S.ProfileId);
  P.set("reason", Reason);
  if (S.Sink)
    S.Sink(rpc::makeNotification("pvp/subscriptionEnd",
                                 json::Value(std::move(P))));
}

size_t PvpServer::publishSubscriptions() {
  if (Subs.empty())
    return 0;
  SubMetrics &M = SubMetrics::get();
  size_t Pushed = 0;
  std::vector<int64_t> Ended;
  for (auto &[SubId, S] : Subs) {
    if (!Owned.count(S.ProfileId) || !Store->get(S.ProfileId)) {
      endSubscription(SubId, S, "profile closed");
      Ended.push_back(SubId);
      continue;
    }
    uint64_t Gen = Store->generationOf(S.ProfileId);
    // Nothing new past what the client holds (AckedGen) or was already
    // sent (PushedGen): no push. An unacked push followed by ANOTHER bump
    // re-enters here and diffs AckedView -> newest — pushes are
    // idempotent against the acked base, never chained on each other.
    if (Gen == S.AckedGen || Gen == S.PushedGen)
      continue;
    Result<json::Value> View = computeView(S.Method, S.ViewParams);
    if (!View) {
      endSubscription(SubId, S, View.error());
      Ended.push_back(SubId);
      continue;
    }
    ViewDeltaStats DS;
    std::string Delta =
        encodeViewDelta(S.AckedView, *View, S.RowsKey, S.AckedGen, Gen, &DS);
    M.Pushes.add();
    M.DeltaBytes.add(Delta.size());
    M.FullViewBytes.add(View->dump().size());
    if (DS.FullFallback)
      M.FullFallbacks.add();

    json::Object P;
    P.set("subscription", SubId);
    P.set("profile", S.ProfileId);
    P.set("fromGeneration", S.AckedGen);
    P.set("toGeneration", Gen);
    P.set("deltaBase64", base64Encode(Delta));
    if (S.Sink)
      S.Sink(rpc::makeNotification("pvp/viewDelta", json::Value(std::move(P))));
    S.PushedGen = Gen;
    S.PushedView = std::move(*View);
    ++Pushed;
  }
  for (int64_t SubId : Ended)
    Subs.erase(SubId);
  return Pushed;
}

std::vector<json::Value> PvpServer::takeNotifications() {
  std::vector<json::Value> Out;
  Out.swap(QueuedNotifications);
  return Out;
}

Result<json::Value> PvpServer::doFlame(const json::Object &Params) {
  Result<std::shared_ptr<const Profile>> P = lookup(Params);
  if (!P)
    return makeError(P.error());

  std::string Shape = "top-down";
  if (const json::Value *SV = Params.find("shape"); SV && SV->isString())
    Shape = SV->asString();

  // Shape transforms produce a temporary tree; the geometry refers to it,
  // so node ids in the reply are resolved back to names eagerly.
  Profile Shaped;
  const Profile *View = P->get();
  if (Shape == "bottom-up") {
    Shaped = bottomUpTree(**P, ActiveCancel);
    View = &Shaped;
  } else if (Shape == "flat") {
    Shaped = flatTree(**P, ActiveCancel);
    View = &Shaped;
  } else if (Shape != "top-down") {
    return makeError("unknown shape '" + Shape +
                     "' (top-down, bottom-up, flat)");
  }

  Result<MetricId> Metric = metricParam(*View, Params);
  if (!Metric)
    return makeError(Metric.error());

  size_t MaxRects = 4096;
  if (const json::Value *MR = Params.find("maxRects"); MR) {
    int64_t Requested;
    if (!MR->getInteger(Requested) || Requested < 0)
      return makeError("'maxRects' must be a non-negative integer");
    MaxRects = static_cast<size_t>(Requested);
  }
  // Oversized budgets degrade to the server ceiling rather than erroring:
  // the reply is marked truncated and stays renderable.
  MaxRects = std::min(MaxRects, Limits.MaxFlameRects);

  FlameGraph Graph(*View, *Metric);
  json::Object Out;
  Out.set("total", Graph.totalValue());
  Out.set("culled", Graph.culledCount());
  Out.set("depth", Graph.depth());
  json::Array Rects;
  for (const FlameRect &R : Graph.rects()) {
    if (Rects.size() >= MaxRects)
      break;
    if ((Rects.size() & 1023) == 0) {
      ActiveCancel.checkpoint();
      if (deadlineExpired())
        return makeError(DeadlineDiag);
    }
    json::Object RO;
    RO.set("node", R.Node);
    RO.set("depth", R.Depth);
    RO.set("x", R.X);
    RO.set("width", R.Width);
    RO.set("value", R.Value);
    RO.set("name", std::string(View->nameOf(R.Node)));
    RO.set("color", toHexColor(R.Color));
    Rects.push_back(std::move(RO));
  }
  Out.set("truncated", Graph.rects().size() > Rects.size());
  Out.set("droppedRects", Graph.rects().size() - Rects.size());
  Out.set("rects", std::move(Rects));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doTreeTable(const json::Object &Params) {
  Result<std::shared_ptr<const Profile>> P = lookup(Params);
  if (!P)
    return makeError(P.error());
  TreeTable Table(**P);
  if (const json::Value *ExpandV = Params.find("expand");
      ExpandV && ExpandV->isArray()) {
    for (const json::Value &NV : ExpandV->asArray()) {
      int64_t Node;
      if (NV.getInteger(Node) && Node >= 0 &&
          static_cast<size_t>(Node) < (*P)->nodeCount())
        Table.expand(static_cast<NodeId>(Node));
    }
  } else if (!(*P)->metrics().empty()) {
    Table.expandHotPath(0);
  }
  json::Object Out;
  json::Array Rows;
  size_t Total = 0;
  for (const TreeTableRow &Row : Table.rows()) {
    ++Total;
    // Tables beyond the ceiling truncate rather than error; the editor
    // still gets a renderable prefix plus the truncation marker.
    if (Rows.size() >= Limits.MaxTreeTableRows)
      continue;
    if ((Rows.size() & 1023) == 0) {
      ActiveCancel.checkpoint();
      if (deadlineExpired())
        return makeError(DeadlineDiag);
    }
    json::Object RO;
    RO.set("node", Row.Node);
    RO.set("depth", Row.Depth);
    RO.set("name", std::string((*P)->nameOf(Row.Node)));
    RO.set("expandable", Row.Expandable);
    RO.set("expanded", Row.Expanded);
    Rows.push_back(std::move(RO));
  }
  Out.set("truncated", Total > Rows.size());
  Out.set("droppedRows", Total - Rows.size());
  Out.set("rows", std::move(Rows));
  // Subscriptions pass includeText:false — the rendered text is O(table)
  // and rewrites wholesale on every generation, which would dominate the
  // delta; the row objects alone reconstruct the table.
  bool IncludeText = true;
  if (const json::Value *IT = Params.find("includeText"); IT && IT->isBool())
    IncludeText = IT->asBool();
  if (IncludeText)
    Out.set("text", Table.renderText());
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doCodeLink(const json::Object &Params) {
  Result<std::shared_ptr<const Profile>> P = lookup(Params);
  if (!P)
    return makeError(P.error());
  Result<NodeId> Node = nodeParam(**P, Params);
  if (!Node)
    return makeError(Node.error());
  const Frame &F = (*P)->frameOf(*Node);
  json::Object Out;
  Out.set("available", F.Loc.hasSourceMapping());
  Out.set("file", std::string((*P)->text(F.Loc.File)));
  Out.set("line", F.Loc.Line);
  Out.set("module", std::string((*P)->text(F.Loc.Module)));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doHover(const json::Object &Params) {
  Result<std::shared_ptr<const Profile>> P = lookup(Params);
  if (!P)
    return makeError(P.error());
  Result<NodeId> Node = nodeParam(**P, Params);
  if (!Node)
    return makeError(Node.error());

  json::Object Out;
  Out.set("contents", hoverText(**P, *Node));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doCodeLens(const json::Object &Params) {
  Result<std::shared_ptr<const Profile>> P = lookup(Params);
  if (!P)
    return makeError(P.error());
  const json::Value *FileV = Params.find("file");
  if (!FileV || !FileV->isString())
    return makeError("missing 'file' parameter");
  const std::string &File = FileV->asString();

  json::Array Lenses;
  for (const LineAnnotation &A : annotateFile(**P, File)) {
    json::Object LO;
    LO.set("line", A.Line);
    LO.set("text", A.LensText);
    LO.set("hotness", A.Hotness);
    json::Array Contexts;
    for (NodeId Ctx : A.Contexts)
      Contexts.push_back(Ctx);
    LO.set("contexts", std::move(Contexts));
    Lenses.push_back(std::move(LO));
  }
  json::Object Out;
  Out.set("lenses", std::move(Lenses));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doSummary(const json::Object &Params) {
  Result<std::shared_ptr<const Profile>> P = lookup(Params);
  if (!P)
    return makeError(P.error());
  json::Object Out;
  Out.set("text", renderSummaryText(**P));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doSearch(const json::Object &Params) {
  Result<std::shared_ptr<const Profile>> P = lookup(Params);
  if (!P)
    return makeError(P.error());
  const json::Value *PatV = Params.find("pattern");
  if (!PatV || !PatV->isString())
    return makeError("missing 'pattern' parameter");
  const std::string &Pattern = PatV->asString();

  json::Array Matches;
  for (NodeId Id = 0; Id < (*P)->nodeCount(); ++Id) {
    if ((Id & 4095) == 0) {
      ActiveCancel.checkpoint();
      if (deadlineExpired())
        return makeError(DeadlineDiag);
    }
    if ((*P)->nameOf(Id).find(Pattern) != std::string_view::npos)
      Matches.push_back(Id);
  }
  json::Object Out;
  Out.set("count", Matches.size());
  Out.set("matches", std::move(Matches));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doAggregate(const json::Object &Params) {
  const json::Value *IdsV = Params.find("profiles");
  if (!IdsV || !IdsV->isArray() || IdsV->asArray().empty())
    return makeError("pvp/aggregate needs a non-empty 'profiles' array");
  std::vector<int64_t> Ids;
  for (const json::Value &IdV : IdsV->asArray()) {
    int64_t InputId;
    if (!IdV.getInteger(InputId))
      return makeError("'profiles' must contain numeric ids");
    if (!Owned.count(InputId))
      return makeError("no profile with id " + std::to_string(InputId));
    Ids.push_back(InputId);
  }
  AggregateOptions Opt;
  Opt.WithMin = Opt.WithMax = Opt.WithMean = true;

  // On a budgeted (spilling) store every input already carries a columnar
  // form, so aggregate straight from the column segments: same algorithm,
  // writeEvProf-byte-identical output, but no AoS materialization of every
  // input — the whole point of the budget. Unbudgeted stores keep the AoS
  // path so plain sessions never pay a columnar build. Either branch keeps
  // its Held handles alive for the whole aggregation even if another
  // session closes an input mid-request.
  std::optional<AggregatedProfile> Agg;
  if (Store->stats().BudgetBytes != 0) {
    std::vector<std::shared_ptr<const ColumnarProfile>> Held;
    std::vector<const ColumnarProfile *> Inputs;
    for (int64_t InputId : Ids) {
      std::shared_ptr<const ColumnarProfile> C = Store->columnar(InputId);
      if (!C)
        break; // Dropped or unreadable spill: fall back to the AoS path.
      Inputs.push_back(C.get());
      Held.push_back(std::move(C));
    }
    if (Inputs.size() == Ids.size())
      Agg = aggregate(Inputs, Opt, ActiveCancel);
  }
  if (!Agg) {
    std::vector<std::shared_ptr<const Profile>> Held;
    std::vector<const Profile *> Inputs;
    for (int64_t InputId : Ids) {
      std::shared_ptr<const Profile> P = profileHandle(InputId);
      if (!P)
        return makeError("no profile with id " + std::to_string(InputId));
      Inputs.push_back(P.get());
      Held.push_back(std::move(P));
    }
    Agg = aggregate(Inputs, Opt, ActiveCancel);
  }

  int64_t Id = addProfile(topDownTree(Agg->merged(), ActiveCancel));
  json::Object Out;
  Out.set("profile", Id);
  Out.set("nodes", Agg->merged().nodeCount());
  Out.set("inputs", Ids.size());
  Aggregates.emplace(Id, std::move(*Agg));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doHistogram(const json::Object &Params) {
  int64_t AggId;
  if (!intParam(Params, "aggregate", AggId))
    return makeError("missing numeric 'aggregate' parameter");
  auto It = Aggregates.find(AggId);
  if (It == Aggregates.end())
    return makeError("no aggregate with id " + std::to_string(AggId));
  const AggregatedProfile &Agg = It->second;

  Result<NodeId> Node = nodeParam(Agg.merged(), Params);
  if (!Node)
    return makeError(Node.error());
  int64_t Metric = 0;
  if (const json::Value *MV = Params.find("metric"); MV && MV->isNumber())
    if (!MV->getInteger(Metric) || Metric < 0)
      return makeError("'metric' must be a non-negative integer");
  if (static_cast<size_t>(Metric) >= Agg.inputMetricCount())
    return makeError("metric index out of aggregate input range");

  json::Array Series;
  for (double V : Agg.perProfileInclusive(*Node, static_cast<MetricId>(Metric)))
    Series.push_back(V);
  json::Object Out;
  Out.set("series", std::move(Series));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doDiff(const json::Object &Params) {
  Result<std::shared_ptr<const Profile>> Base = lookup(Params, "base");
  if (!Base)
    return makeError(Base.error());
  Result<std::shared_ptr<const Profile>> Test = lookup(Params, "test");
  if (!Test)
    return makeError(Test.error());
  Result<MetricId> Metric = metricParam(**Base, Params);
  if (!Metric)
    return makeError(Metric.error());

  DiffResult Diff =
      diffProfiles(**Base, **Test, *Metric, /*RelativeEpsilon=*/1e-9,
                   ActiveCancel);
  size_t Added = 0, Deleted = 0, Increased = 0, Decreased = 0;
  for (DiffTag Tag : Diff.Tags) {
    switch (Tag) {
    case DiffTag::Added:
      ++Added;
      break;
    case DiffTag::Deleted:
      ++Deleted;
      break;
    case DiffTag::Increased:
      ++Increased;
      break;
    case DiffTag::Decreased:
      ++Decreased;
      break;
    case DiffTag::Common:
      break;
    }
  }
  json::Object Out;
  Out.set("profile", addProfile(std::move(Diff.Merged)));
  Out.set("added", Added);
  Out.set("deleted", Deleted);
  Out.set("increased", Increased);
  Out.set("decreased", Decreased);
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doQuery(const json::Object &Params) {
  Result<std::shared_ptr<const Profile>> P = lookup(Params);
  if (!P)
    return makeError(P.error());
  const json::Value *ProgV = Params.find("program");
  if (!ProgV || !ProgV->isString())
    return makeError("missing 'program' parameter");

  const std::string &Source = ProgV->asString();
  int64_t SourceId = 0;
  intParam(Params, "profile", SourceId); // Validated by lookup() above.

  // Warm path: a program compiled at the source profile's CURRENT
  // generation skips lex/parse/compile entirely and goes straight to the
  // batched VM. The generation in the key is what invalidates cached
  // programs when pvp/append (or any transform) bumps the profile.
  std::string CacheKey = evql::programCacheKey(
      Source, SourceId, Store->generationOf(SourceId));
  std::shared_ptr<const evql::CompiledProgram> Compiled =
      Cache->programs().lookup(CacheKey);
  std::optional<Result<evql::QueryOutput>> Out;
  if (Compiled) {
    Out.emplace(evql::runCompiled(**P, *Compiled));
  } else {
    Result<evql::Program> Prog = evql::parseProgram(Source);
    if (!Prog)
      return makeError(Prog.error());
    Compiled = evql::compileProgram(*Prog, Limits.Analysis);
    // The interpreter stays the oracle: programs the compiler rejects
    // (data-dependent types) run through it with identical results.
    Out.emplace(Compiled ? evql::runCompiled(**P, *Compiled)
                         : evql::runProgram(**P, *Prog, Limits.Analysis));
  }
  if (!*Out)
    return makeError(Out->error());
  Store->bumpGeneration(SourceId);
  // Re-insert under the POST-bump key: the bump above retires the key we
  // looked up, so caching against the new generation is what lets the next
  // identical query hit warm while append-driven bumps still invalidate.
  if (Compiled)
    Cache->programs().insert(
        evql::programCacheKey(Source, SourceId,
                              Store->generationOf(SourceId)),
        Compiled);

  json::Object Reply;
  Reply.set("profile", addProfile(std::move((*Out)->Result)));
  json::Array Printed;
  for (std::string &Line : (*Out)->Printed)
    Printed.push_back(std::move(Line));
  Reply.set("printed", std::move(Printed));
  json::Array Derived;
  for (std::string &Name : (*Out)->DerivedMetrics)
    Derived.push_back(std::move(Name));
  Reply.set("derived", std::move(Derived));
  return json::Value(std::move(Reply));
}

Result<json::Value> PvpServer::doTransform(const json::Object &Params) {
  Result<std::shared_ptr<const Profile>> P = lookup(Params);
  if (!P)
    return makeError(P.error());
  const json::Value *ShapeV = Params.find("shape");
  if (!ShapeV || !ShapeV->isString())
    return makeError("missing 'shape' parameter");
  const std::string &Shape = ShapeV->asString();

  Profile Shaped;
  if (Shape == "top-down")
    Shaped = topDownTree(**P, ActiveCancel);
  else if (Shape == "bottom-up")
    Shaped = bottomUpTree(**P, ActiveCancel);
  else if (Shape == "flat")
    Shaped = flatTree(**P, ActiveCancel);
  else if (Shape == "collapse-recursion")
    Shaped = collapseRecursion(**P, ActiveCancel);
  else
    return makeError("unknown shape '" + Shape + "'");
  int64_t SourceId = 0;
  intParam(Params, "profile", SourceId); // Validated by lookup() above.
  Store->bumpGeneration(SourceId);

  json::Object Out;
  Out.set("nodes", Shaped.nodeCount());
  Out.set("profile", addProfile(std::move(Shaped)));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doPrune(const json::Object &Params) {
  Result<std::shared_ptr<const Profile>> P = lookup(Params);
  if (!P)
    return makeError(P.error());
  Result<MetricId> Metric = metricParam(**P, Params);
  if (!Metric)
    return makeError(Metric.error());
  double MinFraction = 0.001;
  if (const json::Value *MF = Params.find("minFraction"); MF)
    MinFraction = MF->numberOr(0.001);
  if (MinFraction < 0.0 || MinFraction > 1.0)
    return makeError("'minFraction' must be in [0, 1]");
  Profile Pruned = pruneByFraction(**P, *Metric, MinFraction);
  int64_t SourceId = 0;
  intParam(Params, "profile", SourceId); // Validated by lookup() above.
  Store->bumpGeneration(SourceId);
  json::Object Out;
  Out.set("nodes", Pruned.nodeCount());
  Out.set("removed", (*P)->nodeCount() - Pruned.nodeCount());
  Out.set("profile", addProfile(std::move(Pruned)));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doExport(const json::Object &Params) {
  Result<std::shared_ptr<const Profile>> P = lookup(Params);
  if (!P)
    return makeError(P.error());
  const json::Value *FmtV = Params.find("format");
  if (!FmtV || !FmtV->isString())
    return makeError("missing 'format' parameter");
  const std::string &Fmt = FmtV->asString();
  MetricId Metric = 0;
  if (Result<MetricId> M = metricParam(**P, Params); M)
    Metric = *M;

  std::string Bytes;
  if (Fmt == "evprof")
    Bytes = writeEvProf(**P);
  else if (Fmt == "pprof")
    Bytes = convert::toPprof(**P);
  else if (Fmt == "collapsed")
    Bytes = convert::toCollapsed(**P, Metric);
  else if (Fmt == "speedscope")
    Bytes = convert::toSpeedscope(**P, Metric);
  else if (Fmt == "chrome")
    Bytes = convert::toChromeTrace(**P, Metric);
  else
    return makeError("unknown export format '" + Fmt + "'");

  json::Object Out;
  Out.set("bytes", Bytes.size());
  Out.set("dataBase64", base64Encode(Bytes));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doButterfly(const json::Object &Params) {
  Result<std::shared_ptr<const Profile>> P = lookup(Params);
  if (!P)
    return makeError(P.error());
  const json::Value *FnV = Params.find("function");
  if (!FnV || !FnV->isString())
    return makeError("missing 'function' parameter");
  Result<MetricId> Metric = metricParam(**P, Params);
  if (!Metric)
    return makeError(Metric.error());

  ButterflyResult B = butterfly(**P, FnV->asString(), *Metric);
  if (B.Occurrences == 0)
    return makeError("function '" + FnV->asString() +
                     "' not found in the profile");
  auto ToArray = [](const std::vector<ButterflyEntry> &Entries) {
    json::Array Out;
    for (const ButterflyEntry &E : Entries) {
      json::Object EO;
      EO.set("name", E.Name);
      EO.set("value", E.Value);
      Out.push_back(std::move(EO));
    }
    return Out;
  };
  json::Object Out;
  Out.set("function", B.Focus);
  Out.set("occurrences", B.Occurrences);
  Out.set("totalInclusive", B.TotalInclusive);
  Out.set("selfExclusive", B.SelfExclusive);
  Out.set("callers", ToArray(B.Callers));
  Out.set("callees", ToArray(B.Callees));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doCorrelated(const json::Object &Params) {
  Result<std::shared_ptr<const Profile>> P = lookup(Params);
  if (!P)
    return makeError(P.error());
  const json::Value *KindV = Params.find("kind");
  if (!KindV || !KindV->isString())
    return makeError("missing 'kind' parameter");

  CorrelatedView View(**P, KindV->asString());
  if (View.roleCount() == 0)
    return makeError("no context groups of kind '" + KindV->asString() +
                     "'");
  if (const json::Value *SelectV = Params.find("select");
      SelectV && SelectV->isArray()) {
    size_t Role = 0;
    for (const json::Value &NV : SelectV->asArray()) {
      int64_t Node;
      if (!NV.getInteger(Node) || Node < 0)
        return makeError("'select' must contain node ids");
      if (!View.select(Role, static_cast<NodeId>(Node)))
        return makeError("node " + std::to_string(Node) +
                         " is not in pane " + std::to_string(Role));
      ++Role;
    }
  }

  json::Object Out;
  Out.set("roles", View.roleCount());
  Out.set("activeGroups", View.activeGroupCount());
  json::Array Panes;
  for (size_t Role = 0; Role < View.roleCount(); ++Role) {
    json::Array Contexts;
    for (auto &[Node, Value] : View.paneContexts(Role)) {
      json::Object CO;
      CO.set("node", Node);
      CO.set("name", std::string((*P)->nameOf(Node)));
      CO.set("value", Value);
      Contexts.push_back(std::move(CO));
    }
    Panes.push_back(std::move(Contexts));
  }
  Out.set("panes", std::move(Panes));
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doDiagnostics(const json::Object &Params) {
  const json::Value *ProgV = Params.find("program");
  const json::Value *ProfV = Params.find("profile");
  if (!ProgV && !ProfV)
    return makeError("pvp/diagnostics needs 'program' and/or 'profile'");
  if (ProgV && !ProgV->isString())
    return makeError("'program' must be a string");

  AnalysisLimits Analysis = Limits.Analysis;
  if (const json::Value *MV = Params.find("maxDiagnostics"); MV) {
    int64_t MaxDiags;
    if (MV->getInteger(MaxDiags) && MaxDiags > 0)
      Analysis.MaxDiagnostics = std::min<size_t>(
          Analysis.MaxDiagnostics, static_cast<size_t>(MaxDiags));
  }

  Severity MinSeverity = Severity::Note;
  if (const json::Value *SV = Params.find("minSeverity")) {
    if (!SV->isString() || !parseSeverity(SV->asString(), MinSeverity))
      return makeError(
          "invalid 'minSeverity' (expected note, info, warning, or error)");
  }

  std::vector<std::string> Disabled;
  if (const json::Value *DV = Params.find("disable")) {
    if (!DV->isArray())
      return makeError("'disable' must be an array of rule ids or names");
    for (const json::Value &Entry : DV->asArray()) {
      // Names are validated against the UNIFIED registry, matching the
      // evtool subcommands: disabling another family's rule is accepted
      // (and inert), only typos are errors.
      if (!Entry.isString() || !findRule(Entry.asString()))
        return makeError("unknown rule in 'disable'");
      Disabled.push_back(Entry.asString());
    }
  }

  std::shared_ptr<const Profile> Held;
  const Profile *P = nullptr;
  if (ProfV) {
    Result<std::shared_ptr<const Profile>> L = lookup(Params);
    if (!L)
      return makeError(L.error());
    Held = *L;
    P = Held.get();
  }

  // Batch both passes into one diagnostic set: program findings first
  // (they carry source spans), then profile findings.
  DiagnosticSet Diags(Analysis.MaxDiagnostics);
  if (ProgV) {
    SemaOptions SOpts;
    SOpts.MetricSource = P;
    SOpts.Limits = Analysis;
    SemaChecker(SOpts).checkSource(ProgV->asString(), Diags);
  }
  if (P) {
    LintOptions LOpts;
    LOpts.Limits = Analysis;
    LOpts.MinSeverity = MinSeverity;
    LOpts.Disabled = Disabled;
    ProfileLinter(LOpts).lintProfile(*P, Diags);
  }
  Diags.sortBySource();

  auto Suppressed = [&](const Diagnostic &D) {
    if (D.Sev < MinSeverity)
      return true;
    for (const std::string &Rule : Disabled)
      if (D.Id == Rule || D.Rule == Rule)
        return true;
    return false;
  };

  size_t Errors = 0, Warnings = 0, Kept = 0;
  for (const Diagnostic &D : Diags.all()) {
    if (Suppressed(D))
      continue;
    ++Kept;
    if (D.Sev == Severity::Error)
      ++Errors;
    else if (D.Sev == Severity::Warning)
      ++Warnings;
  }

  // Serialize under the request deadline; running out degrades to a
  // truncated (but valid) reply rather than discarding the findings.
  json::Array Arr;
  bool DeadlineHit = false;
  for (const Diagnostic &D : Diags.all()) {
    if (Suppressed(D))
      continue;
    if ((Arr.size() & 255) == 0 && deadlineExpired()) {
      DeadlineHit = true;
      break;
    }
    json::Object DO;
    DO.set("id", D.Id);
    DO.set("severity", std::string(severityName(D.Sev)));
    DO.set("message", D.Message);
    DO.set("rule", D.Rule);
    if (!D.Hint.empty())
      DO.set("hint", D.Hint);
    if (D.Line > 0) {
      DO.set("line", D.Line);
      DO.set("column", D.Column);
    }
    if (D.Node != InvalidNode)
      DO.set("node", D.Node);
    Arr.push_back(json::Value(std::move(DO)));
  }

  json::Object Reply;
  size_t Shown = Arr.size();
  Reply.set("diagnostics", std::move(Arr));
  Reply.set("errors", Errors);
  Reply.set("warnings", Warnings);
  Reply.set("dropped", Diags.dropped() + (Kept - Shown));
  Reply.set("truncated", Diags.truncated() || DeadlineHit);
  if (DeadlineHit)
    Reply.set("deadlineExpired", true);
  return json::Value(std::move(Reply));
}

namespace {

/// Parses a cohort parameter: a single profile id or a non-empty array of
/// ids.
Result<std::vector<int64_t>> cohortParam(const json::Object &Params,
                                         std::string_view Key) {
  const json::Value *V = Params.find(Key);
  if (!V)
    return makeError("missing '" + std::string(Key) +
                     "' parameter (profile id or array of ids)");
  std::vector<int64_t> Out;
  if (V->isArray()) {
    for (const json::Value &Entry : V->asArray()) {
      int64_t Id;
      if (!Entry.getInteger(Id))
        return makeError("'" + std::string(Key) +
                         "' must hold integer profile ids");
      Out.push_back(Id);
    }
  } else {
    int64_t Id;
    if (!V->getInteger(Id))
      return makeError("'" + std::string(Key) +
                       "' must be a profile id or an array of ids");
    Out.push_back(Id);
  }
  if (Out.empty())
    return makeError("'" + std::string(Key) + "' cohort is empty");
  return Out;
}

/// Optional non-negative number parameter; leaves \p Out untouched when
/// absent. \returns false on a present-but-invalid value.
bool ratioParam(const json::Object &Params, std::string_view Key,
                double &Out) {
  const json::Value *V = Params.find(Key);
  if (!V)
    return true;
  if (!V->isNumber() || !(V->asNumber() >= 0.0))
    return false;
  Out = V->asNumber();
  return true;
}

} // namespace

Result<json::Value> PvpServer::doRegressions(const json::Object &Params) {
  Result<std::vector<int64_t>> BaseIds = cohortParam(Params, "base");
  if (!BaseIds)
    return makeError(BaseIds.error());
  Result<std::vector<int64_t>> TestIds = cohortParam(Params, "test");
  if (!TestIds)
    return makeError(TestIds.error());

  AnalysisLimits Analysis = Limits.Analysis;
  if (const json::Value *MV = Params.find("maxDiagnostics"); MV) {
    int64_t MaxDiags;
    if (MV->getInteger(MaxDiags) && MaxDiags > 0)
      Analysis.MaxDiagnostics = std::min<size_t>(
          Analysis.MaxDiagnostics, static_cast<size_t>(MaxDiags));
  }

  RegressionOptions Opts;
  Opts.Limits = Analysis;
  if (const json::Value *SV = Params.find("minSeverity")) {
    if (!SV->isString() || !parseSeverity(SV->asString(), Opts.MinSeverity))
      return makeError(
          "invalid 'minSeverity' (expected note, info, warning, or error)");
  }
  if (const json::Value *DV = Params.find("disable")) {
    if (!DV->isArray())
      return makeError("'disable' must be an array of rule ids or names");
    for (const json::Value &Entry : DV->asArray()) {
      if (!Entry.isString() || !findRule(Entry.asString()))
        return makeError("unknown rule in 'disable'");
      Opts.Disabled.push_back(Entry.asString());
    }
  }
  if (!ratioParam(Params, "relativeMin", Opts.RelativeMin))
    return makeError("'relativeMin' must be a non-negative number");
  if (!ratioParam(Params, "absoluteMin", Opts.AbsoluteMin))
    return makeError("'absoluteMin' must be a non-negative number");
  if (!ratioParam(Params, "sigma", Opts.SigmaGate))
    return makeError("'sigma' must be a non-negative number");

  FleetAggregateOptions AggOpts;
  if (const json::Value *BV = Params.find("nodeBudget"); BV) {
    int64_t Budget;
    if (!BV->getInteger(Budget) || Budget < 0)
      return makeError("'nodeBudget' must be a non-negative integer");
    AggOpts.NodeBudget = static_cast<size_t>(Budget);
  }

  // Stream each cohort member through the accumulator. Memory stays
  // O(merged CCT): profiles live in the store either way, but the cohort
  // analysis itself never materializes an O(N profiles) matrix. On a
  // budgeted store each member is folded straight from its columnar
  // segment (one resident at a time, spilled members fault in and age
  // right back out), so a cohort far larger than the budget streams
  // through without the store ever exceeding it.
  const bool Budgeted = Store->stats().BudgetBytes != 0;
  auto Fill = [&](const std::vector<int64_t> &Ids,
                  CohortAccumulator &Acc) -> Result<bool> {
    for (int64_t ProfId : Ids) {
      if (deadlineExpired())
        return makeError(DeadlineDiag);
      if (Budgeted && Owned.count(ProfId)) {
        if (std::shared_ptr<const ColumnarProfile> C =
                Store->columnar(ProfId)) {
          Acc.add(*C, ActiveCancel);
          continue;
        }
      }
      std::shared_ptr<const Profile> P = profileHandle(ProfId);
      if (!P)
        return makeError("no profile with id " + std::to_string(ProfId));
      Acc.add(*P, ActiveCancel);
    }
    return true;
  };
  CohortAccumulator Base(AggOpts), Test(AggOpts);
  if (Result<bool> R = Fill(*BaseIds, Base); !R)
    return makeError(R.error());
  if (Result<bool> R = Fill(*TestIds, Test); !R)
    return makeError(R.error());

  DiagnosticSet Diags(Analysis.MaxDiagnostics);
  RegressionAnalyzer(Opts).analyze(Base, Test, Diags, ActiveCancel);

  // Serialize under the request deadline, degrading to a truncated (but
  // valid) reply exactly like pvp/diagnostics.
  json::Array Arr;
  bool DeadlineHit = false;
  for (const Diagnostic &D : Diags.all()) {
    if ((Arr.size() & 255) == 0 && deadlineExpired()) {
      DeadlineHit = true;
      break;
    }
    json::Object DO;
    DO.set("id", D.Id);
    DO.set("severity", std::string(severityName(D.Sev)));
    DO.set("message", D.Message);
    DO.set("rule", D.Rule);
    if (!D.Hint.empty())
      DO.set("hint", D.Hint);
    if (D.Node != InvalidNode)
      DO.set("node", D.Node);
    Arr.push_back(json::Value(std::move(DO)));
  }

  json::Object Reply;
  size_t Shown = Arr.size();
  Reply.set("findings", std::move(Arr));
  Reply.set("errors", Diags.countAtLeast(Severity::Error));
  Reply.set("warnings", Diags.count(Severity::Warning));
  Reply.set("dropped", Diags.dropped() + (Diags.size() - Shown));
  Reply.set("truncated", Diags.truncated() || DeadlineHit);
  if (DeadlineHit)
    Reply.set("deadlineExpired", true);
  Reply.set("baseProfiles", Base.profileCount());
  Reply.set("testProfiles", Test.profileCount());
  return json::Value(std::move(Reply));
}

bool PvpServer::regressionCacheKey(const json::Object &Params,
                                   std::string &Key, int64_t &Prof,
                                   uint64_t &Gen) const {
  Result<std::vector<int64_t>> BaseIds = cohortParam(Params, "base");
  Result<std::vector<int64_t>> TestIds = cohortParam(Params, "test");
  if (!BaseIds || !TestIds)
    return false;
  std::string Members;
  for (int64_t Id : *BaseIds) {
    if (!Owned.count(Id))
      return false;
    Members += 'b' + std::to_string(Id) + ':' +
               std::to_string(Store->generationOf(Id)) + ',';
  }
  for (int64_t Id : *TestIds) {
    if (!Owned.count(Id))
      return false;
    Members += 't' + std::to_string(Id) + ':' +
               std::to_string(Store->generationOf(Id)) + ',';
  }
  Prof = BaseIds->front();
  Gen = Store->generationOf(Prof);
  Key = "pvp/regressions|" + Members + '|' + json::Value(Params).dump();
  return true;
}

Result<json::Value> PvpServer::doStats(const json::Object &) {
  json::Object Out;
  Out.set("profiles", static_cast<int64_t>(Owned.size()));
  // Cache counters are global atomics on the SHARED cache object, already
  // aggregated across shards and sessions (shards have no private
  // counters, so summing anything per-shard would double-count). The keys
  // above this comment are pinned by tests; additions below are strictly
  // additive. revalidations is a subset of misses, reported separately so
  // the cross-session staleness rate is visible (pre-PR4 this method
  // reported the retired single-session view and missed shard/store
  // state entirely).
  Out.set("cachedViews", static_cast<int64_t>(Cache->size()));
  Out.set("cacheCapacity", static_cast<int64_t>(Cache->capacity()));
  Out.set("cacheHits", Cache->hits());
  Out.set("cacheMisses", Cache->misses());
  Out.set("cacheEvictions", Cache->evictions());
  Out.set("cacheShards", static_cast<int64_t>(Cache->shardCount()));
  Out.set("cacheRevalidations", Cache->revalidationDrops());
  Out.set("storeProfiles", static_cast<int64_t>(Store->size()));
  // Memory attribution (docs/PERF.md "Out-of-core columnar store"): cache
  // memory and store memory reported SEPARATELY so an operator can tell
  // which layer is holding bytes. cacheBytes is the view cache's reply
  // payload; storeResidentBytes is what counts against storeBudgetBytes
  // (storeAosBytes + storeColumnarBytes); shared string bytes are
  // deduplicated across profiles and excluded from the budget, reported on
  // their own.
  Out.set("cacheBytes", Cache->approxBytes());
  StoreStats SS = Store->stats();
  Out.set("storeBudgetBytes", SS.BudgetBytes);
  Out.set("storeResidentBytes", SS.ResidentBytes);
  Out.set("storeAosBytes", SS.AosBytes);
  Out.set("storeColumnarBytes", SS.ColumnarBytes);
  Out.set("storeSharedStringBytes", SS.SharedStringBytes);
  Out.set("storeSpilledBytes", SS.SpilledBytes);
  Out.set("storeSpills", SS.Spills);
  Out.set("storeEvictions", SS.Evictions);
  Out.set("storeFaults", SS.Faults);
  Out.set("storeSpillFailures", SS.SpillFailures);
  // Compiled-EVQL program cache (docs/EVQL.md "Bytecode VM"): hits are
  // pvp/query requests that skipped lex/parse/compile entirely.
  Out.set("programCacheSize",
          static_cast<int64_t>(Cache->programs().size()));
  Out.set("programCacheCapacity",
          static_cast<int64_t>(Cache->programs().capacity()));
  Out.set("programCacheHits", Cache->programs().hits());
  Out.set("programCacheMisses", Cache->programs().misses());
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doMetrics(const json::Object &Params) {
  telemetry::SnapshotOptions Opts;
  if (const json::Value *T = Params.find("includeTimings"); T && T->isBool())
    Opts.IncludeTimings = T->asBool();
  json::Value Snap = telemetry::Registry::global().snapshot(Opts);

  json::Object Out;
  // wallTimeMs is the one user-facing timestamp (system clock, epoch ms,
  // comparable across machines); monoTimeMs is for computing deltas
  // between two snapshots of THIS process only.
  Out.set("wallTimeMs", wallMillis());
  Out.set("monoTimeMs", monoMillis());
  for (const auto &[Key, V] : Snap.asObject())
    Out.set(Key, V);

  json::Object Spans;
  Spans.set("enabled", trace::enabled());
  Spans.set("retained", static_cast<uint64_t>(trace::retainedSpans()));
  Spans.set("dropped", trace::droppedSpans());
  Spans.set("lanes", static_cast<uint64_t>(trace::laneCount()));
  Out.set("spans", std::move(Spans));

  Result<json::Value> Stats = doStats(Params);
  if (!Stats)
    return Stats;
  Out.set("stats", Stats.take());
  return json::Value(std::move(Out));
}

Result<json::Value> PvpServer::doSelfProfile(const json::Object &Params) {
  std::vector<trace::SpanRecord> Records = trace::collectSpans();
  if (Records.empty())
    return makeError("no spans retained (tracing disabled or nothing ran)");

  std::string Name = "easyview-self";
  if (const json::Value *NV = Params.find("name"); NV && NV->isString())
    Name = NV->asString();
  Profile Self = trace::toProfile(Name);
  Result<bool> Ok = Self.verify();
  if (!Ok)
    return makeError("self-profile failed verification: " + Ok.error());

  std::string Bytes = writeEvProf(Self);
  size_t Nodes = Self.nodeCount();
  // Register the profile in this session so the editor can immediately ask
  // for pvp/flame of the server's own execution — the paper's dogfooding
  // move: the profiler profiled with its own representation.
  int64_t Id = addProfile(std::move(Self));

  if (const json::Value *RV = Params.find("reset"); RV && RV->boolOr(false))
    trace::clear();

  json::Object Out;
  Out.set("profile", Id);
  Out.set("nodes", static_cast<uint64_t>(Nodes));
  Out.set("spans", static_cast<uint64_t>(Records.size()));
  Out.set("bytes", static_cast<uint64_t>(Bytes.size()));
  Out.set("dataBase64", base64Encode(Bytes));
  return json::Value(std::move(Out));
}

json::Value PvpServer::dispatch(std::string_view Method,
                                const json::Object &Params, int64_t Id) {
  // Memoized fast path: serve repeated view requests straight from the LRU.
  // The key folds in the profile generation, so any state-retiring method
  // in between forces a recomputation without an explicit flush; the cache
  // additionally revalidates the generation per entry, which covers
  // cross-session races (see ide/ViewCache.h).
  bool Cacheable = Cache->capacity() != 0 &&
                   (Method == "pvp/flame" || Method == "pvp/treeTable" ||
                    Method == "pvp/summary");
  std::string CacheKey;
  int64_t CacheProf = 0;
  uint64_t CacheGen = 0;
  if (Cacheable) {
    // Ownership gates the cache: sessions share one LRU keyed by globally
    // unique profile ids, so without this check a session could be served
    // a view of a profile it never opened (cross-session leak).
    if (intParam(Params, "profile", CacheProf) && Owned.count(CacheProf)) {
      CacheGen = Store->generationOf(CacheProf);
      CacheKey = std::string(Method) + '|' + std::to_string(CacheProf) +
                 '|' + std::to_string(CacheGen) + '|' +
                 json::Value(Params).dump();
      if (std::unique_ptr<json::Value> Hit =
              Cache->lookup(CacheKey, CacheGen))
        return rpc::makeResponse(Id, std::move(*Hit));
    } else {
      Cacheable = false;
    }
  } else if (Method == "pvp/regressions" && Cache->capacity() != 0) {
    // Cohort analyses are the most expensive views the session serves, so
    // they are memoized too. The key folds in EVERY cohort member's
    // (id, generation) pair — a bump of any member changes the key and the
    // stale entry ages out of the LRU; per-entry revalidation tracks the
    // first base member.
    if (regressionCacheKey(Params, CacheKey, CacheProf, CacheGen)) {
      Cacheable = true;
      if (std::unique_ptr<json::Value> Hit =
              Cache->lookup(CacheKey, CacheGen))
        return rpc::makeResponse(Id, std::move(*Hit));
    }
  }

  // Arm the soft per-request deadline; long-running handler loops check
  // it periodically and bail with DeadlineDiag.
  RequestDeadline =
      Limits.RequestDeadlineMs == 0 ? 0 : NowMs() + Limits.RequestDeadlineMs;
  Result<json::Value> R = makeError("unreachable");
  try {
    if (Method == "pvp/open")
      R = doOpen(Params);
    else if (Method == "pvp/append")
      R = doAppend(Params);
    else if (Method == "pvp/subscribe")
      R = doSubscribe(Params);
    else if (Method == "pvp/ack")
      R = doAck(Params);
    else if (Method == "pvp/unsubscribe")
      R = doUnsubscribe(Params);
    else if (Method == "pvp/close")
      R = doClose(Params);
    else if (Method == "pvp/flame")
      R = doFlame(Params);
    else if (Method == "pvp/treeTable")
      R = doTreeTable(Params);
    else if (Method == "pvp/codeLink")
      R = doCodeLink(Params);
    else if (Method == "pvp/hover")
      R = doHover(Params);
    else if (Method == "pvp/codeLens")
      R = doCodeLens(Params);
    else if (Method == "pvp/summary")
      R = doSummary(Params);
    else if (Method == "pvp/search")
      R = doSearch(Params);
    else if (Method == "pvp/aggregate")
      R = doAggregate(Params);
    else if (Method == "pvp/histogram")
      R = doHistogram(Params);
    else if (Method == "pvp/diff")
      R = doDiff(Params);
    else if (Method == "pvp/query")
      R = doQuery(Params);
    else if (Method == "pvp/transform")
      R = doTransform(Params);
    else if (Method == "pvp/prune")
      R = doPrune(Params);
    else if (Method == "pvp/export")
      R = doExport(Params);
    else if (Method == "pvp/butterfly")
      R = doButterfly(Params);
    else if (Method == "pvp/correlated")
      R = doCorrelated(Params);
    else if (Method == "pvp/diagnostics")
      R = doDiagnostics(Params);
    else if (Method == "pvp/regressions")
      R = doRegressions(Params);
    else if (Method == "pvp/stats")
      R = doStats(Params);
    else if (Method == "pvp/metrics")
      R = doMetrics(Params);
    else if (Method == "pvp/selfProfile")
      R = doSelfProfile(Params);
    else
      return rpc::makeErrorResponse(Id, rpc::MethodNotFound,
                                    "unknown method '" + std::string(Method) +
                                        "'");
  } catch (const CancelledException &) {
    // Cooperative cancellation unwound the handler (possibly through the
    // analysis thread pool). The reply is an error, so nothing below
    // touches the view cache: no partial view is memoized and no valid
    // entry is displaced.
    RequestDeadline = 0;
    return rpc::makeErrorResponse(Id, rpc::RequestCancelled,
                                  "request cancelled");
  }
  RequestDeadline = 0;
  if (!R) {
    int Code = R.error() == DeadlineDiag    ? rpc::RequestTimeout
               : R.error() == SubLimitDiag  ? rpc::SubscriptionLimit
                                            : rpc::InvalidParams;
    return rpc::makeErrorResponse(Id, Code, R.error());
  }
  json::Value Payload = R.take();
  // Only successful replies are memoized; errors stay uncached so a later
  // retry (e.g. after the deadline budget recovers) re-runs the handler.
  // The insert records the generation CAPTURED BEFORE the handler ran: if
  // another session retired the profile mid-request, the next lookup's
  // validation drops this entry instead of serving the stale view.
  if (Cacheable)
    Cache->insert(std::move(CacheKey), CacheProf, CacheGen, Payload);
  return rpc::makeResponse(Id, std::move(Payload));
}

json::Value PvpServer::handleMessage(const json::Value &Request,
                                     const CancelToken &Cancel,
                                     std::function<void(json::Value)> Notify) {
  // Request-level telemetry: handles are pinned once (registration locks
  // a shard; updates are relaxed atomics on the hot path).
  telemetry::Registry &Reg = telemetry::Registry::global();
  static telemetry::Counter &Requests = Reg.counter("pvp.requests");
  static telemetry::Counter &Errors = Reg.counter("pvp.errors");
  static telemetry::Histogram &Latency = Reg.histogram("pvp.latencyUs");
  Requests.add();
  uint64_t T0 = monoMicros();

  ActiveCancel = Cancel;
  // Subscriptions created by THIS request bind the caller's notification
  // channel. Without one, pushes queue on the server and a wire loop
  // (handleWire) drains them after the response.
  CurrentNotify = Notify ? std::move(Notify) : [this](json::Value N) {
    QueuedNotifications.push_back(std::move(N));
  };
  json::Value Response = [&] {
    if (!Request.isObject())
      return rpc::makeErrorResponse(0, rpc::InvalidRequest,
                                    "request is not an object");
    const json::Object &Obj = Request.asObject();
    int64_t Id = 0;
    if (const json::Value *IdV = Obj.find("id"); IdV)
      IdV->getInteger(Id);
    const json::Value *MethodV = Obj.find("method");
    if (!MethodV || !MethodV->isString())
      return rpc::makeErrorResponse(Id, rpc::InvalidRequest,
                                    "request has no method");
    static const json::Object EmptyParams;
    const json::Object *Params = &EmptyParams;
    if (const json::Value *PV = Obj.find("params"); PV && PV->isObject())
      Params = &PV->asObject();
    const std::string &Method = MethodV->asString();
    // The span label must outlive the request; method names are a small
    // closed set, so interning is bounded.
    trace::Span Span(trace::internLabel(Method), "pvp");
    uint64_t M0 = monoMicros();
    json::Value Reply = dispatch(Method, *Params, Id);
    Reg.histogram("pvp.latencyUs." + Method).record(monoMicros() - M0);
    return Reply;
  }();
  ActiveCancel = CancelToken();
  // The publish sweep runs with the request's cancel token already
  // cleared: a cancelled request must not abort OTHER subscribers' view
  // computations mid-sweep.
  publishSubscriptions();
  CurrentNotify = nullptr;

  Latency.record(monoMicros() - T0);
  if (Response.isObject() && Response.asObject().contains("error"))
    Errors.add();
  return Response;
}

std::string PvpServer::handleWire(std::string_view Bytes) {
  telemetry::Registry &Reg = telemetry::Registry::global();
  static telemetry::Counter &BytesIn = Reg.counter("wire.bytesIn");
  static telemetry::Counter &BytesOut = Reg.counter("wire.bytesOut");
  static telemetry::Counter &FramesIn = Reg.counter("wire.framesIn");
  static telemetry::Counter &FrameErrors = Reg.counter("wire.frameErrors");
  trace::Span Span("pvp/handleWire", "wire");
  BytesIn.add(Bytes.size());

  Reader.feed(Bytes);
  std::string Out;
  for (;;) {
    auto Msg = Reader.poll();
    // Each corrupt frame costs one error response; the reader has already
    // resynchronized, so later frames on the same stream still decode.
    for (rpc::FrameError &E : Reader.takeErrors()) {
      FrameErrors.add();
      Out += rpc::frame(
          rpc::makeErrorResponse(0, E.Code, E.Message));
    }
    if (!Msg)
      break;
    FramesIn.add();
    Out += rpc::frame(handleMessage(*Msg));
    // Pushes triggered by this message (queued by the default sink) ride
    // the same byte stream, framed AFTER the response so request/response
    // pairing stays intact for simple clients.
    for (json::Value &N : takeNotifications())
      Out += rpc::frame(N);
  }
  BytesOut.add(Out.size());
  return Out;
}

} // namespace ev
