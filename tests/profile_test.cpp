//===- tests/profile_test.cpp - profile/ data model tests -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "profile/Profile.h"
#include "profile/ProfileBuilder.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ev;

TEST(Profile, FreshProfileHasRoot) {
  Profile P;
  EXPECT_EQ(P.nodeCount(), 1u);
  EXPECT_EQ(P.root(), 0u);
  EXPECT_EQ(P.node(P.root()).Parent, InvalidNode);
  EXPECT_EQ(P.nameOf(P.root()), "ROOT");
  EXPECT_EQ(P.frameOf(P.root()).Kind, FrameKind::Root);
  EXPECT_TRUE(P.verify().ok());
}

TEST(Profile, AddMetricDeduplicatesByName) {
  Profile P;
  MetricId A = P.addMetric("time", "nanoseconds");
  MetricId B = P.addMetric("time", "nanoseconds");
  MetricId C = P.addMetric("bytes", "bytes");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(P.metrics().size(), 2u);
  EXPECT_EQ(P.findMetric("bytes"), C);
  EXPECT_EQ(P.findMetric("missing"), Profile::InvalidMetric);
}

TEST(Profile, InternFrameDeduplicates) {
  Profile P;
  Frame F;
  F.Name = P.strings().intern("fn");
  F.Loc.File = P.strings().intern("f.cc");
  F.Loc.Line = 7;
  FrameId A = P.internFrame(F);
  FrameId B = P.internFrame(F);
  EXPECT_EQ(A, B);
  F.Loc.Line = 8;
  EXPECT_NE(P.internFrame(F), A);
}

TEST(Profile, CreateNodeLinksBothWays) {
  Profile P;
  Frame F;
  F.Name = P.strings().intern("child");
  FrameId Fr = P.internFrame(F);
  NodeId Child = P.createNode(P.root(), Fr);
  EXPECT_EQ(P.node(Child).Parent, P.root());
  ASSERT_EQ(P.node(P.root()).Children.size(), 1u);
  EXPECT_EQ(P.node(P.root()).Children[0], Child);
  EXPECT_TRUE(P.verify().ok());
}

TEST(Profile, PathToAndDepth) {
  Profile P = test::makeFixedProfile();
  // Find the kernel node.
  NodeId Kernel = InvalidNode;
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    if (P.nameOf(Id) == "kernel")
      Kernel = Id;
  ASSERT_NE(Kernel, InvalidNode);
  std::vector<NodeId> Path = P.pathTo(Kernel);
  ASSERT_EQ(Path.size(), 4u); // ROOT, main, compute, kernel.
  EXPECT_EQ(Path.front(), P.root());
  EXPECT_EQ(Path.back(), Kernel);
  EXPECT_EQ(P.nameOf(Path[1]), "main");
  EXPECT_EQ(P.depth(Kernel), 3u);
  EXPECT_EQ(P.depth(P.root()), 0u);
}

TEST(Profile, MetricValueAccumulates) {
  CCTNode Node;
  Node.addMetric(0, 5.0);
  Node.addMetric(0, 2.5);
  Node.addMetric(1, 1.0);
  EXPECT_DOUBLE_EQ(Node.metricOr(0), 7.5);
  EXPECT_DOUBLE_EQ(Node.metricOr(1), 1.0);
  EXPECT_DOUBLE_EQ(Node.metricOr(2), 0.0);
  EXPECT_DOUBLE_EQ(Node.metricOr(2, -1.0), -1.0);
}

TEST(Profile, VerifyCatchesBrokenChildLink) {
  Profile P = test::makeFixedProfile();
  // Corrupt: point a child's Parent elsewhere.
  NodeId Victim = static_cast<NodeId>(P.nodeCount() - 1);
  P.node(Victim).Parent = Victim == 1 ? 2 : 1;
  EXPECT_FALSE(P.verify().ok());
}

TEST(Profile, VerifyCatchesOutOfRangeMetric) {
  Profile P = test::makeFixedProfile();
  P.node(1).Metrics.push_back({999, 1.0});
  Result<bool> R = P.verify();
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("metric"), std::string::npos);
}

TEST(Profile, GroupsValidateContexts) {
  Profile P = test::makeFixedProfile();
  ContextGroup G;
  G.Kind = P.strings().intern("reuse");
  G.Contexts = {1, 2};
  G.Metric = 0;
  G.Value = 10;
  P.addGroup(G);
  EXPECT_TRUE(P.verify().ok());
  ContextGroup Bad = G;
  Bad.Contexts.push_back(9999);
  P.addGroup(Bad);
  EXPECT_FALSE(P.verify().ok());
}

TEST(Profile, ApproxMemoryGrowsWithContent) {
  Profile Small = test::makeFixedProfile();
  Profile Large = test::makeRandomProfile(3, 2000);
  EXPECT_GT(Small.approxMemoryBytes(), 0u);
  EXPECT_GT(Large.approxMemoryBytes(), Small.approxMemoryBytes());
}

//===----------------------------------------------------------------------===
// ProfileBuilder
//===----------------------------------------------------------------------===

TEST(ProfileBuilder, MergesCommonPrefixes) {
  ProfileBuilder B("t");
  MetricId M = B.addMetric("m", "count");
  FrameId A = B.functionFrame("a");
  FrameId C = B.functionFrame("c");
  FrameId D = B.functionFrame("d");
  std::vector<FrameId> P1 = {A, C};
  std::vector<FrameId> P2 = {A, D};
  B.addSample(P1, M, 1);
  B.addSample(P2, M, 1);
  Profile P = B.take();
  // ROOT + a + c + d = 4 nodes (the "a" prefix merged).
  EXPECT_EQ(P.nodeCount(), 4u);
}

TEST(ProfileBuilder, RepeatedSamplesAccumulateAtLeaf) {
  ProfileBuilder B("t");
  MetricId M = B.addMetric("m", "count");
  FrameId A = B.functionFrame("a");
  std::vector<FrameId> Path = {A};
  B.addSample(Path, M, 2);
  B.addSample(Path, M, 3);
  Profile P = B.take();
  EXPECT_EQ(P.nodeCount(), 2u);
  EXPECT_DOUBLE_EQ(P.node(1).metricOr(M), 5.0);
}

TEST(ProfileBuilder, SameNameDifferentLocationAreDistinctFrames) {
  ProfileBuilder B("t");
  MetricId M = B.addMetric("m", "count");
  FrameId A1 = B.functionFrame("f", "x.cc", 1);
  FrameId A2 = B.functionFrame("f", "x.cc", 2);
  EXPECT_NE(A1, A2);
  std::vector<FrameId> P1 = {A1};
  std::vector<FrameId> P2 = {A2};
  B.addSample(P1, M, 1);
  B.addSample(P2, M, 1);
  EXPECT_EQ(B.peek().nodeCount(), 3u);
}

TEST(ProfileBuilder, EmptyPathTargetsRoot) {
  ProfileBuilder B("t");
  MetricId M = B.addMetric("m", "count");
  NodeId Leaf = B.addSample({}, M, 4);
  Profile P = B.take();
  EXPECT_EQ(Leaf, P.root());
  EXPECT_DOUBLE_EQ(P.node(P.root()).metricOr(M), 4.0);
}

TEST(ProfileBuilder, RecursivePathsKeepSeparateNodes) {
  ProfileBuilder B("t");
  MetricId M = B.addMetric("m", "count");
  FrameId A = B.functionFrame("rec");
  std::vector<FrameId> Path = {A, A, A};
  B.addSample(Path, M, 1);
  Profile P = B.take();
  EXPECT_EQ(P.nodeCount(), 4u); // ROOT + three recursion levels.
}

TEST(ProfileBuilder, GroupsAreRecorded) {
  ProfileBuilder B("t");
  MetricId M = B.addMetric("m", "count");
  FrameId A = B.functionFrame("a");
  FrameId C = B.functionFrame("b");
  std::vector<FrameId> P1 = {A};
  std::vector<FrameId> P2 = {C};
  NodeId N1 = B.addSample(P1, M, 1);
  NodeId N2 = B.addSample(P2, M, 1);
  const NodeId Contexts[] = {N1, N2};
  B.addGroup("pair", Contexts, M, 42.0);
  Profile P = B.take();
  ASSERT_EQ(P.groups().size(), 1u);
  EXPECT_EQ(P.text(P.groups()[0].Kind), "pair");
  EXPECT_DOUBLE_EQ(P.groups()[0].Value, 42.0);
  EXPECT_TRUE(P.verify().ok());
}

TEST(ProfileBuilder, DataFrameKind) {
  ProfileBuilder B("t");
  FrameId D = B.dataFrame("buf[]", "alloc.cc", 12);
  Profile P = B.take();
  EXPECT_EQ(P.frame(D).Kind, FrameKind::DataObject);
}

TEST(FrameKindName, CoversAllKinds) {
  EXPECT_EQ(frameKindName(FrameKind::Root), "root");
  EXPECT_EQ(frameKindName(FrameKind::Function), "function");
  EXPECT_EQ(frameKindName(FrameKind::Loop), "loop");
  EXPECT_EQ(frameKindName(FrameKind::BasicBlock), "basic-block");
  EXPECT_EQ(frameKindName(FrameKind::Instruction), "instruction");
  EXPECT_EQ(frameKindName(FrameKind::DataObject), "data-object");
  EXPECT_EQ(frameKindName(FrameKind::Thread), "thread");
}

TEST(SourceLocation, SourceMappingRequiresFileAndLine) {
  SourceLocation Loc;
  EXPECT_FALSE(Loc.hasSourceMapping());
  Loc.File = 5;
  EXPECT_FALSE(Loc.hasSourceMapping());
  Loc.Line = 10;
  EXPECT_TRUE(Loc.hasSourceMapping());
}
