//===- tests/property_test.cpp - Randomized invariant tests ---------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style checks over randomized profiles (seed-parameterized):
/// serialization round-trips, transform conservation laws, diff identities,
/// aggregation identities, and flame-layout geometry invariants.
///
//===----------------------------------------------------------------------===//

#include "analysis/Aggregate.h"
#include "analysis/Diff.h"
#include "analysis/MetricEngine.h"
#include "analysis/Prune.h"
#include "analysis/Transform.h"
#include "proto/EvProf.h"
#include "render/FlameLayout.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <map>

using namespace ev;

class RandomProfileProperty : public ::testing::TestWithParam<uint64_t> {
protected:
  Profile P = test::makeRandomProfile(GetParam());
};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProfileProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89, 144, 233));

TEST_P(RandomProfileProperty, BuilderOutputVerifies) {
  Result<bool> R = P.verify();
  EXPECT_TRUE(R.ok()) << R.error();
}

TEST_P(RandomProfileProperty, EvprofRoundTripPreservesTotals) {
  Result<Profile> Back = readEvProf(writeEvProf(P));
  ASSERT_TRUE(Back.ok()) << Back.error();
  EXPECT_EQ(Back->nodeCount(), P.nodeCount());
  for (MetricId M = 0; M < P.metrics().size(); ++M)
    EXPECT_DOUBLE_EQ(metricTotal(*Back, M), metricTotal(P, M));
  EXPECT_TRUE(Back->verify().ok());
}

TEST_P(RandomProfileProperty, InclusiveAtLeastExclusive) {
  // All generated values are non-negative, so inclusive >= exclusive.
  for (MetricId M = 0; M < P.metrics().size(); ++M) {
    MetricView View(P, M);
    for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
      EXPECT_GE(View.inclusive(Id) + 1e-9, View.exclusive(Id));
  }
}

TEST_P(RandomProfileProperty, InclusiveOfParentCoversChildren) {
  MetricView View(P, 0);
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
    double ChildSum = 0.0;
    for (NodeId Child : P.node(Id).Children)
      ChildSum += View.inclusive(Child);
    EXPECT_NEAR(View.inclusive(Id), ChildSum + View.exclusive(Id), 1e-6);
  }
}

TEST_P(RandomProfileProperty, TransformsConserveTotals) {
  double Total0 = metricTotal(P, 0);
  double Total1 = metricTotal(P, 1);

  Profile Down = topDownTree(P);
  EXPECT_NEAR(metricTotal(Down, 0), Total0, 1e-6);
  EXPECT_TRUE(Down.verify().ok());

  Profile Up = bottomUpTree(P);
  EXPECT_NEAR(metricTotal(Up, 0), Total0, 1e-6);
  EXPECT_NEAR(metricTotal(Up, 1), Total1, 1e-6);
  EXPECT_TRUE(Up.verify().ok());

  Profile Flat = flatTree(P);
  EXPECT_NEAR(metricTotal(Flat, 0), Total0, 1e-6);
  EXPECT_TRUE(Flat.verify().ok());

  Profile Collapsed = collapseRecursion(P);
  EXPECT_NEAR(metricTotal(Collapsed, 0), Total0, 1e-6);
  EXPECT_LE(Collapsed.nodeCount(), P.nodeCount());

  Profile Limited = limitDepth(P, 4);
  EXPECT_NEAR(metricTotal(Limited, 0), Total0, 1e-6);
}

TEST_P(RandomProfileProperty, BottomUpFirstLevelMatchesExclusiveByFrame) {
  // Sum of exclusive values grouped by frame name == first-level inclusive
  // values in the bottom-up tree.
  std::map<std::string, double> ByName;
  for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
    double V = P.node(Id).metricOr(0);
    if (V != 0.0)
      ByName[std::string(P.nameOf(Id))] += V;
  }
  Profile Up = bottomUpTree(P);
  MetricView View(Up, 0);
  std::map<std::string, double> FirstLevel;
  for (NodeId Child : Up.node(Up.root()).Children)
    FirstLevel[std::string(Up.nameOf(Child))] += View.inclusive(Child);
  for (const auto &[Name, Value] : ByName)
    EXPECT_NEAR(FirstLevel[Name], Value, 1e-6) << Name;
}

TEST_P(RandomProfileProperty, PruneConservesAndShrinks) {
  Profile Pruned = pruneByFraction(P, 0, 0.05);
  EXPECT_NEAR(metricTotal(Pruned, 0), metricTotal(P, 0), 1e-6);
  EXPECT_LE(Pruned.nodeCount(), P.nodeCount());
  EXPECT_TRUE(Pruned.verify().ok());
}

TEST_P(RandomProfileProperty, SelfDiffIsAllCommon) {
  DiffResult D = diffProfiles(P, P, 0);
  for (NodeId Id = 0; Id < D.Merged.nodeCount(); ++Id) {
    EXPECT_EQ(D.Tags[Id], DiffTag::Common);
    EXPECT_NEAR(D.BaseInclusive[Id], D.TestInclusive[Id], 1e-9);
  }
}

TEST_P(RandomProfileProperty, DiffDeltaDecomposes) {
  Profile Q = test::makeRandomProfile(GetParam() + 1000);
  DiffResult D = diffProfiles(P, Q, 0);
  // Delta total == testTotal - baseTotal.
  EXPECT_NEAR(metricTotal(D.Merged, D.DeltaMetric),
              metricTotal(Q, 0) - metricTotal(P, 0), 1e-6);
}

TEST_P(RandomProfileProperty, AggregateOfSelfDoubles) {
  const Profile *Inputs[] = {&P, &P};
  AggregatedProfile Agg = aggregate(Inputs);
  EXPECT_EQ(Agg.merged().nodeCount(), P.nodeCount());
  EXPECT_NEAR(metricTotal(Agg.merged(), 0), 2.0 * metricTotal(P, 0), 1e-6);
}

TEST_P(RandomProfileProperty, AggregateSeriesSumToMergedValue) {
  Profile Q = test::makeRandomProfile(GetParam() + 500);
  const Profile *Inputs[] = {&P, &Q};
  AggregatedProfile Agg = aggregate(Inputs);
  const Profile &M = Agg.merged();
  for (NodeId Id = 0; Id < M.nodeCount(); ++Id) {
    std::vector<double> Series = Agg.perProfileExclusive(Id, 0);
    if (Series.empty())
      continue;
    double Sum = 0.0;
    for (double V : Series)
      Sum += V;
    EXPECT_NEAR(Sum, M.node(Id).metricOr(0), 1e-6);
  }
}

TEST_P(RandomProfileProperty, FlameGeometryIsWellFormed) {
  FlameGraph G(P, 0);
  double Total = G.totalValue();
  if (Total <= 0.0)
    return;
  for (const FlameRect &R : G.rects()) {
    EXPECT_GE(R.X, -1e-12);
    EXPECT_LE(R.X + R.Width, 1.0 + 1e-9);
    EXPECT_GT(R.Width, 0.0);
    EXPECT_GE(R.Value, 0.0);
  }
  // Rect count + culled count covers every node with inclusive > 0.
  size_t NonZero = 0;
  MetricView View(P, 0);
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    if (View.inclusive(Id) > 0.0)
      ++NonZero;
  EXPECT_LE(G.rects().size(), NonZero);
}

TEST_P(RandomProfileProperty, FilterKeepAllIsStructurePreserving) {
  Profile F = filterNodes(P, [](const Profile &, NodeId) { return true; });
  EXPECT_EQ(F.nodeCount(), P.nodeCount());
  for (MetricId M = 0; M < P.metrics().size(); ++M)
    EXPECT_NEAR(metricTotal(F, M), metricTotal(P, M), 1e-6);
}

TEST_P(RandomProfileProperty, CollapseRecursionIdempotent) {
  Profile Once = collapseRecursion(P);
  Profile Twice = collapseRecursion(Once);
  EXPECT_EQ(Once.nodeCount(), Twice.nodeCount());
  EXPECT_NEAR(metricTotal(Once, 0), metricTotal(Twice, 0), 1e-6);
}
