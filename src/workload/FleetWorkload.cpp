//===- workload/FleetWorkload.cpp - Fleet regression corpus ---------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workload/FleetWorkload.h"

#include "profile/ProfileBuilder.h"
#include "support/Rng.h"

#include <algorithm>

namespace ev {
namespace workload {

namespace {

/// Builds one fleet snapshot. \p Planted selects the drifted tree of the
/// last version; \p R drives the per-replica value noise only, so every
/// replica of a version has an identical tree.
Profile buildSnapshot(const FleetOptions &Opts, unsigned Version,
                      unsigned Replica, bool Planted) {
  // Per-replica noise stream: distinct across (version, replica) so even
  // the noise-only version pair compares genuinely different samples.
  Rng R(Opts.Seed * 1000003ULL + Version * 1009ULL + Replica);
  auto Noisy = [&](double V) { return V * (1.0 + Opts.NoiseSigma * R.normal()); };

  ProfileBuilder B("fleet v" + std::to_string(Version) + " replica " +
                   std::to_string(Replica));
  MetricId Cpu = B.addMetric("cpu-time", "nanoseconds");
  MetricId Alloc = B.addMetric("alloc-bytes", "bytes");
  const double Unit = 1e6; // 1 weight point = 1ms of cpu.
  const double MB = 1024.0 * 1024.0;

  auto Leaf = [&](std::vector<FrameId> Path, MetricId M, double V) {
    B.addSample(Path, M, Noisy(V));
  };

  // --- Service 0: storefront. EVL300 / EVL302 / EVL304 plants. ----------
  {
    FrameId Main = B.functionFrame("svc0::main", "svc0.cc", 10, "svc0");
    FrameId Dispatch =
        B.functionFrame("rpc_dispatch", "rpc.cc", 40, "svc0");
    Leaf({Main, Dispatch, B.functionFrame("handler_browse", "h.cc", 5, "svc0")},
         Cpu, 90 * Unit);
    Leaf({Main, Dispatch, B.functionFrame("handler_search", "h.cc", 25, "svc0")},
         Cpu, 60 * Unit);

    // EVL304: the whole render subtree grows x1.6, lifting its share of
    // the fleet total by 6-9 points depending on the filler services.
    double Render = Planted ? 1.6 : 1.0;
    FrameId Pipe =
        B.functionFrame("render_pipeline", "render.cc", 80, "svc0");
    Leaf({Main, Pipe, B.functionFrame("rasterize", "render.cc", 120, "svc0")},
         Cpu, 120 * Unit * Render);
    Leaf({Main, Pipe, B.functionFrame("composite", "render.cc", 200, "svc0")},
         Cpu, 80 * Unit * Render);

    // EVL300: one payment leaf regresses x1.6.
    Leaf({Main, B.functionFrame("checkout::charge_card", "pay.cc", 33, "svc0")},
         Cpu, 50 * Unit * (Planted ? 1.6 : 1.0));

    // EVL302: a brand-new context holding ~2% of the test total.
    if (Planted)
      Leaf({Main, B.functionFrame("tls_resume_cache", "tls.cc", 61, "svc0")},
           Cpu, 25 * Unit);

    // Healthy allocation baseline.
    Leaf({Main, B.functionFrame("buffer_pool_reserve", "pool.cc", 9, "svc0")},
         Alloc, 64 * MB);
  }

  // --- Service 1: media. EVL301 / EVL303 plants. ------------------------
  {
    FrameId Main = B.functionFrame("svc1::main", "svc1.cc", 10, "svc1");
    FrameId Dispatch =
        B.functionFrame("rpc_dispatch", "rpc.cc", 40, "svc1");
    Leaf({Main, Dispatch, B.functionFrame("handler_upload", "h.cc", 7, "svc1")},
         Cpu, 70 * Unit);
    Leaf({Main, Dispatch, B.functionFrame("handler_stream", "h.cc", 31, "svc1")},
         Cpu, 50 * Unit);

    FrameId Transcode =
        B.functionFrame("media::transcode", "codec.cc", 15, "svc1");
    Leaf({Main, Transcode,
          B.functionFrame("modern_codec_decode", "codec.cc", 90, "svc1")},
         Cpu, 70 * Unit);
    // EVL303: this 3%-share context vanishes from the last version.
    if (!Planted)
      Leaf({Main, Transcode,
            B.functionFrame("legacy_codec_decode", "codec.cc", 210, "svc1")},
           Cpu, 30 * Unit);

    // EVL301: the cache gets dramatically faster.
    Leaf({Main, B.functionFrame("cache_lookup", "cache.cc", 44, "svc1")},
         Cpu, 80 * Unit * (Planted ? 0.45 : 1.0));

    Leaf({Main, B.functionFrame("decode_buffer", "codec.cc", 130, "svc1")},
         Alloc, 32 * MB);
  }

  // --- Service 2: shard router. EVL305 / EVL306 plants. -----------------
  {
    FrameId Main = B.functionFrame("svc2::main", "svc2.cc", 10, "svc2");
    // EVL305: the router's distinct-callee count explodes 3 -> 24 while
    // the subtree's total stays flat (pure context splitting).
    FrameId Router =
        B.functionFrame("shard_router", "route.cc", 22, "svc2");
    unsigned Shards = Planted ? 24 : 3;
    double PerShard = 120.0 / Shards;
    for (unsigned S = 0; S < Shards; ++S)
      Leaf({Main, Router,
            B.functionFrame("shard_" + std::to_string(S), "route.cc",
                            100 + S, "svc2")},
           Cpu, PerShard * Unit);

    FrameId Worker =
        B.functionFrame("worker_loop", "worker.cc", 12, "svc2");
    Leaf({Main, Worker, B.functionFrame("apply_batch", "worker.cc", 77, "svc2")},
         Cpu, 100 * Unit);
    Leaf({Main, B.functionFrame("gc_background", "gc.cc", 5, "svc2")},
         Cpu, 80 * Unit);

    // EVL306: the arena's bytes drift x1.6 with cpu flat.
    Leaf({Main, Worker, B.functionFrame("arena_alloc", "arena.cc", 18, "svc2")},
         Alloc, 48 * MB * (Planted ? 1.6 : 1.0));
  }

  // --- Filler services: stable dispatch trees, noise only. --------------
  for (unsigned Svc = 3; Svc < Opts.Services; ++Svc) {
    // Weights depend on the service index only, never on version/replica.
    Rng W(Opts.Seed ^ (0xF1EE7000ULL + Svc));
    std::string Tag = "svc" + std::to_string(Svc);
    FrameId Main =
        B.functionFrame(Tag + "::main", Tag + ".cc", 10, Tag);
    FrameId Dispatch = B.functionFrame("rpc_dispatch", "rpc.cc", 40, Tag);
    unsigned Handlers = 2 + static_cast<unsigned>(W.below(4));
    for (unsigned H = 0; H < Handlers; ++H)
      Leaf({Main, Dispatch,
            B.functionFrame("handler_" + std::to_string(H), "h.cc", 5 + H,
                            Tag)},
           Cpu, static_cast<double>(W.range(20, 90)) * Unit);
  }

  return B.take();
}

} // namespace

FleetWorkload generateFleetWorkload(const FleetOptions &Options) {
  FleetOptions Opts = Options;
  Opts.Services = std::max(3u, Opts.Services);
  Opts.Versions = std::max(3u, Opts.Versions);
  Opts.Replicas = std::max(1u, Opts.Replicas);

  FleetWorkload Out;
  Out.Versions.resize(Opts.Versions);
  for (unsigned V = 0; V < Opts.Versions; ++V) {
    bool Planted = V + 1 == Opts.Versions;
    for (unsigned R = 0; R < Opts.Replicas; ++R)
      Out.Versions[V].push_back(buildSnapshot(Opts, V, R, Planted));
  }
  Out.Planted = {
      {"EVL300", "checkout::charge_card"},
      {"EVL301", "cache_lookup"},
      {"EVL302", "tls_resume_cache"},
      {"EVL303", "legacy_codec_decode"},
      {"EVL304", "render_pipeline"},
      {"EVL305", "shard_router"},
      {"EVL306", "arena_alloc"},
      // The arena drift alone moves the fleet's alloc-bytes total by ~20%,
      // so the whole-cohort rule fires too.
      {"EVL308", "alloc-bytes"},
  };
  return Out;
}

} // namespace workload
} // namespace ev
