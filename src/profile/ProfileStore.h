//===- profile/ProfileStore.h - Shared out-of-core profile store ----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, refcounted store of immutable profiles, shared by every
/// session of a concurrent PVP service (ide/SessionManager.h). Profiles
/// are held as `std::shared_ptr<const Profile>`: a request that resolved a
/// profile keeps its own reference for the duration of the request, so a
/// concurrent close in another session retires the id immediately but the
/// in-flight request keeps reading a live object — no locks are held
/// during analysis, and the memory is reclaimed when the last reference
/// drops.
///
/// Beyond the refcounted map, the store is EasyView's out-of-core layer
/// (docs/PERF.md "Columnar store"): each profile can additionally exist as
/// a ColumnarProfile — flat SoA columns in one page-aligned block, strings
/// deduplicated across profiles through a store-wide SharedStringTable.
/// With a byte budget configured (setBudget), the store keeps hot profiles
/// fully materialized and sheds cold ones in two LRU tiers:
///
///   1. drop the decoded AoS Profile (cheap — rebuilt from columns on the
///      next get(), the "lazy decode" fault path);
///   2. spill the column block to `<spillDir>/seg-<id>.evcol` and drop it
///      (faulted back by mmap, zero decode).
///
/// Column blocks are immutable, so a block that was spilled once is never
/// rewritten — later evictions just drop the resident copy. Analyses that
/// understand columns (aggregate, CohortAccumulator) read them through
/// columnar() without ever paying for AoS materialization. stats() exposes
/// the accounting that pvp/stats and `evtool store --stats` report.
///
/// Ids are allocated from a single store-wide counter, so they are unique
/// across every session sharing the store (the shared view cache keys on
/// them). Each profile also carries an invalidation generation, bumped by
/// state-retiring methods (close/query/transform/prune); cached views
/// record the generation they were computed at and are revalidated on
/// every cache hit.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_PROFILE_PROFILESTORE_H
#define EASYVIEW_PROFILE_PROFILESTORE_H

#include "profile/Columnar.h"
#include "profile/Profile.h"
#include "profile/StoreBudget.h"
#include "proto/EvProfStream.h"
#include "support/Result.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ev {

class ProfileStore {
public:
  ProfileStore() = default;
  /// Removes every spill file this store wrote.
  ~ProfileStore();
  ProfileStore(const ProfileStore &) = delete;
  ProfileStore &operator=(const ProfileStore &) = delete;

  /// Registers \p P under a fresh store-unique id.
  int64_t add(Profile P) {
    return add(std::make_shared<const Profile>(std::move(P)));
  }

  /// Registers an already-shared profile under a fresh id. Under an
  /// active budget the columnar form is built immediately (interning the
  /// profile's strings into the shared table) and cold entries are shed
  /// to stay within the budget.
  int64_t add(std::shared_ptr<const Profile> P);

  /// Opens a *streaming* profile from the leading bytes of a growing
  /// .evprof (at minimum the magic plus enough canonical-order fields to
  /// decode one node). The returned id behaves like any other profile, and
  /// additionally accepts append() sections. \p Limits bound the whole
  /// stream's decode cost, not just this prefix.
  Result<int64_t> openStream(std::string_view InitialBytes,
                             const DecodeLimits &Limits);

  /// Feeds additional bytes of the growing .evprof behind \p Id — any
  /// chunking, including mid-field splits; incomplete tails are buffered.
  /// On progress the profile snapshot is atomically replaced, stale
  /// columnar/spill forms are discarded, and the invalidation generation
  /// is bumped (so cached views retire and subscribers get deltas).
  ///
  /// Works on non-streamed profiles too: the first append bootstraps a
  /// decoder by replaying the profile's canonical writeEvProf form, so the
  /// appended section's wire references resolve against the canonical
  /// table order. \p Limits is used only for that bootstrap.
  ///
  /// \returns the number of nodes the profile gained. A structural error
  /// poisons the stream — the profile stays readable at its last good
  /// snapshot, but every later append fails with the same diagnostic.
  Result<size_t> append(int64_t Id, std::string_view Bytes,
                        const DecodeLimits &Limits);

  /// \returns the profile for \p Id, or nullptr when absent. The returned
  /// reference keeps the profile alive independent of a concurrent drop().
  /// A budget-evicted profile is faulted back in transparently (remapped
  /// from its spill file and rematerialized from columns); the result is
  /// byte-identical to the originally added profile.
  std::shared_ptr<const Profile> get(int64_t Id) const;

  /// \returns the columnar form of \p Id (building, or remapping from the
  /// spill file, on demand), or nullptr when absent. The block and every
  /// string id it references stay valid for the life of this store.
  std::shared_ptr<const ColumnarProfile> columnar(int64_t Id) const;

  /// Retires \p Id from the store (in-flight references stay valid) and
  /// deletes its spill file. \returns true when the id was present.
  bool drop(int64_t Id);

  /// \returns the invalidation generation of \p Id (0 until bumped).
  uint64_t generationOf(int64_t Id) const;

  /// Invalidates every cached view of \p Id by advancing its generation.
  void bumpGeneration(int64_t Id);

  size_t size() const;

  /// Configures the resident-byte budget. \p Bytes == 0 disables
  /// eviction; otherwise \p SpillDir (created if missing) receives cold
  /// column segments. Existing entries gain columnar forms immediately so
  /// every profile is spillable, then the budget is enforced. Best
  /// effort: a single profile larger than the budget stays resident while
  /// it is the one in use.
  Result<bool> setBudget(uint64_t Bytes, const std::string &SpillDir);

  /// Point-in-time accounting snapshot (see StoreStats).
  StoreStats stats() const;

  /// The store-wide deduplicating string table backing every columnar
  /// profile.
  const SharedStringTable &sharedStrings() const { return Strings; }

private:
  struct Entry {
    std::shared_ptr<const Profile> Aos;       ///< null when shed (tier 1).
    std::shared_ptr<const ColumnarProfile> Col; ///< null when spilled.
    uint64_t AosBytes = 0;       ///< Resident AoS bytes (0 when shed).
    uint64_t ColBytes = 0;       ///< Resident column-block bytes.
    uint64_t SpillFileBytes = 0; ///< >0 once a spill file exists on disk.
    std::string SpillPath;
    /// Present on streaming profiles: the live decoder whose snapshots
    /// replace Aos on append. Its working profile is NOT budget-charged
    /// (it is the stream's working state, bounded by its DecodeLimits).
    std::unique_ptr<EvProfStreamDecoder> Stream;
  };

  /// Builds the columnar form of \p E (requires E.Aos) and charges it.
  void buildColumnarLocked(int64_t Id, Entry &E) const;
  /// Faults the AoS form back in (remapping the spill file if needed).
  /// \returns nullptr when the entry is unrecoverable.
  std::shared_ptr<const Profile> ensureAosLocked(int64_t Id, Entry &E) const;
  /// Replaces \p E's snapshot with the decoder's current profile,
  /// discarding stale columnar/spill forms, and bumps Id's generation.
  void refreshSnapshotLocked(int64_t Id, Entry &E);
  /// Sheds cold entries until under budget; \p Pinned is never evicted.
  void enforceLocked(int64_t Pinned) const;
  uint64_t residentOf(const Entry &E) const {
    return E.AosBytes + E.ColBytes;
  }
  std::string spillPathFor(int64_t Id) const;

  mutable std::mutex Mutex;
  mutable std::map<int64_t, Entry> Profiles;
  std::map<int64_t, uint64_t> Generations;
  mutable SharedStringTable Strings;
  mutable StoreBudget Budget;
  mutable StoreStats Counters; ///< Cumulative fields; gauges derived.
  std::string SpillDir;
  int64_t NextId = 1;
};

} // namespace ev

#endif // EASYVIEW_PROFILE_PROFILESTORE_H
