//===- bench/bench_fig5_response_time.cpp - Paper Fig. 5 ------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 5 (and Appendix A2): end-to-end response time to OPEN a
/// pprof profile — parsing, tree construction, metric computation, first
/// top-down flame-graph render — for EasyView versus the default-pprof and
/// GoLand-plugin baselines, across profile sizes.
///
/// The paper sweeps ~1MB to ~1GB production profiles; the sizes here are
/// scaled to laptop-class CI (1MB..64MB synthetic equivalents; the 1GB
/// point is reported as an extrapolation note in EXPERIMENTS.md). Expected
/// SHAPE: EasyView < GoLand < PProf at every size, gap widening with size.
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "baseline/GolandTreeTable.h"
#include "baseline/PprofFlameView.h"
#include "core/EasyView.h"
#include "workload/SyntheticProfile.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <map>

using namespace ev;

namespace {

const std::string &profileBytes(size_t Mb) {
  static std::map<size_t, std::string> Cache;
  auto It = Cache.find(Mb);
  if (It != Cache.end())
    return It->second;
  workload::SyntheticOptions Opt;
  Opt.Seed = 42;
  Opt.TargetBytes = Mb << 20;
  return Cache.emplace(Mb, workload::generatePprofBytes(Opt)).first->second;
}

void easyViewOpen(benchmark::State &State) {
  const std::string &Bytes = profileBytes(static_cast<size_t>(State.range(0)));
  double LastMs = 0.0;
  for (auto _ : State) {
    EasyViewEngine Engine;
    auto R = Engine.openProfileBytes(Bytes, "bench");
    benchmark::DoNotOptimize(R);
    LastMs = Engine.lastOpenStats().totalMs();
  }
  State.counters["open_ms"] = LastMs;
  State.counters["input_mb"] =
      static_cast<double>(Bytes.size()) / (1 << 20);
}

void pprofOpen(benchmark::State &State) {
  const std::string &Bytes = profileBytes(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    auto R = baseline::openWithPprofView(Bytes);
    benchmark::DoNotOptimize(R);
  }
  State.counters["input_mb"] =
      static_cast<double>(Bytes.size()) / (1 << 20);
}

void golandOpen(benchmark::State &State) {
  const std::string &Bytes = profileBytes(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    auto R = baseline::openWithGolandView(Bytes);
    benchmark::DoNotOptimize(R);
  }
  State.counters["input_mb"] =
      static_cast<double>(Bytes.size()) / (1 << 20);
}

BENCHMARK(easyViewOpen)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(golandOpen)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(pprofOpen)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Prints the figure rows with one timed run per (tool, size).
void printFigure() {
  bench::row("Fig5: response time to open a profile (ms); lower is better");
  bench::row("(sizes scaled to CI hardware; the paper sweeps 1MB..1GB "
             "production profiles)");
  bench::row("%-8s %12s %12s %12s", "size", "EasyView", "GoLand", "PProf");
  for (size_t Mb : {1, 2, 4, 8}) {
    const std::string &Bytes = profileBytes(Mb);
    auto TimeMs = [&](auto Fn) {
      auto T0 = std::chrono::steady_clock::now();
      Fn();
      auto T1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(T1 - T0).count();
    };
    double Ev = TimeMs([&] {
      EasyViewEngine Engine;
      auto R = Engine.openProfileBytes(Bytes);
      benchmark::DoNotOptimize(R);
    });
    double Gl = TimeMs([&] {
      auto R = baseline::openWithGolandView(Bytes);
      benchmark::DoNotOptimize(R);
    });
    double Pp = TimeMs([&] {
      auto R = baseline::openWithPprofView(Bytes);
      benchmark::DoNotOptimize(R);
    });
    bench::row("%-6zuMB %12.1f %12.1f %12.1f", Mb, Ev, Gl, Pp);
  }
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printFigure();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
