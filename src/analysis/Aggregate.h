//===- analysis/Aggregate.h - Multi-profile aggregation -------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operations across multiple profiles (paper §V-A(c)): the aggregation
/// operation merges N profiles into one unified tree, keeps the per-profile
/// metric values of every context (these feed the per-context histograms of
/// the aggregate view, Fig. 4), and derives statistical metrics (sum, min,
/// max, mean, and standard deviation) as additional columns.
///
/// Contexts match across profiles when their frames are textually
/// identical (name, file, line, module) and their parents match — the same
/// "two nodes are differentiable if all the ancestors are differentiable"
/// rule the paper uses for differencing.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_AGGREGATE_H
#define EASYVIEW_ANALYSIS_AGGREGATE_H

#include "profile/Profile.h"
#include "support/Cancel.h"

#include <span>
#include <unordered_map>
#include <vector>

namespace ev {

class ColumnarProfile;

/// Which derived statistics aggregate() appends as metric columns.
struct AggregateOptions {
  bool WithSum = true;  ///< "<metric>" column: sum across profiles.
  bool WithMin = false; ///< "<metric>.min".
  bool WithMax = false; ///< "<metric>.max".
  bool WithMean = false; ///< "<metric>.mean".
  bool WithStddev = false; ///< "<metric>.stddev" (population).
};

/// Result of aggregating N profiles.
class AggregatedProfile {
public:
  /// The unified tree. Metric columns are the derived statistics selected
  /// in AggregateOptions, in declaration order per input metric.
  const Profile &merged() const { return Merged; }
  Profile &merged() { return Merged; }

  size_t profileCount() const { return ProfileCount; }
  size_t inputMetricCount() const { return InputMetricCount; }

  /// Per-profile EXCLUSIVE values of input metric \p Metric at merged node
  /// \p Node; the vector has one slot per input profile (zero when the
  /// context is absent from that profile). Returns an empty vector when
  /// the node recorded no values.
  std::vector<double> perProfileExclusive(NodeId Node, MetricId Metric) const;

  /// Per-profile INCLUSIVE values at \p Node — the histogram the aggregate
  /// view attaches to a context (Fig. 4 shows active bytes per snapshot).
  std::vector<double> perProfileInclusive(NodeId Node, MetricId Metric) const;

  /// Internal: key for the sparse per-profile store.
  static uint64_t sampleKey(NodeId Node, MetricId Metric) {
    return (static_cast<uint64_t>(Node) << 16) | Metric;
  }

private:
  /// Backstage pass for the shared merge implementation (Aggregate.cpp),
  /// which is templated over the input representation (AoS or columnar)
  /// so both public overloads run the exact same algorithm.
  friend struct AggregateAccess;

  Profile Merged;
  size_t ProfileCount = 0;
  size_t InputMetricCount = 0;
  /// Dense per-profile store. KeyIndex maps sampleKey(node, metric) to a
  /// row; KeyOrder remembers first-seen key order so every iteration over
  /// the store is deterministic; row R spans
  /// Matrix[R * ProfileCount .. R * ProfileCount + ProfileCount).
  std::unordered_map<uint64_t, uint32_t> KeyIndex;
  std::vector<uint64_t> KeyOrder;
  std::vector<double> Matrix;
  /// Lazily computed per-profile inclusive columns, one per (metric,
  /// profile): InclusiveColumns[metric * ProfileCount + profile][node].
  mutable std::vector<std::vector<double>> InclusiveColumns;
  mutable bool InclusiveReady = false;

  void ensureInclusive() const;
};

/// Merges \p Profiles (at least one) into a unified tree. All inputs must
/// share the metric schema of the first profile; metrics missing from an
/// input simply contribute zeros. \p Cancel is checked at merge-loop
/// boundaries; a tripped token raises CancelledException.
AggregatedProfile aggregate(std::span<const Profile *const> Profiles,
                            const AggregateOptions &Options = {},
                            const CancelToken &Cancel = {});

/// Same merge over columnar profiles (profile/Columnar.h): the tree walk
/// sweeps flat parent/frame columns and the matrix fill reads the metric
/// CSR directly, skipping AoS materialization entirely. Produces output
/// writeEvProf-byte-identical to the AoS overload on the same inputs
/// (both instantiate one shared implementation).
AggregatedProfile aggregate(std::span<const ColumnarProfile *const> Profiles,
                            const AggregateOptions &Options = {},
                            const CancelToken &Cancel = {});

} // namespace ev

#endif // EASYVIEW_ANALYSIS_AGGREGATE_H
