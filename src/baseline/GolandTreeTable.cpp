//===- baseline/GolandTreeTable.cpp - GoLand-plugin-style baseline --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "baseline/GolandTreeTable.h"

#include "proto/PprofFormat.h"
#include "support/Strings.h"

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

namespace ev {
namespace baseline {

namespace {

/// The plugin's UI-model tree node: display strings inline, children in a
/// plain list searched linearly per insertion (the Swing TreeModel
/// pattern; there is no hashed child index).
struct UiNode {
  std::string DisplayName;
  std::string Location;
  double Total = 0.0;
  double Self = 0.0;
  std::vector<std::unique_ptr<UiNode>> Children;

  UiNode *childNamed(const std::string &Name) {
    for (auto &Child : Children)
      if (Child->DisplayName == Name)
        return Child.get();
    return nullptr;
  }
};

struct RowStats {
  size_t Rows = 0;
  size_t ModelBytes = 0;
};

/// Materializes the formatted row strings for every node, eagerly, as the
/// table widget does on open.
void materializeRows(const UiNode &Node, double Total, RowStats &Stats) {
  std::string TotalFormatted = formatMetric(Node.Total, "nanoseconds");
  std::string SelfFormatted = formatMetric(Node.Self, "nanoseconds");
  std::string Percent =
      formatDouble(Total > 0 ? 100.0 * Node.Total / Total : 0.0, 2) + "%";
  std::string Tooltip = Node.DisplayName + "\n" + Node.Location +
                        "\ntotal " + TotalFormatted + " (" + Percent +
                        "), self " + SelfFormatted;
  ++Stats.Rows;
  Stats.ModelBytes += Node.DisplayName.size() + Node.Location.size() +
                      TotalFormatted.size() + SelfFormatted.size() +
                      Percent.size() + Tooltip.size();
  for (const auto &Child : Node.Children)
    materializeRows(*Child, Total, Stats);
}

void sortChildren(UiNode &Node) {
  std::sort(Node.Children.begin(), Node.Children.end(),
            [](const std::unique_ptr<UiNode> &A,
               const std::unique_ptr<UiNode> &B) {
              if (A->Total != B->Total)
                return A->Total > B->Total;
              return A->DisplayName < B->DisplayName;
            });
  for (auto &Child : Node.Children)
    sortChildren(*Child);
}

} // namespace

Result<GolandViewResult> openWithGolandView(std::string_view PprofBytes) {
  Result<pprof::PprofProfile> Parsed = pprof::read(PprofBytes);
  if (!Parsed)
    return makeError(Parsed.error());
  const pprof::PprofProfile &P = *Parsed;
  if (P.SampleTypes.empty())
    return makeError("profile has no sample types");

  // Symbolization: location id -> (display name, location string).
  std::map<uint64_t, const pprof::Function *> Functions;
  for (const pprof::Function &F : P.Functions)
    Functions.emplace(F.Id, &F);
  std::map<uint64_t, std::pair<std::string, std::string>> LocationNames;
  for (const pprof::Location &L : P.Locations) {
    std::string Name = "0x" + std::to_string(L.Address);
    std::string Where;
    if (!L.Lines.empty()) {
      auto It = Functions.find(L.Lines.front().FunctionId);
      if (It != Functions.end()) {
        Name = std::string(P.text(It->second->Name));
        Where = std::string(P.text(It->second->Filename)) + ":" +
                std::to_string(L.Lines.front().LineNumber);
      }
    }
    LocationNames.emplace(L.Id, std::make_pair(std::move(Name),
                                               std::move(Where)));
  }

  // Tree construction: per sample, walk root-first; child lookup is a
  // linear scan comparing display strings (no interning, no hash index).
  UiNode Root;
  Root.DisplayName = "root";
  double GrandTotal = 0.0;
  for (const pprof::Sample &S : P.Samples) {
    double Value = S.Values.empty() ? 0.0
                                    : static_cast<double>(S.Values[0]);
    GrandTotal += Value;
    UiNode *Cur = &Root;
    Cur->Total += Value;
    for (size_t I = S.LocationIds.size(); I > 0; --I) {
      auto It = LocationNames.find(S.LocationIds[I - 1]);
      const std::string &Name =
          It == LocationNames.end() ? Root.DisplayName : It->second.first;
      UiNode *Child = Cur->childNamed(Name);
      if (!Child) {
        auto New = std::make_unique<UiNode>();
        New->DisplayName = Name;
        if (It != LocationNames.end())
          New->Location = It->second.second;
        Child = New.get();
        Cur->Children.push_back(std::move(New));
      }
      Child->Total += Value;
      Cur = Child;
    }
    Cur->Self += Value;
  }

  // Widget preparation: sort every child list and materialize every row.
  sortChildren(Root);
  RowStats Stats;
  materializeRows(Root, GrandTotal, Stats);

  GolandViewResult Out;
  Out.Rows = Stats.Rows;
  Out.ModelBytes = Stats.ModelBytes;
  return Out;
}

} // namespace baseline
} // namespace ev
