//===- query/Lexer.cpp - EVQL token stream ---------------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "query/Lexer.h"

#include "support/Strings.h"

#include <cctype>

namespace ev {
namespace evql {

std::string_view tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Number:
    return "number";
  case TokenKind::String:
    return "string";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::KwLet:
    return "'let'";
  case TokenKind::KwDerive:
    return "'derive'";
  case TokenKind::KwPrune:
    return "'prune'";
  case TokenKind::KwKeep:
    return "'keep'";
  case TokenKind::KwWhen:
    return "'when'";
  case TokenKind::KwPrint:
    return "'print'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::BangEqual:
    return "'!='";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::EndOfInput:
    return "end of input";
  }
  return "unknown token";
}

namespace {

TokenKind keywordKind(std::string_view Word) {
  if (Word == "let")
    return TokenKind::KwLet;
  if (Word == "derive")
    return TokenKind::KwDerive;
  if (Word == "prune")
    return TokenKind::KwPrune;
  if (Word == "keep")
    return TokenKind::KwKeep;
  if (Word == "when")
    return TokenKind::KwWhen;
  if (Word == "print")
    return TokenKind::KwPrint;
  if (Word == "return")
    return TokenKind::KwReturn;
  if (Word == "true")
    return TokenKind::KwTrue;
  if (Word == "false")
    return TokenKind::KwFalse;
  return TokenKind::Identifier;
}

} // namespace

Result<std::vector<Token>> lex(std::string_view Source) {
  std::vector<Token> Tokens;
  size_t Pos = 0;
  size_t Line = 1;
  size_t LineStart = 0; ///< Offset of the current line's first byte.

  // 1-based column of \p At on the current line.
  auto ColumnAt = [&](size_t At) { return At - LineStart + 1; };
  size_t TokenStart = 0; ///< Offset of the token being lexed.

  auto Fail = [&](std::string Message) {
    return makeError(Message + " at line " + std::to_string(Line) + ":" +
                     std::to_string(ColumnAt(Pos)));
  };
  auto Push = [&](TokenKind Kind, std::string Text = "") {
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.Line = Line;
    T.Column = ColumnAt(TokenStart);
    Tokens.push_back(std::move(T));
  };

  while (Pos < Source.size()) {
    char C = Source[Pos];
    TokenStart = Pos;
    if (C == '\n') {
      ++Line;
      ++Pos;
      LineStart = Pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    if (C == '#') {
      while (Pos < Source.size() && Source[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Source.size() &&
             (std::isalnum(static_cast<unsigned char>(Source[Pos])) ||
              Source[Pos] == '_'))
        ++Pos;
      std::string_view Word = Source.substr(Start, Pos - Start);
      Push(keywordKind(Word), std::string(Word));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && Pos + 1 < Source.size() &&
         std::isdigit(static_cast<unsigned char>(Source[Pos + 1])))) {
      size_t Start = Pos;
      while (Pos < Source.size() &&
             (std::isdigit(static_cast<unsigned char>(Source[Pos])) ||
              Source[Pos] == '.' || Source[Pos] == 'e' ||
              Source[Pos] == 'E' ||
              ((Source[Pos] == '+' || Source[Pos] == '-') && Pos > Start &&
               (Source[Pos - 1] == 'e' || Source[Pos - 1] == 'E'))))
        ++Pos;
      double Number;
      if (!parseDouble(Source.substr(Start, Pos - Start), Number))
        return Fail("invalid number literal");
      Token T;
      T.Kind = TokenKind::Number;
      T.Number = Number;
      T.Line = Line;
      T.Column = ColumnAt(Start);
      Tokens.push_back(std::move(T));
      continue;
    }
    if (C == '"') {
      ++Pos;
      std::string Text;
      while (Pos < Source.size() && Source[Pos] != '"') {
        char S = Source[Pos++];
        if (S == '\\' && Pos < Source.size()) {
          char E = Source[Pos++];
          switch (E) {
          case 'n':
            Text.push_back('\n');
            break;
          case 't':
            Text.push_back('\t');
            break;
          case '"':
            Text.push_back('"');
            break;
          case '\\':
            Text.push_back('\\');
            break;
          default:
            return Fail("unknown escape in string literal");
          }
          continue;
        }
        if (S == '\n')
          return Fail("newline in string literal");
        Text.push_back(S);
      }
      if (Pos >= Source.size())
        return Fail("unterminated string literal");
      ++Pos;
      Push(TokenKind::String, std::move(Text));
      continue;
    }

    auto Two = [&](char Next, TokenKind Double, TokenKind Single) {
      if (Pos + 1 < Source.size() && Source[Pos + 1] == Next) {
        Push(Double);
        Pos += 2;
        return true;
      }
      if (Single == TokenKind::EndOfInput)
        return false;
      Push(Single);
      ++Pos;
      return true;
    };

    switch (C) {
    case '(':
      Push(TokenKind::LParen);
      ++Pos;
      break;
    case ')':
      Push(TokenKind::RParen);
      ++Pos;
      break;
    case ',':
      Push(TokenKind::Comma);
      ++Pos;
      break;
    case ';':
      Push(TokenKind::Semicolon);
      ++Pos;
      break;
    case '+':
      Push(TokenKind::Plus);
      ++Pos;
      break;
    case '-':
      Push(TokenKind::Minus);
      ++Pos;
      break;
    case '*':
      Push(TokenKind::Star);
      ++Pos;
      break;
    case '/':
      Push(TokenKind::Slash);
      ++Pos;
      break;
    case '%':
      Push(TokenKind::Percent);
      ++Pos;
      break;
    case '?':
      Push(TokenKind::Question);
      ++Pos;
      break;
    case ':':
      Push(TokenKind::Colon);
      ++Pos;
      break;
    case '=':
      (void)Two('=', TokenKind::EqualEqual, TokenKind::Assign);
      break;
    case '!':
      (void)Two('=', TokenKind::BangEqual, TokenKind::Bang);
      break;
    case '<':
      (void)Two('=', TokenKind::LessEqual, TokenKind::Less);
      break;
    case '>':
      (void)Two('=', TokenKind::GreaterEqual, TokenKind::Greater);
      break;
    case '&':
      if (!Two('&', TokenKind::AmpAmp, TokenKind::EndOfInput))
        return Fail("stray '&' (did you mean '&&'?)");
      break;
    case '|':
      if (!Two('|', TokenKind::PipePipe, TokenKind::EndOfInput))
        return Fail("stray '|' (did you mean '||'?)");
      break;
    default:
      return Fail(std::string("unexpected character '") + C + "'");
    }
  }
  TokenStart = Pos;
  Push(TokenKind::EndOfInput);
  return Tokens;
}

} // namespace evql
} // namespace ev
