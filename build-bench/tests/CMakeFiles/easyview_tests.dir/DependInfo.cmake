
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/easyview_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/easyview_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/butterfly_test.cpp" "tests/CMakeFiles/easyview_tests.dir/butterfly_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/butterfly_test.cpp.o.d"
  "/root/repo/tests/chaos_test.cpp" "tests/CMakeFiles/easyview_tests.dir/chaos_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/chaos_test.cpp.o.d"
  "/root/repo/tests/convert_test.cpp" "tests/CMakeFiles/easyview_tests.dir/convert_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/convert_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/easyview_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/exporters_test.cpp" "tests/CMakeFiles/easyview_tests.dir/exporters_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/exporters_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/easyview_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/easyview_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/ide_test.cpp" "tests/CMakeFiles/easyview_tests.dir/ide_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/ide_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/easyview_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/parallel_test.cpp" "tests/CMakeFiles/easyview_tests.dir/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/parallel_test.cpp.o.d"
  "/root/repo/tests/profile_test.cpp" "tests/CMakeFiles/easyview_tests.dir/profile_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/profile_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/easyview_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/proto_test.cpp" "tests/CMakeFiles/easyview_tests.dir/proto_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/proto_test.cpp.o.d"
  "/root/repo/tests/pvp_actions_test.cpp" "tests/CMakeFiles/easyview_tests.dir/pvp_actions_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/pvp_actions_test.cpp.o.d"
  "/root/repo/tests/query_test.cpp" "tests/CMakeFiles/easyview_tests.dir/query_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/query_test.cpp.o.d"
  "/root/repo/tests/render_test.cpp" "tests/CMakeFiles/easyview_tests.dir/render_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/render_test.cpp.o.d"
  "/root/repo/tests/sema_test.cpp" "tests/CMakeFiles/easyview_tests.dir/sema_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/sema_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/easyview_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/tool_test.cpp" "tests/CMakeFiles/easyview_tests.dir/tool_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/tool_test.cpp.o.d"
  "/root/repo/tests/userstudy_test.cpp" "tests/CMakeFiles/easyview_tests.dir/userstudy_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/userstudy_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/easyview_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/easyview_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-bench/src/CMakeFiles/easyview.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
