//===- proto/EvProfStream.h - Incremental .evprof decoding ----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming decode of a *growing* .evprof byte stream, the ingest side of
/// delta-synced live views: a profiler appends sections to one file while
/// the PVP service tails it (`evtool serve --follow`) and pushes view
/// deltas to subscribed editors.
///
/// The container format makes this possible without a new framing layer: a
/// canonical .evprof (writeEvProf order — name, strings, metrics, frames,
/// nodes, groups) remains a valid prefix at every top-level wire-field
/// boundary, and appending more fields of the same message is exactly the
/// protobuf concatenation rule. The decoder therefore consumes complete
/// top-level fields as they arrive, buffers the incomplete tail, and keeps
/// a live Profile that grows monotonically.
///
/// Eager reference resolution means the stream must be *canonically
/// ordered*: a frame may only reference strings that already arrived, a
/// node only frames/metrics that already arrived, a group only existing
/// nodes. writeEvProf always emits that order, and appended sections obey
/// it by construction (new strings first, then new frames, then new
/// nodes). Out-of-order streams fail with the same reference-range
/// diagnostics the batch decoder gives.
///
/// The invariant tests pin: for any canonical stream split at arbitrary
/// byte positions, writeEvProf(decoder result) is byte-identical to
/// writeEvProf(readEvProf(whole stream)).
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_PROTO_EVPROFSTREAM_H
#define EASYVIEW_PROTO_EVPROFSTREAM_H

#include "profile/Profile.h"
#include "proto/EvProf.h"
#include "support/Limits.h"
#include "support/Result.h"

#include <string>
#include <string_view>
#include <vector>

namespace ev {

/// Incrementally decodes a growing .evprof stream into a live Profile.
///
/// Feed bytes in arrival order (any chunking, including mid-varint
/// splits); every complete top-level field is decoded immediately under
/// the same ResourceGuard budgets as the batch decoder, so a hostile
/// stream can never make the tail grow unboundedly or the profile exceed
/// its decode limits. A structural error poisons the decoder permanently —
/// the profile decoded so far stays readable, but no further bytes are
/// accepted (matching the batch decoder's all-or-nothing contract per
/// section).
class EvProfStreamDecoder {
public:
  explicit EvProfStreamDecoder(const DecodeLimits &Limits);

  EvProfStreamDecoder(const EvProfStreamDecoder &) = delete;
  EvProfStreamDecoder &operator=(const EvProfStreamDecoder &) = delete;

  /// Consumes \p Bytes. \returns the number of *nodes* the live profile
  /// gained (appends that only add strings/frames report 0 — callers use
  /// the count to decide whether views could have changed; metric values
  /// only ever arrive attached to nodes). Structural errors poison the
  /// decoder and are returned (and re-returned on every later call).
  Result<size_t> feed(std::string_view Bytes);

  /// \returns true once the stream decoded at least one node — the point
  /// at which snapshot() starts succeeding (the batch decoder's "profile
  /// stream has no nodes" condition).
  bool hasNodes() const { return WireNodes > 0; }

  /// Deep copy of the live profile, structurally complete and verifiable.
  /// Fails while no node has been decoded yet or after a poisoning error.
  Result<Profile> snapshot() const;

  /// The live profile (valid but node-less before the first node field).
  const Profile &current() const { return P; }

  /// Total bytes accepted (consumed + buffered tail), including magic.
  size_t totalBytes() const { return Total; }
  /// Bytes buffered awaiting a complete top-level field.
  size_t pendingBytes() const { return Pending.size(); }
  /// Wire-level node count (index space of node references on the wire).
  size_t wireNodeCount() const { return WireNodes; }

  bool failed() const { return Poisoned; }
  const std::string &error() const { return Diag; }

private:
  Result<bool> decodeField(uint32_t FieldNumber, std::string_view Payload);
  Result<bool> poison(std::string Message);

  DecodeLimits Limits;   ///< Owned: ResourceGuard keeps a reference.
  ResourceGuard Guard;
  Profile P;
  std::vector<StringId> StringMap; ///< wire string id -> arena id.
  std::vector<FrameId> FrameMap;   ///< wire frame id -> profile frame id.
  std::vector<uint32_t> Depths;    ///< per wire node, for depth limiting.
  size_t WireNodes = 0;
  std::string Pending;
  size_t Total = 0;
  bool MagicSeen = false;
  bool Poisoned = false;
  std::string Diag;
};

} // namespace ev

#endif // EASYVIEW_PROTO_EVPROFSTREAM_H
