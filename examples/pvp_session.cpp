//===- examples/pvp_session.cpp - A Profile Viewer Protocol session -------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shows the editor-facing wire protocol: a client (here: this program,
/// standing in for a VSCode extension host) speaks Content-Length-framed
/// JSON-RPC to a PvpServer — open a profile, fetch the flame geometry,
/// perform the code-link / hover / code-lens / summary actions of paper
/// §VI-B.
///
//===----------------------------------------------------------------------===//

#include "ide/PvpServer.h"
#include "support/Strings.h"
#include "workload/SyntheticProfile.h"
#include "proto/EvProf.h"

#include <cstdio>

using namespace ev;

namespace {

/// Sends one framed request, prints the exchange, returns the result.
json::Value roundTrip(PvpServer &Server, int64_t Id, const char *Method,
                      json::Object Params) {
  json::Value Request = rpc::makeRequest(Id, Method, std::move(Params));
  std::string Wire = rpc::frame(Request);
  std::printf(">> %s\n", Request.dump().substr(0, 160).c_str());

  std::string ReplyBytes = Server.handleWire(Wire);
  rpc::MessageReader Reader;
  Reader.feed(ReplyBytes);
  auto Reply = Reader.poll();
  if (!Reply) {
    std::printf("<< (no reply)\n");
    return json::Value();
  }
  std::string Dump = Reply->dump();
  std::printf("<< %s%s\n\n", Dump.substr(0, 200).c_str(),
              Dump.size() > 200 ? "..." : "");
  if (Reply->isObject())
    if (const json::Value *R = Reply->asObject().find("result"))
      return *R;
  return json::Value();
}

} // namespace

int main() {
  PvpServer Server;

  // A small synthetic service profile, shipped as base64 .evprof bytes —
  // exactly what an extension would read from disk and hand over.
  workload::SyntheticOptions Opt;
  Opt.TargetBytes = 64 << 10;
  Profile P = workload::generateSyntheticProfile(Opt);
  std::string Bytes = writeEvProf(P);

  json::Object Open;
  Open.set("name", "orders-service.evprof");
  Open.set("dataBase64", base64Encode(Bytes));
  json::Value Opened = roundTrip(Server, 1, "pvp/open", std::move(Open));
  int64_t ProfileId = Opened.isObject() && Opened.asObject().find("profile")
                          ? Opened.asObject().find("profile")->asInt()
                          : -1;
  if (ProfileId < 0) {
    std::fprintf(stderr, "failed to open profile over PVP\n");
    return 1;
  }

  json::Object FlameParams;
  FlameParams.set("profile", ProfileId);
  FlameParams.set("maxRects", 8);
  json::Value Flame =
      roundTrip(Server, 2, "pvp/flame", std::move(FlameParams));

  // Pick the widest non-root rect and click it (code link).
  int64_t Node = -1;
  if (Flame.isObject())
    if (const json::Value *Rects = Flame.asObject().find("rects"))
      if (Rects->isArray() && Rects->asArray().size() > 1)
        Node = Rects->asArray()[1].asObject().find("node")->asInt();
  if (Node >= 0) {
    json::Object LinkParams;
    LinkParams.set("profile", ProfileId);
    LinkParams.set("node", Node);
    roundTrip(Server, 3, "pvp/codeLink", std::move(LinkParams));

    json::Object HoverParams;
    HoverParams.set("profile", ProfileId);
    HoverParams.set("node", Node);
    roundTrip(Server, 4, "pvp/hover", std::move(HoverParams));
  }

  json::Object SummaryParams;
  SummaryParams.set("profile", ProfileId);
  roundTrip(Server, 5, "pvp/summary", std::move(SummaryParams));

  // Error handling is part of the protocol, too.
  json::Object Bad;
  Bad.set("profile", 999);
  roundTrip(Server, 6, "pvp/summary", std::move(Bad));
  return 0;
}
