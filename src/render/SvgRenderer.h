//===- render/SvgRenderer.h - SVG flame graph back end --------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a FlameGraph to standalone SVG. Labels are fitted to rectangle
/// widths; every rectangle carries a <title> tooltip with the context name,
/// source location, and metric value — the information the paper's hover
/// action surfaces.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_RENDER_SVGRENDERER_H
#define EASYVIEW_RENDER_SVGRENDERER_H

#include "render/FlameLayout.h"

#include <string>

namespace ev {

struct SvgOptions {
  unsigned WidthPx = 1200;
  unsigned RowHeightPx = 16;
  bool Inverted = false; ///< true for bottom-up "icicle" orientation.
  std::string Title;
};

/// Renders \p Graph to an SVG document.
std::string renderSvg(const FlameGraph &Graph, const SvgOptions &Options = {});

} // namespace ev

#endif // EASYVIEW_RENDER_SVGRENDERER_H
