//===- query/Parser.h - EVQL parser ----------------------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent / precedence-climbing parser for EVQL.
///
/// Grammar:
/// \code
///   program   := statement*
///   statement := 'let' IDENT '=' expr ';'
///              | 'derive' IDENT '=' expr ';'
///              | 'prune' 'when' expr ';'
///              | 'keep' 'when' expr ';'
///              | 'print' expr ';'
///   expr      := ternary
///   ternary   := or ('?' expr ':' expr)?
///   or        := and ('||' and)*
///   and       := equality ('&&' equality)*
///   equality  := relational (('=='|'!=') relational)*
///   relational:= additive (('<'|'<='|'>'|'>=') additive)*
///   additive  := multiplicative (('+'|'-') multiplicative)*
///   multiplicative := unary (('*'|'/'|'%') unary)*
///   unary     := ('-'|'!') unary | primary
///   primary   := NUMBER | STRING | 'true' | 'false'
///              | IDENT ('(' (expr (',' expr)*)? ')')?
///              | '(' expr ')'
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_QUERY_PARSER_H
#define EASYVIEW_QUERY_PARSER_H

#include "query/Ast.h"
#include "support/Result.h"

#include <string_view>

namespace ev {
namespace evql {

/// Parses EVQL source into a Program. Errors carry line:column positions
/// and the parse stops at the first failure (see parseProgramRecover for
/// the multi-error entry point the static analyzer uses).
Result<Program> parseProgram(std::string_view Source);

/// Parses a single expression (used by the derived-metric quick API).
Result<ExprPtr> parseExpression(std::string_view Source);

/// One recoverable syntax error with its source position.
struct SyntaxError {
  std::string Message;
  size_t Line = 1;
  size_t Column = 1;
};

/// A best-effort parse: every statement that parsed cleanly plus every
/// syntax error encountered along the way.
struct RecoveredProgram {
  Program Prog;
  std::vector<SyntaxError> Errors;
};

/// Parses with statement-level error recovery: on a parse failure the
/// parser records the error, synchronizes to the next ';' (or the next
/// statement keyword), and keeps going, so one bad statement costs one
/// diagnostic instead of hiding everything after it.
RecoveredProgram parseProgramRecover(std::string_view Source);

} // namespace evql
} // namespace ev

#endif // EASYVIEW_QUERY_PARSER_H
