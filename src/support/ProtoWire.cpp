//===- support/ProtoWire.cpp - Protocol Buffer wire format ----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/ProtoWire.h"

#include <cassert>
#include <cstring>

namespace ev {

void ProtoWriter::writeTag(uint32_t FieldNumber, WireType Type) {
  assert(FieldNumber != 0 && "field numbers start at 1");
  appendVarint(Buffer, (static_cast<uint64_t>(FieldNumber) << 3) |
                           static_cast<uint64_t>(Type));
}

void ProtoWriter::writeVarint(uint32_t FieldNumber, uint64_t Value) {
  writeTag(FieldNumber, WireType::Varint);
  appendVarint(Buffer, Value);
}

void ProtoWriter::writeSignedVarint(uint32_t FieldNumber, int64_t Value) {
  writeTag(FieldNumber, WireType::Varint);
  appendVarint(Buffer, zigzagEncode(Value));
}

void ProtoWriter::writeInt64(uint32_t FieldNumber, int64_t Value) {
  writeTag(FieldNumber, WireType::Varint);
  appendVarint(Buffer, static_cast<uint64_t>(Value));
}

void ProtoWriter::writeDouble(uint32_t FieldNumber, double Value) {
  writeTag(FieldNumber, WireType::Fixed64);
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value));
  std::memcpy(&Bits, &Value, sizeof(Bits));
  for (unsigned I = 0; I < 8; ++I)
    Buffer.push_back(static_cast<char>((Bits >> (8 * I)) & 0xFF));
}

void ProtoWriter::writeBytes(uint32_t FieldNumber, std::string_view Bytes) {
  writeTag(FieldNumber, WireType::LengthDelimited);
  appendVarint(Buffer, Bytes.size());
  Buffer.append(Bytes.data(), Bytes.size());
}

void ProtoWriter::writePackedVarints(uint32_t FieldNumber,
                                     const uint64_t *Values, size_t Count) {
  std::string Packed;
  for (size_t I = 0; I < Count; ++I)
    appendVarint(Packed, Values[I]);
  writeBytes(FieldNumber, Packed);
}

bool ProtoReader::next() {
  if (FieldPending)
    skip();
  if (Cursor.atEnd() || failed())
    return false;
  uint64_t Tag = Cursor.readVarint();
  if (Cursor.failed())
    return false;
  FieldNumber = static_cast<uint32_t>(Tag >> 3);
  unsigned RawType = static_cast<unsigned>(Tag & 0x7);
  if (FieldNumber == 0 ||
      (RawType != 0 && RawType != 1 && RawType != 2 && RawType != 5)) {
    Failed = true;
    return false;
  }
  Type = static_cast<WireType>(RawType);
  FieldPending = true;
  return true;
}

uint64_t ProtoReader::varint() {
  if (Type != WireType::Varint) {
    Failed = true;
    FieldPending = false;
    return 0;
  }
  FieldPending = false;
  return Cursor.readVarint();
}

double ProtoReader::fixedDouble() {
  FieldPending = false;
  if (Type != WireType::Fixed64 || Cursor.remaining() < 8) {
    Failed = true;
    return 0.0;
  }
  uint64_t Bits = 0;
  const uint8_t *P = Cursor.current();
  for (unsigned I = 0; I < 8; ++I)
    Bits |= static_cast<uint64_t>(P[I]) << (8 * I);
  Cursor.skip(8);
  double Value;
  std::memcpy(&Value, &Bits, sizeof(Value));
  return Value;
}

std::string_view ProtoReader::bytes() {
  FieldPending = false;
  if (Type != WireType::LengthDelimited) {
    Failed = true;
    return {};
  }
  uint64_t Length = Cursor.readVarint();
  if (Cursor.failed() || Length > Cursor.remaining()) {
    Failed = true;
    return {};
  }
  std::string_view View(reinterpret_cast<const char *>(Cursor.current()),
                        static_cast<size_t>(Length));
  Cursor.skip(static_cast<size_t>(Length));
  return View;
}

void ProtoReader::skip() {
  FieldPending = false;
  switch (Type) {
  case WireType::Varint:
    (void)Cursor.readVarint();
    return;
  case WireType::Fixed64:
    Cursor.skip(8);
    return;
  case WireType::LengthDelimited: {
    uint64_t Length = Cursor.readVarint();
    if (!Cursor.failed())
      Cursor.skip(static_cast<size_t>(Length));
    return;
  }
  case WireType::Fixed32:
    Cursor.skip(4);
    return;
  }
}

} // namespace ev
