//===- support/ThreadPool.h - Small fixed-size worker pool ----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool backing the parallel analysis pipeline
/// (docs/PERF.md). Design constraints, in priority order:
///
///  1. Determinism: parallelMap() returns results in index order, and every
///     caller in src/analysis keeps output materialization in a fixed order,
///     so a profile analyzed at N threads is byte-identical to the same
///     profile analyzed at 0 threads.
///  2. Reproducible fallback: a pool of 0 (or 1) threads runs everything
///     inline on the calling thread, in ascending index order, with no
///     worker threads at all. `EV_THREADS=0` forces this mode process-wide.
///  3. Bounded resources: the pool is fixed-size; parallelFor() blocks the
///     caller (which also participates in the work), so at most
///     threadCount() threads are ever runnable per pool.
///
/// Exceptions thrown by loop bodies are captured, the loop is cancelled
/// cooperatively, and the first exception is rethrown on the calling
/// thread.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_THREADPOOL_H
#define EASYVIEW_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ev {

class ThreadPool {
public:
  /// Creates a pool executing loops on \p Threads threads total (including
  /// the caller, which always participates). 0 and 1 both mean "no worker
  /// threads": loops run inline, sequentially, in ascending order.
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total threads that execute a loop (workers + calling thread); >= 1.
  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()) + 1; }

  /// True when loops run inline on the calling thread only.
  bool sequential() const { return Workers.empty(); }

  /// Runs \p Body(Begin, End) over disjoint chunks covering [0, N). Blocks
  /// until every chunk completed. Chunk boundaries are claimed dynamically,
  /// so bodies must not depend on which thread runs which chunk; writes
  /// must go to per-index slots. Nested calls from inside a body run
  /// inline. Rethrows the first exception a body threw.
  void parallelForChunks(size_t N,
                         const std::function<void(size_t, size_t)> &Body);

  /// Element-wise convenience over parallelForChunks().
  void parallelFor(size_t N, const std::function<void(size_t)> &Body) {
    parallelForChunks(N, [&Body](size_t Begin, size_t End) {
      for (size_t I = Begin; I < End; ++I)
        Body(I);
    });
  }

  /// Maps [0, N) through \p Fn into a vector with deterministic (index)
  /// ordering regardless of scheduling. T must be default-constructible.
  template <typename T, typename Fn>
  std::vector<T> parallelMap(size_t N, Fn &&F) {
    std::vector<T> Out(N);
    parallelForChunks(N, [&](size_t Begin, size_t End) {
      for (size_t I = Begin; I < End; ++I)
        Out[I] = F(I);
    });
    return Out;
  }

  /// The process-wide pool used by the analysis pipeline. Sized from the
  /// `EV_THREADS` environment variable on first use: unset picks the
  /// hardware concurrency (capped at 8); `EV_THREADS=0` forces the
  /// sequential fallback.
  static ThreadPool &shared();

  /// Replaces the shared pool with one of \p Threads threads (benchmarks
  /// and tests sweep thread counts this way). Not safe while another
  /// thread is inside a shared-pool loop.
  static void setSharedThreadCount(unsigned Threads);

  /// The thread count `EV_THREADS` requests (or the capped hardware
  /// default when unset/unparsable).
  static unsigned configuredThreads();

private:
  void workerLoop();
  void runChunks(size_t ChunkSize);

  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable JobDone;
  bool ShuttingDown = false;

  // State of the single in-flight loop (parallelForChunks is blocking and
  // non-reentrant, so one slot suffices).
  uint64_t JobGeneration = 0;
  const std::function<void(size_t, size_t)> *JobBody = nullptr;
  size_t JobEnd = 0;
  size_t JobChunk = 1;
  std::atomic<size_t> JobNext{0};
  std::atomic<bool> JobCancelled{false};
  unsigned JobActiveWorkers = 0;
  std::exception_ptr JobError;
  std::atomic<bool> InLoop{false};
};

/// A FIFO task executor backing the concurrent PVP service (see
/// ide/SessionManager.h): N dedicated worker threads drain an unbounded
/// queue of posted closures in submission order. Unlike ThreadPool — a
/// blocking fork-join primitive for data-parallel loops — TaskQueue is a
/// fire-and-forget executor: post() never blocks, tasks run exactly once,
/// and workers that execute a task may post() follow-up tasks (the session
/// strands repost themselves this way), including during shutdown drain.
///
/// Destruction drains: the destructor stops accepting NEW external posts
/// conceptually at the caller's discretion, runs every task already queued
/// (plus tasks those tasks post), and joins the workers. A task that
/// throws terminates via std::terminate — session tasks convert all
/// failures to JSON-RPC error replies, so nothing should ever throw here.
class TaskQueue {
public:
  /// Creates \p Threads dedicated workers (clamped to at least 1).
  explicit TaskQueue(unsigned Threads);
  ~TaskQueue();

  TaskQueue(const TaskQueue &) = delete;
  TaskQueue &operator=(const TaskQueue &) = delete;

  /// Enqueues \p Task; runs on some worker in FIFO order. Never blocks.
  void post(std::function<void()> Task);

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Tasks executed since construction (telemetry).
  uint64_t executedCount() const {
    return Executed.load(std::memory_order_relaxed);
  }

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable Idle;
  std::deque<std::function<void()>> Queue;
  unsigned Busy = 0;
  bool ShuttingDown = false;
  std::atomic<uint64_t> Executed{0};
};

} // namespace ev

#endif // EASYVIEW_SUPPORT_THREADPOOL_H
