//===- core/EasyView.h - The EasyView engine facade ------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level public API: one engine that wires the data abstraction
/// (convert/), analysis (analysis/, query/), visualization (render/), and
/// IDE integration (ide/) together — the three components of paper Fig. 1.
///
/// openProfileBytes() performs exactly what the response-time experiment
/// (Fig. 5) measures as "opening a profile": format detection and parsing,
/// CCT construction, metric computation, and the first top-down
/// flame-graph layout. Per-phase timings are recorded.
///
/// Typical use:
/// \code
///   EasyViewEngine Engine;
///   auto Id = Engine.openProfileBytes(Bytes, "service.pprof");
///   std::string Svg = *Engine.flameSvg(*Id, {});
///   auto Hover = Engine.ide().hoverNode(*Id, SomeNode);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_CORE_EASYVIEW_H
#define EASYVIEW_CORE_EASYVIEW_H

#include "analysis/Aggregate.h"
#include "analysis/Diff.h"
#include "ide/MockIde.h"
#include "profile/Profile.h"
#include "query/Interpreter.h"
#include "render/FlameLayout.h"

#include <string>
#include <string_view>

namespace ev {

/// Wall-clock milliseconds per phase of the last openProfileBytes() call.
struct OpenStats {
  double ParseMs = 0.0;   ///< Detection + parsing + CCT construction.
  double AnalyzeMs = 0.0; ///< Metric columns (inclusive/exclusive).
  double LayoutMs = 0.0;  ///< First top-down flame-graph layout.

  double totalMs() const { return ParseMs + AnalyzeMs + LayoutMs; }
};

struct FlameRenderOptions {
  std::string Shape = "top-down"; ///< "top-down" | "bottom-up" | "flat".
  MetricId Metric = 0;
  unsigned WidthPx = 1200;
};

class EasyViewEngine {
public:
  /// Opens profile bytes in any supported format; \returns the profile id.
  Result<int64_t> openProfileBytes(std::string_view Bytes,
                                   std::string_view Name = "");

  /// Registers an already-built profile (no parse phase timed).
  int64_t addProfile(Profile P) { return Ide.server().addProfile(std::move(P)); }

  const OpenStats &lastOpenStats() const { return LastOpen; }

  const Profile *profile(int64_t Id) const {
    return Ide.server().profile(Id);
  }

  /// Renders a flame graph of the given shape to SVG.
  Result<std::string> flameSvg(int64_t Id, const FlameRenderOptions &Options);

  /// Renders the fold/unfold tree table with the hot path expanded.
  Result<std::string> treeTableText(int64_t Id);

  /// The floating-window summary.
  Result<std::string> summaryText(int64_t Id);

  /// Runs an EVQL program against a stored profile; the result profile is
  /// registered and its id returned alongside the printed lines.
  Result<evql::QueryOutput> query(int64_t Id, std::string_view Program);

  /// Aggregates stored profiles into a unified tree (with min/max/mean
  /// stats); \returns the aggregate, which stays owned by the caller.
  Result<AggregatedProfile> aggregateProfiles(std::span<const int64_t> Ids);

  /// Diffs two stored profiles on \p Metric.
  Result<DiffResult> diff(int64_t BaseId, int64_t TestId, MetricId Metric);

  /// The embedded mock editor (and through it, the PVP server). Real
  /// editors would instead speak PVP over a pipe via PvpServer::handleWire.
  MockIde &ide() { return Ide; }

private:
  MockIde Ide;
  OpenStats LastOpen;
};

} // namespace ev

#endif // EASYVIEW_CORE_EASYVIEW_H
