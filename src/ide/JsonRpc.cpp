//===- ide/JsonRpc.cpp - LSP-style JSON-RPC 2.0 transport -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ide/JsonRpc.h"

#include "support/Strings.h"

namespace ev {
namespace rpc {

json::Value makeRequest(int64_t Id, std::string_view Method,
                        json::Value Params) {
  json::Object Msg;
  Msg.set("jsonrpc", "2.0");
  Msg.set("id", Id);
  Msg.set("method", std::string(Method));
  Msg.set("params", std::move(Params));
  return Msg;
}

json::Value makeNotification(std::string_view Method, json::Value Params) {
  json::Object Msg;
  Msg.set("jsonrpc", "2.0");
  Msg.set("method", std::string(Method));
  Msg.set("params", std::move(Params));
  return Msg;
}

json::Value makeResponse(int64_t Id, json::Value ResultValue) {
  json::Object Msg;
  Msg.set("jsonrpc", "2.0");
  Msg.set("id", Id);
  Msg.set("result", std::move(ResultValue));
  return Msg;
}

json::Value makeErrorResponse(int64_t Id, int Code,
                              std::string_view Message) {
  json::Object Err;
  Err.set("code", Code);
  Err.set("message", std::string(Message));
  json::Object Msg;
  Msg.set("jsonrpc", "2.0");
  Msg.set("id", Id);
  Msg.set("error", std::move(Err));
  return Msg;
}

std::string frame(const json::Value &Payload) {
  std::string Body = Payload.dump();
  return "Content-Length: " + std::to_string(Body.size()) + "\r\n\r\n" +
         Body;
}

std::optional<json::Value> MessageReader::poll() {
  if (Failed)
    return std::nullopt;
  // Look for the end of the header block.
  size_t HeaderEnd = Buffer.find("\r\n\r\n");
  if (HeaderEnd == std::string::npos)
    return std::nullopt;

  size_t ContentLength = std::string::npos;
  std::string_view Headers(Buffer.data(), HeaderEnd);
  for (std::string_view Line : splitLines(Headers)) {
    std::string_view Trimmed = trim(Line);
    if (startsWith(Trimmed, "Content-Length:")) {
      uint64_t Length;
      if (!parseUnsigned(trim(Trimmed.substr(15)), Length)) {
        Failed = true;
        ErrorMessage = "invalid Content-Length header";
        return std::nullopt;
      }
      ContentLength = static_cast<size_t>(Length);
    }
    // Content-Type headers are tolerated and ignored.
  }
  if (ContentLength == std::string::npos) {
    Failed = true;
    ErrorMessage = "missing Content-Length header";
    return std::nullopt;
  }
  size_t BodyStart = HeaderEnd + 4;
  if (Buffer.size() - BodyStart < ContentLength)
    return std::nullopt; // Body not fully buffered yet.

  std::string_view Body(Buffer.data() + BodyStart, ContentLength);
  Result<json::Value> Doc = json::parse(Body);
  Buffer.erase(0, BodyStart + ContentLength);
  if (!Doc) {
    Failed = true;
    ErrorMessage = Doc.error();
    return std::nullopt;
  }
  return Doc.take();
}

} // namespace rpc
} // namespace ev
