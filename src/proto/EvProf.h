//===- proto/EvProf.h - EasyView profile container format -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of the generic profile representation. The paper expresses
/// the representation in a Protocol Buffer schema; this codec encodes the
/// same schema with the protobuf wire format (support/ProtoWire.h), wrapped
/// in an 8-byte magic header for format sniffing:
///
/// \code
///   message EvProfile {
///     string name = 1;
///     repeated string string_table = 2;   // [0] is always ""
///     repeated Metric metric = 3;
///     repeated Frame frame = 4;
///     repeated Node node = 5;             // in id order, parents first
///     repeated Group group = 6;
///   }
///   message Metric { string name = 1; string unit = 2; uint32 agg = 3; }
///   message Frame  { uint32 kind = 1; uint32 name = 2; uint32 file = 3;
///                    uint32 line = 4; uint32 module = 5; uint64 addr = 6; }
///   message Node   { uint32 parent_plus1 = 1; uint32 frame = 2;
///                    repeated MetricValue value = 3; }
///   message MetricValue { uint32 metric = 1; double value = 2; }
///   message Group  { uint32 kind = 1; repeated uint32 context = 2 [packed];
///                    uint32 metric = 3; double value = 4; }
/// \endcode
///
/// Children lists are not serialized: they are derivable from parent links,
/// which keeps the on-disk profile compact (paper §IV-A: the CCT
/// "minimizes the storage in both memory and disk").
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_PROTO_EVPROF_H
#define EASYVIEW_PROTO_EVPROF_H

#include "profile/Profile.h"
#include "support/Limits.h"
#include "support/Result.h"

#include <string>
#include <string_view>

namespace ev {

/// Magic bytes at the start of every .evprof file.
inline constexpr std::string_view EvProfMagic = "EVPROF1\n";

/// Serializes \p P to .evprof bytes.
std::string writeEvProf(const Profile &P);

/// Parses .evprof bytes. Structural errors (bad magic, malformed wire data,
/// dangling references) are reported, never asserted: the input is
/// untrusted. Decoding is metered against \p Limits — node/string/metric
/// counts, tree depth, and the allocation budget — so no input can cause
/// unbounded work.
Result<Profile> readEvProf(std::string_view Bytes,
                           const DecodeLimits &Limits);

/// Parses with the library-default limits.
Result<Profile> readEvProf(std::string_view Bytes);

/// \returns true when \p Bytes begins with the .evprof magic.
bool isEvProf(std::string_view Bytes);

} // namespace ev

#endif // EASYVIEW_PROTO_EVPROF_H
