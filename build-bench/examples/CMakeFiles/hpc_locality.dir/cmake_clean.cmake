file(REMOVE_RECURSE
  "CMakeFiles/hpc_locality.dir/hpc_locality.cpp.o"
  "CMakeFiles/hpc_locality.dir/hpc_locality.cpp.o.d"
  "hpc_locality"
  "hpc_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
