//===- render/CodeAnnotations.cpp - Source-line profile annotations -------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "render/CodeAnnotations.h"

#include "analysis/MetricEngine.h"
#include "support/Strings.h"

#include <algorithm>
#include <map>

namespace ev {

std::vector<LineAnnotation> annotateFile(const Profile &P,
                                         std::string_view File) {
  std::map<uint32_t, LineAnnotation> ByLine;
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
    const Frame &F = P.frameOf(Id);
    if (F.Loc.Line == 0 || P.text(F.Loc.File) != File)
      continue;
    LineAnnotation &A = ByLine[F.Loc.Line];
    A.Line = F.Loc.Line;
    A.Totals.resize(P.metrics().size(), 0.0);
    bool AnyValue = false;
    for (const MetricValue &MV : P.node(Id).Metrics) {
      A.Totals[MV.Metric] += MV.Value;
      if (MV.Value != 0.0)
        AnyValue = true;
    }
    if (AnyValue || !P.node(Id).Metrics.empty())
      A.Contexts.push_back(Id);
  }

  std::vector<LineAnnotation> Out;
  double Hottest = 0.0;
  for (auto &[Line, A] : ByLine) {
    bool AllZero = true;
    for (double V : A.Totals)
      if (V != 0.0)
        AllZero = false;
    if (AllZero)
      continue;
    if (!A.Totals.empty())
      Hottest = std::max(Hottest, A.Totals[0]);
    Out.push_back(std::move(A));
  }
  for (LineAnnotation &A : Out) {
    for (MetricId M = 0; M < A.Totals.size(); ++M) {
      if (A.Totals[M] == 0.0)
        continue;
      if (!A.LensText.empty())
        A.LensText += " | ";
      const MetricDescriptor &D = P.metrics()[M];
      A.LensText += D.Name + ": " + formatMetric(A.Totals[M], D.Unit);
    }
    A.Hotness = Hottest > 0.0 && !A.Totals.empty()
                    ? A.Totals[0] / Hottest
                    : 0.0;
  }
  return Out;
}

std::string hoverText(const Profile &P, NodeId Node) {
  std::string Text = std::string(P.nameOf(Node)) + "\n";
  for (MetricId M = 0; M < P.metrics().size(); ++M) {
    const MetricDescriptor &D = P.metrics()[M];
    MetricView View(P, M);
    Text += "- " + D.Name + ": " +
            formatMetric(View.inclusive(Node), D.Unit) + " inclusive, " +
            formatMetric(View.exclusive(Node), D.Unit) + " exclusive\n";
  }
  return Text;
}

std::string renderAnnotationsText(const Profile &P,
                                  std::string_view File) {
  std::string Out;
  Out += "annotations for " + std::string(File) + ":\n";
  std::vector<LineAnnotation> Annotations = annotateFile(P, File);
  if (Annotations.empty()) {
    Out += "  (no profile data attributed to this file)\n";
    return Out;
  }
  for (const LineAnnotation &A : Annotations) {
    std::string Heat(static_cast<size_t>(A.Hotness * 10.0 + 0.5), '*');
    Out += "  line " + std::to_string(A.Line) + ": " + A.LensText + "  " +
           Heat + "\n";
  }
  return Out;
}

} // namespace ev
