//===- render/TreeTable.h - Tree table view --------------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tree-table view (paper §VI-A(c)): the fold/unfold tree used by
/// VTune, hpcviewer, and TAU. Unlike flame graphs, users must expand call
/// paths manually, but the view displays multiple metric columns at once.
/// The model keeps explicit expansion state (the paper's user study has
/// participants unfolding paths); expandHotPath() automates the common
/// "follow the hottest child" gesture.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_RENDER_TREETABLE_H
#define EASYVIEW_RENDER_TREETABLE_H

#include "analysis/MetricEngine.h"
#include "profile/Profile.h"

#include <string>
#include <unordered_set>
#include <vector>

namespace ev {

struct TreeTableOptions {
  std::vector<MetricId> Metrics; ///< Columns; empty = all profile metrics.
  size_t MaxRows = 200;          ///< Rendering cap (scrolling window).
};

/// One visible row.
struct TreeTableRow {
  NodeId Node = InvalidNode;
  unsigned Depth = 0;
  bool Expandable = false;
  bool Expanded = false;
};

class TreeTable {
public:
  TreeTable(const Profile &P, TreeTableOptions Options = {});

  /// Expansion state manipulation. Ids refer to the profile's nodes.
  void expand(NodeId Node) { ExpandedSet.insert(Node); }
  void collapse(NodeId Node) { ExpandedSet.erase(Node); }
  bool isExpanded(NodeId Node) const { return ExpandedSet.count(Node) != 0; }
  void expandAll();
  /// Expands the chain of hottest children (by inclusive \p Metric) from
  /// the root to a leaf; \returns the leaf reached.
  NodeId expandHotPath(MetricId Metric);

  /// Visible rows under the current expansion state (root children are
  /// always visible).
  std::vector<TreeTableRow> rows() const;

  /// Renders the visible rows as an aligned text table with tree glyphs,
  /// one metric pair (inclusive / exclusive) per configured column.
  std::string renderText() const;

private:
  const Profile *P;
  TreeTableOptions Options;
  std::vector<MetricView> Views;
  std::unordered_set<NodeId> ExpandedSet;
};

} // namespace ev

#endif // EASYVIEW_RENDER_TREETABLE_H
