//===- examples/memory_scaling.cpp - Division-based differential metrics --===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's §V-B customization story: "use division instead
/// of subtraction to derive differential metrics, which is used to measure
/// memory scaling" (the ScaAnalyzer analysis). Two memory profiles of an
/// MPI-like solver — 8 and 64 processes — are merged with the diff
/// operation, then an EVQL program derives a per-context scaling ratio
/// and prunes away everything that scales well, leaving exactly the
/// O(P) communication buffers.
///
//===----------------------------------------------------------------------===//

#include "analysis/Diff.h"
#include "query/Interpreter.h"
#include "support/Strings.h"
#include "workload/ScalingWorkload.h"

#include <cstdio>

using namespace ev;

int main() {
  workload::ScalingOptions Opt;
  workload::ScalingWorkload W = workload::generateScalingWorkload(Opt);
  double ProcRatio =
      static_cast<double>(Opt.LargeProcs) / Opt.SmallProcs;
  std::printf("profiles: %s vs %s (process ratio %.0fx)\n\n",
              W.Small.name().c_str(), W.Large.name().c_str(), ProcRatio);

  // Merge the two runs; the diff carries "base mem-bytes" and
  // "test mem-bytes" columns per context.
  DiffResult D = diffProfiles(W.Small, W.Large, 0);

  // The paper's customization: a DIVISION-based differential metric.
  const char *Program = R"(
      derive scaling = ratio(inclusive("test mem-bytes"),
                             inclusive("base mem-bytes"));
      # Keep contexts whose per-process memory grew by more than 2x.
      prune when metric("scaling") != 0 && metric("scaling") < 2;
      print "scaling ratios derived; poor scalers kept";
  )";
  Result<evql::QueryOutput> Out = evql::runProgram(D.Merged, Program);
  if (!Out) {
    std::fprintf(stderr, "query error: %s\n", Out.error().c_str());
    return 1;
  }
  for (const std::string &Line : Out->Printed)
    std::printf("evql: %s\n", Line.c_str());

  const Profile &Result = Out->Result;
  MetricId Scaling = Result.findMetric("scaling");
  std::printf("\n%-24s %-12s %-12s %-8s\n", "context", "mem @8p",
              "mem @64p", "ratio");
  size_t Flagged = 0, TrueHits = 0;
  for (NodeId Id = 1; Id < Result.nodeCount(); ++Id) {
    double Ratio = Result.node(Id).metricOr(Scaling);
    if (Ratio < 2.0)
      continue;
    double Base = Result.node(Id).metricOr(D.BaseMetric);
    double Test = Result.node(Id).metricOr(D.TestMetric);
    if (Base == 0.0)
      continue;
    ++Flagged;
    std::printf("%-24s %-12s %-12s %6.1fx\n",
                std::string(Result.nameOf(Id)).c_str(),
                formatBytes(Base).c_str(), formatBytes(Test).c_str(),
                Ratio);
    for (const std::string &Name : W.NonScalable)
      if (Result.nameOf(Id) == Name)
        ++TrueHits;
  }
  std::printf("\nflagged %zu contexts; %zu/%zu known non-scalable "
              "contexts found\n",
              Flagged, TrueHits, W.NonScalable.size());
  std::printf("expected ratio for O(P) contexts: ~%.0fx\n", ProcRatio);
  return TrueHits == W.NonScalable.size() ? 0 : 1;
}
