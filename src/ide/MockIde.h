//===- ide/MockIde.h - In-process editor client for PVP -------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mock editor that drives a PvpServer over the real JSON-RPC wire
/// framing, standing in for VSCode in tests, examples, and the user-study
/// simulator. It records the editor-side effects (files opened at lines,
/// hovers shown, lenses displayed) so test assertions and the simulator
/// can observe exactly what a user would see.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_IDE_MOCKIDE_H
#define EASYVIEW_IDE_MOCKIDE_H

#include "ide/PvpServer.h"

#include <string>
#include <vector>

namespace ev {

class MockIde {
public:
  /// One code-link navigation performed by the editor.
  struct Navigation {
    std::string File;
    uint32_t Line = 0;
  };

  /// Sends \p Method with \p Params through the framed wire and \returns
  /// the decoded result object; RPC errors surface as Result errors.
  Result<json::Value> call(std::string_view Method, json::Object Params);

  /// Opens profile bytes; \returns the server-side profile id.
  Result<int64_t> openProfile(std::string_view Name, std::string_view Bytes);

  /// Clicks a flame-graph rectangle: performs the code-link action and, on
  /// success, records the navigation (the paper's mandatory action).
  Result<bool> clickNode(int64_t ProfileId, NodeId Node);

  /// Hovers a node; \returns the hover text.
  Result<std::string> hoverNode(int64_t ProfileId, NodeId Node);

  const std::vector<Navigation> &navigations() const { return Navigations; }
  size_t requestsSent() const { return RequestsSent; }

  /// Server-initiated frames (pvp/viewDelta, pvp/subscriptionEnd) that
  /// arrived on the wire after responses, in arrival order. Drained once.
  std::vector<json::Value> takeNotifications() {
    std::vector<json::Value> Out;
    Out.swap(Notifications);
    return Out;
  }

  PvpServer &server() { return Server; }
  const PvpServer &server() const { return Server; }

private:
  PvpServer Server;
  int64_t NextRequestId = 1;
  size_t RequestsSent = 0;
  std::vector<Navigation> Navigations;
  std::vector<json::Value> Notifications;
};

} // namespace ev

#endif // EASYVIEW_IDE_MOCKIDE_H
