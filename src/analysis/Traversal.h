//===- analysis/Traversal.h - CCT traversal primitives --------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic tree traversal operations (paper §V-A(a)): iterative pre-order and
/// post-order walks over a profile's CCT, with the node-visit callback hook
/// that both the built-in analyses and user customizations (EVQL, C++
/// callbacks) attach to.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_TRAVERSAL_H
#define EASYVIEW_ANALYSIS_TRAVERSAL_H

#include "profile/Profile.h"

#include <utility>
#include <vector>

namespace ev {

/// Visits nodes parent-before-children. \p Visit receives (node, depth).
/// Traversal is iterative: profiles routinely contain call paths deeper
/// than any sane stack limit.
template <typename VisitFn>
void preOrder(const Profile &P, VisitFn Visit, NodeId From = 0) {
  std::vector<std::pair<NodeId, unsigned>> Stack;
  Stack.emplace_back(From, P.depth(From));
  while (!Stack.empty()) {
    auto [Id, Depth] = Stack.back();
    Stack.pop_back();
    Visit(Id, Depth);
    const CCTNode &Node = P.node(Id);
    // Push in reverse so children are visited in natural order.
    for (size_t I = Node.Children.size(); I > 0; --I)
      Stack.emplace_back(Node.Children[I - 1], Depth + 1);
  }
}

/// Visits nodes children-before-parent.
template <typename VisitFn>
void postOrder(const Profile &P, VisitFn Visit, NodeId From = 0) {
  // Two-phase: emit pre-order into a buffer, then replay reversed. A
  // reversed pre-order with children pushed in natural order is a valid
  // post-order for trees.
  std::vector<std::pair<NodeId, unsigned>> Order;
  Order.reserve(P.nodeCount());
  std::vector<std::pair<NodeId, unsigned>> Stack;
  Stack.emplace_back(From, P.depth(From));
  while (!Stack.empty()) {
    auto [Id, Depth] = Stack.back();
    Stack.pop_back();
    Order.emplace_back(Id, Depth);
    for (NodeId Child : P.node(Id).Children)
      Stack.emplace_back(Child, Depth + 1);
  }
  for (size_t I = Order.size(); I > 0; --I)
    Visit(Order[I - 1].first, Order[I - 1].second);
}

/// Collects all node ids in pre-order.
inline std::vector<NodeId> preOrderIds(const Profile &P, NodeId From = 0) {
  std::vector<NodeId> Ids;
  Ids.reserve(P.nodeCount());
  preOrder(P, [&](NodeId Id, unsigned) { Ids.push_back(Id); }, From);
  return Ids;
}

} // namespace ev

#endif // EASYVIEW_ANALYSIS_TRAVERSAL_H
