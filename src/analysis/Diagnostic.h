//===- analysis/Diagnostic.h - IDE-style diagnostics ----------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostics shared by the static-analysis passes: the EVQL semantic
/// checker (analysis/Sema.h) and the profile lint engine
/// (analysis/ProfileLint.h). A Diagnostic is one finding with a stable id
/// ("EVQL005", "EVL201"), a severity, an optional source span or CCT node,
/// and an optional fix hint — the same shape an IDE squiggle carries, so
/// the pvp/diagnostics reply and the evtool text renderer are both thin
/// projections of it. docs/ANALYSIS.md catalogues every id.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_DIAGNOSTIC_H
#define EASYVIEW_ANALYSIS_DIAGNOSTIC_H

#include "profile/Profile.h"

#include <string>
#include <string_view>
#include <vector>

namespace ev {

/// Severity ladder, ordered so that comparisons express "at least as
/// severe as" (Error > Warning > Info > Note).
enum class Severity : uint8_t {
  Note,    ///< Attached explanation; never actionable alone.
  Info,    ///< Worth knowing, not suspicious.
  Warning, ///< Probably a mistake; '-Werror' escalates these.
  Error,   ///< Definitely broken.
};

/// \returns a stable lowercase name ("note", "info", "warning", "error").
std::string_view severityName(Severity Sev);

/// Parses a severity name. \returns false (leaving \p Out untouched) when
/// \p Name matches no severity.
bool parseSeverity(std::string_view Name, Severity &Out);

/// One finding.
struct Diagnostic {
  std::string Id;      ///< Stable id, e.g. "EVQL002" or "EVL101".
  Severity Sev = Severity::Warning;
  std::string Message; ///< lowercase-first, no trailing period.
  std::string Rule;    ///< Stable kebab-case rule name.
  std::string Hint;    ///< Optional fix hint; "" when none applies.
  size_t Line = 0;     ///< 1-based source line; 0 when positionless.
  size_t Column = 0;   ///< 1-based source column; 0 when positionless.
  NodeId Node = InvalidNode; ///< Offending CCT node for profile lints.
};

/// An append-only collection of diagnostics with a hard cap. The cap comes
/// from AnalysisLimits::MaxDiagnostics: hostile input that would produce
/// millions of findings degrades to a truncated list plus a drop counter,
/// never unbounded memory.
class DiagnosticSet {
public:
  explicit DiagnosticSet(size_t MaxDiagnostics = 1000)
      : Max(MaxDiagnostics) {}

  /// Appends \p D unless the cap is reached, in which case the drop is
  /// counted instead. \returns false once at the cap.
  bool add(Diagnostic D);

  const std::vector<Diagnostic> &all() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  size_t size() const { return Diags.size(); }

  /// Number of diagnostics discarded because of the cap.
  size_t dropped() const { return Dropped; }
  /// True when findings were discarded (cap) or a pass stopped early
  /// (deadline, lint-node budget).
  bool truncated() const { return Dropped > 0 || TruncatedFlag; }
  /// Records that a pass stopped before seeing all input.
  void markTruncated() { TruncatedFlag = true; }

  /// Number of diagnostics at exactly \p Sev.
  size_t count(Severity Sev) const;
  /// Number of diagnostics at \p Sev or more severe.
  size_t countAtLeast(Severity Sev) const;
  /// The most severe finding, or Note when empty.
  Severity maxSeverity() const;

  /// Stable order for presentation: by line, column, then id.
  void sortBySource();

private:
  std::vector<Diagnostic> Diags;
  size_t Max;
  size_t Dropped = 0;
  bool TruncatedFlag = false;
};

/// Renders one finding in the classic compiler shape the IDE problem pane
/// and 'evtool check/lint' both use:
/// \code
///   query.evql:3:9: error: undefined identifier 'totl' [EVQL002]
///     hint: did you mean 'total'?
/// \endcode
/// The hint line is present only when the diagnostic carries one. For
/// positionless findings (profile lints) the line:column pair is omitted.
std::string renderDiagnostic(const Diagnostic &D, std::string_view Subject);

} // namespace ev

#endif // EASYVIEW_ANALYSIS_DIAGNOSTIC_H
