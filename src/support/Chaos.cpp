//===- support/Chaos.cpp - Deterministic fault injection ------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Chaos.h"

#include <algorithm>

namespace ev {
namespace chaos {

namespace {

/// \returns the offset just past "\r\n\r\n", or npos.
size_t bodyStart(std::string_view Frame) {
  size_t HeaderEnd = Frame.find("\r\n\r\n");
  return HeaderEnd == std::string_view::npos ? std::string_view::npos
                                             : HeaderEnd + 4;
}

} // namespace

std::string FaultInjector::mutateFrame(std::string Frame) {
  if (Frame.empty())
    return Frame;
  // Draw the schedule in a fixed order so a seed replays identically
  // regardless of which branch fires.
  bool DoTruncate = R.chance(Profile.TruncateProb);
  bool DoFlip = R.chance(Profile.BitFlipProb);
  bool DoHeader = R.chance(Profile.CorruptHeaderProb);

  if (DoHeader) {
    size_t Colon = Frame.find(':');
    size_t End = Frame.find("\r\n");
    if (Colon != std::string::npos && End != std::string::npos &&
        Colon < End) {
      static const char *BadLengths[] = {"zzz", "-5", "-1",
                                         "99999999999999999999", ""};
      std::string Bad = BadLengths[R.below(5)];
      Frame = Frame.substr(0, Colon + 1) + " " + Bad + Frame.substr(End);
      record(FaultKind::CorruptHeader);
      return Frame;
    }
  }
  if (DoTruncate) {
    // Keep at least one byte so the mutation differs from dropping the
    // frame outright; cutting inside the body or the header both happen.
    size_t Cut = 1 + R.below(Frame.size());
    Frame.resize(std::min(Cut, Frame.size()));
    record(FaultKind::Truncate);
    return Frame;
  }
  if (DoFlip) {
    size_t Start = bodyStart(Frame);
    if (Start == std::string::npos || Start >= Frame.size())
      Start = 0;
    unsigned Flips = 1 + static_cast<unsigned>(R.below(4));
    for (unsigned I = 0; I < Flips; ++I) {
      size_t At = Start + R.below(Frame.size() - Start);
      Frame[At] = static_cast<char>(Frame[At] ^ (1u << R.below(8)));
    }
    record(FaultKind::BitFlip);
    return Frame;
  }
  return Frame;
}

std::string FaultInjector::garbage(size_t MaxLen) {
  if (MaxLen == 0 || !R.chance(Profile.GarbageProb))
    return std::string();
  std::string Out(1 + R.below(MaxLen), '\0');
  for (char &C : Out)
    C = static_cast<char>(R.below(256));
  record(FaultKind::Garbage);
  return Out;
}

bool FaultInjector::shouldFailRead(unsigned Attempt) {
  // Fail only early attempts: a bounded retry loop must always be able to
  // recover, which is the behavior under test.
  if (Attempt >= 2)
    return false;
  if (!R.chance(Profile.TransientIoProb))
    return false;
  record(FaultKind::TransientIo);
  return true;
}

std::optional<std::string> ChaosStream::next() {
  if (Pos >= Bytes.size())
    return std::nullopt;
  ++Fragments;
  Rng &R = Injector.rng();
  const FaultProfile &P = Injector.profile();
  if (R.chance(P.DelayProb))
    return std::string(); // A delivery stall: feed nothing this tick.
  size_t Span = std::max<size_t>(1, P.MinChunk) +
                R.below(std::max<size_t>(1, P.MaxChunk));
  Span = std::min(Span, Bytes.size() - Pos);
  std::string Out = Bytes.substr(Pos, Span);
  Pos += Span;
  return Out;
}

} // namespace chaos
} // namespace ev
