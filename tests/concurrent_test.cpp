//===- tests/concurrent_test.cpp - Multi-session PVP service --------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the concurrent service layer: the TaskQueue executor, the
/// SessionManager strand scheduling (per-session FIFO, cross-session
/// parallelism), cooperative cancellation with its cache invariants, the
/// shared ProfileStore, and a multi-threaded soak of >= 4 sessions issuing
/// interleaved open/flame/treeTable/cancel/close traffic. The
/// `easyview_concurrent` ctest entry (and the tsan preset) runs exactly
/// these suites.
///
//===----------------------------------------------------------------------===//

#include "analysis/Transform.h"
#include "ide/JsonRpc.h"
#include "ide/PvpServer.h"
#include "ide/SessionManager.h"
#include "profile/ProfileStore.h"
#include "proto/EvProf.h"
#include "support/Cancel.h"
#include "support/Strings.h"
#include "support/ThreadPool.h"

#include "TestHelpers.h"

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

using namespace ev;

namespace {

int errorCodeOf(const json::Value &Response) {
  const json::Value *E = Response.asObject().find("error");
  if (!E)
    return 0;
  return static_cast<int>(E->asObject().find("code")->asInt());
}

const json::Object *resultOf(const json::Value &Response) {
  const json::Value *R = Response.asObject().find("result");
  return R ? &R->asObject() : nullptr;
}

json::Value openRequest(int64_t ReqId, const std::string &Bytes) {
  json::Object P;
  P.set("name", "soak.evprof");
  P.set("dataBase64", base64Encode(Bytes));
  return rpc::makeRequest(ReqId, "pvp/open", std::move(P));
}

json::Value flameRequest(int64_t ReqId, int64_t Prof) {
  json::Object P;
  P.set("profile", Prof);
  P.set("maxRects", 128);
  return rpc::makeRequest(ReqId, "pvp/flame", std::move(P));
}

json::Value treeTableRequest(int64_t ReqId, int64_t Prof) {
  json::Object P;
  P.set("profile", Prof);
  return rpc::makeRequest(ReqId, "pvp/treeTable", std::move(P));
}

json::Value closeRequest(int64_t ReqId, int64_t Prof) {
  json::Object P;
  P.set("profile", Prof);
  return rpc::makeRequest(ReqId, "pvp/close", std::move(P));
}

json::Value cancelRequest(int64_t ReqId, int64_t TargetId) {
  json::Object P;
  P.set("id", TargetId);
  return rpc::makeRequest(ReqId, "$/cancelRequest", std::move(P));
}

int64_t openedProfile(const json::Value &Response) {
  const json::Object *R = resultOf(Response);
  EXPECT_NE(R, nullptr) << Response.dump();
  return R ? R->find("profile")->asInt() : -1;
}

} // namespace

//===----------------------------------------------------------------------===
// TaskQueue
//===----------------------------------------------------------------------===

TEST(ConcurrentTaskQueue, SingleWorkerRunsTasksInFifoOrder) {
  std::vector<int> Order;
  {
    TaskQueue Q(1);
    for (int I = 0; I < 100; ++I)
      Q.post([&Order, I] { Order.push_back(I); });
  } // Destructor drains.
  ASSERT_EQ(Order.size(), 100u);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ConcurrentTaskQueue, DrainsFollowUpTasksPostedFromTasks) {
  std::atomic<int> Ran{0};
  // Declared before the queue so it outlives the destructor's drain, which
  // still runs tasks that call it.
  std::function<void(int)> Chain;
  {
    TaskQueue Q(2);
    // A chain of reposts (the strand pattern): each task schedules the
    // next; the destructor must run the whole chain, not just the head.
    Chain = [&Ran, &Chain, &Q](int Depth) {
      ++Ran;
      if (Depth < 50)
        Q.post([&Chain, Depth] { Chain(Depth + 1); });
    };
    Q.post([&Chain] { Chain(0); });
  }
  EXPECT_EQ(Ran.load(), 51);
}

TEST(ConcurrentTaskQueue, RunsTasksConcurrentlyAcrossWorkers) {
  TaskQueue Q(4);
  EXPECT_EQ(Q.threadCount(), 4u);
  // Two tasks that can only finish together prove two workers ran them
  // simultaneously (a single worker would deadlock; the timeout guards).
  std::promise<void> AReady, BReady, ADone;
  std::shared_future<void> AF = AReady.get_future().share();
  std::shared_future<void> BF = BReady.get_future().share();
  std::atomic<bool> Met{false};
  Q.post([&AReady, BF, &Met, &ADone] {
    AReady.set_value();
    if (BF.wait_for(std::chrono::seconds(30)) == std::future_status::ready)
      Met = true;
    ADone.set_value();
  });
  Q.post([&BReady, AF] {
    BReady.set_value();
    AF.wait_for(std::chrono::seconds(30));
  });
  // Wait for task A itself, not just its rendezvous future: checking Met
  // right after BF resolves races with A's store on a loaded machine.
  ADone.get_future().wait();
  EXPECT_TRUE(Met.load());
  EXPECT_GE(Q.executedCount(), 0u); // Counter is monotonic telemetry.
}

//===----------------------------------------------------------------------===
// Cooperative cancellation (engine level)
//===----------------------------------------------------------------------===

TEST(ConcurrentCancel, TokenCheckpointThrowsOnceCancelled) {
  CancelToken T = CancelToken::create();
  EXPECT_NO_THROW(T.checkpoint());
  T.requestCancel();
  EXPECT_TRUE(T.cancelled());
  EXPECT_THROW(T.checkpoint(), CancelledException);
  // A default-constructed token is inert and never throws.
  CancelToken Inert;
  EXPECT_NO_THROW(Inert.checkpoint());
  EXPECT_FALSE(Inert.cancelled());
}

TEST(ConcurrentCancel, AnalysisKernelsUnwindThroughThreadPool) {
  Profile P = test::makeRandomProfile(7);
  CancelToken T = CancelToken::create();
  T.requestCancel();
  ThreadPool::setSharedThreadCount(4);
  // bottomUpTree/flatTree checkpoint every 1024 contexts, well inside the
  // test profile. (topDownTree's stride is 8192 — larger than this input —
  // so it is exercised by the integration soaks instead.)
  EXPECT_THROW(bottomUpTree(P, T), CancelledException);
  EXPECT_THROW(flatTree(P, T), CancelledException);
  ThreadPool::setSharedThreadCount(ThreadPool::configuredThreads());
}

TEST(ConcurrentCancel, CancelledRequestAnswersMinus32800) {
  PvpServer Server;
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  CancelToken T = CancelToken::create();
  T.requestCancel();
  json::Value R = Server.handleMessage(flameRequest(1, Id), T);
  EXPECT_EQ(errorCodeOf(R), rpc::RequestCancelled);
}

TEST(ConcurrentCancel, CancelledRequestNeverPopulatesTheCache) {
  PvpServer Server;
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  CancelToken T = CancelToken::create();
  T.requestCancel();
  json::Value R = Server.handleMessage(flameRequest(1, Id), T);
  ASSERT_EQ(errorCodeOf(R), rpc::RequestCancelled);
  // No partial view was memoized: the next identical request is a miss
  // that recomputes and succeeds.
  json::Value Stats = Server.handleMessage(
      rpc::makeRequest(2, "pvp/stats", json::Object()));
  EXPECT_EQ(resultOf(Stats)->find("cachedViews")->asInt(), 0);
  json::Value Fresh = Server.handleMessage(flameRequest(3, Id));
  EXPECT_NE(resultOf(Fresh), nullptr);
}

TEST(ConcurrentCancel, CancelledRequestNeverInvalidatesAValidEntry) {
  PvpServer Server;
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  // Warm the cache with a valid view.
  json::Value Warm = Server.handleMessage(flameRequest(1, Id));
  ASSERT_NE(resultOf(Warm), nullptr);
  // A cancelled request with different params (different cache key) fails…
  json::Object P;
  P.set("profile", Id);
  P.set("maxRects", 64);
  CancelToken T = CancelToken::create();
  T.requestCancel();
  json::Value R =
      Server.handleMessage(rpc::makeRequest(2, "pvp/flame", std::move(P)), T);
  ASSERT_EQ(errorCodeOf(R), rpc::RequestCancelled);
  // …and the original entry still serves byte-identical hits.
  json::Value Again = Server.handleMessage(flameRequest(1, Id));
  EXPECT_EQ(Warm.asObject().find("result")->dump(),
            Again.asObject().find("result")->dump());
  json::Value Stats = Server.handleMessage(
      rpc::makeRequest(3, "pvp/stats", json::Object()));
  EXPECT_EQ(resultOf(Stats)->find("cacheHits")->asInt(), 1);
}

//===----------------------------------------------------------------------===
// SessionManager scheduling and cancellation
//===----------------------------------------------------------------------===

TEST(ConcurrentSessions, IndependentSessionsDoNotSeeEachOthersProfiles) {
  SessionManager::Options Opts;
  Opts.Sessions = 2;
  SessionManager M(Opts);
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  int64_t Prof = openedProfile(M.handle(0, openRequest(1, Bytes)));
  ASSERT_GT(Prof, 0);
  // Session 0 serves it; session 1 must not resolve the id.
  EXPECT_NE(resultOf(M.handle(0, flameRequest(2, Prof))), nullptr);
  EXPECT_EQ(errorCodeOf(M.handle(1, flameRequest(3, Prof))),
            rpc::InvalidParams);
}

TEST(ConcurrentSessions, SharedStoreAllocatesGloballyUniqueIds) {
  SessionManager::Options Opts;
  Opts.Sessions = 4;
  SessionManager M(Opts);
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  std::vector<int64_t> Ids;
  for (unsigned S = 0; S < M.sessionCount(); ++S)
    Ids.push_back(openedProfile(M.handle(S, openRequest(1, Bytes))));
  for (size_t I = 0; I < Ids.size(); ++I)
    for (size_t J = I + 1; J < Ids.size(); ++J)
      EXPECT_NE(Ids[I], Ids[J]);
  EXPECT_EQ(M.store().size(), Ids.size());
}

TEST(ConcurrentSessions, PerSessionFifoOrderIsPreserved) {
  SessionManager::Options Opts;
  Opts.Sessions = 1;
  Opts.Threads = 4; // More workers than sessions: order must still hold.
  SessionManager M(Opts);
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  // open must run before the flame that uses its id can be submitted, so
  // instead prove FIFO with close: flame(queued) then close(queued) —
  // were close reordered first, the flame would error.
  int64_t Prof = openedProfile(M.handle(0, openRequest(1, Bytes)));
  std::vector<std::future<json::Value>> Fs;
  for (int64_t R = 2; R < 30; ++R)
    Fs.push_back(M.submit(0, flameRequest(R, Prof)));
  Fs.push_back(M.submit(0, closeRequest(30, Prof)));
  for (size_t I = 0; I + 1 < Fs.size(); ++I)
    EXPECT_NE(resultOf(Fs[I].get()), nullptr) << I;
  EXPECT_NE(resultOf(Fs.back().get()), nullptr);
}

TEST(ConcurrentSessions, QueuedRequestCancelsWithoutRunning) {
  SessionManager::Options Opts;
  Opts.Sessions = 1;
  // A pvp/open of a missing path occupies the strand for >= 49 backoff
  // delays (~500ms): plenty of window to cancel the queued flame behind it.
  Opts.Limits.OpenRetry.MaxAttempts = 50;
  Opts.Limits.OpenRetry.InitialBackoffMs = 10;
  Opts.Limits.OpenRetry.MaxBackoffMs = 10;
  SessionManager M(Opts);
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  int64_t Prof = openedProfile(M.handle(0, openRequest(1, Bytes)));

  json::Object Slow;
  Slow.set("path", "/nonexistent/easyview-soak-profile.evprof");
  std::future<json::Value> Blocker =
      M.submit(0, rpc::makeRequest(2, "pvp/open", std::move(Slow)));
  std::future<json::Value> Victim = M.submit(0, flameRequest(3, Prof));
  json::Value CancelReply = M.handle(0, cancelRequest(4, 3));
  EXPECT_TRUE(resultOf(CancelReply)->find("cancelled")->asBool());
  EXPECT_EQ(errorCodeOf(Victim.get()), rpc::RequestCancelled);
  EXPECT_EQ(errorCodeOf(Blocker.get()), rpc::InvalidParams); // Path load fails.
  // The cancelled flame never polluted the cache: recomputing succeeds.
  EXPECT_NE(resultOf(M.handle(0, flameRequest(5, Prof))), nullptr);
}

TEST(ConcurrentSessions, CancelUnknownRequestReportsFalse) {
  SessionManager M(SessionManager::Options{});
  json::Value R = M.handle(0, cancelRequest(1, 999));
  EXPECT_FALSE(resultOf(R)->find("cancelled")->asBool());
  EXPECT_FALSE(M.cancel(99, 1)); // Invalid session: false, not a crash.
}

TEST(ConcurrentSessions, QueueCapRejectsWithSessionBusy) {
  SessionManager::Options Opts;
  Opts.Sessions = 1;
  Opts.MaxQueuedPerSession = 2;
  Opts.Limits.OpenRetry.MaxAttempts = 30;
  Opts.Limits.OpenRetry.InitialBackoffMs = 10;
  Opts.Limits.OpenRetry.MaxBackoffMs = 10;
  SessionManager M(Opts);
  json::Object Slow;
  Slow.set("path", "/nonexistent/easyview-busy.evprof");
  // The blocker occupies the strand while we overfill the queue.
  std::future<json::Value> Blocker =
      M.submit(0, rpc::makeRequest(1, "pvp/open", std::move(Slow)));
  std::vector<std::future<json::Value>> Fs;
  bool SawBusy = false;
  for (int64_t R = 2; R < 12; ++R) {
    Fs.push_back(M.submit(0, flameRequest(R, 12345)));
    json::Value Last = Fs.back().wait_for(std::chrono::seconds(0)) ==
                               std::future_status::ready
                           ? Fs.back().get()
                           : json::Value();
    if (Last.isObject() && errorCodeOf(Last) == rpc::SessionBusy) {
      SawBusy = true;
      Fs.pop_back();
      break;
    }
  }
  EXPECT_TRUE(SawBusy);
  Blocker.get();
  for (auto &F : Fs)
    F.get(); // Every accepted request still resolves.
}

TEST(ConcurrentSessions, InvalidSessionIdResolvesWithError) {
  SessionManager M(SessionManager::Options{});
  json::Value R = M.handle(99, flameRequest(1, 1));
  EXPECT_EQ(errorCodeOf(R), rpc::InvalidRequest);
}

//===----------------------------------------------------------------------===
// Soak: >= 4 sessions, interleaved traffic, byte-identity vs sequential
//===----------------------------------------------------------------------===

namespace {

/// One session's scripted traffic: open, a mix of views and searches, a
/// mid-stream close/reopen, final close. Returns the request payloads with
/// the profile id marker resolved later (requests are built per run since
/// ids differ between runs).
struct SoakScript {
  std::string OpenBytes;
  int Views = 24;
};

/// Replays \p Script against \p Submit (either a SessionManager session or
/// a standalone sequential server) and returns every response EXCEPT the
/// open/close envelopes, whose profile ids legitimately differ between a
/// shared store and a private one. View replies carry no ids, so they must
/// match byte for byte.
std::vector<std::string>
replaySoak(const SoakScript &Script,
           const std::function<json::Value(json::Value)> &Submit) {
  std::vector<std::string> Views;
  json::Value Opened = Submit(openRequest(1, Script.OpenBytes));
  int64_t Prof = openedProfile(Opened);
  for (int I = 0; I < Script.Views; ++I) {
    int64_t ReqId = 100 + I;
    json::Value R = (I % 3 == 0)   ? Submit(treeTableRequest(ReqId, Prof))
                    : (I % 3 == 1) ? Submit(flameRequest(ReqId, Prof))
                                   : Submit([&] {
                                       json::Object P;
                                       P.set("profile", Prof);
                                       P.set("pattern", "f");
                                       return rpc::makeRequest(
                                           ReqId, "pvp/search", std::move(P));
                                     }());
    Views.push_back(R.dump());
  }
  Submit(closeRequest(999, Prof));
  return Views;
}

} // namespace

TEST(ConcurrentSessions, SoakMatchesSequentialServerByteForByte) {
  constexpr unsigned Sessions = 4;
  SessionManager::Options Opts;
  Opts.Sessions = Sessions;
  SessionManager M(Opts);

  std::vector<SoakScript> Scripts(Sessions);
  for (unsigned S = 0; S < Sessions; ++S)
    Scripts[S].OpenBytes =
        writeEvProf(test::makeRandomProfile(1000 + S * 17));

  // Concurrent run: one driver thread per session, all hammering the
  // manager at once.
  std::vector<std::vector<std::string>> Concurrent(Sessions);
  {
    std::vector<std::thread> Drivers;
    for (unsigned S = 0; S < Sessions; ++S)
      Drivers.emplace_back([&, S] {
        Concurrent[S] = replaySoak(Scripts[S], [&](json::Value Req) {
          return M.handle(S, std::move(Req));
        });
      });
    for (std::thread &T : Drivers)
      T.join();
  }

  // Sequential reference: each session's script against a fresh standalone
  // server. Responses must match byte for byte.
  for (unsigned S = 0; S < Sessions; ++S) {
    PvpServer Sequential;
    std::vector<std::string> Expected =
        replaySoak(Scripts[S], [&](json::Value Req) {
          return Sequential.handleMessage(Req);
        });
    ASSERT_EQ(Concurrent[S].size(), Expected.size());
    for (size_t I = 0; I < Expected.size(); ++I)
      EXPECT_EQ(Concurrent[S][I], Expected[I])
          << "session " << S << " response " << I;
  }
}

TEST(ConcurrentSessions, SoakWithInterleavedCancelsAndCloses) {
  // Race-oriented soak for the tsan preset: 4 sessions issue interleaved
  // open/flame/treeTable/$cancel/close traffic, including cancels that race
  // running requests and closes that race other sessions' reads of the
  // shared store and cache. Assertions are invariant-level: every future
  // resolves with either a result or a well-known error code.
  constexpr unsigned Sessions = 4;
  constexpr int Rounds = 12;
  SessionManager::Options Opts;
  Opts.Sessions = Sessions;
  SessionManager M(Opts);

  std::vector<std::thread> Drivers;
  std::atomic<int> Failures{0};
  for (unsigned S = 0; S < Sessions; ++S)
    Drivers.emplace_back([&, S] {
      std::string Bytes = writeEvProf(test::makeRandomProfile(500 + S));
      for (int Round = 0; Round < Rounds; ++Round) {
        int64_t Prof = openedProfile(M.handle(S, openRequest(1, Bytes)));
        std::vector<std::future<json::Value>> Fs;
        for (int64_t R = 2; R < 8; ++R)
          Fs.push_back(M.submit(S, R % 2 == 0 ? flameRequest(R, Prof)
                                              : treeTableRequest(R, Prof)));
        // Cancel one mid-flight request and close while views may still
        // be queued behind the close on OTHER rounds' state.
        M.submit(S, cancelRequest(50, 5));
        Fs.push_back(M.submit(S, closeRequest(51, Prof)));
        for (auto &F : Fs) {
          json::Value R = F.get();
          int Code = errorCodeOf(R);
          bool Ok = resultOf(R) != nullptr ||
                    Code == rpc::RequestCancelled ||
                    Code == rpc::InvalidParams;
          if (!Ok)
            ++Failures;
        }
      }
    });
  for (std::thread &T : Drivers)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  // Every round issues 8 strand requests; at most one per round is
  // unlinked while still queued (cancelled before execution), and the
  // executed counter is telemetry incremented after the promise resolves,
  // so the drivers can observe it a few tasks short of the true total.
  EXPECT_GE(M.executedCount(), Sessions * Rounds * 6u);
}

//===----------------------------------------------------------------------===
// Shared store semantics
//===----------------------------------------------------------------------===

TEST(ConcurrentStore, DropKeepsInFlightReferencesAlive) {
  ProfileStore Store;
  int64_t Id = Store.add(test::makeFixedProfile());
  std::shared_ptr<const Profile> Held = Store.get(Id);
  ASSERT_NE(Held, nullptr);
  EXPECT_TRUE(Store.drop(Id));
  EXPECT_EQ(Store.get(Id), nullptr);
  // The dropped profile stays readable through the held reference.
  EXPECT_GT(Held->nodeCount(), 0u);
  EXPECT_FALSE(Store.drop(Id)); // Second drop: id already retired.
}

TEST(ConcurrentStore, GenerationsAdvanceIndependently) {
  ProfileStore Store;
  int64_t A = Store.add(test::makeFixedProfile());
  int64_t B = Store.add(test::makeFixedProfile());
  EXPECT_EQ(Store.generationOf(A), 0u);
  Store.bumpGeneration(A);
  Store.bumpGeneration(A);
  EXPECT_EQ(Store.generationOf(A), 2u);
  EXPECT_EQ(Store.generationOf(B), 0u);
}

TEST(ConcurrentStore, SharedCacheValidatesGenerationPerEntry) {
  ViewCache Cache(8, /*Shards=*/4);
  json::Object Payload;
  Payload.set("x", 1);
  Cache.insert("k", /*ProfileId=*/7, /*Generation=*/0,
               json::Value(std::move(Payload)));
  // Current generation matches: hit.
  EXPECT_NE(Cache.lookup("k", 0), nullptr);
  // Profile retired elsewhere (generation advanced): the stale entry is
  // dropped, not served.
  EXPECT_EQ(Cache.lookup("k", 1), nullptr);
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);
}
