//===- workload/SparkWorkload.cpp - Fig. 3 Spark differential study -------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workload/SparkWorkload.h"

#include "profile/ProfileBuilder.h"
#include "support/Rng.h"

namespace ev {
namespace workload {

namespace {

/// Frames of the executor spine common to both runs (Fig. 3 top rows).
std::vector<FrameId> executorSpine(ProfileBuilder &B) {
  const char *Mod = "spark-assembly.jar";
  return {
      B.functionFrame("java.lang.Thread.run", "Thread.java", 748, Mod),
      B.functionFrame("java.util.concurrent.ThreadPoolExecutor$Worker.run",
                      "ThreadPoolExecutor.java", 624, Mod),
      B.functionFrame("java.util.concurrent.ThreadPoolExecutor.runWorker",
                      "ThreadPoolExecutor.java", 1149, Mod),
      B.functionFrame("spark.executor.Executor$TaskRunner.run",
                      "Executor.scala", 414, Mod),
      B.functionFrame("spark.util.Utils$.tryWithSafeFinally", "Utils.scala",
                      1360, Mod),
      B.functionFrame("spark.scheduler.Task.run", "Task.scala", 123, Mod),
      B.functionFrame("spark.scheduler.ShuffleMapTask.runTask",
                      "ShuffleMapTask.scala", 99, Mod),
  };
}

void addCost(ProfileBuilder &B, MetricId Cpu, std::vector<FrameId> Spine,
             std::initializer_list<const char *> Tail, double Millis,
             Rng &R) {
  const char *Mod = "spark-assembly.jar";
  uint32_t Line = 40;
  for (const char *Name : Tail) {
    Spine.push_back(B.functionFrame(Name, "", Line, Mod));
    Line += 17;
  }
  B.addSample(Spine, Cpu, Millis * 1e6 * (1.0 + 0.03 * R.normal()));
}

} // namespace

SparkWorkload generateSparkWorkload(const SparkOptions &Options) {
  Rng R(Options.Seed);
  SparkWorkload Out;

  // ---- P1: RDD API run. Heavy iterator chains and shuffle writes.
  {
    ProfileBuilder B("spark-bench (RDD API)");
    MetricId Cpu = B.addMetric("cpu-time", "nanoseconds");
    std::vector<FrameId> Spine = executorSpine(B);

    addCost(B, Cpu, Spine,
            {"spark.shuffle.sort.BypassMergeSortShuffleWriter.write",
             "scala.collection.Iterator$$anon$11.next",
             "scala.collection.Iterator$$anon$10.next",
             "com.ibm.sparktc.sparkbench.CartesianProduct.compute"},
            5200, R);
    addCost(B, Cpu, Spine,
            {"spark.shuffle.sort.BypassMergeSortShuffleWriter.write",
             "scala.collection.Iterator$$anon$11.next",
             "spark.rdd.CartesianRDD.compute",
             "spark.rdd.RDD.iterator",
             "spark.rdd.MapPartitionsRDD.compute"},
            4100, R);
    addCost(B, Cpu, Spine,
            {"spark.rdd.RDD.iterator",
             "spark.rdd.MapPartitionsRDD.compute",
             "scala.collection.Iterator$$anon$11.next",
             "scala.collection.generic.Growable$class.$plus$plus$eq"},
            2600, R);
    addCost(B, Cpu, Spine,
            {"spark.rdd.RDD.iterator", "spark.rdd.CartesianRDD.compute",
             "spark.serializer.JavaSerializerInstance.serialize"},
            1400, R);
    // GC pressure from boxed rows.
    addCost(B, Cpu, {B.functionFrame("GC Thread", "", 0, "jvm")},
            {"G1ParScanThreadState.copy_to_survivor_space"}, 900, R);
    Out.Rdd = B.take();
  }

  // ---- P2: SQL Dataset API run. WholeStage codegen, no wide shuffle.
  {
    ProfileBuilder B("spark-bench (SQL Dataset API)");
    MetricId Cpu = B.addMetric("cpu-time", "nanoseconds");
    std::vector<FrameId> Spine = executorSpine(B);

    addCost(B, Cpu, Spine,
            {"spark.sql.execution.WholeStageCodegenExec$$anon$1.hasNext",
             "spark.sql.catalyst.expressions.GeneratedClass$GeneratedIterator"
             ".processNext"},
            2900, R);
    addCost(B, Cpu, Spine,
            {"spark.sql.execution.aggregate.HashAggregateExec.doExecute",
             "spark.sql.execution.UnsafeRowSerializer.serialize"},
            1100, R);
    addCost(B, Cpu, Spine,
            {"spark.rdd.RDD.iterator",
             "spark.rdd.MapPartitionsRDD.compute",
             "scala.collection.Iterator$$anon$11.next",
             "scala.collection.generic.Growable$class.$plus$plus$eq"},
            1900, R); // Shared context, cheaper here ([-]).
    addCost(B, Cpu, {B.functionFrame("GC Thread", "", 0, "jvm")},
            {"G1ParScanThreadState.copy_to_survivor_space"}, 350, R);
    Out.Sql = B.take();
  }
  return Out;
}

} // namespace workload
} // namespace ev
