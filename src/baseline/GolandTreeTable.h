//===- baseline/GolandTreeTable.h - GoLand-plugin-style baseline ----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Baseline viewer for the response-time experiment (paper Fig. 5,
/// "GoLand of PProf plugin"). GoLand builds a call tree like EasyView
/// does, but its UI model is eager: on open it materializes a row object
/// for EVERY tree node — display name, formatted self/total values,
/// percentage strings, tooltip text — and keeps per-node children sorted
/// for the table widget. EasyView instead lays out lazily and culls to the
/// viewport, which is exactly the gap the paper measures ("GoLand requires
/// much more time to open and navigate large profiles").
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_BASELINE_GOLANDTREETABLE_H
#define EASYVIEW_BASELINE_GOLANDTREETABLE_H

#include "support/Result.h"

#include <cstddef>
#include <string_view>

namespace ev {
namespace baseline {

struct GolandViewResult {
  size_t Rows = 0;       ///< Materialized UI rows (= tree nodes).
  size_t ModelBytes = 0; ///< Total bytes of formatted row strings.
};

/// Opens pprof bytes the way the GoLand pprof plugin does.
Result<GolandViewResult> openWithGolandView(std::string_view PprofBytes);

} // namespace baseline
} // namespace ev

#endif // EASYVIEW_BASELINE_GOLANDTREETABLE_H
