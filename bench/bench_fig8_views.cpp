//===- bench/bench_fig8_views.cpp - Paper Fig. 8 --------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 8: the per-view effectiveness percentages from the
/// survey cohort (n=26). Human participants cannot be rerun; the simulated
/// cohort encodes the published findings (flame graphs 92.3% vs tree
/// tables 84.6%; top-down most helpful in both families).
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "userstudy/UserSim.h"

#include <benchmark/benchmark.h>

using namespace ev;

namespace {

void simulateSurvey(benchmark::State &State) {
  uint64_t Seed = 1;
  for (auto _ : State) {
    auto Votes = userstudy::simulateViewSurvey(Seed++);
    benchmark::DoNotOptimize(Votes.data());
  }
}
BENCHMARK(simulateSurvey)->Unit(benchmark::kMicrosecond);

void printFigure() {
  auto Votes = userstudy::simulateViewSurvey();
  bench::row("Fig8: view effectiveness, %% of 26 participants");
  for (const userstudy::ViewVote &V : Votes) {
    int Bars = static_cast<int>(V.Percent / 2.5);
    std::string Bar(static_cast<size_t>(Bars), '#');
    bench::row("%-24s %5.1f%% %s", V.View.c_str(), V.Percent, Bar.c_str());
  }
  bench::row("expected shape: flame > tree-table; top-down leads both");
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printFigure();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
