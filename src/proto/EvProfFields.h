//===- proto/EvProfFields.h - .evprof wire field numbers ------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Field numbers of the .evprof protobuf schema (see proto/EvProf.h for the
/// message definitions). Shared between the batch codec (EvProf.cpp) and
/// the streaming decoder (EvProfStream.cpp) so the two can never drift.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_PROTO_EVPROFFIELDS_H
#define EASYVIEW_PROTO_EVPROFFIELDS_H

#include <cstdint>

namespace ev {
namespace evprof {

// Field numbers of message EvProfile.
enum : uint32_t {
  FProfileName = 1,
  FProfileString = 2,
  FProfileMetric = 3,
  FProfileFrame = 4,
  FProfileNode = 5,
  FProfileGroup = 6,
};

enum : uint32_t { FMetricName = 1, FMetricUnit = 2, FMetricAgg = 3 };

enum : uint32_t {
  FFrameKind = 1,
  FFrameName = 2,
  FFrameFile = 3,
  FFrameLine = 4,
  FFrameModule = 5,
  FFrameAddr = 6,
};

enum : uint32_t { FNodeParentPlus1 = 1, FNodeFrame = 2, FNodeValue = 3 };

enum : uint32_t { FValueMetric = 1, FValueValue = 2 };

enum : uint32_t {
  FGroupKind = 1,
  FGroupContext = 2,
  FGroupMetric = 3,
  FGroupValue = 4,
};

} // namespace evprof
} // namespace ev

#endif // EASYVIEW_PROTO_EVPROFFIELDS_H
