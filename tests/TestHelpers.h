//===- tests/TestHelpers.h - Shared fixtures for the test suite -----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_TESTS_TESTHELPERS_H
#define EASYVIEW_TESTS_TESTHELPERS_H

#include "profile/ProfileBuilder.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace ev {
namespace test {

/// A small fixed profile used by many tests:
///
///   ROOT
///    └─ main (app.cc:1, app)            excl 5
///        ├─ parse (parse.cc:10, app)    excl 20
///        └─ compute (comp.cc:20, app)   excl 10
///            ├─ kernel (comp.cc:30, app)     excl 40
///            └─ memcpy (<none>, libc.so)     excl 25
///
/// Metric 0 = "time" (ns). Total exclusive = 100.
inline Profile makeFixedProfile() {
  ProfileBuilder B("fixed");
  MetricId Time = B.addMetric("time", "nanoseconds");
  FrameId Main = B.functionFrame("main", "app.cc", 1, "app");
  FrameId Parse = B.functionFrame("parse", "parse.cc", 10, "app");
  FrameId Compute = B.functionFrame("compute", "comp.cc", 20, "app");
  FrameId Kernel = B.functionFrame("kernel", "comp.cc", 30, "app");
  FrameId Memcpy = B.functionFrame("memcpy", "", 0, "libc.so");

  std::vector<FrameId> P;
  P = {Main};
  B.addSample(P, Time, 5);
  P = {Main, Parse};
  B.addSample(P, Time, 20);
  P = {Main, Compute};
  B.addSample(P, Time, 10);
  P = {Main, Compute, Kernel};
  B.addSample(P, Time, 40);
  P = {Main, Compute, Memcpy};
  B.addSample(P, Time, 25);
  return B.take();
}

/// Deterministic random profile for property tests: \p Paths call paths of
/// depth up to \p MaxDepth over a pool of \p Functions functions, two
/// metrics ("time", "bytes") with non-negative values.
inline Profile makeRandomProfile(uint64_t Seed, size_t Paths = 200,
                                 unsigned MaxDepth = 12,
                                 size_t Functions = 40) {
  Rng R(Seed);
  ProfileBuilder B("random-" + std::to_string(Seed));
  MetricId Time = B.addMetric("time", "nanoseconds");
  MetricId Bytes = B.addMetric("bytes", "bytes");

  std::vector<FrameId> Pool;
  for (size_t I = 0; I < Functions; ++I)
    Pool.push_back(B.functionFrame(
        "fn" + std::to_string(I), "file" + std::to_string(I % 7) + ".cc",
        static_cast<uint32_t>(10 + I), "mod" + std::to_string(I % 3)));

  std::vector<FrameId> Path;
  for (size_t S = 0; S < Paths; ++S) {
    Path.clear();
    unsigned Depth = static_cast<unsigned>(R.range(1, MaxDepth));
    for (unsigned D = 0; D < Depth; ++D)
      Path.push_back(Pool[R.below(Pool.size())]);
    NodeId Leaf = B.pushPath(Path);
    if (R.chance(0.9))
      B.addValue(Leaf, Time, static_cast<double>(R.range(1, 1000)));
    if (R.chance(0.5))
      B.addValue(Leaf, Bytes, static_cast<double>(R.range(1, 1 << 20)));
  }
  return B.take();
}

} // namespace test
} // namespace ev

#endif // EASYVIEW_TESTS_TESTHELPERS_H
