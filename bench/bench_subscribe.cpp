//===- bench/bench_subscribe.cpp - Delta vs full-view payload sizes -------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the compactness claim behind pvp/subscribe: for a live
/// subscription fed by single-section pvp/append calls, the pushed
/// pvp/viewDelta payload against the full view a re-querying client would
/// fetch at the same generation. Runs the real server through the wire
/// framing (MockIde), verifies every applied delta is dump()-byte-identical
/// to the re-query before counting it, and reports per-view medians for
/// the decoded delta bytes, the base64 wire bytes, and the append-to-push
/// round trip.
///
/// Results merge under the "subscribe" key of BENCH_load.json (override
/// with --out=PATH); --smoke shrinks the run for the CI smoke test.
///
/// Exit code 1 means a broken run: a delta failed to apply, diverged from
/// the re-query, or no pushes were observed.
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "ide/MockIde.h"
#include "ide/ViewDelta.h"
#include "profile/ProfileBuilder.h"
#include "proto/EvProf.h"
#include "support/FileIo.h"
#include "support/Strings.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace ev;

namespace {

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Canonical .evprof bytes of a profile growing across \p Stages
/// generations with the prefix property (stage k+1's bytes extend stage
/// k's byte-for-byte), so consecutive stages differ by exactly the
/// appendable section a live profiler would emit. \p BaseLeaves widens
/// stage 0 under a subtree the growth scheme never touches, scaling the
/// view's row count (and thus the full-view payload) without perturbing
/// the per-stage change. Mirrors the construction the subscribe test
/// suite pins.
std::vector<std::string> growthStages(size_t Stages, size_t BaseLeaves) {
  std::vector<std::string> Out;
  for (size_t S = 0; S < Stages; ++S) {
    ProfileBuilder B("live");
    MetricId Time = B.addMetric("time", "nanoseconds");
    std::vector<FrameId> Pool;
    for (size_t I = 0; I < 40; ++I)
      Pool.push_back(B.functionFrame(
          "fn" + std::to_string(I), "file" + std::to_string(I % 3) + ".cc",
          static_cast<uint32_t>(10 + I), "mod"));

    std::vector<FrameId> P;
    P = {Pool[0]};
    B.addSample(P, Time, 5);
    P = {Pool[0], Pool[11]};
    B.addSample(P, Time, 40);
    for (size_t K = 0; K < BaseLeaves; ++K) {
      P = {Pool[0], Pool[11], Pool[12 + K % 28], Pool[12 + (K / 28) % 28],
           Pool[12 + (K / 784) % 28]};
      B.addSample(P, Time, static_cast<double>(K % 97 + 1));
    }
    for (size_t G = 1; G <= S; ++G)
      for (size_t J = 0; J < 3; ++J) {
        P = {Pool[0], Pool[1 + (G - 1) % 10], Pool[1 + J]};
        B.addSample(P, Time, static_cast<double>(G * 100 + J * 7 + 1));
      }
    Out.push_back(writeEvProf(B.take()));
  }
  return Out;
}

double percentile(std::vector<double> &V, double P) {
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  size_t Rank =
      static_cast<size_t>((P / 100.0) * static_cast<double>(V.size()));
  if (Rank >= V.size())
    Rank = V.size() - 1;
  return V[Rank];
}

/// One measured push: the decoded delta, its base64 wire form, the full
/// re-query payload at the same generation, and the append round trip.
struct Sample {
  double DeltaBytes = 0;
  double WireBytes = 0;
  double FullBytes = 0;
  double AppendToPushUs = 0;
};

/// Streams one growth sequence through a live subscription on \p View,
/// appending one section per generation and measuring each push against a
/// full re-query. \returns false on a broken run (apply failure or
/// divergence — compactness numbers from a wrong codec are meaningless).
bool runView(const char *View, const char *Method, size_t Stages,
             size_t BaseLeaves, std::vector<Sample> &Out) {
  std::vector<std::string> Bytes = growthStages(Stages, BaseLeaves);
  MockIde Ide;
  Result<int64_t> Prof = Ide.openProfile("bench.live", Bytes[0]);
  if (!Prof) {
    std::fprintf(stderr, "bench_subscribe: open failed: %s\n",
                 Prof.error().c_str());
    return false;
  }

  json::Object ViewParams; // The subscription's params, reused on re-query.
  if (std::strcmp(View, "flame") == 0)
    ViewParams.set("maxRects", static_cast<int64_t>(100000));
  else
    ViewParams.set("includeText", false);

  json::Object SubParams;
  SubParams.set("profile", *Prof);
  SubParams.set("view", View);
  SubParams.set("params", json::Value(json::Object(ViewParams)));
  Result<json::Value> Sub = Ide.call("pvp/subscribe", std::move(SubParams));
  if (!Sub) {
    std::fprintf(stderr, "bench_subscribe: subscribe failed: %s\n",
                 Sub.error().c_str());
    return false;
  }
  int64_t SubId = Sub->asObject().find("subscription")->asInt();
  json::Value Held = *Sub->asObject().find("view");

  for (size_t S = 0; S + 1 < Bytes.size(); ++S) {
    json::Object AP;
    AP.set("profile", *Prof);
    AP.set("dataBase64",
           base64Encode(Bytes[S + 1].substr(Bytes[S].size())));
    uint64_t T0 = nowUs();
    Result<json::Value> Appended = Ide.call("pvp/append", std::move(AP));
    std::vector<json::Value> Notes = Ide.takeNotifications();
    uint64_t T1 = nowUs();
    if (!Appended) {
      std::fprintf(stderr, "bench_subscribe: append failed: %s\n",
                   Appended.error().c_str());
      return false;
    }

    const json::Value *Delta = nullptr;
    for (const json::Value &N : Notes)
      if (N.isObject())
        if (const json::Value *M = N.asObject().find("method");
            M && M->isString() && M->asString() == "pvp/viewDelta")
          Delta = N.asObject().find("params");
    if (!Delta) {
      std::fprintf(stderr, "bench_subscribe: append produced no push\n");
      return false;
    }
    std::string Wire(Delta->asObject().find("deltaBase64")->stringOr(""));
    std::string Raw;
    if (!base64Decode(Wire, Raw)) {
      std::fprintf(stderr, "bench_subscribe: bad delta base64\n");
      return false;
    }
    Result<json::Value> Applied = applyViewDelta(Held, Raw);
    if (!Applied) {
      std::fprintf(stderr, "bench_subscribe: apply failed: %s\n",
                   Applied.error().c_str());
      return false;
    }

    json::Object Requery(ViewParams);
    Requery.set("profile", *Prof);
    Result<json::Value> Full = Ide.call(Method, std::move(Requery));
    if (!Full) {
      std::fprintf(stderr, "bench_subscribe: re-query failed: %s\n",
                   Full.error().c_str());
      return false;
    }
    std::string FullDump = Full->dump();
    if (Applied->dump() != FullDump) {
      std::fprintf(stderr,
                   "bench_subscribe: applied delta diverged from re-query "
                   "(%s, stage %zu)\n",
                   View, S + 1);
      return false;
    }

    json::Object AckP;
    AckP.set("subscription", SubId);
    AckP.set("generation", *Delta->asObject().find("toGeneration"));
    Ide.call("pvp/ack", std::move(AckP));
    Held = std::move(*Applied);

    Sample Row;
    Row.DeltaBytes = static_cast<double>(Raw.size());
    Row.WireBytes = static_cast<double>(Wire.size());
    Row.FullBytes = static_cast<double>(FullDump.size());
    Row.AppendToPushUs = static_cast<double>(T1 - T0);
    Out.push_back(Row);
  }
  return true;
}

json::Value summarize(const char *View, std::vector<Sample> &Samples,
                      double &MedianRatioOut) {
  std::vector<double> Delta, Wire, Full, Ratio, WireRatio, Us;
  for (const Sample &S : Samples) {
    Delta.push_back(S.DeltaBytes);
    Wire.push_back(S.WireBytes);
    Full.push_back(S.FullBytes);
    Ratio.push_back(S.FullBytes > 0 ? S.DeltaBytes / S.FullBytes : 0);
    WireRatio.push_back(S.FullBytes > 0 ? S.WireBytes / S.FullBytes : 0);
    Us.push_back(S.AppendToPushUs);
  }
  MedianRatioOut = percentile(Ratio, 50);
  json::Object O;
  O.set("samples", static_cast<int64_t>(Samples.size()));
  O.set("medianDeltaBytes", percentile(Delta, 50));
  O.set("medianWireBytes", percentile(Wire, 50));
  O.set("medianFullViewBytes", percentile(Full, 50));
  O.set("medianDeltaToFullRatio", percentile(Ratio, 50));
  O.set("p90DeltaToFullRatio", percentile(Ratio, 90));
  O.set("medianWireToFullRatio", percentile(WireRatio, 50));
  O.set("medianAppendToPushUs", percentile(Us, 50));
  O.set("p99AppendToPushUs", percentile(Us, 99));
  bench::row("%-10s n=%-4zu delta p50=%7.0fB wire p50=%7.0fB full "
             "p50=%8.0fB ratio p50=%.3f p90=%.3f push p50=%6.0fus",
             View, Samples.size(), percentile(Delta, 50), percentile(Wire, 50),
             percentile(Full, 50), percentile(Ratio, 50), percentile(Ratio, 90),
             percentile(Us, 50));
  return json::Value(std::move(O));
}

} // namespace

int main(int argc, char **argv) {
#ifdef EV_BENCH_DEFAULT_OUT
  std::string OutPath = EV_BENCH_DEFAULT_OUT;
#else
  std::string OutPath = "BENCH_load.json";
#endif
  bool Smoke = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strncmp(argv[I], "--out=", 6) == 0)
      OutPath = argv[I] + 6;
    else {
      std::fprintf(stderr, "usage: bench_subscribe [--smoke] [--out=PATH]\n");
      return 2;
    }
  }

  // Each run streams a full growth sequence (10 single-section appends)
  // at one base view size; three sizes cover small panes to wide tables.
  std::vector<size_t> BaseSizes =
      Smoke ? std::vector<size_t>{100} : std::vector<size_t>{200, 1000, 3000};
  size_t Stages = Smoke ? 5 : 11;

  struct ViewSpec {
    const char *View;
    const char *Method;
  };
  const ViewSpec Views[] = {{"flame", "pvp/flame"},
                            {"treeTable", "pvp/treeTable"}};

  json::Object ViewsOut;
  std::vector<double> MedianRatios;
  for (const ViewSpec &V : Views) {
    std::vector<Sample> Samples;
    for (size_t Base : BaseSizes)
      if (!runView(V.View, V.Method, Stages, Base, Samples))
        return 1;
    if (Samples.empty()) {
      std::fprintf(stderr, "bench_subscribe: no pushes observed\n");
      return 1;
    }
    double MedianRatio = 0;
    ViewsOut.set(V.View, summarize(V.View, Samples, MedianRatio));
    MedianRatios.push_back(MedianRatio);
  }

  telemetry::Registry &Reg = telemetry::Registry::global();
  json::Object Counters;
  for (const char *Name :
       {"sub.pushes", "sub.deltaBytes", "sub.fullViewBytes",
        "sub.fullFallbacks", "sub.acks"})
    Counters.set(Name, static_cast<int64_t>(Reg.counter(Name).value()));

  double WorstMedian =
      *std::max_element(MedianRatios.begin(), MedianRatios.end());
  json::Object Subscribe;
  Subscribe.set("smoke", Smoke);
  Subscribe.set("stagesPerRun", static_cast<int64_t>(Stages));
  Subscribe.set("appendsPerRun", static_cast<int64_t>(Stages - 1));
  Subscribe.set("views", std::move(ViewsOut));
  Subscribe.set("counters", std::move(Counters));
  Subscribe.set("worstViewMedianDeltaToFullRatio", WorstMedian);
  bench::row("worst per-view median delta/full ratio: %.3f (target <= 0.20)",
             WorstMedian);
  if (WorstMedian > 0.20)
    std::fprintf(stderr, "bench_subscribe: WARNING — median delta payload "
                         "exceeds 20%% of the full view\n");

  // Merge under the "subscribe" key of the (possibly existing) load
  // report, so one JSON document carries the whole transport story.
  json::Object Doc;
  if (Result<std::string> Existing = readFile(OutPath); Existing.ok())
    if (Result<json::Value> Parsed = json::parse(*Existing);
        Parsed.ok() && Parsed->isObject())
      Doc = Parsed->asObject();
  Doc.set("subscribe", std::move(Subscribe));
  std::string Text = json::Value(std::move(Doc)).dumpPretty();
  Text.push_back('\n');
  if (!writeFile(OutPath, Text).ok()) {
    std::fprintf(stderr, "bench_subscribe: cannot write %s\n",
                 OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
