//===- convert/TauConverter.cpp - TAU profile.* text converter ------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts TAU's textual per-thread profile files (profile.N.N.N) into
/// the generic representation. Supported shape (pprof-style TAU dumps):
///
/// \code
///   <n> templated_functions_MULTI_TIME
///   # Name Calls Subrs Excl Incl ProfileCalls #
///   ".TAU application" 1 1 1000 29000 0 GROUP="TAU_DEFAULT"
///   "main()" 1 2 2000 28000 0 GROUP="TAU_USER"
///   "main() => work()" 4 0 26000 26000 0 GROUP="TAU_CALLPATH"
///   0 aggregates
/// \endcode
///
/// With TAU_CALLPATH enabled, names are " => "-joined call paths; the
/// converter materializes them in the CCT. Flat entries (no "=>") become
/// first-level contexts. Exclusive time (usec) and call counts carry over
/// as metrics; inclusive time is derived by the analysis engine, and
/// entries whose call paths are covered by deeper callpath entries keep
/// exclusive-only attribution to avoid double counting.
///
//===----------------------------------------------------------------------===//

#include "convert/Converters.h"

#include "profile/ProfileBuilder.h"
#include "support/Strings.h"

namespace ev {
namespace convert {

namespace {

/// Extracts a quoted name; \returns the rest of the line after it.
bool parseQuotedName(std::string_view Line, std::string_view &Name,
                     std::string_view &Rest) {
  Line = trim(Line);
  if (Line.empty() || Line[0] != '"')
    return false;
  size_t End = Line.find('"', 1);
  if (End == std::string_view::npos)
    return false;
  Name = trim(Line.substr(1, End - 1));
  Rest = trim(Line.substr(End + 1));
  return true;
}

} // namespace

Result<Profile> fromTau(std::string_view Text) {
  std::vector<std::string_view> Lines = splitLines(Text);
  size_t LineNo = 0;

  // Header: "<count> templated_functions..." (the tag varies by metric).
  uint64_t Declared = 0;
  size_t I = 0;
  for (; I < Lines.size(); ++I) {
    std::string_view Line = trim(Lines[I]);
    ++LineNo;
    if (Line.empty())
      continue;
    size_t Space = Line.find(' ');
    if (Space == std::string_view::npos ||
        !parseUnsigned(Line.substr(0, Space), Declared) ||
        Line.find("templated_functions") == std::string_view::npos)
      return makeError("tau: missing 'templated_functions' header");
    ++I;
    break;
  }
  if (Declared == 0)
    return makeError("tau: profile declares no functions");

  ProfileBuilder B("tau profile");
  MetricId Time = B.addMetric("time", "nanoseconds");
  MetricId Calls = B.addMetric("calls", "count");

  size_t Parsed = 0;
  std::vector<FrameId> Path;
  for (; I < Lines.size() && Parsed < Declared; ++I) {
    std::string_view Line = trim(Lines[I]);
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;

    std::string_view Name, Rest;
    if (!parseQuotedName(Line, Name, Rest))
      return makeError("tau: line " + std::to_string(LineNo) +
                       ": expected a quoted function name");
    // Columns: Calls Subrs Excl Incl ProfileCalls [GROUP=...].
    std::vector<std::string_view> Columns;
    for (std::string_view W : splitString(Rest, ' '))
      if (!trim(W).empty())
        Columns.push_back(trim(W));
    if (Columns.size() < 4)
      return makeError("tau: line " + std::to_string(LineNo) +
                       ": expected at least 4 numeric columns");
    double CallCount, Excl;
    if (!parseDouble(Columns[0], CallCount) ||
        !parseDouble(Columns[2], Excl))
      return makeError("tau: line " + std::to_string(LineNo) +
                       ": malformed numeric column");

    // ".TAU application" is TAU's whole-program root; map it onto ROOT.
    Path.clear();
    if (Name != ".TAU application") {
      for (std::string_view Piece : splitString(Name, '=')) {
        Piece = trim(Piece);
        if (Piece.empty() || Piece == ">")
          continue;
        if (!Piece.empty() && Piece.front() == '>')
          Piece = trim(Piece.substr(1));
        if (Piece.empty())
          continue;
        if (Piece == ".TAU application")
          continue;
        Path.push_back(B.functionFrame(Piece));
      }
    }
    NodeId Node = B.pushPath(Path);
    if (Excl != 0.0)
      B.addValue(Node, Time, Excl * 1e3); // usec -> ns.
    if (CallCount != 0.0)
      B.addValue(Node, Calls, CallCount);
    ++Parsed;
  }
  if (Parsed != Declared)
    return makeError("tau: header declares " + std::to_string(Declared) +
                     " functions, found " + std::to_string(Parsed));
  return B.take();
}

} // namespace convert
} // namespace ev
