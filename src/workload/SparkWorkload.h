//===- workload/SparkWorkload.h - Fig. 3 Spark differential study ---------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes the paper's Fig. 3 differential case study: Async-Profiler
/// CPU profiles of Spark running Spark-Bench, once with the RDD APIs (P1)
/// and once with the SQL Dataset APIs (P2). P2 outperforms P1 because the
/// SQL engine's generated code replaces the interpreted iterator chains
/// and bypasses the costly shuffle of the RDD path — so in diff(P1, P2)
/// the RDD iterator/shuffle contexts show as [D]/[-] and the SQL engine
/// contexts as [A]/[+], under the common executor spine Fig. 3 displays.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_WORKLOAD_SPARKWORKLOAD_H
#define EASYVIEW_WORKLOAD_SPARKWORKLOAD_H

#include "profile/Profile.h"

#include <cstdint>

namespace ev {
namespace workload {

struct SparkOptions {
  uint64_t Seed = 17;
};

struct SparkWorkload {
  Profile Rdd; ///< P1: RDD API run.
  Profile Sql; ///< P2: SQL Dataset API run.
};

SparkWorkload generateSparkWorkload(const SparkOptions &Options = {});

} // namespace workload
} // namespace ev

#endif // EASYVIEW_WORKLOAD_SPARKWORKLOAD_H
