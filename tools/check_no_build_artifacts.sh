#!/bin/sh
# Fails when any build directory (build*/ at the repo root) is tracked by
# git. Build trees are machine-local; 358 of them once slipped into the
# index and bloated every clone. Wired into the `lint` target.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "check_no_build_artifacts: not a git checkout, skipping"
  exit 0
fi

tracked="$(git ls-files -- 'build*/**' 'build*' | head -20 || true)"
if [ -n "$tracked" ]; then
  echo "error: build artifacts are tracked by git (add them to .gitignore" >&2
  echo "and 'git rm -r --cached' them):" >&2
  echo "$tracked" | sed 's/^/  /' >&2
  exit 1
fi
echo "check_no_build_artifacts: no tracked build*/ paths"
