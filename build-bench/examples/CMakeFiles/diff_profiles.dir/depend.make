# Empty dependencies file for diff_profiles.
# This may be replaced when dependencies are built.
