//===- support/Clock.cpp - Wall vs. monotonic clock helpers ---------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Clock.h"

#include <chrono>

namespace ev {

uint64_t wallMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t monoMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t monoMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace ev
