//===- bench/bench_fig4_leak.cpp - Paper Fig. 4 ---------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 4: the aggregate memory view over periodic PProf heap
/// snapshots of the gRPC client, with per-context histograms exposing the
/// leaks at transport.newBufWriter and bufio.NewReaderSize while
/// codec.passthrough shows reclamation. Times aggregation + detection.
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "analysis/Aggregate.h"
#include "analysis/LeakDetector.h"
#include "render/Histogram.h"
#include "support/Strings.h"
#include "workload/GrpcLeakWorkload.h"

#include <benchmark/benchmark.h>

using namespace ev;

namespace {

const workload::GrpcLeakWorkload &theWorkload() {
  static workload::GrpcLeakWorkload W = workload::generateGrpcLeakWorkload();
  return W;
}

void aggregateSnapshots(benchmark::State &State) {
  const workload::GrpcLeakWorkload &W = theWorkload();
  std::vector<const Profile *> Inputs;
  for (const Profile &P : W.Snapshots)
    Inputs.push_back(&P);
  for (auto _ : State) {
    AggregatedProfile Agg = aggregate(Inputs);
    benchmark::DoNotOptimize(Agg.merged().nodeCount());
  }
  State.counters["snapshots"] = static_cast<double>(W.Snapshots.size());
}
BENCHMARK(aggregateSnapshots)->Unit(benchmark::kMillisecond);

void detectLeaks(benchmark::State &State) {
  const workload::GrpcLeakWorkload &W = theWorkload();
  std::vector<const Profile *> Inputs;
  for (const Profile &P : W.Snapshots)
    Inputs.push_back(&P);
  AggregatedProfile Agg = aggregate(Inputs);
  for (auto _ : State) {
    std::vector<LeakSuspect> Suspects = findLeakSuspects(Agg, 0);
    benchmark::DoNotOptimize(Suspects.data());
  }
}
BENCHMARK(detectLeaks)->Unit(benchmark::kMillisecond);

void printFigure() {
  const workload::GrpcLeakWorkload &W = theWorkload();
  std::vector<const Profile *> Inputs;
  for (const Profile &P : W.Snapshots)
    Inputs.push_back(&P);
  AggregatedProfile Agg = aggregate(Inputs);
  std::vector<LeakSuspect> Suspects = findLeakSuspects(Agg, 0);

  bench::row("Fig4: aggregate memory view over %zu snapshots",
             W.Snapshots.size());
  size_t TruePositives = 0;
  for (const LeakSuspect &S : Suspects) {
    std::string Name(Agg.merged().nameOf(S.Node));
    bool IsTrueLeak = false;
    for (const std::string &Leak : W.LeakingFunctions)
      if (Name == Leak)
        IsTrueLeak = true;
    TruePositives += IsTrueLeak;
    bench::row("suspect %-28s score=%.2f final/peak=%.2f peak=%s %s",
               Name.c_str(), S.Score, S.FinalOverPeak,
               formatBytes(S.PeakBytes).c_str(),
               IsTrueLeak ? "(true leak)" : "");
  }
  bench::row("detected %zu/%zu true leaks; passthrough flagged: %s",
             TruePositives, W.LeakingFunctions.size(), [&] {
               for (const LeakSuspect &S : Suspects)
                 if (Agg.merged().nameOf(S.Node) == "codec.passthrough")
                   return "YES (wrong)";
               return "no (correct)";
             }());
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printFigure();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
