//===- support/Rng.h - Deterministic pseudo-random numbers ----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based PRNG used by the synthetic workload generators and the
/// user-study simulator. Deterministic across platforms so that every
/// experiment is exactly reproducible from its seed.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_RNG_H
#define EASYVIEW_SUPPORT_RNG_H

#include <cassert>
#include <cmath>
#include <cstdint>

namespace ev {

/// SplitMix64 generator (Steele, Lea, Flood 2014). Small state, excellent
/// statistical quality for simulation purposes, fully deterministic.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// \returns the next 64 uniformly distributed bits.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "bound must be positive");
    // Modulo bias is negligible for the bounds used in this project.
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi].
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi) { return Lo + uniform() * (Hi - Lo); }

  /// Standard normal via Box-Muller.
  double normal() {
    double U1 = uniform();
    double U2 = uniform();
    if (U1 < 1e-300)
      U1 = 1e-300;
    return std::sqrt(-2.0 * std::log(U1)) * std::cos(6.283185307179586 * U2);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double Mean, double Sigma) { return Mean + Sigma * normal(); }

  /// Exponential with the given mean.
  double exponential(double Mean) {
    double U = uniform();
    if (U < 1e-300)
      U = 1e-300;
    return -Mean * std::log(U);
  }

  /// \returns true with probability \p P.
  bool chance(double P) { return uniform() < P; }

private:
  uint64_t State;
};

} // namespace ev

#endif // EASYVIEW_SUPPORT_RNG_H
