//===- analysis/Regression.h - Differential regression analysis -----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The EVL3xx rule family: differential analysis over two aggregated
/// profile cohorts ("did release B get slower than release A, and
/// where?"). Where the profile linter (EVL1xx/2xx) judges one profile in
/// isolation, the RegressionAnalyzer walks the base and test cohort
/// accumulators (analysis/FleetAggregate.h) in lockstep — contexts paired
/// by textual frame identity — and turns drift into the same Diagnostic
/// currency the IDE problem pane and `evtool -Werror` already speak:
///
///   EVL300 exclusive-time-regression    mean exclusive value grew
///   EVL301 exclusive-time-improvement   mean exclusive value shrank
///   EVL302 new-hot-path                 context absent in base, hot in test
///   EVL303 disappeared-frame            context hot in base, absent in test
///   EVL304 inclusive-share-shift        subtree's share of total grew
///   EVL305 fan-out-explosion            call-site fan-out multiplied
///   EVL306 allocation-drift             bytes-unit metric drifted
///   EVL307 cohort-schema-mismatch       metric schemas disagree
///   EVL308 total-regression             whole-cohort total grew
///
/// A regression must clear three gates to fire: an absolute floor, a
/// relative floor, and a statistical one (the delta must exceed
/// SigmaGate standard errors under Welch's approximation) — so run-to-run
/// noise in either cohort does not produce findings. Every finding
/// carries the CCT path, both cohort means, and the delta; findings are
/// sorted by (rule, path, metric) before emission so output is
/// byte-identical across thread counts and runs.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_REGRESSION_H
#define EASYVIEW_ANALYSIS_REGRESSION_H

#include "analysis/Diagnostic.h"
#include "analysis/FleetAggregate.h"
#include "support/Limits.h"

#include <string>
#include <string_view>
#include <vector>

namespace ev {

/// Registry entry describing one regression rule.
struct RegressionRuleInfo {
  std::string_view Id;   ///< Stable id, e.g. "EVL300".
  std::string_view Name; ///< Stable kebab-case name.
  Severity DefaultSev;
  std::string_view Description;
};

/// The full EVL3xx registry, in id order.
const std::vector<RegressionRuleInfo> &regressionRules();

/// Looks a rule up by id ("EVL300") or name ("exclusive-time-regression").
/// \returns nullptr when unknown.
const RegressionRuleInfo *findRegressionRule(std::string_view IdOrName);

/// Configuration for a regression run. The numeric thresholds are the
/// "configurable threshold" of the rule family: a delta only fires when it
/// clears the absolute floor AND the relative floor AND the sigma gate.
struct RegressionOptions {
  AnalysisLimits Limits = AnalysisLimits::defaults();
  /// Findings below this severity are suppressed.
  Severity MinSeverity = Severity::Note;
  /// Rules to skip, by id or name.
  std::vector<std::string> Disabled;

  /// EVL300/301: minimum |delta| / max(|baseMean|, eps).
  double RelativeMin = 0.10;
  /// EVL300/301: minimum |delta| in metric units.
  double AbsoluteMin = 0.0;
  /// EVL300/301/306: |delta| must exceed this many standard errors
  /// (Welch: sqrt(varBase/nBase + varTest/nTest)). 0 disables the gate.
  double SigmaGate = 3.0;
  /// EVL302: minimum inclusive share of the test total for a new context.
  double NewPathShareMin = 0.01;
  /// EVL303: minimum inclusive share of the base total for a lost context.
  double DisappearedShareMin = 0.01;
  /// EVL304: minimum growth of inclusive share (absolute, e.g. 0.05 = 5
  /// points of share).
  double ShareShiftMin = 0.05;
  /// EVL305: test fan-out must be at least this multiple of base fan-out...
  double FanOutFactor = 4.0;
  /// ...and at least this many children in absolute terms.
  size_t FanOutMinChildren = 16;
  /// EVL306 (bytes-unit metrics): relative and absolute floors.
  double AllocRelativeMin = 0.25;
  double AllocAbsoluteMin = 0.0;
  /// Call paths in messages are truncated to this many leaf-most frames.
  size_t MaxPathSegments = 12;
};

/// The analyzer. Stateless across runs.
class RegressionAnalyzer {
public:
  explicit RegressionAnalyzer(RegressionOptions Opts = {})
      : Opts(std::move(Opts)) {}

  /// Walks \p Base and \p Test in lockstep and appends EVL3xx findings to
  /// \p Out, sorted by (rule, path, metric). Diagnostic::Node refers to
  /// the TEST cohort's shape() for every rule except EVL303, where the
  /// context no longer exists in test and the id refers to base.
  void analyze(const CohortAccumulator &Base, const CohortAccumulator &Test,
               DiagnosticSet &Out, const CancelToken &Cancel = {}) const;

  const RegressionOptions &options() const { return Opts; }

private:
  RegressionOptions Opts;
};

} // namespace ev

#endif // EASYVIEW_ANALYSIS_REGRESSION_H
