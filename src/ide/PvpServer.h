//===- ide/PvpServer.h - Profile Viewer Protocol server -------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Profile Viewer Protocol (PVP): an LSP-inspired protocol that carries
/// EasyView's IDE actions (paper §VI-B). The server owns loaded profiles
/// and serves the editor:
///
/// Mandatory action:
///   pvp/codeLink      {profile, node} -> {file, line, available}
/// Optional actions:
///   pvp/hover         {profile, node} -> {contents}  (all metric values)
///   pvp/codeLens      {profile, file} -> {lenses: [{line, text}]}
///   pvp/summary       {profile} -> {text}            (floating window)
/// Data plane:
///   pvp/open          {name, data | dataBase64} -> {profile, nodes, metrics}
///   pvp/close         {profile}
///   pvp/flame         {profile, metric?, shape?, maxRects?} -> {rects,...}
///   pvp/treeTable     {profile, expand?: [node...]} -> {rows}
///   pvp/search        {profile, pattern} -> {matches: [node...]}
///   pvp/histogram     {aggregate, node, metric?} -> {series}
///   pvp/aggregate     {profiles: [id...]} -> {profile}  (unified tree)
///   pvp/diff          {base, test, metric?} -> {profile, tags, text}
///   pvp/query         {profile, program} -> {profile, printed, derived}
///   pvp/transform     {profile, shape} -> {profile}   (materialized)
///   pvp/prune         {profile, metric?, minFraction} -> {profile}
///   pvp/export        {profile, format, metric?} -> {dataBase64, bytes}
///   pvp/butterfly     {profile, function, metric?} -> {callers, callees}
///   pvp/correlated    {profile, kind, select?: [node...]} -> {panes}
/// Introspection:
///   pvp/stats         {} -> {profiles, cachedViews, cacheCapacity,
///                            cacheHits, cacheMisses, cacheEvictions}
/// Static analysis (batched; see docs/ANALYSIS.md):
///   pvp/diagnostics   {profile?, program?, minSeverity?, disable?,
///                      maxDiagnostics?} -> {diagnostics, errors, warnings,
///                      dropped, truncated}
///
/// Errors use standard JSON-RPC codes. The server is transport-agnostic:
/// handleMessage() maps one decoded request to one response, and
/// handleWire() speaks Content-Length framing for stdio-style streams.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_IDE_PVPSERVER_H
#define EASYVIEW_IDE_PVPSERVER_H

#include "analysis/Aggregate.h"
#include "ide/JsonRpc.h"
#include "profile/Profile.h"
#include "support/FileIo.h"
#include "support/Limits.h"

#include <functional>
#include <list>
#include <map>
#include <string>
#include <unordered_map>

namespace ev {

/// Guardrails for one PVP session. Every request runs under these; inputs
/// that exceed them produce JSON-RPC errors (or degraded-but-valid
/// replies), never unbounded work, so a hostile or buggy editor cannot
/// take the session down.
struct ServerLimits {
  /// Decode budgets applied to every profile the session opens.
  DecodeLimits Decode;
  /// Static-analysis budgets applied to every pvp/diagnostics request.
  AnalysisLimits Analysis;
  /// Wire framing guardrails (frame size cap, header cap).
  rpc::FrameReaderOptions Wire;
  /// Largest pvp/open payload (after base64 decoding) accepted.
  size_t MaxOpenBytes = 64u << 20;
  /// Hard ceiling on pvp/flame rect replies; larger maxRects requests are
  /// clamped, not refused.
  size_t MaxFlameRects = 65536;
  /// Hard ceiling on pvp/treeTable rows; larger tables are truncated.
  size_t MaxTreeTableRows = 50000;
  /// Soft per-request deadline. 0 disables deadline checking.
  uint64_t RequestDeadlineMs = 10000;
  /// Retry policy for path-based pvp/open file loads.
  RetryPolicy OpenRetry;
  /// Capacity of the memoized view cache serving pvp/flame, pvp/treeTable,
  /// and pvp/summary. 0 disables caching entirely.
  size_t MaxCachedViews = 128;
};

class PvpServer {
public:
  PvpServer() : PvpServer(ServerLimits()) {}
  explicit PvpServer(ServerLimits Limits);

  /// Handles one decoded JSON-RPC request; \returns the response payload.
  json::Value handleMessage(const json::Value &Request);

  /// Feeds framed bytes; \returns the framed responses produced (possibly
  /// several, possibly none while a message is incomplete). Corrupt frames
  /// yield error responses and the reader resynchronizes: the wire session
  /// survives any byte stream.
  std::string handleWire(std::string_view Bytes);

  /// Replaces the millisecond clock behind request deadlines (tests inject
  /// a deterministic clock); nullptr restores the steady clock.
  void setClock(std::function<uint64_t()> NowMs);

  const ServerLimits &limits() const { return Limits; }
  /// Wire-reader telemetry (resync and dropped-byte counters).
  const rpc::FrameReader &wireReader() const { return Reader; }

  /// Direct (non-RPC) access used by in-process embedding and tests.
  /// Registers \p P; \returns its id.
  int64_t addProfile(Profile P);
  const Profile *profile(int64_t Id) const;
  size_t profileCount() const { return Profiles.size(); }

private:
  json::Value dispatch(std::string_view Method, const json::Object &Params,
                       int64_t Id);

  // Method implementations; each returns a result payload or an error
  // string which dispatch() converts into a JSON-RPC error.
  Result<json::Value> doOpen(const json::Object &Params);
  Result<json::Value> doClose(const json::Object &Params);
  Result<json::Value> doFlame(const json::Object &Params);
  Result<json::Value> doTreeTable(const json::Object &Params);
  Result<json::Value> doCodeLink(const json::Object &Params);
  Result<json::Value> doHover(const json::Object &Params);
  Result<json::Value> doCodeLens(const json::Object &Params);
  Result<json::Value> doSummary(const json::Object &Params);
  Result<json::Value> doSearch(const json::Object &Params);
  Result<json::Value> doAggregate(const json::Object &Params);
  Result<json::Value> doHistogram(const json::Object &Params);
  Result<json::Value> doDiff(const json::Object &Params);
  Result<json::Value> doQuery(const json::Object &Params);
  Result<json::Value> doTransform(const json::Object &Params);
  Result<json::Value> doPrune(const json::Object &Params);
  Result<json::Value> doExport(const json::Object &Params);
  Result<json::Value> doButterfly(const json::Object &Params);
  Result<json::Value> doCorrelated(const json::Object &Params);
  Result<json::Value> doDiagnostics(const json::Object &Params);
  Result<json::Value> doStats(const json::Object &Params);

  Result<const Profile *> lookup(const json::Object &Params,
                                 std::string_view Key = "profile") const;

  /// \returns true once the in-flight request ran past its soft deadline.
  bool deadlineExpired() const;

  //===--------------------------------------------------------------------===
  // Memoized view cache
  //===--------------------------------------------------------------------===
  //
  // Read-only view replies (pvp/flame, pvp/treeTable, pvp/summary) are
  // memoized in an LRU keyed on (method, profile id, profile generation,
  // request params). Methods that retire or derive state (pvp/close,
  // pvp/query, pvp/transform, pvp/prune) bump the source profile's
  // generation, which orphans every cached view of it; orphans age out of
  // the LRU naturally.

  struct CachedView {
    std::string Key;
    json::Value Reply; ///< The result payload (cheap to copy: shared_ptr).
  };

  /// \returns the invalidation generation of profile \p Id (0 until bumped).
  uint64_t generationOf(int64_t Id) const;
  /// Invalidates every cached view of profile \p Id.
  void bumpGeneration(int64_t Id);
  /// \returns the cached reply for \p Key, refreshing its LRU position;
  /// nullptr on miss.
  const json::Value *cacheLookup(const std::string &Key);
  /// Inserts \p Reply under \p Key, evicting the least recently used views
  /// beyond ServerLimits::MaxCachedViews.
  void cacheInsert(std::string Key, const json::Value &Reply);

  ServerLimits Limits;
  std::map<int64_t, Profile> Profiles;
  std::map<int64_t, AggregatedProfile> Aggregates;
  int64_t NextId = 1;
  rpc::FrameReader Reader;
  std::function<uint64_t()> NowMs;
  uint64_t RequestDeadline = 0; ///< Absolute ms; 0 while idle/disabled.

  std::list<CachedView> ViewCache; ///< Front = most recently used.
  std::unordered_map<std::string, std::list<CachedView>::iterator> ViewIndex;
  std::map<int64_t, uint64_t> Generations;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
};

} // namespace ev

#endif // EASYVIEW_IDE_PVPSERVER_H
