//===- support/Trace.cpp - RAII spans with bounded per-thread retention ---===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "profile/ProfileBuilder.h"
#include "support/Clock.h"
#include "support/Json.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace ev {
namespace trace {

namespace {

std::atomic<bool> GEnabled{true};
std::atomic<size_t> GRingCapacity{4096};

constexpr size_t MaxInternedLabels = 512;
constexpr const char *OverflowLabel = "<interned-label-overflow>";

/// One thread's retained-span storage. Lanes are created on a thread's
/// first closed span and never destroyed (threads come and go; lane ids
/// stay dense and records stay readable), so collectSpans() can walk them
/// after the owning thread exited.
struct ThreadLane {
  std::mutex Mutex;
  std::vector<SpanRecord> Ring; ///< Fixed capacity, set at creation.
  uint64_t Total = 0;           ///< Records ever written since clear().
  uint64_t Dropped = 0;         ///< Records overwritten by wrap-around.
  uint32_t Lane = 0;
};

struct LaneTable {
  std::mutex Mutex;
  std::vector<ThreadLane *> Lanes; ///< Creation order == lane id order.
};

LaneTable &laneTable() {
  static LaneTable *T = new LaneTable(); // Leaked: outlives every thread.
  return *T;
}

thread_local ThreadLane *TLane = nullptr;
thread_local Span *TCurrent = nullptr;

ThreadLane &myLane() {
  if (TLane)
    return *TLane;
  auto *Lane = new ThreadLane(); // Owned by the (leaked) lane table.
  Lane->Ring.resize(std::max<size_t>(
      GRingCapacity.load(std::memory_order_relaxed), 16));
  LaneTable &T = laneTable();
  std::lock_guard<std::mutex> Lock(T.Mutex);
  Lane->Lane = static_cast<uint32_t>(T.Lanes.size());
  T.Lanes.push_back(Lane);
  TLane = Lane;
  return *Lane;
}

} // namespace

void setEnabled(bool On) { GEnabled.store(On, std::memory_order_relaxed); }

bool enabled() { return GEnabled.load(std::memory_order_relaxed); }

const char *internLabel(std::string_view Label) {
  struct Interner {
    std::mutex Mutex;
    // deque gives pointer stability; the map keys view into it.
    std::deque<std::string> Storage;
    std::unordered_map<std::string_view, const char *> Index;
  };
  static Interner *I = new Interner(); // Leaked: labels live forever.

  std::lock_guard<std::mutex> Lock(I->Mutex);
  auto It = I->Index.find(Label);
  if (It != I->Index.end())
    return It->second;
  if (I->Storage.size() >= MaxInternedLabels)
    return OverflowLabel;
  I->Storage.emplace_back(Label);
  const std::string &Stored = I->Storage.back();
  I->Index.emplace(std::string_view(Stored), Stored.c_str());
  return Stored.c_str();
}

void configureRing(size_t Capacity) {
  GRingCapacity.store(std::max<size_t>(Capacity, 16),
                      std::memory_order_relaxed);
}

Span::Span(const char *Name, const char *Category)
    : Name(Name), Category(Category), StartUs(0) {
  if (!enabled())
    return;
  Live = true;
  Parent = TCurrent;
  TCurrent = this;
  StartUs = monoMicros();
}

Span::~Span() {
  if (!Live)
    return;
  uint64_t End = monoMicros();
  uint64_t Dur = End > StartUs ? End - StartUs : 0;
  TCurrent = Parent;
  if (Parent)
    Parent->ChildUs += Dur;

  SpanRecord R;
  R.Name = Name;
  R.Category = Category;
  R.StartUs = StartUs;
  R.DurUs = Dur;
  R.SelfUs = Dur > ChildUs ? Dur - ChildUs : 0;

  size_t Depth = 0;
  for (Span *A = Parent; A; A = A->Parent)
    ++Depth;
  R.Depth = static_cast<uint16_t>(std::min<size_t>(Depth, UINT16_MAX));
  // Path holds the root-most min(Depth, MaxSpanDepth) ancestors; walking
  // leaf-to-root, the ancestor j levels up sits at root-index Depth-1-j.
  size_t J = 0;
  for (Span *A = Parent; A; A = A->Parent, ++J) {
    size_t RootIndex = Depth - 1 - J;
    if (RootIndex < MaxSpanDepth)
      R.Path[RootIndex] = A->Name;
  }

  ThreadLane &L = myLane();
  R.Lane = L.Lane;
  std::lock_guard<std::mutex> Lock(L.Mutex);
  if (L.Total >= L.Ring.size())
    ++L.Dropped;
  L.Ring[L.Total % L.Ring.size()] = R;
  ++L.Total;
}

std::vector<SpanRecord> collectSpans() {
  std::vector<ThreadLane *> Lanes;
  {
    LaneTable &T = laneTable();
    std::lock_guard<std::mutex> Lock(T.Mutex);
    Lanes = T.Lanes;
  }
  std::vector<SpanRecord> Out;
  for (ThreadLane *L : Lanes) {
    std::lock_guard<std::mutex> Lock(L->Mutex);
    size_t Cap = L->Ring.size();
    uint64_t Count = std::min<uint64_t>(L->Total, Cap);
    // Oldest surviving record first.
    uint64_t First = L->Total > Cap ? L->Total - Cap : 0;
    for (uint64_t I = 0; I < Count; ++I)
      Out.push_back(L->Ring[(First + I) % Cap]);
  }
  return Out;
}

void clear() {
  std::vector<ThreadLane *> Lanes;
  {
    LaneTable &T = laneTable();
    std::lock_guard<std::mutex> Lock(T.Mutex);
    Lanes = T.Lanes;
  }
  for (ThreadLane *L : Lanes) {
    std::lock_guard<std::mutex> Lock(L->Mutex);
    L->Total = 0;
    L->Dropped = 0;
  }
}

uint64_t droppedSpans() {
  std::vector<ThreadLane *> Lanes;
  {
    LaneTable &T = laneTable();
    std::lock_guard<std::mutex> Lock(T.Mutex);
    Lanes = T.Lanes;
  }
  uint64_t Sum = 0;
  for (ThreadLane *L : Lanes) {
    std::lock_guard<std::mutex> Lock(L->Mutex);
    Sum += L->Dropped;
  }
  return Sum;
}

size_t retainedSpans() {
  std::vector<ThreadLane *> Lanes;
  {
    LaneTable &T = laneTable();
    std::lock_guard<std::mutex> Lock(T.Mutex);
    Lanes = T.Lanes;
  }
  size_t Sum = 0;
  for (ThreadLane *L : Lanes) {
    std::lock_guard<std::mutex> Lock(L->Mutex);
    Sum += static_cast<size_t>(
        std::min<uint64_t>(L->Total, L->Ring.size()));
  }
  return Sum;
}

size_t laneCount() {
  LaneTable &T = laneTable();
  std::lock_guard<std::mutex> Lock(T.Mutex);
  return T.Lanes.size();
}

std::string toChromeTraceJson() {
  std::vector<SpanRecord> Records = collectSpans();
  json::Array Events;
  for (const SpanRecord &R : Records) {
    json::Object E;
    E.set("ph", "X");
    E.set("name", R.Name);
    E.set("cat", R.Category);
    E.set("ts", R.StartUs);
    E.set("dur", R.DurUs);
    E.set("pid", 1);
    E.set("tid", R.Lane);
    Events.push_back(json::Value(std::move(E)));
  }
  json::Object Doc;
  Doc.set("traceEvents", json::Value(std::move(Events)));
  return json::Value(std::move(Doc)).dump();
}

Profile toProfile(std::string Name) {
  std::vector<SpanRecord> Records = collectSpans();
  ProfileBuilder B(std::move(Name));
  MetricId Wall = B.addMetric("wall-time", "nanoseconds");
  MetricId Count = B.addMetric("count", "count");
  for (const SpanRecord &R : Records) {
    std::vector<FrameId> Path;
    size_t Kept = std::min<size_t>(R.Depth, MaxSpanDepth);
    Path.reserve(Kept + 1);
    for (size_t I = 0; I < Kept; ++I)
      Path.push_back(B.functionFrame(R.Path[I]));
    Path.push_back(B.functionFrame(R.Name));
    NodeId Leaf = B.pushPath(Path);
    // addValue accumulates into an existing (node, metric) slot, so
    // repeated call paths merge instead of emitting duplicate values.
    B.addValue(Leaf, Wall, static_cast<double>(R.SelfUs) * 1000.0);
    B.addValue(Leaf, Count, 1.0);
  }
  return B.take();
}

} // namespace trace
} // namespace ev
