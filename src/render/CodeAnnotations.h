//===- render/CodeAnnotations.h - Source-line profile annotations ---------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data behind the paper's in-editor annotations (§VI-B): code lenses
/// (metric lines above statements), hovers (all metric values of a line),
/// and background highlights (which lines carry profile data, and how hot
/// they are). The PVP server and the CLI both build their replies from
/// these functions, so editor and terminal agree byte-for-byte.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_RENDER_CODEANNOTATIONS_H
#define EASYVIEW_RENDER_CODEANNOTATIONS_H

#include "profile/Profile.h"

#include <string>
#include <string_view>
#include <vector>

namespace ev {

/// One annotated source line of a file.
struct LineAnnotation {
  uint32_t Line = 0;
  /// Summed EXCLUSIVE values per metric, indexed by MetricId.
  std::vector<double> Totals;
  /// Ready-to-display lens text ("cpu: 1.2 s | alloc: 4 MB").
  std::string LensText;
  /// Hotness in [0, 1] relative to the file's hottest line (first
  /// metric), for background-highlight darkness.
  double Hotness = 0.0;
  /// Contexts attributed to this line (for navigation).
  std::vector<NodeId> Contexts;
};

/// Collects the annotations of \p File (exact path match), ordered by
/// line. Lines whose every metric is zero are omitted.
std::vector<LineAnnotation> annotateFile(const Profile &P,
                                         std::string_view File);

/// Builds the hover text for one context: its name plus every metric's
/// inclusive and exclusive values (paper: hovers show "all metric values
/// associated with the selected line").
std::string hoverText(const Profile &P, NodeId Node);

/// Renders a whole file's annotations as text ("<line>: <lens>"), the CLI
/// equivalent of the in-editor gutter.
std::string renderAnnotationsText(const Profile &P, std::string_view File);

} // namespace ev

#endif // EASYVIEW_RENDER_CODEANNOTATIONS_H
