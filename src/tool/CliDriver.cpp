//===- tool/CliDriver.cpp - The evtool command-line driver ----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tool/CliDriver.h"

#include "analysis/Aggregate.h"
#include "analysis/Butterfly.h"
#include "analysis/Diff.h"
#include "analysis/MetricEngine.h"
#include "analysis/ProfileLint.h"
#include "analysis/Regression.h"
#include "analysis/RuleRegistry.h"
#include "analysis/Sema.h"
#include "analysis/Transform.h"
#include "convert/Converters.h"
#include "convert/Exporters.h"
#include "ide/SessionManager.h"
#include "net/NetServer.h"
#include "profile/ProfileStore.h"
#include "proto/EvProf.h"
#include "query/Interpreter.h"
#include "query/Vm.h"
#include "render/AnsiRenderer.h"
#include "render/CodeAnnotations.h"
#include "render/DiffRenderer.h"
#include "render/FlameLayout.h"
#include "render/HtmlRenderer.h"
#include "render/SvgRenderer.h"
#include "render/TreeTable.h"
#include "support/FileIo.h"
#include "support/Strings.h"
#include "support/Trace.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <map>
#include <thread>

namespace ev {
namespace tool {

std::string usageText() {
  return "usage: evtool <command> [options]\n"
         "\n"
         "commands:\n"
         "  info <profile>                     format, counts, metrics\n"
         "  summary <profile>                  floating-window summary\n"
         "  flame <profile> [--shape S] [--metric M] [--svg F] "
         "[--columns N]\n"
         "  table <profile> [--rows N]         tree table, hot path open\n"
         "  convert <in> <out> [--to FMT]      evprof|pprof|collapsed|\n"
         "                                     speedscope|chrome\n"
         "  diff <base> <test> [--metric M]    differential view\n"
         "  aggregate <out.evprof> <in...>     merge profiles\n"
         "  query <profile> -e <prog>|--file F run an EVQL program\n"
         "        [--interpreter]                force the tree-walking "
         "interpreter (default: bytecode VM)\n"
         "  check <query.evql> [--profile P] [--min-severity S]\n"
         "        [--disable R,R...] [--werror] [--list-rules]\n"
         "                                     EVQL static analysis (no "
         "execution)\n"
         "  lint <profile.evprof> [--min-severity S] [--disable R,R...]\n"
         "       [--werror] [--list-rules]     profile data-quality lints\n"
         "  regress <base> <test> [--format text|json]\n"
         "        [--min-severity S] [--disable R,R...] [--werror]\n"
         "        [--rel-min F] [--abs-min F] [--sigma F] [--node-budget N]\n"
         "        [--list-rules]               diff two profile cohorts\n"
         "                                     (files or directories) and\n"
         "                                     report EVL3xx regressions\n"
         "  butterfly <profile> <function> [--metric M]\n"
         "  annotate <profile> <source-file>   per-line code lenses\n"
         "  report <profile> <out.html>        self-contained HTML report\n"
         "  store --stats <profile|dir...> [--budget BYTES --spill-dir D]\n"
         "                                     load into a (optionally\n"
         "                                     budgeted) profile store and\n"
         "                                     report resident/spilled/\n"
         "                                     deduplicated memory\n"
         "  serve --input <requests.jsonl> [--sessions N]\n"
         "        [--trace-out F]              run PVP requests through the\n"
         "                                     concurrent session service;\n"
         "                                     --trace-out dumps the server's\n"
         "                                     own spans as Chrome trace JSON\n"
         "  serve (--listen HOST:PORT | --unix PATH) [--sessions N]\n"
         "        [--max-conns N] [--idle-ms N] [--frame-ms N] "
         "[--drain-ms N]\n"
         "        [--drain-after-ms N]         serve PVP over a real socket;\n"
         "                                     SIGINT/SIGTERM drain "
         "gracefully\n"
         "        [--follow FILE]              tail a growing .evprof: open\n"
         "                                     it as a live profile in every\n"
         "                                     session and push view deltas\n"
         "                                     to subscribers as it grows\n"
         "  help                               this text\n";
}

namespace {

/// Simple option scanner: positional arguments plus --key value pairs.
struct ParsedArgs {
  std::vector<std::string> Positional;
  std::map<std::string, std::string> Options;
};

/// Option names that are value-less flags for some command. Flags parse as
/// "--flag" (or the compiler-style alias "-Werror") and show up in Options
/// with the value "1".
const std::initializer_list<std::string_view> BoolFlags = {"werror",
                                                           "list-rules",
                                                           "stats",
                                                           "interpreter"};

Result<ParsedArgs> parseArgs(const std::vector<std::string> &Args,
                             size_t From) {
  ParsedArgs Out;
  auto IsFlag = [](std::string_view Name) {
    for (std::string_view F : BoolFlags)
      if (F == Name)
        return true;
    return false;
  };
  for (size_t I = From; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    if (A == "-Werror") {
      Out.Options["werror"] = "1";
      continue;
    }
    if (startsWith(A, "--")) {
      std::string Name = A.substr(2);
      if (IsFlag(Name)) {
        Out.Options[Name] = "1";
        continue;
      }
      if (I + 1 >= Args.size())
        return makeError("option '" + A + "' needs a value");
      Out.Options[Name] = Args[++I];
      continue;
    }
    Out.Positional.push_back(A);
  }
  return Out;
}

Result<Profile> loadProfile(const std::string &Path) {
  // Transient I/O failures retry with bounded backoff, matching the PVP
  // server's path-based open.
  Result<std::string> Bytes = readFileWithRetry(Path);
  if (!Bytes)
    return makeError(Bytes.error());
  return convert::load(*Bytes, Path);
}

Result<MetricId> resolveMetric(const Profile &P, const ParsedArgs &Args) {
  auto It = Args.Options.find("metric");
  if (It == Args.Options.end()) {
    if (P.metrics().empty())
      return makeError("profile has no metrics");
    return MetricId(0);
  }
  MetricId Id = P.findMetric(It->second);
  if (Id == Profile::InvalidMetric) {
    uint64_t Index;
    if (parseUnsigned(It->second, Index) && Index < P.metrics().size())
      return static_cast<MetricId>(Index);
    return makeError("unknown metric '" + It->second + "'");
  }
  return Id;
}

int failUsage(std::string &Err, const std::string &Message) {
  Err += "evtool: error: " + Message + "\n";
  return ExitUsageError;
}

/// Parses an optional unsigned numeric option into \p Value.
/// \returns false (after reporting) on a malformed value.
bool parseCountOption(const ParsedArgs &Args, const char *Name,
                      uint64_t &Value, std::string &Err, int &Code) {
  auto It = Args.Options.find(Name);
  if (It == Args.Options.end())
    return true;
  if (!parseUnsigned(It->second, Value)) {
    Code = failUsage(Err, std::string("--") + Name +
                              " expects an unsigned number, got '" +
                              It->second + "'");
    return false;
  }
  return true;
}

int failData(std::string &Err, const std::string &Message) {
  Err += "evtool: error: " + Message + "\n";
  return ExitDataError;
}

int cmdInfo(const ParsedArgs &Args, std::string &Out, std::string &Err) {
  if (Args.Positional.size() != 1)
    return failUsage(Err, "info expects exactly one profile");
  Result<std::string> Bytes = readFile(Args.Positional[0]);
  if (!Bytes)
    return failData(Err, Bytes.error());
  convert::Format F = convert::detectFormat(*Bytes, Args.Positional[0]);
  Result<Profile> P = convert::load(*Bytes, Args.Positional[0]);
  if (!P)
    return failData(Err, P.error());
  Out += "file:     " + Args.Positional[0] + "\n";
  Out += "format:   " + std::string(convert::formatName(F)) + "\n";
  Out += "size:     " + formatBytes(static_cast<double>(Bytes->size())) +
         "\n";
  Out += "contexts: " + std::to_string(P->nodeCount()) + "\n";
  Out += "frames:   " + std::to_string(P->frames().size()) + "\n";
  Out += "groups:   " + std::to_string(P->groups().size()) + "\n";
  for (MetricId M = 0; M < P->metrics().size(); ++M) {
    const MetricDescriptor &D = P->metrics()[M];
    Out += "metric:   " + D.Name + " (" + D.Unit + "), total " +
           formatMetric(metricTotal(*P, M), D.Unit) + "\n";
  }
  return 0;
}

int cmdSummary(const ParsedArgs &Args, std::string &Out, std::string &Err) {
  if (Args.Positional.size() != 1)
    return failUsage(Err, "summary expects exactly one profile");
  Result<Profile> P = loadProfile(Args.Positional[0]);
  if (!P)
    return failData(Err, P.error());
  Out += renderSummaryText(*P);
  return 0;
}

int cmdFlame(const ParsedArgs &Args, std::string &Out, std::string &Err) {
  if (Args.Positional.size() != 1)
    return failUsage(Err, "flame expects exactly one profile");
  Result<Profile> Loaded = loadProfile(Args.Positional[0]);
  if (!Loaded)
    return failData(Err, Loaded.error());

  std::string Shape = "top-down";
  if (auto It = Args.Options.find("shape"); It != Args.Options.end())
    Shape = It->second;
  Profile Shaped;
  const Profile *View = &*Loaded;
  if (Shape == "bottom-up") {
    Shaped = bottomUpTree(*Loaded);
    View = &Shaped;
  } else if (Shape == "flat") {
    Shaped = flatTree(*Loaded);
    View = &Shaped;
  } else if (Shape != "top-down") {
    return failUsage(Err, "unknown shape '" + Shape + "'");
  }
  Result<MetricId> Metric = resolveMetric(*View, Args);
  if (!Metric)
    return failData(Err, Metric.error());

  FlameGraph Graph(*View, *Metric);
  if (auto It = Args.Options.find("svg"); It != Args.Options.end()) {
    SvgOptions Svg;
    Svg.Title = View->name() + " (" + Shape + ")";
    Result<bool> W = writeFile(It->second, renderSvg(Graph, Svg));
    if (!W)
      return failData(Err, W.error());
    Out += "wrote " + It->second + "\n";
    return 0;
  }
  AnsiOptions Ansi;
  Ansi.Color = false;
  if (auto It = Args.Options.find("columns"); It != Args.Options.end()) {
    uint64_t Columns;
    if (!parseUnsigned(It->second, Columns))
      return failUsage(Err, "--columns expects a number");
    Ansi.Columns = static_cast<unsigned>(Columns);
  }
  Out += renderAnsi(Graph, Ansi);
  return 0;
}

int cmdTable(const ParsedArgs &Args, std::string &Out, std::string &Err) {
  if (Args.Positional.size() != 1)
    return failUsage(Err, "table expects exactly one profile");
  Result<Profile> P = loadProfile(Args.Positional[0]);
  if (!P)
    return failData(Err, P.error());
  TreeTableOptions Opt;
  if (auto It = Args.Options.find("rows"); It != Args.Options.end()) {
    uint64_t Rows;
    if (!parseUnsigned(It->second, Rows))
      return failUsage(Err, "--rows expects a number");
    Opt.MaxRows = Rows;
  }
  TreeTable Table(*P, Opt);
  if (!P->metrics().empty())
    Table.expandHotPath(0);
  Out += Table.renderText();
  return 0;
}

int cmdConvert(const ParsedArgs &Args, std::string &Out, std::string &Err) {
  if (Args.Positional.size() != 2)
    return failUsage(Err, "convert expects <in> <out>");
  Result<Profile> P = loadProfile(Args.Positional[0]);
  if (!P)
    return failData(Err, P.error());

  std::string To = "evprof";
  if (auto It = Args.Options.find("to"); It != Args.Options.end())
    To = It->second;
  std::string Bytes;
  if (To == "evprof") {
    Bytes = writeEvProf(*P);
  } else if (To == "pprof") {
    Bytes = convert::toPprof(*P);
  } else if (To == "collapsed") {
    Bytes = convert::toCollapsed(*P, 0);
  } else if (To == "speedscope") {
    Bytes = convert::toSpeedscope(*P, 0);
  } else if (To == "chrome") {
    Bytes = convert::toChromeTrace(*P, 0);
  } else {
    return failUsage(Err, "unknown target format '" + To + "'");
  }
  Result<bool> W = writeFile(Args.Positional[1], Bytes);
  if (!W)
    return failData(Err, W.error());
  Out += "wrote " + Args.Positional[1] + " (" +
         formatBytes(static_cast<double>(Bytes.size())) + ", " + To +
         ")\n";
  return 0;
}

int cmdDiff(const ParsedArgs &Args, std::string &Out, std::string &Err) {
  if (Args.Positional.size() != 2)
    return failUsage(Err, "diff expects <base> <test>");
  Result<Profile> Base = loadProfile(Args.Positional[0]);
  if (!Base)
    return failData(Err, Base.error());
  Result<Profile> Test = loadProfile(Args.Positional[1]);
  if (!Test)
    return failData(Err, Test.error());
  Result<MetricId> Metric = resolveMetric(*Base, Args);
  if (!Metric)
    return failData(Err, Metric.error());
  DiffResult D = diffProfiles(*Base, *Test, *Metric);
  Out += renderDiffText(D);
  return 0;
}

int cmdAggregate(const ParsedArgs &Args, std::string &Out,
                 std::string &Err) {
  if (Args.Positional.size() < 2)
    return failUsage(Err, "aggregate expects <out.evprof> <in...>");
  std::vector<Profile> Loaded;
  for (size_t I = 1; I < Args.Positional.size(); ++I) {
    Result<Profile> P = loadProfile(Args.Positional[I]);
    if (!P)
      return failData(Err, P.error());
    Loaded.push_back(P.take());
  }
  std::vector<const Profile *> Inputs;
  for (const Profile &P : Loaded)
    Inputs.push_back(&P);
  AggregateOptions Opt;
  Opt.WithMin = Opt.WithMax = Opt.WithMean = true;
  AggregatedProfile Agg = aggregate(Inputs, Opt);
  Result<bool> W =
      writeFile(Args.Positional[0], writeEvProf(Agg.merged()));
  if (!W)
    return failData(Err, W.error());
  Out += "aggregated " + std::to_string(Inputs.size()) + " profiles into " +
         Args.Positional[0] + " (" +
         std::to_string(Agg.merged().nodeCount()) + " contexts)\n";
  return 0;
}

int cmdQuery(const ParsedArgs &Args, std::string &Out, std::string &Err) {
  if (Args.Positional.size() != 1)
    return failUsage(Err, "query expects exactly one profile");
  Result<Profile> P = loadProfile(Args.Positional[0]);
  if (!P)
    return failData(Err, P.error());

  std::string Program;
  if (auto It = Args.Options.find("e"); It != Args.Options.end()) {
    Program = It->second;
  } else if (auto FIt = Args.Options.find("file");
             FIt != Args.Options.end()) {
    Result<std::string> Src = readFile(FIt->second);
    if (!Src)
      return failData(Err, Src.error());
    Program = Src.take();
  } else {
    return failUsage(Err, "query needs --e <program> or --file <program.evql>");
  }

  // --interpreter forces the tree-walking oracle; the default compiles to
  // bytecode and runs the batched VM (identical output by contract).
  Result<evql::QueryOutput> R =
      Args.Options.count("interpreter") ? evql::runProgram(*P, Program)
                                        : evql::runProgramAuto(*P, Program);
  if (!R)
    return failData(Err, R.error());
  for (const std::string &Line : R->Printed)
    Out += Line + "\n";
  if (!R->DerivedMetrics.empty()) {
    Out += "derived metrics:";
    for (const std::string &Name : R->DerivedMetrics)
      Out += " " + Name;
    Out += "\n";
  }
  Out += "result: " + std::to_string(R->Result.nodeCount()) +
         " contexts (input " + std::to_string(P->nodeCount()) + ")\n";
  if (auto It = Args.Options.find("out"); It != Args.Options.end()) {
    Result<bool> W = writeFile(It->second, writeEvProf(R->Result));
    if (!W)
      return failData(Err, W.error());
    Out += "wrote " + It->second + "\n";
  }
  return 0;
}

/// Shared tail of 'check' and 'lint': render the findings, print a
/// summary, and map severities onto exit codes ('-Werror' escalates
/// warnings, clang style).
int reportDiagnostics(const DiagnosticSet &Diags, const std::string &Subject,
                      bool WError, std::string &Out) {
  for (const Diagnostic &D : Diags.all())
    Out += renderDiagnostic(D, Subject) + "\n";
  size_t Errors = Diags.countAtLeast(Severity::Error);
  size_t Warnings = Diags.count(Severity::Warning);
  Out += Subject + ": " + std::to_string(Errors) + " error(s), " +
         std::to_string(Warnings) + " warning(s)";
  if (Diags.truncated())
    Out += " (diagnostics truncated; " + std::to_string(Diags.dropped()) +
           " dropped)";
  Out += "\n";
  if (Errors > 0 || (WError && Warnings > 0))
    return ExitDataError;
  return ExitSuccess;
}

/// Shared `--min-severity` / `--disable` parsing for check, lint, and
/// regress. Disabled names are validated against the unified registry
/// (analysis/RuleRegistry.h), so any family's rules are accepted by any
/// subcommand and a typo is a usage error everywhere.
/// \returns false after reporting (setting \p Code) on a malformed option.
bool parseRuleFilters(const ParsedArgs &Args, Severity &MinSeverity,
                      std::vector<std::string> &Disabled, std::string &Err,
                      int &Code) {
  if (auto It = Args.Options.find("min-severity");
      It != Args.Options.end()) {
    if (!parseSeverity(It->second, MinSeverity)) {
      Code = failUsage(Err, "--min-severity expects note, info, warning, "
                            "or error");
      return false;
    }
  }
  if (auto It = Args.Options.find("disable"); It != Args.Options.end()) {
    for (std::string_view Rule : splitString(It->second, ','))
      if (!Rule.empty()) {
        if (!findRule(Rule)) {
          Code = failUsage(Err, "unknown rule '" + std::string(Rule) +
                                    "' (see --list-rules)");
          return false;
        }
        Disabled.emplace_back(Rule);
      }
  }
  return true;
}

/// Post-filter for passes that do not take the filters natively (the EVQL
/// checker): keeps findings at or above \p MinSeverity whose id and rule
/// name are not disabled.
DiagnosticSet filterDiagnostics(DiagnosticSet In, Severity MinSeverity,
                                const std::vector<std::string> &Disabled) {
  if (MinSeverity == Severity::Note && Disabled.empty())
    return In;
  DiagnosticSet Out(In.size() + In.dropped() + 1);
  for (const Diagnostic &D : In.all()) {
    if (D.Sev < MinSeverity)
      continue;
    bool Skip = false;
    for (const std::string &Name : Disabled)
      if (D.Id == Name || D.Rule == Name)
        Skip = true;
    if (!Skip)
      Out.add(D);
  }
  if (In.truncated())
    Out.markTruncated();
  return Out;
}

int cmdCheck(const ParsedArgs &Args, std::string &Out, std::string &Err) {
  if (Args.Options.count("list-rules")) {
    Out += renderRuleList();
    return ExitSuccess;
  }
  std::string Source;
  std::string Subject;
  if (auto It = Args.Options.find("e"); It != Args.Options.end()) {
    Source = It->second;
    Subject = "<command-line>";
  } else if (Args.Positional.size() == 1) {
    Result<std::string> Src = readFile(Args.Positional[0]);
    if (!Src)
      return failData(Err, Src.error());
    Source = Src.take();
    Subject = Args.Positional[0];
  } else {
    return failUsage(Err, "check expects <query.evql> or --e <program>");
  }

  Profile MetricSource;
  SemaOptions Opts;
  if (auto It = Args.Options.find("profile"); It != Args.Options.end()) {
    Result<Profile> P = loadProfile(It->second);
    if (!P)
      return failData(Err, P.error());
    MetricSource = P.take();
    Opts.MetricSource = &MetricSource;
  }

  Severity MinSeverity = Severity::Note;
  std::vector<std::string> Disabled;
  int Code = ExitSuccess;
  if (!parseRuleFilters(Args, MinSeverity, Disabled, Err, Code))
    return Code;

  DiagnosticSet Diags(Opts.Limits.MaxDiagnostics);
  SemaChecker(Opts).checkSource(Source, Diags);
  Diags = filterDiagnostics(std::move(Diags), MinSeverity, Disabled);
  Diags.sortBySource();
  return reportDiagnostics(Diags, Subject, Args.Options.count("werror") > 0,
                           Out);
}

int cmdLint(const ParsedArgs &Args, std::string &Out, std::string &Err) {
  if (Args.Options.count("list-rules")) {
    Out += renderRuleList();
    return ExitSuccess;
  }
  if (Args.Positional.size() != 1)
    return failUsage(Err, "lint expects exactly one profile");

  LintOptions Opts;
  int Code = ExitSuccess;
  if (!parseRuleFilters(Args, Opts.MinSeverity, Opts.Disabled, Err, Code))
    return Code;

  const std::string &Path = Args.Positional[0];
  Result<std::string> Bytes = readFileWithRetry(Path);
  if (!Bytes)
    return failData(Err, Bytes.error());

  ProfileLinter Linter(Opts);
  DiagnosticSet Diags(Opts.Limits.MaxDiagnostics);
  if (isEvProf(*Bytes)) {
    // Native container: wire-level scan plus decoded rules, so corruption
    // the loader would reject is explained instead of merely refused.
    Linter.lint(*Bytes, DecodeLimits::defaults(), Diags);
  } else {
    // Foreign format: convert first, then run the decoded rules.
    Result<Profile> P = convert::load(*Bytes, Path);
    if (!P)
      return failData(Err, P.error());
    Linter.lintProfile(*P, Diags);
  }
  Diags.sortBySource();
  return reportDiagnostics(Diags, Path, Args.Options.count("werror") > 0,
                           Out);
}

/// Loads one cohort for 'regress': a directory is streamed file-by-file
/// into the accumulator (O(merged CCT) memory, never O(N profiles)); a
/// single file is a cohort of one.
Result<CohortAccumulator> loadCohort(const std::string &Path,
                                     const FleetAggregateOptions &Opts) {
  CohortAccumulator Acc(Opts);
  if (isDirectory(Path)) {
    Result<std::vector<std::string>> Files = listDirectory(Path);
    if (!Files)
      return makeError(Files.error());
    for (const std::string &File : *Files) {
      Result<Profile> P = loadProfile(File);
      if (!P)
        return makeError(P.error());
      Acc.add(*P);
    }
    if (Acc.profileCount() == 0)
      return makeError("cohort directory '" + Path + "' holds no profiles");
    return Acc;
  }
  Result<Profile> P = loadProfile(Path);
  if (!P)
    return makeError(P.error());
  Acc.add(*P);
  return Acc;
}

/// Parses an optional double-valued option into \p Value.
bool parseRatioOption(const ParsedArgs &Args, const char *Name,
                      double &Value, std::string &Err, int &Code) {
  auto It = Args.Options.find(Name);
  if (It == Args.Options.end())
    return true;
  if (!parseDouble(It->second, Value) || Value < 0.0) {
    Code = failUsage(Err, std::string("--") + Name +
                              " expects a non-negative number, got '" +
                              It->second + "'");
    return false;
  }
  return true;
}

/// `evtool regress <base> <test>`: stream both cohorts through the fleet
/// accumulator, run the EVL3xx differential rules, and report with the
/// same exit-code contract as check/lint ('-Werror' escalates warnings),
/// so a CI job can gate a release on "no new regressions".
int cmdRegress(const ParsedArgs &Args, std::string &Out, std::string &Err) {
  if (Args.Options.count("list-rules")) {
    Out += renderRuleList();
    return ExitSuccess;
  }
  if (Args.Positional.size() != 2)
    return failUsage(Err, "regress expects <base> <test> (profile files or "
                          "cohort directories)");

  RegressionOptions Opts;
  int Code = ExitSuccess;
  if (!parseRuleFilters(Args, Opts.MinSeverity, Opts.Disabled, Err, Code))
    return Code;
  if (!parseRatioOption(Args, "rel-min", Opts.RelativeMin, Err, Code) ||
      !parseRatioOption(Args, "abs-min", Opts.AbsoluteMin, Err, Code) ||
      !parseRatioOption(Args, "sigma", Opts.SigmaGate, Err, Code))
    return Code;
  FleetAggregateOptions AggOpts;
  uint64_t Budget = AggOpts.NodeBudget;
  if (!parseCountOption(Args, "node-budget", Budget, Err, Code))
    return Code;
  AggOpts.NodeBudget = static_cast<size_t>(Budget);

  std::string Format = "text";
  if (auto It = Args.Options.find("format"); It != Args.Options.end())
    Format = It->second;
  if (Format != "text" && Format != "json")
    return failUsage(Err, "--format expects text or json");

  Result<CohortAccumulator> Base = loadCohort(Args.Positional[0], AggOpts);
  if (!Base)
    return failData(Err, Base.error());
  Result<CohortAccumulator> Test = loadCohort(Args.Positional[1], AggOpts);
  if (!Test)
    return failData(Err, Test.error());

  DiagnosticSet Diags(Opts.Limits.MaxDiagnostics);
  RegressionAnalyzer(Opts).analyze(*Base, *Test, Diags);

  bool WError = Args.Options.count("werror") > 0;
  std::string Subject =
      Args.Positional[0] + " vs " + Args.Positional[1];
  if (Format == "json") {
    json::Object Root;
    json::Object BaseInfo;
    BaseInfo.set("path", Args.Positional[0]);
    BaseInfo.set("profiles", static_cast<uint64_t>(Base->profileCount()));
    json::Object TestInfo;
    TestInfo.set("path", Args.Positional[1]);
    TestInfo.set("profiles", static_cast<uint64_t>(Test->profileCount()));
    Root.set("base", std::move(BaseInfo));
    Root.set("test", std::move(TestInfo));
    json::Array Findings;
    for (const Diagnostic &D : Diags.all()) {
      json::Object F;
      F.set("id", D.Id);
      F.set("severity", std::string(severityName(D.Sev)));
      F.set("rule", D.Rule);
      F.set("message", D.Message);
      if (!D.Hint.empty())
        F.set("hint", D.Hint);
      if (D.Node != InvalidNode)
        F.set("node", static_cast<uint64_t>(D.Node));
      Findings.push_back(std::move(F));
    }
    Root.set("findings", std::move(Findings));
    Root.set("errors",
             static_cast<uint64_t>(Diags.countAtLeast(Severity::Error)));
    Root.set("warnings",
             static_cast<uint64_t>(Diags.count(Severity::Warning)));
    Root.set("truncated", Diags.truncated());
    Out += json::Value(std::move(Root)).dump() + "\n";
    size_t Errors = Diags.countAtLeast(Severity::Error);
    size_t Warnings = Diags.count(Severity::Warning);
    return Errors > 0 || (WError && Warnings > 0) ? ExitDataError
                                                  : ExitSuccess;
  }
  Out += "base: " + Args.Positional[0] + " (" +
         std::to_string(Base->profileCount()) + " profile(s))\n";
  Out += "test: " + Args.Positional[1] + " (" +
         std::to_string(Test->profileCount()) + " profile(s))\n";
  return reportDiagnostics(Diags, Subject, WError, Out);
}

int cmdButterfly(const ParsedArgs &Args, std::string &Out,
                 std::string &Err) {
  if (Args.Positional.size() != 2)
    return failUsage(Err, "butterfly expects <profile> <function>");
  Result<Profile> P = loadProfile(Args.Positional[0]);
  if (!P)
    return failData(Err, P.error());
  Result<MetricId> Metric = resolveMetric(*P, Args);
  if (!Metric)
    return failData(Err, Metric.error());
  ButterflyResult B = butterfly(*P, Args.Positional[1], *Metric);
  if (B.Occurrences == 0)
    return failData(Err, "function '" + Args.Positional[1] +
                         "' not found in the profile");
  Out += renderButterflyText(*P, B, P->metrics()[*Metric].Unit);
  return 0;
}

int cmdAnnotate(const ParsedArgs &Args, std::string &Out,
                std::string &Err) {
  if (Args.Positional.size() != 2)
    return failUsage(Err, "annotate expects <profile> <source-file>");
  Result<Profile> P = loadProfile(Args.Positional[0]);
  if (!P)
    return failData(Err, P.error());
  Out += renderAnnotationsText(*P, Args.Positional[1]);
  return 0;
}

int cmdReport(const ParsedArgs &Args, std::string &Out, std::string &Err) {
  if (Args.Positional.size() != 2)
    return failUsage(Err, "report expects <profile> <out.html>");
  Result<Profile> P = loadProfile(Args.Positional[0]);
  if (!P)
    return failData(Err, P.error());
  std::string Html = renderHtmlReport(*P);
  Result<bool> W = writeFile(Args.Positional[1], Html);
  if (!W)
    return failData(Err, W.error());
  Out += "wrote " + Args.Positional[1] + " (" +
         formatBytes(static_cast<double>(Html.size())) + ")\n";
  return 0;
}

/// 'store': loads profiles into a ProfileStore — optionally under a memory
/// budget with an out-of-core spill directory — and reports the same
/// memory-attribution stats the PVP server exposes as the store* fields of
/// pvp/stats (docs/PERF.md "Out-of-core columnar store"). The quickest way
/// to eyeball spill/dedup behavior on a cohort without standing up a
/// server.
int cmdStore(const ParsedArgs &Args, std::string &Out, std::string &Err) {
  if (!Args.Options.count("stats"))
    return failUsage(Err, "store requires --stats");
  if (Args.Positional.empty())
    return failUsage(Err, "store expects at least one profile or directory");
  uint64_t Budget = 0;
  int Code = 0;
  if (!parseCountOption(Args, "budget", Budget, Err, Code))
    return Code;
  std::string SpillDir;
  if (auto It = Args.Options.find("spill-dir"); It != Args.Options.end())
    SpillDir = It->second;
  if (Budget != 0 && SpillDir.empty())
    return failUsage(Err, "--budget requires --spill-dir");

  ProfileStore Store;
  if (Budget != 0)
    if (Result<bool> R = Store.setBudget(Budget, SpillDir); !R)
      return failData(Err, R.error());

  std::vector<int64_t> Ids;
  auto AddFile = [&](const std::string &File) -> Result<bool> {
    Result<Profile> P = loadProfile(File);
    if (!P)
      return makeError(P.error());
    Ids.push_back(Store.add(P.take()));
    return true;
  };
  for (const std::string &Path : Args.Positional) {
    if (isDirectory(Path)) {
      Result<std::vector<std::string>> Files = listDirectory(Path);
      if (!Files)
        return failData(Err, Files.error());
      for (const std::string &File : *Files)
        if (Result<bool> R = AddFile(File); !R)
          return failData(Err, R.error());
    } else if (Result<bool> R = AddFile(Path); !R) {
      return failData(Err, R.error());
    }
  }
  if (Ids.empty())
    return failData(Err, "no profiles found in the given inputs");

  // Under a budget, sweep every profile once through the columnar reader
  // so the report reflects steady-state streaming (spilled members fault
  // in and age back out), not just the load order.
  if (Budget != 0)
    for (int64_t Id : Ids)
      (void)Store.columnar(Id);

  StoreStats S = Store.stats();
  auto Bytes = [](uint64_t N) { return formatBytes(static_cast<double>(N)); };
  Out += "profiles:       " + std::to_string(S.Profiles) + "\n";
  Out += "budget:         " +
         (S.BudgetBytes ? Bytes(S.BudgetBytes) : std::string("unbudgeted")) +
         "\n";
  Out += "resident:       " + Bytes(S.ResidentBytes) + "\n";
  Out += "  aos:          " + Bytes(S.AosBytes) + "\n";
  Out += "  columnar:     " + Bytes(S.ColumnarBytes) + "\n";
  Out += "shared strings: " + Bytes(S.SharedStringBytes) +
         " (deduplicated across profiles)\n";
  Out += "spilled:        " + Bytes(S.SpilledBytes) + " in " +
         std::to_string(S.Spills) + " segment(s)\n";
  Out += "evictions:      " + std::to_string(S.Evictions) + "\n";
  Out += "faults:         " + std::to_string(S.Faults) + "\n";
  if (S.SpillFailures != 0)
    Out += "spill failures: " + std::to_string(S.SpillFailures) + "\n";
  return ExitSuccess;
}

/// The server a SIGINT/SIGTERM handler should drain. Handlers run on an
/// arbitrary thread at an arbitrary instruction; requestDrain() is
/// async-signal-safe (one atomic store plus one pipe write) so this is the
/// entire handler story.
std::atomic<net::NetServer *> ActiveServer{nullptr};

void serveSignalHandler(int) {
  if (net::NetServer *S = ActiveServer.load(std::memory_order_acquire))
    S->requestDrain();
}

/// `evtool serve --listen/--unix`: the real-socket deployment of the PVP
/// service (net/NetServer.h). Binds, prints "listening on ADDR" to stderr
/// (immediately — clients and tests wait for it), serves until a
/// SIGINT/SIGTERM (or --drain-after-ms) triggers a graceful drain, and
/// exits 0 when the drain finished cleanly inside its deadline.
int cmdServeSocket(const ParsedArgs &Args, std::string &Out,
                   std::string &Err) {
  (void)Out;
  bool Tcp = Args.Options.count("listen") > 0;
  bool Unix = Args.Options.count("unix") > 0;
  if (Tcp && Unix)
    return failUsage(Err, "serve takes --listen or --unix, not both");
  if (Args.Options.count("input"))
    return failUsage(Err,
                     "serve takes --input (scripted) or a socket listener "
                     "(--listen/--unix), not both");

  SessionManager::Options MOpts;
  if (auto It = Args.Options.find("sessions"); It != Args.Options.end()) {
    uint64_t N;
    if (!parseUnsigned(It->second, N) || N == 0 || N > 256)
      return failUsage(Err, "--sessions expects a count in [1, 256]");
    MOpts.Sessions = static_cast<unsigned>(N);
  }

  net::NetServerOptions NOpts;
  int Code = ExitSuccess;
  uint64_t MaxConns = NOpts.MaxConnections;
  uint64_t DrainAfterMs = 0;
  if (!parseCountOption(Args, "max-conns", MaxConns, Err, Code) ||
      !parseCountOption(Args, "idle-ms", NOpts.IdleTimeoutMs, Err, Code) ||
      !parseCountOption(Args, "frame-ms", NOpts.FrameTimeoutMs, Err, Code) ||
      !parseCountOption(Args, "drain-ms", NOpts.DrainDeadlineMs, Err, Code) ||
      !parseCountOption(Args, "drain-after-ms", DrainAfterMs, Err, Code))
    return Code;
  if (MaxConns == 0)
    return failUsage(Err, "--max-conns must be at least 1");
  NOpts.MaxConnections = static_cast<size_t>(MaxConns);

  SessionManager Manager(MOpts);
  net::NetServer Server(Manager, NOpts);
  Result<bool> Bound = Tcp ? Server.listenTcp(Args.Options.at("listen"))
                           : Server.listenUnix(Args.Options.at("unix"));
  if (!Bound)
    return failData(Err, Bound.error());
  if (Result<bool> Started = Server.start(); !Started)
    return failData(Err, Started.error());

  // Out/Err accumulate until process exit, which is useless for a live
  // server: announce readiness on the real stderr so callers can connect.
  std::fprintf(stderr, "evtool: listening on %s (%u session(s))\n",
               Server.boundAddress().c_str(), Manager.sessionCount());
  std::fflush(stderr);

  ActiveServer.store(&Server, std::memory_order_release);
  auto PrevInt = std::signal(SIGINT, serveSignalHandler);
  auto PrevTerm = std::signal(SIGTERM, serveSignalHandler);

  // --follow: tail a growing .evprof on a side thread. New bytes are fed
  // into the shared store's streaming decoder; every successful append
  // bumps the profile's generation and a publishAll() sweep pushes
  // pvp/viewDelta frames to whoever subscribed. The whole file is re-read
  // per poll and a consumed-byte cursor advances past what the decoder
  // has seen — the decoder buffers mid-field tails itself, so arbitrary
  // producer chunking is fine.
  std::atomic<bool> FollowStop{false};
  std::thread FollowThread;
  if (auto It = Args.Options.find("follow"); It != Args.Options.end()) {
    std::string Path = It->second;
    DecodeLimits Decode = MOpts.Limits.Decode;
    FollowThread = std::thread([&Manager, &FollowStop, Path, Decode] {
      int64_t Id = -1;
      size_t Consumed = 0;
      size_t LastTriedSize = 0;
      while (!FollowStop.load(std::memory_order_acquire)) {
        Result<std::string> Bytes = readFile(Path);
        if (Bytes && Bytes->size() > Consumed) {
          std::string_view Fresh(Bytes->data() + Consumed,
                                 Bytes->size() - Consumed);
          if (Id < 0) {
            // Too-short prefixes fail to open; retry once the file grew
            // past the last attempt instead of spinning on the same bytes.
            if (Bytes->size() != LastTriedSize) {
              LastTriedSize = Bytes->size();
              if (Result<int64_t> Opened =
                      Manager.store().openStream(Fresh, Decode)) {
                Id = *Opened;
                Consumed = Bytes->size();
                Manager.adoptProfileAll(Id);
                Manager.publishAll();
                std::fprintf(stderr,
                             "evtool: following %s as live profile %lld\n",
                             Path.c_str(),
                             static_cast<long long>(Id));
                std::fflush(stderr);
              }
            }
          } else {
            Result<size_t> Gained = Manager.store().append(Id, Fresh, Decode);
            Consumed = Bytes->size();
            if (!Gained) {
              std::fprintf(stderr, "evtool: --follow stopped: %s\n",
                           Gained.error().c_str());
              std::fflush(stderr);
              return;
            }
            if (*Gained > 0)
              Manager.publishAll();
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
  }

  // --drain-after-ms gives scripts and smoke tests a bounded lifetime
  // without needing to deliver a signal.
  if (DrainAfterMs > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(DrainAfterMs));
    Server.requestDrain();
  }
  bool Clean = Server.waitUntilStopped();

  FollowStop.store(true, std::memory_order_release);
  if (FollowThread.joinable())
    FollowThread.join();

  std::signal(SIGINT, PrevInt);
  std::signal(SIGTERM, PrevTerm);
  ActiveServer.store(nullptr, std::memory_order_release);

  Err += "served " + std::to_string(Server.acceptedConnections()) +
         " connection(s), dropped " +
         std::to_string(Server.droppedConnections()) + "; drain " +
         (Clean ? "clean" : "forced") + "\n";
  return Clean ? ExitSuccess : ExitDataError;
}

/// `evtool serve`: drives the concurrent multi-session PVP service
/// (ide/SessionManager.h) from a JSON-Lines script — one JSON-RPC request
/// object per line, optionally carrying a top-level "session" field that
/// routes it to one of the N sessions (default session 0). Requests are
/// submitted in file order and responses are printed in the SAME order,
/// one per line, so the output of a concurrent run is byte-comparable to a
/// sequential one.
int cmdServe(const ParsedArgs &Args, std::string &Out, std::string &Err) {
  if (Args.Options.count("listen") || Args.Options.count("unix"))
    return cmdServeSocket(Args, Out, Err);
  auto InputIt = Args.Options.find("input");
  if (InputIt == Args.Options.end() && Args.Positional.size() != 1)
    return failUsage(Err, "serve needs --input <requests.jsonl>");
  const std::string &Path = InputIt != Args.Options.end()
                                ? InputIt->second
                                : Args.Positional[0];
  Result<std::string> Script = readFileWithRetry(Path);
  if (!Script)
    return failData(Err, Script.error());

  SessionManager::Options Opts;
  if (auto It = Args.Options.find("sessions"); It != Args.Options.end()) {
    uint64_t N;
    if (!parseUnsigned(It->second, N) || N == 0 || N > 256)
      return failUsage(Err, "--sessions expects a count in [1, 256]");
    Opts.Sessions = static_cast<unsigned>(N);
  }
  SessionManager Manager(Opts);

  std::vector<std::future<json::Value>> Replies;
  size_t LineNo = 0;
  for (std::string_view Line : splitString(*Script, '\n')) {
    ++LineNo;
    if (Line.empty())
      continue;
    Result<json::Value> Request = json::parse(Line);
    if (!Request)
      return failData(Err, Path + ":" + std::to_string(LineNo) + ": " +
                               Request.error());
    unsigned Session = 0;
    if (Request->isObject())
      if (const json::Value *SV = Request->asObject().find("session"); SV) {
        int64_t S;
        if (!SV->getInteger(S) || S < 0 ||
            static_cast<uint64_t>(S) >= Manager.sessionCount())
          return failData(Err, Path + ":" + std::to_string(LineNo) +
                                   ": invalid 'session' field");
        Session = static_cast<unsigned>(S);
      }
    Replies.push_back(Manager.submit(Session, Request.take()));
  }
  for (std::future<json::Value> &F : Replies)
    Out += F.get().dump() + "\n";
  Err += "served " + std::to_string(Replies.size()) + " request(s) across " +
         std::to_string(Manager.sessionCount()) + " session(s)\n";

  // --trace-out dumps the service's own retained spans as Chrome
  // traceEvents JSON: loadable in any trace viewer, and round-trippable
  // back into a profile through `evtool convert --to evprof` (the Chrome
  // converter treats it like any foreign trace).
  if (auto It = Args.Options.find("trace-out"); It != Args.Options.end()) {
    std::string Trace = trace::toChromeTraceJson();
    if (Result<bool> W = writeFile(It->second, Trace); !W)
      return failData(Err, W.error());
    Err += "wrote trace of " + std::to_string(trace::retainedSpans()) +
           " span(s) to " + It->second + "\n";
  }
  return ExitSuccess;
}

} // namespace

int runEvTool(const std::vector<std::string> &Args, std::string &Out,
              std::string &Err) {
  if (Args.empty()) {
    Err += usageText();
    return ExitUsageError;
  }
  if (Args[0] == "help" || Args[0] == "--help") {
    Out += usageText();
    return ExitSuccess;
  }
  const std::string &Command = Args[0];
  Result<ParsedArgs> Parsed = parseArgs(Args, 1);
  if (!Parsed) {
    Err += "evtool: error: " + Parsed.error() + "\n";
    return ExitUsageError;
  }
  if (Command == "info")
    return cmdInfo(*Parsed, Out, Err);
  if (Command == "summary")
    return cmdSummary(*Parsed, Out, Err);
  if (Command == "flame")
    return cmdFlame(*Parsed, Out, Err);
  if (Command == "table")
    return cmdTable(*Parsed, Out, Err);
  if (Command == "convert")
    return cmdConvert(*Parsed, Out, Err);
  if (Command == "diff")
    return cmdDiff(*Parsed, Out, Err);
  if (Command == "aggregate")
    return cmdAggregate(*Parsed, Out, Err);
  if (Command == "query")
    return cmdQuery(*Parsed, Out, Err);
  if (Command == "check")
    return cmdCheck(*Parsed, Out, Err);
  if (Command == "lint")
    return cmdLint(*Parsed, Out, Err);
  if (Command == "regress")
    return cmdRegress(*Parsed, Out, Err);
  if (Command == "butterfly")
    return cmdButterfly(*Parsed, Out, Err);
  if (Command == "annotate")
    return cmdAnnotate(*Parsed, Out, Err);
  if (Command == "report")
    return cmdReport(*Parsed, Out, Err);
  if (Command == "store")
    return cmdStore(*Parsed, Out, Err);
  if (Command == "serve")
    return cmdServe(*Parsed, Out, Err);
  Err += "evtool: error: unknown command '" + Command + "'\n" + usageText();
  return ExitUsageError;
}

} // namespace tool
} // namespace ev
