//===- tests/sema_test.cpp - Static analysis tests ------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the static-analysis layer: the diagnostic primitives, the
/// EVQL semantic analyzer (every EVQL rule with one firing and one
/// non-firing program), and the profile lint engine (every EVL rule, with
/// wire-level corruption crafted byte by byte).
///
//===----------------------------------------------------------------------===//

#include "analysis/Diagnostic.h"
#include "analysis/ProfileLint.h"
#include "analysis/Sema.h"
#include "proto/EvProf.h"
#include "support/ProtoWire.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ev;

namespace {

DiagnosticSet runSema(std::string_view Source, const Profile *P = nullptr,
                      AnalysisLimits Limits = AnalysisLimits::defaults()) {
  SemaOptions Opts;
  Opts.MetricSource = P;
  Opts.Limits = Limits;
  DiagnosticSet Out(Limits.MaxDiagnostics);
  SemaChecker(Opts).checkSource(Source, Out);
  return Out;
}

bool hasId(const DiagnosticSet &Diags, std::string_view Id) {
  for (const Diagnostic &D : Diags.all())
    if (D.Id == Id)
      return true;
  return false;
}

size_t countId(const DiagnosticSet &Diags, std::string_view Id) {
  size_t N = 0;
  for (const Diagnostic &D : Diags.all())
    N += D.Id == Id;
  return N;
}

std::string describe(const DiagnosticSet &Diags) {
  std::string Out;
  for (const Diagnostic &D : Diags.all())
    Out += renderDiagnostic(D, "test") + "\n";
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===
// Diagnostic primitives
//===----------------------------------------------------------------------===

TEST(Diagnostic, SeverityNamesRoundTrip) {
  for (Severity S : {Severity::Note, Severity::Info, Severity::Warning,
                     Severity::Error}) {
    Severity Back = Severity::Note;
    ASSERT_TRUE(parseSeverity(severityName(S), Back));
    EXPECT_EQ(Back, S);
  }
  Severity Out = Severity::Note;
  EXPECT_FALSE(parseSeverity("fatal", Out));
  EXPECT_FALSE(parseSeverity("", Out));
}

TEST(Diagnostic, RenderIncludesSpanIdAndHint) {
  Diagnostic D;
  D.Id = "EVQL002";
  D.Sev = Severity::Error;
  D.Message = "undefined identifier 'y'";
  D.Hint = "did you mean 'x'?";
  D.Line = 3;
  D.Column = 7;
  std::string Text = renderDiagnostic(D, "q.evql");
  EXPECT_NE(Text.find("q.evql:3:7: error: undefined identifier 'y'"),
            std::string::npos);
  EXPECT_NE(Text.find("[EVQL002]"), std::string::npos);
  EXPECT_NE(Text.find("hint: did you mean 'x'?"), std::string::npos);

  // Without a source position the span is omitted entirely.
  D.Line = 0;
  D.Hint.clear();
  Text = renderDiagnostic(D, "q.evql");
  EXPECT_NE(Text.find("q.evql: error:"), std::string::npos);
  EXPECT_EQ(Text.find(":0:"), std::string::npos);
  EXPECT_EQ(Text.find("hint"), std::string::npos);
}

TEST(Diagnostic, SetCapsAndCounts) {
  DiagnosticSet Set(2);
  for (int I = 0; I < 5; ++I) {
    Diagnostic D;
    D.Id = "X";
    D.Sev = I == 0 ? Severity::Error : Severity::Warning;
    Set.add(D);
  }
  EXPECT_EQ(Set.size(), 2u);
  EXPECT_EQ(Set.dropped(), 3u);
  EXPECT_TRUE(Set.truncated());
  EXPECT_EQ(Set.count(Severity::Error), 1u);
  EXPECT_EQ(Set.countAtLeast(Severity::Warning), 2u);
  EXPECT_EQ(Set.maxSeverity(), Severity::Error);
}

TEST(Diagnostic, SortBySourceOrdersBySpan) {
  DiagnosticSet Set(16);
  auto Add = [&](size_t Line, size_t Column) {
    Diagnostic D;
    D.Id = "X";
    D.Line = Line;
    D.Column = Column;
    Set.add(D);
  };
  Add(3, 1);
  Add(1, 9);
  Add(1, 2);
  Set.sortBySource();
  EXPECT_EQ(Set.all()[0].Line, 1u);
  EXPECT_EQ(Set.all()[0].Column, 2u);
  EXPECT_EQ(Set.all()[1].Column, 9u);
  EXPECT_EQ(Set.all()[2].Line, 3u);
}

//===----------------------------------------------------------------------===
// Sema: the check registry
//===----------------------------------------------------------------------===

TEST(Sema, RegistryIsCompleteAndLookupWorks) {
  EXPECT_EQ(semaChecks().size(), 13u);
  const SemaCheckInfo *ById = findSemaCheck("EVQL005");
  ASSERT_NE(ById, nullptr);
  EXPECT_EQ(ById->Name, "type-mismatch");
  const SemaCheckInfo *ByName = findSemaCheck("unused-binding");
  ASSERT_NE(ByName, nullptr);
  EXPECT_EQ(ByName->Id, "EVQL009");
  EXPECT_EQ(findSemaCheck("EVQL999"), nullptr);
}

//===----------------------------------------------------------------------===
// Sema: every rule, one firing and one non-firing program
//===----------------------------------------------------------------------===

namespace {

struct SemaCase {
  const char *CheckId;
  const char *Source;
};

// Each program trips exactly the rule under test (it may trip others too;
// the assertion is only that the expected id fires).
const SemaCase Firing[] = {
    {"EVQL001", "let = 1;"},
    {"EVQL002", "print missing;"},
    {"EVQL003", "print totl(\"time\");"},
    {"EVQL004", "print total(\"time\", 1);"},
    {"EVQL005", "print 1 - \"a\";"},
    {"EVQL006", "print total(\"nope\");"},
    {"EVQL007", "print 1 / 0;"},
    {"EVQL008", "prune when true;"},
    {"EVQL009", "let unused = 1;"},
    {"EVQL010", "return 1;\nprint 2;"},
    {"EVQL011", "print name();"},
};

// Each program exercises the same construct correctly and is fully clean:
// zero diagnostics of any kind.
const SemaCase Clean[] = {
    {"EVQL001", "let x = 1;\nprint x;"},
    {"EVQL002", "let y = 2;\nprint y;"},
    {"EVQL003", "print total(\"time\");"},
    {"EVQL004", "print min(1, 2);"},
    {"EVQL005", "print \"a\" + \"b\";"},
    {"EVQL006", "derive d = 1;\nprint total(\"d\");"},
    {"EVQL007", "print ratio(1, 0);"},
    {"EVQL008", "prune when metric(\"time\") < 1;"},
    {"EVQL009", "let used = 1;\nprint used;"},
    {"EVQL010", "print 1;\nreturn 2;"},
    {"EVQL011", "derive hot = exclusive(\"time\");"},
};

} // namespace

TEST(Sema, EveryRuleFires) {
  Profile P = test::makeFixedProfile();
  for (const SemaCase &C : Firing) {
    DiagnosticSet Diags = runSema(C.Source, &P);
    EXPECT_TRUE(hasId(Diags, C.CheckId))
        << C.CheckId << " did not fire on: " << C.Source << "\n"
        << describe(Diags);
    // Every source-level finding carries a 1-based span.
    for (const Diagnostic &D : Diags.all()) {
      EXPECT_GT(D.Line, 0u) << describe(Diags);
      EXPECT_GT(D.Column, 0u) << describe(Diags);
    }
  }
}

TEST(Sema, EveryRuleStaysQuietOnCorrectCode) {
  Profile P = test::makeFixedProfile();
  for (const SemaCase &C : Clean) {
    DiagnosticSet Diags = runSema(C.Source, &P);
    EXPECT_TRUE(Diags.empty())
        << "clean program for " << C.CheckId << " diagnosed:\n"
        << describe(Diags);
  }
}

TEST(Sema, ExprDepthLimitFires) {
  // 300 chained unary minuses nest past the default 256-deep expression
  // budget but stay inside the parser's own recursion guard.
  std::string Deep = "print " + std::string(300, '-') + "1;";
  DiagnosticSet Diags = runSema(Deep);
  EXPECT_TRUE(hasId(Diags, "EVQL012")) << describe(Diags);

  DiagnosticSet Shallow = runSema("print --1;");
  EXPECT_TRUE(Shallow.empty()) << describe(Shallow);
}

TEST(Sema, ProgramSizeLimitFires) {
  AnalysisLimits Tight;
  Tight.MaxProgramBytes = 8;
  DiagnosticSet Diags = runSema("print 12345;", nullptr, Tight);
  EXPECT_TRUE(hasId(Diags, "EVQL013")) << describe(Diags);
  EXPECT_TRUE(Diags.truncated());

  DiagnosticSet Ok = runSema("print 1;", nullptr, Tight);
  EXPECT_TRUE(Ok.empty()) << describe(Ok);
}

//===----------------------------------------------------------------------===
// Sema: spans, hints, recovery, budgets
//===----------------------------------------------------------------------===

TEST(Sema, ColumnsAreOneBasedAndExact) {
  DiagnosticSet Diags = runSema("let a = 1;\nprint a + oops;");
  ASSERT_EQ(countId(Diags, "EVQL002"), 1u) << describe(Diags);
  for (const Diagnostic &D : Diags.all())
    if (D.Id == "EVQL002") {
      EXPECT_EQ(D.Line, 2u);
      EXPECT_EQ(D.Column, 11u);
    }
}

TEST(Sema, SuggestsNearbyNames) {
  Profile P = test::makeFixedProfile();
  DiagnosticSet Builtin = runSema("print totl(\"time\");", &P);
  std::string Text = describe(Builtin);
  EXPECT_NE(Text.find("did you mean 'total'?"), std::string::npos) << Text;

  DiagnosticSet Metric = runSema("print total(\"tim\");", &P);
  Text = describe(Metric);
  EXPECT_NE(Text.find("time"), std::string::npos) << Text;

  DiagnosticSet Binding = runSema("let count = 1;\nprint cont + count;", &P);
  Text = describe(Binding);
  EXPECT_NE(Text.find("did you mean 'count'?"), std::string::npos) << Text;
}

TEST(Sema, RecoveryReportsMultipleSyntaxErrors) {
  // Two broken statements, one good one: both parse failures surface and
  // the survivor is still analyzed.
  DiagnosticSet Diags =
      runSema("let = 1;\nprint 2 + ;\nprint undefined_thing;");
  EXPECT_EQ(countId(Diags, "EVQL001"), 2u) << describe(Diags);
  EXPECT_TRUE(hasId(Diags, "EVQL002")) << describe(Diags);
}

TEST(Sema, DiagnosticBudgetTruncates) {
  AnalysisLimits Tight;
  Tight.MaxDiagnostics = 2;
  std::string Source;
  for (int I = 0; I < 8; ++I)
    Source += "print u" + std::to_string(I) + ";\n";
  DiagnosticSet Diags(Tight.MaxDiagnostics);
  SemaOptions Opts;
  Opts.Limits = Tight;
  SemaChecker(Opts).checkSource(Source, Diags);
  EXPECT_EQ(Diags.size(), 2u);
  EXPECT_GT(Diags.dropped(), 0u);
  EXPECT_TRUE(Diags.truncated());
}

TEST(Sema, ConstantConditionExplainsBothPolarities) {
  DiagnosticSet TrueCase = runSema("keep when 1 < 2;");
  EXPECT_TRUE(hasId(TrueCase, "EVQL008")) << describe(TrueCase);
  DiagnosticSet FalseCase = runSema("prune when 1 > 2;");
  EXPECT_TRUE(hasId(FalseCase, "EVQL008")) << describe(FalseCase);
}

TEST(Sema, FoldingMatchesInterpreterSemantics) {
  // Bool-to-number coercion and short-circuit evaluation fold exactly the
  // way the interpreter evaluates, so no false constant-condition claims.
  DiagnosticSet Coerce = runSema("print (1 < 2) + 1;");
  EXPECT_TRUE(Coerce.empty()) << describe(Coerce);
  // 'false && bad' short-circuits: the undefined name on the dead side
  // still diagnoses (sema walks both sides), but the fold must not crash.
  DiagnosticSet Short = runSema("keep when 1 > 2 && metric(\"t\") > 0;");
  EXPECT_TRUE(hasId(Short, "EVQL008")) << describe(Short);
}

TEST(Sema, NoMetricSourceSkipsMetricCheck) {
  DiagnosticSet Diags = runSema("print total(\"anything-at-all\");");
  EXPECT_FALSE(hasId(Diags, "EVQL006")) << describe(Diags);
}

//===----------------------------------------------------------------------===
// ProfileLinter: registry and clean baseline
//===----------------------------------------------------------------------===

TEST(ProfileLint, RegistryIsCompleteAndLookupWorks) {
  EXPECT_EQ(lintRules().size(), 14u);
  const LintRuleInfo *ById = findLintRule("EVL201");
  ASSERT_NE(ById, nullptr);
  EXPECT_EQ(ById->Name, "exclusive-exceeds-inclusive");
  const LintRuleInfo *ByName = findLintRule("duplicate-context-id");
  ASSERT_NE(ByName, nullptr);
  EXPECT_EQ(ByName->Id, "EVL204");
  EXPECT_EQ(findLintRule("EVL999"), nullptr);
}

TEST(ProfileLint, CleanProfileProducesNoFindings) {
  Profile P = test::makeFixedProfile();
  ProfileLinter Linter;
  DiagnosticSet Decoded(64);
  Linter.lintProfile(P, Decoded);
  EXPECT_TRUE(Decoded.empty()) << describe(Decoded);

  DiagnosticSet Wire(64);
  Linter.lintWire(writeEvProf(P), Wire);
  EXPECT_TRUE(Wire.empty()) << describe(Wire);

  DiagnosticSet Both(64);
  EXPECT_TRUE(Linter.lint(writeEvProf(P), DecodeLimits(), Both));
  EXPECT_TRUE(Both.empty()) << describe(Both);
}

//===----------------------------------------------------------------------===
// ProfileLinter: wire-level corruption, crafted byte by byte
//===----------------------------------------------------------------------===

namespace {

// Field numbers mirror proto/EvProf.cpp: EvProfile {name=1, string=2,
// metric=3, frame=4, node=5, group=6}, Frame {kind=1, name=2, file=3},
// Node {parent_plus1=1, frame=2, value=3}, MetricValue {metric=1,
// value=2}, Group {kind=1, context=2(packed), metric=3, value=4}.
std::string wrap(const ProtoWriter &W) {
  return std::string(EvProfMagic) + W.buffer();
}

std::string danglingFrameStringRef() {
  ProtoWriter W;
  W.writeBytes(2, ""); // string table: [""]
  ProtoWriter F;
  F.writeVarint(2, 7); // frame name -> string 7: out of range
  W.writeBytes(4, F.buffer());
  return wrap(W);
}

std::string danglingNodeFrameRef() {
  ProtoWriter W;
  W.writeBytes(2, "");
  W.writeBytes(4, ""); // frame table: [root]
  ProtoWriter N;
  N.writeVarint(2, 5); // node frame -> frame 5: out of range
  W.writeBytes(5, N.buffer());
  return wrap(W);
}

std::string danglingGroupContext() {
  ProtoWriter W;
  W.writeBytes(2, "");
  W.writeBytes(4, "");
  W.writeBytes(5, ""); // one root node
  ProtoWriter G;
  uint64_t Contexts[] = {3}; // -> node 3: out of range
  G.writePackedVarints(2, Contexts, 1);
  W.writeBytes(6, G.buffer());
  return wrap(W);
}

std::string danglingMetricRef() {
  ProtoWriter W;
  W.writeBytes(2, "");
  W.writeBytes(4, "");
  ProtoWriter V;
  V.writeVarint(1, 2); // metric value -> metric 2: none declared
  V.writeDouble(2, 1.0);
  ProtoWriter N;
  N.writeBytes(3, V.buffer());
  W.writeBytes(5, N.buffer());
  return wrap(W);
}

std::string forwardParentRef() {
  ProtoWriter W;
  W.writeBytes(2, "");
  W.writeBytes(4, "");
  W.writeBytes(5, ""); // node 0: root
  ProtoWriter N;
  N.writeVarint(1, 3); // node 1 -> parent node 2: breaks parents-first
  W.writeBytes(5, N.buffer());
  return wrap(W);
}

struct WireCase {
  const char *ExpectId;
  std::string Bytes;
};

} // namespace

TEST(ProfileLint, WireScanExplainsEveryCorruptionTheDecoderRejects) {
  const WireCase Cases[] = {
      {"EVL101", danglingFrameStringRef()},
      {"EVL102", danglingNodeFrameRef()},
      {"EVL103", danglingGroupContext()},
      {"EVL104", danglingMetricRef()},
      {"EVL105", forwardParentRef()},
      {"EVL100", "not even close to a profile"},
      {"EVL100", std::string(EvProfMagic) + std::string(64, '\xff')},
  };
  ProfileLinter Linter;
  for (const WireCase &C : Cases) {
    // The decoder refuses the stream...
    EXPECT_FALSE(readEvProf(C.Bytes).ok()) << C.ExpectId;
    // ...and the wire scan explains why, with the expected rule.
    DiagnosticSet Diags(64);
    Linter.lintWire(C.Bytes, Diags);
    EXPECT_TRUE(hasId(Diags, C.ExpectId))
        << C.ExpectId << " missing:\n"
        << describe(Diags);
  }
}

TEST(ProfileLint, CombinedLintDoesNotDoubleReportExplainedCorruption) {
  ProfileLinter Linter;
  DiagnosticSet Diags(64);
  EXPECT_FALSE(Linter.lint(forwardParentRef(), DecodeLimits(), Diags));
  EXPECT_TRUE(hasId(Diags, "EVL105")) << describe(Diags);
  // The generic decode-failure finding only appears when the wire scan
  // found nothing to blame.
  for (const Diagnostic &D : Diags.all())
    EXPECT_EQ(D.Message.find("profile does not decode"), std::string::npos)
        << describe(Diags);
}

TEST(ProfileLint, UnexplainedDecodeFailureStillReported) {
  // A stream the wire scan tolerates but the decoder rejects: structurally
  // sound wire with zero nodes.
  ProtoWriter W;
  W.writeBytes(2, "");
  W.writeBytes(4, "");
  std::string Bytes = wrap(W);
  ProfileLinter Linter;
  DiagnosticSet Diags(64);
  EXPECT_FALSE(Linter.lint(Bytes, DecodeLimits(), Diags));
  ASSERT_TRUE(hasId(Diags, "EVL100")) << describe(Diags);
  EXPECT_NE(describe(Diags).find("profile does not decode"),
            std::string::npos);
}

//===----------------------------------------------------------------------===
// ProfileLinter: decoded-profile rules
//===----------------------------------------------------------------------===

TEST(ProfileLint, ExclusiveExceedsInclusiveOnNegativeDescendant) {
  ProfileBuilder B("neg");
  MetricId Time = B.addMetric("time", "ns");
  FrameId Main = B.functionFrame("main");
  FrameId Leak = B.functionFrame("leak");
  std::vector<FrameId> P = {Main};
  B.addSample(P, Time, 10);
  P = {Main, Leak};
  B.addSample(P, Time, -5); // inclusive(main) = 5 < exclusive(main) = 10
  DiagnosticSet Diags(64);
  ProfileLinter().lintProfile(B.take(), Diags);
  EXPECT_TRUE(hasId(Diags, "EVL201")) << describe(Diags);
}

TEST(ProfileLint, DepthPathologyHonorsThreshold) {
  ProfileBuilder B("deep");
  MetricId Time = B.addMetric("time", "ns");
  std::vector<FrameId> Path;
  for (int I = 0; I < 6; ++I)
    Path.push_back(B.functionFrame("f" + std::to_string(I)));
  B.addSample(Path, Time, 1);
  Profile P = B.take();

  LintOptions Tight;
  Tight.MaxReasonableDepth = 3;
  DiagnosticSet Fires(64);
  ProfileLinter(Tight).lintProfile(P, Fires);
  EXPECT_TRUE(hasId(Fires, "EVL202")) << describe(Fires);

  DiagnosticSet Quiet(64);
  ProfileLinter().lintProfile(P, Quiet);
  EXPECT_FALSE(hasId(Quiet, "EVL202")) << describe(Quiet);
}

TEST(ProfileLint, FanOutPathologyHonorsThreshold) {
  ProfileBuilder B("wide");
  MetricId Time = B.addMetric("time", "ns");
  FrameId Main = B.functionFrame("main");
  for (int I = 0; I < 5; ++I) {
    std::vector<FrameId> P = {Main,
                              B.functionFrame("c" + std::to_string(I))};
    B.addSample(P, Time, 1);
  }
  Profile P = B.take();

  LintOptions Tight;
  Tight.MaxReasonableFanOut = 3;
  DiagnosticSet Fires(64);
  ProfileLinter(Tight).lintProfile(P, Fires);
  EXPECT_TRUE(hasId(Fires, "EVL203")) << describe(Fires);
}

TEST(ProfileLint, DuplicateContextIdInGroup) {
  ProfileBuilder B("dup");
  MetricId Reuse = B.addMetric("reuse", "count");
  FrameId Main = B.functionFrame("main");
  std::vector<FrameId> Path = {Main};
  NodeId Leaf = B.addSample(Path, Reuse, 1);
  std::vector<NodeId> Contexts = {Leaf, Leaf};
  B.addGroup("reuse-pair", Contexts, Reuse, 2.0);
  DiagnosticSet Diags(64);
  ProfileLinter().lintProfile(B.take(), Diags);
  EXPECT_TRUE(hasId(Diags, "EVL204")) << describe(Diags);
}

TEST(ProfileLint, ZeroMetricSubtreeFlagsMaximalSubtree) {
  ProfileBuilder B("zero");
  MetricId Time = B.addMetric("time", "ns");
  FrameId Main = B.functionFrame("main");
  FrameId Dead = B.functionFrame("dead");
  FrameId Deeper = B.functionFrame("deeper");
  std::vector<FrameId> P = {Main};
  B.addSample(P, Time, 10);
  P = {Main, Dead, Deeper};
  B.pushPath(P); // two-node subtree under main with no values anywhere
  DiagnosticSet Diags(64);
  ProfileLinter().lintProfile(B.take(), Diags);
  EXPECT_EQ(countId(Diags, "EVL205"), 1u) << describe(Diags);
}

TEST(ProfileLint, NonMonotonicSourceOffsetsAmongSiblings) {
  ProfileBuilder B("lines");
  MetricId Time = B.addMetric("time", "ns");
  FrameId Main = B.functionFrame("main", "app.cc", 1);
  FrameId Late = B.functionFrame("late", "app.cc", 50);
  FrameId Early = B.functionFrame("early", "app.cc", 10);
  std::vector<FrameId> P = {Main, Late};
  B.addSample(P, Time, 1);
  P = {Main, Early}; // same file, decreasing line among siblings
  B.addSample(P, Time, 1);
  DiagnosticSet Diags(64);
  ProfileLinter().lintProfile(B.take(), Diags);
  EXPECT_TRUE(hasId(Diags, "EVL206")) << describe(Diags);
}

TEST(ProfileLint, DuplicateMetricValueOnOneNode) {
  ProfileBuilder B("dupval");
  MetricId Time = B.addMetric("time", "ns");
  FrameId Main = B.functionFrame("main");
  std::vector<FrameId> Path = {Main};
  NodeId Leaf = B.addSample(Path, Time, 5);
  Profile P = B.take();
  // The builder merges same-metric values; a buggy producer would not.
  P.node(Leaf).Metrics.push_back({Time, 1.0});
  DiagnosticSet Diags(64);
  ProfileLinter().lintProfile(P, Diags);
  EXPECT_TRUE(hasId(Diags, "EVL207")) << describe(Diags);
}

TEST(ProfileLint, UnreferencedFrameReportedOnce) {
  ProfileBuilder B("orphan");
  MetricId Time = B.addMetric("time", "ns");
  FrameId Main = B.functionFrame("main");
  B.functionFrame("never-called");
  B.functionFrame("also-never-called");
  std::vector<FrameId> Path = {Main};
  B.addSample(Path, Time, 1);
  DiagnosticSet Diags(64);
  ProfileLinter().lintProfile(B.take(), Diags);
  EXPECT_EQ(countId(Diags, "EVL208"), 1u) << describe(Diags);
}

//===----------------------------------------------------------------------===
// ProfileLinter: configuration
//===----------------------------------------------------------------------===

TEST(ProfileLint, DisableByNameSuppressesRule) {
  ProfileBuilder B("neg");
  MetricId Time = B.addMetric("time", "ns");
  FrameId Main = B.functionFrame("main");
  FrameId Leak = B.functionFrame("leak");
  std::vector<FrameId> P = {Main};
  B.addSample(P, Time, 10);
  P = {Main, Leak};
  B.addSample(P, Time, -5);
  Profile Prof = B.take();

  LintOptions Opts;
  Opts.Disabled = {"exclusive-exceeds-inclusive"};
  DiagnosticSet Diags(64);
  ProfileLinter(Opts).lintProfile(Prof, Diags);
  EXPECT_FALSE(hasId(Diags, "EVL201")) << describe(Diags);
}

TEST(ProfileLint, MinSeveritySuppressesBelowThreshold) {
  ProfileBuilder B("orphan");
  MetricId Time = B.addMetric("time", "ns");
  FrameId Main = B.functionFrame("main");
  B.functionFrame("never-called");
  std::vector<FrameId> Path = {Main};
  B.addSample(Path, Time, 1);
  Profile Prof = B.take();

  LintOptions Opts;
  Opts.MinSeverity = Severity::Warning; // EVL208 is info
  DiagnosticSet Diags(64);
  ProfileLinter(Opts).lintProfile(Prof, Diags);
  EXPECT_FALSE(hasId(Diags, "EVL208")) << describe(Diags);
}

TEST(ProfileLint, NodeBudgetDegradesWithTruncatedFlag) {
  Profile P = test::makeRandomProfile(7);
  LintOptions Opts;
  Opts.Limits.MaxLintNodes = 4;
  DiagnosticSet Diags(64);
  ProfileLinter(Opts).lintProfile(P, Diags);
  EXPECT_TRUE(Diags.truncated());
}
