//===- examples/quickstart.cpp - EasyView in five minutes -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds a small profile with the data-builder API (under 20 lines, the
/// paper's §VII-A programmability claim), saves and reloads it through the
/// .evprof container, and shows the core views: flame graph, tree table,
/// summary, and an EVQL customization.
///
//===----------------------------------------------------------------------===//

#include "core/EasyView.h"
#include "profile/ProfileBuilder.h"
#include "proto/EvProf.h"
#include "render/AnsiRenderer.h"

#include <cstdio>

using namespace ev;

int main() {
  // --- 1. A profiler adopts EasyView with the data-builder API.
  ProfileBuilder B("quickstart");
  MetricId Time = B.addMetric("cpu-time", "nanoseconds");
  std::vector<FrameId> Path = {
      B.functionFrame("main", "app.cc", 10, "app"),
      B.functionFrame("parseInput", "parse.cc", 88, "app")};
  B.addSample(Path, Time, 120e6);
  Path = {B.functionFrame("main", "app.cc", 10, "app"),
          B.functionFrame("compute", "compute.cc", 42, "app"),
          B.functionFrame("kernel", "compute.cc", 77, "app")};
  B.addSample(Path, Time, 700e6);
  Path = {B.functionFrame("main", "app.cc", 10, "app"),
          B.functionFrame("compute", "compute.cc", 42, "app"),
          B.functionFrame("memcpy", "", 0, "libc.so")};
  B.addSample(Path, Time, 180e6);

  // --- 2. Serialize to the .evprof container and reopen via the engine,
  // exactly like an IDE would open a file on disk.
  std::string Bytes = writeEvProf(B.take());
  EasyViewEngine Engine;
  Result<int64_t> Id = Engine.openProfileBytes(Bytes, "quickstart.evprof");
  if (!Id) {
    std::fprintf(stderr, "error: %s\n", Id.error().c_str());
    return 1;
  }
  std::printf("opened profile in %.2f ms (parse %.2f, analyze %.2f, "
              "layout %.2f)\n\n",
              Engine.lastOpenStats().totalMs(),
              Engine.lastOpenStats().ParseMs,
              Engine.lastOpenStats().AnalyzeMs,
              Engine.lastOpenStats().LayoutMs);

  // --- 3. The floating-window summary.
  std::printf("%s\n", Engine.summaryText(*Id)->c_str());

  // --- 4. A terminal flame graph (the IDE shows the same geometry).
  const Profile *P = Engine.profile(*Id);
  FlameGraph Graph(*P, 0);
  AnsiOptions Ansi;
  Ansi.Columns = 96;
  Ansi.Color = false;
  std::printf("top-down flame graph:\n%s\n",
              renderAnsi(Graph, Ansi).c_str());

  // --- 5. The tree table with the hot path expanded.
  std::printf("%s\n", Engine.treeTableText(*Id)->c_str());

  // --- 6. Customized analysis in EVQL: derive a percentage metric and
  // prune everything below 10% of total time.
  Result<evql::QueryOutput> Query = Engine.query(*Id, R"(
      let Total = total("cpu-time");
      derive share = 100 * inclusive("cpu-time") / Total;
      prune when inclusive("cpu-time") < 0.10 * Total;
      print "total time (ns): " + str(Total);
  )");
  if (!Query) {
    std::fprintf(stderr, "query error: %s\n", Query.error().c_str());
    return 1;
  }
  for (const std::string &Line : Query->Printed)
    std::printf("evql: %s\n", Line.c_str());
  std::printf("after pruning: %zu contexts (of %zu)\n",
              Query->Result.nodeCount(), P->nodeCount());

  // --- 7. The mandatory IDE action: click a frame, land in the editor.
  Result<json::Value> Search = Engine.ide().call("pvp/search", [&] {
    json::Object Params;
    Params.set("profile", *Id);
    Params.set("pattern", "kernel");
    return Params;
  }());
  if (Search && !Search->asObject().find("matches")->asArray().empty()) {
    NodeId Node = static_cast<NodeId>(
        Search->asObject().find("matches")->asArray()[0].asInt());
    Result<bool> Linked = Engine.ide().clickNode(*Id, Node);
    if (Linked && *Linked)
      std::printf("code link: kernel -> %s:%u\n",
                  Engine.ide().navigations().back().File.c_str(),
                  Engine.ide().navigations().back().Line);
  }
  return 0;
}
