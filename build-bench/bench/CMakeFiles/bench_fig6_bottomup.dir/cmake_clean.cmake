file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_bottomup.dir/bench_fig6_bottomup.cpp.o"
  "CMakeFiles/bench_fig6_bottomup.dir/bench_fig6_bottomup.cpp.o.d"
  "bench_fig6_bottomup"
  "bench_fig6_bottomup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_bottomup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
