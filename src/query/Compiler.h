//===- query/Compiler.h - EVQL bytecode lowering --------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed EVQL program into a compact register bytecode that the
/// batched VM (query/Vm.h) sweeps over columnar profile segments. Design
/// contract (docs/EVQL.md "Bytecode VM"): the interpreter is the oracle —
/// a compiled program must produce byte-identical QueryOutput, and
/// byte-identical error messages, for every input the interpreter accepts
/// or rejects.
///
/// Three properties make that contract cheap to keep:
///
///  1. Static typing. Every expression's type (number / bool / string) is
///     known at compile time: literals and builtins have fixed types, and
///     'let' bindings carry their initializer's type. The single construct
///     that could produce a data-dependent type — a ternary whose branches
///     disagree — makes compileProgram() return nullptr and the caller
///     falls back to the interpreter. No other program is rejected.
///
///  2. Lazy traps. Anything the interpreter would reject at RUNTIME
///     (unknown identifier, arity mismatch, string in a numeric position,
///     node builtins outside a node context, nesting past the
///     AnalysisLimits budget) compiles into a Trap instruction carrying
///     the interpreter's exact message. Traps respect the execution mask,
///     so an error on the dead side of a short-circuit never fires —
///     exactly the interpreter's laziness.
///
///  3. Oracle-faithful folding. Constant subexpressions fold at compile
///     time using the interpreter's own semantics (x/0 == 0 like the
///     EVQL007 lint describes, string compares, bool coercions), and only
///     when folding cannot erase a runtime error or a side effect.
///
/// Programs are cached by ProgramCache under a (source hash, profile id,
/// generation) key so pvp/query skips lex/parse/compile on warm hits.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_QUERY_COMPILER_H
#define EASYVIEW_QUERY_COMPILER_H

#include "query/Ast.h"
#include "support/Limits.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ev {
namespace evql {

/// Static value type of a register bank.
enum class VType : uint8_t { Num, Bool, Str };

/// Bytecode operations. Every instruction applies to all lanes of the
/// current chunk that its mask admits; register banks are typed (an
/// operand index selects a column in the Num, Bool, or Str bank as the
/// operation dictates).
enum class Op : uint8_t {
  // Immediates and globals (splat one value across the active lanes).
  LoadNum,       ///< num[A] = Imm
  LoadBool,      ///< bool[A] = Imm != 0
  LoadStr,       ///< str[A] = Pool[Str]
  LoadGlobalNum, ///< num[A] = numGlobals[Slot]
  LoadGlobalBool,///< bool[A] = boolGlobals[Slot]
  LoadGlobalStr, ///< str[A] = strGlobals[Slot]
  // Copies and coercions.
  CopyNum,       ///< num[A] = num[B]
  CopyBool,      ///< bool[A] = bool[B]
  CopyStr,       ///< str[A] = str[B]
  BoolToNum,     ///< num[A] = bool[B] ? 1 : 0
  NumToBool,     ///< bool[A] = num[B] != 0
  // Arithmetic, guarded exactly like the interpreter (x/0 == 0).
  NegNum,        ///< num[A] = -num[B]
  AddNum, SubNum, MulNum,
  DivNum,        ///< num[A] = num[C]==0 ? 0 : num[B]/num[C]  (also ratio())
  ModNum,        ///< num[A] = num[C]==0 ? 0 : fmod(num[B], num[C])
  MinNum, MaxNum,
  AbsNum,
  LogNum,        ///< num[A] = num[B] > 0 ? log(num[B]) : 0
  SqrtNum,       ///< num[A] = num[B] >= 0 ? sqrt(num[B]) : 0
  FloorNum, CeilNum,
  // Numeric comparisons -> bool.
  LtNum, LeNum, GtNum, GeNum, EqNum, NeNum,
  // Boolean algebra. Short-circuit laziness is expressed through masks,
  // not control flow, so these are plain lane-wise operations.
  NotBool,       ///< bool[A] = !bool[B]
  AndBool,       ///< bool[A] = bool[B] && bool[C]
  OrBool,        ///< bool[A] = bool[B] || bool[C]
  AndNotBool,    ///< bool[A] = bool[B] && !bool[C]  (mask building)
  // Strings.
  ConcatStr,     ///< str[A] = str[B] + str[C]
  EqStr, NeStr, LtStr, LeStr, GtStr, GeStr,
  ContainsStr, StartsWithStr, EndsWithStr, ///< bool[A] = f(str[B], str[C])
  StrFromNum,    ///< str[A] = renderNumber(num[B])
  StrFromBool,   ///< str[A] = bool[B] ? "true" : "false"
  FmtStr,        ///< str[A] = renderFormatted(num[B], num[C])
  // Node intrinsics: columnar sweeps over the precomputed frame/topology
  // columns (depth and fan-out are computed once per profile topology).
  NodeName, NodeFile, NodeModule, NodeKind, NodeParentName, ///< -> str[A]
  NodeLine, NodeDepth, NodeChildren,                        ///< -> num[A]
  NodeIsLeaf,    ///< bool[A] = nchildren == 0
  HasAncestor,   ///< bool[A] = any ancestor named str[B]
  // Profile-level intrinsics (legal without a node context).
  NodeCountOp,   ///< num[A] = nodeCount
  TotalOp,       ///< num[A] = view(str[B]).total()
  // Metric-column reads. B holds the metric name; when the name is a
  // compile-time constant, Slot memoizes the resolved view per chunk.
  MetricExcl,    ///< num[A] = view(str[B]).exclusive(node)
  MetricIncl,    ///< num[A] = view(str[B]).inclusive(node)
  ShareOp,       ///< num[A] = total==0 ? 0 : inclusive(node)/total
  // Lazy runtime error: kills every active lane with message Pool[Str].
  Trap,
};

/// Slot value meaning "no memoized view slot" on metric instructions.
inline constexpr uint16_t NoSlot = 0xFFFF;
/// Mask register 0 is reserved: it reads all-true, so Mask == 0 means the
/// instruction runs on every lane that has not already trapped.
inline constexpr uint16_t FullMask = 0;

struct Instr {
  Op TheOp = Op::Trap;
  uint16_t A = 0;           ///< Destination register.
  uint16_t B = 0, C = 0;    ///< Source registers.
  uint16_t Mask = FullMask; ///< Bool register gating execution.
  uint16_t Slot = NoSlot;   ///< Memoized metric-view slot.
  uint32_t Str = 0;         ///< String-pool index (LoadStr / Trap).
  uint32_t Line = 0;        ///< Source line for runtime diagnostics.
  double Imm = 0.0;         ///< LoadNum / LoadBool immediate.
};

/// One lowered statement: a straight-line instruction sequence evaluated
/// per node (derive/prune/keep) or once (let/print/return).
struct CompiledStmt {
  Stmt::Kind Kind = Stmt::Kind::Print;
  std::string Name;              ///< derive/let target name.
  std::vector<Instr> Code;
  std::vector<std::string> Pool; ///< String literals and trap messages.
  std::vector<std::string> SlotNames; ///< Constant metric name per slot.
  uint16_t NumRegs = 0;
  uint16_t BoolRegs = 1;         ///< Register 0 is the all-true mask.
  uint16_t StrRegs = 0;
  uint16_t Result = 0;           ///< Register holding the statement value.
  VType ResultType = VType::Num;
  uint16_t GlobalSlot = 0;       ///< let: destination global slot.
};

struct CompiledProgram {
  std::vector<CompiledStmt> Stmts;
  uint16_t NumGlobals = 0;
  uint16_t BoolGlobals = 0;
  uint16_t StrGlobals = 0;

  size_t instructionCount() const {
    size_t N = 0;
    for (const CompiledStmt &S : Stmts)
      N += S.Code.size();
    return N;
  }
};

/// Lowers \p Prog to bytecode. \returns nullptr when the program uses the
/// one construct the VM cannot statically type (a ternary whose branches
/// have different types, directly or through a 'let') or when a statement
/// outgrows the 16-bit register file; such programs run through the
/// interpreter unchanged. Everything else compiles — including programs
/// that always fail at runtime, which lower to traps reproducing the
/// interpreter's exact diagnostics. Expressions nested past
/// \p Limits.MaxExprDepth bound the lowering recursion the same way they
/// bound the interpreter: a trap with the EVQL012-style message.
std::shared_ptr<const CompiledProgram>
compileProgram(const Program &Prog, const AnalysisLimits &Limits);

/// FNV-1a hash of the program source, used in cache keys.
uint64_t hashProgramSource(std::string_view Source);

/// Cache key for a compiled program: source hash + length guard against
/// hash collisions, plus the (profile id, generation) pair the program's
/// results were validated against. Any pvp/append or transform bump
/// changes the generation and the stale entry ages out of the LRU.
std::string programCacheKey(std::string_view Source, int64_t ProfileId,
                            uint64_t Generation);

/// Thread-safe LRU of compiled programs, owned by the ide-layer ViewCache
/// so pvp/query warm hits skip lex/parse/compile entirely. Entries are
/// shared_ptr so a hit stays valid while concurrent sessions evict.
class ProgramCache {
public:
  explicit ProgramCache(size_t Capacity = 64) : Capacity(Capacity) {}

  /// \returns the cached program for \p Key (refreshing its LRU slot), or
  /// nullptr on miss.
  std::shared_ptr<const CompiledProgram> lookup(const std::string &Key);

  /// Inserts \p Prog under \p Key, evicting the least-recently-used entry
  /// beyond capacity. Re-inserting refreshes in place.
  void insert(const std::string &Key,
              std::shared_ptr<const CompiledProgram> Prog);

  size_t capacity() const { return Capacity; }
  size_t size() const;
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

private:
  struct Entry {
    std::string Key;
    std::shared_ptr<const CompiledProgram> Prog;
  };

  size_t Capacity;
  mutable std::mutex Mutex;
  std::list<Entry> Lru; ///< Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> Index;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
};

} // namespace evql
} // namespace ev

#endif // EASYVIEW_QUERY_COMPILER_H
