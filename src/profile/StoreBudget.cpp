//===- profile/StoreBudget.cpp - Memory budget + LRU policy ---------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "profile/StoreBudget.h"

namespace ev {

void StoreBudget::charge(int64_t Id, uint64_t Bytes) {
  auto It = Index.find(Id);
  if (It == Index.end()) {
    Lru.push_back(Id);
    Index.emplace(Id, Slot{std::prev(Lru.end()), Bytes});
    Charged += Bytes;
    return;
  }
  Charged = Charged - It->second.Bytes + Bytes;
  It->second.Bytes = Bytes;
  Lru.splice(Lru.end(), Lru, It->second.Pos); // Promote to hottest.
}

void StoreBudget::recharge(int64_t Id, uint64_t Bytes) {
  auto It = Index.find(Id);
  if (It == Index.end())
    return;
  Charged = Charged - It->second.Bytes + Bytes;
  It->second.Bytes = Bytes;
}

void StoreBudget::touch(int64_t Id) {
  auto It = Index.find(Id);
  if (It != Index.end())
    Lru.splice(Lru.end(), Lru, It->second.Pos);
}

uint64_t StoreBudget::release(int64_t Id) {
  auto It = Index.find(Id);
  if (It == Index.end())
    return 0;
  uint64_t Bytes = It->second.Bytes;
  Charged -= Bytes;
  Lru.erase(It->second.Pos);
  Index.erase(It);
  return Bytes;
}

std::vector<int64_t> StoreBudget::coldestFirst() const {
  return {Lru.begin(), Lru.end()};
}

uint64_t StoreBudget::chargeOf(int64_t Id) const {
  auto It = Index.find(Id);
  return It == Index.end() ? 0 : It->second.Bytes;
}

} // namespace ev
