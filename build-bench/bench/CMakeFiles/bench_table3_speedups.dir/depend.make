# Empty dependencies file for bench_table3_speedups.
# This may be replaced when dependencies are built.
