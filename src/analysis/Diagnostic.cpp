//===- analysis/Diagnostic.cpp - IDE-style diagnostics --------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Diagnostic.h"

#include <algorithm>

namespace ev {

std::string_view severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Info:
    return "info";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

bool parseSeverity(std::string_view Name, Severity &Out) {
  if (Name == "note")
    Out = Severity::Note;
  else if (Name == "info")
    Out = Severity::Info;
  else if (Name == "warning")
    Out = Severity::Warning;
  else if (Name == "error")
    Out = Severity::Error;
  else
    return false;
  return true;
}

bool DiagnosticSet::add(Diagnostic D) {
  if (Diags.size() >= Max) {
    ++Dropped;
    return false;
  }
  Diags.push_back(std::move(D));
  return true;
}

size_t DiagnosticSet::count(Severity Sev) const {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Sev == Sev)
      ++N;
  return N;
}

size_t DiagnosticSet::countAtLeast(Severity Sev) const {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Sev >= Sev)
      ++N;
  return N;
}

Severity DiagnosticSet::maxSeverity() const {
  Severity Max = Severity::Note;
  for (const Diagnostic &D : Diags)
    Max = std::max(Max, D.Sev);
  return Max;
}

void DiagnosticSet::sortBySource() {
  std::stable_sort(Diags.begin(), Diags.end(),
                   [](const Diagnostic &A, const Diagnostic &B) {
                     if (A.Line != B.Line)
                       return A.Line < B.Line;
                     if (A.Column != B.Column)
                       return A.Column < B.Column;
                     return A.Id < B.Id;
                   });
}

std::string renderDiagnostic(const Diagnostic &D, std::string_view Subject) {
  std::string Out(Subject);
  if (D.Line > 0) {
    Out += ":" + std::to_string(D.Line);
    if (D.Column > 0)
      Out += ":" + std::to_string(D.Column);
  }
  Out += ": ";
  Out += severityName(D.Sev);
  Out += ": ";
  Out += D.Message;
  if (D.Node != InvalidNode)
    Out += " (node " + std::to_string(D.Node) + ")";
  Out += " [" + D.Id + "]";
  if (!D.Hint.empty())
    Out += "\n  hint: " + D.Hint;
  return Out;
}

} // namespace ev
