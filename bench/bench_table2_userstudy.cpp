//===- bench/bench_table2_userstudy.cpp - Paper §VII-D control groups -----===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the §VII-D control-group evaluation: three groups of seven
/// participants analyze the same PProf data with EasyView, the GoLand
/// plugin, and the default PProf visualizer, on Tasks I-III. Humans cannot
/// be rerun; the simulator derives interaction counts from the real tool
/// data models (see src/userstudy/UserSim.h). Expected SHAPE:
///   Task I:   ~10 / ~15 / ~30 minutes
///   Task II:  ~10 / ~60 / >180 minutes
///   Task III: ~10 / >180 / >180 minutes (controls fail the 3h budget)
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "userstudy/UserSim.h"

#include <benchmark/benchmark.h>

using namespace ev;
using namespace ev::userstudy;

namespace {

void simulateFullStudy(benchmark::State &State) {
  UserStudyOptions Opt;
  for (auto _ : State) {
    auto Table = runControlGroups(Opt);
    benchmark::DoNotOptimize(Table.data());
    ++Opt.Seed;
  }
}
BENCHMARK(simulateFullStudy)->Unit(benchmark::kMillisecond);

void printTable() {
  auto Table = runControlGroups({});
  const Task Tasks[] = {Task::HotspotAnalysis, Task::BottomUpAnalysis,
                        Task::MultiProfileLeak};
  const Tool Tools[] = {Tool::EasyView, Tool::Goland, Tool::Pprof};
  bench::row("Table U1 (paper SecVII-D): mean task minutes, 7 users/group");
  bench::row("%-34s %10s %10s %10s", "", "EasyView", "GoLand", "PProf");
  for (size_t T = 0; T < 3; ++T) {
    char Cells[3][32];
    for (size_t L = 0; L < 3; ++L) {
      const GroupOutcome &G = Table[T][L];
      if (G.Completed == G.Participants)
        std::snprintf(Cells[L], sizeof(Cells[L]), "%.0f min",
                      G.MeanMinutes);
      else
        std::snprintf(Cells[L], sizeof(Cells[L]), ">180 (%zu/%zu)",
                      G.Completed, G.Participants);
    }
    bench::row("%-34s %10s %10s %10s",
               std::string(taskName(Tasks[T])).c_str(), Cells[0], Cells[1],
               Cells[2]);
    (void)Tools;
  }
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
