//===- workload/GrpcLeakWorkload.cpp - Fig. 4 memory-leak case study ------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workload/GrpcLeakWorkload.h"

#include "profile/ProfileBuilder.h"
#include "support/Rng.h"

#include <algorithm>
#include <cmath>

namespace ev {
namespace workload {

namespace {

/// A call path in the rpcx-benchmark client, root-first.
struct AllocSite {
  std::vector<const char *> Path; ///< "name|file|line" triples packed below.
  const char *Leaf;
};

std::vector<FrameId> buildPath(ProfileBuilder &B,
                               std::initializer_list<const char *> Names,
                               const char *File, uint32_t BaseLine) {
  std::vector<FrameId> Path;
  uint32_t Line = BaseLine;
  for (const char *Name : Names) {
    Path.push_back(B.functionFrame(Name, File, Line, "rpcx-benchmark"));
    Line += 7;
  }
  return Path;
}

} // namespace

GrpcLeakWorkload generateGrpcLeakWorkload(const GrpcLeakOptions &Options) {
  Rng R(Options.Seed);
  GrpcLeakWorkload Out;
  Out.LeakingFunctions = {"transport.newBufWriter", "bufio.NewReaderSize"};
  Out.HealthyFunctions = {"codec.passthrough"};

  size_t N = std::max<size_t>(Options.Snapshots, 8);
  Out.Snapshots.reserve(N);
  for (size_t T = 0; T < N; ++T) {
    ProfileBuilder B("snapshot " + std::to_string(T));
    MetricId Active = B.addMetric("active-bytes", "bytes",
                                  MetricAggregation::Last);

    double Progress = static_cast<double>(T) / static_cast<double>(N - 1);

    // Leak 1: transport.newBufWriter, called while dialing new HTTP/2
    // client connections that are never closed. Monotone growth + noise.
    {
      std::vector<FrameId> Path = buildPath(
          B,
          {"main.main", "client.BenchmarkLoop", "grpc.Dial",
           "grpc.newHTTP2Client", "transport.newBufWriter"},
          "transport/http2_client.go", 101);
      double Bytes = Options.LeakBytesPerSnapshot * (T + 1) *
                     (1.0 + 0.05 * R.normal());
      B.addSample(Path, Active, std::max(0.0, Bytes));
    }
    // Leak 2: bufio.NewReaderSize on the same dial path.
    {
      std::vector<FrameId> Path = buildPath(
          B,
          {"main.main", "client.BenchmarkLoop", "grpc.Dial",
           "grpc.newHTTP2Client", "bufio.NewReaderSize"},
          "bufio/bufio.go", 55);
      double Bytes = 0.75 * Options.LeakBytesPerSnapshot * (T + 1) *
                     (1.0 + 0.05 * R.normal());
      B.addSample(Path, Active, std::max(0.0, Bytes));
    }
    // Healthy heavy allocator: passthrough codec buffers — active memory
    // ramps up mid-run and diminishes toward the end of the execution.
    {
      std::vector<FrameId> Path = buildPath(
          B,
          {"main.main", "client.BenchmarkLoop", "client.Call",
           "codec.passthrough"},
          "codec/passthrough.go", 23);
      double Envelope = std::sin(Progress * 3.14159265358979323846);
      double Tail = Progress > 0.9 ? 0.05 : 1.0; // Reclaimed at the end.
      double Bytes = 40.0 * Options.LeakBytesPerSnapshot * Envelope * Tail *
                     (1.0 + 0.08 * R.normal());
      B.addSample(Path, Active, std::max(0.0, Bytes));
    }
    // Stationary background allocations (connection pools, metadata).
    {
      std::vector<FrameId> Path = buildPath(
          B,
          {"main.main", "client.BenchmarkLoop", "client.Call",
           "proto.Marshal"},
          "proto/wire.go", 310);
      double Bytes =
          6.0 * Options.LeakBytesPerSnapshot * (1.0 + 0.1 * R.normal());
      B.addSample(Path, Active, std::max(0.0, Bytes));
    }
    {
      std::vector<FrameId> Path =
          buildPath(B, {"main.main", "runtime.gcBgMarkWorker"},
                    "runtime/mgc.go", 1200);
      double Bytes =
          2.0 * Options.LeakBytesPerSnapshot * (1.0 + 0.15 * R.normal());
      B.addSample(Path, Active, std::max(0.0, Bytes));
    }
    Out.Snapshots.push_back(B.take());
  }
  return Out;
}

} // namespace workload
} // namespace ev
