//===- net/Socket.h - POSIX socket helpers for the PVP transport ----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin, error-returning wrappers over the POSIX socket calls the network
/// transport (net/NetServer.h) and its test/bench clients need: TCP and
/// Unix-domain listeners and connectors, non-blocking mode, and writes that
/// can never raise SIGPIPE. Everything returns ev::Result instead of
/// errno so call sites read like the rest of the tree.
///
/// SIGPIPE policy: a server writing to a peer that vanished mid-reply must
/// get EPIPE, not a process-killing signal. Every send goes through
/// sendNoSignal() (MSG_NOSIGNAL where available) and ignoreSigpipe() masks
/// the signal process-wide as belt-and-braces for platforms or code paths
/// without the flag.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_NET_SOCKET_H
#define EASYVIEW_NET_SOCKET_H

#include "support/Result.h"

#include <cstddef>
#include <string>
#include <sys/types.h>

namespace ev {
namespace net {

/// Ignores SIGPIPE process-wide. Idempotent; call before the first write
/// to any socket. A client vanishing mid-reply then surfaces as an EPIPE
/// write error on that one connection instead of killing the server.
void ignoreSigpipe();

/// Splits "HOST:PORT" (host may be empty for "bind everything"; "[v6]:port"
/// brackets are accepted). \returns false on a malformed spec.
bool splitHostPort(const std::string &Spec, std::string &Host,
                   std::string &Port);

/// Creates a non-blocking TCP listener bound to \p HostPort ("host:port";
/// port 0 picks a free port). \returns the listening fd; \p BoundAddr
/// receives the actual "host:port" after binding, so callers can announce
/// (and tests can discover) an auto-assigned port.
Result<int> listenTcp(const std::string &HostPort, std::string &BoundAddr,
                      int Backlog = 128);

/// Creates a non-blocking Unix-domain listener at \p Path, replacing a
/// stale socket file from a previous run.
Result<int> listenUnix(const std::string &Path, int Backlog = 128);

/// Blocking TCP connect to "host:port" (client side; tests and bench_load).
Result<int> connectTcp(const std::string &HostPort);

/// Blocking Unix-domain connect to \p Path.
Result<int> connectUnix(const std::string &Path);

/// Accepts one pending connection on \p ListenFd, already non-blocking.
/// \returns the fd, -1 when no connection is pending (EAGAIN), or an error
/// for real accept failures.
Result<int> acceptConnection(int ListenFd);

/// Switches \p Fd to non-blocking mode.
Result<bool> setNonBlocking(int Fd);

/// send() that can never raise SIGPIPE (MSG_NOSIGNAL / SO_NOSIGPIPE; the
/// process-wide ignoreSigpipe() covers the rest). Same return/errno
/// contract as send(2).
ssize_t sendNoSignal(int Fd, const void *Bytes, size_t Len);

/// close() wrapper tolerant of EINTR; no-op for negative fds.
void closeSocket(int Fd);

} // namespace net
} // namespace ev

#endif // EASYVIEW_NET_SOCKET_H
