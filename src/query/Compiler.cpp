//===- query/Compiler.cpp - EVQL bytecode lowering ------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The lowering mirrors the interpreter (query/Interpreter.cpp) clause by
// clause: every compileX function corresponds to an evalX function, emits
// operand code in the interpreter's evaluation order, and turns every
// runtime-error branch into a masked Trap carrying the interpreter's exact
// message. Read the two files side by side when changing either.
//
//===----------------------------------------------------------------------===//

#include "query/Compiler.h"

#include "query/Interpreter.h"
#include "support/Strings.h"

#include <algorithm>
#include <cmath>
#include <optional>

namespace ev {
namespace evql {

namespace {

/// Compile-time constant value; mirrors the interpreter's RtValue.
struct CVal {
  VType T = VType::Num;
  double N = 0.0;
  bool B = false;
  std::string S;

  static CVal num(double V) {
    CVal C;
    C.T = VType::Num;
    C.N = V;
    return C;
  }
  static CVal boolean(bool V) {
    CVal C;
    C.T = VType::Bool;
    C.B = V;
    return C;
  }
  static CVal str(std::string V) {
    CVal C;
    C.T = VType::Str;
    C.S = std::move(V);
    return C;
  }

  /// Numeric coercion matching evalNumber/AsNumber; only called on
  /// non-string constants.
  double asNumber() const { return T == VType::Bool ? (B ? 1.0 : 0.0) : N; }

  /// RtValue::render() for constants.
  std::string render() const {
    switch (T) {
    case VType::Num:
      return renderNumber(N);
    case VType::Bool:
      return B ? "true" : "false";
    case VType::Str:
      return S;
    }
    return "";
  }
};

/// A compiled expression: its static type, the register holding it, and
/// the folded constant when the subtree was pure and constant.
struct EV {
  VType T = VType::Num;
  uint16_t Reg = 0;
  std::optional<CVal> Const;
};

/// Thrown when a program cannot be statically typed (mixed-type ternary)
/// or outgrows the register file; compileProgram catches it and returns
/// nullptr so callers fall back to the interpreter.
struct Unsupported {};

/// A 'let' binding in the compile-time environment.
struct Binding {
  VType T = VType::Num;
  uint16_t Slot = 0;
  std::optional<CVal> Const;
};

/// Register ids stay comfortably under the uint16 ceiling; a statement
/// that needs more falls back to the interpreter.
constexpr uint16_t RegCap = 0xFF00;

/// Folds a non-logical binary operator over two constants, mirroring the
/// interpreter's Binary clause exactly (including the x/0 == 0 guard the
/// EVQL007 lint documents). \returns nullopt when the interpreter would
/// raise a runtime error instead (string operand on the numeric path) —
/// the caller then emits the code path whose trap reproduces it.
std::optional<CVal> foldBinary(TokenKind Op, const CVal &L, const CVal &R) {
  bool BothStrings = L.T == VType::Str && R.T == VType::Str;
  switch (Op) {
  case TokenKind::Plus:
    if (BothStrings)
      return CVal::str(L.S + R.S);
    break;
  case TokenKind::EqualEqual:
  case TokenKind::BangEqual: {
    bool Equal;
    if (BothStrings)
      Equal = L.S == R.S;
    else if (L.T == VType::Str || R.T == VType::Str)
      Equal = false;
    else
      Equal = L.asNumber() == R.asNumber();
    return CVal::boolean(Op == TokenKind::EqualEqual ? Equal : !Equal);
  }
  case TokenKind::Less:
  case TokenKind::LessEqual:
  case TokenKind::Greater:
  case TokenKind::GreaterEqual:
    if (BothStrings) {
      int Cmp = L.S.compare(R.S);
      switch (Op) {
      case TokenKind::Less:
        return CVal::boolean(Cmp < 0);
      case TokenKind::LessEqual:
        return CVal::boolean(Cmp <= 0);
      case TokenKind::Greater:
        return CVal::boolean(Cmp > 0);
      default:
        return CVal::boolean(Cmp >= 0);
      }
    }
    break;
  default:
    break;
  }
  if (L.T == VType::Str || R.T == VType::Str)
    return std::nullopt;
  double A = L.asNumber();
  double B = R.asNumber();
  switch (Op) {
  case TokenKind::Plus:
    return CVal::num(A + B);
  case TokenKind::Minus:
    return CVal::num(A - B);
  case TokenKind::Star:
    return CVal::num(A * B);
  case TokenKind::Slash:
    return CVal::num(B == 0.0 ? 0.0 : A / B);
  case TokenKind::Percent:
    return CVal::num(B == 0.0 ? 0.0 : std::fmod(A, B));
  case TokenKind::Less:
    return CVal::boolean(A < B);
  case TokenKind::LessEqual:
    return CVal::boolean(A <= B);
  case TokenKind::Greater:
    return CVal::boolean(A > B);
  case TokenKind::GreaterEqual:
    return CVal::boolean(A >= B);
  default:
    return std::nullopt;
  }
}

/// Lowers the statements of one program. The environment of 'let'
/// bindings persists across statements, like the interpreter's Globals.
class Lowering {
public:
  Lowering(const AnalysisLimits &Limits, CompiledProgram &Out)
      : Limits(Limits), Out(Out) {}

  void lowerStmt(const Stmt &St) {
    Out.Stmts.emplace_back();
    CS = &Out.Stmts.back();
    CS->Kind = St.TheKind;
    CS->Name = St.Name;
    CurMask = FullMask;
    switch (St.TheKind) {
    case Stmt::Kind::Let: {
      NodeCtx = false;
      EV V = compileExpr(*St.Value, 0);
      Binding B;
      B.T = V.T;
      B.Slot = allocGlobal(V.T);
      B.Const = V.Const;
      Env[St.Name] = B;
      CS->GlobalSlot = B.Slot;
      finish(V);
      break;
    }
    case Stmt::Kind::Print:
    case Stmt::Kind::Return: {
      NodeCtx = false;
      finish(compileExpr(*St.Value, 0));
      break;
    }
    case Stmt::Kind::Derive: {
      NodeCtx = true;
      finish(compileNumber(*St.Value, 0));
      break;
    }
    case Stmt::Kind::Prune:
    case Stmt::Kind::Keep: {
      NodeCtx = true;
      finish(compileBool(*St.Value, 0));
      break;
    }
    }
  }

private:
  const AnalysisLimits &Limits;
  CompiledProgram &Out;
  CompiledStmt *CS = nullptr;
  std::unordered_map<std::string, Binding> Env;
  bool NodeCtx = false;
  uint16_t CurMask = FullMask;

  void finish(const EV &V) {
    CS->Result = V.Reg;
    CS->ResultType = V.T;
  }

  uint16_t alloc(VType T) {
    uint16_t *Bank = T == VType::Num    ? &CS->NumRegs
                     : T == VType::Bool ? &CS->BoolRegs
                                        : &CS->StrRegs;
    if (*Bank >= RegCap)
      throw Unsupported{};
    return (*Bank)++;
  }

  uint16_t allocGlobal(VType T) {
    uint16_t *Bank = T == VType::Num    ? &Out.NumGlobals
                     : T == VType::Bool ? &Out.BoolGlobals
                                        : &Out.StrGlobals;
    if (*Bank >= RegCap)
      throw Unsupported{};
    return (*Bank)++;
  }

  Instr &emit(Op O, uint16_t A, uint16_t B = 0, uint16_t C = 0) {
    Instr I;
    I.TheOp = O;
    I.A = A;
    I.B = B;
    I.C = C;
    I.Mask = CurMask;
    CS->Code.push_back(I);
    return CS->Code.back();
  }

  uint32_t pool(std::string Text) {
    CS->Pool.push_back(std::move(Text));
    return static_cast<uint32_t>(CS->Pool.size() - 1);
  }

  uint16_t addSlot(const std::string &Name) {
    for (size_t I = 0; I < CS->SlotNames.size(); ++I)
      if (CS->SlotNames[I] == Name)
        return static_cast<uint16_t>(I);
    if (CS->SlotNames.size() >= NoSlot - 1)
      throw Unsupported{};
    CS->SlotNames.push_back(Name);
    return static_cast<uint16_t>(CS->SlotNames.size() - 1);
  }

  /// Emits a lazy runtime error with the interpreter's typeError() shape
  /// ("<what> at line <line>") and returns a dummy register of the type
  /// the surrounding code expects — lanes reaching the trap are dead, so
  /// the dummy's (zero) value is never observed.
  EV trap(std::string What, size_t Line, VType T) {
    Instr &I = emit(Op::Trap, 0);
    I.Str = pool(std::move(What) + " at line " + std::to_string(Line));
    I.Line = static_cast<uint32_t>(Line);
    EV V;
    V.T = T;
    V.Reg = alloc(T);
    return V;
  }

  /// Discards code emitted since \p Mark. Only legal when that code is
  /// pure (constant loads) — which holds whenever the values computed by
  /// it folded to constants, since traps and effectful ops never fold.
  void rewind(size_t Mark) { CS->Code.resize(Mark); }

  EV materialize(CVal C) {
    EV V;
    V.T = C.T;
    V.Reg = alloc(C.T);
    switch (C.T) {
    case VType::Num:
      emit(Op::LoadNum, V.Reg).Imm = C.N;
      break;
    case VType::Bool:
      emit(Op::LoadBool, V.Reg).Imm = C.B ? 1.0 : 0.0;
      break;
    case VType::Str:
      emit(Op::LoadStr, V.Reg).Str = pool(C.S);
      break;
    }
    V.Const = std::move(C);
    return V;
  }

  // Coercion wrappers, one per interpreter evalX helper. Each passes the
  // SAME depth through (evalNumber calls evalExpr on the same node).

  EV compileNumber(const Expr &E, size_t Depth) {
    EV V = compileExpr(E, Depth);
    switch (V.T) {
    case VType::Num:
      return V;
    case VType::Bool: {
      uint16_t R = alloc(VType::Num);
      emit(Op::BoolToNum, R, V.Reg);
      EV O;
      O.T = VType::Num;
      O.Reg = R;
      if (V.Const)
        O.Const = CVal::num(V.Const->B ? 1.0 : 0.0);
      return O;
    }
    case VType::Str:
      return trap("expected a number, found a string", E.Line, VType::Num);
    }
    return V;
  }

  EV compileBool(const Expr &E, size_t Depth) {
    EV V = compileExpr(E, Depth);
    switch (V.T) {
    case VType::Bool:
      return V;
    case VType::Num: {
      uint16_t R = alloc(VType::Bool);
      emit(Op::NumToBool, R, V.Reg);
      EV O;
      O.T = VType::Bool;
      O.Reg = R;
      if (V.Const)
        O.Const = CVal::boolean(V.Const->N != 0.0);
      return O;
    }
    case VType::Str:
      return trap("expected a condition, found a string", E.Line,
                  VType::Bool);
    }
    return V;
  }

  EV compileString(const Expr &E, size_t Depth) {
    EV V = compileExpr(E, Depth);
    if (V.T != VType::Str)
      return trap("expected a string", E.Line, VType::Str);
    return V;
  }

  EV compileExpr(const Expr &E, size_t Depth) {
    // Mirrors the interpreter's (and Sema's EVQL012) recursion bound, and
    // bounds the lowering recursion itself: past the budget nothing is
    // recursed into, only a trap is emitted. The trap is masked like any
    // other, so a too-deep subtree on the dead side of a short-circuit
    // still never errors — exactly the interpreter's laziness.
    if (Depth >= Limits.MaxExprDepth)
      return trap("expression nesting exceeds the analysis limit of " +
                      std::to_string(Limits.MaxExprDepth),
                  E.Line, VType::Num);
    switch (E.TheKind) {
    case Expr::Kind::NumberLit:
      return materialize(CVal::num(E.Number));
    case Expr::Kind::StringLit:
      return materialize(CVal::str(E.Text));
    case Expr::Kind::BoolLit:
      return materialize(CVal::boolean(E.BoolValue));
    case Expr::Kind::Ident: {
      auto It = Env.find(E.Text);
      if (It == Env.end())
        return trap("unknown identifier '" + E.Text + "'", E.Line,
                    VType::Num);
      const Binding &B = It->second;
      EV V;
      V.T = B.T;
      V.Reg = alloc(B.T);
      V.Const = B.Const;
      Op Load = B.T == VType::Num    ? Op::LoadGlobalNum
                : B.T == VType::Bool ? Op::LoadGlobalBool
                                     : Op::LoadGlobalStr;
      emit(Load, V.Reg).Slot = B.Slot;
      return V;
    }
    case Expr::Kind::Unary: {
      size_t Mark = CS->Code.size();
      if (E.Op == TokenKind::Minus) {
        EV V = compileNumber(*E.Operands[0], Depth + 1);
        if (V.Const) {
          rewind(Mark);
          return materialize(CVal::num(-V.Const->N));
        }
        uint16_t R = alloc(VType::Num);
        emit(Op::NegNum, R, V.Reg);
        return EV{VType::Num, R, std::nullopt};
      }
      EV V = compileBool(*E.Operands[0], Depth + 1);
      if (V.Const) {
        rewind(Mark);
        return materialize(CVal::boolean(!V.Const->B));
      }
      uint16_t R = alloc(VType::Bool);
      emit(Op::NotBool, R, V.Reg);
      return EV{VType::Bool, R, std::nullopt};
    }
    case Expr::Kind::Ternary:
      return compileTernary(E, Depth);
    case Expr::Kind::Binary:
      return compileBinary(E, Depth);
    case Expr::Kind::Call:
      return compileCall(E, Depth);
    }
    return trap("unreachable expression kind", E.Line, VType::Num);
  }

  EV compileTernary(const Expr &E, size_t Depth) {
    size_t Mark = CS->Code.size();
    EV Cond = compileBool(*E.Operands[0], Depth + 1);
    if (Cond.Const) {
      // The interpreter evaluates only the taken branch; a constant
      // condition's code is pure, so it folds away entirely.
      rewind(Mark);
      return compileExpr(Cond.Const->B ? *E.Operands[1] : *E.Operands[2],
                         Depth + 1);
    }
    uint16_t MThen, MElse;
    if (CurMask == FullMask) {
      MThen = Cond.Reg;
      MElse = alloc(VType::Bool);
      emit(Op::NotBool, MElse, Cond.Reg);
    } else {
      MThen = alloc(VType::Bool);
      emit(Op::AndBool, MThen, CurMask, Cond.Reg);
      MElse = alloc(VType::Bool);
      emit(Op::AndNotBool, MElse, CurMask, Cond.Reg);
    }
    uint16_t Saved = CurMask;
    CurMask = MThen;
    EV Then = compileExpr(*E.Operands[1], Depth + 1);
    CurMask = MElse;
    EV Else = compileExpr(*E.Operands[2], Depth + 1);
    CurMask = Saved;
    if (Then.T != Else.T)
      throw Unsupported{}; // Data-dependent type: interpreter only.
    uint16_t R = alloc(Then.T);
    Op Copy = Then.T == VType::Num    ? Op::CopyNum
              : Then.T == VType::Bool ? Op::CopyBool
                                      : Op::CopyStr;
    CurMask = MThen;
    emit(Copy, R, Then.Reg);
    CurMask = MElse;
    emit(Copy, R, Else.Reg);
    CurMask = Saved;
    return EV{Then.T, R, std::nullopt};
  }

  EV compileBinary(const Expr &E, size_t Depth) {
    // Short-circuit logic first, like the interpreter.
    if (E.Op == TokenKind::AmpAmp || E.Op == TokenKind::PipePipe) {
      size_t Mark = CS->Code.size();
      EV Lhs = compileBool(*E.Operands[0], Depth + 1);
      if (Lhs.Const) {
        // Absorbing element: the RHS is never evaluated (so a trap inside
        // it must not be emitted). Neutral element: the result IS the
        // RHS-as-bool. Either way the constant LHS code is pure.
        rewind(Mark);
        if (E.Op == TokenKind::AmpAmp && !Lhs.Const->B)
          return materialize(CVal::boolean(false));
        if (E.Op == TokenKind::PipePipe && Lhs.Const->B)
          return materialize(CVal::boolean(true));
        return compileBool(*E.Operands[1], Depth + 1);
      }
      uint16_t MRhs;
      if (E.Op == TokenKind::AmpAmp) {
        if (CurMask == FullMask) {
          MRhs = Lhs.Reg;
        } else {
          MRhs = alloc(VType::Bool);
          emit(Op::AndBool, MRhs, CurMask, Lhs.Reg);
        }
      } else {
        MRhs = alloc(VType::Bool);
        if (CurMask == FullMask)
          emit(Op::NotBool, MRhs, Lhs.Reg);
        else
          emit(Op::AndNotBool, MRhs, CurMask, Lhs.Reg);
      }
      uint16_t Saved = CurMask;
      CurMask = MRhs;
      EV Rhs = compileBool(*E.Operands[1], Depth + 1);
      CurMask = Saved;
      // Lanes the RHS never ran on read its zero-initialized (false)
      // register, which is absorbed by the combine below.
      uint16_t R = alloc(VType::Bool);
      emit(E.Op == TokenKind::AmpAmp ? Op::AndBool : Op::OrBool, R, Lhs.Reg,
           Rhs.Reg);
      return EV{VType::Bool, R, std::nullopt};
    }

    size_t Mark = CS->Code.size();
    EV Lhs = compileExpr(*E.Operands[0], Depth + 1);
    EV Rhs = compileExpr(*E.Operands[1], Depth + 1);
    if (Lhs.Const && Rhs.Const)
      if (std::optional<CVal> Folded = foldBinary(E.Op, *Lhs.Const,
                                                  *Rhs.Const)) {
        rewind(Mark);
        return materialize(std::move(*Folded));
      }

    bool BothStrings = Lhs.T == VType::Str && Rhs.T == VType::Str;
    switch (E.Op) {
    case TokenKind::Plus:
      if (BothStrings) {
        uint16_t R = alloc(VType::Str);
        emit(Op::ConcatStr, R, Lhs.Reg, Rhs.Reg);
        return EV{VType::Str, R, std::nullopt};
      }
      break;
    case TokenKind::EqualEqual:
    case TokenKind::BangEqual: {
      uint16_t R = alloc(VType::Bool);
      if (BothStrings) {
        emit(E.Op == TokenKind::EqualEqual ? Op::EqStr : Op::NeStr, R,
             Lhs.Reg, Rhs.Reg);
        return EV{VType::Bool, R, std::nullopt};
      }
      if (Lhs.T == VType::Str || Rhs.T == VType::Str) {
        // Mixed string/non-string never compares equal — but the
        // interpreter still evaluated both operands, so their code (and
        // any traps in it) stays.
        emit(Op::LoadBool, R).Imm = E.Op == TokenKind::BangEqual ? 1.0 : 0.0;
        return EV{VType::Bool, R, std::nullopt};
      }
      uint16_t A = toNumeric(Lhs, E.Line);
      uint16_t B = toNumeric(Rhs, E.Line);
      emit(E.Op == TokenKind::EqualEqual ? Op::EqNum : Op::NeNum, R, A, B);
      return EV{VType::Bool, R, std::nullopt};
    }
    case TokenKind::Less:
    case TokenKind::LessEqual:
    case TokenKind::Greater:
    case TokenKind::GreaterEqual:
      if (BothStrings) {
        uint16_t R = alloc(VType::Bool);
        Op O = E.Op == TokenKind::Less        ? Op::LtStr
               : E.Op == TokenKind::LessEqual ? Op::LeStr
               : E.Op == TokenKind::Greater   ? Op::GtStr
                                              : Op::GeStr;
        emit(O, R, Lhs.Reg, Rhs.Reg);
        return EV{VType::Bool, R, std::nullopt};
      }
      break;
    default:
      break;
    }

    // Numeric path; the interpreter coerces LHS first, so its trap fires
    // first.
    uint16_t A = toNumeric(Lhs, E.Line);
    uint16_t B = toNumeric(Rhs, E.Line);
    switch (E.Op) {
    case TokenKind::Plus:
    case TokenKind::Minus:
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent: {
      uint16_t R = alloc(VType::Num);
      Op O = E.Op == TokenKind::Plus    ? Op::AddNum
             : E.Op == TokenKind::Minus ? Op::SubNum
             : E.Op == TokenKind::Star  ? Op::MulNum
             : E.Op == TokenKind::Slash ? Op::DivNum
                                        : Op::ModNum;
      emit(O, R, A, B);
      return EV{VType::Num, R, std::nullopt};
    }
    case TokenKind::Less:
    case TokenKind::LessEqual:
    case TokenKind::Greater:
    case TokenKind::GreaterEqual: {
      uint16_t R = alloc(VType::Bool);
      Op O = E.Op == TokenKind::Less        ? Op::LtNum
             : E.Op == TokenKind::LessEqual ? Op::LeNum
             : E.Op == TokenKind::Greater   ? Op::GtNum
                                            : Op::GeNum;
      emit(O, R, A, B);
      return EV{VType::Bool, R, std::nullopt};
    }
    default:
      return trap("unsupported operator", E.Line, VType::Num);
    }
  }

  /// The interpreter's AsNumber: number passes, bool coerces, string is a
  /// runtime error at the BINARY expression's line.
  uint16_t toNumeric(const EV &V, size_t Line) {
    switch (V.T) {
    case VType::Num:
      return V.Reg;
    case VType::Bool: {
      uint16_t R = alloc(VType::Num);
      emit(Op::BoolToNum, R, V.Reg);
      return R;
    }
    case VType::Str:
      return trap("string operand in numeric expression", Line, VType::Num)
          .Reg;
    }
    return V.Reg;
  }

  EV nodeContextTrap(const std::string &Fn, size_t Line, VType T,
                     bool LongForm) {
    std::string Msg = "'" + Fn + "()' needs a node context";
    if (LongForm)
      Msg += " (use it in 'derive', 'prune', or 'keep')";
    return trap(std::move(Msg), Line, T);
  }

  EV compileCall(const Expr &E, size_t Depth) {
    const std::string &Fn = E.Text;
    size_t Argc = E.Operands.size();
    auto WrongArity = [&](const char *Expected, VType T) {
      return trap("'" + Fn + "' expects " + std::string(Expected) +
                      " argument(s)",
                  E.Line, T);
    };

    // Node-context builtins.
    if (Fn == "metric" || Fn == "exclusive" || Fn == "inclusive") {
      if (Argc != 1)
        return WrongArity("1", VType::Num);
      EV Name = compileString(*E.Operands[0], Depth + 1);
      if (!NodeCtx)
        return nodeContextTrap(Fn, E.Line, VType::Num, false);
      uint16_t R = alloc(VType::Num);
      Instr &I =
          emit(Fn == "inclusive" ? Op::MetricIncl : Op::MetricExcl, R,
               Name.Reg);
      I.Line = static_cast<uint32_t>(E.Line);
      if (Name.Const)
        I.Slot = addSlot(Name.Const->S);
      return EV{VType::Num, R, std::nullopt};
    }
    if (Fn == "total") {
      if (Argc != 1)
        return WrongArity("1", VType::Num);
      EV Name = compileString(*E.Operands[0], Depth + 1);
      uint16_t R = alloc(VType::Num);
      Instr &I = emit(Op::TotalOp, R, Name.Reg);
      I.Line = static_cast<uint32_t>(E.Line);
      if (Name.Const)
        I.Slot = addSlot(Name.Const->S);
      return EV{VType::Num, R, std::nullopt};
    }
    if (Fn == "nodecount") {
      if (Argc != 0)
        return WrongArity("0", VType::Num);
      uint16_t R = alloc(VType::Num);
      emit(Op::NodeCountOp, R);
      return EV{VType::Num, R, std::nullopt};
    }
    if (Fn == "name" || Fn == "file" || Fn == "module" || Fn == "kind") {
      if (Argc != 0)
        return WrongArity("0", VType::Str);
      if (!NodeCtx)
        return nodeContextTrap(Fn, E.Line, VType::Str, true);
      uint16_t R = alloc(VType::Str);
      Op O = Fn == "name"     ? Op::NodeName
             : Fn == "file"   ? Op::NodeFile
             : Fn == "module" ? Op::NodeModule
                              : Op::NodeKind;
      emit(O, R);
      return EV{VType::Str, R, std::nullopt};
    }
    if (Fn == "line") {
      if (Argc != 0)
        return WrongArity("0", VType::Num);
      if (!NodeCtx)
        return nodeContextTrap(Fn, E.Line, VType::Num, true);
      uint16_t R = alloc(VType::Num);
      emit(Op::NodeLine, R);
      return EV{VType::Num, R, std::nullopt};
    }
    if (Fn == "depth") {
      if (Argc != 0)
        return WrongArity("0", VType::Num);
      if (!NodeCtx)
        return nodeContextTrap(Fn, E.Line, VType::Num, false);
      uint16_t R = alloc(VType::Num);
      emit(Op::NodeDepth, R);
      return EV{VType::Num, R, std::nullopt};
    }
    if (Fn == "nchildren") {
      if (Argc != 0)
        return WrongArity("0", VType::Num);
      if (!NodeCtx)
        return nodeContextTrap(Fn, E.Line, VType::Num, false);
      uint16_t R = alloc(VType::Num);
      emit(Op::NodeChildren, R);
      return EV{VType::Num, R, std::nullopt};
    }
    if (Fn == "isleaf") {
      if (Argc != 0)
        return WrongArity("0", VType::Bool);
      if (!NodeCtx)
        return nodeContextTrap(Fn, E.Line, VType::Bool, false);
      uint16_t R = alloc(VType::Bool);
      emit(Op::NodeIsLeaf, R);
      return EV{VType::Bool, R, std::nullopt};
    }
    if (Fn == "parentname") {
      if (Argc != 0)
        return WrongArity("0", VType::Str);
      if (!NodeCtx)
        return nodeContextTrap(Fn, E.Line, VType::Str, false);
      uint16_t R = alloc(VType::Str);
      emit(Op::NodeParentName, R);
      return EV{VType::Str, R, std::nullopt};
    }
    if (Fn == "hasancestor") {
      if (Argc != 1)
        return WrongArity("1", VType::Bool);
      EV Name = compileString(*E.Operands[0], Depth + 1);
      if (!NodeCtx)
        return nodeContextTrap(Fn, E.Line, VType::Bool, false);
      uint16_t R = alloc(VType::Bool);
      emit(Op::HasAncestor, R, Name.Reg);
      return EV{VType::Bool, R, std::nullopt};
    }
    if (Fn == "share") {
      if (Argc != 1)
        return WrongArity("1", VType::Num);
      EV Name = compileString(*E.Operands[0], Depth + 1);
      if (!NodeCtx)
        return nodeContextTrap(Fn, E.Line, VType::Num, false);
      uint16_t R = alloc(VType::Num);
      Instr &I = emit(Op::ShareOp, R, Name.Reg);
      I.Line = static_cast<uint32_t>(E.Line);
      if (Name.Const)
        I.Slot = addSlot(Name.Const->S);
      return EV{VType::Num, R, std::nullopt};
    }

    // Pure numeric builtins.
    if (Fn == "min" || Fn == "max" || Fn == "ratio") {
      if (Argc != 2)
        return WrongArity("2", VType::Num);
      size_t Mark = CS->Code.size();
      EV A = compileNumber(*E.Operands[0], Depth + 1);
      EV B = compileNumber(*E.Operands[1], Depth + 1);
      if (A.Const && B.Const) {
        rewind(Mark);
        double X = A.Const->N, Y = B.Const->N;
        double F = Fn == "min"   ? std::min(X, Y)
                   : Fn == "max" ? std::max(X, Y)
                                 : (Y == 0.0 ? 0.0 : X / Y);
        return materialize(CVal::num(F));
      }
      uint16_t R = alloc(VType::Num);
      // ratio() shares DivNum: its zero-denominator guard IS the ratio
      // semantics.
      Op O = Fn == "min" ? Op::MinNum : Fn == "max" ? Op::MaxNum : Op::DivNum;
      emit(O, R, A.Reg, B.Reg);
      return EV{VType::Num, R, std::nullopt};
    }
    if (Fn == "abs" || Fn == "log" || Fn == "sqrt" || Fn == "floor" ||
        Fn == "ceil") {
      if (Argc != 1)
        return WrongArity("1", VType::Num);
      size_t Mark = CS->Code.size();
      EV A = compileNumber(*E.Operands[0], Depth + 1);
      if (A.Const) {
        rewind(Mark);
        double X = A.Const->N;
        double F = Fn == "abs"    ? std::abs(X)
                   : Fn == "log"  ? (X > 0 ? std::log(X) : 0.0)
                   : Fn == "sqrt" ? (X >= 0 ? std::sqrt(X) : 0.0)
                   : Fn == "floor" ? std::floor(X)
                                   : std::ceil(X);
        return materialize(CVal::num(F));
      }
      uint16_t R = alloc(VType::Num);
      Op O = Fn == "abs"    ? Op::AbsNum
             : Fn == "log"  ? Op::LogNum
             : Fn == "sqrt" ? Op::SqrtNum
             : Fn == "floor" ? Op::FloorNum
                             : Op::CeilNum;
      emit(O, R, A.Reg);
      return EV{VType::Num, R, std::nullopt};
    }

    // String builtins.
    if (Fn == "contains" || Fn == "startswith" || Fn == "endswith") {
      if (Argc != 2)
        return WrongArity("2", VType::Bool);
      size_t Mark = CS->Code.size();
      EV A = compileString(*E.Operands[0], Depth + 1);
      EV B = compileString(*E.Operands[1], Depth + 1);
      if (A.Const && B.Const) {
        rewind(Mark);
        bool F = Fn == "contains"
                     ? A.Const->S.find(B.Const->S) != std::string::npos
                 : Fn == "startswith" ? startsWith(A.Const->S, B.Const->S)
                                      : endsWith(A.Const->S, B.Const->S);
        return materialize(CVal::boolean(F));
      }
      uint16_t R = alloc(VType::Bool);
      Op O = Fn == "contains"     ? Op::ContainsStr
             : Fn == "startswith" ? Op::StartsWithStr
                                  : Op::EndsWithStr;
      emit(O, R, A.Reg, B.Reg);
      return EV{VType::Bool, R, std::nullopt};
    }
    if (Fn == "str") {
      if (Argc != 1)
        return WrongArity("1", VType::Str);
      size_t Mark = CS->Code.size();
      EV V = compileExpr(*E.Operands[0], Depth + 1);
      if (V.Const) {
        rewind(Mark);
        return materialize(CVal::str(V.Const->render()));
      }
      uint16_t R = alloc(VType::Str);
      Op O = V.T == VType::Num    ? Op::StrFromNum
             : V.T == VType::Bool ? Op::StrFromBool
                                  : Op::CopyStr;
      emit(O, R, V.Reg);
      return EV{VType::Str, R, std::nullopt};
    }
    if (Fn == "fmt") {
      if (Argc != 2)
        return WrongArity("2", VType::Str);
      size_t Mark = CS->Code.size();
      EV A = compileNumber(*E.Operands[0], Depth + 1);
      EV D = compileNumber(*E.Operands[1], Depth + 1);
      if (A.Const && D.Const) {
        rewind(Mark);
        return materialize(
            CVal::str(renderFormatted(A.Const->N, D.Const->N)));
      }
      uint16_t R = alloc(VType::Str);
      emit(Op::FmtStr, R, A.Reg, D.Reg);
      return EV{VType::Str, R, std::nullopt};
    }

    // The interpreter reports an unknown function without evaluating its
    // operands, so no operand code is emitted here either.
    return trap("unknown function '" + Fn + "'", E.Line, VType::Num);
  }
};

} // namespace

std::shared_ptr<const CompiledProgram>
compileProgram(const Program &Prog, const AnalysisLimits &Limits) {
  auto Out = std::make_shared<CompiledProgram>();
  try {
    Lowering L(Limits, *Out);
    for (const Stmt &St : Prog.Statements)
      L.lowerStmt(St);
  } catch (const Unsupported &) {
    return nullptr;
  }
  return Out;
}

uint64_t hashProgramSource(std::string_view Source) {
  uint64_t H = 1469598103934665603ULL; // FNV offset basis.
  for (unsigned char C : Source) {
    H ^= C;
    H *= 1099511628211ULL; // FNV prime.
  }
  return H;
}

std::string programCacheKey(std::string_view Source, int64_t ProfileId,
                            uint64_t Generation) {
  return "evql|" + std::to_string(hashProgramSource(Source)) + ':' +
         std::to_string(Source.size()) + '|' + std::to_string(ProfileId) +
         '|' + std::to_string(Generation);
}

std::shared_ptr<const CompiledProgram>
ProgramCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Lru.splice(Lru.begin(), Lru, It->second);
  Hits.fetch_add(1, std::memory_order_relaxed);
  return It->second->Prog;
}

void ProgramCache::insert(const std::string &Key,
                          std::shared_ptr<const CompiledProgram> Prog) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    It->second->Prog = std::move(Prog);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.push_front(Entry{Key, std::move(Prog)});
  Index[Key] = Lru.begin();
  while (Lru.size() > Capacity) {
    Index.erase(Lru.back().Key);
    Lru.pop_back();
  }
}

size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Lru.size();
}

} // namespace evql
} // namespace ev
