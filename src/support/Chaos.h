//===- support/Chaos.h - Deterministic fault injection --------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded fault injection for resilience testing. A FaultInjector derives
/// a deterministic fault schedule from an ev::Rng seed and applies it to
/// the two untrusted boundaries of a PVP session:
///
///   - the wire transport: frame truncation, bit flips in bodies, corrupt
///     Content-Length headers, and inter-frame garbage
///     (mutateFrame/garbage), plus split reads and simulated delays
///     (ChaosStream, which delivers a byte stream in seeded fragments —
///     empty fragments stand in for delivery delays);
///   - file I/O: transient read failures (shouldFailRead, wired into
///     support/FileIo.h's setReadFaultHook) that exercise the bounded
///     retry/backoff paths.
///
/// The same seed always produces the same schedule, so every chaos-test
/// failure replays exactly.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_CHAOS_H
#define EASYVIEW_SUPPORT_CHAOS_H

#include "support/Rng.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ev {
namespace chaos {

/// The kinds of fault the injector can produce.
enum class FaultKind : uint8_t {
  Truncate,      ///< Frame loses its tail bytes.
  BitFlip,       ///< Random bits flipped inside a frame body.
  CorruptHeader, ///< Content-Length header mangled (garbage/negative/huge).
  Garbage,       ///< Random bytes inserted between frames.
  TransientIo,   ///< A file read attempt fails recoverably.
  KindCount,
};

/// Per-operation fault probabilities; the defaults make a multi-request
/// session see several faults per seed without drowning in them.
struct FaultProfile {
  double TruncateProb = 0.12;
  double BitFlipProb = 0.15;
  double CorruptHeaderProb = 0.12;
  double GarbageProb = 0.12;
  double TransientIoProb = 0.4; ///< Per read attempt.
  size_t MinChunk = 1;          ///< Smallest split-read fragment.
  size_t MaxChunk = 64;         ///< Largest split-read fragment.
  double DelayProb = 0.1;       ///< Chance of an empty (delay) fragment.
};

/// Derives and applies a deterministic fault schedule.
class FaultInjector {
public:
  explicit FaultInjector(uint64_t Seed, FaultProfile Profile = {})
      : R(Seed), Profile(Profile), Seed(Seed) {}

  /// Possibly mutates one framed message (header + body) according to the
  /// schedule. At most one fault kind is applied per frame so failures
  /// stay attributable.
  std::string mutateFrame(std::string Frame);

  /// \returns seeded garbage of up to \p MaxLen bytes for inter-frame
  /// injection, or "" when the schedule skips it.
  std::string garbage(size_t MaxLen);

  /// File-read schedule: \returns true when the read at \p Attempt
  /// (0-based) should fail transiently. Attempts at or past the retry
  /// horizon always succeed so bounded backoff provably recovers.
  bool shouldFailRead(unsigned Attempt);

  /// Total faults injected so far.
  size_t faultCount() const { return TotalFaults; }
  /// Faults injected of one kind.
  size_t faultCount(FaultKind Kind) const {
    return Counts[static_cast<size_t>(Kind)];
  }

  uint64_t seed() const { return Seed; }
  Rng &rng() { return R; }
  const FaultProfile &profile() const { return Profile; }

private:
  void record(FaultKind Kind) {
    ++TotalFaults;
    ++Counts[static_cast<size_t>(Kind)];
  }

  Rng R;
  FaultProfile Profile;
  uint64_t Seed;
  size_t TotalFaults = 0;
  size_t Counts[static_cast<size_t>(FaultKind::KindCount)] = {};
};

/// Delivers a byte stream in seeded fragments, modelling a transport that
/// splits, batches, and stalls arbitrarily. Fragment boundaries routinely
/// fall inside headers and bodies; empty fragments model delays.
class ChaosStream {
public:
  ChaosStream(std::string Bytes, FaultInjector &Injector)
      : Bytes(std::move(Bytes)), Injector(Injector) {}

  /// \returns the next fragment, or std::nullopt once drained. Fragments
  /// may be empty (a simulated delay tick).
  std::optional<std::string> next();

  bool done() const { return Pos >= Bytes.size(); }
  size_t fragmentsDelivered() const { return Fragments; }

private:
  std::string Bytes;
  FaultInjector &Injector;
  size_t Pos = 0;
  size_t Fragments = 0;
};

} // namespace chaos
} // namespace ev

#endif // EASYVIEW_SUPPORT_CHAOS_H
