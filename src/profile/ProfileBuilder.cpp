//===- profile/ProfileBuilder.cpp - High-level data builder ---------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileBuilder.h"

#include <cassert>

namespace ev {

ProfileBuilder::ProfileBuilder(std::string Name) {
  P.setName(std::move(Name));
}

MetricId ProfileBuilder::addMetric(std::string_view Name,
                                   std::string_view Unit,
                                   MetricAggregation Aggregation) {
  return P.addMetric(Name, Unit, Aggregation);
}

FrameId ProfileBuilder::functionFrame(std::string_view Name,
                                      std::string_view File, uint32_t Line,
                                      std::string_view Module,
                                      uint64_t Address) {
  return frame(FrameKind::Function, Name, File, Line, Module, Address);
}

FrameId ProfileBuilder::dataFrame(std::string_view Name,
                                  std::string_view File, uint32_t Line) {
  return frame(FrameKind::DataObject, Name, File, Line, "", 0);
}

FrameId ProfileBuilder::frame(FrameKind Kind, std::string_view Name,
                              std::string_view File, uint32_t Line,
                              std::string_view Module, uint64_t Address) {
  Frame F;
  F.Kind = Kind;
  F.Name = P.strings().intern(Name);
  F.Loc.File = P.strings().intern(File);
  F.Loc.Line = Line;
  F.Loc.Module = P.strings().intern(Module);
  F.Loc.Address = Address;
  return P.internFrame(F);
}

NodeId ProfileBuilder::childFor(NodeId Parent, FrameId F) {
  uint64_t Key = (static_cast<uint64_t>(Parent) << 32) | F;
  auto It = ChildIndex.find(Key);
  if (It != ChildIndex.end())
    return It->second;
  NodeId Child = P.createNode(Parent, F);
  ChildIndex.emplace(Key, Child);
  return Child;
}

NodeId ProfileBuilder::pushPath(std::span<const FrameId> Path) {
  NodeId Cur = P.root();
  for (FrameId F : Path)
    Cur = childFor(Cur, F);
  return Cur;
}

NodeId ProfileBuilder::addSample(std::span<const FrameId> Path,
                                 MetricId Metric, double Value) {
  NodeId Leaf = pushPath(Path);
  P.node(Leaf).addMetric(Metric, Value);
  return Leaf;
}

void ProfileBuilder::addValue(NodeId Node, MetricId Metric, double Value) {
  P.node(Node).addMetric(Metric, Value);
}

void ProfileBuilder::addGroup(std::string_view Kind,
                              std::span<const NodeId> Contexts,
                              MetricId Metric, double Value) {
  ContextGroup Group;
  Group.Kind = P.strings().intern(Kind);
  Group.Contexts.assign(Contexts.begin(), Contexts.end());
  Group.Metric = Metric;
  Group.Value = Value;
  P.addGroup(std::move(Group));
}

Profile ProfileBuilder::take() {
  // Integrity is enforced structurally (createNode keeps parent/child links
  // symmetric); tests call Profile::verify() explicitly, and the loaders
  // verify untrusted inputs. Verifying here would tax the hot build path
  // that the response-time experiment (Fig. 5) measures.
  return std::move(P);
}

} // namespace ev
