//===- workload/GrpcLeakWorkload.h - Fig. 4 memory-leak case study --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes the paper's cloud-domain case study (§VII-C1, Fig. 4): a Go
/// gRPC client benchmark (rpcx-benchmark) profiled with PProf's heap
/// profiler, capturing an active-memory snapshot every 0.1s. Two
/// allocation contexts leak — transport.newBufWriter and
/// bufio.NewReaderSize, both invoked when creating new HTTP clients whose
/// connections are never closed — so their active bytes stay continuously
/// high with no reclamation. The passthrough context allocates heavily but
/// its memory diminishes by the end of the run (not a leak).
///
/// The generator reproduces those three series plus stationary background
/// allocations, and exposes the ground truth so tests can score the leak
/// detector.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_WORKLOAD_GRPCLEAKWORKLOAD_H
#define EASYVIEW_WORKLOAD_GRPCLEAKWORKLOAD_H

#include "profile/Profile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ev {
namespace workload {

struct GrpcLeakOptions {
  uint64_t Seed = 7;
  size_t Snapshots = 300; ///< 30 seconds at 0.1s per snapshot.
  double LeakBytesPerSnapshot = 64 * 1024.0;
};

struct GrpcLeakWorkload {
  /// Time-ordered heap snapshots; metric "active-bytes" per allocation
  /// context (gauge semantics: each snapshot holds the active amount).
  std::vector<Profile> Snapshots;
  /// Leaf function names of the true leaking contexts.
  std::vector<std::string> LeakingFunctions;
  /// Leaf function names of heavy-but-healthy contexts.
  std::vector<std::string> HealthyFunctions;
};

GrpcLeakWorkload generateGrpcLeakWorkload(const GrpcLeakOptions &Options = {});

} // namespace workload
} // namespace ev

#endif // EASYVIEW_WORKLOAD_GRPCLEAKWORKLOAD_H
