//===- tests/net_test.cpp - Socket transport robustness -------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the real-socket transport (net/NetServer.h): TCP and Unix-domain
/// round trips byte-compared to the in-process server, incremental-feed
/// framing at every split offset, the timeout/backpressure/shed/parse drop
/// paths with their telemetry attribution, SIGPIPE-proof writes, graceful
/// drain (including a cancel storm mid-drain), and seeded chaos feeds. The
/// `easyview_net` ctest entry (and the tsan preset) runs exactly these
/// suites, so every name starts with "Net".
///
//===----------------------------------------------------------------------===//

#include "ide/JsonRpc.h"
#include "ide/PvpServer.h"
#include "ide/SessionManager.h"
#include "net/NetServer.h"
#include "net/Socket.h"
#include "proto/EvProf.h"
#include "support/Chaos.h"
#include "support/Strings.h"
#include "support/Telemetry.h"

#include "TestHelpers.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

using namespace ev;

namespace {

uint64_t counterValue(const char *Name) {
  return telemetry::Registry::global().counter(Name).value();
}

/// Spins until \p Pred holds or \p TimeoutMs elapses.
template <typename Pred> bool waitUntil(Pred &&P, int TimeoutMs = 5000) {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMs);
  while (!P()) {
    if (std::chrono::steady_clock::now() >= Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

int errorCodeOf(const json::Value &Response) {
  const json::Value *E = Response.asObject().find("error");
  if (!E)
    return 0;
  return static_cast<int>(E->asObject().find("code")->asInt());
}

const json::Object *resultOf(const json::Value &Response) {
  const json::Value *R = Response.asObject().find("result");
  return R ? &R->asObject() : nullptr;
}

json::Value openRequest(int64_t ReqId, const std::string &Bytes) {
  json::Object P;
  P.set("name", "net.evprof");
  P.set("dataBase64", base64Encode(Bytes));
  return rpc::makeRequest(ReqId, "pvp/open", std::move(P));
}

json::Value flameRequest(int64_t ReqId, int64_t Prof, int64_t MaxRects = 128) {
  json::Object P;
  P.set("profile", Prof);
  P.set("maxRects", MaxRects);
  return rpc::makeRequest(ReqId, "pvp/flame", std::move(P));
}

json::Value treeTableRequest(int64_t ReqId, int64_t Prof) {
  json::Object P;
  P.set("profile", Prof);
  return rpc::makeRequest(ReqId, "pvp/treeTable", std::move(P));
}

json::Value searchRequest(int64_t ReqId, int64_t Prof,
                          const std::string &Pattern) {
  json::Object P;
  P.set("profile", Prof);
  P.set("pattern", Pattern);
  return rpc::makeRequest(ReqId, "pvp/search", std::move(P));
}

json::Value cancelNotification(int64_t ReqId, int64_t TargetId) {
  json::Object P;
  P.set("id", TargetId);
  return rpc::makeRequest(ReqId, "$/cancelRequest", std::move(P));
}

/// A blocking test client over one socket fd: framed sends, deadline reads.
struct NetClient {
  int Fd = -1;
  rpc::FrameReader Reader;

  explicit NetClient(int Fd) : Fd(Fd) {}
  NetClient(NetClient &&O) : Fd(O.Fd), Reader(std::move(O.Reader)) {
    O.Fd = -1;
  }
  ~NetClient() { net::closeSocket(Fd); }

  static NetClient connectTcp(const std::string &HostPort) {
    Result<int> Fd = net::connectTcp(HostPort);
    EXPECT_TRUE(bool(Fd)) << (Fd ? "" : Fd.error());
    return NetClient(Fd ? *Fd : -1);
  }
  static NetClient connectUnix(const std::string &Path) {
    Result<int> Fd = net::connectUnix(Path);
    EXPECT_TRUE(bool(Fd)) << (Fd ? "" : Fd.error());
    return NetClient(Fd ? *Fd : -1);
  }

  bool sendRaw(std::string_view Bytes) {
    size_t Sent = 0;
    while (Sent < Bytes.size()) {
      ssize_t N =
          net::sendNoSignal(Fd, Bytes.data() + Sent, Bytes.size() - Sent);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Sent += static_cast<size_t>(N);
    }
    return true;
  }

  bool send(const json::Value &Payload) { return sendRaw(rpc::frame(Payload)); }

  /// \returns the next framed message, or nullopt on timeout/EOF. Framing
  /// errors fail the test (clients of a healthy server never see them).
  std::optional<json::Value> readFrame(int TimeoutMs = 10000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    for (;;) {
      if (std::optional<json::Value> Msg = Reader.poll()) {
        EXPECT_TRUE(Reader.takeErrors().empty());
        return Msg;
      }
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - std::chrono::steady_clock::now())
                      .count();
      if (Left <= 0)
        return std::nullopt;
      pollfd P{Fd, POLLIN, 0};
      if (::poll(&P, 1, static_cast<int>(Left)) <= 0)
        continue;
      char Buf[4096];
      ssize_t N = ::read(Fd, Buf, sizeof(Buf));
      if (N == 0)
        return std::nullopt; // EOF.
      if (N < 0) {
        if (errno == EINTR || errno == EAGAIN)
          continue;
        return std::nullopt; // Reset by the server (a drop).
      }
      Reader.feed(std::string_view(Buf, static_cast<size_t>(N)));
    }
  }

  /// \returns true once the server has closed this connection (EOF or
  /// reset) within \p TimeoutMs, draining any pending replies first.
  bool waitForClose(int TimeoutMs = 5000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    for (;;) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - std::chrono::steady_clock::now())
                      .count();
      if (Left <= 0)
        return false;
      pollfd P{Fd, POLLIN, 0};
      if (::poll(&P, 1, static_cast<int>(Left)) <= 0)
        continue;
      char Buf[4096];
      ssize_t N = ::read(Fd, Buf, sizeof(Buf));
      if (N == 0)
        return true;
      if (N < 0 && errno != EINTR && errno != EAGAIN)
        return true; // ECONNRESET counts as closed.
    }
  }
};

/// A manager + server bound to a fresh loopback port, with captured logs.
struct ServerFixture {
  std::mutex LogMutex;
  std::vector<std::string> Logs;
  SessionManager Manager;
  net::NetServer Server;

  explicit ServerFixture(net::NetServerOptions NOpts = {},
                         SessionManager::Options MOpts = {})
      : Manager(withDefaults(MOpts)), Server(Manager, captureLog(NOpts)) {
    Result<bool> Bound = Server.listenTcp("127.0.0.1:0");
    EXPECT_TRUE(bool(Bound)) << (Bound ? "" : Bound.error());
    Result<bool> Started = Server.start();
    EXPECT_TRUE(bool(Started)) << (Started ? "" : Started.error());
  }

  NetClient connect() { return NetClient::connectTcp(Server.boundAddress()); }

  bool sawLog(const std::string &Needle) {
    std::lock_guard<std::mutex> Lock(LogMutex);
    for (const std::string &L : Logs)
      if (L.find(Needle) != std::string::npos)
        return true;
    return false;
  }

private:
  static SessionManager::Options withDefaults(SessionManager::Options O) {
    return O;
  }
  net::NetServerOptions captureLog(net::NetServerOptions O) {
    O.Log = [this](const std::string &Line) {
      std::lock_guard<std::mutex> Lock(LogMutex);
      Logs.push_back(Line);
    };
    return O;
  }
};

/// Replays a clean open + views script through \p Submit and returns every
/// view reply's dump (the open reply is excluded: profile ids legitimately
/// differ between a shared store and a standalone server).
std::vector<std::string>
replayViews(const std::string &OpenBytes,
            const std::function<json::Value(const json::Value &)> &Submit) {
  std::vector<std::string> Views;
  json::Value Opened = Submit(openRequest(1, OpenBytes));
  const json::Object *R = resultOf(Opened);
  EXPECT_NE(R, nullptr) << Opened.dump();
  int64_t Prof = R ? R->find("profile")->asInt() : -1;
  for (int I = 0; I < 12; ++I) {
    int64_t ReqId = 100 + I;
    json::Value Reply = (I % 3 == 0) ? Submit(treeTableRequest(ReqId, Prof))
                        : (I % 3 == 1)
                            ? Submit(flameRequest(ReqId, Prof))
                            : Submit(searchRequest(ReqId, Prof, "f"));
    Views.push_back(Reply.dump());
  }
  return Views;
}

} // namespace

//===----------------------------------------------------------------------===
// Round trips: socket replies must match the in-process server
//===----------------------------------------------------------------------===

TEST(NetRoundTrip, TcpMatchesInProcessServerByteForByte) {
  ServerFixture F;
  NetClient C = F.connect();
  std::string Bytes = writeEvProf(test::makeRandomProfile(42));

  std::vector<std::string> OverSocket =
      replayViews(Bytes, [&](const json::Value &Req) {
        EXPECT_TRUE(C.send(Req));
        std::optional<json::Value> Reply = C.readFrame();
        EXPECT_TRUE(Reply.has_value());
        return Reply ? *Reply : json::Value();
      });

  PvpServer Sequential;
  std::vector<std::string> Reference =
      replayViews(Bytes, [&](const json::Value &Req) {
        return Sequential.handleMessage(Req);
      });

  ASSERT_EQ(OverSocket.size(), Reference.size());
  for (size_t I = 0; I < Reference.size(); ++I)
    EXPECT_EQ(OverSocket[I], Reference[I]) << "view reply " << I;
}

TEST(NetRoundTrip, UnixDomainSocketServesIdenticalReplies) {
  std::string Path = "/tmp/easyview-net-test-" +
                     std::to_string(static_cast<unsigned>(getpid())) + ".sock";
  SessionManager Manager(SessionManager::Options{});
  net::NetServerOptions NOpts;
  NOpts.Log = [](const std::string &) {};
  net::NetServer Server(Manager, NOpts);
  Result<bool> Bound = Server.listenUnix(Path);
  ASSERT_TRUE(bool(Bound)) << (Bound ? "" : Bound.error());
  ASSERT_TRUE(bool(Server.start()));

  NetClient C = NetClient::connectUnix(Path);
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  std::vector<std::string> OverSocket =
      replayViews(Bytes, [&](const json::Value &Req) {
        EXPECT_TRUE(C.send(Req));
        std::optional<json::Value> Reply = C.readFrame();
        EXPECT_TRUE(Reply.has_value());
        return Reply ? *Reply : json::Value();
      });
  PvpServer Sequential;
  std::vector<std::string> Reference = replayViews(
      Bytes,
      [&](const json::Value &Req) { return Sequential.handleMessage(Req); });
  EXPECT_EQ(OverSocket, Reference);

  EXPECT_TRUE(Server.drain());
  // The socket file is reclaimed on shutdown.
  EXPECT_NE(access(Path.c_str(), F_OK), 0);
}

TEST(NetRoundTrip, PipelinedRequestsComeBackInOrder) {
  ServerFixture F;
  NetClient C = F.connect();
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  ASSERT_TRUE(C.send(openRequest(1, Bytes)));
  std::optional<json::Value> Opened = C.readFrame();
  ASSERT_TRUE(Opened.has_value());
  int64_t Prof = resultOf(*Opened)->find("profile")->asInt();

  // One burst, no interleaved reads: the strand must answer in FIFO order.
  std::string Burst;
  for (int64_t Id = 10; Id < 30; ++Id)
    Burst += rpc::frame(Id % 2 ? flameRequest(Id, Prof)
                               : treeTableRequest(Id, Prof));
  ASSERT_TRUE(C.sendRaw(Burst));
  for (int64_t Id = 10; Id < 30; ++Id) {
    std::optional<json::Value> Reply = C.readFrame();
    ASSERT_TRUE(Reply.has_value()) << "reply " << Id;
    EXPECT_EQ(Reply->asObject().find("id")->asInt(), Id);
    EXPECT_NE(resultOf(*Reply), nullptr);
  }
}

//===----------------------------------------------------------------------===
// Incremental feed: a frame split anywhere must parse identically
//===----------------------------------------------------------------------===

TEST(NetFrameSplit, EveryOffsetParsesIdenticallyToOneShot) {
  // A stream of frames with unlike shapes: tiny, nested params, a body
  // containing header-like text ("Content-Length:" inside a JSON string),
  // and a multi-kilobyte payload.
  std::string Stream;
  std::vector<json::Value> Payloads;
  {
    json::Object A;
    A.set("profile", 1);
    Payloads.push_back(rpc::makeRequest(1, "pvp/flame", std::move(A)));
    json::Object Inner;
    Inner.set("pattern", "Content-Length: 99\r\n\r\n{}");
    json::Object B;
    B.set("profile", 2);
    B.set("nested", std::move(Inner));
    Payloads.push_back(rpc::makeRequest(2, "pvp/search", std::move(B)));
    json::Object C;
    C.set("blob", std::string(4096, 'x'));
    Payloads.push_back(rpc::makeRequest(3, "pvp/open", std::move(C)));
    Payloads.push_back(rpc::makeNotification("$/cancelRequest, sort of",
                                             json::Object()));
    for (const json::Value &P : Payloads)
      Stream += rpc::frame(P);
  }

  // One-shot reference.
  std::vector<std::string> Reference;
  {
    rpc::FrameReader R;
    R.feed(Stream);
    while (std::optional<json::Value> M = R.poll())
      Reference.push_back(M->dump());
    EXPECT_TRUE(R.takeErrors().empty());
    ASSERT_EQ(Reference.size(), Payloads.size());
  }

  // Table-driven: split the stream at EVERY offset; both halves fed in
  // sequence must yield the same messages with zero errors, resyncs, or
  // dropped bytes — a frame boundary is never special.
  for (size_t Split = 0; Split <= Stream.size(); ++Split) {
    rpc::FrameReader R;
    std::vector<std::string> Got;
    R.feed(std::string_view(Stream).substr(0, Split));
    while (std::optional<json::Value> M = R.poll())
      Got.push_back(M->dump());
    R.feed(std::string_view(Stream).substr(Split));
    while (std::optional<json::Value> M = R.poll())
      Got.push_back(M->dump());
    ASSERT_EQ(Got, Reference) << "split at offset " << Split;
    ASSERT_TRUE(R.takeErrors().empty()) << "split at offset " << Split;
    ASSERT_EQ(R.resyncCount(), 0u) << "split at offset " << Split;
    ASSERT_EQ(R.droppedBytes(), 0u) << "split at offset " << Split;
    ASSERT_EQ(R.bufferedBytes(), 0u) << "split at offset " << Split;
  }
}

TEST(NetFrameSplit, ChunkedSocketDeliveryMatchesSingleWrite) {
  ServerFixture F;
  std::string Bytes = writeEvProf(test::makeFixedProfile());

  // Reference: whole request in one write.
  NetClient One = F.connect();
  ASSERT_TRUE(One.send(openRequest(1, Bytes)));
  std::optional<json::Value> RefOpen = One.readFrame();
  ASSERT_TRUE(RefOpen.has_value());
  int64_t RefProf = resultOf(*RefOpen)->find("profile")->asInt();
  ASSERT_TRUE(One.send(treeTableRequest(2, RefProf)));
  std::optional<json::Value> RefTable = One.readFrame();
  ASSERT_TRUE(RefTable.has_value());

  // Same script delivered in small chunks across many writes.
  NetClient Chunked = F.connect();
  std::string Frame = rpc::frame(openRequest(1, Bytes));
  for (size_t I = 0; I < Frame.size(); I += 97)
    ASSERT_TRUE(Chunked.sendRaw(
        std::string_view(Frame).substr(I, std::min<size_t>(97, Frame.size() - I))));
  std::optional<json::Value> Open = Chunked.readFrame();
  ASSERT_TRUE(Open.has_value());
  int64_t Prof = resultOf(*Open)->find("profile")->asInt();
  Frame = rpc::frame(treeTableRequest(2, Prof));
  for (size_t I = 0; I < Frame.size(); I += 7)
    ASSERT_TRUE(Chunked.sendRaw(
        std::string_view(Frame).substr(I, std::min<size_t>(7, Frame.size() - I))));
  std::optional<json::Value> Table = Chunked.readFrame();
  ASSERT_TRUE(Table.has_value());

  EXPECT_EQ(Table->dump(), RefTable->dump());
}

//===----------------------------------------------------------------------===
// SIGPIPE safety
//===----------------------------------------------------------------------===

TEST(NetSigpipe, WriteToClosedPeerIsErrnoNotFatalSignal) {
  net::ignoreSigpipe();
  int Pair[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Pair), 0);
  net::closeSocket(Pair[0]); // Peer vanishes.
  // The first write may succeed into the dead socket's buffer; keep
  // writing until the kernel reports the broken pipe. If SIGPIPE were
  // deliverable this loop would kill the process instead of returning.
  const char Byte = 'x';
  ssize_t Last = 0;
  for (int I = 0; I < 64 && Last >= 0; ++I)
    Last = net::sendNoSignal(Pair[1], &Byte, 1);
  EXPECT_LT(Last, 0);
  EXPECT_EQ(errno, EPIPE);
  net::closeSocket(Pair[1]);
}

TEST(NetSigpipe, ServerSurvivesPeerVanishingBeforeReply) {
  ServerFixture F;
  std::string Bytes = writeEvProf(test::makeRandomProfile(7));
  // Fire requests and slam the connection shut without reading: replies
  // hit a dead peer and must cost the connection, never the process.
  for (int Round = 0; Round < 4; ++Round) {
    NetClient C = F.connect();
    ASSERT_TRUE(C.send(openRequest(1, Bytes)));
    ASSERT_TRUE(C.send(flameRequest(2, 1, 4096)));
    // Destructor closes abruptly with replies (possibly) in flight.
  }
  EXPECT_TRUE(waitUntil([&] { return F.Server.activeConnections() == 0; }));
  // The server still serves a polite client correctly.
  NetClient C = F.connect();
  ASSERT_TRUE(C.send(openRequest(1, Bytes)));
  std::optional<json::Value> Reply = C.readFrame();
  ASSERT_TRUE(Reply.has_value());
  EXPECT_NE(resultOf(*Reply), nullptr);
  EXPECT_TRUE(F.Server.running());
}

//===----------------------------------------------------------------------===
// Drop paths: every server-initiated disconnect has a named, counted reason
//===----------------------------------------------------------------------===

TEST(NetTimeout, IdleConnectionDroppedAsIdleTimeout) {
  net::NetServerOptions NOpts;
  NOpts.IdleTimeoutMs = 100;
  ServerFixture F(NOpts);
  uint64_t Before = counterValue("net.drop.idleTimeout");
  NetClient C = F.connect();
  EXPECT_TRUE(C.waitForClose(5000)); // Sent nothing; the server hangs up.
  EXPECT_GE(counterValue("net.drop.idleTimeout"), Before + 1);
  EXPECT_GE(F.Server.droppedConnections(), 1u);
  EXPECT_TRUE(F.sawLog("idleTimeout"));
}

TEST(NetTimeout, SlowLorisFrameDroppedAsIdleTimeout) {
  net::NetServerOptions NOpts;
  NOpts.FrameTimeoutMs = 100;
  NOpts.IdleTimeoutMs = 60000; // Only the frame clock may fire.
  ServerFixture F(NOpts);
  uint64_t Before = counterValue("net.drop.idleTimeout");
  NetClient C = F.connect();
  // One byte every 20ms never finishes a header inside 100ms.
  std::string Frame = rpc::frame(flameRequest(1, 1));
  bool Closed = false;
  for (size_t I = 0; I < Frame.size() && !Closed; ++I) {
    if (!C.sendRaw(std::string_view(Frame).substr(I, 1)))
      Closed = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(Closed || C.waitForClose(5000));
  EXPECT_GE(counterValue("net.drop.idleTimeout"), Before + 1);
  EXPECT_TRUE(F.sawLog("slow-loris"));
}

TEST(NetBackpressure, SlowReaderDroppedAtWriteQueueCap) {
  net::NetServerOptions NOpts;
  NOpts.MaxWriteQueueBytes = 16u << 10;
  NOpts.SendBufferBytes = 1; // Kernel clamps to its floor; still tiny.
  ServerFixture F(NOpts);
  uint64_t Before = counterValue("net.drop.writeBackpressure");
  NetClient C = F.connect();
  std::string Bytes = writeEvProf(test::makeRandomProfile(11));
  ASSERT_TRUE(C.send(openRequest(1, Bytes)));
  std::optional<json::Value> Opened = C.readFrame();
  ASSERT_TRUE(Opened.has_value());
  int64_t Prof = resultOf(*Opened)->find("profile")->asInt();
  // Large replies, never read: the kernel buffer fills, the outbox crosses
  // the cap, and the server cuts the connection instead of buffering on.
  for (int64_t Id = 2; Id < 40; ++Id)
    if (!C.send(flameRequest(Id, Prof, 100000)))
      break; // Already cut.
  EXPECT_TRUE(C.waitForClose(10000));
  EXPECT_GE(counterValue("net.drop.writeBackpressure"), Before + 1);
  EXPECT_TRUE(F.sawLog("writeBackpressure"));
}

// Server-initiated pushes ride the same per-connection outbox as replies,
// so a subscriber that stops reading must hit the same write-queue cap and
// be dropped with the same attribution — not buffer without bound. Runs
// under the easyview_subscribe ctest entry (suite name), but lives here to
// reuse the socket fixtures.
TEST(SubscribeNet, FloodedSubscriberDroppedWithAttributedReason) {
  net::NetServerOptions NOpts;
  // Big enough for any single reply or push frame (initial full views run
  // ~300 KiB here); small enough that a few unread push sweeps cross it.
  NOpts.MaxWriteQueueBytes = 1u << 20;
  NOpts.SendBufferBytes = 1; // Kernel clamps to its floor; still tiny.
  ServerFixture F(NOpts);
  uint64_t DropsBefore = counterValue("net.connectionsDropped");
  uint64_t BackpressureBefore = counterValue("net.drop.writeBackpressure");
  uint64_t ByReasonBefore = counterValue("net.drop.idleTimeout") +
                            counterValue("net.drop.writeBackpressure") +
                            counterValue("net.drop.maxConnections") +
                            counterValue("net.drop.parseError");

  // A wide base (~3k leaves) makes every push carry a realistically sized
  // row-order array; ten appendable sections then fan out pushes.
  std::vector<std::string> Stages = test::growthStageBytes(11, 3000);
  NetClient C = F.connect();
  ASSERT_TRUE(C.send(openRequest(1, Stages[0])));
  std::optional<json::Value> Opened = C.readFrame();
  ASSERT_TRUE(Opened.has_value());
  int64_t Prof = resultOf(*Opened)->find("profile")->asInt();

  // Establish the live subscriptions, reading each reply (each carries the
  // full initial view) so the outbox starts empty.
  for (int64_t Id = 2; Id < 34; ++Id) {
    json::Object P;
    P.set("profile", Prof);
    P.set("view", "flame");
    json::Object VP;
    VP.set("maxRects", static_cast<int64_t>(100000));
    P.set("params", json::Value(std::move(VP)));
    ASSERT_TRUE(C.send(rpc::makeRequest(Id, "pvp/subscribe", std::move(P))));
    std::optional<json::Value> Reply = C.readFrame();
    ASSERT_TRUE(Reply.has_value());
    ASSERT_NE(resultOf(*Reply), nullptr) << Reply->dump();
  }

  // Clamp the client's receive buffer to the kernel floor (and disable
  // autotuning, which can otherwise absorb tens of megabytes of unread
  // pushes) so the flood deterministically backs up into the server
  // outbox. Done after the setup reads above, which want a real window.
  int Rcv = 1;
  ASSERT_EQ(setsockopt(C.Fd, SOL_SOCKET, SO_RCVBUF, &Rcv, sizeof(Rcv)), 0);

  // Now go silent and stream appends. The append replies are tiny; the
  // flood is the pushes — one pvp/viewDelta per subscription per section.
  // The kernel buffer fills, the outbox crosses the cap, and the server
  // cuts the subscriber instead of buffering on.
  for (size_t S = 0; S + 1 < Stages.size(); ++S) {
    json::Object AP;
    AP.set("profile", Prof);
    AP.set("dataBase64", base64Encode(test::sectionBytes(Stages, S)));
    if (!C.send(rpc::makeRequest(100 + static_cast<int64_t>(S), "pvp/append",
                                 std::move(AP))))
      break; // Already cut.
  }
  EXPECT_TRUE(C.waitForClose(10000));
  EXPECT_GE(counterValue("net.drop.writeBackpressure"), BackpressureBefore + 1);
  EXPECT_TRUE(F.sawLog("writeBackpressure"));
  // The drop invariant holds under pushes: every cut connection is
  // attributed to exactly one named reason.
  uint64_t Drops = counterValue("net.connectionsDropped") - DropsBefore;
  uint64_t ByReason = counterValue("net.drop.idleTimeout") +
                      counterValue("net.drop.writeBackpressure") +
                      counterValue("net.drop.maxConnections") +
                      counterValue("net.drop.parseError") - ByReasonBefore;
  EXPECT_EQ(Drops, ByReason);
}

TEST(NetShed, ConnectionsPastCapGetServerOverloadedError) {
  net::NetServerOptions NOpts;
  NOpts.MaxConnections = 2;
  ServerFixture F(NOpts);
  uint64_t Before = counterValue("net.drop.maxConnections");
  std::string Bytes = writeEvProf(test::makeFixedProfile());

  // Two served connections, verified live with a round trip each.
  std::vector<NetClient> Held;
  for (int I = 0; I < 2; ++I) {
    Held.push_back(F.connect());
    ASSERT_TRUE(Held.back().send(openRequest(1, Bytes)));
    ASSERT_TRUE(Held.back().readFrame().has_value());
  }
  // The third is shed: a clean JSON-RPC error, then close — a fleet spike
  // fails loudly instead of hanging editors.
  NetClient Third = F.connect();
  std::optional<json::Value> Reply = Third.readFrame();
  ASSERT_TRUE(Reply.has_value());
  EXPECT_EQ(errorCodeOf(*Reply), rpc::ServerOverloaded);
  EXPECT_TRUE(Third.waitForClose());
  EXPECT_GE(counterValue("net.drop.maxConnections"), Before + 1);
  // The held connections still work.
  ASSERT_TRUE(Held[0].send(flameRequest(5, 1)));
  EXPECT_TRUE(Held[0].readFrame().has_value());
}

TEST(NetParse, GarbagePreambleStillReachesTheValidFrame) {
  ServerFixture F;
  NetClient C = F.connect();
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  // An HTTP-ish preamble (a confused client) followed by a valid request:
  // the reader resynchronizes, answers the garbage with an error response,
  // and the real request still gets its reply.
  ASSERT_TRUE(C.sendRaw("GET /metrics HTTP/1.1\r\nHost: wrong-protocol\r\n"));
  ASSERT_TRUE(C.send(openRequest(1, Bytes)));
  bool SawOpenReply = false;
  for (int I = 0; I < 4 && !SawOpenReply; ++I) {
    std::optional<json::Value> Reply = C.readFrame();
    ASSERT_TRUE(Reply.has_value());
    if (const json::Object *R = resultOf(*Reply))
      SawOpenReply = R->find("profile") != nullptr;
    else
      EXPECT_EQ(errorCodeOf(*Reply), rpc::ParseError);
  }
  EXPECT_TRUE(SawOpenReply);
}

TEST(NetParse, RelentlessGarbageDroppedAsParseError) {
  net::NetServerOptions NOpts;
  NOpts.MaxFrameErrors = 4;
  ServerFixture F(NOpts);
  uint64_t Before = counterValue("net.drop.parseError");
  NetClient C = F.connect();
  // Each corrupt frame yields one error response; past the cap the peer is
  // a garbage firehose and gets cut.
  for (int I = 0; I < 32; ++I)
    if (!C.sendRaw("Content-Length: 5\r\n\r\n!!!!!"))
      break;
  EXPECT_TRUE(C.waitForClose());
  EXPECT_GE(counterValue("net.drop.parseError"), Before + 1);
  EXPECT_TRUE(F.sawLog("parseError"));
}

TEST(NetChaos, MidFrameDisconnectLeavesServerServing) {
  ServerFixture F;
  std::string Frame = rpc::frame(flameRequest(1, 1));
  for (int I = 0; I < 8; ++I) {
    NetClient C = F.connect();
    ASSERT_TRUE(C.sendRaw(std::string_view(Frame).substr(0, Frame.size() / 2)));
    // Destructor: abrupt close mid-frame.
  }
  EXPECT_TRUE(waitUntil([&] { return F.Server.activeConnections() == 0; }));
  NetClient C = F.connect();
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  ASSERT_TRUE(C.send(openRequest(1, Bytes)));
  EXPECT_TRUE(C.readFrame().has_value());
}

//===----------------------------------------------------------------------===
// Graceful drain
//===----------------------------------------------------------------------===

TEST(NetDrain, InFlightRequestsFinishBeforeClose) {
  SessionManager::Options MOpts;
  // A path-open of a missing file retries with backoff: a request that
  // provably spans the drain window (~300ms).
  MOpts.Limits.OpenRetry.MaxAttempts = 30;
  MOpts.Limits.OpenRetry.InitialBackoffMs = 10;
  MOpts.Limits.OpenRetry.MaxBackoffMs = 10;
  ServerFixture F({}, MOpts);
  NetClient C = F.connect();
  json::Object Slow;
  Slow.set("path", "/nonexistent/easyview-net-drain.evprof");
  ASSERT_TRUE(C.send(rpc::makeRequest(7, "pvp/open", std::move(Slow))));
  // Let the request reach the strand, then drain while it is in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  F.Server.requestDrain();
  // The in-flight reply still arrives, then the connection closes.
  std::optional<json::Value> Reply = C.readFrame();
  ASSERT_TRUE(Reply.has_value());
  EXPECT_EQ(Reply->asObject().find("id")->asInt(), 7);
  EXPECT_TRUE(C.waitForClose());
  EXPECT_TRUE(F.Server.waitUntilStopped()); // Clean: inside the deadline.
}

TEST(NetDrain, DeadlineForceClosesStragglers) {
  SessionManager::Options MOpts;
  MOpts.Limits.OpenRetry.MaxAttempts = 200; // ~2s of strand occupancy.
  MOpts.Limits.OpenRetry.InitialBackoffMs = 10;
  MOpts.Limits.OpenRetry.MaxBackoffMs = 10;
  net::NetServerOptions NOpts;
  NOpts.DrainDeadlineMs = 100;
  ServerFixture F(NOpts, MOpts);
  NetClient C = F.connect();
  json::Object Slow;
  Slow.set("path", "/nonexistent/easyview-net-straggler.evprof");
  ASSERT_TRUE(C.send(rpc::makeRequest(1, "pvp/open", std::move(Slow))));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // The blocker outlives the 100ms deadline: drain reports forced, the
  // loop still exits promptly, and the late reply is dropped harmlessly.
  EXPECT_FALSE(F.Server.drain());
  EXPECT_FALSE(F.Server.running());
}

TEST(NetDrain, CancelStormDuringDrainNeverWedges) {
  ServerFixture F;
  std::string Bytes = writeEvProf(test::makeRandomProfile(23));
  constexpr int Clients = 6;
  std::vector<std::thread> Storm;
  std::atomic<int> MalformedReplies{0};
  for (int T = 0; T < Clients; ++T)
    Storm.emplace_back([&, T] {
      NetClient C = F.connect();
      if (!C.send(openRequest(1, Bytes)))
        return;
      std::optional<json::Value> Opened = C.readFrame();
      if (!Opened || !resultOf(*Opened))
        return;
      int64_t Prof = resultOf(*Opened)->find("profile")->asInt();
      for (int64_t Id = 2; Id < 20; ++Id) {
        if (!C.send(flameRequest(Id, Prof)))
          return;
        if (Id % 3 == 0 && !C.send(cancelNotification(100 + Id, Id)))
          return;
      }
      // Read whatever arrives until the drain closes us; every reply must
      // be a well-formed response object.
      while (std::optional<json::Value> Reply = C.readFrame(3000)) {
        if (!Reply->isObject() ||
            (!resultOf(*Reply) && errorCodeOf(*Reply) == 0))
          ++MalformedReplies;
      }
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  F.Server.requestDrain(); // Mid-storm.
  EXPECT_TRUE(waitUntil([&] { return !F.Server.running(); }, 15000));
  for (std::thread &T : Storm)
    T.join();
  EXPECT_EQ(MalformedReplies.load(), 0);
}

//===----------------------------------------------------------------------===
// Seeded chaos over a real socket
//===----------------------------------------------------------------------===

TEST(NetChaos, SeededFaultFeedNeverWedgesTheListener) {
  uint64_t DropsBefore = counterValue("net.connectionsDropped");
  uint64_t ByReasonBefore =
      counterValue("net.drop.idleTimeout") +
      counterValue("net.drop.writeBackpressure") +
      counterValue("net.drop.maxConnections") +
      counterValue("net.drop.parseError");
  net::NetServerOptions NOpts;
  NOpts.MaxFrameErrors = 8;
  NOpts.FrameTimeoutMs = 2000;
  ServerFixture F(NOpts);
  std::string Bytes = writeEvProf(test::makeFixedProfile());

  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    chaos::FaultInjector Injector(Seed);
    std::string Stream;
    for (int64_t Id = 1; Id < 6; ++Id) {
      Stream += Injector.garbage(64);
      Stream += Injector.mutateFrame(rpc::frame(
          Id == 1 ? openRequest(Id, Bytes) : flameRequest(Id, 1)));
    }
    chaos::ChaosStream Frags(Stream, Injector);
    NetClient C = F.connect();
    bool PeerGone = false;
    while (std::optional<std::string> Frag = Frags.next()) {
      if (!Frag->empty() && !C.sendRaw(*Frag)) {
        PeerGone = true; // Dropped mid-feed (parse cap); fine.
        break;
      }
    }
    if (!PeerGone)
      while (C.readFrame(200).has_value()) {
      }
  }

  // Whatever the chaos did, the listener still serves, and every drop it
  // made is attributed to exactly one named reason.
  NetClient C = F.connect();
  ASSERT_TRUE(C.send(openRequest(1, Bytes)));
  std::optional<json::Value> Reply = C.readFrame();
  ASSERT_TRUE(Reply.has_value());
  EXPECT_NE(resultOf(*Reply), nullptr);
  uint64_t Drops = counterValue("net.connectionsDropped") - DropsBefore;
  uint64_t ByReason = counterValue("net.drop.idleTimeout") +
                      counterValue("net.drop.writeBackpressure") +
                      counterValue("net.drop.maxConnections") +
                      counterValue("net.drop.parseError") - ByReasonBefore;
  EXPECT_EQ(Drops, ByReason);
}

//===----------------------------------------------------------------------===
// Transport telemetry
//===----------------------------------------------------------------------===

TEST(NetTelemetry, CleanSessionAccountsBytesFramesAndLatency) {
  uint64_t AcceptedBefore = counterValue("net.connectionsAccepted");
  uint64_t FramesBefore = counterValue("net.framesIn");
  uint64_t BytesInBefore = counterValue("net.bytesIn");
  uint64_t BytesOutBefore = counterValue("net.bytesOut");
  telemetry::Histogram &FirstFrame =
      telemetry::Registry::global().histogram("net.acceptToFirstFrameUs");
  uint64_t FirstFrameBefore = FirstFrame.count();

  ServerFixture F;
  {
    NetClient C = F.connect();
    std::string Bytes = writeEvProf(test::makeFixedProfile());
    ASSERT_TRUE(C.send(openRequest(1, Bytes)));
    std::optional<json::Value> Opened = C.readFrame();
    ASSERT_TRUE(Opened.has_value());
    int64_t Prof = resultOf(*Opened)->find("profile")->asInt();
    ASSERT_TRUE(C.send(treeTableRequest(2, Prof)));
    ASSERT_TRUE(C.readFrame().has_value());
  }
  EXPECT_TRUE(waitUntil([&] { return F.Server.activeConnections() == 0; }));

  EXPECT_GE(counterValue("net.connectionsAccepted"), AcceptedBefore + 1);
  EXPECT_GE(counterValue("net.framesIn"), FramesBefore + 2);
  EXPECT_GT(counterValue("net.bytesIn"), BytesInBefore);
  EXPECT_GT(counterValue("net.bytesOut"), BytesOutBefore);
  EXPECT_GE(FirstFrame.count(), FirstFrameBefore + 1);
  EXPECT_EQ(F.Server.activeConnections(), 0u);
  EXPECT_EQ(F.Server.acceptedConnections(), 1u);
}

TEST(NetTelemetry, HistogramPercentileEstimateBracketsTrueRank) {
  telemetry::Histogram H;
  for (uint64_t V = 1; V <= 1000; ++V)
    H.record(V);
  // Log2 buckets guarantee a factor-of-two envelope around the true order
  // statistic; the clamp pins the extremes exactly.
  double P50 = H.percentileEstimate(50);
  EXPECT_GE(P50, 250.0);
  EXPECT_LE(P50, 1000.0);
  double P99 = H.percentileEstimate(99);
  EXPECT_GE(P99, 495.0);
  EXPECT_LE(P99, 1000.0);
  EXPECT_EQ(H.percentileEstimate(100), 1000.0);
  EXPECT_EQ(telemetry::Histogram().percentileEstimate(99), 0.0);
}

