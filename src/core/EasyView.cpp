//===- core/EasyView.cpp - The EasyView engine facade -----------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/EasyView.h"

#include "analysis/MetricEngine.h"
#include "analysis/Transform.h"
#include "convert/Converters.h"
#include "query/Vm.h"
#include "render/HtmlRenderer.h"
#include "render/SvgRenderer.h"
#include "render/TreeTable.h"

#include <chrono>

namespace ev {

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

} // namespace

Result<int64_t> EasyViewEngine::openProfileBytes(std::string_view Bytes,
                                                 std::string_view Name) {
  LastOpen = OpenStats{};

  auto T0 = std::chrono::steady_clock::now();
  Result<Profile> P = convert::load(Bytes, Name);
  if (!P)
    return makeError(P.error());
  LastOpen.ParseMs = msSince(T0);

  auto T1 = std::chrono::steady_clock::now();
  // Metric columns for the default metric — what the first view displays.
  if (!P->metrics().empty()) {
    MetricView View(*P, 0);
    (void)View.total();
  }
  LastOpen.AnalyzeMs = msSince(T1);

  auto T2 = std::chrono::steady_clock::now();
  if (!P->metrics().empty()) {
    FlameGraph Graph(*P, 0);
    (void)Graph.rects().size();
  }
  LastOpen.LayoutMs = msSince(T2);

  return Ide.server().addProfile(P.take());
}

Result<std::string> EasyViewEngine::flameSvg(int64_t Id,
                                             const FlameRenderOptions &Options) {
  const Profile *P = profile(Id);
  if (!P)
    return makeError("no profile with id " + std::to_string(Id));

  Profile Shaped;
  const Profile *View = P;
  if (Options.Shape == "bottom-up") {
    Shaped = bottomUpTree(*P);
    View = &Shaped;
  } else if (Options.Shape == "flat") {
    Shaped = flatTree(*P);
    View = &Shaped;
  } else if (Options.Shape != "top-down") {
    return makeError("unknown flame shape '" + Options.Shape + "'");
  }
  if (Options.Metric >= View->metrics().size())
    return makeError("metric index out of range");

  FlameGraph Graph(*View, Options.Metric);
  SvgOptions Svg;
  Svg.WidthPx = Options.WidthPx;
  Svg.Title = View->name() + " (" + Options.Shape + ")";
  Svg.Inverted = Options.Shape == "bottom-up";
  return renderSvg(Graph, Svg);
}

Result<std::string> EasyViewEngine::treeTableText(int64_t Id) {
  const Profile *P = profile(Id);
  if (!P)
    return makeError("no profile with id " + std::to_string(Id));
  TreeTable Table(*P);
  if (!P->metrics().empty())
    Table.expandHotPath(0);
  return Table.renderText();
}

Result<std::string> EasyViewEngine::summaryText(int64_t Id) {
  const Profile *P = profile(Id);
  if (!P)
    return makeError("no profile with id " + std::to_string(Id));
  return renderSummaryText(*P);
}

Result<evql::QueryOutput> EasyViewEngine::query(int64_t Id,
                                                std::string_view Program) {
  const Profile *P = profile(Id);
  if (!P)
    return makeError("no profile with id " + std::to_string(Id));
  // Compile-and-batch by default; the VM falls back to the interpreter for
  // the rare program the compiler rejects, with identical results either
  // way (the interpreter is the oracle).
  return evql::runProgramAuto(*P, Program);
}

Result<AggregatedProfile>
EasyViewEngine::aggregateProfiles(std::span<const int64_t> Ids) {
  if (Ids.empty())
    return makeError("aggregate needs at least one profile");
  std::vector<const Profile *> Inputs;
  for (int64_t Id : Ids) {
    const Profile *P = profile(Id);
    if (!P)
      return makeError("no profile with id " + std::to_string(Id));
    Inputs.push_back(P);
  }
  AggregateOptions Opt;
  Opt.WithMin = Opt.WithMax = Opt.WithMean = true;
  return aggregate(Inputs, Opt);
}

Result<DiffResult> EasyViewEngine::diff(int64_t BaseId, int64_t TestId,
                                        MetricId Metric) {
  const Profile *Base = profile(BaseId);
  if (!Base)
    return makeError("no profile with id " + std::to_string(BaseId));
  const Profile *Test = profile(TestId);
  if (!Test)
    return makeError("no profile with id " + std::to_string(TestId));
  if (Metric >= Base->metrics().size())
    return makeError("metric index out of range");
  return diffProfiles(*Base, *Test, Metric);
}

} // namespace ev
