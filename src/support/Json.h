//===- support/Json.h - JSON value model, parser, and writer --------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained JSON implementation. It backs (1) the converters for
/// JSON-based profiler formats (Chrome trace, Speedscope, Scalene,
/// pyinstrument) and (2) the LSP-style JSON-RPC transport of the Profile
/// Viewer Protocol in src/ide/.
///
/// The value model is a tagged union with object key order preserved, which
/// keeps serialized output deterministic for golden tests.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_JSON_H
#define EASYVIEW_SUPPORT_JSON_H

#include "support/Result.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ev {
namespace json {

class Value;

/// JSON array.
using Array = std::vector<Value>;

/// JSON object with insertion-ordered keys.
class Object {
public:
  /// \returns the value for \p Key, or null when absent.
  const Value *find(std::string_view Key) const;
  Value *find(std::string_view Key);

  /// Inserts or overwrites \p Key.
  void set(std::string Key, Value V);

  /// \returns true when \p Key is present.
  bool contains(std::string_view Key) const { return find(Key) != nullptr; }

  size_t size() const { return Members.size(); }
  bool empty() const { return Members.empty(); }

  auto begin() const { return Members.begin(); }
  auto end() const { return Members.end(); }

private:
  std::vector<std::pair<std::string, Value>> Members;
};

/// Discriminator for Value.
enum class Kind { Null, Bool, Number, String, ArrayKind, ObjectKind };

/// A JSON value. Numbers carry a double representation plus, when the
/// source was integral and fits, an exact int64 representation: pprof
/// location/function ids and metric values routinely exceed 2^53, where
/// double rounds silently, so integers survive parse -> asInt() ->
/// serialize round-trips bit-exactly. (uint64 values above INT64_MAX fall
/// back to the double representation.)
class Value {
public:
  Value() : TheKind(Kind::Null) {}
  /*implicit*/ Value(std::nullptr_t) : TheKind(Kind::Null) {}
  /*implicit*/ Value(bool B) : TheKind(Kind::Bool), BoolValue(B) {}
  /*implicit*/ Value(double N) : TheKind(Kind::Number), NumberValue(N) {}
  /*implicit*/ Value(int N) : Value(static_cast<int64_t>(N)) {}
  /*implicit*/ Value(int64_t N)
      : TheKind(Kind::Number), IsInt(true),
        NumberValue(static_cast<double>(N)), IntValue(N) {}
  /*implicit*/ Value(uint64_t N)
      : TheKind(Kind::Number), NumberValue(static_cast<double>(N)) {
    if (N <= static_cast<uint64_t>(INT64_MAX)) {
      IsInt = true;
      IntValue = static_cast<int64_t>(N);
    }
  }
  /*implicit*/ Value(unsigned N) : Value(static_cast<int64_t>(N)) {}
  /*implicit*/ Value(std::string S)
      : TheKind(Kind::String), StringValue(std::move(S)) {}
  /*implicit*/ Value(std::string_view S)
      : TheKind(Kind::String), StringValue(S) {}
  /*implicit*/ Value(const char *S) : TheKind(Kind::String), StringValue(S) {}
  /*implicit*/ Value(Array A)
      : TheKind(Kind::ArrayKind),
        ArrayValue(std::make_shared<Array>(std::move(A))) {}
  /*implicit*/ Value(Object O)
      : TheKind(Kind::ObjectKind),
        ObjectValue(std::make_shared<Object>(std::move(O))) {}

  Kind kind() const { return TheKind; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isNumber() const { return TheKind == Kind::Number; }
  bool isString() const { return TheKind == Kind::String; }
  bool isArray() const { return TheKind == Kind::ArrayKind; }
  bool isObject() const { return TheKind == Kind::ObjectKind; }

  bool asBool() const {
    assert(isBool() && "not a bool");
    return BoolValue;
  }
  double asNumber() const {
    assert(isNumber() && "not a number");
    return NumberValue;
  }
  /// True when the number carries an exact int64 representation (integral
  /// literal or integer-constructed). Double-backed numbers return false
  /// even when integral; use getInteger() to accept those too.
  bool isInteger() const { return TheKind == Kind::Number && IsInt; }
  int64_t asInt() const {
    assert(isNumber() && "not a number");
    return IsInt ? IntValue : static_cast<int64_t>(NumberValue);
  }
  /// Strict integer extraction: \returns true and sets \p Out when the
  /// value is a number exactly representable as int64 — an integer-backed
  /// number, or a finite double with no fractional part inside the int64
  /// range. NaN, infinities, fractional and out-of-range doubles (and
  /// non-numbers) return false. RPC parameter validation uses this so
  /// hostile numbers are rejected instead of truncated (UB for NaN).
  bool getInteger(int64_t &Out) const;
  const std::string &asString() const {
    assert(isString() && "not a string");
    return StringValue;
  }
  const Array &asArray() const {
    assert(isArray() && "not an array");
    return *ArrayValue;
  }
  Array &asArray() {
    assert(isArray() && "not an array");
    return *ArrayValue;
  }
  const Object &asObject() const {
    assert(isObject() && "not an object");
    return *ObjectValue;
  }
  Object &asObject() {
    assert(isObject() && "not an object");
    return *ObjectValue;
  }

  /// Convenience typed getters that tolerate missing/mistyped data:
  /// they return the fallback instead of asserting. Used heavily by the
  /// converters, which must survive malformed third-party files.
  double numberOr(double Fallback) const {
    return isNumber() ? NumberValue : Fallback;
  }
  std::string_view stringOr(std::string_view Fallback) const {
    return isString() ? std::string_view(StringValue) : Fallback;
  }
  bool boolOr(bool Fallback) const { return isBool() ? BoolValue : Fallback; }

  /// Serializes to compact JSON text (no insignificant whitespace).
  std::string dump() const;

  /// Serializes with two-space indentation for human inspection.
  std::string dumpPretty() const;

private:
  void dumpImpl(std::string &Out, int Indent, int Depth) const;

  Kind TheKind;
  bool BoolValue = false;
  bool IsInt = false; ///< Number kind only: IntValue is exact.
  double NumberValue = 0.0;
  int64_t IntValue = 0;
  std::string StringValue;
  // shared_ptr keeps Value cheaply copyable; analysis code treats parsed
  // documents as immutable.
  std::shared_ptr<Array> ArrayValue;
  std::shared_ptr<Object> ObjectValue;
};

/// Parses \p Text. \returns the document or a parse error with offset
/// information in the message.
Result<Value> parse(std::string_view Text);

} // namespace json
} // namespace ev

#endif // EASYVIEW_SUPPORT_JSON_H
