//===- convert/CollapsedConverter.cpp - Folded stacks converter -----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts Brendan Gregg folded-stack text ("main;foo;bar 42" per line)
/// into the generic representation. Frame annotations in the common
/// "func (module)" and "module!func" spellings are recognized so TAU and
/// perf folded exports keep their module attribution.
///
//===----------------------------------------------------------------------===//

#include "convert/Converters.h"

#include "profile/ProfileBuilder.h"
#include "support/Strings.h"

namespace ev {
namespace convert {

Result<Profile> fromCollapsed(std::string_view Text) {
  ProfileBuilder B("collapsed stacks");
  MetricId Samples = B.addMetric("samples", "count");

  size_t LineNo = 0;
  std::vector<FrameId> Path;
  for (std::string_view RawLine : splitLines(Text)) {
    ++LineNo;
    std::string_view Line = trim(RawLine);
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Space = Line.rfind(' ');
    if (Space == std::string_view::npos)
      return makeError("line " + std::to_string(LineNo) +
                       ": missing sample count");
    uint64_t Count;
    if (!parseUnsigned(trim(Line.substr(Space + 1)), Count))
      return makeError("line " + std::to_string(LineNo) +
                       ": invalid sample count");
    std::string_view Stack = Line.substr(0, Space);

    Path.clear();
    for (std::string_view Frame : splitString(Stack, ';')) {
      Frame = trim(Frame);
      if (Frame.empty())
        continue;
      std::string_view Name = Frame;
      std::string_view Module;
      // "module!func" (Windows/ETW convention).
      if (size_t Bang = Frame.find('!'); Bang != std::string_view::npos) {
        Module = Frame.substr(0, Bang);
        Name = Frame.substr(Bang + 1);
      } else if (endsWith(Frame, ")")) {
        // "func (module)" (perf folded convention).
        if (size_t Paren = Frame.rfind(" ("); Paren != std::string_view::npos) {
          Module = Frame.substr(Paren + 2, Frame.size() - Paren - 3);
          Name = Frame.substr(0, Paren);
        }
      }
      Path.push_back(B.functionFrame(Name, "", 0, Module));
    }
    if (Path.empty())
      return makeError("line " + std::to_string(LineNo) + ": empty stack");
    B.addSample(Path, Samples, static_cast<double>(Count));
  }
  return B.take();
}

} // namespace convert
} // namespace ev
