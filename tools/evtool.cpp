//===- tools/evtool.cpp - EasyView command line ----------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin main() around tool/CliDriver.h. Run `evtool help` for usage.
///
//===----------------------------------------------------------------------===//

#include "tool/CliDriver.h"

#include <cstdio>
#include <string>
#include <vector>

int main(int argc, char **argv) {
  std::vector<std::string> Args;
  for (int I = 1; I < argc; ++I)
    Args.emplace_back(argv[I]);
  std::string Out, Err;
  int Code = ev::tool::runEvTool(Args, Out, Err);
  if (!Out.empty())
    std::fwrite(Out.data(), 1, Out.size(), stdout);
  if (!Err.empty())
    std::fwrite(Err.data(), 1, Err.size(), stderr);
  return Code;
}
