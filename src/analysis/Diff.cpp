//===- analysis/Diff.cpp - Profile differencing ---------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Diff.h"

#include <cmath>
#include <unordered_map>

namespace ev {

std::string_view diffTagLabel(DiffTag Tag) {
  switch (Tag) {
  case DiffTag::Common:
    return "[=]";
  case DiffTag::Added:
    return "[A]";
  case DiffTag::Deleted:
    return "[D]";
  case DiffTag::Increased:
    return "[+]";
  case DiffTag::Decreased:
    return "[-]";
  }
  return "[?]";
}

DiffResult diffProfiles(const Profile &Base, const Profile &Test,
                        MetricId Metric, double RelativeEpsilon) {
  DiffResult Result;
  Profile &Merged = Result.Merged;
  Merged.setName("diff: " + Test.name() + " vs " + Base.name());

  const MetricDescriptor &M = Base.metrics().at(Metric);
  Result.BaseMetric = Merged.addMetric("base " + M.Name, M.Unit);
  Result.TestMetric = Merged.addMetric("test " + M.Name, M.Unit);
  Result.DeltaMetric = Merged.addMetric("delta " + M.Name, M.Unit);

  std::unordered_map<uint64_t, NodeId> ChildIndex;
  auto ChildFor = [&](NodeId Parent, FrameId F) {
    uint64_t Key = (static_cast<uint64_t>(Parent) << 32) | F;
    auto It = ChildIndex.find(Key);
    if (It != ChildIndex.end())
      return It->second;
    NodeId Id = Merged.createNode(Parent, F);
    ChildIndex.emplace(Key, Id);
    return Id;
  };

  // Presence[node]: bit 0 = in base, bit 1 = in test.
  std::vector<uint8_t> Presence;
  Presence.resize(1, 3); // Root is in both.

  auto MergeSide = [&](const Profile &P, MetricId SideMetric, uint8_t Bit,
                       MetricId WhichInput) {
    std::vector<NodeId> OutNode(P.nodeCount(), InvalidNode);
    OutNode[P.root()] = Merged.root();
    std::vector<FrameId> FrameMap(P.frames().size(), 0);
    std::vector<bool> FrameMapped(P.frames().size(), false);
    auto MapFrame = [&](FrameId F) {
      if (FrameMapped[F])
        return FrameMap[F];
      const Frame &Old = P.frame(F);
      Frame Copy;
      Copy.Kind = Old.Kind;
      Copy.Name = Merged.strings().intern(P.text(Old.Name));
      Copy.Loc.File = Merged.strings().intern(P.text(Old.Loc.File));
      Copy.Loc.Line = Old.Loc.Line;
      Copy.Loc.Module = Merged.strings().intern(P.text(Old.Loc.Module));
      Copy.Loc.Address = 0;
      FrameMap[F] = Merged.internFrame(Copy);
      FrameMapped[F] = true;
      return FrameMap[F];
    };
    for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
      const CCTNode &Node = P.node(Id);
      OutNode[Id] = ChildFor(OutNode[Node.Parent], MapFrame(Node.FrameRef));
      if (Presence.size() <= OutNode[Id])
        Presence.resize(OutNode[Id] + 1, 0);
      Presence[OutNode[Id]] |= Bit;
    }
    for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
      double V = P.node(Id).metricOr(WhichInput);
      if (V != 0.0)
        Merged.node(OutNode[Id]).addMetric(SideMetric, V);
    }
  };

  MergeSide(Base, Result.BaseMetric, /*Bit=*/1, Metric);
  // The metric may sit at a different id in the test profile; match by name.
  MetricId TestInput = Test.findMetric(M.Name);
  if (TestInput == Profile::InvalidMetric)
    TestInput = Metric;
  MergeSide(Test, Result.TestMetric, /*Bit=*/2, TestInput);
  Presence.resize(Merged.nodeCount(), 0);

  // Delta column (exclusive) and inclusive columns for tagging.
  Result.BaseInclusive.assign(Merged.nodeCount(), 0.0);
  Result.TestInclusive.assign(Merged.nodeCount(), 0.0);
  for (NodeId Id = 0; Id < Merged.nodeCount(); ++Id) {
    double B = Merged.node(Id).metricOr(Result.BaseMetric);
    double T = Merged.node(Id).metricOr(Result.TestMetric);
    if (T - B != 0.0)
      Merged.node(Id).addMetric(Result.DeltaMetric, T - B);
    Result.BaseInclusive[Id] = B;
    Result.TestInclusive[Id] = T;
  }
  for (NodeId Id = static_cast<NodeId>(Merged.nodeCount()); Id > 1;) {
    --Id;
    NodeId Parent = Merged.node(Id).Parent;
    Result.BaseInclusive[Parent] += Result.BaseInclusive[Id];
    Result.TestInclusive[Parent] += Result.TestInclusive[Id];
  }

  Result.Tags.assign(Merged.nodeCount(), DiffTag::Common);
  for (NodeId Id = 0; Id < Merged.nodeCount(); ++Id) {
    bool InBase = Presence[Id] & 1;
    bool InTest = Presence[Id] & 2;
    if (Id == Merged.root()) {
      InBase = true;
      InTest = true;
    }
    if (!InBase && InTest) {
      Result.Tags[Id] = DiffTag::Added;
      continue;
    }
    if (InBase && !InTest) {
      Result.Tags[Id] = DiffTag::Deleted;
      continue;
    }
    double B = Result.BaseInclusive[Id];
    double T = Result.TestInclusive[Id];
    double Scale = std::max(std::abs(B), std::abs(T));
    if (Scale == 0.0 || std::abs(T - B) <= RelativeEpsilon * Scale)
      Result.Tags[Id] = DiffTag::Common;
    else
      Result.Tags[Id] = T > B ? DiffTag::Increased : DiffTag::Decreased;
  }
  return Result;
}

} // namespace ev
