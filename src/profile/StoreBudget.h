//===- profile/StoreBudget.h - Memory budget + LRU policy for the store ---===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The accounting half of the out-of-core ProfileStore: a byte budget, a
/// recency (LRU) order over profile ids, and the per-id resident cost.
/// The policy is deliberately separated from the store so it can be unit
/// tested without touching files or profiles — the store asks "who is
/// coldest?" and decides per victim whether to shed the AoS
/// materialization (cheap, rebuildable from columns) or spill the column
/// block itself.
///
/// Not thread-safe: ProfileStore calls it under its own mutex.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_PROFILE_STOREBUDGET_H
#define EASYVIEW_PROFILE_STOREBUDGET_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace ev {

/// A point-in-time snapshot of the store's memory accounting, surfaced
/// through pvp/stats and `evtool store --stats`.
struct StoreStats {
  uint64_t Profiles = 0;      ///< Ids currently registered.
  uint64_t BudgetBytes = 0;   ///< Configured budget; 0 = unlimited.
  uint64_t ResidentBytes = 0; ///< AosBytes + ColumnarBytes (budget-governed).
  uint64_t AosBytes = 0;      ///< Decoded Profile materializations resident.
  uint64_t ColumnarBytes = 0; ///< Column blocks resident (arena or mapped).
  /// Deduplicated shared string payload. Outside the budget: eviction
  /// cannot reclaim interned text, so it is reported — not governed.
  uint64_t SharedStringBytes = 0;
  uint64_t SpilledBytes = 0; ///< Bytes currently held in spill files.
  uint64_t Spills = 0;       ///< Cumulative spill-file writes.
  uint64_t Evictions = 0;    ///< Cumulative sheds (AoS drops + block spills).
  uint64_t Faults = 0;       ///< Cumulative reconstructions (remap/decode).
  uint64_t SpillFailures = 0; ///< Evictions skipped because a spill failed.
};

/// Budget limit + LRU recency + per-id resident cost. Ids are charged
/// whatever bytes the store currently holds for them; recency moves on
/// charge() and touch() but NOT on recharge(), so shrinking a victim
/// during eviction does not promote it back to hot.
class StoreBudget {
public:
  void setLimit(uint64_t Bytes) { Limit = Bytes; }
  uint64_t limit() const { return Limit; }

  /// Upserts \p Id at \p Bytes and marks it most recently used.
  void charge(int64_t Id, uint64_t Bytes);

  /// Updates \p Id's cost without touching recency (no-op when \p Id is
  /// not tracked).
  void recharge(int64_t Id, uint64_t Bytes);

  /// Marks \p Id most recently used (no-op when untracked).
  void touch(int64_t Id);

  /// Stops tracking \p Id. \returns the bytes it was charged.
  uint64_t release(int64_t Id);

  /// Total bytes currently charged across all tracked ids.
  uint64_t chargedBytes() const { return Charged; }

  /// True when a limit is set and charges exceed it.
  bool overLimit() const { return Limit != 0 && Charged > Limit; }

  /// Tracked ids from least to most recently used — the eviction scan
  /// order. Snapshot semantics: safe to release()/recharge() while
  /// iterating the returned vector.
  std::vector<int64_t> coldestFirst() const;

  size_t trackedCount() const { return Index.size(); }
  uint64_t chargeOf(int64_t Id) const;

private:
  uint64_t Limit = 0;
  uint64_t Charged = 0;
  std::list<int64_t> Lru; ///< front = coldest, back = hottest.
  struct Slot {
    std::list<int64_t>::iterator Pos;
    uint64_t Bytes = 0;
  };
  std::unordered_map<int64_t, Slot> Index;
};

} // namespace ev

#endif // EASYVIEW_PROFILE_STOREBUDGET_H
