//===- support/StringInterner.cpp - String table with stable ids ----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include <cassert>

namespace ev {

StringId StringInterner::intern(std::string_view Text) {
  auto It = Index.find(Text);
  if (It != Index.end())
    return It->second;
  StringId Id = static_cast<StringId>(Table.size());
  Table.emplace_back(Text);
  Payload += Text.size();
  Index.emplace(std::string_view(Table.back()), Id);
  return Id;
}

std::string_view StringInterner::text(StringId Id) const {
  assert(Id < Table.size() && "string id out of range");
  return Table[Id];
}

} // namespace ev
