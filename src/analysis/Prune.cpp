//===- analysis/Prune.cpp - Node pruning and filtering --------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Prune.h"

#include "analysis/MetricEngine.h"

#include <cmath>
#include <vector>

namespace ev {

namespace {

std::vector<MetricId> copySchema(const Profile &Src, Profile &Dst) {
  std::vector<MetricId> Map(Src.metrics().size());
  for (MetricId I = 0; I < Src.metrics().size(); ++I) {
    const MetricDescriptor &M = Src.metrics()[I];
    Map[I] = Dst.addMetric(M.Name, M.Unit, M.Aggregation);
  }
  return Map;
}

FrameId copyFrameInto(const Profile &Src, FrameId F, Profile &Dst) {
  const Frame &Old = Src.frame(F);
  Frame Copy;
  Copy.Kind = Old.Kind;
  Copy.Name = Dst.strings().intern(Src.text(Old.Name));
  Copy.Loc.File = Dst.strings().intern(Src.text(Old.Loc.File));
  Copy.Loc.Line = Old.Loc.Line;
  Copy.Loc.Module = Dst.strings().intern(Src.text(Old.Loc.Module));
  Copy.Loc.Address = Old.Loc.Address;
  return Dst.internFrame(Copy);
}

} // namespace

Profile pruneByFraction(const Profile &P, MetricId Metric,
                        double MinFraction) {
  std::vector<double> Inclusive = inclusiveColumn(P, Metric);
  double Threshold = std::abs(Inclusive.empty() ? 0.0 : Inclusive[0]) *
                     MinFraction;

  Profile Out;
  Out.setName(P.name());
  std::vector<MetricId> MetricMap = copySchema(P, Out);

  // Kept[i]: the node survives. A node survives when its inclusive value
  // meets the threshold; descendants of a pruned node are implicitly
  // pruned because we only visit children of surviving nodes.
  std::vector<NodeId> OutNode(P.nodeCount(), InvalidNode);
  OutNode[P.root()] = Out.root();
  for (const MetricValue &MV : P.node(P.root()).Metrics)
    Out.node(Out.root()).addMetric(MetricMap[MV.Metric], MV.Value);

  for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
    const CCTNode &Node = P.node(Id);
    if (OutNode[Node.Parent] == InvalidNode)
      continue; // Ancestor already pruned.
    if (std::abs(Inclusive[Id]) < Threshold) {
      // Fold the whole subtree's inclusive value into the parent exclusive.
      if (Inclusive[Id] != 0.0)
        Out.node(OutNode[Node.Parent])
            .addMetric(MetricMap[Metric], Inclusive[Id]);
      continue;
    }
    OutNode[Id] = Out.createNode(OutNode[Node.Parent],
                                 copyFrameInto(P, Node.FrameRef, Out));
    for (const MetricValue &MV : Node.Metrics)
      Out.node(OutNode[Id]).addMetric(MetricMap[MV.Metric], MV.Value);
  }
  return Out;
}

Profile filterNodes(
    const Profile &P,
    const std::function<bool(const Profile &, NodeId)> &Keep) {
  Profile Out;
  Out.setName(P.name());
  std::vector<MetricId> MetricMap = copySchema(P, Out);

  // Ancestor[i]: output node that node i (or its nearest surviving
  // ancestor) maps to.
  std::vector<NodeId> Ancestor(P.nodeCount(), InvalidNode);
  Ancestor[P.root()] = Out.root();
  for (const MetricValue &MV : P.node(P.root()).Metrics)
    Out.node(Out.root()).addMetric(MetricMap[MV.Metric], MV.Value);

  for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
    const CCTNode &Node = P.node(Id);
    NodeId ParentOut = Ancestor[Node.Parent];
    if (Keep(P, Id)) {
      // Note: siblings elided earlier may have re-attached children here;
      // merging by frame keeps the output a proper CCT.
      NodeId Created = InvalidNode;
      FrameId F = copyFrameInto(P, Node.FrameRef, Out);
      for (NodeId Child : Out.node(ParentOut).Children)
        if (Out.node(Child).FrameRef == F)
          Created = Child;
      if (Created == InvalidNode)
        Created = Out.createNode(ParentOut, F);
      Ancestor[Id] = Created;
      for (const MetricValue &MV : Node.Metrics)
        Out.node(Created).addMetric(MetricMap[MV.Metric], MV.Value);
    } else {
      Ancestor[Id] = ParentOut;
      for (const MetricValue &MV : Node.Metrics)
        Out.node(ParentOut).addMetric(MetricMap[MV.Metric], MV.Value);
    }
  }
  return Out;
}

} // namespace ev
