//===- support/ProtoWire.h - Protocol Buffer wire format ------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch implementation of the Protocol Buffer wire format: tagged
/// fields with varint, 64-bit, length-delimited, and 32-bit payloads. The
/// paper expresses EasyView's generic profile representation as a Protocol
/// Buffer schema; this module provides the encoding layer used by both the
/// .evprof container (proto/EvProf.h) and the pprof profile.proto codec
/// (proto/PprofFormat.h).
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_PROTOWIRE_H
#define EASYVIEW_SUPPORT_PROTOWIRE_H

#include "support/Varint.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace ev {

/// Protocol Buffer wire types.
enum class WireType : uint8_t {
  Varint = 0,
  Fixed64 = 1,
  LengthDelimited = 2,
  Fixed32 = 5,
};

/// Serializes tagged fields into a growing byte buffer.
class ProtoWriter {
public:
  /// Writes a varint field.
  void writeVarint(uint32_t FieldNumber, uint64_t Value);

  /// Writes a signed varint field using zigzag coding (sint64).
  void writeSignedVarint(uint32_t FieldNumber, int64_t Value);

  /// Writes an int64 field with plain two's-complement varint coding, as
  /// protobuf does for int64 (negative values take ten bytes).
  void writeInt64(uint32_t FieldNumber, int64_t Value);

  /// Writes a double as a fixed64 field.
  void writeDouble(uint32_t FieldNumber, double Value);

  /// Writes bytes/string/embedded-message content.
  void writeBytes(uint32_t FieldNumber, std::string_view Bytes);

  /// Writes a packed repeated varint field.
  void writePackedVarints(uint32_t FieldNumber, const uint64_t *Values,
                          size_t Count);

  /// \returns the encoded buffer so far.
  const std::string &buffer() const { return Buffer; }
  std::string takeBuffer() { return std::move(Buffer); }

private:
  void writeTag(uint32_t FieldNumber, WireType Type);

  std::string Buffer;
};

/// Streaming reader for the protobuf wire format.
///
/// Usage pattern:
/// \code
///   ProtoReader R(Bytes);
///   while (R.next()) {
///     switch (R.fieldNumber()) {
///     case 1: X = R.varint(); break;
///     case 2: S = R.bytes(); break;
///     default: R.skip(); break;
///     }
///   }
///   if (R.failed()) ...
/// \endcode
class ProtoReader {
public:
  explicit ProtoReader(std::string_view Bytes)
      : Cursor(Bytes.data(), Bytes.size()) {}

  /// Advances to the next field. \returns false at end of buffer or on a
  /// malformed tag.
  bool next();

  uint32_t fieldNumber() const { return FieldNumber; }
  WireType wireType() const { return Type; }

  /// Consumes the current field as a varint. Must only be called when
  /// wireType() == Varint.
  uint64_t varint();

  /// Consumes the current varint field as a zigzag-coded signed value.
  int64_t signedVarint() { return zigzagDecode(varint()); }

  /// Consumes the current varint field as a plain int64.
  int64_t int64() { return static_cast<int64_t>(varint()); }

  /// Consumes the current field as a double (Fixed64).
  double fixedDouble();

  /// Consumes the current length-delimited field.
  std::string_view bytes();

  /// Skips the current field regardless of wire type.
  void skip();

  /// \returns true once any structural error was observed.
  bool failed() const { return Failed || Cursor.failed(); }

private:
  VarintReader Cursor;
  uint32_t FieldNumber = 0;
  WireType Type = WireType::Varint;
  bool Failed = false;
  bool FieldPending = false;
};

} // namespace ev

#endif // EASYVIEW_SUPPORT_PROTOWIRE_H
