//===- render/FlameLayout.h - Flame graph geometry engine -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flame-graph layout engine (paper §VI-A): computes the rectangle
/// geometry for a profile + metric in normalized [0,1] coordinates. The
/// same geometry feeds the SVG, ANSI, and HTML back ends, the hit-testing
/// used for the code-link action, and the response-time benchmark (layout
/// is part of "opening" a profile).
///
/// EasyView's efficiency claims map onto two layout policies ablated in
/// bench_ablation: min-width culling (subtrees narrower than a pixel are
/// skipped, the dominant saving on ~1M-node profiles) and value-sorted
/// children.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_RENDER_FLAMELAYOUT_H
#define EASYVIEW_RENDER_FLAMELAYOUT_H

#include "profile/Profile.h"
#include "render/Color.h"

#include <string>
#include <string_view>
#include <vector>

namespace ev {

/// One flame-graph rectangle in normalized coordinates.
struct FlameRect {
  NodeId Node = InvalidNode;
  unsigned Depth = 0;
  double X = 0.0;     ///< Left edge in [0, 1].
  double Width = 0.0; ///< Fraction of the total metric.
  double Value = 0.0; ///< Inclusive metric value.
  Rgb Color;
  bool Highlighted = false; ///< Search match.
};

/// Layout policies.
struct FlameLayoutOptions {
  /// Rectangles narrower than this fraction are culled together with their
  /// subtree (they would be subpixel at any realistic viewport width).
  double MinWidth = 1.0 / 4096.0;
  /// Order children widest-first (true) or in insertion order (false).
  bool SortByValue = true;
  /// 0 = unlimited.
  unsigned MaxDepth = 0;
};

/// Computed flame graph for one (profile, metric) pair.
class FlameGraph {
public:
  FlameGraph(const Profile &P, MetricId Metric,
             FlameLayoutOptions Options = {});

  const Profile &profile() const { return *P; }
  MetricId metric() const { return Metric; }
  const std::vector<FlameRect> &rects() const { return Rects; }

  /// Root inclusive value (the layout denominator).
  double totalValue() const { return Total; }
  /// Number of nodes culled by the min-width policy.
  size_t culledCount() const { return Culled; }
  /// Deepest laid-out row + 1.
  unsigned depth() const { return Depth; }

  /// Marks rectangles whose frame name contains \p Pattern
  /// (case-sensitive); \returns the match count. An empty pattern clears
  /// the highlight.
  size_t search(std::string_view Pattern);

  /// Hit test: the rectangle containing normalized \p X at \p Depth, or
  /// nullptr. This backs the click -> code-link action.
  const FlameRect *rectAt(double X, unsigned Depth) const;

  /// \returns the index of the rect for \p Node, or npos.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t rectIndexFor(NodeId Node) const;

private:
  const Profile *P;
  MetricId Metric;
  FlameLayoutOptions Options;
  std::vector<FlameRect> Rects;
  double Total = 0.0;
  size_t Culled = 0;
  unsigned Depth = 0;
};

} // namespace ev

#endif // EASYVIEW_RENDER_FLAMELAYOUT_H
