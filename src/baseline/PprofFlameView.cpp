//===- baseline/PprofFlameView.cpp - Default-pprof-style viewer baseline --===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "baseline/PprofFlameView.h"

#include "proto/PprofFormat.h"

#include <map>
#include <memory>
#include <vector>

namespace ev {
namespace baseline {

namespace {

/// String-keyed flame trie, as the pprof flame view builds it.
struct FlameTrie {
  double Value = 0.0;
  std::map<std::string, std::unique_ptr<FlameTrie>> Children;
};

void emitTrie(const FlameTrie &Node, const std::string &Name, int Depth,
              std::string &Out, size_t &Frames) {
  if (Depth >= 0) {
    Out.append(static_cast<size_t>(Depth), ' ');
    Out += Name;
    Out += ": ";
    Out += std::to_string(static_cast<long long>(Node.Value));
    Out += "\n";
    ++Frames;
  }
  for (const auto &[ChildName, Child] : Node.Children)
    emitTrie(*Child, ChildName, Depth + 1, Out, Frames);
}

} // namespace

Result<PprofViewResult> openWithPprofView(std::string_view PprofBytes) {
  Result<pprof::PprofProfile> Parsed = pprof::read(PprofBytes);
  if (!Parsed)
    return makeError(Parsed.error());
  const pprof::PprofProfile &P = *Parsed;

  // Symbolization pass: location id -> fully qualified "name filename:line"
  // strings (pprof attaches source info into the display string).
  std::map<uint64_t, const pprof::Function *> Functions;
  for (const pprof::Function &F : P.Functions)
    Functions.emplace(F.Id, &F);
  std::map<uint64_t, std::string> LocationNames;
  for (const pprof::Location &L : P.Locations) {
    std::string Name;
    if (L.Lines.empty()) {
      Name = "0x" + std::to_string(L.Address);
    } else {
      const pprof::Line &Ln = L.Lines.front();
      auto It = Functions.find(Ln.FunctionId);
      if (It != Functions.end()) {
        Name = std::string(P.text(It->second->Name));
        Name += " ";
        Name += std::string(P.text(It->second->Filename));
        Name += ":" + std::to_string(Ln.LineNumber);
      } else {
        Name = "??";
      }
    }
    LocationNames.emplace(L.Id, std::move(Name));
  }

  // Graph pass: node per name, edge per adjacent pair, string keys
  // throughout (this is the report/graph layer every pprof view goes
  // through).
  std::map<std::string, double> Nodes;
  std::map<std::pair<std::string, std::string>, double> Edges;
  // Flame pass input: per-sample stack as root-first string vectors.
  FlameTrie Root;

  for (const pprof::Sample &S : P.Samples) {
    double Value = S.Values.empty() ? 0.0
                                    : static_cast<double>(S.Values[0]);
    // Root-first string stack (copying strings, as pprof's measurement
    // keys do).
    std::vector<std::string> Stack;
    Stack.reserve(S.LocationIds.size());
    for (size_t I = S.LocationIds.size(); I > 0; --I) {
      auto It = LocationNames.find(S.LocationIds[I - 1]);
      Stack.push_back(It == LocationNames.end() ? std::string("??")
                                                : It->second);
    }
    for (size_t I = 0; I < Stack.size(); ++I) {
      Nodes[Stack[I]] += Value;
      if (I + 1 < Stack.size())
        Edges[{Stack[I], Stack[I + 1]}] += Value;
    }
    FlameTrie *Cur = &Root;
    for (const std::string &Frame : Stack) {
      std::unique_ptr<FlameTrie> &Child = Cur->Children[Frame];
      if (!Child)
        Child = std::make_unique<FlameTrie>();
      Cur = Child.get();
      Cur->Value += Value;
    }
  }

  // Emission pass: the full DOT graph and the full flame text, no culling.
  std::string Report;
  Report += "digraph \"pprof\" {\n";
  for (const auto &[Name, Value] : Nodes) {
    Report += "  \"" + Name + "\" [label=\"" + Name + "\\n" +
              std::to_string(static_cast<long long>(Value)) + "\"];\n";
  }
  for (const auto &[Edge, Value] : Edges) {
    Report += "  \"" + Edge.first + "\" -> \"" + Edge.second +
              "\" [weight=" + std::to_string(static_cast<long long>(Value)) +
              "];\n";
  }
  Report += "}\n";
  size_t Frames = 0;
  emitTrie(Root, "root", -1, Report, Frames);

  PprofViewResult Out;
  Out.GraphNodes = Nodes.size();
  Out.GraphEdges = Edges.size();
  Out.FlameFrames = Frames;
  Out.ReportBytes = Report.size();
  return Out;
}

} // namespace baseline
} // namespace ev
