//===- profile/Profile.cpp - Generic profile representation ---------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "profile/Profile.h"

#include <algorithm>
#include <cassert>

namespace ev {

std::string_view frameKindName(FrameKind Kind) {
  switch (Kind) {
  case FrameKind::Root:
    return "root";
  case FrameKind::Function:
    return "function";
  case FrameKind::Loop:
    return "loop";
  case FrameKind::BasicBlock:
    return "basic-block";
  case FrameKind::Instruction:
    return "instruction";
  case FrameKind::DataObject:
    return "data-object";
  case FrameKind::Thread:
    return "thread";
  }
  return "unknown";
}

void CCTNode::addMetric(MetricId Metric, double Delta) {
  for (MetricValue &MV : Metrics) {
    if (MV.Metric == Metric) {
      MV.Value += Delta;
      return;
    }
  }
  Metrics.push_back({Metric, Delta});
}

Profile::Profile() {
  // The root frame and node always exist so that every profile has a
  // well-defined program entrance (paper §VI-A: "the root represents the
  // program entrance").
  Frame RootFrame;
  RootFrame.Kind = FrameKind::Root;
  RootFrame.Name = Strings.intern("ROOT");
  FrameTable.push_back(RootFrame);
  FrameIndex.emplace(RootFrame, 0);
  CCTNode Root;
  Root.Parent = InvalidNode;
  Root.FrameRef = 0;
  NodeTable.push_back(std::move(Root));
}

MetricId Profile::addMetric(std::string_view Name, std::string_view Unit,
                            MetricAggregation Aggregation) {
  MetricId Existing = findMetric(Name);
  if (Existing != InvalidMetric)
    return Existing;
  MetricTable.push_back(
      {std::string(Name), std::string(Unit), Aggregation});
  return static_cast<MetricId>(MetricTable.size() - 1);
}

MetricId Profile::findMetric(std::string_view Name) const {
  for (MetricId I = 0; I < MetricTable.size(); ++I)
    if (MetricTable[I].Name == Name)
      return I;
  return InvalidMetric;
}

const Frame &Profile::frame(FrameId Id) const {
  assert(Id < FrameTable.size() && "frame id out of range");
  return FrameTable[Id];
}

FrameId Profile::internFrame(const Frame &F) {
  auto It = FrameIndex.find(F);
  if (It != FrameIndex.end())
    return It->second;
  FrameId Id = static_cast<FrameId>(FrameTable.size());
  FrameTable.push_back(F);
  FrameIndex.emplace(F, Id);
  return Id;
}

const CCTNode &Profile::node(NodeId Id) const {
  assert(Id < NodeTable.size() && "node id out of range");
  return NodeTable[Id];
}

CCTNode &Profile::node(NodeId Id) {
  assert(Id < NodeTable.size() && "node id out of range");
  return NodeTable[Id];
}

NodeId Profile::createNode(NodeId Parent, FrameId FrameRef) {
  assert(Parent < NodeTable.size() && "parent out of range");
  assert(FrameRef < FrameTable.size() && "frame out of range");
  NodeId Id = static_cast<NodeId>(NodeTable.size());
  CCTNode Node;
  Node.Parent = Parent;
  Node.FrameRef = FrameRef;
  NodeTable.push_back(std::move(Node));
  NodeTable[Parent].Children.push_back(Id);
  return Id;
}

void Profile::reserveTables(size_t Nodes, size_t Frames) {
  NodeTable.reserve(NodeTable.size() + Nodes);
  FrameTable.reserve(FrameTable.size() + Frames);
  FrameIndex.reserve(FrameIndex.size() + Frames);
}

std::vector<NodeId> Profile::pathTo(NodeId Id) const {
  // Size the path from a depth walk, then fill back-to-front: one exact
  // allocation and no reversal, so per-leaf reconstruction (the bottom-up
  // transform and exporters call this per context) stays O(depth).
  std::vector<NodeId> Path(depth(Id) + 1);
  size_t Slot = Path.size();
  for (NodeId Cur = Id; Cur != InvalidNode; Cur = node(Cur).Parent)
    Path[--Slot] = Cur;
  return Path;
}

unsigned Profile::depth(NodeId Id) const {
  unsigned D = 0;
  for (NodeId Cur = Id; node(Cur).Parent != InvalidNode;
       Cur = node(Cur).Parent)
    ++D;
  return D;
}

void Profile::addGroup(ContextGroup Group) {
  Groups.push_back(std::move(Group));
}

Result<bool> Profile::verify() const {
  if (NodeTable.empty())
    return makeError("profile has no root node");
  if (NodeTable[0].Parent != InvalidNode)
    return makeError("root node has a parent");
  for (NodeId Id = 0; Id < NodeTable.size(); ++Id) {
    const CCTNode &Node = NodeTable[Id];
    if (Node.FrameRef >= FrameTable.size())
      return makeError("node " + std::to_string(Id) +
                       " references out-of-range frame");
    if (Id != 0) {
      if (Node.Parent == InvalidNode)
        return makeError("non-root node " + std::to_string(Id) +
                         " has no parent");
      if (Node.Parent >= NodeTable.size())
        return makeError("node " + std::to_string(Id) +
                         " has out-of-range parent");
      if (Node.Parent >= Id)
        return makeError("node " + std::to_string(Id) +
                         " does not follow its parent (cycle risk)");
      const CCTNode &Parent = NodeTable[Node.Parent];
      if (std::find(Parent.Children.begin(), Parent.Children.end(), Id) ==
          Parent.Children.end())
        return makeError("node " + std::to_string(Id) +
                         " missing from its parent's child list");
    }
    for (NodeId Child : Node.Children) {
      if (Child >= NodeTable.size())
        return makeError("node " + std::to_string(Id) +
                         " has out-of-range child");
      if (NodeTable[Child].Parent != Id)
        return makeError("child " + std::to_string(Child) +
                         " does not point back to parent " +
                         std::to_string(Id));
    }
    for (const MetricValue &MV : Node.Metrics)
      if (MV.Metric >= MetricTable.size())
        return makeError("node " + std::to_string(Id) +
                         " references out-of-range metric");
  }
  for (const Frame &F : FrameTable) {
    if (F.Name >= Strings.size() || F.Loc.File >= Strings.size() ||
        F.Loc.Module >= Strings.size())
      return makeError("frame references out-of-range string");
  }
  for (const ContextGroup &Group : Groups) {
    if (Group.Metric >= MetricTable.size())
      return makeError("context group references out-of-range metric");
    if (Group.Kind >= Strings.size())
      return makeError("context group references out-of-range kind string");
    for (NodeId Ctx : Group.Contexts)
      if (Ctx >= NodeTable.size())
        return makeError("context group references out-of-range node");
  }
  return true;
}

size_t Profile::approxMemoryBytes() const {
  size_t Bytes = Strings.payloadBytes();
  Bytes += FrameTable.size() * sizeof(Frame);
  Bytes += NodeTable.size() * sizeof(CCTNode);
  for (const CCTNode &Node : NodeTable) {
    Bytes += Node.Children.size() * sizeof(NodeId);
    Bytes += Node.Metrics.size() * sizeof(MetricValue);
  }
  for (const ContextGroup &Group : Groups)
    Bytes += sizeof(ContextGroup) + Group.Contexts.size() * sizeof(NodeId);
  return Bytes;
}

} // namespace ev
