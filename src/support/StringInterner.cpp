//===- support/StringInterner.cpp - String table with stable ids ----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace ev {

namespace {
constexpr size_t MinBlockBytes = 4096;
constexpr size_t MaxBlockBytes = 4u << 20;
} // namespace

std::string_view StringInterner::store(std::string_view Text) {
  if (Text.empty())
    return {};
  if (BlockUsed + Text.size() > BlockCapacity) {
    size_t Next = std::max(MinBlockBytes, BlockCapacity * 2);
    Next = std::min(Next, MaxBlockBytes);
    Next = std::max(Next, Text.size());
    Blocks.push_back(std::make_unique<char[]>(Next));
    BlockCapacity = Next;
    BlockUsed = 0;
  }
  char *Dst = Blocks.back().get() + BlockUsed;
  std::memcpy(Dst, Text.data(), Text.size());
  BlockUsed += Text.size();
  return {Dst, Text.size()};
}

StringInterner::StringInterner(const StringInterner &Other) {
  reserve(Other.Table.size(), Other.Payload);
  for (std::string_view Text : Other.Table) {
    std::string_view Stored = store(Text);
    Index.emplace(Stored, static_cast<StringId>(Table.size()));
    Table.push_back(Stored);
  }
  Payload = Other.Payload;
}

StringInterner &StringInterner::operator=(const StringInterner &Other) {
  if (this != &Other) {
    StringInterner Copy(Other);
    *this = std::move(Copy);
  }
  return *this;
}

StringId StringInterner::intern(std::string_view Text) {
  auto It = Index.find(Text);
  if (It != Index.end())
    return It->second;
  StringId Id = static_cast<StringId>(Table.size());
  std::string_view Stored = store(Text);
  Table.push_back(Stored);
  Payload += Text.size();
  Index.emplace(Stored, Id);
  return Id;
}

std::string_view StringInterner::text(StringId Id) const {
  assert(Id < Table.size() && "string id out of range");
  return Table[Id];
}

void StringInterner::reserve(size_t Count, size_t TotalBytes) {
  Table.reserve(Table.size() + Count);
  Index.reserve(Index.size() + Count);
  if (TotalBytes > 0 && BlockUsed + TotalBytes > BlockCapacity &&
      TotalBytes <= MaxBlockBytes) {
    // One block covering the announced payload; store() falls back to
    // doubling blocks if the estimate proves short.
    Blocks.push_back(std::make_unique<char[]>(TotalBytes));
    BlockCapacity = TotalBytes;
    BlockUsed = 0;
  }
}

} // namespace ev
