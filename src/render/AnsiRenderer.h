//===- render/AnsiRenderer.h - Terminal flame graph back end --------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a FlameGraph as rows of colored blocks for terminals. Used by
/// the example programs and as a plain-text golden format in tests (with
/// colors disabled the output is deterministic ASCII).
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_RENDER_ANSIRENDERER_H
#define EASYVIEW_RENDER_ANSIRENDERER_H

#include "render/FlameLayout.h"

#include <string>

namespace ev {

struct AnsiOptions {
  unsigned Columns = 100;
  bool Color = true;      ///< Emit 24-bit ANSI color escapes.
  bool RootAtTop = true;  ///< Icicle orientation (root row first).
};

/// Renders \p Graph as one text row per depth level.
std::string renderAnsi(const FlameGraph &Graph, const AnsiOptions &Options = {});

} // namespace ev

#endif // EASYVIEW_RENDER_ANSIRENDERER_H
