//===- workload/SyntheticProfile.cpp - Size-scaled synthetic profiles -----===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workload/SyntheticProfile.h"

#include "convert/Converters.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>

namespace ev {
namespace workload {

namespace {

const char *const Packages[] = {
    "net/http", "google.golang.org/grpc", "runtime", "encoding/json",
    "github.com/acme/orders/internal/service",
    "github.com/acme/orders/internal/store", "database/sql",
    "github.com/acme/billing/pkg/ledger", "bufio", "crypto/tls",
    "compress/gzip", "github.com/acme/gateway/middleware"};

const char *const Verbs[] = {"Serve",  "Handle", "Process", "Encode",
                             "Decode", "Fetch",  "Write",   "Read",
                             "Merge",  "Flush",  "Dial",    "Query"};

const char *const Nouns[] = {"Request",  "Response", "Batch",  "Stream",
                             "Header",   "Payload",  "Row",    "Txn",
                             "Snapshot", "Shard",    "Bucket", "Frame"};

} // namespace

pprof::PprofProfile generatePprofModel(const SyntheticOptions &Options) {
  Rng R(Options.Seed);
  pprof::PprofProfile P;
  P.StringTable.emplace_back("");

  // Fast interning: the generic PprofProfile::intern is linear, so keep an
  // index here where the volume is.
  auto Intern = [&P](const std::string &S) {
    P.StringTable.push_back(S);
    return static_cast<int64_t>(P.StringTable.size() - 1);
  };

  P.SampleTypes.push_back({Intern("cpu"), Intern("nanoseconds")});
  P.PeriodType = {P.SampleTypes[0].Type, P.SampleTypes[0].Unit};
  P.Period = 10'000'000; // 100 Hz sampling.

  // Mappings: a main binary plus a handful of shared objects.
  const char *const Modules[] = {"/srv/bin/orders", "/usr/lib/libc.so.6",
                                 "/usr/lib/libssl.so.3",
                                 "/srv/bin/plugins/auth.so"};
  for (uint64_t I = 0; I < 4; ++I) {
    pprof::Mapping M;
    M.Id = I + 1;
    M.MemoryStart = 0x400000 + I * 0x10000000;
    M.MemoryLimit = M.MemoryStart + 0x800000;
    M.Filename = Intern(Modules[I]);
    P.Mappings.push_back(M);
  }

  // Function pool with Go-style qualified names.
  size_t FunctionCount =
      std::max<size_t>(64, Options.TargetBytes / Options.BytesPerFunction);
  FunctionCount = std::min<size_t>(FunctionCount, 200'000);
  for (size_t I = 0; I < FunctionCount; ++I) {
    const char *Pkg = Packages[R.below(std::size(Packages))];
    std::string Name = std::string(Pkg) + ".(*" +
                       Nouns[R.below(std::size(Nouns))] + "Manager)." +
                       Verbs[R.below(std::size(Verbs))] +
                       Nouns[R.below(std::size(Nouns))] +
                       std::to_string(I % 97);
    std::string File = std::string(Pkg) + "/" +
                       Verbs[R.below(std::size(Verbs))] + "_" +
                       std::to_string(I % 53) + ".go";
    pprof::Function F;
    F.Id = I + 1;
    F.Name = Intern(Name);
    F.Filename = Intern(File);
    F.StartLine = static_cast<int64_t>(R.range(5, 900));
    P.Functions.push_back(F);
  }

  // One location per function (typical for Go CPU profiles after symbol
  // merging), occasionally with an extra inlined line.
  for (size_t I = 0; I < FunctionCount; ++I) {
    pprof::Location L;
    L.Id = I + 1;
    L.MappingId = 1 + R.below(4);
    L.Address = 0x400000 + I * 64 + R.below(32);
    L.Lines.push_back(
        {I + 1, static_cast<int64_t>(R.range(10, 950))});
    if (R.chance(0.08)) // Inline expansion.
      L.Lines.push_back(
          {1 + R.below(FunctionCount), static_cast<int64_t>(R.range(1, 400))});
    P.Locations.push_back(std::move(L));
  }

  // Dispatch roots shared by most stacks (prefix sharing). Root-most last
  // in pprof's leaf-first ordering.
  std::vector<uint64_t> RootChain;
  for (unsigned I = 0; I < 6; ++I)
    RootChain.push_back(1 + R.below(FunctionCount));

  // Production services execute a bounded set of code paths: samples pick
  // from a pool of stack templates (with occasional leaf mutations), so
  // the calling context tree stays bounded while the file size scales
  // with the sample count — the structure the paper's production PProf
  // profiles exhibit.
  size_t TemplateCount = std::clamp<size_t>(Options.TargetBytes / 8192,
                                            256, 32768);

  // Running size estimate: per-sample cost ~ (stack depth * varint) +
  // overhead; table cost estimated once.
  size_t EstimatedBytes = 0;
  for (const std::string &S : P.StringTable)
    EstimatedBytes += S.size() + 3;
  EstimatedBytes += P.Locations.size() * 14 + P.Functions.size() * 10;

  // Zipf-ish popularity: stacks reuse a hot subset of functions.
  auto PickFunction = [&]() -> uint64_t {
    // 80% of picks from the hottest 20%.
    if (R.chance(0.8))
      return 1 + R.below(std::max<uint64_t>(1, FunctionCount / 5));
    return 1 + R.below(FunctionCount);
  };

  std::vector<std::vector<uint64_t>> Templates(TemplateCount);
  for (auto &Template : Templates) {
    unsigned Depth = static_cast<unsigned>(
        R.range(Options.MinStackDepth, Options.MaxStackDepth));
    // Leaf-first: random frames, then the shared dispatch chain.
    for (unsigned D = 0; D + RootChain.size() < Depth; ++D)
      Template.push_back(PickFunction());
    for (size_t I = 0; I < RootChain.size(); ++I)
      Template.push_back(RootChain[I]);
  }

  auto AddSample = [&] {
    pprof::Sample S;
    // Hot templates dominate, like hot request paths in production.
    size_t Which = R.chance(0.8)
                       ? R.below(std::max<size_t>(1, TemplateCount / 5))
                       : R.below(TemplateCount);
    S.LocationIds = Templates[Which];
    if (R.chance(0.1) && !S.LocationIds.empty())
      S.LocationIds[0] = PickFunction(); // Leaf mutation.
    S.Values.push_back(static_cast<int64_t>(P.Period) *
                       R.range(1, 12)); // 1..12 ticks per aggregated sample.
    EstimatedBytes += S.LocationIds.size() * 3 + 12;
    P.Samples.push_back(std::move(S));
  };
  while (EstimatedBytes < Options.TargetBytes)
    AddSample();

  // The estimate drifts a few percent below the real encoding; measure and
  // top up until the serialized size actually reaches the target.
  for (int Round = 0; Round < 6; ++Round) {
    size_t Actual = pprof::write(P).size();
    if (Actual >= Options.TargetBytes)
      break;
    size_t PerSample = std::max<size_t>(1, Actual / std::max<size_t>(
                                                        1, P.Samples.size()));
    size_t Missing = (Options.TargetBytes - Actual) / PerSample + 1;
    for (size_t I = 0; I < Missing; ++I)
      AddSample();
  }
  P.DurationNanos = static_cast<int64_t>(P.Samples.size()) * P.Period;
  P.TimeNanos = 1700000000LL * 1000000000LL;
  return P;
}

std::string generatePprofBytes(const SyntheticOptions &Options) {
  return pprof::write(generatePprofModel(Options));
}

Profile generateSyntheticProfile(const SyntheticOptions &Options) {
  std::string Bytes = generatePprofBytes(Options);
  Result<Profile> P = convert::fromPprof(Bytes);
  assert(P.ok() && "synthetic pprof bytes must convert cleanly");
  Profile Out = P.take();
  Out.setName("synthetic " + std::to_string(Options.TargetBytes >> 20) +
              "MB profile (seed " + std::to_string(Options.Seed) + ")");
  return Out;
}

} // namespace workload
} // namespace ev
