//===- bench/BenchHelpers.h - Shared helpers for the bench harness --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each bench binary regenerates one table or figure of the paper's
/// evaluation. Besides google-benchmark timings, every binary prints the
/// rows/series the paper reports (marked with "##"), so EXPERIMENTS.md can
/// quote them directly.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_BENCH_BENCHHELPERS_H
#define EASYVIEW_BENCH_BENCHHELPERS_H

#include "support/Json.h"

#include <cstdarg>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>

#include <sys/resource.h>

namespace ev {
namespace bench {

/// High-water resident set size of this process, in bytes (Linux reports
/// ru_maxrss in kilobytes). Monotonic, so per-phase deltas come from
/// subtracting two readings — and a phase that allocates under an earlier
/// high-water mark legitimately reports a zero delta.
inline uint64_t peakRssBytes() {
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0;
  return static_cast<uint64_t>(Usage.ru_maxrss) * 1024;
}

/// Prints one figure/table row, prefixed for extraction.
inline void row(const char *Format, ...)
    __attribute__((format(printf, 1, 2)));

inline void row(const char *Format, ...) {
  std::fputs("## ", stdout);
  va_list Args;
  va_start(Args, Format);
  std::vprintf(Format, Args);
  va_end(Args);
  std::fputc('\n', stdout);
}

/// Accumulates per-phase timing rows and writes them as one JSON document,
/// so CI and docs/PERF.md consume machine-readable results instead of
/// scraping stdout. Layout:
///
///   { "benchmark": "...", "meta": {...},
///     "rows": [{"phase": "...", "threads": N, "ms": ..., ...}, ...],
///     "summary": {...} }
class JsonReporter {
public:
  explicit JsonReporter(std::string Benchmark) : Name(std::move(Benchmark)) {}

  /// Free-form context (workload sizes, host facts) under "meta".
  void setMeta(std::string Key, json::Value V) {
    Meta.set(std::move(Key), std::move(V));
  }

  /// Headline numbers (speedups, totals) under "summary".
  void setSummary(std::string Key, json::Value V) {
    Summary.set(std::move(Key), std::move(V));
  }

  /// One timing observation. Extra per-row fields go through \p Extra.
  void addRow(std::string_view Phase, unsigned Threads, double Millis,
              json::Object Extra = {}) {
    json::Object Row;
    Row.set("phase", std::string(Phase));
    Row.set("threads", static_cast<int64_t>(Threads));
    Row.set("ms", Millis);
    for (const auto &[Key, V] : Extra)
      Row.set(Key, V);
    Rows.push_back(json::Value(std::move(Row)));
  }

  /// Serializes the document to \p Path. \returns false on I/O failure.
  bool write(const std::string &Path) const {
    json::Object Doc;
    Doc.set("benchmark", Name);
    Doc.set("meta", Meta);
    Doc.set("rows", Rows);
    Doc.set("summary", Summary);
    std::string Text = json::Value(std::move(Doc)).dumpPretty();
    Text.push_back('\n');
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return false;
    size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
    return std::fclose(F) == 0 && Written == Text.size();
  }

private:
  std::string Name;
  json::Object Meta;
  json::Object Summary;
  json::Array Rows;
};

} // namespace bench
} // namespace ev

#endif // EASYVIEW_BENCH_BENCHHELPERS_H
